// End-to-end integration stories across the whole stack.
#include <gtest/gtest.h>

#include "core/ap.h"
#include "core/client.h"
#include "core/sim_discovery.h"
#include "sim/traffic.h"
#include "spectrum/campus.h"

namespace whitefi {
namespace {

constexpr int kSsid = 4;

DeviceConfig NodeAt(double x, double y, const SpectrumMap& map,
                    int ssid = kSsid) {
  DeviceConfig c;
  c.position = {x, y};
  c.ssid = ssid;
  c.tv_map = map;
  return c;
}

// ---------------------------------------------------------------------
// Story 1: a device joins a network it has never seen — discovery through
// the live simulator, then association-by-configuration, then traffic.

TEST(Integration, DiscoverThenJoinThenTransfer) {
  const SpectrumMap map = CampusSimulationMap();
  World world;

  // The AP is already up on a channel the newcomer does not know.
  AssignmentInputs boot;
  boot.ap_map = map;
  boot.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    boot.ap_observation[static_cast<std::size_t>(c)].incumbent =
        map.Occupied(c);
  }
  SpectrumAssigner assigner;
  const Channel main = *assigner.SelectInitial(boot).channel;
  const Channel backup = *assigner.SelectBackup(boot, main);
  ApNode& ap = world.Create<ApNode>(NodeAt(0, 0, map), ApParams{}, main,
                                    backup);

  // The newcomer scans with J-SIFT against the live medium.
  Device& searcher = world.Create<Device>(NodeAt(150, 0, map, /*ssid=*/0));
  world.StartAll();
  SimulatedScanEnvironment env(world, searcher, kSsid);
  const DiscoveryResult found = JSiftDiscover(env, map);
  ASSERT_TRUE(found.found);
  EXPECT_EQ(found.channel, main);

  // Join with the discovered channel and move data.
  ClientNode& client = world.Create<ClientNode>(
      NodeAt(150, 0, map), ClientParams{}, found.channel, backup, ap.NodeId());
  client.Start();
  SaturatedSource downlink(ap, client.NodeId(), 1000);
  downlink.Start();
  world.RunFor(5.0);
  EXPECT_TRUE(client.connected());
  EXPECT_GT(world.AppBytes(client.NodeId()), 1'000'000u);
}

// ---------------------------------------------------------------------
// Story 2: two mics in sequence chase the network across the band; when
// both leave, the voluntary path climbs back to the widest channel.

TEST(Integration, ChasedAcrossTheBandAndBack) {
  const SpectrumMap map = Building5Map();  // 20 MHz + 10 MHz + 2x 5 MHz.
  World world;
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  ApParams ap_params;
  ap_params.assignment_interval = 2 * kTicksPerSec;
  ap_params.first_assignment_delay = 2 * kTicksPerSec;
  ap_params.scanner.dwell = 100 * kTicksPerMs;
  ApNode& ap = world.Create<ApNode>(NodeAt(0, 0, map), ap_params, main, backup);
  ClientParams client_params;
  client_params.scanner.dwell = 100 * kTicksPerMs;
  ClientNode& client = world.Create<ClientNode>(
      NodeAt(120, 40, map), client_params, main, backup, ap.NodeId());
  SaturatedSource downlink(ap, client.NodeId(), 1000);
  // Mic 1 hits the 20 MHz fragment at t=3..14 s.
  world.AddMic({IndexOfTvChannel(28), 3.0 * kSecond, 14.0 * kSecond});
  // Mic 2 hits the 10 MHz fragment at t=8..14 s.
  world.AddMic({IndexOfTvChannel(34), 8.0 * kSecond, 14.0 * kSecond});
  world.StartAll();
  downlink.Start();

  world.RunFor(6.0);
  // Pushed off the 20 MHz fragment.
  EXPECT_FALSE(ap.main_channel().Contains(IndexOfTvChannel(28)));

  world.RunFor(6.0);  // t=12: both mics active.
  EXPECT_FALSE(ap.main_channel().Contains(IndexOfTvChannel(28)));
  EXPECT_FALSE(ap.main_channel().Contains(IndexOfTvChannel(34)));
  EXPECT_TRUE(client.connected());

  world.RunFor(18.0);  // t=30: mics long gone; voluntary climb back.
  EXPECT_EQ(ap.main_channel().width, ChannelWidth::kW20);
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.TunedChannel(), ap.main_channel());
}

// ---------------------------------------------------------------------
// Story 3: long-run stability under churning background — clients stay
// connected and the MAC does not leak retries into drops.

TEST(Integration, LongRunStabilityUnderChurn) {
  const SpectrumMap map = CampusSimulationMap();
  World world;
  const Channel main{2, ChannelWidth::kW20};  // TV 21-25 fragment.
  const Channel backup{IndexOfTvChannel(33), ChannelWidth::kW5};
  ApParams ap_params;
  ap_params.scanner.dwell = 100 * kTicksPerMs;
  ApNode& ap = world.Create<ApNode>(NodeAt(0, 0, map), ap_params, main, backup);
  std::vector<ClientNode*> clients;
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(&world.Create<ClientNode>(
        NodeAt(80.0 + 40.0 * i, 60.0, map), ClientParams{}, main, backup,
        ap.NodeId()));
    ids.push_back(clients.back()->NodeId());
  }
  SaturatedSource downlink(ap, ids, 1000);
  // Churning background on a far fragment (does not force moves, adds
  // measurement churn).
  DeviceConfig bg = NodeAt(300, 300, map, /*ssid=*/50);
  bg.is_ap = true;
  bg.initial_channel = Channel{IndexOfTvChannel(39), ChannelWidth::kW5};
  Device& bg_tx = world.Create<Device>(bg);
  bg.is_ap = false;
  bg.position.x += 30.0;
  Device& bg_rx = world.Create<Device>(bg);
  MarkovOnOffSource::Params churn;
  churn.mean_active = 3 * kTicksPerSec;
  churn.mean_passive = 3 * kTicksPerSec;
  MarkovOnOffSource bg_source(bg_tx, bg_rx.NodeId(), 800, 20 * kTicksPerMs,
                              churn);
  world.StartAll();
  downlink.Start();
  bg_source.Start();

  int connected_samples = 0;
  constexpr int kSamples = 30;
  for (int s = 0; s < kSamples; ++s) {
    world.RunFor(2.0);
    bool all = true;
    for (const ClientNode* c : clients) all = all && c->connected();
    connected_samples += all ? 1 : 0;
  }
  EXPECT_GE(connected_samples, kSamples - 3);  // >= 90% of sampled instants.
  // Throughput lived through the hour-long minute.
  EXPECT_GT(world.AppBytesInSsid(kSsid), 10'000'000u);
  // No silent drop explosion at the AP.
  EXPECT_LT(ap.mac().Drops(), 50u);
}

// ---------------------------------------------------------------------
// Story 4: determinism — the same seed reproduces the same world, bit for
// bit, even through disconnections and reassignments.

std::uint64_t RunSeededScenario(std::uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  World world(config);
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  ApNode& ap =
      world.Create<ApNode>(NodeAt(0, 0, map), ApParams{}, main, backup);
  ClientNode& client = world.Create<ClientNode>(
      NodeAt(100, 50, map), ClientParams{}, main, backup, ap.NodeId());
  SaturatedSource downlink(ap, client.NodeId(), 1000);
  world.AddMic({IndexOfTvChannel(28), 3.0 * kSecond, 60.0 * kSecond});
  world.StartAll();
  downlink.Start();
  world.RunFor(10.0);
  return world.AppBytes(client.NodeId()) * 1000003ULL +
         static_cast<std::uint64_t>(world.sim().NumProcessed());
}

TEST(Integration, SameSeedSameUniverse) {
  EXPECT_EQ(RunSeededScenario(17), RunSeededScenario(17));
  EXPECT_NE(RunSeededScenario(17), RunSeededScenario(18));
}

}  // namespace
}  // namespace whitefi
