// Tests for the dynamic geo-db service node (src/geodb/service.h) and the
// device-side resilient session (src/geodb/session.h): load-dependent
// latency and overload shedding, the outage -> timeout -> backoff ->
// circuit-breaker -> half-open -> recovery state machine, staleness
// degradation, push interleavings across an outage, mobility re-query and
// blackout, and the observability (trace events + metrics) of every
// degraded/recovered transition.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.h"
#include "geodb/service.h"
#include "geodb/session.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "sim/world.h"
#include "spectrum/geodb.h"

namespace whitefi {
namespace {

GeoDatabase OneStationDb() {
  GeoDatabase db;
  db.RegisterStation(TvStation{"WAAA", 7, {0.0, 0.0}, 100.0});  // 60 km.
  return db;
}

// ------------------------------------------------------------ service ---

TEST(GeoDbService, LatencyGrowsWithQueueDepth) {
  World world;
  const GeoDatabase db = OneStationDb();
  GeoDbServiceParams params;
  params.base_latency = 50 * kTicksPerMs;
  params.per_pending_latency = 20 * kTicksPerMs;
  params.latency_jitter = 0.0;  // Deterministic latencies for this test.
  GeoDbService service(world.sim(), db, params, 7, nullptr, {});

  std::vector<SimTime> completed_at;
  auto issue = [&] {
    service.Query(1, {0.0, 0.0}, 5.0, [&](const GeoQueryResult& result) {
      EXPECT_TRUE(result.ok);
      EXPECT_TRUE(result.stations.Occupied(7));
      completed_at.push_back(world.sim().Now());
    });
  };
  // Three concurrent queries: 50 ms unloaded, then +20 ms per request
  // already pending.
  world.sim().Schedule(0, [&] { issue(); issue(); issue(); });
  world.RunFor(1.0);
  ASSERT_EQ(completed_at.size(), 3u);
  EXPECT_EQ(completed_at[0], 50 * kTicksPerMs);
  EXPECT_EQ(completed_at[1], 70 * kTicksPerMs);
  EXPECT_EQ(completed_at[2], 90 * kTicksPerMs);
  EXPECT_EQ(service.queries(), 3u);
  EXPECT_EQ(service.shed(), 0u);
}

TEST(GeoDbService, BoundedQueueShedsFastWithRejection) {
  World world;
  const GeoDatabase db = OneStationDb();
  GeoDbServiceParams params;
  params.base_latency = 50 * kTicksPerMs;
  params.latency_jitter = 0.0;
  params.max_queue = 2;
  params.shed_latency = 10 * kTicksPerMs;
  GeoDbService service(world.sim(), db, params, 7, nullptr, {});

  int served = 0, shed = 0;
  SimTime shed_at = -1;
  auto issue = [&] {
    service.Query(1, {0.0, 0.0}, 5.0, [&](const GeoQueryResult& result) {
      if (result.ok) {
        ++served;
      } else {
        ++shed;
        shed_at = world.sim().Now();
      }
    });
  };
  world.sim().Schedule(0, [&] { issue(); issue(); issue(); });
  world.RunFor(1.0);
  EXPECT_EQ(served, 2);
  EXPECT_EQ(shed, 1);
  // The rejection is a fast-fail, well before any real response.
  EXPECT_EQ(shed_at, 10 * kTicksPerMs);
  EXPECT_EQ(service.shed(), 1u);
}

TEST(GeoDbService, OutageSwallowsRequestsSilently) {
  World world;
  const GeoDatabase db = OneStationDb();
  FaultPlan plan;
  plan.geodb_outages.push_back({1 * kTicksPerSec, 2 * kTicksPerSec});
  FaultInjector faults(plan, 99);
  GeoDbServiceParams params;
  params.latency_jitter = 0.0;
  GeoDbService service(world.sim(), db, params, 7, &faults, {});

  int answered = 0;
  auto issue = [&] {
    service.Query(1, {0.0, 0.0}, 5.0,
                  [&](const GeoQueryResult&) { ++answered; });
  };
  // Inside the outage window: no reply of any kind, ever.
  world.sim().Schedule(1500 * kTicksPerMs, issue);
  // Request lands BEFORE the outage, response due inside it: the
  // in-flight reply is swallowed too.
  world.sim().Schedule(980 * kTicksPerMs, issue);
  // After the outage: served normally.
  world.sim().Schedule(2500 * kTicksPerMs, issue);
  world.RunFor(4.0);
  EXPECT_EQ(answered, 1);
  EXPECT_EQ(service.lost_to_outage(), 2u);
}

// ------------------------------------------------------------ session ---

/// A session test rig: one device under a geo-db session, with tight
/// deterministic timings so full recovery cycles fit in a short run.
struct SessionRig {
  explicit SessionRig(const GeoDatabase& db, FaultInjector* faults,
                      GeoDbServiceParams service_params = {},
                      GeoDbSessionParams session_params = TightParams(),
                      WorldConfig world_config = {})
      : world(world_config),
        service(world.sim(), db, Deterministic(service_params), 7, faults,
                world_config.obs),
        device(world.Create<Device>(DeviceConfig{})),
        session(world, device, service, {0.0, 0.0}, SpectrumMap{},
                session_params, 21) {}

  static GeoDbServiceParams Deterministic(GeoDbServiceParams p) {
    p.latency_jitter = 0.0;
    p.base_latency = 50 * kTicksPerMs;
    p.per_pending_latency = 0;
    return p;
  }

  static GeoDbSessionParams TightParams() {
    GeoDbSessionParams p;
    p.refresh_interval = 500 * kTicksPerMs;
    p.refresh_jitter = 0.0;
    p.refresh_timeout = 150 * kTicksPerMs;
    p.backoff_base = 100 * kTicksPerMs;
    p.backoff_factor = 2.0;
    p.backoff_max = 400 * kTicksPerMs;
    p.backoff_jitter = 0.0;
    p.breaker_failures = 2;
    p.breaker_cooldown = 300 * kTicksPerMs;
    p.stale_after = 30.0 * kSecond;
    return p;
  }

  void Start() {
    service.Start();
    session.Start();
  }

  World world;
  GeoDbService service;
  Device& device;
  GeoDbSession session;
};

TEST(GeoDbSession, BreakerTripsHalfOpensAndResets) {
  const GeoDatabase db = OneStationDb();
  FaultPlan plan;
  plan.geodb_outages.push_back({1200 * kTicksPerMs, 3 * kTicksPerSec});
  FaultInjector faults(plan, 99);
  SessionRig rig(db, &faults);
  rig.Start();

  // Before the outage: fresh, breaker closed, refreshes landing.
  rig.world.RunFor(1.1);
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kFresh);
  EXPECT_EQ(rig.session.breaker(), GeoDbBreaker::kClosed);
  EXPECT_GE(rig.session.refreshes(), 1);

  // Mid-outage: two consecutive timeouts trip the breaker onto the
  // conservative map, well before the 30 s stale horizon.
  rig.world.RunFor(1.4);  // -> 2.5 s
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kDegraded);
  EXPECT_EQ(rig.session.breaker(), GeoDbBreaker::kOpen);
  EXPECT_GE(rig.session.consecutive_failures(), 2);
  EXPECT_EQ(rig.session.degraded_transitions(), 1);
  EXPECT_EQ(rig.session.recovered_transitions(), 0);
  // Only the pre-trip retry used backoff (one failure before the trip):
  // base * factor^0, unjittered.
  EXPECT_EQ(rig.session.last_backoff(), 100 * kTicksPerMs);

  // After the outage a half-open probe lands and fully resets the
  // breaker: fresh mode, zero consecutive failures.
  rig.world.RunFor(1.5);  // -> 4.0 s
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kFresh);
  EXPECT_EQ(rig.session.breaker(), GeoDbBreaker::kClosed);
  EXPECT_EQ(rig.session.consecutive_failures(), 0);
  EXPECT_EQ(rig.session.degraded_transitions(), 1);
  EXPECT_EQ(rig.session.recovered_transitions(), 1);
}

TEST(GeoDbSession, BackoffIsDeterministicAcrossIdenticalSeeds) {
  const GeoDatabase db = OneStationDb();
  GeoDbSessionParams params = SessionRig::TightParams();
  params.backoff_jitter = 0.3;  // Jitter ON: determinism must come from
                                // the seeded substream, not from zeroing.
  auto run = [&](SimTime* backoff, int* failures, int* refreshes) {
    FaultPlan plan;
    plan.geodb_outages.push_back({1200 * kTicksPerMs, 3 * kTicksPerSec});
    FaultInjector faults(plan, 99);
    SessionRig rig(db, &faults, {}, params);
    rig.Start();
    rig.world.RunFor(2.5);
    *backoff = rig.session.last_backoff();
    *failures = rig.session.consecutive_failures();
    *refreshes = rig.session.refreshes();
  };
  SimTime backoff_a = 0, backoff_b = 0;
  int failures_a = 0, failures_b = 0, refreshes_a = 0, refreshes_b = 0;
  run(&backoff_a, &failures_a, &refreshes_a);
  run(&backoff_b, &failures_b, &refreshes_b);
  EXPECT_GT(backoff_a, 0);
  EXPECT_EQ(backoff_a, backoff_b);
  EXPECT_EQ(failures_a, failures_b);
  EXPECT_EQ(refreshes_a, refreshes_b);
}

TEST(GeoDbSession, ServedStaleDataDegradesDespiteSuccessfulRefresh) {
  const GeoDatabase db = OneStationDb();
  GeoDbServiceParams service_params;
  service_params.staleness = 60.0 * kSecond;  // Everything served is old.
  GeoDbSessionParams session_params = SessionRig::TightParams();
  session_params.stale_after = 2.0 * kSecond;
  SessionRig rig(db, nullptr, service_params, session_params);
  rig.Start();
  rig.world.RunFor(3.0);
  // Refreshes succeed (no outage, no timeouts, breaker closed) yet the
  // session is degraded: the data itself is beyond the stale horizon.
  EXPECT_GE(rig.session.refreshes(), 2);
  EXPECT_EQ(rig.session.breaker(), GeoDbBreaker::kClosed);
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kDegraded);
  EXPECT_GE(rig.session.degraded_transitions(), 1);
  EXPECT_EQ(rig.session.recovered_transitions(), 0);
}

TEST(GeoDbSession, PushUpdatesApplyWithoutARefreshRoundTrip) {
  GeoDatabase db;
  // Venue active during [1 s, 2 s), covering the device at the origin.
  db.RegisterVenue(ProtectedVenue{"theater", 12, {0.0, 0.0}, 2.0,
                                  1.0 * kSecond, 2.0 * kSecond});
  GeoDbServiceParams service_params;
  service_params.push_latency_min = 20 * kTicksPerMs;
  service_params.push_latency_max = 30 * kTicksPerMs;
  GeoDbSessionParams session_params = SessionRig::TightParams();
  session_params.refresh_interval = 30 * kTicksPerSec;  // No refresh lands.
  SessionRig rig(db, nullptr, service_params, session_params);
  rig.Start();

  rig.world.RunFor(0.9);
  EXPECT_FALSE(rig.session.respected().Occupied(12));
  rig.world.RunFor(0.6);  // -> 1.5 s: activation push applied.
  EXPECT_TRUE(rig.session.respected().Occupied(12));
  rig.world.RunFor(1.0);  // -> 2.5 s: deactivation push applied.
  EXPECT_FALSE(rig.session.respected().Occupied(12));
  EXPECT_EQ(rig.service.pushes_sent(), 2u);
}

TEST(GeoDbSession, VenueActivationMissedDuringOutageResyncsOnRecovery) {
  GeoDatabase db;
  // Venue activates at 1.5 s — inside the DB outage, so the activation
  // push is swallowed.  The recovery refresh must resync it anyway:
  // venue activity is evaluated at SERVE time, not at the (possibly
  // stale) contour data time.
  db.RegisterVenue(ProtectedVenue{"theater", 12, {0.0, 0.0}, 2.0,
                                  1.5 * kSecond, 10.0 * kSecond});
  FaultPlan plan;
  plan.geodb_outages.push_back({1200 * kTicksPerMs, 2500 * kTicksPerMs});
  FaultInjector faults(plan, 99);
  SessionRig rig(db, &faults);
  rig.Start();

  rig.world.RunFor(1.4);
  EXPECT_FALSE(rig.session.respected().Occupied(12));  // Push was lost.
  // Past the outage: a successful refresh (direct or half-open probe)
  // carries the serve-time venue directory.
  rig.world.RunFor(2.0);  // -> 3.4 s
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kFresh);
  EXPECT_TRUE(rig.session.respected().Occupied(12));
}

TEST(GeoDbSession, MovingPastGuardBlacksOutUntilRequeryLands) {
  const GeoDatabase db = OneStationDb();
  GeoDbSessionParams params = SessionRig::TightParams();
  params.guard_km = 1.0;
  params.requery_km = 0.2;
  SessionRig rig(db, nullptr, {}, params);
  rig.Start();
  rig.world.RunFor(0.2);
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kFresh);

  // Teleport 1.5 km: beyond the 1 km guard, the cached map's validity
  // proof is gone — respect everything until a query at the new position
  // answers.
  rig.world.sim().Schedule(rig.world.sim().Now() + kTicksPerMs, [&] {
    rig.device.SetPosition({1500.0, 0.0});
    rig.session.OnMoved();
  });
  rig.world.RunFor(0.01);
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kBlackout);
  EXPECT_EQ(rig.session.respected().NumFree(), 0);  // All channels barred.

  rig.world.RunFor(0.5);  // The re-query lands (50 ms service latency).
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kFresh);
  EXPECT_GT(rig.session.respected().NumFree(), 0);
  EXPECT_EQ(rig.session.degraded_transitions(), 1);
  EXPECT_EQ(rig.session.recovered_transitions(), 1);
}

TEST(GeoDbSession, SmallDriftRequeriesWithoutDegrading) {
  const GeoDatabase db = OneStationDb();
  GeoDbSessionParams params = SessionRig::TightParams();
  params.refresh_interval = 30 * kTicksPerSec;  // Scheduled path idle.
  params.guard_km = 5.0;
  params.requery_km = 0.2;
  SessionRig rig(db, nullptr, {}, params);
  rig.Start();
  rig.world.RunFor(0.2);
  const int before = rig.session.refreshes();

  rig.world.sim().Schedule(rig.world.sim().Now() + kTicksPerMs, [&] {
    rig.device.SetPosition({300.0, 0.0});  // 0.3 km > requery, < guard.
    rig.session.OnMoved();
  });
  rig.world.RunFor(0.5);
  EXPECT_EQ(rig.session.mode(), GeoDbMode::kFresh);
  EXPECT_EQ(rig.session.degraded_transitions(), 0);
  EXPECT_GT(rig.session.refreshes(), before);
}

TEST(GeoDbSession, DegradeAndRecoverAreTracedAndMetered) {
  EventTrace trace;
  MetricsRegistry metrics;
  WorldConfig world_config;
  world_config.obs.trace = &trace;
  world_config.obs.metrics = &metrics;

  const GeoDatabase db = OneStationDb();
  FaultPlan plan;
  plan.geodb_outages.push_back({1200 * kTicksPerMs, 3 * kTicksPerSec});
  FaultInjector faults(plan, 99);
  SessionRig rig(db, &faults, {}, SessionRig::TightParams(), world_config);
  rig.Start();
  rig.world.RunFor(4.0);
  ASSERT_EQ(rig.session.degraded_transitions(), 1);
  ASSERT_EQ(rig.session.recovered_transitions(), 1);

  int degraded_events = 0, recovered_events = 0;
  std::int64_t degraded_span = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kGeoDbDegraded) {
      ++degraded_events;
      degraded_span = event.span_id;
      EXPECT_EQ(event.node, rig.device.NodeId());
      EXPECT_FALSE(event.detail.empty());  // Carries the reason.
    }
    if (event.kind == TraceEventKind::kGeoDbRecovered) {
      ++recovered_events;
      // The recovery closes the SAME degraded-episode span it opened.
      EXPECT_EQ(event.span_id, degraded_span);
    }
  }
  EXPECT_EQ(degraded_events, 1);
  EXPECT_EQ(recovered_events, 1);
  EXPECT_EQ(metrics.GetCounter("whitefi.geodb.degraded").value(), 1u);
  EXPECT_EQ(metrics.GetCounter("whitefi.geodb.recovered").value(), 1u);
  EXPECT_GE(metrics.GetCounter("whitefi.geodb.queries").value(), 1u);
  EXPECT_GE(metrics.GetCounter("whitefi.geodb.refresh_failures").value(), 2u);
}

}  // namespace
}  // namespace whitefi
