// Unit tests for util: rng, stats, histogram, report, units.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/histogram.h"
#include "util/report.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace whitefi {
namespace {

// ---------------------------------------------------------------- units ---

TEST(Units, DbLinearRoundTrip) {
  EXPECT_DOUBLE_EQ(DbToLinear(0.0), 1.0);
  EXPECT_DOUBLE_EQ(DbToLinear(10.0), 10.0);
  EXPECT_DOUBLE_EQ(DbToLinear(3.0), std::pow(10.0, 0.3));
  EXPECT_NEAR(LinearToDb(DbToLinear(7.7)), 7.7, 1e-12);
}

TEST(Units, AttenuationScalesAmplitudeNotPower) {
  // 20 dB of attenuation is a 10x amplitude reduction.
  EXPECT_NEAR(AttenuationToAmplitudeScale(20.0), 0.1, 1e-12);
  EXPECT_NEAR(AttenuationToAmplitudeScale(6.0), 0.501187, 1e-5);
  EXPECT_DOUBLE_EQ(AttenuationToAmplitudeScale(0.0), 1.0);
}

TEST(Units, DbmMilliwattRoundTrip) {
  EXPECT_DOUBLE_EQ(DbmToMilliwatt(0.0), 1.0);
  EXPECT_NEAR(DbmToMilliwatt(16.0), 39.81, 0.01);  // FCC cap ~40 mW.
  EXPECT_NEAR(MilliwattToDbm(DbmToMilliwatt(-73.2)), -73.2, 1e-9);
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform01() == b.Uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkStreamsAreIndependentAndDistinct) {
  Rng parent(7);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  // Distinct from each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.Uniform01() == c2.Uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
  // Forks are reproducible: same parent seed, same fork order.
  Rng parent2(7);
  Rng c1b = parent2.Fork();
  for (int i = 0; i < 100; ++i) c1b.Uniform01();  // Same consumption as c1.
  Rng parent3(7);
  Rng c1c = parent3.Fork();
  Rng check(0);
  (void)check;
  Rng c1d = Rng(7).Fork();
  EXPECT_DOUBLE_EQ(c1c.Uniform01(), c1d.Uniform01());
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0) == 1 && seen.count(3) == 1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, RayleighMeanMatchesTheory) {
  // Rayleigh(sigma) has mean sigma * sqrt(pi/2).
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Rayleigh(2.0));
  EXPECT_NEAR(stats.Mean(), 2.0 * std::sqrt(M_PI / 2.0), 0.05);
  EXPECT_GT(stats.Min(), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Exponential(5.0));
  EXPECT_NEAR(stats.Mean(), 5.0, 0.2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickReturnsElementFromVector) {
  Rng rng(11);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.Pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, DeriveSeedIsStableAndLabelSensitive) {
  // The named-substream contract: same (root, label) is a fixed mapping;
  // different labels or roots decorrelate; no label collapses to the root
  // itself (a component seeded from DeriveSeed never shares the root's
  // stream).
  const std::uint64_t a = DeriveSeed(1, "scenario.faults");
  EXPECT_EQ(a, DeriveSeed(1, "scenario.faults"));
  EXPECT_NE(a, DeriveSeed(1, "scenario.maps"));
  EXPECT_NE(a, DeriveSeed(2, "scenario.faults"));
  EXPECT_NE(a, 1u);
  EXPECT_NE(DeriveSeed(1, ""), 1u);
}

TEST(Rng, DeriveSeedStreamsAreDecorrelated) {
  // Streams seeded from sibling labels must not produce equal draw
  // sequences (the failure mode of ad-hoc seed arithmetic like seed ^ k).
  Rng a(DeriveSeed(7, "fuzz.trial.0"));
  Rng b(DeriveSeed(7, "fuzz.trial.1"));
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.UniformInt(0, 1000) == b.UniformInt(0, 1000)) ++agree;
  }
  EXPECT_LT(agree, 8);
}

// ---------------------------------------------------------------- stats ---

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  s.Add(2.0);
  s.Add(4.0);
  s.Add(6.0);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 6.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 12.0);
}

TEST(Stats, MeanMedianOfVectors) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
  EXPECT_DOUBLE_EQ(Median({1, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Median({9, 1, 5}), 5.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 15.0);
  // Clamped out-of-range p.
  EXPECT_DOUBLE_EQ(Percentile(v, -10), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 400), 50.0);
}

TEST(Stats, StdDevMatchesRunningStats) {
  const std::vector<double> v{1.5, 2.5, 9.0, -4.0};
  RunningStats s;
  for (double x : v) s.Add(x);
  EXPECT_NEAR(StdDev(v), s.StdDev(), 1e-12);
}

TEST(Stats, ConfidenceIntervalShrinksWithN) {
  std::vector<double> small{1, 2, 3, 4};
  std::vector<double> large;
  for (int i = 0; i < 16; ++i) large.insert(large.end(), {1, 2, 3, 4});
  EXPECT_GT(ConfidenceInterval95(small), ConfidenceInterval95(large));
  EXPECT_DOUBLE_EQ(ConfidenceInterval95({1.0}), 0.0);
}

// ------------------------------------------------------------- histogram --

TEST(IntHistogram, AddCountFraction) {
  IntHistogram h(10);
  h.Add(3);
  h.Add(3);
  h.Add(7);
  EXPECT_EQ(h.Total(), 3u);
  EXPECT_EQ(h.CountOf(3), 2u);
  EXPECT_EQ(h.CountOf(7), 1u);
  EXPECT_EQ(h.CountOf(0), 0u);
  EXPECT_DOUBLE_EQ(h.Fraction(3), 2.0 / 3.0);
  EXPECT_EQ(h.MaxObserved(), 7);
}

TEST(IntHistogram, ClampsOutOfRange) {
  IntHistogram h(5);
  h.Add(-3);
  h.Add(99);
  EXPECT_EQ(h.CountOf(0), 1u);
  EXPECT_EQ(h.CountOf(5), 1u);
}

TEST(IntHistogram, MergeRequiresSameRange) {
  IntHistogram a(5), b(5), c(6);
  a.Add(1);
  b.Add(1);
  a.Merge(b);
  EXPECT_EQ(a.CountOf(1), 2u);
  EXPECT_THROW(a.Merge(c), std::invalid_argument);
}

TEST(IntHistogram, EmptyProperties) {
  IntHistogram h(4);
  EXPECT_EQ(h.MaxObserved(), -1);
  EXPECT_DOUBLE_EQ(h.Fraction(2), 0.0);
  EXPECT_THROW(IntHistogram(-1), std::invalid_argument);
}

TEST(IntHistogram, ToStringShowsNonEmptyBins) {
  IntHistogram h(3);
  h.AddN(2, 5);
  const std::string s = h.ToString("width");
  EXPECT_NE(s.find("width 2"), std::string::npos);
  EXPECT_EQ(s.find("width 1"), std::string::npos);
}

TEST(DoubleHistogram, BinsAndEdges) {
  DoubleHistogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(9.99);  // bin 4
  h.Add(-3.0);  // clamped to bin 0
  h.Add(50.0);  // clamped to bin 4
  EXPECT_EQ(h.CountOf(0), 2u);
  EXPECT_EQ(h.CountOf(4), 2u);
  EXPECT_EQ(h.Total(), 4u);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(4), 9.0);
  EXPECT_THROW(DoubleHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(DoubleHistogram(0.0, 1.0, 0), std::invalid_argument);
}

// --------------------------------------------------------------- report ---

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "2.50"});
  EXPECT_EQ(t.NumRows(), 2u);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Report, Formatters) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatPercent(0.123), "12.3%");
}

}  // namespace
}  // namespace whitefi
