// End-to-end behavior of the channel-37 frequency gap (608-614 MHz).
//
// The paper's counts (30/28/26 channels) treat the band as logically
// contiguous; the physically exact mode must never span TV 36|38.  Also
// covers the medium's in-band power fraction helper.
#include <gtest/gtest.h>

#include "core/assignment.h"
#include "core/discovery.h"
#include "sim/medium.h"

namespace whitefi {
namespace {

constexpr ChannelEnumerationOptions kGapAware{.respect_channel37_gap = true};

TEST(Channel37Gap, NoEnumeratedChannelStraddlesTheGap) {
  for (const Channel& c : AllChannels(kGapAware)) {
    EXPECT_TRUE(c.IsPhysicallyContiguous()) << c.ToString();
    // TV 36 is index 15; TV 38 is index 16: a physical channel never
    // covers both.
    EXPECT_FALSE(c.Contains(15) && c.Contains(16)) << c.ToString();
  }
}

TEST(Channel37Gap, AssignerNeverPicksAStraddler) {
  // Free spectrum exactly around the gap: TV 34-36 and 38-40.
  const SpectrumMap map =
      SpectrumMap::FromFreeTvChannels({34, 35, 36, 38, 39, 40});
  AssignmentInputs inputs;
  inputs.ap_map = map;
  inputs.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    inputs.ap_observation[static_cast<std::size_t>(c)].incumbent =
        map.Occupied(c);
  }

  // Logically contiguous mode would bond across the gap (a 20 MHz channel
  // covering TV 34..40 exists)...
  SpectrumAssigner naive;
  const auto naive_pick = naive.SelectInitial(inputs);
  ASSERT_TRUE(naive_pick.channel.has_value());
  EXPECT_EQ(naive_pick.channel->width, ChannelWidth::kW20);

  // ...the gap-aware assigner only sees two 3-channel fragments.
  AssignmentParams params;
  params.enumeration = kGapAware;
  SpectrumAssigner exact(params);
  const auto exact_pick = exact.SelectInitial(inputs);
  ASSERT_TRUE(exact_pick.channel.has_value());
  EXPECT_EQ(exact_pick.channel->width, ChannelWidth::kW10);
  EXPECT_TRUE(exact_pick.channel->IsPhysicallyContiguous());
}

TEST(Channel37Gap, DiscoveryStillFindsEveryGapLegalAp) {
  DiscoveryParams params;
  params.enumeration = kGapAware;
  const SpectrumMap map;  // All free.
  for (const Channel& ap : AllChannels(kGapAware)) {
    AnalyticScanEnvironment env(ap);
    const auto j = JSiftDiscover(env, map, params);
    ASSERT_TRUE(j.found) << ap.ToString();
    EXPECT_EQ(j.channel, ap);
  }
}

TEST(Channel37Gap, FragmentSplitMatchesEnumeration) {
  // With everything free, the gap-aware fragments are 16 + 14 channels,
  // and the usable gap-aware channel count is 78 (30 + 26 + 22).
  const SpectrumMap map;
  const auto fragments = map.FreeFragments(/*respect_gap=*/true);
  ASSERT_EQ(fragments.size(), 2u);
  int usable = 0;
  for (const Channel& c : AllChannels(kGapAware)) {
    usable += map.CanUse(c, /*respect_gap=*/true) ? 1 : 0;
  }
  EXPECT_EQ(usable, 78);
}

// --------------------------------------------------- in-band power helper -

TEST(InBandPowerFraction, OverlapRatios) {
  const Channel wide{10, ChannelWidth::kW20};    // 8..12
  const Channel narrow{12, ChannelWidth::kW5};   // 12
  const Channel mid{11, ChannelWidth::kW10};     // 10..12
  // A narrow tx lands entirely inside a wide listener's band.
  EXPECT_DOUBLE_EQ(InBandPowerFraction(narrow, wide), 1.0);
  // A wide tx puts only 1/5 of its power into a narrow listener's band.
  EXPECT_DOUBLE_EQ(InBandPowerFraction(wide, narrow), 0.2);
  // Partial overlaps.
  EXPECT_DOUBLE_EQ(InBandPowerFraction(wide, mid), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(InBandPowerFraction(mid, wide), 1.0);
  // Disjoint channels exchange nothing.
  EXPECT_DOUBLE_EQ(InBandPowerFraction(narrow, Channel{20, ChannelWidth::kW5}),
                   0.0);
  // Identity.
  EXPECT_DOUBLE_EQ(InBandPowerFraction(wide, wide), 1.0);
}

}  // namespace
}  // namespace whitefi
