// Tests for the frame tracer and the fairness statistic.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/tracer.h"
#include "sim/traffic.h"
#include "sim/world.h"
#include "util/stats.h"

namespace whitefi {
namespace {

DeviceConfig At(double x, Channel ch) {
  DeviceConfig c;
  c.position = {x, 0};
  c.initial_channel = ch;
  c.ssid = 1;
  return c;
}

TEST(Tracer, RecordsFramesWithTimeAndChannel) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, ch));
  Device& b = world.Create<Device>(At(50, ch));
  Tracer tracer(world);
  Frame data;
  data.type = FrameType::kData;
  data.dst = b.NodeId();
  data.bytes = 1028;
  a.mac().Enqueue(data);
  world.RunFor(0.1);
  // Data frame + its ACK.
  EXPECT_EQ(tracer.CountOf(FrameType::kData), 1u);
  EXPECT_EQ(tracer.CountOf(FrameType::kAck), 1u);
  ASSERT_EQ(tracer.Records().size(), 2u);
  EXPECT_NE(tracer.Records()[0].line.find("Data"), std::string::npos);
  EXPECT_NE(tracer.Records()[0].line.find("(ch31, 20MHz)"), std::string::npos);
  EXPECT_LT(tracer.Records()[0].at, tracer.Records()[1].at);
}

TEST(Tracer, TypeFilterAndLiveStream) {
  World world;
  const Channel ch{5, ChannelWidth::kW10};
  Device& a = world.Create<Device>(At(0, ch));
  Device& b = world.Create<Device>(At(50, ch));
  std::ostringstream live;
  TracerOptions options;
  options.only = {FrameType::kData};
  options.live = &live;
  Tracer tracer(world, options);
  Frame data;
  data.type = FrameType::kData;
  data.dst = b.NodeId();
  data.bytes = 528;
  a.mac().Enqueue(data);
  a.mac().Enqueue(data);
  world.RunFor(0.2);
  // Only the data frames are recorded; ACKs are counted but filtered.
  EXPECT_EQ(tracer.Records().size(), 2u);
  EXPECT_EQ(tracer.CountOf(FrameType::kAck), 2u);
  EXPECT_NE(live.str().find("Data"), std::string::npos);
  EXPECT_EQ(live.str().find("Ack"), std::string::npos);
}

TEST(Tracer, NotesAndCap) {
  World world;
  TracerOptions options;
  options.max_records = 1;
  Tracer tracer(world, options);
  tracer.Note("first milestone");
  tracer.Note("second (beyond the cap)");
  ASSERT_EQ(tracer.Records().size(), 1u);
  EXPECT_NE(tracer.ToString().find("first milestone"), std::string::npos);
}

TEST(Tracer, CountOfStaysExactBeyondCap) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, ch));
  Device& b = world.Create<Device>(At(50, ch));
  TracerOptions options;
  options.max_records = 3;
  Tracer tracer(world, options);
  Frame data;
  data.type = FrameType::kData;
  data.dst = b.NodeId();
  data.bytes = 1028;
  for (int i = 0; i < 8; ++i) a.mac().Enqueue(data);
  world.RunFor(1.0);
  // Recording stopped at the cap, but counts kept going: 8 data + 8 ACKs.
  EXPECT_EQ(tracer.Records().size(), 3u);
  EXPECT_EQ(tracer.CountOf(FrameType::kData), 8u);
  EXPECT_EQ(tracer.CountOf(FrameType::kAck), 8u);
}

TEST(Tracer, KeepLastRingBufferHoldsNewestRecords) {
  World world;
  TracerOptions options;
  options.max_records = 2;
  options.keep_last = true;
  Tracer tracer(world, options);
  tracer.Note("one");
  tracer.Note("two");
  tracer.Note("three");
  ASSERT_EQ(tracer.Records().size(), 2u);
  EXPECT_NE(tracer.Records()[0].line.find("two"), std::string::npos);
  EXPECT_NE(tracer.Records()[1].line.find("three"), std::string::npos);
  EXPECT_EQ(tracer.ToString().find("one"), std::string::npos);
}

TEST(Tracer, KeepLastWithTypeFilter) {
  World world;
  const Channel ch{5, ChannelWidth::kW10};
  Device& a = world.Create<Device>(At(0, ch));
  Device& b = world.Create<Device>(At(50, ch));
  TracerOptions options;
  options.only = {FrameType::kData};
  options.max_records = 2;
  options.keep_last = true;
  Tracer tracer(world, options);
  Frame data;
  data.type = FrameType::kData;
  data.dst = b.NodeId();
  data.bytes = 528;
  for (int i = 0; i < 5; ++i) a.mac().Enqueue(data);
  world.RunFor(1.0);
  // Ring holds the two newest data frames; counts are exact for all types.
  EXPECT_EQ(tracer.Records().size(), 2u);
  EXPECT_EQ(tracer.CountOf(FrameType::kData), 5u);
  EXPECT_EQ(tracer.CountOf(FrameType::kAck), 5u);
}

// ------------------------------------------------------------- fairness --

TEST(Fairness, JainIndexBasics) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 0.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({1.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0.0, 0.0}), 1.0);
  EXPECT_NEAR(JainFairnessIndex({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(Fairness, DcfSharesFairlyAmongEqualClients) {
  // Three equal clients of a saturated downlink: Jain index near 1.
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& ap = world.Create<Device>(At(0, ch));
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(world.Create<Device>(At(40.0 + 10 * i, ch)).NodeId());
  }
  SaturatedSource downlink(ap, ids, 1000);
  downlink.Start();
  world.RunFor(5.0);
  std::vector<double> shares;
  for (int id : ids) shares.push_back(static_cast<double>(world.AppBytes(id)));
  EXPECT_GT(JainFairnessIndex(shares), 0.99);
}

}  // namespace
}  // namespace whitefi
