// Tests for the MCham metric and the spectrum-assignment algorithm,
// including the paper's two worked examples from Section 4.1.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>

#include "core/assignment.h"
#include "core/mcham.h"

namespace whitefi {
namespace {

BandObservation UniformObservation(double airtime, int aps) {
  BandObservation obs = EmptyBandObservation();
  for (auto& o : obs) {
    o.airtime = airtime;
    o.ap_count = aps;
  }
  return obs;
}

// ------------------------------------------------------------------ rho ---

TEST(Rho, ResidualAirtimeWhenMostlyFree) {
  EXPECT_DOUBLE_EQ(Rho({0.0, 0, false}), 1.0);
  // With no contending AP the fair-share floor is 1, so rho is 1 no matter
  // the airtime reading (B counts the APs producing that airtime, so in
  // practice A > 0 implies B >= 1).
  EXPECT_DOUBLE_EQ(Rho({0.2, 0, false}), 1.0);
  EXPECT_DOUBLE_EQ(Rho({0.2, 1, false}), 0.8);
  EXPECT_DOUBLE_EQ(Rho({0.3, 1, false}), 0.7);  // 0.7 > 1/2.
}

TEST(Rho, FairShareFloorWhenSaturated) {
  // Paper: "even when the medium is completely utilized ... a node can
  // still expect its fair share when contending" — rho = 1/(B+1).
  EXPECT_DOUBLE_EQ(Rho({1.0, 1, false}), 0.5);
  EXPECT_DOUBLE_EQ(Rho({1.0, 3, false}), 0.25);
  EXPECT_DOUBLE_EQ(Rho({0.9, 1, false}), 0.5);  // max(0.1, 0.5).
}

TEST(Rho, ClampsPathologicalInputs) {
  EXPECT_DOUBLE_EQ(Rho({1.5, 0, false}), 1.0);   // Airtime clamped; B=0.
  EXPECT_DOUBLE_EQ(Rho({-0.5, 0, false}), 1.0);
  EXPECT_DOUBLE_EQ(Rho({1.0, -3, false}), 1.0);  // Negative B treated as 0.
}

class RhoRange : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(RhoRange, AlwaysWithinFairShareAndOne) {
  const auto [airtime, aps] = GetParam();
  const double rho = Rho({airtime, aps, false});
  EXPECT_GE(rho, 1.0 / (aps + 1.0) - 1e-12);
  EXPECT_LE(rho, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RhoRange,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.35, 0.6, 0.95, 1.0),
                       ::testing::Values(0, 1, 2, 5)));

// ---------------------------------------------------------------- mcham ---

TEST(MCham, PaperExample1IdleChannelGivesOptimalCapacity) {
  // "If there is no background interference ... MCham evaluates to the
  // optimal channel capacity: 1 for 5 MHz, 2 for 10 MHz, 4 for 20 MHz."
  const BandObservation idle = EmptyBandObservation();
  EXPECT_DOUBLE_EQ(MCham(Channel{10, ChannelWidth::kW5}, idle), 1.0);
  EXPECT_DOUBLE_EQ(MCham(Channel{10, ChannelWidth::kW10}, idle), 2.0);
  EXPECT_DOUBLE_EQ(MCham(Channel{10, ChannelWidth::kW20}, idle), 4.0);
  EXPECT_DOUBLE_EQ(IdleMCham(ChannelWidth::kW5), 1.0);
  EXPECT_DOUBLE_EQ(IdleMCham(ChannelWidth::kW10), 2.0);
  EXPECT_DOUBLE_EQ(IdleMCham(ChannelWidth::kW20), 4.0);
}

TEST(MCham, PaperExample2) {
  // "Out of the 5 UHF channels spanned, three have no background
  // interference, one has 1 AP and airtime 0.9, and one has 1 AP with
  // airtime 0.2: MCham = 4 * 0.5 * 0.8 = 1.6."
  BandObservation obs = EmptyBandObservation();
  obs[8] = {0.9, 1, false};
  obs[12] = {0.2, 1, false};
  EXPECT_DOUBLE_EQ(MCham(Channel{10, ChannelWidth::kW20}, obs), 1.6);
}

TEST(MCham, IncumbentAnywhereInSpanZeroesTheMetric) {
  BandObservation obs = EmptyBandObservation();
  obs[12].incumbent = true;
  EXPECT_DOUBLE_EQ(MCham(Channel{10, ChannelWidth::kW20}, obs), 0.0);
  EXPECT_DOUBLE_EQ(MCham(Channel{12, ChannelWidth::kW5}, obs), 0.0);
  // Channels not covering 12 are unaffected.
  EXPECT_DOUBLE_EQ(MCham(Channel{10, ChannelWidth::kW10}, obs), 2.0);
}

TEST(MCham, InvalidChannelIsZero) {
  EXPECT_DOUBLE_EQ(MCham(Channel{0, ChannelWidth::kW20},
                         EmptyBandObservation()),
                   0.0);
}

TEST(MCham, ProductNotMinOrMax) {
  // The paper argues the product is right because traffic on any narrow
  // channel contends with the whole wide channel; check the product
  // against what min/max would give.
  BandObservation obs = EmptyBandObservation();
  obs[9] = {0.5, 1, false};
  obs[11] = {0.5, 1, false};
  // rho = {1, 0.5, 1(10), 0.5, 1} over span 8..12 -> 4 * 0.25 = 1.
  EXPECT_DOUBLE_EQ(MCham(Channel{10, ChannelWidth::kW20}, obs), 1.0);
}

TEST(MCham, WiderIsNotAlwaysBetter) {
  // Heavy background on the edges makes a nested 10 MHz channel beat the
  // 20 MHz one — the core motivation for adaptive width.
  BandObservation obs = EmptyBandObservation();
  obs[8] = {0.95, 2, false};
  obs[12] = {0.95, 2, false};
  EXPECT_GT(MCham(Channel{10, ChannelWidth::kW10}, obs),
            MCham(Channel{10, ChannelWidth::kW20}, obs));
}

TEST(MCham, ApDecisionMetricWeightsApByClientCount) {
  const Channel c{10, ChannelWidth::kW10};
  const BandObservation idle = EmptyBandObservation();
  BandObservation busy = UniformObservation(0.5, 0);
  // No clients: metric = AP's own MCham.
  EXPECT_DOUBLE_EQ(ApDecisionMetric(c, idle, {}), 2.0);
  // Two clients: N * MCham_AP + sum of client MChams.
  std::vector<BandObservation> clients{busy, busy};
  const double client_mcham = MCham(c, busy);
  EXPECT_DOUBLE_EQ(ApDecisionMetric(c, idle, clients),
                   2.0 * 2.0 + 2.0 * client_mcham);
}

// ------------------------------------------------------------ assignment --

AssignmentInputs IdleInputs(const SpectrumMap& map) {
  AssignmentInputs inputs;
  inputs.ap_map = map;
  inputs.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    inputs.ap_observation[static_cast<std::size_t>(c)].incumbent =
        map.Occupied(c);
  }
  return inputs;
}

TEST(Assignment, PicksWidestChannelWhenIdle) {
  // Campus map: widest fragment is 6 channels; a 20 MHz channel fits.
  const SpectrumMap map = SpectrumMap::FromFreeTvChannels(
      {26, 27, 28, 29, 30, 33, 34, 35, 39, 48});
  SpectrumAssigner assigner;
  const auto decision = assigner.SelectInitial(IdleInputs(map));
  ASSERT_TRUE(decision.channel.has_value());
  EXPECT_EQ(decision.channel->width, ChannelWidth::kW20);
  EXPECT_EQ(decision.channel->center, IndexOfTvChannel(28));
  EXPECT_DOUBLE_EQ(decision.metric, 4.0);
}

TEST(Assignment, AvoidsBusyWideChannelForCleanNarrowOne) {
  const SpectrumMap map = SpectrumMap::FromFreeTvChannels(
      {26, 27, 28, 29, 30, 33, 34, 35});
  AssignmentInputs inputs = IdleInputs(map);
  // Saturate the 20 MHz fragment with two APs per channel.
  for (int tv = 26; tv <= 30; ++tv) {
    auto& o = inputs.ap_observation[static_cast<std::size_t>(IndexOfTvChannel(tv))];
    o.airtime = 1.0;
    o.ap_count = 2;
  }
  SpectrumAssigner assigner;
  const auto decision = assigner.SelectInitial(inputs);
  ASSERT_TRUE(decision.channel.has_value());
  // Clean 10 MHz (metric 2) beats saturated 20 MHz (4/3^5 ~ 0.016 ... well,
  // 4 * (1/3)^5) and any 5 MHz (1).
  EXPECT_EQ(decision.channel->width, ChannelWidth::kW10);
  EXPECT_EQ(decision.channel->center, IndexOfTvChannel(34));
}

TEST(Assignment, HysteresisSuppressesMarginalSwitch) {
  const SpectrumMap map = SpectrumMap::FromFreeTvChannels(
      {26, 27, 28, 29, 30, 33, 34, 35});
  AssignmentInputs inputs = IdleInputs(map);
  // Current 20 MHz channel has slight background (metric a bit under 4);
  // the alternative is... still the same channel; make current the 10 MHz
  // and candidate the slightly-better 20 MHz.
  for (int tv = 26; tv <= 30; ++tv) {
    auto& o =
        inputs.ap_observation[static_cast<std::size_t>(IndexOfTvChannel(tv))];
    o.airtime = 0.12;
    o.ap_count = 1;
  }
  // 20 MHz metric: 4 * 0.88^5 ~ 2.11; current 10 MHz metric: 2.
  const Channel current{IndexOfTvChannel(34), ChannelWidth::kW10};
  AssignmentParams params;
  params.hysteresis = 1.15;
  SpectrumAssigner assigner(params);
  const auto decision = assigner.Reevaluate(inputs, current);
  ASSERT_TRUE(decision.channel.has_value());
  EXPECT_FALSE(decision.switched);  // 2.11 < 1.15 * 2.
  EXPECT_EQ(*decision.channel, current);

  // With hysteresis off, the switch happens.
  AssignmentParams eager;
  eager.hysteresis = 1.0;
  const auto eager_decision =
      SpectrumAssigner(eager).Reevaluate(inputs, current);
  EXPECT_TRUE(eager_decision.switched);
  EXPECT_EQ(eager_decision.channel->width, ChannelWidth::kW20);
}

TEST(Assignment, IncumbentOnCurrentForcesSwitchIgnoringHysteresis) {
  const SpectrumMap map = SpectrumMap::FromFreeTvChannels({26, 27, 28, 33});
  AssignmentInputs inputs = IdleInputs(map);
  const Channel current{IndexOfTvChannel(27), ChannelWidth::kW10};
  // A mic appeared on TV channel 27 (seen in both map and observation).
  inputs.ap_map.SetOccupied(IndexOfTvChannel(27));
  inputs.ap_observation[static_cast<std::size_t>(IndexOfTvChannel(27))]
      .incumbent = true;
  const auto decision = SpectrumAssigner().Reevaluate(inputs, current);
  ASSERT_TRUE(decision.channel.has_value());
  EXPECT_TRUE(decision.switched);
  EXPECT_FALSE(decision.channel->Contains(IndexOfTvChannel(27)));
}

TEST(Assignment, ClientMapRestrictsChoice) {
  // Spatial variation: the AP sees 26-30 free, but a client sees 28
  // occupied — the OR'd map forbids any channel covering 28.
  AssignmentInputs inputs = IdleInputs(
      SpectrumMap::FromFreeTvChannels({26, 27, 28, 29, 30}));
  SpectrumMap client = SpectrumMap::FromFreeTvChannels({26, 27, 29, 30});
  inputs.client_maps.push_back(client);
  inputs.client_observations.push_back(EmptyBandObservation());
  const auto decision = SpectrumAssigner().SelectInitial(inputs);
  ASSERT_TRUE(decision.channel.has_value());
  EXPECT_FALSE(decision.channel->Contains(IndexOfTvChannel(28)));
  EXPECT_EQ(decision.channel->width, ChannelWidth::kW5);
}

TEST(Assignment, NoUsableChannelReturnsEmpty) {
  SpectrumMap all_occupied;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) all_occupied.SetOccupied(c);
  const auto decision =
      SpectrumAssigner().SelectInitial(IdleInputs(all_occupied));
  EXPECT_FALSE(decision.channel.has_value());
  EXPECT_FALSE(decision.switched);
}

TEST(Assignment, BackupIs5MHzAndDisjointFromMain) {
  const SpectrumMap map = SpectrumMap::FromFreeTvChannels(
      {26, 27, 28, 29, 30, 33, 34, 35, 39});
  const AssignmentInputs inputs = IdleInputs(map);
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const auto backup = SpectrumAssigner().SelectBackup(inputs, main);
  ASSERT_TRUE(backup.has_value());
  EXPECT_EQ(backup->width, ChannelWidth::kW5);
  EXPECT_FALSE(backup->Overlaps(main));
  EXPECT_TRUE(map.CanUse(*backup));
}

TEST(Assignment, BackupFallsBackToOverlapWhenNothingElseFree) {
  const SpectrumMap map = SpectrumMap::FromFreeTvChannels({26, 27, 28});
  const AssignmentInputs inputs = IdleInputs(map);
  const Channel main{IndexOfTvChannel(27), ChannelWidth::kW10};
  const auto backup = SpectrumAssigner().SelectBackup(inputs, main);
  ASSERT_TRUE(backup.has_value());
  EXPECT_EQ(backup->width, ChannelWidth::kW5);
  EXPECT_TRUE(backup->Overlaps(main));  // Only overlapping space exists.
}

// ------------------------------------------------------------ mcham scan ---

BandObservation RandomObservation(std::mt19937& rng) {
  std::uniform_real_distribution<double> airtime(-0.1, 1.2);  // Pathological
  std::uniform_int_distribution<int> aps(-1, 5);              // inputs too.
  std::bernoulli_distribution incumbent(0.15);
  BandObservation obs = EmptyBandObservation();
  for (auto& o : obs) {
    o.airtime = airtime(rng);
    o.ap_count = aps(rng);
    o.incumbent = incumbent(rng);
  }
  return obs;
}

std::uint64_t Bits(double x) { return std::bit_cast<std::uint64_t>(x); }

TEST(MChamScan, BitEqualToNaiveAcrossRandomObservations) {
  // MChamScan's precomputed window products must reproduce the naive
  // per-candidate walk EXACTLY (same association order), not just within
  // tolerance: the assigner's argmax ties and the hysteresis comparison
  // both hinge on exact values, so any ULP drift would change decisions.
  std::mt19937 rng(20090817);
  for (int trial = 0; trial < 50; ++trial) {
    const BandObservation obs = RandomObservation(rng);
    const MChamScan scan(obs);
    for (int w = 0; w < kNumWidths; ++w) {
      const auto width = static_cast<ChannelWidth>(w);
      for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
        const Channel channel{c, width};
        if (!channel.IsValid()) continue;
        EXPECT_EQ(Bits(scan.Evaluate(channel)), Bits(MCham(channel, obs)))
            << "width " << w << " center " << c << " trial " << trial;
      }
    }
  }
}

TEST(MChamScan, InvalidChannelIsZero) {
  const MChamScan scan(EmptyBandObservation());
  EXPECT_EQ(scan.Evaluate(Channel{-1, ChannelWidth::kW5}), 0.0);
  EXPECT_EQ(scan.Evaluate(Channel{0, ChannelWidth::kW20}), 0.0);
}

TEST(ApDecisionScan, BitEqualToApDecisionMetric) {
  std::mt19937 rng(5309);
  for (int clients = 0; clients <= 4; ++clients) {
    const BandObservation ap_obs = RandomObservation(rng);
    std::vector<BandObservation> client_obs;
    for (int i = 0; i < clients; ++i) client_obs.push_back(RandomObservation(rng));
    const ApDecisionScan scan(ap_obs, client_obs);
    for (int w = 0; w < kNumWidths; ++w) {
      const auto width = static_cast<ChannelWidth>(w);
      for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
        const Channel channel{c, width};
        if (!channel.IsValid()) continue;
        EXPECT_EQ(Bits(scan.Evaluate(channel)),
                  Bits(ApDecisionMetric(channel, ap_obs, client_obs)))
            << "clients " << clients << " width " << w << " center " << c;
      }
    }
  }
}

TEST(Assignment, CombinedMapIsUnion) {
  AssignmentInputs inputs;
  inputs.ap_map = SpectrumMap::FromOccupiedIndices({1});
  inputs.client_maps.push_back(SpectrumMap::FromOccupiedIndices({2}));
  inputs.client_maps.push_back(SpectrumMap::FromOccupiedIndices({3}));
  const SpectrumMap combined = inputs.CombinedMap();
  EXPECT_TRUE(combined.Occupied(1));
  EXPECT_TRUE(combined.Occupied(2));
  EXPECT_TRUE(combined.Occupied(3));
  EXPECT_EQ(combined.NumOccupied(), 3);
}

TEST(Assignment, EvaluateChannelZeroWhenBlockedByAnyMap) {
  AssignmentInputs inputs = IdleInputs(SpectrumMap{});
  inputs.client_maps.push_back(SpectrumMap::FromOccupiedIndices({10}));
  inputs.client_observations.push_back(EmptyBandObservation());
  SpectrumAssigner assigner;
  EXPECT_DOUBLE_EQ(
      assigner.EvaluateChannel(Channel{10, ChannelWidth::kW5}, inputs), 0.0);
  EXPECT_GT(assigner.EvaluateChannel(Channel{20, ChannelWidth::kW5}, inputs),
            0.0);
}

}  // namespace
}  // namespace whitefi
