// Unit + property tests for SIFT: the edge detector, the width matcher,
// airtime estimation, and the chirp length codec.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/signal.h"
#include "sift/airtime.h"
#include "sift/chirp.h"
#include "sift/detector.h"
#include "sift/matcher.h"

namespace whitefi {
namespace {

SiftParams DefaultSift() { return SiftParams{}; }

// Builds a clean synthetic trace: `level` inside bursts, ~0 outside.
std::vector<double> SquareTrace(const std::vector<std::pair<int, int>>& bursts,
                                int total_samples, double level) {
  std::vector<double> samples(static_cast<std::size_t>(total_samples), 0.01);
  for (const auto& [start, len] : bursts) {
    for (int i = start; i < std::min(start + len, total_samples); ++i) {
      samples[static_cast<std::size_t>(i)] = level;
    }
  }
  return samples;
}

// -------------------------------------------------------------- detector --

TEST(SiftDetector, RejectsBadParams) {
  SiftParams p;
  p.window = 0;
  EXPECT_THROW(SiftDetector{p}, std::invalid_argument);
  p = SiftParams{};
  p.threshold = 0.0;
  EXPECT_THROW(SiftDetector{p}, std::invalid_argument);
}

TEST(SiftDetector, NoiseOnlyProducesNoBursts) {
  SignalSynthesizer synth(SignalParams{}, Rng(1));
  SiftDetector detector(DefaultSift());
  const auto bursts = detector.Detect(synth.Synthesize({}, 100000.0));
  EXPECT_TRUE(bursts.empty());
}

TEST(SiftDetector, SquareBurstBoundariesExact) {
  SiftDetector detector(DefaultSift());
  const auto samples = SquareTrace({{100, 50}}, 300, 100.0);
  const auto bursts = detector.Detect(samples);
  ASSERT_EQ(bursts.size(), 1u);
  const double period = DefaultSift().sample_period;
  EXPECT_NEAR(bursts[0].start, 100 * period, period);
  EXPECT_NEAR(bursts[0].end, 150 * period, period);
  EXPECT_GT(bursts[0].peak_average, DefaultSift().threshold);
}

TEST(SiftDetector, SeparatesBurstsAcrossShortGap) {
  // A 10-sample gap (one 20 MHz SIFS) must be preserved by the 5-sample
  // window — this is exactly why the paper bounds the window below the
  // minimum SIFS.
  SiftDetector detector(DefaultSift());
  const auto samples = SquareTrace({{100, 200}, {310, 40}}, 500, 100.0);
  const auto bursts = detector.Detect(samples);
  ASSERT_EQ(bursts.size(), 2u);
  const double period = DefaultSift().sample_period;
  EXPECT_NEAR(bursts[1].start - bursts[0].end, 10 * period, 2 * period);
}

TEST(SiftDetector, WindowTooLargeBridgesSifsGap) {
  // Control experiment: a 16-sample window erases the 10-sample gap,
  // merging data and ACK into one burst.
  SiftParams params = DefaultSift();
  params.window = 16;
  SiftDetector detector(params);
  const auto samples = SquareTrace({{100, 200}, {310, 40}}, 500, 100.0);
  EXPECT_EQ(detector.Detect(samples).size(), 1u);
}

TEST(SiftDetector, RidesOverMidPacketDips) {
  // OFDM envelopes dip near zero mid-packet (Figure 5); the moving average
  // must not split the packet on a couple of low samples.
  auto samples = SquareTrace({{100, 100}}, 300, 100.0);
  samples[150] = 0.0;
  samples[151] = 0.1;
  SiftDetector detector(DefaultSift());
  EXPECT_EQ(detector.Detect(samples).size(), 1u);
}

TEST(SiftDetector, StreamingBlocksEqualOneShot) {
  SignalSynthesizer synth(SignalParams{}, Rng(7));
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto schedule = MakeCbrSchedule(t, 20, 5000.0, 1000, 500.0);
  const auto samples = synth.Synthesize(schedule, 120000.0);

  SiftDetector one_shot(DefaultSift());
  auto copy = samples;
  const auto expected = one_shot.Detect(copy);

  SiftDetector streaming(DefaultSift());
  // USRP-style 2048-sample blocks.
  for (std::size_t i = 0; i < samples.size(); i += 2048) {
    const std::size_t n = std::min<std::size_t>(2048, samples.size() - i);
    streaming.ProcessBlock({samples.data() + i, n});
  }
  streaming.Flush();
  const auto actual = streaming.TakeBursts();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_DOUBLE_EQ(actual[i].start, expected[i].start);
    EXPECT_DOUBLE_EQ(actual[i].end, expected[i].end);
  }
}

TEST(SiftDetector, FlushClosesOpenBurst) {
  SiftDetector detector(DefaultSift());
  const auto samples = SquareTrace({{100, 150}}, 250, 100.0);  // Burst runs off.
  detector.ProcessBlock(samples);
  EXPECT_TRUE(detector.TakeBursts().empty());  // Still open.
  detector.Flush();
  const auto bursts = detector.TakeBursts();
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_NEAR(bursts[0].end, 250 * DefaultSift().sample_period, 1.1);
}

TEST(SiftDetector, TakeBurstsClears) {
  SiftDetector detector(DefaultSift());
  detector.Detect(SquareTrace({{10, 20}}, 100, 50.0));
  EXPECT_TRUE(detector.TakeBursts().empty());
}

// Property test: synthesized CBR traffic at every width is detected with
// the right count and durations.
class DetectorWidthSweep : public ::testing::TestWithParam<ChannelWidth> {};

TEST_P(DetectorWidthSweep, DetectsAllExchangesAtWidth) {
  const PhyTiming t = PhyTiming::ForWidth(GetParam());
  SignalParams params;
  params.deep_ramp_probability = 0.0;  // Clean hardware for this test.
  SignalSynthesizer synth(params, Rng(42));
  const int kPackets = 25;
  const Us spacing = t.FrameDuration(1000) + t.Sifs() + t.AckDuration() + 2000.0;
  const auto schedule = MakeCbrSchedule(t, kPackets, spacing, 1000, 300.0);
  const auto samples = synth.Synthesize(schedule, kPackets * spacing + 2000.0);

  SiftDetector detector(DefaultSift());
  const auto bursts = detector.Detect(samples);
  ASSERT_EQ(bursts.size(), 2u * kPackets);
  for (int i = 0; i < kPackets; ++i) {
    // Data burst duration close to the true frame duration...
    EXPECT_NEAR(bursts[2 * i].Duration(), t.FrameDuration(1000),
                0.05 * t.FrameDuration(1000));
    // ...and ACK duration close to the ACK air time.
    EXPECT_NEAR(bursts[2 * i + 1].Duration(), t.AckDuration(),
                0.25 * t.AckDuration() + 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, DetectorWidthSweep,
                         ::testing::ValuesIn(kAllWidths));

// --------------------------------------------------------------- matcher --

DetectedBurst MakeBurst(Us start, Us duration) {
  return DetectedBurst{start, start + duration, 100.0};
}

class MatcherWidthSweep : public ::testing::TestWithParam<ChannelWidth> {};

TEST_P(MatcherWidthSweep, ClassifiesExactTimings) {
  const PhyTiming t = PhyTiming::ForWidth(GetParam());
  const auto data = MakeBurst(0.0, t.FrameDuration(1000));
  const auto ack = MakeBurst(data.end + t.Sifs(), t.AckDuration());
  PatternMatcher matcher;
  const auto width = matcher.ClassifyPair(data, ack);
  ASSERT_TRUE(width.has_value());
  EXPECT_EQ(*width, GetParam());
}

TEST_P(MatcherWidthSweep, ClassifiesBeaconCtsPair) {
  const PhyTiming t = PhyTiming::ForWidth(GetParam());
  const auto beacon = MakeBurst(0.0, t.BeaconDuration());
  const auto cts = MakeBurst(beacon.end + t.Sifs(), t.CtsDuration());
  PatternMatcher matcher;
  const auto width = matcher.ClassifyPair(beacon, cts);
  ASSERT_TRUE(width.has_value());
  EXPECT_EQ(*width, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, MatcherWidthSweep,
                         ::testing::ValuesIn(kAllWidths));

TEST(Matcher, RejectsWrongGap) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto data = MakeBurst(0.0, t.FrameDuration(1000));
  // Gap of 70 us matches no width's SIFS (10/20/40 with 45% tolerance).
  const auto ack = MakeBurst(data.end + 70.0, t.AckDuration());
  EXPECT_FALSE(PatternMatcher().ClassifyPair(data, ack).has_value());
}

TEST(Matcher, RejectsWrongAckDuration) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto data = MakeBurst(0.0, t.FrameDuration(1000));
  const auto bogus = MakeBurst(data.end + t.Sifs(), 500.0);
  EXPECT_FALSE(PatternMatcher().ClassifyPair(data, bogus).has_value());
}

TEST(Matcher, RejectsAckAckPair) {
  // Two ACK-sized bursts SIFS apart: the first is too short to be data.
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto a = MakeBurst(0.0, t.AckDuration());
  const auto b = MakeBurst(a.end + t.Sifs(), t.AckDuration());
  EXPECT_FALSE(PatternMatcher().ClassifyPair(a, b).has_value());
}

TEST(Matcher, RejectsNegativeGap) {
  const auto a = MakeBurst(0.0, 300.0);
  const auto b = MakeBurst(100.0, 44.0);  // Overlapping.
  EXPECT_FALSE(PatternMatcher().ClassifyPair(a, b).has_value());
}

TEST(Matcher, MatchAllConsumesPairsOnce) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW10);
  std::vector<DetectedBurst> bursts;
  for (int i = 0; i < 3; ++i) {
    const Us base = i * 5000.0;
    bursts.push_back(MakeBurst(base, t.FrameDuration(1000)));
    bursts.push_back(MakeBurst(bursts.back().end + t.Sifs(), t.AckDuration()));
  }
  const auto matches = PatternMatcher().MatchAll(bursts);
  ASSERT_EQ(matches.size(), 3u);
  for (std::size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i].width, ChannelWidth::kW10);
    EXPECT_EQ(matches[i].data_burst, 2 * i);
    EXPECT_EQ(matches[i].ack_burst, 2 * i + 1);
  }
}

TEST(Matcher, DominantWidthFromMixedTraffic) {
  const PhyTiming t20 = PhyTiming::ForWidth(ChannelWidth::kW20);
  const PhyTiming t5 = PhyTiming::ForWidth(ChannelWidth::kW5);
  std::vector<DetectedBurst> bursts;
  Us at = 0.0;
  for (int i = 0; i < 4; ++i) {  // Four 20 MHz exchanges...
    bursts.push_back(MakeBurst(at, t20.FrameDuration(1000)));
    bursts.push_back(MakeBurst(bursts.back().end + t20.Sifs(),
                               t20.AckDuration()));
    at = bursts.back().end + 3000.0;
  }
  // ...and one 5 MHz exchange.
  bursts.push_back(MakeBurst(at, t5.FrameDuration(1000)));
  bursts.push_back(MakeBurst(bursts.back().end + t5.Sifs(), t5.AckDuration()));

  const auto width = PatternMatcher().DominantWidth(bursts);
  ASSERT_TRUE(width.has_value());
  EXPECT_EQ(*width, ChannelWidth::kW20);
  EXPECT_FALSE(PatternMatcher().DominantWidth({}).has_value());
}

// End-to-end: synthesize -> detect -> classify, per width; this is the full
// SIFT pipeline the paper uses for AP discovery.
class PipelineWidthSweep : public ::testing::TestWithParam<ChannelWidth> {};

TEST_P(PipelineWidthSweep, WidthAlwaysCorrectEvenWithRampArtifact) {
  const PhyTiming t = PhyTiming::ForWidth(GetParam());
  SignalParams params;  // Default includes the 5 MHz deep-ramp artifact.
  SignalSynthesizer synth(params, Rng(9));
  const Us spacing = t.FrameDuration(1000) + t.Sifs() + t.AckDuration() + 3000.0;
  const auto schedule = MakeCbrSchedule(t, 30, spacing, 1000, 400.0);
  const auto samples = synth.Synthesize(schedule, 30 * spacing + 3000.0);
  SiftDetector detector(SiftParams{});
  const auto width = PatternMatcher().DominantWidth(detector.Detect(samples));
  ASSERT_TRUE(width.has_value());
  // Paper: "SIFT always correctly detects the channel width of the
  // transmitted packet, even when it mis-estimates the packet length."
  EXPECT_EQ(*width, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PipelineWidthSweep,
                         ::testing::ValuesIn(kAllWidths));

// --------------------------------------------------------------- airtime --

TEST(Airtime, BusyFractionBasics) {
  std::vector<DetectedBurst> bursts{MakeBurst(100.0, 200.0),
                                    MakeBurst(500.0, 100.0)};
  EXPECT_DOUBLE_EQ(BusyAirtimeFraction(bursts, 0.0, 1000.0), 0.3);
  EXPECT_DOUBLE_EQ(BusyAirtimeFraction({}, 0.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(BusyAirtimeFraction(bursts, 0.0, 0.0), 0.0);
}

TEST(Airtime, BurstsClippedToWindow) {
  std::vector<DetectedBurst> bursts{MakeBurst(-50.0, 100.0),  // Half inside.
                                    MakeBurst(950.0, 100.0)};  // Half inside.
  EXPECT_DOUBLE_EQ(BusyAirtimeFraction(bursts, 0.0, 1000.0), 0.1);
}

TEST(Airtime, TotalAndEmptyObservation) {
  std::vector<DetectedBurst> bursts{MakeBurst(0.0, 10.0), MakeBurst(20.0, 5.0)};
  EXPECT_DOUBLE_EQ(TotalBurstAirtime(bursts), 15.0);
  const BandObservation obs = EmptyBandObservation();
  EXPECT_EQ(obs.size(), 30u);
  for (const auto& o : obs) {
    EXPECT_DOUBLE_EQ(o.airtime, 0.0);
    EXPECT_EQ(o.ap_count, 0);
    EXPECT_FALSE(o.incumbent);
  }
}

// ----------------------------------------------------------------- chirp --

TEST(ChirpCodec, RoundTripAllIds) {
  const ChirpCodec codec;
  for (int id = 0; id <= codec.params().max_id; ++id) {
    const Us duration = codec.Encode(id);
    const auto decoded = codec.Decode(duration);
    ASSERT_TRUE(decoded.has_value()) << id;
    EXPECT_EQ(*decoded, id);
  }
}

TEST(ChirpCodec, RoundTripSurvivesMeasurementNoise) {
  const ChirpCodec codec;
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const int id = rng.UniformInt(0, codec.params().max_id);
    const Us noise = rng.Uniform(-0.3, 0.3) * codec.params().quantum *
                     codec.params().tolerance;
    const auto decoded = codec.Decode(codec.Encode(id) + noise);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, id);
  }
}

TEST(ChirpCodec, RejectsOutOfBand) {
  const ChirpCodec codec;
  EXPECT_FALSE(codec.Decode(0.0).has_value());
  EXPECT_FALSE(
      codec.Decode(codec.Encode(codec.params().max_id) + 10 * codec.params().quantum)
          .has_value());
  // Between symbols, outside tolerance.
  const Us between = codec.Encode(3) + 0.5 * codec.params().quantum;
  EXPECT_FALSE(codec.Decode(between).has_value());
}

TEST(ChirpCodec, ToleranceBoundaryIsInclusive) {
  // Parameters whose tolerance band edge is an exact double (quantum a
  // power of two, tolerance a dyadic fraction), so the test probes the
  // decoder's comparison itself rather than floating-point rounding.
  ChirpCodecParams p;
  p.quantum = 128.0;
  p.tolerance = 0.25;
  const ChirpCodec codec(p);
  const Us center = codec.Encode(5);
  const Us edge = p.quantum * p.tolerance;  // 32 us off-center, exactly.
  // A burst measured exactly on the band edge still decodes...
  EXPECT_EQ(codec.Decode(center + edge).value_or(-1), 5);
  EXPECT_EQ(codec.Decode(center - edge).value_or(-1), 5);
  // ...and just beyond it (half a microsecond) is rejected, on both sides
  // of both neighbors — the dead zone between symbols is real.
  EXPECT_FALSE(codec.Decode(center + edge + 0.5).has_value());
  EXPECT_FALSE(codec.Decode(center - edge - 0.5).has_value());
  const Us next = codec.Encode(6);
  EXPECT_FALSE(codec.Decode(next - edge - 0.5).has_value());
  EXPECT_EQ(codec.Decode(next - edge).value_or(-1), 6);
}

TEST(ChirpCodec, EncodeValidation) {
  const ChirpCodec codec;
  EXPECT_THROW(codec.Encode(-1), std::out_of_range);
  EXPECT_THROW(codec.Encode(codec.params().max_id + 1), std::out_of_range);
}

TEST(ChirpCodec, ParamValidation) {
  ChirpCodecParams p;
  p.quantum = 0.0;
  EXPECT_THROW(ChirpCodec{p}, std::invalid_argument);
  p = ChirpCodecParams{};
  p.tolerance = 0.5;
  EXPECT_THROW(ChirpCodec{p}, std::invalid_argument);
}

TEST(ChirpCodec, DecodesFromDetectedBurst) {
  const ChirpCodec codec;
  DetectedBurst burst{1000.0, 1000.0 + codec.Encode(17), 50.0};
  const auto decoded = codec.Decode(burst);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, 17);
}

// End-to-end chirp: synthesize a chirp burst, SIFT-detect it, decode the id.
TEST(ChirpCodec, EndToEndThroughSift) {
  const ChirpCodec codec;
  SignalParams params;
  SignalSynthesizer synth(params, Rng(12));
  for (int id : {0, 5, 31, 63}) {
    const Burst burst{2000.0, codec.Encode(id), false, 1.0};
    const auto samples = synth.Synthesize({{burst}}, 15000.0);
    SiftDetector detector(SiftParams{});
    const auto bursts = detector.Detect(samples);
    ASSERT_EQ(bursts.size(), 1u) << id;
    const auto decoded = codec.Decode(bursts[0]);
    ASSERT_TRUE(decoded.has_value()) << id;
    EXPECT_EQ(*decoded, id);
  }
}

}  // namespace
}  // namespace whitefi
