// Unit + property tests for the spectrum model: UHF channels, WhiteFi
// channels, spectrum maps, incumbents, locales, and the campus model.
#include <gtest/gtest.h>

#include <algorithm>

#include "spectrum/campus.h"
#include "spectrum/channel.h"
#include "spectrum/incumbents.h"
#include "spectrum/locales.h"
#include "spectrum/spectrum_map.h"
#include "spectrum/uhf.h"
#include "util/stats.h"

namespace whitefi {
namespace {

// ------------------------------------------------------------------ uhf ---

TEST(Uhf, IndexTvChannelRoundTripAll30) {
  for (UhfIndex i = 0; i < kNumUhfChannels; ++i) {
    const int tv = TvChannelNumber(i);
    EXPECT_GE(tv, 21);
    EXPECT_LE(tv, 51);
    EXPECT_NE(tv, 37);
    EXPECT_EQ(IndexOfTvChannel(tv), i);
  }
}

TEST(Uhf, KnownMappings) {
  EXPECT_EQ(TvChannelNumber(0), 21);
  EXPECT_EQ(TvChannelNumber(15), 36);
  EXPECT_EQ(TvChannelNumber(16), 38);
  EXPECT_EQ(TvChannelNumber(29), 51);
}

TEST(Uhf, Frequencies) {
  // Channel 21 occupies 512-518 MHz.
  EXPECT_DOUBLE_EQ(LowEdgeMHz(IndexOfTvChannel(21)), 512.0);
  EXPECT_DOUBLE_EQ(CenterFrequencyMHz(IndexOfTvChannel(21)), 515.0);
  // Channel 51 ends at 698 MHz (the top of the paper's 180 MHz band).
  EXPECT_DOUBLE_EQ(LowEdgeMHz(IndexOfTvChannel(51)) + kUhfChannelWidthMHz,
                   698.0);
  // Channel 38 starts at 614 MHz (above the 608-614 MHz channel 37).
  EXPECT_DOUBLE_EQ(LowEdgeMHz(IndexOfTvChannel(38)), 614.0);
}

TEST(Uhf, InvalidInputsThrow) {
  EXPECT_THROW(TvChannelNumber(-1), std::out_of_range);
  EXPECT_THROW(TvChannelNumber(30), std::out_of_range);
  EXPECT_THROW(IndexOfTvChannel(20), std::out_of_range);
  EXPECT_THROW(IndexOfTvChannel(37), std::out_of_range);
  EXPECT_THROW(IndexOfTvChannel(52), std::out_of_range);
}

TEST(Uhf, ContiguityBreaksOnlyAtChannel37) {
  for (UhfIndex i = 0; i + 1 < kNumUhfChannels; ++i) {
    EXPECT_EQ(FrequencyContiguous(i, i + 1), i != 15) << "index " << i;
  }
  EXPECT_FALSE(FrequencyContiguous(3, 5));  // Non-adjacent indices.
  EXPECT_FALSE(FrequencyContiguous(5, 5));
  EXPECT_FALSE(FrequencyContiguous(-1, 0));
}

TEST(Uhf, Label) {
  EXPECT_EQ(UhfChannelLabel(0), "ch21(515MHz)");
}

// -------------------------------------------------------------- channel ---

TEST(Channel, WidthProperties) {
  EXPECT_DOUBLE_EQ(WidthMHz(ChannelWidth::kW5), 5.0);
  EXPECT_DOUBLE_EQ(WidthMHz(ChannelWidth::kW10), 10.0);
  EXPECT_DOUBLE_EQ(WidthMHz(ChannelWidth::kW20), 20.0);
  EXPECT_EQ(SpanChannels(ChannelWidth::kW5), 1);
  EXPECT_EQ(SpanChannels(ChannelWidth::kW10), 3);
  EXPECT_EQ(SpanChannels(ChannelWidth::kW20), 5);
  EXPECT_EQ(NarrowerWidth(ChannelWidth::kW20), ChannelWidth::kW10);
  EXPECT_EQ(NarrowerWidth(ChannelWidth::kW10), ChannelWidth::kW5);
  EXPECT_THROW(NarrowerWidth(ChannelWidth::kW5), std::invalid_argument);
  EXPECT_EQ(WidthLabel(ChannelWidth::kW10), "10MHz");
}

TEST(Channel, PaperCounts30_28_26) {
  EXPECT_EQ(ChannelsOfWidth(ChannelWidth::kW5).size(), 30u);
  EXPECT_EQ(ChannelsOfWidth(ChannelWidth::kW10).size(), 28u);
  EXPECT_EQ(ChannelsOfWidth(ChannelWidth::kW20).size(), 26u);
  EXPECT_EQ(AllChannels().size(), 84u);  // Paper footnote 3.
}

TEST(Channel, GapAwareEnumerationExcludesStraddlers) {
  const ChannelEnumerationOptions gap{.respect_channel37_gap = true};
  // 10 MHz channels centered at indices 15 and 16 straddle the gap.
  EXPECT_EQ(ChannelsOfWidth(ChannelWidth::kW10, gap).size(), 26u);
  // 20 MHz channels centered at 14, 15, 16, 17 straddle it.
  EXPECT_EQ(ChannelsOfWidth(ChannelWidth::kW20, gap).size(), 22u);
  EXPECT_EQ(ChannelsOfWidth(ChannelWidth::kW5, gap).size(), 30u);
  EXPECT_EQ(AllChannels(gap).size(), 78u);
}

TEST(Channel, SpanAndContains) {
  const Channel c{10, ChannelWidth::kW20};
  EXPECT_EQ(c.Low(), 8);
  EXPECT_EQ(c.High(), 12);
  EXPECT_TRUE(c.Contains(8));
  EXPECT_TRUE(c.Contains(12));
  EXPECT_FALSE(c.Contains(7));
  EXPECT_FALSE(c.Contains(13));
}

TEST(Channel, Validity) {
  EXPECT_TRUE((Channel{0, ChannelWidth::kW5}.IsValid()));
  EXPECT_FALSE((Channel{0, ChannelWidth::kW10}.IsValid()));
  EXPECT_FALSE((Channel{1, ChannelWidth::kW20}.IsValid()));
  EXPECT_TRUE((Channel{2, ChannelWidth::kW20}.IsValid()));
  EXPECT_FALSE((Channel{28, ChannelWidth::kW20}.IsValid()));
  EXPECT_TRUE((Channel{27, ChannelWidth::kW20}.IsValid()));
}

TEST(Channel, PhysicalContiguity) {
  // Center 15 (ch36) at 10 MHz spans indices 14..16, which straddles the
  // channel-37 frequency gap.
  EXPECT_FALSE((Channel{15, ChannelWidth::kW10}.IsPhysicallyContiguous()));
  EXPECT_TRUE((Channel{14, ChannelWidth::kW10}.IsPhysicallyContiguous()));
  EXPECT_TRUE((Channel{15, ChannelWidth::kW5}.IsPhysicallyContiguous()));
  EXPECT_FALSE((Channel{16, ChannelWidth::kW20}.IsPhysicallyContiguous()));
}

TEST(Channel, Overlaps) {
  const Channel a{10, ChannelWidth::kW20};  // 8..12
  const Channel b{13, ChannelWidth::kW10};  // 12..14
  const Channel c{15, ChannelWidth::kW5};   // 15
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_TRUE(a.Overlaps(a));
}

TEST(Channel, ToStringUsesTvNumbers) {
  EXPECT_EQ((Channel{0, ChannelWidth::kW5}.ToString()), "(ch21, 5MHz)");
  EXPECT_EQ((Channel{7, ChannelWidth::kW20}.ToString()), "(ch28, 20MHz)");
}

// Property: every enumerated channel is valid, and enumeration is sorted by
// center within each width.
TEST(Channel, EnumerationProperties) {
  for (ChannelWidth w : kAllWidths) {
    const auto channels = ChannelsOfWidth(w);
    for (std::size_t i = 0; i < channels.size(); ++i) {
      EXPECT_TRUE(channels[i].IsValid());
      EXPECT_EQ(channels[i].width, w);
      if (i > 0) {
        EXPECT_LT(channels[i - 1].center, channels[i].center);
      }
    }
  }
}

// --------------------------------------------------------- spectrum map ---

TEST(SpectrumMap, DefaultAllFree) {
  const SpectrumMap map;
  EXPECT_EQ(map.NumFree(), 30);
  EXPECT_EQ(map.NumOccupied(), 0);
  EXPECT_EQ(map.FreeFragments().size(), 1u);
  EXPECT_EQ(map.WidestFragment(), 30);
}

TEST(SpectrumMap, ConstructionVariants) {
  const auto a = SpectrumMap::FromOccupiedIndices({0, 5, 29});
  EXPECT_TRUE(a.Occupied(0));
  EXPECT_TRUE(a.Occupied(5));
  EXPECT_TRUE(a.Occupied(29));
  EXPECT_EQ(a.NumOccupied(), 3);

  const auto b = SpectrumMap::FromOccupiedTvChannels({21, 51});
  EXPECT_TRUE(b.Occupied(0));
  EXPECT_TRUE(b.Occupied(29));
  EXPECT_EQ(b.NumOccupied(), 2);

  const auto c = SpectrumMap::FromFreeTvChannels({21, 22});
  EXPECT_EQ(c.NumFree(), 2);
  EXPECT_TRUE(c.Free(0));
  EXPECT_TRUE(c.Free(1));
}

TEST(SpectrumMap, SetFlipAndBounds) {
  SpectrumMap map;
  map.SetOccupied(3);
  EXPECT_TRUE(map.Occupied(3));
  map.Flip(3);
  EXPECT_FALSE(map.Occupied(3));
  EXPECT_THROW(map.SetOccupied(30), std::out_of_range);
  EXPECT_THROW(map.Occupied(-1), std::out_of_range);
  EXPECT_THROW(map.Flip(99), std::out_of_range);
}

TEST(SpectrumMap, UnionWith) {
  const auto a = SpectrumMap::FromOccupiedIndices({1, 2});
  const auto b = SpectrumMap::FromOccupiedIndices({2, 3});
  const auto u = a.UnionWith(b);
  EXPECT_TRUE(u.Occupied(1));
  EXPECT_TRUE(u.Occupied(2));
  EXPECT_TRUE(u.Occupied(3));
  EXPECT_EQ(u.NumOccupied(), 3);
}

TEST(SpectrumMap, FreeFragments) {
  // Occupied: 0, 4, 5, 29 -> free runs: [1..3], [6..28].
  const auto map = SpectrumMap::FromOccupiedIndices({0, 4, 5, 29});
  const auto fragments = map.FreeFragments();
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(fragments[0], (Fragment{1, 3}));
  EXPECT_EQ(fragments[1], (Fragment{6, 23}));
  EXPECT_EQ(map.WidestFragment(), 23);
  EXPECT_DOUBLE_EQ(fragments[0].WidthMHz(), 18.0);
}

TEST(SpectrumMap, FreeFragmentsSplitAtGapWhenRequested) {
  const SpectrumMap map;  // All free.
  const auto split = map.FreeFragments(/*respect_gap=*/true);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0], (Fragment{0, 16}));
  EXPECT_EQ(split[1], (Fragment{16, 14}));
  EXPECT_EQ(map.WidestFragment(true), 16);
}

TEST(SpectrumMap, CanUse) {
  const auto map = SpectrumMap::FromOccupiedIndices({10});
  EXPECT_TRUE(map.CanUse(Channel{5, ChannelWidth::kW20}));
  EXPECT_FALSE(map.CanUse(Channel{9, ChannelWidth::kW10}));   // spans 8..10
  EXPECT_FALSE(map.CanUse(Channel{10, ChannelWidth::kW5}));
  EXPECT_TRUE(map.CanUse(Channel{11, ChannelWidth::kW5}));
  EXPECT_FALSE(map.CanUse(Channel{0, ChannelWidth::kW20}));   // invalid span
  // Gap-aware: ch36-centered 10 MHz straddles the frequency gap.
  EXPECT_TRUE(map.CanUse(Channel{15, ChannelWidth::kW10}, false));
  EXPECT_FALSE(map.CanUse(Channel{15, ChannelWidth::kW10}, true));
}

TEST(SpectrumMap, UsableChannelsMatchesCanUse) {
  Rng rng(13);
  const auto map = SpectrumMap::RandomOccupied(12, rng);
  const auto usable = map.UsableChannels();
  for (const Channel& c : AllChannels()) {
    const bool in =
        std::find(usable.begin(), usable.end(), c) != usable.end();
    EXPECT_EQ(in, map.CanUse(c)) << c.ToString();
  }
}

TEST(SpectrumMap, RandomOccupiedExactCount) {
  Rng rng(14);
  for (int n : {0, 1, 15, 30}) {
    EXPECT_EQ(SpectrumMap::RandomOccupied(n, rng).NumOccupied(), n);
  }
  EXPECT_THROW(SpectrumMap::RandomOccupied(-1, rng), std::invalid_argument);
  EXPECT_THROW(SpectrumMap::RandomOccupied(31, rng), std::invalid_argument);
}

TEST(SpectrumMap, HammingDistance) {
  const auto a = SpectrumMap::FromOccupiedIndices({1, 2, 3});
  const auto b = SpectrumMap::FromOccupiedIndices({3, 4});
  EXPECT_EQ(SpectrumMap::HammingDistance(a, b), 3);
  EXPECT_EQ(SpectrumMap::HammingDistance(a, a), 0);
}

TEST(SpectrumMap, RandomlyFlippedStatistics) {
  Rng rng(15);
  const SpectrumMap base;
  double total = 0.0;
  const int trials = 400;
  for (int i = 0; i < trials; ++i) {
    total += SpectrumMap::HammingDistance(base, base.RandomlyFlipped(0.1, rng));
  }
  // Expected flips per map: 30 * 0.1 = 3.
  EXPECT_NEAR(total / trials, 3.0, 0.4);
  // p = 0 flips nothing.
  EXPECT_EQ(SpectrumMap::HammingDistance(base, base.RandomlyFlipped(0.0, rng)),
            0);
}

TEST(SpectrumMap, FreeIndicesAndToString) {
  const auto map = SpectrumMap::FromOccupiedIndices({0, 29});
  const auto free = map.FreeIndices();
  EXPECT_EQ(free.size(), 28u);
  EXPECT_EQ(free.front(), 1);
  EXPECT_EQ(free.back(), 28);
  const std::string s = map.ToString();
  EXPECT_EQ(s.size(), 30u);
  EXPECT_EQ(s.front(), 'X');
  EXPECT_EQ(s.back(), 'X');
  EXPECT_EQ(s[1], '.');
}

// Property: fragments partition the free set, are maximal and disjoint.
class FragmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(FragmentProperty, FragmentsPartitionFreeChannels) {
  Rng rng(100 + GetParam());
  const auto map = SpectrumMap::RandomOccupied(GetParam() % 31, rng);
  const auto fragments = map.FreeFragments();
  int covered = 0;
  int previous_end = -2;
  for (const Fragment& f : fragments) {
    EXPECT_GT(f.length, 0);
    // Maximality: neighbors are occupied or out of range.
    if (f.start > 0) {
      EXPECT_TRUE(map.Occupied(f.start - 1));
    }
    if (f.start + f.length < kNumUhfChannels) {
      EXPECT_TRUE(map.Occupied(f.start + f.length));
    }
    // Disjoint and ordered.
    EXPECT_GT(f.start, previous_end);
    previous_end = f.start + f.length - 1;
    for (int k = 0; k < f.length; ++k) EXPECT_TRUE(map.Free(f.start + k));
    covered += f.length;
  }
  EXPECT_EQ(covered, map.NumFree());
}

INSTANTIATE_TEST_SUITE_P(RandomMaps, FragmentProperty,
                         ::testing::Range(0, 40));

// ------------------------------------------------------------ incumbents --

TEST(Incumbents, MicActivationWindow) {
  const MicActivation mic{5, 100.0, 200.0};
  EXPECT_FALSE(mic.ActiveAt(99.0));
  EXPECT_TRUE(mic.ActiveAt(100.0));
  EXPECT_TRUE(mic.ActiveAt(199.9));
  EXPECT_FALSE(mic.ActiveAt(200.0));
}

TEST(Incumbents, FieldOccupancyOverTime) {
  const auto tv = SpectrumMap::FromOccupiedIndices({0});
  IncumbentField field(tv, {MicActivation{5, 100.0, 200.0}});
  EXPECT_TRUE(field.OccupiedAt(0, 50.0));
  EXPECT_FALSE(field.OccupiedAt(5, 50.0));
  EXPECT_TRUE(field.OccupiedAt(5, 150.0));
  EXPECT_FALSE(field.OccupiedAt(5, 250.0));
  EXPECT_EQ(field.OccupancyAt(150.0).NumOccupied(), 2);
  EXPECT_EQ(field.OccupancyAt(250.0).NumOccupied(), 1);
}

TEST(Incumbents, NextTransition) {
  IncumbentField field(SpectrumMap{}, {MicActivation{3, 100.0, 200.0},
                                       MicActivation{4, 150.0, 300.0}});
  EXPECT_DOUBLE_EQ(field.NextTransitionAfter(0.0), 100.0);
  EXPECT_DOUBLE_EQ(field.NextTransitionAfter(100.0), 150.0);
  EXPECT_DOUBLE_EQ(field.NextTransitionAfter(250.0), 300.0);
  EXPECT_LT(field.NextTransitionAfter(1000.0), 0.0);
}

TEST(Incumbents, InvalidMicsRejected) {
  EXPECT_THROW(IncumbentField(SpectrumMap{}, {MicActivation{40, 0.0, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(IncumbentField(SpectrumMap{}, {MicActivation{3, 5.0, 5.0}}),
               std::invalid_argument);
  IncumbentField field(SpectrumMap{}, {});
  EXPECT_THROW(field.AddMic(MicActivation{3, 10.0, 4.0}),
               std::invalid_argument);
}

TEST(Incumbents, GeneratedScheduleRespectsTvMapAndHorizon) {
  Rng rng(21);
  const auto tv = SpectrumMap::FromOccupiedIndices({0, 1, 2, 3, 4});
  MicScheduleParams params;
  params.activations_per_hour_per_channel = 4.0;
  const auto mics = GenerateMicSchedule(tv, params, rng);
  EXPECT_FALSE(mics.empty());
  for (const MicActivation& mic : mics) {
    EXPECT_TRUE(tv.Free(mic.channel)) << "mic on a TV channel";
    EXPECT_LT(mic.on_time, params.horizon);
    EXPECT_GT(mic.off_time, mic.on_time);
  }
}

// -------------------------------------------------------------- locales ---

TEST(Locales, OccupiedCountsWithinModelRanges) {
  Rng rng(22);
  for (LocaleClass locale : kAllLocaleClasses) {
    const LocaleModel model = DefaultLocaleModel(locale);
    for (int i = 0; i < 30; ++i) {
      const auto map = GenerateLocaleMap(locale, rng);
      EXPECT_GE(map.NumOccupied(), model.min_occupied);
      EXPECT_LE(map.NumOccupied(), model.max_occupied);
    }
  }
}

TEST(Locales, RuralFreerThanUrban) {
  Rng rng(23);
  double urban_free = 0.0, rural_free = 0.0;
  for (int i = 0; i < 50; ++i) {
    urban_free += GenerateLocaleMap(LocaleClass::kUrban, rng).NumFree();
    rural_free += GenerateLocaleMap(LocaleClass::kRural, rng).NumFree();
  }
  EXPECT_GT(rural_free, urban_free * 1.5);
}

TEST(Locales, FragmentHistogramTotalsMatch) {
  Rng rng(24);
  const auto maps = GenerateLocales(LocaleClass::kSuburban, 10, rng);
  EXPECT_EQ(maps.size(), 10u);
  const IntHistogram hist = FragmentWidthHistogram(maps);
  std::size_t expected = 0;
  for (const auto& map : maps) expected += map.FreeFragments().size();
  EXPECT_EQ(hist.Total(), expected);
}

TEST(Locales, Figure2Shape) {
  // The paper's Figure 2 anchors: every class shows a fragment of >= 4
  // channels somewhere across its 10 locales; rural reaches ~16 channels.
  Rng rng(25);
  for (LocaleClass locale : kAllLocaleClasses) {
    int best = 0;
    for (const auto& map : GenerateLocales(locale, 10, rng)) {
      best = std::max(best, map.WidestFragment());
    }
    EXPECT_GE(best, 4) << LocaleClassName(locale);
  }
  int rural_best = 0;
  for (const auto& map : GenerateLocales(LocaleClass::kRural, 10, rng)) {
    rural_best = std::max(rural_best, map.WidestFragment());
  }
  EXPECT_GE(rural_best, 12);
}

TEST(Locales, Names) {
  EXPECT_EQ(LocaleClassName(LocaleClass::kUrban), "urban");
  EXPECT_EQ(LocaleClassName(LocaleClass::kSuburban), "suburban");
  EXPECT_EQ(LocaleClassName(LocaleClass::kRural), "rural");
}

// --------------------------------------------------------------- campus ---

TEST(Campus, SimulationMapMatchesPaper) {
  const SpectrumMap map = CampusSimulationMap();
  // "There are 17 free UHF channels, and the widest contiguous white space
  // is 36 MHz" (Section 5.4).
  EXPECT_EQ(map.NumFree(), 17);
  EXPECT_EQ(map.WidestFragment(), 6);  // 6 * 6 MHz = 36 MHz.
}

TEST(Campus, Building5MapMatchesPaper) {
  const SpectrumMap map = Building5Map();
  EXPECT_EQ(map.NumFree(), 10);
  for (int tv : {26, 27, 28, 29, 30, 33, 34, 35, 39, 48}) {
    EXPECT_TRUE(map.Free(IndexOfTvChannel(tv))) << tv;
  }
  // Fragments: 26-30 (5 ch = 20 MHz usable), 33-35 (10 MHz), 39, 48.
  const auto fragments = map.FreeFragments();
  ASSERT_EQ(fragments.size(), 4u);
  EXPECT_EQ(fragments[0].length, 5);
  EXPECT_EQ(fragments[1].length, 3);
  EXPECT_EQ(fragments[2].length, 1);
  EXPECT_EQ(fragments[3].length, 1);
}

TEST(Campus, PairwiseHammingCount) {
  Rng rng(26);
  const auto maps =
      GenerateBuildingMaps(CampusSimulationMap(), CampusVariationParams{}, rng);
  EXPECT_EQ(maps.size(), 9u);
  EXPECT_EQ(PairwiseHammingDistances(maps).size(), 36u);  // 9*8/2.
}

TEST(Campus, MedianHammingNearPaperValue) {
  // Section 2.1: "the median number of channels available at one point but
  // unavailable at another is close to 7".  Average the median over many
  // 9-building draws to damp sampling noise.
  Rng rng(27);
  std::vector<double> medians;
  for (int trial = 0; trial < 30; ++trial) {
    const auto maps = GenerateBuildingMaps(CampusSimulationMap(),
                                           CampusVariationParams{}, rng);
    medians.push_back(Median(PairwiseHammingDistances(maps)));
  }
  EXPECT_NEAR(Mean(medians), 7.0, 1.0);
}

}  // namespace
}  // namespace whitefi
