// Tests for the observability subsystem: metrics registry, structured
// event trace (JSONL round-trip), and the phase profiler.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/obs.h"

namespace whitefi {
namespace {

// ------------------------------------------------------------ metrics --

TEST(MetricsRegistry, CountersGaugesHistogramsInSnapshot) {
  MetricsRegistry registry;
  Counter& tx = registry.GetCounter("whitefi.medium.tx.Data");
  tx.Add();
  tx.Add(4);
  registry.GetGauge("whitefi.ap.last_metric").Set(1.75);
  Histogram& latency = registry.GetHistogram("whitefi.sift.detect_latency_us");
  latency.Observe(100.0);
  latency.Observe(300.0);

  EXPECT_EQ(registry.size(), 3u);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "whitefi.medium.tx.Data");
  EXPECT_EQ(snapshot.counters[0].value, 5u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 1.75);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].distribution.Count(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].distribution.Mean(), 200.0);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("whitefi.z.last");
  registry.GetCounter("whitefi.a.first");
  registry.GetCounter("whitefi.m.middle");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "whitefi.a.first");
  EXPECT_EQ(snapshot.counters[1].name, "whitefi.m.middle");
  EXPECT_EQ(snapshot.counters[2].name, "whitefi.z.last");
}

TEST(MetricsRegistry, HandlesAreStableAndResetKeepsThem) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("whitefi.mac.retries");
  counter.Add(7);
  EXPECT_EQ(&counter, &registry.GetCounter("whitefi.mac.retries"));
  registry.GetGauge("whitefi.g").Set(3.0);
  registry.GetHistogram("whitefi.h").Observe(9.0);

  registry.Reset();
  EXPECT_EQ(registry.size(), 3u);  // Registrations survive.
  EXPECT_EQ(counter.value(), 0u);  // Values are zeroed through old handles.
  EXPECT_DOUBLE_EQ(registry.GetGauge("whitefi.g").value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("whitefi.h").distribution().Count(), 0u);
  counter.Add();  // Old handle still feeds the registry.
  EXPECT_EQ(registry.Snapshot().counters[0].value, 1u);
}

TEST(MetricsRegistry, NameCollisionAcrossKindsThrows) {
  MetricsRegistry registry;
  registry.GetCounter("whitefi.dual");
  EXPECT_THROW(registry.GetGauge("whitefi.dual"), std::invalid_argument);
  EXPECT_THROW(registry.GetHistogram("whitefi.dual"), std::invalid_argument);
  registry.GetHistogram("whitefi.h");
  EXPECT_THROW(registry.GetCounter("whitefi.h"), std::invalid_argument);
}

TEST(MetricsRegistry, NullSafeStaticsAreNoOpsOnNull) {
  MetricsRegistry::Count(nullptr, "whitefi.x");
  MetricsRegistry::Set(nullptr, "whitefi.x", 1.0);
  MetricsRegistry::Observe(nullptr, "whitefi.x", 1.0);

  MetricsRegistry registry;
  MetricsRegistry::Count(&registry, "whitefi.c", 2);
  MetricsRegistry::Set(&registry, "whitefi.g", 4.5);
  MetricsRegistry::Observe(&registry, "whitefi.h", 8.0);
  EXPECT_EQ(registry.GetCounter("whitefi.c").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("whitefi.g").value(), 4.5);
  EXPECT_EQ(registry.GetHistogram("whitefi.h").distribution().Count(), 1u);
}

TEST(MetricsRegistry, ExportFormatsContainEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("whitefi.medium.tx.Data").Add(42);
  registry.GetGauge("whitefi.ap.last_metric").Set(0.5);
  registry.GetHistogram("whitefi.client.outage_s").Observe(2.0);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("whitefi.medium.tx.Data"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("whitefi.client.outage_s"), std::string::npos);

  const std::string csv = snapshot.ToCsv();
  EXPECT_NE(csv.find("whitefi.medium.tx.Data,counter,value,42"),
            std::string::npos);
  EXPECT_NE(csv.find("whitefi.ap.last_metric,gauge"), std::string::npos);
  EXPECT_NE(csv.find("whitefi.client.outage_s,histogram,count,1"),
            std::string::npos);

  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"whitefi.medium.tx.Data\":42"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, JsonExportsHistogramBucketsAlongsideQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("whitefi.client.outage_s");
  h.Observe(0.5);  // Bucket [0, 1).
  h.Observe(0.7);  // Same bucket.
  h.Observe(3.0);  // Bucket [2, 4).
  const std::string json = registry.Snapshot().ToJson();
  // Quantile summary fields are still present...
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // ...and the exact power-of-two bucket counts ride alongside, as
  // [lo, hi, count] triples in ascending order.
  EXPECT_NE(json.find("\"buckets\":[[0,1,2],[2,4,1]]"), std::string::npos);

  // ExpHistogram's accessor reports the same triples.
  const auto buckets = h.distribution().NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].lo, 0.0);
  EXPECT_EQ(buckets[0].hi, 1.0);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[1].lo, 2.0);
  EXPECT_EQ(buckets[1].hi, 4.0);
  EXPECT_EQ(buckets[1].count, 1u);
}

TEST(MetricMacros, NullHandleIsANoOp) {
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
  WHITEFI_METRIC_COUNT(counter, 1);
  WHITEFI_METRIC_SET(gauge, 1.0);
  WHITEFI_METRIC_OBSERVE(histogram, 1.0);

  MetricsRegistry registry;
  counter = &registry.GetCounter("whitefi.c");
  WHITEFI_METRIC_COUNT(counter, 3);
  EXPECT_EQ(counter->value(), 3u);
}

// ------------------------------------------------------- exp histogram --

TEST(ExpHistogram, BasicMoments) {
  ExpHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  h.Add(10.0);
  h.Add(20.0);
  h.Add(30.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.Min(), 10.0);
  EXPECT_DOUBLE_EQ(h.Max(), 30.0);
  // Percentiles are bucket estimates clamped to the observed range.
  EXPECT_GE(h.Percentile(0), 10.0);
  EXPECT_LE(h.Percentile(100), 30.0);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
}

TEST(ExpHistogram, MergeAndReset) {
  ExpHistogram a, b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(100.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_DOUBLE_EQ(a.Sum(), 103.0);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 100.0);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_DOUBLE_EQ(a.Max(), 0.0);
}

// -------------------------------------------------------- event trace --

TraceEvent FrameTx(std::int64_t at_us) {
  TraceEvent e;
  e.at_us = at_us;
  e.kind = TraceEventKind::kFrameTx;
  e.node = 0;
  e.src = 0;
  e.dst = 1;
  e.bytes = 1028;
  e.frame_type = "Data";
  e.detail = "(ch31, 20MHz)";
  return e;
}

TEST(EventTrace, KindNamesRoundTrip) {
  for (int i = 0; i < kNumTraceEventKinds; ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    const auto parsed = ParseTraceEventKind(TraceEventKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseTraceEventKind("no_such_kind").has_value());
}

TEST(EventTrace, JsonlRoundTripIsExact) {
  EventTrace trace;
  trace.Append(FrameTx(12'304'000));
  TraceEvent note;  // All-default fields except kind/at_us/detail.
  note.at_us = 5;
  note.detail = "quote \" backslash \\ newline \n tab \t done";
  trace.Append(note);
  TraceEvent sw;
  sw.at_us = 99;
  sw.kind = TraceEventKind::kChannelSwitch;
  sw.node = 3;
  sw.detail = "(ch21, 5MHz) -> (ch24, 10MHz)";
  trace.Append(sw);

  std::istringstream in(trace.ToJsonl());
  const std::vector<TraceEvent> parsed = EventTrace::ReadJsonl(in);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], FrameTx(12'304'000));
  EXPECT_EQ(parsed[1], note);
  EXPECT_EQ(parsed[2], sw);
}

TEST(EventTrace, ReadJsonlRejectsMalformedLines) {
  std::istringstream bad("{\"t\":1,\"kind\":\"note\"\n");
  EXPECT_THROW(EventTrace::ReadJsonl(bad), std::runtime_error);
  std::istringstream unknown("{\"t\":1,\"kind\":\"martian\"}\n");
  EXPECT_THROW(EventTrace::ReadJsonl(unknown), std::runtime_error);
}

TEST(EventTrace, CountsStayExactBeyondCapAndFilter) {
  EventTraceOptions options;
  options.max_events = 2;
  options.only = {TraceEventKind::kFrameTx};
  EventTrace trace(options);
  for (int i = 0; i < 5; ++i) trace.Append(FrameTx(i));
  TraceEvent retry;
  retry.kind = TraceEventKind::kMacRetry;
  trace.Append(retry);  // Filtered out, still counted.

  EXPECT_EQ(trace.events().size(), 2u);  // Cap without keep_last: first two.
  EXPECT_EQ(trace.events()[0].at_us, 0);
  EXPECT_EQ(trace.events()[1].at_us, 1);
  EXPECT_EQ(trace.TotalSeen(), 6u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kFrameTx), 5u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kMacRetry), 1u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kChirp), 0u);
}

TEST(EventTrace, KeepLastEvictsOldest) {
  EventTraceOptions options;
  options.max_events = 2;
  options.keep_last = true;
  EventTrace trace(options);
  for (int i = 0; i < 5; ++i) trace.Append(FrameTx(i));
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].at_us, 3);
  EXPECT_EQ(trace.events()[1].at_us, 4);
  EXPECT_EQ(trace.TotalSeen(), 5u);
}

TEST(EventTrace, ClearDropsRecordsAndCounts) {
  EventTrace trace;
  trace.Append(FrameTx(1));
  trace.Clear();
  EXPECT_EQ(trace.events().size(), 0u);
  EXPECT_EQ(trace.TotalSeen(), 0u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kFrameTx), 0u);
}

TEST(EventTrace, ChromeTraceIsAJsonArrayWithSimTimestamps) {
  EventTrace trace;
  trace.Append(FrameTx(12'304'000));
  std::ostringstream out;
  trace.WriteChromeTrace(out);
  const std::string chrome = out.str();
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":12304000"), std::string::npos);
  EXPECT_NE(chrome.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(chrome.find("frame_tx"), std::string::npos);
}

// ------------------------------------------------------ phase profiler --

void SpinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(PhaseProfiler, NestedScopesSplitSelfTime) {
  PhaseProfiler profiler;
  {
    ScopedPhaseTimer outer(&profiler, "outer");
    SpinFor(std::chrono::microseconds(200));
    {
      ScopedPhaseTimer inner(&profiler, "inner");
      SpinFor(std::chrono::microseconds(200));
    }
    EXPECT_EQ(profiler.depth(), 1u);
  }
  EXPECT_EQ(profiler.depth(), 0u);

  const auto& phases = profiler.phases();
  ASSERT_EQ(phases.size(), 2u);
  const PhaseStats& outer = phases.at("outer");
  const PhaseStats& inner = phases.at("inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  // Outer's total covers the inner scope; its self time does not.
  EXPECT_GE(outer.total_us, inner.total_us);
  EXPECT_NEAR(outer.self_us, outer.total_us - inner.total_us, 1e-6);
  EXPECT_GT(inner.self_us, 0.0);
  EXPECT_GE(outer.max_us, outer.total_us - 1e-6);
}

TEST(PhaseProfiler, AccumulatesAcrossCallsAndRenders) {
  PhaseProfiler profiler;
  for (int i = 0; i < 3; ++i) {
    ScopedPhaseTimer t(&profiler, "kernel");
    SpinFor(std::chrono::microseconds(50));
  }
  const PhaseStats& stats = profiler.phases().at("kernel");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_GE(stats.total_us, stats.max_us);
  EXPECT_NEAR(stats.self_us, stats.total_us, 1e-6);  // No nesting.
  const std::string table = profiler.ToString(2.0);
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("ms_per_sim_s"), std::string::npos);
  profiler.Reset();
  EXPECT_TRUE(profiler.phases().empty());
}

TEST(PhaseProfiler, NullProfilerScopeIsSafe) {
  ScopedPhaseTimer t(nullptr, "nothing");
}

}  // namespace
}  // namespace whitefi
