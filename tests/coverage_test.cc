// Small-surface coverage: APIs not exercised elsewhere — labels, no-op
// paths, boundary conditions and accessor contracts.
#include <gtest/gtest.h>

#include <sstream>

#include "core/whitefi.h"

namespace whitefi {
namespace {

TEST(Coverage, LabelsAndToStrings) {
  EXPECT_EQ(UhfChannelLabel(IndexOfTvChannel(51)), "ch51(695MHz)");
  EXPECT_EQ(WidthLabel(ChannelWidth::kW20), "20MHz");
  Frame f;
  f.type = FrameType::kReport;
  f.src = 3;
  f.dst = 9;
  f.bytes = 120;
  EXPECT_EQ(f.ToString(), "Report(3->9, 120B)");
  f.dst = kBroadcastId;
  EXPECT_EQ(f.ToString(), "Report(3->*, 120B)");
  EXPECT_STREQ(FrameTypeName(FrameType::kChannelSwitch), "ChannelSwitch");
}

TEST(Coverage, TablePrintStreams) {
  Table t({"a"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str(), t.ToString());
}

TEST(Coverage, LogLevelFilter) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  WHITEFI_LOG_INFO << "suppressed";  // Must not crash; filtered.
  SetLogLevel(before);
}

TEST(Coverage, SwitchChannelToSameChannelIsNoOp) {
  World world;
  DeviceConfig config;
  config.initial_channel = Channel{5, ChannelWidth::kW10};
  Device& d = world.Create<Device>(config);
  world.RunFor(0.1);  // Past the initial tune window.
  ASSERT_TRUE(d.RxEnabled());
  d.mac().Enqueue([] {
    Frame f;
    f.type = FrameType::kData;
    f.dst = 99;
    f.bytes = 100;
    return f;
  }());
  d.SwitchChannel(Channel{5, ChannelWidth::kW10});
  // No retune: rx stays enabled and the queue survives.
  EXPECT_TRUE(d.RxEnabled());
  EXPECT_EQ(d.mac().QueueDepth(), 1u);
}

TEST(Coverage, CbrSetIntervalTakesEffect) {
  World world;
  DeviceConfig config;
  config.initial_channel = Channel{5, ChannelWidth::kW20};
  Device& a = world.Create<Device>(config);
  config.position = {30, 0};
  Device& b = world.Create<Device>(config);
  CbrSource cbr(a, b.NodeId(), 500, 100 * kTicksPerMs);
  cbr.Start();
  world.RunFor(1.0);
  const auto slow = cbr.Generated();
  EXPECT_NEAR(static_cast<double>(slow), 10.0, 2.0);
  cbr.SetInterval(10 * kTicksPerMs);
  world.RunFor(1.0);
  EXPECT_NEAR(static_cast<double>(cbr.Generated() - slow), 100.0, 12.0);
}

TEST(Coverage, SimulatorCancelInsideCallback) {
  Simulator sim;
  int fired = 0;
  EventId later = sim.Schedule(20, [&] { ++fired; });
  sim.Schedule(10, [&] { sim.Cancel(later); });
  sim.Run(100);
  EXPECT_EQ(fired, 0);
}

TEST(Coverage, DiscoveryResultDefaults) {
  const DiscoveryResult r;
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.sift_scans, 0);
  EXPECT_EQ(r.beacon_listens, 0);
  EXPECT_DOUBLE_EQ(r.elapsed, 0.0);
}

TEST(Coverage, RunningStatsExtremaOrdering) {
  RunningStats s;
  s.Add(-4.0);
  s.Add(11.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Min(), -4.0);
  EXPECT_DOUBLE_EQ(s.Max(), 11.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
}

TEST(Coverage, MicAudibleFalseWhenNoMics) {
  World world;
  EXPECT_FALSE(world.MicAudible(5, 1));
  EXPECT_FALSE(world.MicActiveNow(5));
}

TEST(Coverage, NarrowestFragmentWidthMHz) {
  EXPECT_DOUBLE_EQ((Fragment{3, 1}.WidthMHz()), 6.0);
}

}  // namespace
}  // namespace whitefi
