// Tests for the causal flight recorder: span-linked trace events, the
// per-node StateTimeline, the span/flow analysis behind trace_lens, the
// Chrome trace export (validated with a strict in-test JSON parser), and
// the drop accounting of capped / kind-filtered captures.
//
// The end-to-end tests pin the PR's acceptance criteria in-process:
//  * every recovery in an incumbent scenario is attributed to the mic
//    via its causal flow id (attribution rate 100% >= the 95% bar);
//  * the per-phase breakdown derived from the trace matches the live
//    StateTimeline recorder tick-for-tick;
//  * attaching the recorder does not perturb the simulation, and two
//    recorded runs serialize byte-identically.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/ap.h"
#include "core/client.h"
#include "obs/event_trace.h"
#include "obs/span.h"
#include "obs/state_timeline.h"
#include "sim/traffic.h"
#include "spectrum/campus.h"

namespace whitefi {
namespace {

constexpr int kSsid = 7;

// ------------------------------------------------------- StateTimeline --

TEST(StateTimeline, PartitionsTimeExactly) {
  StateTimeline timeline;
  timeline.Enter(0, 2, "connected");
  timeline.Enter(5'000'000, 2, "chirping");
  timeline.Enter(5'600'000, 2, "connected");
  timeline.Close(10'000'000);

  ASSERT_EQ(timeline.intervals().size(), 3u);
  EXPECT_EQ(timeline.TotalIn(2, "connected"), 5'000'000 + 4'400'000);
  EXPECT_EQ(timeline.TotalIn(2, "chirping"), 600'000);
  // The intervals partition [0, 10 s] with no gap and no double count.
  std::int64_t sum = 0;
  for (const StateInterval& iv : timeline.intervals()) sum += iv.DurationUs();
  EXPECT_EQ(sum, 10'000'000);
  EXPECT_EQ(timeline.CurrentState(2), "connected");
  EXPECT_EQ(timeline.Nodes(), std::vector<int>{2});
}

TEST(StateTimeline, ReenteringCurrentStateIsANoOp) {
  StateTimeline timeline;
  timeline.Enter(0, 1, "operating");
  timeline.Enter(1000, 1, "operating");  // Must not split the interval.
  timeline.Enter(2000, 1, "collecting");
  timeline.Close(3000);
  ASSERT_EQ(timeline.intervals().size(), 2u);
  EXPECT_EQ(timeline.intervals()[0].begin_us, 0);
  EXPECT_EQ(timeline.intervals()[0].end_us, 2000);
}

TEST(StateTimeline, TracksNodesIndependently) {
  StateTimeline timeline;
  timeline.Enter(0, 1, "operating");
  timeline.Enter(100, 2, "connected");
  timeline.Enter(200, 1, "collecting");
  timeline.Close(300);
  EXPECT_EQ(timeline.TotalIn(1, "operating"), 200);
  EXPECT_EQ(timeline.TotalIn(2, "connected"), 200);
  EXPECT_EQ(timeline.Nodes(), (std::vector<int>{1, 2}));
}

// ----------------------------------------------------- ExactPercentile --

TEST(ExactPercentile, NearestRank) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_EQ(ExactPercentile(v, 50), 30);
  EXPECT_EQ(ExactPercentile(v, 95), 50);
  EXPECT_EQ(ExactPercentile(v, 99), 50);
  EXPECT_EQ(ExactPercentile(v, 0), 10);
  EXPECT_EQ(ExactPercentile(v, 100), 50);
  EXPECT_EQ(ExactPercentile({7}, 50), 7);
  EXPECT_EQ(ExactPercentile({}, 50), 0);
  // Unsorted input is sorted internally.
  EXPECT_EQ(ExactPercentile({50, 10, 30, 20, 40}, 50), 30);
}

// ----------------------------------------------------------- BuildSpans --

TraceEvent SpanEvent(TraceEventKind kind, std::int64_t at, int node,
                     std::int64_t id, std::int64_t parent, std::int64_t flow,
                     const std::string& name) {
  TraceEvent e;
  e.kind = kind;
  e.at_us = at;
  e.node = node;
  e.span_id = id;
  e.parent_span = parent;
  e.flow_id = flow;
  e.detail = name;
  return e;
}

TEST(BuildSpans, PairsBeginEndAndKeepsOpenSpans) {
  std::vector<TraceEvent> events;
  events.push_back(
      SpanEvent(TraceEventKind::kSpanBegin, 100, 2, 11, 0, 5, "outer"));
  events.push_back(
      SpanEvent(TraceEventKind::kSpanBegin, 150, 2, 12, 11, 5, "inner"));
  events.push_back(
      SpanEvent(TraceEventKind::kSpanEnd, 180, 2, 12, 0, 5, "inner"));
  // End without a begin (e.g. the begin was ring-evicted): skipped.
  events.push_back(
      SpanEvent(TraceEventKind::kSpanEnd, 190, 3, 99, 0, 0, "orphan"));

  const std::vector<Span> spans = BuildSpans(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_FALSE(spans[0].Closed());
  EXPECT_EQ(spans[0].DurationUs(), 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 11);
  EXPECT_EQ(spans[1].flow, 5);
  ASSERT_TRUE(spans[1].Closed());
  EXPECT_EQ(spans[1].DurationUs(), 30);
}

TEST(SplitRuns, SplitsWhereTimeRestarts) {
  std::vector<TraceEvent> events;
  for (std::int64_t t : {10, 20, 30, 5, 6, 7, 3}) {
    TraceEvent e;
    e.at_us = t;
    events.push_back(e);
  }
  const auto runs = SplitRuns(events);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].size(), 3u);
  EXPECT_EQ(runs[1].size(), 3u);
  EXPECT_EQ(runs[2].size(), 1u);
  EXPECT_TRUE(SplitRuns({}).empty());
  EXPECT_EQ(SplitRuns({events[0]}).size(), 1u);
}

// ------------------------------------------------- JSONL serialization --

TEST(EventTraceJsonl, SpanAndFlowFieldsRoundTrip) {
  EventTrace trace;
  TraceEvent e = SpanEvent(TraceEventKind::kSpanBegin, 12345, 4, 7, 3, 9,
                           "client.recovery/incumbent");
  trace.Append(e);
  TraceEvent plain;
  plain.kind = TraceEventKind::kNote;
  plain.at_us = 20000;
  plain.detail = "no ids";
  trace.Append(plain);

  std::ostringstream os;
  trace.WriteJsonl(os);
  std::istringstream is(os.str());
  const std::vector<TraceEvent> back = EventTrace::ReadJsonl(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], e);
  EXPECT_EQ(back[1], plain);
  // Unset ids are omitted from the wire format entirely.
  EXPECT_EQ(os.str().find("\"span\":", os.str().find("no ids")),
            std::string::npos);
}

TEST(EventTraceJsonl, RingDropsAreAccountedInMetaHeader) {
  EventTraceOptions options;
  options.max_events = 2;
  options.keep_last = true;
  EventTrace trace(options);
  TraceEvent e;
  e.kind = TraceEventKind::kChirp;
  trace.Append(e);  // Evicted first.
  e.kind = TraceEventKind::kNote;
  trace.Append(e);  // Evicted second.
  e.kind = TraceEventKind::kFrameTx;
  trace.Append(e);
  e.kind = TraceEventKind::kFrameRx;
  trace.Append(e);

  EXPECT_EQ(trace.TotalDropped(), 2u);
  EXPECT_EQ(trace.DroppedOf(TraceEventKind::kChirp), 1u);
  EXPECT_EQ(trace.DroppedOf(TraceEventKind::kNote), 1u);
  EXPECT_EQ(trace.DroppedOf(TraceEventKind::kFrameTx), 0u);
  // Exact per-kind counts survive the evictions.
  EXPECT_EQ(trace.TotalSeen(), 4u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kChirp), 1u);

  std::ostringstream os;
  trace.WriteJsonl(os);
  const std::string jsonl = os.str();
  EXPECT_EQ(jsonl.rfind("{\"meta\":\"event_trace\"", 0), 0u);
  EXPECT_NE(jsonl.find("\"dropped\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"chirp\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"note\":1"), std::string::npos);

  // ReadJsonl skips the meta header and returns the surviving records.
  std::istringstream is(jsonl);
  const std::vector<TraceEvent> back = EventTrace::ReadJsonl(is);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].kind, TraceEventKind::kFrameTx);
  EXPECT_EQ(back[1].kind, TraceEventKind::kFrameRx);
}

TEST(EventTraceJsonl, StopAtCapCountsTheRejectedKind) {
  EventTraceOptions options;
  options.max_events = 1;
  options.keep_last = false;
  EventTrace trace(options);
  TraceEvent e;
  e.kind = TraceEventKind::kFrameTx;
  trace.Append(e);
  e.kind = TraceEventKind::kChirp;
  trace.Append(e);  // Rejected: cap reached, not a ring.
  EXPECT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.DroppedOf(TraceEventKind::kChirp), 1u);
  EXPECT_EQ(trace.DroppedOf(TraceEventKind::kFrameTx), 0u);
}

TEST(EventTraceJsonl, KindFilterIsNotADrop) {
  EventTraceOptions options;
  options.only = {TraceEventKind::kChirp};
  EventTrace trace(options);
  EXPECT_TRUE(trace.Wants(TraceEventKind::kChirp));
  EXPECT_FALSE(trace.Wants(TraceEventKind::kFrameTx));
  TraceEvent e;
  e.kind = TraceEventKind::kFrameTx;
  trace.Append(e);
  e.kind = TraceEventKind::kChirp;
  trace.Append(e);
  EXPECT_EQ(trace.events().size(), 1u);
  // Filtered kinds count as seen but never as dropped.
  EXPECT_EQ(trace.CountOf(TraceEventKind::kFrameTx), 1u);
  EXPECT_EQ(trace.TotalDropped(), 0u);
}

// ----------------------------------------- strict mini JSON validation --
//
// A deliberately strict recursive-descent JSON parser: any deviation from
// RFC 8259 structure (trailing commas, unquoted keys, truncated output)
// fails the test.  Values are kept as tagged strings — the tests only
// need structure and field access, not full typing.

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber, kBool, kNull };
  Type type = Type::kNull;
  std::string scalar;  // For string/number/bool.
  std::vector<std::pair<std::string, JsonValue>> members;  // For objects.
  std::vector<JsonValue> items;                            // For arrays.

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end");
    return text_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.scalar = ParseString();
        return v;
      }
      case 't': return ParseLiteral("true", JsonValue::Type::kBool);
      case 'f': return ParseLiteral("false", JsonValue::Type::kBool);
      case 'n': return ParseLiteral("null", JsonValue::Type::kNull);
      default: return ParseNumber();
    }
  }

  JsonValue ParseLiteral(const std::string& lit, JsonValue::Type type) {
    if (text_.compare(pos_, lit.size(), lit) != 0) Fail("bad literal");
    pos_ += lit.size();
    JsonValue v;
    v.type = type;
    v.scalar = lit;
    return v;
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("bad number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.scalar = text_.substr(start, pos_ - start);
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) Fail("bad \\u escape");
            out += text_.substr(pos_ - 2, 6);  // Keep raw; tests don't care.
            pos_ += 4;
            break;
          }
          default: Fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      v.members.emplace_back(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(JsonParser("{\"a\":1,}").Parse(), std::runtime_error);
  EXPECT_THROW(JsonParser("{a:1}").Parse(), std::runtime_error);
  EXPECT_THROW(JsonParser("[1,2").Parse(), std::runtime_error);
  EXPECT_THROW(JsonParser("{} x").Parse(), std::runtime_error);
  EXPECT_NO_THROW(JsonParser("{\"a\":[1,-2.5e3,\"s\",true,null]}").Parse());
}

// ------------------------------------------------ end-to-end scenarios --

DeviceConfig NodeAt(double x, double y, const SpectrumMap& tv_map) {
  DeviceConfig c;
  c.position = {x, y};
  c.ssid = kSsid;
  c.tv_map = tv_map;
  return c;
}

ScannerParams FastScanner() {
  ScannerParams p;
  p.dwell = 100 * kTicksPerMs;
  p.airtime_noise_stddev = 0.005;
  return p;
}

struct MicRunResult {
  std::string jsonl;
  std::string chrome;
  std::vector<TraceEvent> events;
  StateTimeline timeline;
  std::uint64_t app_bytes = 0;
  int switches = 0;
  std::vector<int> client_nodes;
};

/// One AP + two clients on a 20 MHz channel; a mic lands on the operating
/// channel at t=4s.  Optionally recorded; the run itself must not care.
MicRunResult RunMicScenario(bool record) {
  EventTrace trace;
  StateTimeline timeline;
  WorldConfig world_config;
  if (record) {
    world_config.obs.trace = &trace;
    world_config.obs.timeline = &timeline;
  }
  World world(world_config);
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  ApParams ap_params;
  ap_params.scanner = FastScanner();
  ApNode& ap = world.Create<ApNode>(NodeAt(0, 0, map), ap_params, main, backup);
  ClientParams client_params;
  client_params.scanner = FastScanner();
  std::vector<ClientNode*> clients;
  for (int i = 0; i < 2; ++i) {
    clients.push_back(&world.Create<ClientNode>(
        NodeAt(50.0 + 10.0 * i, 40.0, map), client_params, main, backup,
        ap.NodeId()));
  }
  std::vector<int> dsts;
  for (auto* c : clients) dsts.push_back(c->NodeId());
  SaturatedSource downlink(ap, dsts, 1000);
  world.StartAll();
  downlink.Start();
  world.SetMicSchedule(
      {{IndexOfTvChannel(28), 4.0 * kSecond, 120.0 * kSecond}});
  world.RunFor(12.0);

  MicRunResult result;
  result.app_bytes = world.AppBytesInSsid(kSsid);
  result.switches = ap.num_switches();
  for (auto* c : clients) result.client_nodes.push_back(c->NodeId());
  if (record) {
    std::ostringstream jsonl;
    trace.WriteJsonl(jsonl);
    result.jsonl = jsonl.str();
    std::ostringstream chrome;
    trace.WriteChromeTrace(chrome);
    result.chrome = chrome.str();
    result.events.assign(trace.events().begin(), trace.events().end());
    timeline.Close(12 * kTicksPerSec);
    result.timeline = timeline;
  }
  return result;
}

TEST(FlightRecorder, RecorderDoesNotPerturbTheRunAndIsDeterministic) {
  const MicRunResult recorded = RunMicScenario(true);
  const MicRunResult detached = RunMicScenario(false);
  // Null-by-default: the recorded world behaves identically to the bare
  // one (trace ids are allocated either way; only the sinks differ).
  EXPECT_EQ(recorded.app_bytes, detached.app_bytes);
  EXPECT_EQ(recorded.switches, detached.switches);
  // Two recorded runs serialize byte-identically.
  const MicRunResult again = RunMicScenario(true);
  EXPECT_EQ(recorded.jsonl, again.jsonl);
  EXPECT_EQ(recorded.chrome, again.chrome);
}

TEST(FlightRecorder, IncumbentRecoveriesAreFlowAttributed) {
  const MicRunResult run = RunMicScenario(true);
  const TraceAnalysis analysis = AnalyzeTrace(run.events);

  // The AP is identified from its states/spans.
  ASSERT_EQ(analysis.ap_nodes.size(), 1u);

  // Both clients recovered at least once; every recovery is attributed —
  // and attributed to the mic through its causal flow, not a guess.
  ASSERT_GE(analysis.recoveries.size(), 2u);
  std::set<int> recovered_nodes;
  for (const Recovery& r : analysis.recoveries) {
    recovered_nodes.insert(r.span.node);
    EXPECT_EQ(r.declared_cause, "incumbent");
    EXPECT_EQ(r.cause_kind, "incumbent") << "node " << r.span.node;
    EXPECT_GE(r.cause_at_us, 0);
    EXPECT_LE(r.cause_at_us, r.span.begin_us);
    ASSERT_TRUE(r.span.Closed());
    EXPECT_NE(r.span.flow, 0);
  }
  for (int node : run.client_nodes) {
    EXPECT_TRUE(recovered_nodes.count(node)) << "node " << node;
  }
  // The AP's vacate episode rides the same causal flow as the client
  // recoveries (one incumbent, one flow, arrows across nodes).
  bool found_vacate = false;
  for (const Span& span : analysis.spans) {
    if (span.name.rfind("ap.vacate", 0) == 0) {
      found_vacate = true;
      EXPECT_EQ(span.flow, analysis.recoveries[0].span.flow);
    }
  }
  EXPECT_TRUE(found_vacate);
}

TEST(FlightRecorder, PhaseBreakdownMatchesStateTimelineExactly) {
  const MicRunResult run = RunMicScenario(true);
  const TraceAnalysis analysis = AnalyzeTrace(run.events);
  ASSERT_GE(analysis.recoveries.size(), 2u);

  std::map<int, std::map<std::string, std::int64_t>> phase_totals;
  for (const Recovery& r : analysis.recoveries) {
    ASSERT_TRUE(r.span.Closed());
    // Phases partition the span exactly.
    std::int64_t sum = 0;
    for (const RecoveryPhase& phase : r.phases) {
      sum += phase.duration_us;
      phase_totals[r.span.node][phase.state] += phase.duration_us;
    }
    EXPECT_EQ(sum, r.span.DurationUs()) << "node " << r.span.node;
  }
  // Clients spend time in chirping/scanning states only inside recovery
  // spans, so the trace-derived totals must equal the live StateTimeline
  // recorder tick-for-tick.
  for (int node : run.client_nodes) {
    for (const char* state : {"chirping", "scanning"}) {
      EXPECT_EQ(phase_totals[node][state], run.timeline.TotalIn(node, state))
          << "node " << node << " state " << state;
    }
  }
}

TEST(FlightRecorder, ChromeTraceIsValidJsonWithPairedSpansAndFlows) {
  const MicRunResult run = RunMicScenario(true);
  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(run.chrome).Parse()) << "invalid JSON";
  // The export uses the legacy array form, which chrome://tracing and
  // Perfetto both accept.
  ASSERT_EQ(root.type, JsonValue::Type::kArray);
  const JsonValue* trace_events = &root;
  ASSERT_FALSE(trace_events->items.empty());

  // Span begins/ends must pair up per (tid, name) with B before E, and
  // flow steps must use the s -> t -> f phases with a shared id.
  std::map<std::string, int> open_spans;   // "tid/name" -> depth.
  std::map<std::string, int> flow_phases;  // flow id -> count per phase.
  std::set<std::string> flow_ids;
  bool seen_binding_enclosing = false;
  for (const JsonValue& entry : trace_events->items) {
    ASSERT_EQ(entry.type, JsonValue::Type::kObject);
    const JsonValue* ph = entry.Find("ph");
    const JsonValue* name = entry.Find("name");
    const JsonValue* ts = entry.Find("ts");
    const JsonValue* pid = entry.Find("pid");
    const JsonValue* tid = entry.Find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    const std::string key = tid->scalar + "/" + name->scalar;
    if (ph->scalar == "B") {
      ++open_spans[key];
    } else if (ph->scalar == "E") {
      ASSERT_GT(open_spans[key], 0) << "E without B for " << key;
      --open_spans[key];
    } else if (ph->scalar == "s" || ph->scalar == "t" || ph->scalar == "f") {
      const JsonValue* id = entry.Find("id");
      ASSERT_NE(id, nullptr) << "flow event without id";
      flow_ids.insert(id->scalar);
      ++flow_phases[id->scalar + ph->scalar];
      if (ph->scalar == "f") {
        const JsonValue* bp = entry.Find("bp");
        ASSERT_NE(bp, nullptr);
        EXPECT_EQ(bp->scalar, "e");
        seen_binding_enclosing = true;
      }
    } else {
      EXPECT_TRUE(ph->scalar == "i" || ph->scalar == "M") << ph->scalar;
    }
  }
  for (const auto& [key, depth] : open_spans) {
    EXPECT_EQ(depth, 0) << "unclosed span " << key;
  }
  // At least one flow threads a start and a finish (the mic's causal
  // chain crosses from the world to clients and the AP).
  ASSERT_FALSE(flow_ids.empty());
  bool complete_flow = false;
  for (const std::string& id : flow_ids) {
    if (flow_phases[id + "s"] == 1 && flow_phases[id + "f"] == 1) {
      complete_flow = true;
    }
  }
  EXPECT_TRUE(complete_flow);
  EXPECT_TRUE(seen_binding_enclosing);
}

TEST(FlightRecorder, KindFilteredCaptureKeepsExactCounts) {
  // Run the mic scenario twice: once unfiltered, once recording only the
  // protocol-level kinds.  The exact per-kind counts must agree — the
  // Wants()/CountSkipped() fast path is accounting-equivalent to a full
  // Append of a filtered-out record.
  EventTrace full;
  EventTraceOptions filtered_options;
  filtered_options.only = {TraceEventKind::kSpanBegin,
                           TraceEventKind::kSpanEnd,
                           TraceEventKind::kStateEnter,
                           TraceEventKind::kChirp};
  EventTrace filtered(filtered_options);

  for (EventTrace* trace : {&full, &filtered}) {
    WorldConfig world_config;
    world_config.obs.trace = trace;
    World world(world_config);
    const SpectrumMap map = Building5Map();
    const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
    const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
    ApParams ap_params;
    ap_params.scanner = FastScanner();
    ApNode& ap =
        world.Create<ApNode>(NodeAt(0, 0, map), ap_params, main, backup);
    ClientParams client_params;
    client_params.scanner = FastScanner();
    ClientNode& client = world.Create<ClientNode>(
        NodeAt(50.0, 40.0, map), client_params, main, backup, ap.NodeId());
    SaturatedSource downlink(ap, client.NodeId(), 1000);
    world.StartAll();
    downlink.Start();
    world.SetMicSchedule(
        {{IndexOfTvChannel(28), 4.0 * kSecond, 120.0 * kSecond}});
    world.RunFor(8.0);
  }

  EXPECT_EQ(full.TotalSeen(), filtered.TotalSeen());
  for (int k = 0; k < kNumTraceEventKinds; ++k) {
    const auto kind = static_cast<TraceEventKind>(k);
    EXPECT_EQ(full.CountOf(kind), filtered.CountOf(kind))
        << TraceEventKindName(kind);
  }
  // The filtered buffer holds only the wanted kinds.
  for (const TraceEvent& e : filtered.events()) {
    EXPECT_TRUE(filtered.Wants(e.kind)) << TraceEventKindName(e.kind);
  }
  EXPECT_LT(filtered.events().size(), full.events().size());
}

}  // namespace
}  // namespace whitefi
