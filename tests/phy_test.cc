// Unit + property tests for the PHY layer: width-scaled timing, signal
// synthesis, and the attenuation/capture models.
#include <gtest/gtest.h>

#include <algorithm>

#include "phy/attenuation.h"
#include "phy/signal.h"
#include "phy/timing.h"
#include "util/stats.h"

namespace whitefi {
namespace {

// --------------------------------------------------------------- timing ---

TEST(Timing, ReferenceValuesAt20MHz) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  EXPECT_DOUBLE_EQ(t.Scale(), 1.0);
  EXPECT_DOUBLE_EQ(t.Symbol(), 4.0);
  EXPECT_DOUBLE_EQ(t.Sifs(), 10.0);  // The paper's "lowest SIFS".
  EXPECT_DOUBLE_EQ(t.Slot(), 9.0);
  EXPECT_DOUBLE_EQ(t.Difs(), 28.0);
  EXPECT_DOUBLE_EQ(t.Preamble(), 20.0);
  EXPECT_DOUBLE_EQ(t.RateMbps(), 6.0);
}

TEST(Timing, AckDurationKnownValues) {
  // ACK: 16+6+112 = 134 bits -> 6 symbols -> 24 us + 20 us preamble.
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW20).AckDuration(), 44.0);
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW10).AckDuration(), 88.0);
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW5).AckDuration(), 176.0);
}

TEST(Timing, Figure5FrameDurations) {
  // The 132-byte Data-ACK exchange of Figure 5: at 20 MHz the data frame
  // is 200 us; halving the width doubles it.
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW20).FrameDuration(132),
                   200.0);
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW10).FrameDuration(132),
                   400.0);
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW5).FrameDuration(132),
                   800.0);
}

class TimingScaling : public ::testing::TestWithParam<ChannelWidth> {};

TEST_P(TimingScaling, EverythingScalesInverselyWithWidth) {
  const PhyTiming t = PhyTiming::ForWidth(GetParam());
  const PhyTiming ref = PhyTiming::ForWidth(ChannelWidth::kW20);
  const double s = 20.0 / WidthMHz(GetParam());
  EXPECT_DOUBLE_EQ(t.Scale(), s);
  EXPECT_DOUBLE_EQ(t.Symbol(), ref.Symbol() * s);
  EXPECT_DOUBLE_EQ(t.Sifs(), ref.Sifs() * s);
  EXPECT_DOUBLE_EQ(t.Slot(), ref.Slot() * s);
  EXPECT_DOUBLE_EQ(t.Difs(), ref.Difs() * s);
  EXPECT_DOUBLE_EQ(t.RateMbps(), ref.RateMbps() / s);
  for (int bytes : {14, 70, 132, 1000, 1500}) {
    EXPECT_DOUBLE_EQ(t.FrameDuration(bytes), ref.FrameDuration(bytes) * s);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, TimingScaling,
                         ::testing::ValuesIn(kAllWidths));

TEST(Timing, FrameDurationMonotonicInSize) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW10);
  double prev = 0.0;
  for (int bytes = 14; bytes <= 1500; bytes += 100) {
    const double d = t.FrameDuration(bytes);
    EXPECT_GT(d, prev - 1e-9);
    prev = d;
  }
  // ACK is the smallest MAC frame; even a 5 MHz ACK is shorter than any
  // realistically-sized data frame at 20 MHz — a property SIFT's matcher
  // relies on (the paper's example uses 132 B and 1000 B frames).
  EXPECT_LT(PhyTiming::ForWidth(ChannelWidth::kW5).AckDuration(),
            PhyTiming::ForWidth(ChannelWidth::kW20).FrameDuration(132));
}

TEST(Timing, SifsDistinctAcrossWidths) {
  // SIFS values must be pairwise distinguishable for width inference.
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW10).Sifs(), 20.0);
  EXPECT_DOUBLE_EQ(PhyTiming::ForWidth(ChannelWidth::kW5).Sifs(), 40.0);
}

// --------------------------------------------------------------- signal ---

SignalParams QuietParams() {
  SignalParams p;
  p.deep_ramp_probability = 0.0;
  return p;
}

TEST(Signal, SampleCountMatchesDuration) {
  SignalSynthesizer synth(QuietParams(), Rng(1));
  const auto samples = synth.Synthesize({}, 2048.0 * 1.024);
  EXPECT_EQ(samples.size(), 2048u);
}

TEST(Signal, NoiseFloorStatistics) {
  SignalSynthesizer synth(QuietParams(), Rng(2));
  const auto samples = synth.Synthesize({}, 50000.0);
  RunningStats stats;
  for (double s : samples) stats.Add(s);
  // Rayleigh(1.2) mean = 1.2 * sqrt(pi/2) ~ 1.504.
  EXPECT_NEAR(stats.Mean(), 1.504, 0.05);
  EXPECT_GT(stats.Min(), 0.0);
}

TEST(Signal, BurstRegionIsLoud) {
  SignalSynthesizer synth(QuietParams(), Rng(3));
  const Burst burst{1000.0, 500.0, false, 1.0};
  const auto samples = synth.Synthesize({{burst}}, 3000.0);
  const double period = synth.params().sample_period;
  double in_burst = 0.0, outside = 0.0;
  int n_in = 0, n_out = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double t = i * period;
    if (t >= 1050.0 && t < 1450.0) {
      in_burst += samples[i];
      ++n_in;
    } else if (t < 900.0 || t > 1600.0) {
      outside += samples[i];
      ++n_out;
    }
  }
  EXPECT_GT(in_burst / n_in, 100.0 * outside / n_out);
}

TEST(Signal, AttenuationReducesSignalNotNoise) {
  SignalParams loud = QuietParams();
  SignalParams quiet = QuietParams();
  quiet.attenuation_db = 90.0;
  SignalSynthesizer a(loud, Rng(4));
  SignalSynthesizer b(quiet, Rng(4));
  // 40 dB extra attenuation = 100x amplitude reduction.
  EXPECT_NEAR(a.AttenuatedSignalSigma() / b.AttenuatedSignalSigma(), 100.0,
              1e-6);
  // 90 dB -> amplitude scale sqrt(10^-9).
  EXPECT_NEAR(b.AttenuatedSignalSigma(),
              loud.signal_sigma * AttenuationToAmplitudeScale(90.0), 1e-9);
}

TEST(Signal, DataAckExchangeGeometry) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW10);
  const auto bursts = MakeDataAckExchange(t, 500.0, 132);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_DOUBLE_EQ(bursts[0].start, 500.0);
  EXPECT_DOUBLE_EQ(bursts[0].duration, t.FrameDuration(132));
  // The ACK starts exactly one SIFS after the data frame ends.
  EXPECT_DOUBLE_EQ(bursts[1].start - (bursts[0].start + bursts[0].duration),
                   t.Sifs());
  EXPECT_DOUBLE_EQ(bursts[1].duration, t.AckDuration());
  EXPECT_FALSE(bursts[0].ramp_artifact);  // Only 5 MHz has the artifact.
}

TEST(Signal, RampArtifactOnlyAt5MHz) {
  const auto w5 = MakeDataAckExchange(PhyTiming::ForWidth(ChannelWidth::kW5),
                                      0.0, 132);
  EXPECT_TRUE(w5[0].ramp_artifact);
  const auto w20 = MakeDataAckExchange(PhyTiming::ForWidth(ChannelWidth::kW20),
                                       0.0, 132);
  EXPECT_FALSE(w20[0].ramp_artifact);
}

TEST(Signal, BeaconCtsExchangeGeometry) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto bursts = MakeBeaconCtsExchange(t, 0.0);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_DOUBLE_EQ(bursts[0].duration, t.BeaconDuration());
  EXPECT_DOUBLE_EQ(bursts[1].duration, t.CtsDuration());
  EXPECT_DOUBLE_EQ(bursts[1].start, t.BeaconDuration() + t.Sifs());
}

TEST(Signal, CbrScheduleSpacing) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto bursts = MakeCbrSchedule(t, 5, 8000.0, 1000, 100.0);
  ASSERT_EQ(bursts.size(), 10u);  // 5 data + 5 ACK.
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(bursts[2 * i].start, 100.0 + i * 8000.0);
  }
  // Each ACK follows its data frame by exactly one SIFS (the append-direct
  // schedule builder must keep the two-burst exchange geometry).
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(
        bursts[2 * i + 1].start - (bursts[2 * i].start + bursts[2 * i].duration),
        t.Sifs());
    EXPECT_DOUBLE_EQ(bursts[2 * i + 1].duration, t.AckDuration());
  }
}

TEST(Signal, SynthesizeIntoMatchesSynthesizeExactly) {
  // Same seed, same bursts: the scratch-buffer path must be draw-for-draw
  // identical (bit-equal samples), or the signal scanner's observations
  // would depend on which API the caller used.
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW10);
  const auto bursts = MakeCbrSchedule(t, 8, 6000.0, 700, 250.0);
  SignalSynthesizer a(SignalParams{}, Rng(77));
  const auto reference = a.Synthesize(bursts, 60000.0);

  SignalSynthesizer b(SignalParams{}, Rng(77));
  std::vector<double> scratch(123, -1.0);  // Stale contents must not leak.
  b.SynthesizeInto(bursts, 60000.0, scratch);
  ASSERT_EQ(reference.size(), scratch.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i], scratch[i]) << "sample " << i;
  }
}

TEST(Signal, SynthesizeIntoReusesAndResizesTheBuffer) {
  SignalSynthesizer synth(QuietParams(), Rng(5));
  std::vector<double> scratch;
  synth.SynthesizeInto({}, 10000.0, scratch);
  const std::size_t big = scratch.size();
  EXPECT_GT(big, 0u);
  // A shorter trace shrinks the size but keeps the capacity (no realloc).
  const double* data = scratch.data();
  const std::size_t capacity = scratch.capacity();
  synth.SynthesizeInto({}, 5000.0, scratch);
  EXPECT_LT(scratch.size(), big);
  EXPECT_EQ(scratch.capacity(), capacity);
  EXPECT_EQ(scratch.data(), data);
}

// ----------------------------------------------------------- attenuation --

TEST(Attenuation, SnifferCurveAnchors) {
  const SnifferModel model;
  // Near-perfect capture at bench attenuation.
  EXPECT_GT(SnifferCaptureProbability(model, 60.0), 0.98);
  // The paper's 98 dB anchor: capture ratio "extremely low at around 35%".
  EXPECT_NEAR(SnifferCaptureProbability(model, 98.0), 0.35, 0.05);
  // Half capture at the configured midpoint.
  EXPECT_NEAR(SnifferCaptureProbability(model, 97.0), 0.5, 0.01);
}

TEST(Attenuation, SnifferCurveMonotonicallyDecreasing) {
  const SnifferModel model;
  double prev = 1.0;
  for (double att = 50.0; att <= 110.0; att += 1.0) {
    const double p = SnifferCaptureProbability(model, att);
    EXPECT_LE(p, prev + 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(Attenuation, SnifferSamplingMatchesProbability) {
  const SnifferModel model;
  Rng rng(5);
  int captures = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    captures += SnifferCaptures(model, 97.0, rng) ? 1 : 0;
  }
  EXPECT_NEAR(captures / static_cast<double>(trials), 0.5, 0.03);
}

}  // namespace
}  // namespace whitefi
