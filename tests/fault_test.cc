// Tests for the fault-injection subsystem (src/fault) and the geo-db
// client's graceful degradation: plan parsing, injector determinism, the
// Gilbert-Elliott burst channel, windowed faults, churn-storm expansion,
// and the trace records that make every injection observable.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/fault.h"
#include "obs/event_trace.h"
#include "spectrum/geodb.h"
#include "util/config.h"

namespace whitefi {
namespace {

// ------------------------------------------------------------- FaultPlan --

TEST(FaultPlan, DefaultIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.Empty());
  plan.miss_chirp_p = 0.1;
  EXPECT_FALSE(plan.Empty());
  plan = FaultPlan{};
  plan.frame_loss = GilbertElliottParams{};
  EXPECT_FALSE(plan.Empty());
  plan = FaultPlan{};
  plan.scanner_outages.push_back({0, 1});
  EXPECT_FALSE(plan.Empty());
}

TEST(FaultPlan, ParsesFromConfig) {
  const auto config = ConfigFile::ParseString(R"(
[fault]
ge_p_enter_bad = 0.02
ge_loss_bad = 0.9
beacon_drop_p = 0.1
scanner_outages = 3-8, 12.5-20
geodb_staleness_s = 60
storm_start_s = 5
storm_mics = 2
)");
  const FaultPlan plan = ParseFaultPlan(config);
  EXPECT_FALSE(plan.Empty());
  ASSERT_TRUE(plan.frame_loss.has_value());
  EXPECT_DOUBLE_EQ(plan.frame_loss->p_enter_bad, 0.02);
  EXPECT_DOUBLE_EQ(plan.frame_loss->loss_bad, 0.9);
  // Unspecified GE fields keep their struct defaults.
  EXPECT_DOUBLE_EQ(plan.frame_loss->p_exit_bad, 0.1);
  EXPECT_DOUBLE_EQ(plan.beacon_drop_p, 0.1);
  ASSERT_EQ(plan.scanner_outages.size(), 2u);
  EXPECT_EQ(plan.scanner_outages[0].from, 3 * kTicksPerSec);
  EXPECT_EQ(plan.scanner_outages[0].until, 8 * kTicksPerSec);
  EXPECT_EQ(plan.scanner_outages[1].from,
            static_cast<SimTime>(12.5 * kTicksPerSec));
  EXPECT_DOUBLE_EQ(plan.geodb_staleness, 60.0 * kSecond);
  ASSERT_EQ(plan.storms.size(), 1u);
  EXPECT_EQ(plan.storms[0].start, 5 * kTicksPerSec);
  EXPECT_EQ(plan.storms[0].mics, 2);
}

TEST(FaultPlan, ParseWithoutFaultKeysIsEmpty) {
  const auto config = ConfigFile::ParseString("seed = 3\n[map]\nname = x\n");
  EXPECT_TRUE(ParseFaultPlan(config).Empty());
}

TEST(FaultPlan, RejectsMalformedWindows) {
  EXPECT_THROW(ParseFaultPlan(ConfigFile::ParseString(
                   "[fault]\nscanner_outages = 5\n")),
               std::runtime_error);
  EXPECT_THROW(ParseFaultPlan(ConfigFile::ParseString(
                   "[fault]\nscanner_outages = a-b\n")),
               std::runtime_error);
  // A window must end after it starts.
  EXPECT_THROW(ParseFaultPlan(ConfigFile::ParseString(
                   "[fault]\ngeodb_outages = 8-3\n")),
               std::runtime_error);
}

// --------------------------------------------------------- construction --

TEST(FaultInjector, RejectsBadParameters) {
  FaultPlan plan;
  plan.miss_chirp_p = 1.5;
  EXPECT_THROW(FaultInjector(plan, 1), std::invalid_argument);
  plan = FaultPlan{};
  plan.beacon_drop_p = -0.1;
  EXPECT_THROW(FaultInjector(plan, 1), std::invalid_argument);
  plan = FaultPlan{};
  GilbertElliottParams ge;
  ge.p_exit_bad = 2.0;
  plan.frame_loss = ge;
  EXPECT_THROW(FaultInjector(plan, 1), std::invalid_argument);
  plan = FaultPlan{};
  ChurnStorm storm;
  storm.mics = -1;
  plan.storms.push_back(storm);
  EXPECT_THROW(FaultInjector(plan, 1), std::invalid_argument);
  plan.storms[0].mics = 1;
  plan.storms[0].duration = 0;
  EXPECT_THROW(FaultInjector(plan, 1), std::invalid_argument);
}

// ------------------------------------------------------------ FrameFault --

TEST(FaultInjector, TargetedDropsRespectFrameType) {
  FaultPlan plan;
  plan.beacon_drop_p = 1.0;
  FaultInjector injector(plan, 7);
  EXPECT_STREQ(injector.FrameFault(0, FrameType::kBeacon, 2), "beacon_drop");
  EXPECT_EQ(injector.FrameFault(0, FrameType::kData, 2), nullptr);
  EXPECT_EQ(injector.FrameFault(0, FrameType::kChirp, 2), nullptr);
  EXPECT_EQ(injector.InjectedCount(), 1u);

  FaultPlan chirp_plan;
  chirp_plan.chirp_drop_p = 1.0;
  FaultInjector chirp_injector(chirp_plan, 7);
  EXPECT_STREQ(chirp_injector.FrameFault(0, FrameType::kChirp, 3),
               "chirp_drop");
  EXPECT_EQ(chirp_injector.FrameFault(0, FrameType::kBeacon, 3), nullptr);
}

TEST(FaultInjector, ControlCorruptSparesDataAndAck) {
  FaultPlan plan;
  plan.control_corrupt_p = 1.0;
  FaultInjector injector(plan, 7);
  EXPECT_STREQ(injector.FrameFault(0, FrameType::kChannelSwitch, 2),
               "control_corrupt");
  EXPECT_STREQ(injector.FrameFault(0, FrameType::kReport, 2),
               "control_corrupt");
  EXPECT_EQ(injector.FrameFault(0, FrameType::kData, 2), nullptr);
  EXPECT_EQ(injector.FrameFault(0, FrameType::kAck, 2), nullptr);
}

TEST(FaultInjector, GilbertElliottBurstsPerReceiver) {
  // Deterministic extreme: always enter bad, never leave, always lose.
  FaultPlan plan;
  GilbertElliottParams ge;
  ge.p_enter_bad = 1.0;
  ge.p_exit_bad = 0.0;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;
  plan.frame_loss = ge;
  FaultInjector injector(plan, 3);
  // Each receiver has its own chain; both go bad on their first frame.
  EXPECT_STREQ(injector.FrameFault(0, FrameType::kData, 10), "ge_loss");
  EXPECT_STREQ(injector.FrameFault(0, FrameType::kData, 11), "ge_loss");
  EXPECT_STREQ(injector.FrameFault(1, FrameType::kData, 10), "ge_loss");
}

TEST(FaultInjector, GilbertElliottHonorsWindows) {
  FaultPlan plan;
  GilbertElliottParams ge;
  ge.p_enter_bad = 1.0;
  ge.p_exit_bad = 0.0;
  ge.loss_bad = 1.0;
  plan.frame_loss = ge;
  plan.frame_loss_windows.push_back(
      {2 * kTicksPerSec, 4 * kTicksPerSec});
  FaultInjector injector(plan, 3);
  EXPECT_EQ(injector.FrameFault(0, FrameType::kData, 5), nullptr);
  EXPECT_STREQ(injector.FrameFault(2 * kTicksPerSec, FrameType::kData, 5),
               "ge_loss");
  // Half-open: the end tick is outside the window.
  EXPECT_EQ(injector.FrameFault(4 * kTicksPerSec, FrameType::kData, 5),
            nullptr);
}

// -------------------------------------------------- scanner/SIFT oracles --

TEST(FaultInjector, ScannerOutageWindowsAreHalfOpen) {
  FaultPlan plan;
  plan.scanner_outages.push_back({kTicksPerSec, 2 * kTicksPerSec});
  FaultInjector injector(plan, 1);
  EXPECT_FALSE(injector.ScannerDown(kTicksPerSec - 1));
  EXPECT_TRUE(injector.ScannerDown(kTicksPerSec));
  EXPECT_TRUE(injector.ScannerDown(2 * kTicksPerSec - 1));
  EXPECT_FALSE(injector.ScannerDown(2 * kTicksPerSec));
}

TEST(FaultInjector, DetectionDrawsAreDeterministicFromSeed) {
  FaultPlan plan;
  plan.miss_chirp_p = 0.5;
  plan.stale_scan_p = 0.3;
  plan.false_incumbent_p = 0.2;
  plan.miss_incumbent_p = 0.2;
  FaultInjector a(plan, 42);
  FaultInjector b(plan, 42);
  for (int i = 0; i < 200; ++i) {
    const SimTime t = i * kTicksPerMs;
    EXPECT_EQ(a.MissChirp(t), b.MissChirp(t));
    EXPECT_EQ(a.StaleScan(t), b.StaleScan(t));
    EXPECT_EQ(a.FalseIncumbent(t), b.FalseIncumbent(t));
    EXPECT_EQ(a.MissIncumbent(t), b.MissIncumbent(t));
  }
  EXPECT_EQ(a.InjectedCount(), b.InjectedCount());
  EXPECT_GT(a.InjectedCount(), 0u);
}

TEST(FaultInjector, ZeroProbabilityDrawsNothingAndBurnsNoRandomness) {
  FaultInjector injector(FaultPlan{}, 9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.MissChirp(i));
    EXPECT_FALSE(injector.StaleScan(i));
    EXPECT_EQ(injector.FrameFault(i, FrameType::kBeacon, 1), nullptr);
  }
  EXPECT_EQ(injector.InjectedCount(), 0u);
}

// ---------------------------------------------------------------- geo-db --

TEST(FaultInjector, GeoDbOracles) {
  FaultPlan plan;
  plan.geodb_outages.push_back({kTicksPerSec, 3 * kTicksPerSec});
  plan.geodb_staleness = 10.0 * kSecond;
  FaultInjector injector(plan, 1);
  EXPECT_TRUE(injector.GeoDbAvailable(0.0));
  EXPECT_FALSE(injector.GeoDbAvailable(2.0 * kSecond));
  EXPECT_TRUE(injector.GeoDbAvailable(3.0 * kSecond));
  EXPECT_DOUBLE_EQ(injector.GeoDbServedTime(25.0 * kSecond), 15.0 * kSecond);
  // Served time never precedes the epoch.
  EXPECT_DOUBLE_EQ(injector.GeoDbServedTime(5.0 * kSecond), 0.0);
}

TEST(GeoDbClient, DegradesToConservativeMapWhenStale) {
  GeoDatabase db;
  db.RegisterStation(TvStation{"WAAA", 7, {0, 0}, 100.0});  // 60 km contour.
  // A venue whose protection window is closed at fetch time.
  db.RegisterVenue(ProtectedVenue{"hall", 12, {65, 0}, 2.0, 100.0 * kSecond,
                                  200.0 * kSecond});
  GeoDbClientParams params;
  params.stale_after = 10.0 * kSecond;
  params.guard_km = 10.0;
  // 65 km out: outside the 60 km contour, inside the 70 km guarded one.
  GeoDbClient client(db, {65, 0}, params);
  EXPECT_EQ(client.RefreshCount(), 1);
  EXPECT_FALSE(client.FreshMap().Occupied(7));
  EXPECT_TRUE(client.ConservativeMap().Occupied(7));
  EXPECT_TRUE(client.ConservativeMap().Occupied(12));  // Venue always-on.

  // Fresh cache serves the exact query; a stale one must widen.
  EXPECT_FALSE(client.Stale(5.0 * kSecond));
  EXPECT_FALSE(client.Map(5.0 * kSecond).Occupied(7));
  EXPECT_TRUE(client.Stale(11.0 * kSecond));
  EXPECT_TRUE(client.Map(11.0 * kSecond).Occupied(7));

  // An unreachable database keeps the cache: still degraded.
  EXPECT_FALSE(client.Refresh(12.0 * kSecond, /*reachable=*/false));
  EXPECT_TRUE(client.Stale(12.0 * kSecond));
  // A refresh that serves old data does not rejuvenate the cache past it.
  EXPECT_TRUE(client.Refresh(30.0 * kSecond, true,
                             /*served_time=*/15.0 * kSecond));
  EXPECT_DOUBLE_EQ(client.Age(30.0 * kSecond), 15.0 * kSecond);
  EXPECT_TRUE(client.Stale(30.0 * kSecond));
  // A current refresh restores the exact map.
  EXPECT_TRUE(client.Refresh(40.0 * kSecond));
  EXPECT_FALSE(client.Stale(40.0 * kSecond));
  EXPECT_FALSE(client.Map(40.0 * kSecond).Occupied(7));
  EXPECT_EQ(client.RefreshCount(), 3);
}

// ---------------------------------------------------------- churn storms --

TEST(FaultInjector, StormExpansionIsDeterministicAndClipped) {
  FaultPlan plan;
  ChurnStorm storm;
  storm.start = 2 * kTicksPerSec;
  storm.duration = 10 * kTicksPerSec;
  storm.mics = 3;
  plan.storms.push_back(storm);
  const std::vector<UhfIndex> channels{1, 4, 9};

  FaultInjector a(plan, 77);
  FaultInjector b(plan, 77);
  FaultInjector c(plan, 78);
  const auto mics_a = a.ExpandStorms(channels);
  const auto mics_b = b.ExpandStorms(channels);
  const auto mics_c = c.ExpandStorms(channels);
  ASSERT_FALSE(mics_a.empty());
  ASSERT_EQ(mics_a.size(), mics_b.size());
  for (std::size_t i = 0; i < mics_a.size(); ++i) {
    EXPECT_EQ(mics_a[i].channel, mics_b[i].channel);
    EXPECT_DOUBLE_EQ(mics_a[i].on_time, mics_b[i].on_time);
    EXPECT_DOUBLE_EQ(mics_a[i].off_time, mics_b[i].off_time);
  }
  // A different seed produces a different schedule.
  bool differs = mics_a.size() != mics_c.size();
  for (std::size_t i = 0; !differs && i < mics_a.size(); ++i) {
    differs = mics_a[i].on_time != mics_c[i].on_time ||
              mics_a[i].channel != mics_c[i].channel;
  }
  EXPECT_TRUE(differs);

  const auto start_us = static_cast<Us>(storm.start);
  const auto end_us = static_cast<Us>(storm.start + storm.duration);
  for (std::size_t i = 0; i < mics_a.size(); ++i) {
    const MicActivation& mic = mics_a[i];
    EXPECT_GE(mic.on_time, start_us);
    EXPECT_LE(mic.off_time, end_us);  // Clipped to the storm window.
    EXPECT_LT(mic.on_time, mic.off_time);
    EXPECT_TRUE(mic.channel == 1 || mic.channel == 4 || mic.channel == 9);
    if (i > 0) {
      EXPECT_GE(mic.on_time, mics_a[i - 1].on_time);  // Sorted.
    }
  }
}

TEST(FaultInjector, StormExpansionWithoutChannelsIsEmpty) {
  FaultPlan plan;
  ChurnStorm storm;
  storm.start = 0;
  storm.duration = kTicksPerSec;
  storm.mics = 2;
  plan.storms.push_back(storm);
  FaultInjector injector(plan, 1);
  EXPECT_TRUE(injector.ExpandStorms({}).empty());
}

// --------------------------------------------------------- window events --

TEST(FaultInjector, WindowEventsBracketEveryWindowInOrder) {
  FaultPlan plan;
  plan.scanner_outages.push_back({5 * kTicksPerSec, 8 * kTicksPerSec});
  plan.geodb_outages.push_back({kTicksPerSec, 2 * kTicksPerSec});
  ChurnStorm storm;
  storm.start = 3 * kTicksPerSec;
  storm.duration = 10 * kTicksPerSec;
  storm.mics = 1;
  plan.storms.push_back(storm);
  FaultInjector injector(plan, 1);
  const auto events = injector.WindowEvents();
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  EXPECT_EQ(events[0].what, "geodb_outage");
  EXPECT_TRUE(events[0].inject);
  EXPECT_EQ(events[1].what, "geodb_outage");
  EXPECT_FALSE(events[1].inject);
  EXPECT_EQ(events[2].what, "churn_storm");
  // Per-kind pairing: one open and one close per window.
  int opens = 0;
  for (const auto& event : events) opens += event.inject ? 1 : -1;
  EXPECT_EQ(opens, 0);
}

// ----------------------------------------------------------- trace round --

TEST(FaultInjector, InjectionsEmitTraceRecordsThatRoundTripJsonl) {
  EventTrace trace;
  Observability obs;
  obs.trace = &trace;

  FaultPlan plan;
  plan.beacon_drop_p = 1.0;
  GilbertElliottParams ge;
  ge.p_enter_bad = 1.0;
  ge.p_exit_bad = 1.0;  // Bad for exactly one frame: inject then clear.
  ge.loss_bad = 0.0;
  plan.frame_loss = ge;
  FaultInjector injector(plan, 5);
  injector.SetObservability(obs);

  injector.FrameFault(10, FrameType::kBeacon, 4);  // beacon_drop
  injector.FrameFault(20, FrameType::kData, 4);    // enters bad state
  injector.FrameFault(30, FrameType::kData, 4);    // recovers
  ASSERT_GE(trace.events().size(), 3u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kFaultInjected), 2u);
  EXPECT_EQ(trace.CountOf(TraceEventKind::kFaultCleared), 1u);
  EXPECT_EQ(trace.events()[0].detail, "beacon_drop");
  EXPECT_EQ(trace.events()[0].node, 4);
  EXPECT_EQ(trace.events()[1].detail, "ge_bad_state");
  EXPECT_EQ(trace.events()[2].detail, "ge_good_state");
  EXPECT_EQ(trace.events()[2].kind, TraceEventKind::kFaultCleared);

  std::stringstream buffer;
  trace.WriteJsonl(buffer);
  const auto parsed = EventTrace::ReadJsonl(buffer);
  ASSERT_EQ(parsed.size(), trace.events().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], trace.events()[i]);
  }
}

}  // namespace
}  // namespace whitefi
