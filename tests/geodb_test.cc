// Tests for the geo-location incumbent database.
#include <gtest/gtest.h>

#include "spectrum/geodb.h"
#include "util/stats.h"

namespace whitefi {
namespace {

TEST(GeoDb, DistanceAndContours) {
  EXPECT_DOUBLE_EQ(GeoDistanceKm({0, 0}, {3, 4}), 5.0);
  TvStation full_power{"WAAA", 5, {0, 0}, 100.0};
  EXPECT_DOUBLE_EQ(ProtectedRadiusKm(full_power), 60.0);
  TvStation quarter{"WBBB", 5, {0, 0}, 25.0};
  EXPECT_DOUBLE_EQ(ProtectedRadiusKm(quarter), 30.0);
}

TEST(GeoDb, QueryInsideAndOutsideContour) {
  GeoDatabase db;
  db.RegisterStation(TvStation{"WAAA", 7, {0, 0}, 100.0});  // 60 km contour.
  EXPECT_TRUE(db.QueryAt({10, 0}).Occupied(7));
  EXPECT_TRUE(db.QueryAt({60, 0}).Occupied(7));  // On the contour: protected.
  EXPECT_FALSE(db.QueryAt({61, 0}).Occupied(7));
  EXPECT_EQ(db.QueryAt({61, 0}).NumOccupied(), 0);
  EXPECT_EQ(db.StationsCovering({10, 0}).size(), 1u);
  EXPECT_TRUE(db.StationsCovering({100, 0}).empty());
}

TEST(GeoDb, OverlappingStationsUnion) {
  GeoDatabase db;
  db.RegisterStation(TvStation{"WAAA", 3, {0, 0}, 100.0});
  db.RegisterStation(TvStation{"WBBB", 9, {20, 0}, 100.0});
  const SpectrumMap map = db.QueryAt({10, 0});
  EXPECT_TRUE(map.Occupied(3));
  EXPECT_TRUE(map.Occupied(9));
  EXPECT_EQ(map.NumOccupied(), 2);
}

TEST(GeoDb, VenueProtectionIsTimeWindowed) {
  GeoDatabase db;
  ProtectedVenue venue{"theater", 12, {1, 1}, 2.0, 100.0 * kSecond,
                       200.0 * kSecond};
  db.RegisterVenue(venue);
  EXPECT_FALSE(db.QueryAt({1, 1}, 50.0 * kSecond).Occupied(12));
  EXPECT_TRUE(db.QueryAt({1, 1}, 150.0 * kSecond).Occupied(12));
  EXPECT_FALSE(db.QueryAt({1, 1}, 250.0 * kSecond).Occupied(12));
  // Outside the venue radius: unprotected even during the window.
  EXPECT_FALSE(db.QueryAt({10, 10}, 150.0 * kSecond).Occupied(12));
}

TEST(GeoDb, RejectsBadInput) {
  GeoDatabase db;
  EXPECT_THROW(db.RegisterStation(TvStation{"X", 30, {0, 0}, 10.0}),
               std::out_of_range);
  EXPECT_THROW(db.RegisterVenue(ProtectedVenue{"v", -1, {0, 0}, 1.0, 0, 1}),
               std::out_of_range);
  EXPECT_THROW(
      db.RegisterVenue(ProtectedVenue{"v", 3, {0, 0}, 1.0, 5.0, 5.0}),
      std::invalid_argument);
}

TEST(GeoDb, StaleBoundaryIsStrict) {
  // The staleness boundary is pinned STRICT (Age > stale_after): the
  // FCC-style contract is "re-query within T", so data whose age is
  // exactly T is still trusted and the degraded map takes over only one
  // microsecond past the horizon.  GeoDbSession's stale watchdog
  // schedules itself one tick past data_time + stale_after for the same
  // reason — both sides of the protocol must agree on the boundary.
  GeoDatabase db;
  db.RegisterStation(TvStation{"WAAA", 7, {0, 0}, 100.0});
  GeoDbClientParams params;
  params.stale_after = 10.0 * kSecond;
  GeoDbClient client(db, {0, 0}, params);  // Initial fetch at t = 0.
  EXPECT_FALSE(client.Stale(10.0 * kSecond));       // Exactly at: trusted.
  EXPECT_TRUE(client.Stale(10.0 * kSecond + 1.0));  // One us past: stale.
  EXPECT_EQ(&client.Map(10.0 * kSecond), &client.FreshMap());
  EXPECT_EQ(&client.Map(10.0 * kSecond + 1.0), &client.ConservativeMap());
  // The cache ages from the DATA time, not the fetch time: a refresh that
  // serves backdated data can leave the client already past the horizon.
  ASSERT_TRUE(client.Refresh(20.0 * kSecond, true, 9.0 * kSecond));
  EXPECT_FALSE(client.Stale(19.0 * kSecond));
  EXPECT_TRUE(client.Stale(19.0 * kSecond + 1.0));
}

TEST(GeoDb, ProtectedAtPointQuery) {
  // The point query backing the auditor's position-aware ground truth:
  // contour membership is inclusive, venue protection is gated on the
  // activity window.
  GeoDatabase db;
  db.RegisterStation(TvStation{"WAAA", 7, {0, 0}, 100.0});  // 60 km.
  db.RegisterVenue(ProtectedVenue{"theater", 12, {1, 1}, 2.0,
                                  100.0 * kSecond, 200.0 * kSecond});
  EXPECT_TRUE(db.ProtectedAt({60, 0}, 7, 0.0));
  EXPECT_FALSE(db.ProtectedAt({61, 0}, 7, 0.0));
  EXPECT_FALSE(db.ProtectedAt({60, 0}, 8, 0.0));
  EXPECT_FALSE(db.ProtectedAt({1, 1}, 12, 50.0 * kSecond));
  EXPECT_TRUE(db.ProtectedAt({1, 1}, 12, 150.0 * kSecond));
  EXPECT_FALSE(db.ProtectedAt({10, 10}, 12, 150.0 * kSecond));
}

TEST(GeoDb, MetroSynthesisShape) {
  Rng rng(42);
  const GeoDatabase db = SynthesizeMetro(MetroModel{}, rng);
  EXPECT_EQ(db.NumStations(), 18u);
  EXPECT_EQ(db.NumVenues(), 3u);
  // Downtown is crowded; 150 km out is nearly clear.
  const SpectrumMap downtown = db.QueryAt({0, 0});
  const SpectrumMap exurb = db.QueryAt({150, 0});
  EXPECT_GT(downtown.NumOccupied(), 8);
  EXPECT_LT(exurb.NumOccupied(), downtown.NumOccupied() / 2);
}

TEST(GeoDb, RadialGradientReproducesUrbanRuralDivide) {
  // The Figure 2 urban-to-rural gradient, from geometry: free spectrum
  // (and the widest fragment) grows with distance from the metro core.
  Rng rng(43);
  const GeoDatabase db = SynthesizeMetro(MetroModel{}, rng);
  const auto maps = MapsAlongRadial(db, 200.0, 9);
  ASSERT_EQ(maps.size(), 9u);
  EXPECT_GE(maps.back().NumFree(), maps.front().NumFree());
  EXPECT_GE(maps.back().WidestFragment(), maps.front().WidestFragment());
  // Averaged over several metros, the gradient is strict.
  RunningStats core_free, edge_free;
  for (int trial = 0; trial < 20; ++trial) {
    const GeoDatabase metro = SynthesizeMetro(MetroModel{}, rng);
    core_free.Add(metro.QueryAt({0, 0}).NumFree());
    edge_free.Add(metro.QueryAt({200, 0}).NumFree());
  }
  EXPECT_GT(edge_free.Mean(), core_free.Mean() + 5.0);
}

TEST(GeoDb, SpatialVariationEmergesNearContourEdges) {
  // Section 2.1, geometrically: query points a few km apart straddle
  // protection contours and observe different maps.  (Building-scale
  // variation additionally needs obstruction shadowing, which the campus
  // model covers with its calibrated per-building flips.)
  Rng rng(44);
  RunningStats hamming;
  for (int trial = 0; trial < 40; ++trial) {
    const GeoDatabase db = SynthesizeMetro(MetroModel{}, rng);
    const double d = rng.Uniform(30.0, 70.0);  // The urban fringe.
    const SpectrumMap a = db.QueryAt({d, 0.0});
    const SpectrumMap b = db.QueryAt({d + 5.0, 2.0});
    hamming.Add(SpectrumMap::HammingDistance(a, b));
  }
  // Clearly nonzero on average: geometry alone produces spatial variation.
  EXPECT_GT(hamming.Mean(), 0.5);
}

}  // namespace
}  // namespace whitefi
