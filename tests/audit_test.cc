// Unit tests for the invariant auditor: incumbent-safety boundary
// semantics, liveness/convergence bounds, engine-sanity checks, and the
// violation trace record.
#include <gtest/gtest.h>

#include "audit/audit.h"
#include "obs/event_trace.h"
#include "sim/medium.h"
#include "sim/traffic.h"
#include "sim/world.h"

namespace whitefi {
namespace {

/// Minimal RadioPort for driving auditor hooks directly at exact times.
class FakeRadio : public RadioPort {
 public:
  FakeRadio(int id, const Channel& channel) : id_(id), channel_(channel) {}

  int NodeId() const override { return id_; }
  Position Location() const override { return {0.0, 0.0}; }
  const Channel& TunedChannel() const override { return channel_; }
  bool RxEnabled() const override { return true; }
  bool IsAp() const override { return false; }
  void DeliverFrame(const Frame&, Dbm) override {}
  void MediumChanged() override {}

  void Tune(const Channel& channel) { channel_ = channel; }

 private:
  int id_;
  Channel channel_;
};

// ------------------------------------------------- incumbent safety -------

/// Fixture: a world with one mic and a fake audited node, the auditor's
/// safety budget pinned to a round number so the boundary is exact.
struct SafetyHarness {
  static constexpr SimTime kBudget = 50 * kTicksPerMs;
  static constexpr UhfIndex kMicChannel = 5;
  static constexpr SimTime kMicOn = 1 * kTicksPerSec;

  World world;
  InvariantAuditor auditor;
  FakeRadio radio{7, Channel{kMicChannel, ChannelWidth::kW5}};

  SafetyHarness()
      : auditor([] {
          AuditConfig c;
          c.safety_budget = kBudget;
          // The fake radio bypasses the medium, so the interval-union
          // reference would disagree with the (empty) medium books.
          c.check_books = false;
          return c;
        }()) {
    auditor.Attach(world);
    auditor.RegisterAp(radio.NodeId());
    auditor.OnNodeTuned(0, radio.NodeId(),
                        Channel{kMicChannel, ChannelWidth::kW5});
    world.AddMic(MicActivation{kMicChannel, ToUs(kMicOn), ToUs(kMicOn) +
                                                              10.0 * kSecond});
  }

  /// Fires one transmit-start hook at simulated time `at`.
  void TransmitAt(SimTime at) {
    world.sim().Schedule(at, [this, at] {
      auditor.OnTransmitStart(at, radio,
                              Channel{kMicChannel, ChannelWidth::kW5},
                              100);
    });
  }
};

TEST(AuditIncumbentSafety, ExposureExactlyAtBudgetPasses) {
  // The boundary contract (ISSUE satellite): a transmission whose overlap
  // with the active mic equals the budget EXACTLY is legal...
  SafetyHarness h;
  h.TransmitAt(SafetyHarness::kMicOn + SafetyHarness::kBudget);
  h.world.RunFor(2.0);
  EXPECT_TRUE(h.auditor.ok()) << h.auditor.first_violation()->ToString();
}

TEST(AuditIncumbentSafety, OneTickPastBudgetTrips) {
  // ...and one microsecond tick past it is a violation.
  SafetyHarness h;
  h.TransmitAt(SafetyHarness::kMicOn + SafetyHarness::kBudget + 1);
  h.world.RunFor(2.0);
  ASSERT_EQ(h.auditor.violation_count(), 1u);
  const Violation& v = *h.auditor.first_violation();
  EXPECT_EQ(v.invariant, "incumbent-safety");
  EXPECT_EQ(v.node, 7);
  EXPECT_EQ(v.channel, static_cast<int>(SafetyHarness::kMicChannel));
  EXPECT_EQ(v.at, SafetyHarness::kMicOn + SafetyHarness::kBudget + 1);
}

TEST(AuditIncumbentSafety, ExposureClockStartsAtArrivalNotMicOn) {
  // A node that tunes onto a channel whose mic predates it gets a full
  // budget from its arrival: exposure is min(since mic-on, since tune).
  SafetyHarness h;
  const SimTime arrive = SafetyHarness::kMicOn + 3 * kTicksPerSec;
  h.world.sim().Schedule(arrive, [&] {
    h.auditor.OnNodeTuned(arrive, h.radio.NodeId(),
                          Channel{SafetyHarness::kMicChannel,
                                  ChannelWidth::kW5});
  });
  h.TransmitAt(arrive + SafetyHarness::kBudget);      // Edge: passes.
  h.TransmitAt(arrive + SafetyHarness::kBudget + 1);  // Past: trips.
  h.world.RunFor(6.0);
  EXPECT_EQ(h.auditor.violation_count(), 1u);
}

TEST(AuditIncumbentSafety, UnauditedNodesAreExempt) {
  // Background traffic is not WhiteFi's to police.
  SafetyHarness h;
  FakeRadio background{99, Channel{SafetyHarness::kMicChannel,
                                   ChannelWidth::kW5}};
  h.world.sim().Schedule(SafetyHarness::kMicOn + 2 * kTicksPerSec, [&] {
    h.auditor.OnTransmitStart(h.world.sim().Now(), background,
                              background.TunedChannel(), 100);
  });
  h.world.RunFor(4.0);
  EXPECT_TRUE(h.auditor.ok());
}

// ------------------------------------------------------ engine sanity -----

TEST(AuditEngine, TimeRunningBackwardsIsReported) {
  InvariantAuditor auditor;
  FakeRadio radio{1, Channel{3, ChannelWidth::kW5}};
  auditor.OnNodeTuned(1000, 1, radio.TunedChannel());
  auditor.OnTransmitStart(500, radio, radio.TunedChannel(), 10);
  ASSERT_GE(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.first_violation()->invariant, "monotonicity");
}

TEST(AuditEngine, MacTimingWidthMismatchIsReported) {
  // A MAC contending with 10 MHz DIFS while the radio sits on a 5 MHz
  // channel is the stale-timing bug the hook exists to catch.
  InvariantAuditor auditor;
  FakeRadio radio{4, Channel{8, ChannelWidth::kW5}};
  auditor.OnMacTiming(radio, PhyTiming::ForWidth(ChannelWidth::kW5));
  EXPECT_TRUE(auditor.ok());
  auditor.OnMacTiming(radio, PhyTiming::ForWidth(ChannelWidth::kW10));
  ASSERT_EQ(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.first_violation()->invariant, "mac-timing");
  EXPECT_EQ(auditor.first_violation()->node, 4);
}

TEST(AuditEngine, BooksMatchOnRealTraffic) {
  // End-to-end conservation: real devices through the real medium, the
  // auditor's interval-union reference must agree with the lazily accrued
  // medium books at every sweep.
  WorldConfig config;
  InvariantAuditor auditor;
  config.obs.auditor = &auditor;
  World world(config);
  auditor.Attach(world);

  DeviceConfig tx_config;
  tx_config.initial_channel = Channel{10, ChannelWidth::kW5};
  Device& tx = world.Create<Device>(tx_config);
  DeviceConfig rx_config = tx_config;
  rx_config.position = {30.0, 0.0};
  Device& rx = world.Create<Device>(rx_config);
  CbrSource source(tx, rx.NodeId(), 400, 5 * kTicksPerMs);
  source.Start();
  world.RunFor(2.0);
  EXPECT_TRUE(auditor.ok()) << auditor.first_violation()->ToString();
}

// ---------------------------------------------------- protocol liveness ---

TEST(AuditLiveness, SilentDisconnectedClientTripsChirpBound) {
  WorldConfig world_config;
  World world(world_config);
  InvariantAuditor auditor;
  auditor.Attach(world);
  ClientParams params;
  params.chirp_interval = 100 * kTicksPerMs;
  params.chirp_jitter = 0.0;
  params.chirp_backoff = false;
  auditor.RegisterClient(42, params);

  // Disconnects at 1 s and never chirps: bound is 100 ms + 100 ms slack,
  // so the sweep after 1.2 s must flag it, and the re-arm limits the rate
  // to one violation per bound, not one per sweep.
  world.sim().Schedule(1 * kTicksPerSec,
                       [&] { auditor.OnClientDisconnected(
                                 world.sim().Now(), 42); });
  world.RunFor(1.15);
  EXPECT_TRUE(auditor.ok());
  world.RunFor(0.3);
  EXPECT_EQ(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.first_violation()->invariant, "chirp-liveness");
  EXPECT_EQ(auditor.first_violation()->node, 42);
}

TEST(AuditLiveness, ChirpingClientStaysLegal) {
  WorldConfig world_config;
  World world(world_config);
  InvariantAuditor auditor;
  auditor.Attach(world);
  ClientParams params;
  params.chirp_interval = 100 * kTicksPerMs;
  params.chirp_jitter = 0.0;
  params.chirp_backoff = false;
  auditor.RegisterClient(42, params);

  world.sim().Schedule(1 * kTicksPerSec,
                       [&] { auditor.OnClientDisconnected(
                                 world.sim().Now(), 42); });
  // Chirps every 150 ms — inside the 200 ms bound.
  for (int i = 1; i <= 20; ++i) {
    const SimTime at = 1 * kTicksPerSec + i * 150 * kTicksPerMs;
    world.sim().Schedule(at, [&, at] { auditor.OnChirp(at, 42); });
  }
  world.RunFor(4.0);
  EXPECT_TRUE(auditor.ok()) << auditor.first_violation()->ToString();
}

TEST(AuditConvergence, PersistentViewMismatchIsReported) {
  WorldConfig world_config;
  World world(world_config);
  AuditConfig config;
  config.convergence_budget = 500 * kTicksPerMs;
  InvariantAuditor auditor(config);
  auditor.Attach(world);
  auditor.RegisterAp(1);
  ClientParams params;
  auditor.RegisterClient(2, params);
  auditor.OnClientReconnected(0, 2);
  auditor.OnNodeTuned(0, 1, Channel{10, ChannelWidth::kW5});
  auditor.OnNodeTuned(0, 2, Channel{10, ChannelWidth::kW5});
  // The AP moves; the "connected" client never follows.
  world.sim().Schedule(1 * kTicksPerSec, [&] {
    auditor.OnNodeTuned(world.sim().Now(), 1, Channel{20, ChannelWidth::kW5});
  });
  world.RunFor(2.5);
  ASSERT_GE(auditor.violation_count(), 1u);
  EXPECT_EQ(auditor.first_violation()->invariant, "convergence");
  EXPECT_EQ(auditor.first_violation()->node, 2);
}

TEST(AuditConvergence, DisconnectedClientIsNotHeldToConvergence) {
  WorldConfig world_config;
  World world(world_config);
  AuditConfig config;
  config.convergence_budget = 500 * kTicksPerMs;
  InvariantAuditor auditor(config);
  auditor.Attach(world);
  auditor.RegisterAp(1);
  ClientParams params;
  params.chirp_backoff = true;  // Wide liveness bound; not under test.
  auditor.RegisterClient(2, params);
  auditor.OnNodeTuned(0, 1, Channel{10, ChannelWidth::kW5});
  auditor.OnNodeTuned(0, 2, Channel{25, ChannelWidth::kW5});
  auditor.OnClientDisconnected(0, 2);
  world.sim().Schedule(500 * kTicksPerMs,
                       [&] { auditor.OnChirp(world.sim().Now(), 2); });
  world.RunFor(1.2);
  EXPECT_TRUE(auditor.ok()) << auditor.first_violation()->ToString();
}

// ------------------------------------------------------- trace record -----

TEST(AuditTrace, ViolationEmitsStructuredTraceEvent) {
  EventTrace trace;
  WorldConfig world_config;
  world_config.obs.trace = &trace;
  World world(world_config);
  InvariantAuditor auditor;
  auditor.Attach(world);
  FakeRadio radio{1, Channel{3, ChannelWidth::kW5}};
  auditor.OnNodeTuned(1000, 1, radio.TunedChannel());
  auditor.OnTransmitStart(500, radio, radio.TunedChannel(), 10);

  ASSERT_FALSE(auditor.ok());
  bool found = false;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kInvariantViolation) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(AuditTrace, ViolationCapRetainsExactCount) {
  AuditConfig config;
  config.max_recorded = 2;
  InvariantAuditor auditor(config);
  FakeRadio radio{1, Channel{3, ChannelWidth::kW5}};
  for (int i = 0; i < 5; ++i) {
    auditor.OnNodeTuned(1000, 1, radio.TunedChannel());
    auditor.OnTransmitStart(500, radio, radio.TunedChannel(), 10);
  }
  EXPECT_EQ(auditor.violations().size(), 2u);
  EXPECT_EQ(auditor.violation_count(), 5u);
}

}  // namespace
}  // namespace whitefi
