// Unit tests for the discrete-event core and propagation model.
#include <gtest/gtest.h>

#include "sim/events.h"
#include "sim/propagation.h"
#include "sim/time.h"

namespace whitefi {
namespace {

// ----------------------------------------------------------------- time ---

TEST(SimTimeConv, ToTicksRounding) {
  EXPECT_EQ(ToTicks(0.0), 0);
  EXPECT_EQ(ToTicks(1.4), 1);
  EXPECT_EQ(ToTicks(1.6), 2);
  // Strictly positive durations never round to zero ticks.
  EXPECT_EQ(ToTicks(0.2), 1);
  EXPECT_DOUBLE_EQ(ToUs(1500), 1500.0);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kTicksPerSec), 2.0);
}

// --------------------------------------------------------------- events ---

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.Run(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 1000);
  EXPECT_EQ(sim.NumProcessed(), 3u);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.Run(100);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunStopsAtBoundaryLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(101, [&] { ++fired; });
  sim.Run(100);  // Inclusive boundary.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100);
  sim.Run(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // Second cancel is a no-op.
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(9999));  // Never-issued id.
  sim.Run(100);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.NumProcessed(), 0u);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.ScheduleAfter(10, step);
  };
  sim.Schedule(0, step);
  sim.Run(1000);
  EXPECT_EQ(chain, 5);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  SimTime observed = -1;
  sim.Schedule(100, [&] {
    sim.Schedule(50, [&] { observed = sim.Now(); });  // "Past" event.
  });
  sim.Run(1000);
  EXPECT_EQ(observed, 100);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(20, [&] { ++fired; });
  sim.Run(100);
  EXPECT_EQ(fired, 1);
  // A subsequent Run resumes.
  sim.Run(100);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIdleDrainsQueue) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(5, [&] { ++fired; });
  sim.Schedule(500000, [&] { ++fired; });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 500000);
}

TEST(Simulator, CancelledTombstonesDoNotCountAsProcessed) {
  Simulator sim;
  const EventId a = sim.Schedule(1, [] {});
  sim.Schedule(2, [] {});
  sim.Cancel(a);
  sim.Run(10);
  EXPECT_EQ(sim.NumProcessed(), 1u);
}

// ------------------------------------------------------------ propagation -

TEST(Propagation, PathLossGrowsWithDistance) {
  const PropagationModel model;
  EXPECT_DOUBLE_EQ(model.PathLossDb(1.0), 28.0);
  EXPECT_NEAR(model.PathLossDb(10.0), 28.0 + 22.0, 1e-9);
  EXPECT_NEAR(model.PathLossDb(100.0), 28.0 + 44.0, 1e-9);
  // Near-field clamp.
  EXPECT_DOUBLE_EQ(model.PathLossDb(0.1), 28.0);
}

TEST(Propagation, ReceivedPowerAndDistance) {
  const PropagationModel model;
  const Position a{0.0, 0.0}, b{300.0, 400.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 500.0);
  EXPECT_NEAR(model.ReceivedPower(16.0, a, b),
              16.0 - model.PathLossDb(500.0), 1e-9);
}

TEST(Propagation, UhfRangeExceedsOneKilometer) {
  // The paper expects communication ranges beyond 1 km in UHF; with the
  // default model a 16 dBm transmitter at 1 km is still >10 dB above the
  // 20 MHz noise floor.
  const PropagationModel model;
  const Dbm rx = model.ReceivedPower(16.0, 1000.0);
  EXPECT_GT(rx - NoiseFloorDbm(20.0), 10.0);
}

TEST(Propagation, NoiseFloorScalesWithWidth) {
  EXPECT_DOUBLE_EQ(NoiseFloorDbm(20.0), -101.0);
  EXPECT_NEAR(NoiseFloorDbm(10.0), -104.0, 0.02);
  EXPECT_NEAR(NoiseFloorDbm(5.0), -107.0, 0.03);
}

}  // namespace
}  // namespace whitefi
