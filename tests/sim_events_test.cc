// Unit tests for the discrete-event core and propagation model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "sim/events.h"
#include "sim/propagation.h"
#include "sim/time.h"

namespace whitefi {
namespace {

// ----------------------------------------------------------------- time ---

TEST(SimTimeConv, ToTicksRounding) {
  EXPECT_EQ(ToTicks(0.0), 0);
  EXPECT_EQ(ToTicks(1.4), 1);
  EXPECT_EQ(ToTicks(1.6), 2);
  // Strictly positive durations never round to zero ticks.
  EXPECT_EQ(ToTicks(0.2), 1);
  EXPECT_DOUBLE_EQ(ToUs(1500), 1500.0);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kTicksPerSec), 2.0);
}

// --------------------------------------------------------------- events ---

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.Run(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 1000);
  EXPECT_EQ(sim.NumProcessed(), 3u);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.Run(100);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunStopsAtBoundaryLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(101, [&] { ++fired; });
  sim.Run(100);  // Inclusive boundary.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100);
  sim.Run(200);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // Second cancel is a no-op.
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(9999));  // Never-issued id.
  sim.Run(100);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.NumProcessed(), 0u);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.ScheduleAfter(10, step);
  };
  sim.Schedule(0, step);
  sim.Run(1000);
  EXPECT_EQ(chain, 5);
}

TEST(Simulator, SchedulingInThePastClampsToNow) {
  Simulator sim;
  SimTime observed = -1;
  sim.Schedule(100, [&] {
    sim.Schedule(50, [&] { observed = sim.Now(); });  // "Past" event.
  });
  sim.Run(1000);
  EXPECT_EQ(observed, 100);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(20, [&] { ++fired; });
  sim.Run(100);
  EXPECT_EQ(fired, 1);
  // A subsequent Run resumes.
  sim.Run(100);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIdleDrainsQueue) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(5, [&] { ++fired; });
  sim.Schedule(500000, [&] { ++fired; });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 500000);
}

TEST(Simulator, CancelledTombstonesDoNotCountAsProcessed) {
  Simulator sim;
  const EventId a = sim.Schedule(1, [] {});
  sim.Schedule(2, [] {});
  sim.Cancel(a);
  sim.Run(10);
  EXPECT_EQ(sim.NumProcessed(), 1u);
}

TEST(Simulator, SimultaneousEventsAreFifoInRunUntilIdle) {
  // The (time, seq) FIFO contract must hold in BOTH drain loops — scenario
  // determinism rests on it.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, SimultaneousFifoSurvivesInterleavedCancels) {
  // Cancelling some of a tick's events must not perturb the schedule order
  // of the survivors (in-place cancellation must not reorder the bucket).
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(sim.Schedule(50, [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 16; i += 2) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<std::size_t>(i)]));
  }
  sim.RunUntilIdle();
  std::vector<int> expected;
  for (int i = 0; i < 16; i += 2) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(Simulator, FiresInTimeOrderAcrossWideHorizons) {
  // Times straddling many wheel levels (same tick, adjacent ticks, 256-
  // and 65536-tick window boundaries, and far-future timers), scheduled in
  // shuffled order, must still fire in (time, seq) order.
  const std::vector<SimTime> times = {
      0,     1,       2,         255,       256,        257,      511,
      512,   65535,   65536,     65537,     100000,     1 << 24,  (1 << 24) + 1,
      1 << 30, SimTime{1} << 40, (SimTime{1} << 40) + 255};
  std::vector<std::size_t> perm(times.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    Simulator sim;
    std::vector<SimTime> fired;
    for (const std::size_t i : perm) {
      sim.Schedule(times[i], [&fired, &sim] { fired.push_back(sim.Now()); });
    }
    sim.RunUntilIdle();
    std::vector<SimTime> expected = times;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(fired, expected);
  }
}

TEST(Simulator, CancellingFiredIdsLeavesStateBounded) {
  // Regression for the seed engine's unbounded tombstone set: cancelling
  // ids that already fired must be a stateless miss, and repeated
  // schedule/fire/cancel churn must not grow the arena beyond the peak
  // number of simultaneously pending events.
  Simulator sim;
  std::vector<EventId> ids;
  for (int round = 0; round < 200; ++round) {
    ids.clear();
    for (int i = 0; i < 64; ++i) {
      ids.push_back(sim.ScheduleAfter(i % 7 + 1, [] {}));
    }
    sim.RunUntilIdle();
    for (const EventId id : ids) EXPECT_FALSE(sim.Cancel(id));
    EXPECT_EQ(sim.NumPending(), 0u);
  }
  // 64 concurrent events fit one 256-slot chunk; 12800 schedules and as
  // many stale cancels must not have grown it.
  EXPECT_EQ(sim.ArenaSlots(), 256u);
}

TEST(Simulator, StaleIdAfterSlotReuseIsNoOp) {
  // The generation check on EventId: once a slot is released (fired or
  // cancelled) and reissued to a NEW event, the old handle must neither
  // cancel the new occupant nor report success — across arbitrary
  // schedule/fire churn, including chunk recycling.
  Simulator sim;
  // Burn through several full 256-slot chunk cycles so reissued ids come
  // from recycled slots at every chunk position.
  std::vector<EventId> stale;
  for (int round = 0; round < 4; ++round) {
    stale.clear();
    for (int i = 0; i < 300; ++i) {  // > one chunk: forces a second chunk.
      stale.push_back(sim.ScheduleAfter(1, [] {}));
    }
    sim.RunUntilIdle();  // All fire; every slot is released.

    // Reoccupy the slots with live events.
    int fired = 0;
    std::vector<EventId> live;
    for (int i = 0; i < 300; ++i) {
      live.push_back(sim.ScheduleAfter(1, [&fired] { ++fired; }));
    }
    // Stale handles from the PREVIOUS occupancy of the same slots: every
    // cancel must be a generation-check miss, not a hit on the new event.
    for (const EventId id : stale) EXPECT_FALSE(sim.Cancel(id));
    sim.RunUntilIdle();
    EXPECT_EQ(fired, 300);  // No live event was collaterally cancelled.
    // And the live ids are stale now too.
    for (const EventId id : live) EXPECT_FALSE(sim.Cancel(id));
  }
}

TEST(Simulator, RearmChurnReusesSlots) {
  Simulator sim;
  EventId timer = kInvalidEventId;
  for (int i = 0; i < 5000; ++i) {
    sim.Cancel(timer);
    timer = sim.ScheduleAfter(10, [] {});
  }
  EXPECT_EQ(sim.NumPending(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.NumPending(), 0u);
  EXPECT_EQ(sim.ArenaSlots(), 256u);  // One live timer, one chunk, forever.
}

TEST(Simulator, CallbackResourcesReleasedOnFireAndCancel) {
  // Callbacks owning real resources (shared_ptr here; ASan watches the
  // rest) must be destroyed exactly once whether they fire, are cancelled,
  // or are cancelled mid-drain by an earlier same-tick event.
  Simulator sim;
  auto token = std::make_shared<int>(7);
  // Larger than the inline buffer: exercises the heap fallback too.
  struct Big {
    std::shared_ptr<int> p;
    char pad[160];
  };

  sim.Schedule(10, [t = token] { EXPECT_EQ(*t, 7); });
  const EventId cancelled = sim.Schedule(20, [t = token] {});
  sim.Schedule(30, [b = Big{token, {}}] { EXPECT_EQ(*b.p, 7); });
  const EventId big_cancelled =
      sim.Schedule(40, [b = Big{token, {}}] { ADD_FAILURE(); });
  EXPECT_TRUE(sim.Cancel(cancelled));
  EXPECT_TRUE(sim.Cancel(big_cancelled));
  sim.RunUntilIdle();
  EXPECT_EQ(token.use_count(), 1);  // Every capture destroyed.
}

TEST(Simulator, SameTickCancelDuringDrainIsSafe) {
  // An event cancelling a later event of the SAME tick: the victim's
  // callback (and its resources) must be destroyed during the drain, and
  // must not fire.
  Simulator sim;
  auto token = std::make_shared<int>(1);
  std::vector<int> order;
  EventId victim = kInvalidEventId;
  sim.Schedule(50, [&] {
    order.push_back(0);
    EXPECT_TRUE(sim.Cancel(victim));
    EXPECT_EQ(token.use_count(), 1);  // Victim's capture already gone.
  });
  sim.Schedule(50, [&order] { order.push_back(1); });
  victim = sim.Schedule(50, [&order, t = token] { order.push_back(2); });
  sim.Schedule(50, [&order] { order.push_back(3); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(sim.NumPending(), 0u);
}

TEST(Simulator, FiredSlotReuseDoesNotAliasOldId) {
  // A callback rescheduling into the slot it just vacated must get a fresh
  // generation: cancelling the fired id must miss, not kill the new event.
  Simulator sim;
  int fired = 0;
  EventId first = kInvalidEventId;
  first = sim.Schedule(10, [&] { sim.ScheduleAfter(10, [&fired] { ++fired; }); });
  sim.Run(15);
  EXPECT_FALSE(sim.Cancel(first));  // Already fired; must not hit the new event.
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, NumPendingIsExactUnderCancellation) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(sim.ScheduleAfter(i + 1, [] {}));
  EXPECT_EQ(sim.NumPending(), 100u);
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(sim.NumPending(), 50u);  // Immediately, not lazily at pop.
  sim.RunUntilIdle();
  EXPECT_EQ(sim.NumPending(), 0u);
  EXPECT_EQ(sim.NumProcessed(), 50u);
}

// ------------------------------------------------------------ propagation -

TEST(Propagation, PathLossGrowsWithDistance) {
  const PropagationModel model;
  EXPECT_DOUBLE_EQ(model.PathLossDb(1.0), 28.0);
  EXPECT_NEAR(model.PathLossDb(10.0), 28.0 + 22.0, 1e-9);
  EXPECT_NEAR(model.PathLossDb(100.0), 28.0 + 44.0, 1e-9);
  // Near-field clamp.
  EXPECT_DOUBLE_EQ(model.PathLossDb(0.1), 28.0);
}

TEST(Propagation, ReceivedPowerAndDistance) {
  const PropagationModel model;
  const Position a{0.0, 0.0}, b{300.0, 400.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 500.0);
  EXPECT_NEAR(model.ReceivedPower(16.0, a, b),
              16.0 - model.PathLossDb(500.0), 1e-9);
}

TEST(Propagation, UhfRangeExceedsOneKilometer) {
  // The paper expects communication ranges beyond 1 km in UHF; with the
  // default model a 16 dBm transmitter at 1 km is still >10 dB above the
  // 20 MHz noise floor.
  const PropagationModel model;
  const Dbm rx = model.ReceivedPower(16.0, 1000.0);
  EXPECT_GT(rx - NoiseFloorDbm(20.0), 10.0);
}

TEST(Propagation, NoiseFloorScalesWithWidth) {
  EXPECT_DOUBLE_EQ(NoiseFloorDbm(20.0), -101.0);
  EXPECT_NEAR(NoiseFloorDbm(10.0), -104.0, 0.02);
  EXPECT_NEAR(NoiseFloorDbm(5.0), -107.0, 0.03);
}

}  // namespace
}  // namespace whitefi
