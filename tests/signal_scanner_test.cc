// Validates the fast (books-based) scanner against the faithful
// signal-level scanner: on the same scenario both must report the same
// airtime, AP counts, and incumbent flags — the justification for using
// the fast scanner in the large simulation benches.
#include <gtest/gtest.h>

#include "sim/scanner.h"
#include "sim/signal_scanner.h"
#include "sim/traffic.h"
#include "sim/world.h"

namespace whitefi {
namespace {

DeviceConfig At(double x, double y, Channel ch, int ssid, bool is_ap = false) {
  DeviceConfig c;
  c.position = {x, y};
  c.initial_channel = ch;
  c.ssid = ssid;
  c.is_ap = is_ap;
  return c;
}

/// One foreign CBR pair on `channel`; the sender also beacons every 100 ms
/// (so B_c estimation has beacons to count).
void AddForeignPair(World& world, UhfIndex channel, SimTime ipd, int ssid,
                    std::vector<std::unique_ptr<CbrSource>>& sources) {
  const Channel home{channel, ChannelWidth::kW5};
  Device& tx = world.Create<Device>(At(40, 40, home, ssid, /*is_ap=*/true));
  Device& rx = world.Create<Device>(At(60, 40, home, ssid));
  sources.push_back(std::make_unique<CbrSource>(tx, rx.NodeId(), 1000, ipd));
  sources.back()->Start();
  // Beacon loop for the foreign AP.
  struct Beaconer {
    static void Tick(World& w, Device& ap) {
      Frame beacon;
      beacon.type = FrameType::kBeacon;
      beacon.dst = kBroadcastId;
      beacon.bytes = kBeaconBytes;
      ap.mac().EnqueueFront(beacon);
      w.sim().ScheduleAfter(100 * kTicksPerMs,
                            [&w, &ap] { Tick(w, ap); });
    }
  };
  Beaconer::Tick(world, tx);
}

TEST(SignalLevelScanner, AgreesWithBooksScannerOnAirtime) {
  World world;
  std::vector<std::unique_ptr<CbrSource>> sources;
  // Channel 7: ~50% duty; channel 12: ~14% duty; channel 20: idle.
  AddForeignPair(world, 7, 14 * kTicksPerMs, 100, sources);
  AddForeignPair(world, 12, 50 * kTicksPerMs, 101, sources);

  Device& observer =
      world.Create<Device>(At(0, 0, Channel{25, ChannelWidth::kW5}, 1));
  ScannerParams books_params;
  books_params.dwell = 250 * kTicksPerMs;
  books_params.airtime_noise_stddev = 0.0;
  Scanner books(observer, books_params);
  SignalScannerParams signal_params;
  signal_params.dwell = 250 * kTicksPerMs;
  SignalLevelScanner signal(observer, signal_params);
  books.StartSweep();
  signal.StartSweep();
  world.RunFor(20.0);  // Both complete at least two sweeps.
  EXPECT_GE(books.SweepsCompleted(), 2);
  EXPECT_GE(signal.SweepsCompleted(), 2);

  for (UhfIndex c : {7, 12, 20}) {
    const auto i = static_cast<std::size_t>(c);
    EXPECT_NEAR(signal.Observation()[i].airtime, books.Observation()[i].airtime,
                0.12)
        << "channel " << c;
  }
  EXPECT_GT(signal.Observation()[7].airtime, 0.3);
  EXPECT_LT(signal.Observation()[20].airtime, 0.05);
}

TEST(SignalLevelScanner, CountsApsFromBeaconPatterns) {
  World world;
  std::vector<std::unique_ptr<CbrSource>> sources;
  AddForeignPair(world, 9, 40 * kTicksPerMs, 100, sources);
  Device& observer =
      world.Create<Device>(At(0, 0, Channel{25, ChannelWidth::kW5}, 1));
  SignalScannerParams params;
  params.dwell = 500 * kTicksPerMs;  // ~5 beacon intervals per dwell.
  SignalLevelScanner scanner(observer, params);
  scanner.StartSweep();
  world.RunFor(32.0);
  EXPECT_EQ(scanner.Observation()[9].ap_count, 1);
  EXPECT_EQ(scanner.Observation()[20].ap_count, 0);
}

TEST(SignalLevelScanner, ExcludesOwnSsidTraffic) {
  World world;
  const Channel ch{7, ChannelWidth::kW5};
  Device& mine = world.Create<Device>(At(0, 0, ch, /*ssid=*/1, true));
  Device& peer = world.Create<Device>(At(10, 0, ch, /*ssid=*/1));
  SaturatedSource sat(mine, peer.NodeId(), 1000);
  sat.Start();
  SignalScannerParams params;
  params.dwell = 250 * kTicksPerMs;
  SignalLevelScanner scanner(peer, params);
  scanner.StartSweep();
  world.RunFor(16.0);
  EXPECT_LT(scanner.Observation()[7].airtime, 0.1);
}

TEST(SignalLevelScanner, FlagsIncumbents) {
  World world;
  DeviceConfig config = At(0, 0, Channel{25, ChannelWidth::kW5}, 1);
  config.tv_map = SpectrumMap::FromOccupiedIndices({4});
  Device& observer = world.Create<Device>(config);
  world.SetMicSchedule({{11, 0.0, 600.0 * kSecond}});
  SignalScannerParams params;
  params.dwell = 100 * kTicksPerMs;
  SignalLevelScanner scanner(observer, params);
  scanner.StartSweep();
  world.RunFor(6.0);
  EXPECT_TRUE(scanner.Observation()[4].incumbent);
  EXPECT_TRUE(scanner.Observation()[11].incumbent);
  EXPECT_FALSE(scanner.Observation()[12].incumbent);
}

}  // namespace
}  // namespace whitefi
