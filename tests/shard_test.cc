// Tests for the city-scale sharded federation (src/shard): the spatial
// partition and its interference-cutoff tile floor, the cross-shard
// event boundary (canonical order, CS-floor crossing predicate), the
// ghost-energy semantics in Medium, and the engine's central contract —
// byte-identical science at every shard count.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "shard/boundary.h"
#include "shard/city.h"
#include "shard/engine.h"
#include "shard/partition.h"
#include "sim/events.h"
#include "sim/medium.h"
#include "sim/propagation.h"
#include "util/units.h"

namespace whitefi::shard {
namespace {

// ---------------------------------------------------------------------------
// Partition and lookahead.

TEST(PartitionTest, CutoffMatchesPathLossInverse) {
  PropagationParams prop;  // ref 28 dB, exponent 2.2, min distance 1 m.
  const double cutoff = InterferenceCutoffMeters(16.0, -85.0, prop);
  // Path loss at the cutoff brings 16 dBm exactly to the floor.
  const PropagationModel model(prop);
  EXPECT_NEAR(model.ReceivedPower(16.0, cutoff), -85.0, 1e-9);
  // And the closed form: d = 10^((tx - floor - ref) / (10 * exp)).
  EXPECT_NEAR(cutoff, std::pow(10.0, (16.0 + 85.0 - 28.0) / 22.0), 1e-6);
}

TEST(PartitionTest, MinTileEdgeUsesTheLowerCarrierSenseFloor) {
  MediumParams medium;  // same_channel -85 dBm, energy_detect -62 dBm.
  const double edge = MinTileEdgeMeters(medium, 16.0);
  EXPECT_NEAR(edge, InterferenceCutoffMeters(16.0, -85.0, medium.propagation),
              1e-9);
  // The -85 floor is the binding one: it admits energy from farther away.
  EXPECT_GT(edge, InterferenceCutoffMeters(16.0, -62.0, medium.propagation));
}

TEST(PartitionTest, LookaheadCoversAMaxFrameAtTheNarrowestWidth) {
  const SimTime bound = PhysicalLookaheadBound();
  EXPECT_GT(bound, 0);
  // 1500 bytes at kW5 — the longest airtime any single frame can take.
  EXPECT_GE(static_cast<double>(bound),
            PhyTiming::ForWidth(ChannelWidth::kW5).FrameDuration(1500));
}

TEST(PartitionTest, TilesCoverTheExtentAndClampOutOfRangePositions) {
  const Partition part(10000.0, 6000.0, 2100.0);
  EXPECT_EQ(part.cols(), 4);  // floor(10000 / 2100)
  EXPECT_EQ(part.rows(), 2);
  EXPECT_EQ(part.NumTiles(), 8);
  EXPECT_GE(part.tile_width_m(), 2100.0);
  EXPECT_GE(part.tile_height_m(), 2100.0);
  EXPECT_EQ(part.TileOf({0.0, 0.0}), 0);
  EXPECT_EQ(part.TileOf({9999.0, 5999.0}), part.NumTiles() - 1);
  // Clamped, never out of range.
  EXPECT_EQ(part.TileOf({-50.0, -50.0}), 0);
  EXPECT_EQ(part.TileOf({20000.0, 20000.0}), part.NumTiles() - 1);
  for (int t = 0; t < part.NumTiles(); ++t) {
    const TileRect r = part.Rect(t);
    EXPECT_LT(r.x0, r.x1);
    EXPECT_LT(r.y0, r.y1);
    EXPECT_EQ(part.TileOf({(r.x0 + r.x1) / 2.0, (r.y0 + r.y1) / 2.0}), t);
  }
}

TEST(PartitionTest, NeighborsAreThe8NeighborhoodSorted) {
  const Partition part(9000.0, 9000.0, 3000.0);  // 3 x 3 tiles.
  EXPECT_EQ(part.Neighbors(4), (std::vector<int>{0, 1, 2, 3, 5, 6, 7, 8}));
  EXPECT_EQ(part.Neighbors(0), (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(part.Neighbors(8), (std::vector<int>{4, 5, 7}));
}

TEST(PartitionTest, DistanceToRectIsZeroInsideAndClampedOutside) {
  const TileRect rect{100.0, 100.0, 200.0, 200.0};
  EXPECT_EQ(DistanceToRect({150.0, 150.0}, rect), 0.0);
  EXPECT_NEAR(DistanceToRect({50.0, 150.0}, rect), 50.0, 1e-12);
  EXPECT_NEAR(DistanceToRect({250.0, 260.0}, rect),
              std::sqrt(50.0 * 50.0 + 60.0 * 60.0), 1e-12);
}

// ---------------------------------------------------------------------------
// Boundary predicate and canonical order.

TEST(BoundaryTest, EnergyExactlyAtTheFloorCrosses) {
  MediumParams medium;
  const PropagationModel prop(medium.propagation);
  const double cutoff =
      InterferenceCutoffMeters(16.0, medium.same_channel_cs_dbm,
                               medium.propagation);
  // A destination rect whose nearest edge sits exactly at the cutoff:
  // received power == the floor, and the medium's carrier sense uses >=,
  // so the boundary must ship it.
  const TileRect at{cutoff, -100.0, cutoff + 1000.0, 100.0};
  EXPECT_TRUE(EnergyCrossesBoundary(prop, 16.0, {0.0, 0.0}, at,
                                    medium.same_channel_cs_dbm));
  // One meter farther: below the floor, never shipped.
  const TileRect beyond{cutoff + 1.0, -100.0, cutoff + 1000.0, 100.0};
  EXPECT_FALSE(EnergyCrossesBoundary(prop, 16.0, {0.0, 0.0}, beyond,
                                     medium.same_channel_cs_dbm));
}

TEST(BoundaryTest, CanonicalOrderIsTimeTileNodeSeq) {
  std::vector<CrossShardEvent> events;
  auto make = [](SimTime t, int tile, int node, std::uint64_t seq) {
    CrossShardEvent e;
    e.time = t;
    e.src_tile = tile;
    e.node = node;
    e.seq = seq;
    return e;
  };
  events.push_back(make(200, 0, 5, 0));
  events.push_back(make(100, 1, 9, 3));
  events.push_back(make(100, 0, 9, 2));
  events.push_back(make(100, 0, 3, 7));
  CanonicalSort(events);
  EXPECT_EQ(events[0].node, 3);   // (100, 0, 3, 7)
  EXPECT_EQ(events[1].seq, 2u);   // (100, 0, 9, 2)
  EXPECT_EQ(events[2].src_tile, 1);
  EXPECT_EQ(events[3].time, 200);
}

TEST(BoundaryTest, OutboxStampsTileAndMonotonicSeq) {
  ShardOutbox outbox(7);
  CrossShardEvent e;
  e.kind = CrossShardEvent::Kind::kRemoteEnergy;
  outbox.Push(e);
  outbox.Push(e);
  const std::vector<CrossShardEvent> taken = outbox.Take();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].src_tile, 7);
  EXPECT_EQ(taken[0].seq, 0u);
  EXPECT_EQ(taken[1].seq, 1u);
  EXPECT_TRUE(outbox.Take().empty());
  // The stream keeps counting across Take calls — seqs never repeat.
  outbox.Push(e);
  EXPECT_EQ(outbox.Take()[0].seq, 2u);
}

// ---------------------------------------------------------------------------
// Ghost energy in the medium.

class GhostRadio : public RadioPort {
 public:
  GhostRadio(int id, Position pos, Channel channel, bool is_ap = false)
      : id_(id), pos_(pos), channel_(channel), is_ap_(is_ap) {}
  int NodeId() const override { return id_; }
  Position Location() const override { return pos_; }
  const Channel& TunedChannel() const override { return channel_; }
  bool RxEnabled() const override { return true; }
  bool IsAp() const override { return is_ap_; }
  void DeliverFrame(const Frame& frame, Dbm) override {
    delivered.push_back(frame);
  }
  void MediumChanged() override {}
  std::vector<Frame> delivered;

 private:
  int id_;
  Position pos_;
  Channel channel_;
  bool is_ap_;
};

TEST(GhostEnergyTest, SensedBookedNeverDeliveredNeverReExported) {
  Simulator sim;
  Medium medium(sim, MediumParams{});
  const Channel ch{10, ChannelWidth::kW5};
  GhostRadio rx(1, {0.0, 0.0}, ch);
  medium.Register(&rx);
  int energy_taps = 0;
  medium.AddEnergyTap([&](const Medium::EnergyTapInfo&) { ++energy_taps; });
  int frame_taps = 0;
  medium.AddFrameTap(
      [&](const Channel&, const Frame&, const RadioPort&) { ++frame_taps; });

  Frame f;
  f.type = FrameType::kData;
  f.src = 900001;
  f.dst = 900002;
  f.bytes = 1000;
  medium.InjectForeignEnergy(900001, /*is_ap=*/true, {50.0, 0.0}, ch, f,
                             16.0, 400);
  // Carrier present while the ghost is on the air...
  EXPECT_TRUE(medium.CarrierSensed(rx, ch));
  sim.Run(1000);
  // ...never delivered (the frame terminates in its owning shard),
  EXPECT_TRUE(rx.delivered.empty());
  // ...but visible to frame taps (scanners/chirp watches measure it),
  EXPECT_EQ(frame_taps, 1);
  // ...and the energy tap stays silent: a ghost must never be
  // re-exported, or two shards would echo energy forever.
  EXPECT_EQ(energy_taps, 0);
  // Booked airtime under the foreign node id, and ApIds includes the
  // foreign AP so B_c estimation counts it.
  const ChannelBooks& books = medium.ChannelBooksAt(10);
  ASSERT_TRUE(books.per_node.count(900001));
  EXPECT_NEAR(books.per_node.at(900001), 400.0, 1e-9);
  const std::vector<int> aps = medium.ApIds();
  EXPECT_NE(std::find(aps.begin(), aps.end(), 900001), aps.end());
}

TEST(GhostEnergyTest, LocalEnergyTapReportsExactPowerAndInterval) {
  Simulator sim;
  Medium medium(sim, MediumParams{});
  const Channel ch{3, ChannelWidth::kW5};
  GhostRadio tx(1, {10.0, 20.0}, ch, /*is_ap=*/true);
  medium.Register(&tx);
  std::vector<std::tuple<Dbm, SimTime, SimTime, int>> taps;
  medium.AddEnergyTap([&](const Medium::EnergyTapInfo& info) {
    taps.emplace_back(info.power, info.start, info.end, info.tx.NodeId());
  });
  sim.Schedule(100, [&] {
    Frame f;
    f.type = FrameType::kData;
    f.src = 1;
    f.bytes = 500;
    medium.Transmit(&tx, ch, f, 14.5, 250, [] {});
  });
  sim.Run(1000);
  ASSERT_EQ(taps.size(), 1u);
  EXPECT_EQ(std::get<0>(taps[0]), 14.5);
  EXPECT_EQ(std::get<1>(taps[0]), 100);
  EXPECT_EQ(std::get<2>(taps[0]), 350);
  EXPECT_EQ(std::get<3>(taps[0]), 1);
}

TEST(GhostEnergyTest, PerChannelBooksMatchTheFullSnapshotBitForBit) {
  Simulator sim;
  Medium medium(sim, MediumParams{});
  const Channel ch{5, ChannelWidth::kW10};  // Spans UHF indices 5 and 6.
  GhostRadio tx(1, {0.0, 0.0}, ch);
  medium.Register(&tx);
  Frame f;
  f.type = FrameType::kData;
  f.src = 1;
  f.bytes = 700;
  medium.Transmit(&tx, ch, f, 16.0, 321, [] {});
  medium.InjectForeignEnergy(777, false, {30.0, 0.0},
                             Channel{6, ChannelWidth::kW5}, f, 12.0, 100);
  sim.Run(500);
  const AirtimeBooks all = medium.SnapshotBooks();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    const ChannelBooks& one = medium.ChannelBooksAt(c);
    const ChannelBooks& full = all[static_cast<std::size_t>(c)];
    EXPECT_EQ(one.busy, full.busy) << "channel " << c;
    EXPECT_EQ(one.per_node, full.per_node) << "channel " << c;
  }
}

// ---------------------------------------------------------------------------
// City generation.

TEST(CityTest, LayoutIsDeterministicAndTileLocal) {
  CityParams params;
  params.num_aps = 30;
  params.width_m = 9000.0;
  params.height_m = 9000.0;
  params.num_mics = 3;
  params.num_roams = 4;
  const MediumParams medium;
  const CityLayout a = GenerateCity(params, medium);
  const CityLayout b = GenerateCity(params, medium);
  ASSERT_EQ(a.cells.size(), 30u);
  ASSERT_EQ(b.cells.size(), 30u);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].ap.x, b.cells[i].ap.x);
    EXPECT_EQ(a.cells[i].ap.y, b.cells[i].ap.y);
    EXPECT_EQ(a.cells[i].main, b.cells[i].main);
    // Tile-locality: every client lives in its AP's tile, so the only
    // cross-tile traffic is undecodable ghost energy.
    for (const Position& c : a.cells[i].clients) {
      EXPECT_EQ(a.partition.TileOf(c), a.cells[i].tile);
    }
    EXPECT_EQ(a.partition.TileOf(a.cells[i].ap), a.cells[i].tile);
  }
  ASSERT_EQ(a.mics.size(), 3u);
  ASSERT_EQ(a.mic_tile.size(), 3u);
  ASSERT_EQ(a.roams.size(), 4u);
  for (const RoamPlan& r : a.roams) {
    EXPECT_NE(r.from_cell, r.to_cell);
    EXPECT_EQ(a.partition.TileOf(r.arrive), a.cells[r.to_cell].tile);
  }
}

TEST(CityTest, RejectsTileEdgeBelowTheCutoffAndRoamsWithoutCbr) {
  CityParams params;
  params.tile_m = 500.0;  // Far below the ~2 km cutoff at 16 dBm.
  // The floor needs the medium's propagation model, so the rejection
  // happens at generation time.
  EXPECT_THROW(GenerateCity(params, MediumParams{}), std::invalid_argument);
  CityParams sat;
  sat.traffic = "saturated";
  sat.num_roams = 1;
  EXPECT_THROW(ValidateCityParams(sat), std::invalid_argument);
  CityParams bad;
  bad.traffic = "bursty";
  EXPECT_THROW(ValidateCityParams(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The engine: shard-count invariance.

CityParams SmallCity() {
  CityParams params;
  params.seed = 11;
  params.width_m = 9000.0;
  params.height_m = 9000.0;  // ~4x4 tiles at the default cutoff.
  params.num_aps = 24;
  params.clients_per_ap = 2;
  params.num_mics = 2;
  params.mic_start_s = 0.5;
  params.mic_period_s = 0.5;
  params.mic_duration_s = 0.5;
  params.num_roams = 2;
  params.roam_start_s = 0.5;
  params.roam_period_s = 0.5;
  return params;
}

TEST(ShardEngineTest, SummariesAndBooksAreInvariantAcrossShardCounts) {
  const CityParams city = SmallCity();
  ShardEngineConfig config;
  config.trace = true;
  std::vector<std::unique_ptr<ShardEngine>> engines;
  for (int shards : {1, 2, 4}) {
    config.shards = shards;
    engines.push_back(std::make_unique<ShardEngine>(city, config));
    engines.back()->Run(1.5);
  }
  ShardEngine& ref = *engines[0];
  EXPECT_GT(ref.EventsProcessed(), 0u);
  EXPECT_GT(ref.ghosts_injected(), 0u);
  EXPECT_EQ(ref.roams_applied(), 2u);
  for (std::size_t i = 1; i < engines.size(); ++i) {
    ShardEngine& other = *engines[i];
    // The whole deterministic summary, byte for byte.
    EXPECT_EQ(ref.SummaryText(), other.SummaryText()) << "shards differ";
    // Merged metrics: every counter, exact.
    EXPECT_EQ(ref.MergedCounters(), other.MergedCounters());
    // Exact trace record counts (TotalSeen is cap-independent).
    EXPECT_EQ(ref.TraceTotal(), other.TraceTotal());
    EXPECT_EQ(ref.EventsProcessed(), other.EventsProcessed());
    EXPECT_EQ(ref.messages_shipped(), other.messages_shipped());
    // Airtime books bit-equal in every tile world: the union busy time
    // and every per-node entry, ghosts included.
    ASSERT_EQ(ref.NumTiles(), other.NumTiles());
    for (int t = 0; t < ref.NumTiles(); ++t) {
      const AirtimeBooks a = ref.tile_world(t).medium().SnapshotBooks();
      const AirtimeBooks b = other.tile_world(t).medium().SnapshotBooks();
      for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        EXPECT_EQ(a[ci].busy, b[ci].busy) << "tile " << t << " ch " << c;
        EXPECT_EQ(a[ci].per_node, b[ci].per_node)
            << "tile " << t << " ch " << c;
      }
    }
  }
}

TEST(ShardEngineTest, RoamsApplyAtTheFollowingHorizonTick) {
  CityParams city = SmallCity();
  city.num_mics = 0;
  city.num_roams = 1;
  city.roam_start_s = 0.25;
  ShardEngineConfig config;
  ShardEngine engine(city, config);
  const RoamPlan& plan = engine.layout().roams[0];
  // Run to just before the roam falls due: nothing applied yet.
  const double before_s =
      static_cast<double>(plan.at - 1) / static_cast<double>(kTicksPerSec);
  engine.Run(before_s);
  EXPECT_EQ(engine.roams_applied(), 0u);
  // One more horizon round covers plan.at; the handoff lands at that
  // barrier, never mid-round.
  engine.Run(static_cast<double>(engine.horizon()) /
             static_cast<double>(kTicksPerSec));
  EXPECT_EQ(engine.roams_applied(), 1u);
  EXPECT_GE(engine.Now(), plan.at);
}

TEST(ShardEngineTest, AuditedRunHoldsEveryInvariant) {
  CityParams city = SmallCity();
  ShardEngineConfig config;
  config.shards = 2;
  config.audit = true;
  ShardEngine engine(city, config);
  engine.Run(1.0);
  EXPECT_TRUE(engine.audit_ok()) << engine.audit_violations()
                                 << " violation(s)";
}

TEST(ShardEngineTest, ResetAppBytesCutsTheWarmup) {
  CityParams city = SmallCity();
  city.num_mics = 0;
  city.num_roams = 0;
  ShardEngineConfig config;
  ShardEngine engine(city, config);
  engine.Run(0.5);
  EXPECT_GT(engine.AppBytesTotal(), 0u);
  engine.ResetAppBytes();
  EXPECT_EQ(engine.AppBytesTotal(), 0u);
  engine.Run(0.5);
  EXPECT_GT(engine.AppBytesTotal(), 0u);
}

TEST(ShardEngineTest, RejectsNonPositiveShardCount) {
  ShardEngineConfig config;
  config.shards = 0;
  EXPECT_THROW(ShardEngine(SmallCity(), config), std::invalid_argument);
}

}  // namespace
}  // namespace whitefi::shard
