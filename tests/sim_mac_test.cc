// Tests for the CSMA/CA MAC, traffic sources, scanner, and world plumbing.
#include <gtest/gtest.h>

#include "sim/scanner.h"
#include "sim/traffic.h"
#include "sim/world.h"

namespace whitefi {
namespace {

DeviceConfig At(double x, double y, Channel ch, int ssid = 1,
                bool is_ap = false) {
  DeviceConfig c;
  c.position = {x, y};
  c.initial_channel = ch;
  c.ssid = ssid;
  c.is_ap = is_ap;
  return c;
}

Frame Data(int dst, int payload = 1000) {
  Frame f;
  f.type = FrameType::kData;
  f.dst = dst;
  f.bytes = payload + kMacOverheadBytes;
  return f;
}

// ------------------------------------------------------------------ mac ---

TEST(Mac, UnicastDeliveredAndAcked) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  int received = 0;
  b.AddReceiveHook([&](const Frame& f) {
    if (f.type == FrameType::kData) ++received;
  });
  int completed_ok = 0;
  a.AddSendCompleteHook([&](const Frame&, bool ok) { completed_ok += ok; });
  a.mac().Enqueue(Data(b.NodeId()));
  world.RunFor(0.1);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(completed_ok, 1);
  EXPECT_EQ(a.mac().Drops(), 0u);
  EXPECT_EQ(world.AppBytes(b.NodeId()), 1000u);
}

TEST(Mac, BroadcastDeliveredWithoutAck) {
  World world;
  const Channel ch{5, ChannelWidth::kW10};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  Device& c = world.Create<Device>(At(0, 50, ch));
  int deliveries = 0;
  const auto hook = [&](const Frame& f) {
    if (f.type == FrameType::kBeacon) ++deliveries;
  };
  b.AddReceiveHook(hook);
  c.AddReceiveHook(hook);
  Frame beacon;
  beacon.type = FrameType::kBeacon;
  beacon.dst = kBroadcastId;
  beacon.bytes = kBeaconBytes;
  a.mac().Enqueue(beacon);
  world.RunFor(0.1);
  EXPECT_EQ(deliveries, 2);
  // Exactly two transmissions: the beacon and its CTS-to-self (the SIFT
  // recognition pattern the paper requires) — and no ACKs.
  EXPECT_EQ(world.medium().NumTransmissions(), 2u);
}

TEST(Mac, RetriesUntilDropWhenReceiverGone) {
  World world;
  const Channel ch{5, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  // Receiver tunes away: data frames go unanswered.
  b.SwitchChannel(Channel{20, ChannelWidth::kW5});
  bool failed = false;
  a.AddSendCompleteHook([&](const Frame&, bool ok) { failed = !ok; });
  a.mac().Enqueue(Data(b.NodeId()));
  world.RunFor(2.0);
  EXPECT_TRUE(failed);
  EXPECT_EQ(a.mac().Drops(), 1u);
  // 1 + retry_limit attempts were transmitted.
  EXPECT_EQ(world.medium().NumTransmissions(),
            static_cast<std::uint64_t>(1 + kMaxTxAttempts));
}

TEST(Mac, QueueOverflowRejectsFrame) {
  World world;
  const Channel ch{5, ChannelWidth::kW5};
  DeviceConfig config = At(0, 0, ch);
  config.mac.max_queue = 2;
  Device& a = world.Create<Device>(config);
  EXPECT_TRUE(a.mac().Enqueue(Data(99)));
  EXPECT_TRUE(a.mac().Enqueue(Data(99)));
  EXPECT_FALSE(a.mac().Enqueue(Data(99)));
  EXPECT_EQ(a.mac().QueueDepth(), 2u);
}

TEST(Mac, ResetClearsQueueAndState) {
  World world;
  const Channel ch{5, ChannelWidth::kW5};
  Device& a = world.Create<Device>(At(0, 0, ch));
  a.mac().Enqueue(Data(99));
  a.mac().Enqueue(Data(99));
  a.mac().Reset();
  EXPECT_EQ(a.mac().QueueDepth(), 0u);
  EXPECT_TRUE(a.mac().Idle());
  world.RunFor(0.1);
  EXPECT_EQ(world.medium().NumTransmissions(), 0u);
}

TEST(Mac, TwoSaturatedSendersShareTheChannel) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(30, 0, ch));
  Device& sink = world.Create<Device>(At(15, 15, ch));
  SaturatedSource sa(a, sink.NodeId(), 1000);
  SaturatedSource sb(b, sink.NodeId(), 1000);
  sa.Start();
  sb.Start();
  world.RunFor(3.0);
  const auto bytes = world.AppBytes(sink.NodeId());
  EXPECT_GT(bytes, 500000u);  // The channel is actually used...
  // ...and both senders got a non-trivial share (fairness sanity).
  EXPECT_GT(sa.Generated(), 100u);
  EXPECT_GT(sb.Generated(), 100u);
  const double ratio = static_cast<double>(sa.Generated()) /
                       static_cast<double>(sb.Generated());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Mac, DuplicateDataDeliveredOnce) {
  // Force a lost ACK scenario indirectly: we just check the duplicate
  // filter logic by replaying the same sequence number.
  World world;
  const Channel ch{10, ChannelWidth::kW5};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  int received = 0;
  b.AddReceiveHook([&](const Frame& f) {
    if (f.type == FrameType::kData) ++received;
  });
  Frame f = Data(b.NodeId());
  f.src = a.NodeId();
  f.seq = 42;
  b.DeliverFrame(f, -40.0);
  b.DeliverFrame(f, -40.0);  // Retransmission of the same seq.
  world.RunFor(0.1);
  EXPECT_EQ(received, 1);
}

// ---------------------------------------------------------------- traffic -

TEST(Traffic, CbrGeneratesAtConfiguredRate) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  CbrSource cbr(a, b.NodeId(), 500, 30 * kTicksPerMs);
  cbr.Start();
  world.RunFor(3.0);
  EXPECT_NEAR(static_cast<double>(cbr.Generated()), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(world.AppBytes(b.NodeId())), 100.0 * 500.0,
              2000.0);
}

TEST(Traffic, CbrPauseResume) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  CbrSource cbr(a, b.NodeId(), 500, 10 * kTicksPerMs);
  cbr.Start();
  world.RunFor(1.0);
  const auto after_active = cbr.Generated();
  EXPECT_GT(after_active, 90u);
  cbr.SetActive(false);
  world.RunFor(1.0);
  EXPECT_EQ(cbr.Generated(), after_active);  // Silent while paused.
  cbr.SetActive(true);
  world.RunFor(1.0);
  EXPECT_GT(cbr.Generated(), after_active + 90);
}

TEST(Traffic, SaturatedSourceKeepsMacBusy) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  SaturatedSource sat(a, b.NodeId(), 1000);
  sat.Start();
  world.RunFor(2.0);
  // 20 MHz / 6 Mbps with ~1 kB frames: expect on the order of 4-6 Mbps of
  // goodput; assert a generous lower bound and an upper physical bound.
  const double mbps =
      8.0 * static_cast<double>(world.AppBytes(b.NodeId())) / 2.0 / 1e6;
  EXPECT_GT(mbps, 3.0);
  EXPECT_LT(mbps, 6.0);
}

TEST(Traffic, SaturatedRoundRobinAcrossDestinations) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& ap = world.Create<Device>(At(0, 0, ch));
  Device& c1 = world.Create<Device>(At(50, 0, ch));
  Device& c2 = world.Create<Device>(At(0, 50, ch));
  SaturatedSource sat(ap, std::vector<int>{c1.NodeId(), c2.NodeId()}, 1000);
  sat.Start();
  world.RunFor(2.0);
  const auto b1 = world.AppBytes(c1.NodeId());
  const auto b2 = world.AppBytes(c2.NodeId());
  EXPECT_GT(b1, 100000u);
  EXPECT_GT(b2, 100000u);
  EXPECT_NEAR(static_cast<double>(b1) / static_cast<double>(b2), 1.0, 0.1);
}

TEST(Traffic, MarkovOnOffApproachesStationaryDuty) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  Device& a = world.Create<Device>(At(0, 0, ch));
  Device& b = world.Create<Device>(At(50, 0, ch));
  MarkovOnOffSource::Params params;
  params.mean_active = 2 * kTicksPerSec;
  params.mean_passive = 6 * kTicksPerSec;
  MarkovOnOffSource source(a, b.NodeId(), 500, 10 * kTicksPerMs, params);
  EXPECT_NEAR(source.StationaryActive(), 0.25, 1e-9);
  source.Start();
  world.RunFor(120.0);
  // 120 s at 100 pkt/s when active, 25% duty => ~3000 packets (loose band).
  const double duty =
      static_cast<double>(source.cbr().Generated()) / (120.0 * 100.0);
  EXPECT_NEAR(duty, 0.25, 0.10);
}

// ---------------------------------------------------------------- world ---

TEST(World, DeviceRegistryAndSsids) {
  World world;
  const Channel ch{5, ChannelWidth::kW5};
  Device& a = world.Create<Device>(At(0, 0, ch, /*ssid=*/1));
  Device& b = world.Create<Device>(At(1, 0, ch, /*ssid=*/1));
  Device& c = world.Create<Device>(At(2, 0, ch, /*ssid=*/2));
  EXPECT_EQ(world.FindDevice(a.NodeId()), &a);
  EXPECT_EQ(world.FindDevice(9999), nullptr);
  EXPECT_EQ(world.NodesInSsid(1),
            (std::vector<int>{a.NodeId(), b.NodeId()}));
  EXPECT_EQ(world.NodesInSsid(2), (std::vector<int>{c.NodeId()}));
}

TEST(World, MicScheduleTransitions) {
  World world;
  std::vector<MicActivation> mics{{7, 1.0 * kSecond, 2.0 * kSecond}};
  world.SetMicSchedule(mics);
  EXPECT_FALSE(world.MicActiveNow(7));
  world.RunFor(1.5);
  EXPECT_TRUE(world.MicActiveNow(7));
  world.RunFor(1.0);
  EXPECT_FALSE(world.MicActiveNow(7));
}

TEST(World, MicFastPathNotifiesAffectedDevicesOnly) {
  World world;
  Device& on_channel =
      world.Create<Device>(At(0, 0, Channel{7, ChannelWidth::kW5}));
  Device& wide = world.Create<Device>(At(1, 0, Channel{8, ChannelWidth::kW10}));
  Device& elsewhere =
      world.Create<Device>(At(2, 0, Channel{20, ChannelWidth::kW5}));
  world.SetMicSchedule({{7, 0.5 * kSecond, 10.0 * kSecond}});
  world.RunFor(1.0);
  EXPECT_TRUE(on_channel.ObservedMap().Occupied(7));
  EXPECT_TRUE(wide.ObservedMap().Occupied(7));  // Spans 7..9.
  EXPECT_FALSE(elsewhere.ObservedMap().Occupied(7));
}

TEST(World, AppByteAccountingAndReset) {
  World world;
  world.RecordAppBytes(3, 100);
  world.RecordAppBytes(3, 50);
  world.RecordAppBytes(4, 10);
  world.RecordAppBytes(4, -5);  // Ignored.
  EXPECT_EQ(world.AppBytes(3), 150u);
  EXPECT_EQ(world.AppBytes(4), 10u);
  world.ResetAppBytes();
  EXPECT_EQ(world.AppBytes(3), 0u);
}

TEST(World, ObservedMapCombinesTvAndMics) {
  World world;
  DeviceConfig config = At(0, 0, Channel{3, ChannelWidth::kW5});
  config.tv_map = SpectrumMap::FromOccupiedIndices({1});
  Device& d = world.Create<Device>(config);
  d.NoteMicObservation(5, true);
  EXPECT_TRUE(d.ObservedMap().Occupied(1));
  EXPECT_TRUE(d.ObservedMap().Occupied(5));
  EXPECT_EQ(d.ObservedMap().NumOccupied(), 2);
  d.NoteMicObservation(5, false);
  EXPECT_EQ(d.ObservedMap().NumOccupied(), 1);
}

// -------------------------------------------------------------- scanner ---

TEST(Scanner, MeasuresAirtimeOfForeignTraffic) {
  World world;
  const Channel busy_ch{7, ChannelWidth::kW5};
  // Foreign pair offering ~50% airtime on channel 7: 1000 B at 1.2 Mbps
  // (5 MHz) is ~7 ms air time per exchange; send every 14 ms.
  Device& ftx = world.Create<Device>(At(0, 0, busy_ch, /*ssid=*/9, true));
  Device& frx = world.Create<Device>(At(10, 0, busy_ch, /*ssid=*/9));
  CbrSource cbr(ftx, frx.NodeId(), 1000, 14 * kTicksPerMs);
  cbr.Start();

  DeviceConfig observer_config = At(5, 5, Channel{20, ChannelWidth::kW5},
                                    /*ssid=*/1);
  Device& observer = world.Create<Device>(observer_config);
  ScannerParams params;
  params.dwell = 100 * kTicksPerMs;
  params.airtime_noise_stddev = 0.0;
  Scanner scanner(observer, params);
  scanner.StartSweep();
  world.RunFor(7.0);  // Two+ full sweeps of 30 channels.
  EXPECT_GE(scanner.SweepsCompleted(), 2);
  const auto& obs = scanner.Observation();
  EXPECT_GT(obs[7].airtime, 0.25);
  EXPECT_LT(obs[7].airtime, 0.75);
  EXPECT_EQ(obs[7].ap_count, 1);  // One foreign AP active there.
  EXPECT_LT(obs[20].airtime, 0.05);
  EXPECT_EQ(obs[20].ap_count, 0);
}

TEST(Scanner, OwnSsidTrafficExcludedFromAirtime) {
  World world;
  const Channel ch{7, ChannelWidth::kW5};
  Device& mine = world.Create<Device>(At(0, 0, ch, /*ssid=*/1, true));
  Device& peer = world.Create<Device>(At(10, 0, ch, /*ssid=*/1));
  SaturatedSource sat(mine, peer.NodeId(), 1000);
  sat.Start();
  ScannerParams params;
  params.dwell = 100 * kTicksPerMs;
  params.airtime_noise_stddev = 0.0;
  Scanner scanner(peer, params);
  scanner.StartSweep();
  world.RunFor(7.0);
  // The channel is saturated, but it is all our own SSID's traffic.
  EXPECT_LT(scanner.Observation()[7].airtime, 0.1);
  EXPECT_EQ(scanner.Observation()[7].ap_count, 0);
}

TEST(Scanner, FlagsIncumbentsFromTvMapAndMics) {
  World world;
  DeviceConfig config = At(0, 0, Channel{20, ChannelWidth::kW5});
  config.tv_map = SpectrumMap::FromOccupiedIndices({2});
  Device& d = world.Create<Device>(config);
  ScannerParams params;
  params.dwell = 50 * kTicksPerMs;
  Scanner scanner(d, params);
  world.SetMicSchedule({{9, 0.0, 60.0 * kSecond}});
  scanner.StartSweep();
  world.RunFor(3.0);
  EXPECT_TRUE(scanner.Observation()[2].incumbent);
  EXPECT_TRUE(scanner.Observation()[9].incumbent);
  EXPECT_FALSE(scanner.Observation()[10].incumbent);
  EXPECT_TRUE(d.ObservedMap().Occupied(9));
}

TEST(Scanner, ChirpWatchHearsMatchingSsidOnly) {
  World world;
  const Channel backup{12, ChannelWidth::kW5};
  Device& chirper = world.Create<Device>(At(0, 0, backup, /*ssid=*/1));
  Device& ap = world.Create<Device>(At(10, 0, Channel{5, ChannelWidth::kW20},
                                       /*ssid=*/1, true));
  ScannerParams params;
  params.chirp_scan_interval = 500 * kTicksPerMs;
  params.chirp_scan_dwell = 400 * kTicksPerMs;
  Scanner scanner(ap, params);
  int heard = 0;
  scanner.StartChirpWatch(backup, /*ssid=*/1,
                          [&](const ChirpInfo&, const Channel& on) {
                            EXPECT_EQ(on, backup);
                            ++heard;
                          });
  // Chirp every 100 ms with ssid 1 and ssid 2.
  for (int i = 1; i <= 20; ++i) {
    world.sim().Schedule(i * 100 * kTicksPerMs, [&chirper, i] {
      Frame chirp;
      chirp.type = FrameType::kChirp;
      chirp.dst = kBroadcastId;
      chirp.bytes = 60;
      chirp.payload = ChirpInfo{SpectrumMap{}, EmptyBandObservation(),
                                i % 2 == 0 ? 1 : 2, chirper.NodeId()};
      chirper.mac().Enqueue(chirp);
    });
  }
  world.RunFor(2.5);
  EXPECT_GT(heard, 0);
  EXPECT_LE(heard, 10);  // Never hears the foreign-SSID chirps.
}

}  // namespace
}  // namespace whitefi
