// Tests for L-SIFT / J-SIFT / baseline AP discovery (paper 4.2.2).
#include <gtest/gtest.h>

#include "core/ap.h"
#include "core/discovery.h"
#include "core/sim_discovery.h"
#include "util/stats.h"

namespace whitefi {
namespace {

// Every algorithm must find the AP for every one of the 84 channels when
// the whole band is free.
class DiscoverEveryChannel : public ::testing::TestWithParam<Channel> {};

TEST_P(DiscoverEveryChannel, AllThreeAlgorithmsFindTheAp) {
  const Channel ap = GetParam();
  const SpectrumMap map;  // All free.
  AnalyticScanEnvironment env(ap);

  const auto l = LSiftDiscover(env, map);
  ASSERT_TRUE(l.found) << ap.ToString();
  EXPECT_EQ(l.channel, ap);

  const auto j = JSiftDiscover(env, map);
  ASSERT_TRUE(j.found) << ap.ToString();
  EXPECT_EQ(j.channel, ap);

  const auto b = BaselineDiscover(env, map);
  ASSERT_TRUE(b.found) << ap.ToString();
  EXPECT_EQ(b.channel, ap);
}

INSTANTIATE_TEST_SUITE_P(All84, DiscoverEveryChannel,
                         ::testing::ValuesIn(AllChannels()));

TEST(Discovery, CostAccountingIsConsistent) {
  const Channel ap{15, ChannelWidth::kW20};
  AnalyticScanEnvironment env(ap);
  const SpectrumMap map;
  const DiscoveryParams params;
  const auto l = LSiftDiscover(env, map, params);
  EXPECT_DOUBLE_EQ(l.elapsed, l.sift_scans * params.sift_scan_time +
                                  l.beacon_listens * params.beacon_listen_time);
  EXPECT_EQ(l.beacon_listens, 0);  // L-SIFT knows the center directly.
  const auto j = JSiftDiscover(env, map, params);
  EXPECT_DOUBLE_EQ(j.elapsed, j.sift_scans * params.sift_scan_time +
                                  j.beacon_listens * params.beacon_listen_time);
  const auto b = BaselineDiscover(env, map, params);
  EXPECT_EQ(b.sift_scans, 0);
  EXPECT_GT(b.beacon_listens, 0);
}

TEST(Discovery, SingleFreeChannelAllAlgorithmsEqual) {
  // Paper Figure 8: "when there is only one available UHF channel, the
  // time taken by all the algorithms is the same".
  SpectrumMap map;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    if (c != 13) map.SetOccupied(c);
  }
  const Channel ap{13, ChannelWidth::kW5};
  AnalyticScanEnvironment env(ap);
  const DiscoveryParams params;
  const auto l = LSiftDiscover(env, map, params);
  const auto j = JSiftDiscover(env, map, params);
  const auto b = BaselineDiscover(env, map, params);
  EXPECT_TRUE(l.found && j.found && b.found);
  EXPECT_DOUBLE_EQ(l.elapsed, params.sift_scan_time);
  EXPECT_DOUBLE_EQ(j.elapsed, params.sift_scan_time);
  EXPECT_DOUBLE_EQ(b.elapsed, params.beacon_listen_time);
}

TEST(Discovery, ClientSkipsOccupiedChannels) {
  // Channels outside the free fragment are never scanned.
  SpectrumMap map;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    if (c < 10 || c > 19) map.SetOccupied(c);
  }
  const Channel ap{12, ChannelWidth::kW5};
  AnalyticScanEnvironment env(ap);
  const auto l = LSiftDiscover(env, map);
  EXPECT_TRUE(l.found);
  EXPECT_LE(l.sift_scans, 3);  // Channels 10, 11, 12.
  const auto b = BaselineDiscover(env, map);
  EXPECT_TRUE(b.found);
  // Only candidates within the fragment are listened to.
  EXPECT_LE(b.beacon_listens, 10 + 8 + 6);
}

double AverageScans(
    const std::function<DiscoveryResult(ScanEnvironment&, const SpectrumMap&)>&
        algo,
    const SpectrumMap& map, ChannelWidth width) {
  RunningStats stats;
  for (const Channel& ap : map.UsableChannels()) {
    if (ap.width != width) continue;
    AnalyticScanEnvironment env(ap);
    const auto result = algo(env, map);
    EXPECT_TRUE(result.found);
    stats.Add(result.sift_scans + result.beacon_listens);
  }
  return stats.Mean();
}

TEST(Discovery, LSiftAverageScansNearNcOverTwo) {
  // Average over all 5 MHz AP placements in a fully-free band: expected
  // scan count NC/2 (paper Section 4.2.2).
  const SpectrumMap map;
  const double avg = AverageScans(
      [](ScanEnvironment& env, const SpectrumMap& m) {
        return LSiftDiscover(env, m);
      },
      map, ChannelWidth::kW5);
  EXPECT_NEAR(avg, ExpectedLSiftScans(kNumUhfChannels), 0.6);
}

TEST(Discovery, JSiftBeatsLSiftOnWideWhiteSpace) {
  // Paper: J-SIFT outperforms L-SIFT for white spaces wider than ~10
  // channels.  Compare average total cost over all AP placements/widths
  // for the full 30-channel band.
  const SpectrumMap map;
  double l_total = 0.0, j_total = 0.0;
  int n = 0;
  for (const Channel& ap : map.UsableChannels()) {
    AnalyticScanEnvironment env(ap);
    l_total += LSiftDiscover(env, map).elapsed;
    j_total += JSiftDiscover(env, map).elapsed;
    ++n;
  }
  EXPECT_LT(j_total, l_total * 0.75);
}

TEST(Discovery, LSiftBeatsJSiftOnNarrowWhiteSpace) {
  // ...and L-SIFT wins on narrow fragments (no endgame cost).
  SpectrumMap map;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    if (c < 8 || c >= 12) map.SetOccupied(c);  // 4-channel fragment.
  }
  double l_total = 0.0, j_total = 0.0;
  for (const Channel& ap : map.UsableChannels()) {
    AnalyticScanEnvironment env(ap);
    l_total += LSiftDiscover(env, map).elapsed;
    j_total += JSiftDiscover(env, map).elapsed;
  }
  EXPECT_LE(l_total, j_total);
}

TEST(Discovery, BothBeatBaselineSubstantially) {
  // Section 5.2 headline: J-SIFT improves discovery time by >75% over the
  // non-SIFT baseline on wide white spaces.
  const SpectrumMap map;
  double j_total = 0.0, base_total = 0.0;
  for (const Channel& ap : map.UsableChannels()) {
    AnalyticScanEnvironment env(ap);
    j_total += JSiftDiscover(env, map).elapsed;
    base_total += BaselineDiscover(env, map).elapsed;
  }
  EXPECT_LT(j_total, 0.25 * base_total);
}

TEST(Discovery, ExpectedScanFormulas) {
  EXPECT_DOUBLE_EQ(ExpectedLSiftScans(30), 15.0);
  // (NC + 2^(NW-1) + (NW-1)/2) / NW with NC=30, NW=3: (30+4+1)/3.
  EXPECT_DOUBLE_EQ(ExpectedJSiftScans(30, 3), 35.0 / 3.0);
  EXPECT_DOUBLE_EQ(ExpectedBaselineScans(30, 3), 45.0);
  // Paper: "we expect J-SIFT to outperform L-SIFT when NC is greater than
  // about 10 UHF channels".
  EXPECT_GT(ExpectedJSiftScans(8, 3), ExpectedLSiftScans(8));
  EXPECT_LT(ExpectedJSiftScans(12, 3), ExpectedLSiftScans(12));
}

TEST(Discovery, NotFoundWhenNoApPresent) {
  // An AP on an occupied-at-client channel is undiscoverable; the
  // algorithms terminate with found == false.
  SpectrumMap map;
  map.SetOccupied(4);
  const Channel hidden_ap{4, ChannelWidth::kW5};
  AnalyticScanEnvironment env(hidden_ap);
  EXPECT_FALSE(LSiftDiscover(env, map).found);
  EXPECT_FALSE(JSiftDiscover(env, map).found);
  EXPECT_FALSE(BaselineDiscover(env, map).found);
}

TEST(Discovery, JSiftNeverScansAChannelTwicePerRound) {
  // For an undiscoverable AP, one J-SIFT round's scans equal the number of
  // free channels (each visited exactly once across all passes).
  SpectrumMap map;
  map.SetOccupied(4);
  AnalyticScanEnvironment env(Channel{4, ChannelWidth::kW5});
  DiscoveryParams one_round;
  one_round.max_rounds = 1;
  const auto j = JSiftDiscover(env, map, one_round);
  EXPECT_EQ(j.sift_scans, map.NumFree());
  // With retries enabled, a full pass repeats per round.
  DiscoveryParams three_rounds;
  three_rounds.max_rounds = 3;
  EXPECT_EQ(JSiftDiscover(env, map, three_rounds).sift_scans,
            3 * map.NumFree());
}

TEST(Discovery, RetriesRideOutSiftFalseNegatives) {
  // A lossy scanner (40% per-scan miss rate) still finds the AP thanks to
  // the retry rounds — the paper: "the discovery algorithm will continue
  // to work as long as we can detect even a single packet".
  Rng rng(77);
  const SpectrumMap map;
  int l_found = 0, j_found = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    AnalyticScanEnvironment env(Channel{12, ChannelWidth::kW20},
                                /*miss_probability=*/0.4, &rng);
    l_found += LSiftDiscover(env, map).found ? 1 : 0;
    j_found += JSiftDiscover(env, map).found ? 1 : 0;
  }
  // A 20 MHz AP overlaps 5 scanned positions per L-SIFT round; missing
  // all of them for 3 rounds is ~0.4^15.
  EXPECT_EQ(l_found, trials);
  EXPECT_GE(j_found, trials - 3);  // J-SIFT has fewer looks per round.
}

TEST(Discovery, MissedDetectionStillReportsCosts) {
  SpectrumMap map;
  map.SetOccupied(4);
  AnalyticScanEnvironment env(Channel{4, ChannelWidth::kW5});
  DiscoveryParams params;
  params.max_rounds = 2;
  const auto l = LSiftDiscover(env, map, params);
  EXPECT_FALSE(l.found);
  EXPECT_EQ(l.sift_scans, 2 * map.NumFree());
  EXPECT_DOUBLE_EQ(l.elapsed, l.sift_scans * params.sift_scan_time);
}

// ----------------------------------------------------------------------
// Discovery through the full simulator: a real beaconing AP, a real
// searching radio, real tuning delays and contention.

class SimulatedDiscovery : public ::testing::TestWithParam<Channel> {};

TEST_P(SimulatedDiscovery, FindsRealBeaconingAp) {
  const Channel ap_channel = GetParam();
  const SpectrumMap map;  // All free.

  World world;
  DeviceConfig node;
  node.ssid = 9;
  ApParams ap_params;
  ap_params.adaptive = false;
  world.Create<ApNode>(node, ap_params, ap_channel, ap_channel);

  DeviceConfig searcher_config;
  searcher_config.ssid = 2;  // Not associated yet.
  searcher_config.position = {200.0, 0.0};
  searcher_config.initial_channel = Channel{0, ChannelWidth::kW5};
  Device& searcher = world.Create<Device>(searcher_config);
  world.StartAll();

  SimulatedScanEnvironment env(world, searcher, /*target_ssid=*/9);
  const auto result = JSiftDiscover(env, map);
  ASSERT_TRUE(result.found) << ap_channel.ToString();
  EXPECT_EQ(result.channel, ap_channel);
  EXPECT_GT(env.TimeSpent(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sample, SimulatedDiscovery,
    ::testing::Values(Channel{0, ChannelWidth::kW5},
                      Channel{14, ChannelWidth::kW10},
                      Channel{27, ChannelWidth::kW20},
                      Channel{2, ChannelWidth::kW20},
                      Channel{29, ChannelWidth::kW5}));

TEST(SimulatedDiscovery, LSiftAlsoWorksAgainstTheSimulator) {
  const Channel ap_channel{10, ChannelWidth::kW10};
  World world;
  DeviceConfig node;
  node.ssid = 9;
  ApParams ap_params;
  ap_params.adaptive = false;
  world.Create<ApNode>(node, ap_params, ap_channel, ap_channel);
  DeviceConfig searcher_config;
  searcher_config.ssid = 2;
  searcher_config.position = {150.0, 0.0};
  Device& searcher = world.Create<Device>(searcher_config);
  world.StartAll();

  SimulatedScanEnvironment env(world, searcher, 9);
  const auto result = LSiftDiscover(env, SpectrumMap{});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.channel, ap_channel);
  // L-SIFT hits the AP's lowest spanned channel (9) after scanning 0..9.
  EXPECT_EQ(result.sift_scans, 10);
}

}  // namespace
}  // namespace whitefi
