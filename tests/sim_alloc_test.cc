// Pins the event engine's zero-steady-state-allocation contract: once the
// arena, free list, and wheel buckets are warm, the schedule/fire cycle
// must not touch the heap (DESIGN.md §10).  Global operator new/delete are
// replaced with counting versions; the warmed cycle must leave the count
// untouched.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "sim/events.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace whitefi {
namespace {

/// One batch of the steady-state workload: 512 inline-stored timers spread
/// over a 256-tick horizon, drained to idle.  Advances Now() by exactly
/// 256 ticks — one full level-0 wheel window — per call, so every wrap of
/// the level-1 wheel replays identical bucket loads and warmed capacities
/// suffice forever.
void Cycle(Simulator& sim) {
  for (int i = 0; i < 512; ++i) {
    sim.ScheduleAfter((i * 7919) % 256 + 1, [] {});
  }
  sim.RunUntilIdle();
}

TEST(SimulatorAlloc, SteadyStateScheduleFireIsAllocationFree) {
  Simulator sim;
  // Warm every structure the cycle can touch: the arena chunks, the free
  // list, all 256 level-0 tick buckets, and — because the cursor sweeps
  // forward one 256-tick window per cycle — every level-1 bucket, which
  // takes one full 65536-tick wrap (256 cycles).  400 cycles ends near
  // tick 102400, clear of the next level-2 window crossing at 131072, so
  // the measured window replays only warmed paths.
  for (int i = 0; i < 400; ++i) Cycle(sim);

  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 8; ++i) Cycle(sim);
  const std::size_t after = g_allocations.load();

  EXPECT_EQ(after, before) << "steady-state schedule/fire allocated";
  EXPECT_EQ(sim.NumPending(), 0u);
  EXPECT_EQ(sim.NumProcessed(), 408u * 512u);
}

TEST(SimulatorAlloc, CancelChurnIsAllocationFreeWhenWarm) {
  Simulator sim;
  std::vector<EventId> timers(256, kInvalidEventId);
  const auto Churn = [&] {
    for (int rearm = 0; rearm < 4; ++rearm) {
      for (std::size_t i = 0; i < timers.size(); ++i) {
        sim.Cancel(timers[i]);
        timers[i] = sim.ScheduleAfter(static_cast<SimTime>(i * 31 % 256 + 1),
                                      [] {});
      }
    }
    sim.RunUntilIdle();
  };
  for (int i = 0; i < 400; ++i) Churn();

  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 8; ++i) Churn();
  EXPECT_EQ(g_allocations.load(), before)
      << "warm schedule/cancel churn allocated";
}

}  // namespace
}  // namespace whitefi
