// Tests for the INI-style config parser and the scenario-file loader.
#include <gtest/gtest.h>

#include "scenario_file.h"
#include "spectrum/campus.h"
#include "util/config.h"

namespace whitefi {
namespace {

TEST(ConfigFile, ParsesKeysSectionsAndComments) {
  const auto config = ConfigFile::ParseString(R"(
# a comment
seed = 7         ; trailing comment
name = hello world
[map]
name = campus
widths = 5, 10, 20
[flags]
adaptive = true
)");
  EXPECT_TRUE(config.Has("seed"));
  EXPECT_EQ(config.GetInt("seed"), 7);
  EXPECT_EQ(config.Get("name"), "hello world");
  EXPECT_EQ(config.Get("map.name"), "campus");
  EXPECT_EQ(config.GetIntList("map.widths"),
            (std::vector<long long>{5, 10, 20}));
  EXPECT_TRUE(config.GetBool("flags.adaptive"));
  EXPECT_FALSE(config.Has("missing"));
  EXPECT_EQ(config.Get("missing", "dflt"), "dflt");
  EXPECT_EQ(config.GetInt("missing", 42), 42);
  EXPECT_EQ(config.Keys().size(), 5u);
}

TEST(ConfigFile, NumericAndBooleanValidation) {
  const auto config = ConfigFile::ParseString(
      "x = 12\ny = 3.5\nb = YES\nbad = twelve\nbadly = 3x\n");
  EXPECT_EQ(config.GetInt("x"), 12);
  EXPECT_DOUBLE_EQ(config.GetDouble("y"), 3.5);
  EXPECT_DOUBLE_EQ(config.GetDouble("x"), 12.0);
  EXPECT_TRUE(config.GetBool("b"));
  EXPECT_THROW(config.GetInt("bad"), std::runtime_error);
  EXPECT_THROW(config.GetInt("badly"), std::runtime_error);
  EXPECT_THROW(config.GetDouble("bad"), std::runtime_error);
  EXPECT_THROW(config.GetBool("x"), std::runtime_error);
}

TEST(ConfigFile, RejectsMalformedLines) {
  EXPECT_THROW(ConfigFile::ParseString("just words\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::ParseString("[unterminated\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::ParseString("= value\n"), std::runtime_error);
  EXPECT_THROW(ConfigFile::Load("/nonexistent/path.conf"),
               std::runtime_error);
}

TEST(ConfigFile, ListEdgeCases) {
  const auto config = ConfigFile::ParseString("a = 1,, 2 ,3\nempty =\n");
  EXPECT_EQ(config.GetList("a"), (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_TRUE(config.GetList("empty").empty());
  EXPECT_TRUE(config.GetList("absent").empty());
  EXPECT_THROW(ConfigFile::ParseString("l = 1, x\n").GetIntList("l"),
               std::runtime_error);
}

TEST(ConfigFile, TracksConsumptionForUnknownKeyDetection) {
  const auto config = ConfigFile::ParseString(R"(
seed = 1
sceonds = 10
[network]
clients = 2
cilents = 3
)");
  // Nothing read yet: every key is unconsumed.
  EXPECT_EQ(config.UnconsumedKeys().size(), 4u);
  config.GetInt("seed");
  config.Has("network.clients");  // Has() counts as a read too.
  EXPECT_EQ(config.UnconsumedKeys(),
            (std::vector<std::string>{"network.cilents", "sceonds"}));
  // Probing an absent key must not mark anything.
  config.Get("seconds");
  EXPECT_EQ(config.UnconsumedKeys().size(), 2u);
  EXPECT_EQ(config.LineOf("sceonds"), 3);
  EXPECT_EQ(config.LineOf("network.cilents"), 6);
  EXPECT_EQ(config.LineOf("absent"), 0);
}

TEST(ConfigFile, ErrorsCarrySourceAndLine) {
  // Parse errors: line of the offending statement, empty path for strings.
  try {
    ConfigFile::ParseString("ok = 1\njust words\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_TRUE(e.path().empty());
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  // Conversion errors: line of the key whose value is malformed.
  const auto config = ConfigFile::ParseString("a = 1\nbad = twelve\n");
  try {
    config.GetInt("bad");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  // Unreadable files: the path, with no attributable line.
  try {
    ConfigFile::Load("/nonexistent/path.conf");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.path(), "/nonexistent/path.conf");
    EXPECT_EQ(e.line(), 0);
  }
}

// --------------------------------------------------------- scenario file --

TEST(ScenarioFile, LoadsFullScenario) {
  const auto config = ConfigFile::ParseString(R"(
seed = 9
seconds = 12
warmup = 2
[map]
name = building5
extra_occupied = 48
[network]
clients = 3
[background]
pairs = 4
ipd_ms = 25
payload = 500
[mic]
tv_channel = 28
on_s = 4
off_s = 100
)");
  const auto scenario = bench::LoadScenario(config);
  EXPECT_EQ(scenario.seed, 9u);
  EXPECT_DOUBLE_EQ(scenario.measure_s, 12.0);
  EXPECT_DOUBLE_EQ(scenario.warmup_s, 2.0);
  EXPECT_EQ(scenario.num_clients, 3);
  // Building5 has 10 free channels; we occupied 48 on top.
  EXPECT_EQ(scenario.base_map.NumFree(), 9);
  EXPECT_TRUE(scenario.base_map.Occupied(IndexOfTvChannel(48)));
  ASSERT_EQ(scenario.background.size(), 4u);
  for (const auto& spec : scenario.background) {
    EXPECT_TRUE(scenario.base_map.Free(spec.channel));
    EXPECT_EQ(spec.cbr_interval, 25 * kTicksPerMs);
    EXPECT_EQ(spec.payload_bytes, 500);
  }
  ASSERT_EQ(scenario.mics.size(), 1u);
  EXPECT_EQ(scenario.mics[0].channel, IndexOfTvChannel(28));
  EXPECT_DOUBLE_EQ(scenario.mics[0].on_time, 4.0 * kSecond);
  EXPECT_FALSE(scenario.static_channel.has_value());
}

TEST(ScenarioFile, StaticWidthSelection) {
  const auto scenario = bench::LoadScenario(ConfigFile::ParseString(
      "[map]\nname = building5\n[network]\nstatic_width = 20\n"));
  ASSERT_TRUE(scenario.static_channel.has_value());
  EXPECT_EQ(scenario.static_channel->width, ChannelWidth::kW20);
  EXPECT_TRUE(Building5Map().CanUse(*scenario.static_channel));
}

TEST(ScenarioFile, Validation) {
  EXPECT_THROW(
      bench::LoadScenario(ConfigFile::ParseString("[map]\nname = mars\n")),
      std::runtime_error);
  // Building5 has no 30 MHz option; 20 exists, but a width with no fitting
  // channel throws.
  EXPECT_THROW(bench::LoadScenario(ConfigFile::ParseString(
                   "[map]\nname = building5\nextra_occupied = "
                   "26,27,28,29,30\n[network]\nstatic_width = 20\n")),
               std::runtime_error);
}

TEST(ScenarioFile, UnknownKeysSurfaceTyposButNotConsumedSections) {
  const auto config = ConfigFile::ParseString(R"(
seed = 2
[network]
clients = 2
[client]
chirp_backoff = yes
chrip_jitter = 0.2
[fault]
miss_chirp_p = 0.1
scanner_outages = 2-4
)");
  bench::LoadScenario(config);
  // The loader consumed every key it understands — including the [client]
  // and [fault] sections — leaving exactly the typo.
  EXPECT_EQ(bench::UnknownScenarioKeys(config),
            (std::vector<std::string>{"client.chrip_jitter"}));
}

TEST(ScenarioFile, LoadedScenarioRuns) {
  const auto scenario = bench::LoadScenario(ConfigFile::ParseString(R"(
seed = 5
seconds = 4
[map]
name = building5
[network]
clients = 1
)"));
  const auto result = bench::RunScenario(scenario);
  EXPECT_GT(result.per_client_mbps, 2.0);  // Clean 20 MHz channel.
}

}  // namespace
}  // namespace whitefi
