// Randomized end-to-end property tests.
//
// Each case builds a randomized scenario (spectrum map, node placement,
// mic schedule) from a seed and checks protocol invariants that must hold
// regardless of the randomness:
//
//  P1  Incumbent protection: once a mic audible to a transmitter has been
//      active for longer than the sensing latency plus the reaction
//      budget, that transmitter sends nothing overlapping the mic's
//      channel.
//  P2  Reassembly: after things settle, every client is connected and
//      tuned to the AP's operating channel.
//  P3  Regulatory placement: the network's final channel is free of
//      incumbents in every member's observation.
//  P4  Liveness: data still flows after recovery.
#include <gtest/gtest.h>

#include "core/ap.h"
#include "core/client.h"
#include "core/discovery.h"
#include "sim/traffic.h"
#include "spectrum/campus.h"

namespace whitefi {
namespace {

constexpr int kSsid = 3;
/// Sensing latency (100 ms) plus protocol reaction budget.
constexpr SimTime kReactionBudget = 1500 * kTicksPerMs;

class RandomScenario : public ::testing::TestWithParam<int> {};

TEST_P(RandomScenario, ProtocolInvariantsHold) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);

  // Random-ish environment: campus map with a random extra occupied
  // channel, 1-3 clients, one mic on a random free channel at a random
  // time, audible either to everyone or to one random member.
  SpectrumMap map = CampusSimulationMap();
  map.SetOccupied(rng.Pick(map.FreeIndices()));

  WorldConfig world_config;
  world_config.seed = seed;
  World world(world_config);

  AssignmentInputs boot;
  boot.ap_map = map;
  boot.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    boot.ap_observation[static_cast<std::size_t>(c)].incumbent =
        map.Occupied(c);
  }
  SpectrumAssigner assigner;
  const Channel main = *assigner.SelectInitial(boot).channel;
  const Channel backup = *assigner.SelectBackup(boot, main);

  DeviceConfig node;
  node.ssid = kSsid;
  node.tv_map = map;
  ApParams ap_params;
  ap_params.scanner.dwell = 100 * kTicksPerMs;
  ApNode& ap = world.Create<ApNode>(node, ap_params, main, backup);
  const int num_clients = rng.UniformInt(1, 3);
  std::vector<ClientNode*> clients;
  std::vector<int> ids;
  for (int i = 0; i < num_clients; ++i) {
    node.position = {rng.Uniform(-250.0, 250.0), rng.Uniform(-250.0, 250.0)};
    clients.push_back(&world.Create<ClientNode>(node, ClientParams{}, main,
                                                backup, ap.NodeId()));
    ids.push_back(clients.back()->NodeId());
  }
  SaturatedSource downlink(ap, ids, 1000);

  // The mic: placed on a random channel of the *operating* span half the
  // time (forcing a reaction), elsewhere otherwise.
  MicActivation mic;
  mic.channel = rng.Bernoulli(0.5)
                    ? main.Low() + rng.UniformInt(0, SpanChannels(main.width) - 1)
                    : rng.Pick(map.FreeIndices());
  mic.on_time = rng.Uniform(2.0, 4.0) * kSecond;
  mic.off_time = 600.0 * kSecond;
  std::vector<int> audible_to;  // Empty = everyone.
  if (rng.Bernoulli(0.4)) {
    audible_to.push_back(rng.Bernoulli(0.5) ? ap.NodeId() : rng.Pick(ids));
  }
  world.AddMic(mic, audible_to);

  // P1 monitor: tap every transmission by a WhiteFi member.
  const SimTime mic_deadline = ToTicks(mic.on_time) + kReactionBudget;
  std::vector<std::string> violations;
  world.medium().AddFrameTap([&](const Channel& channel, const Frame& frame,
                                 const RadioPort& tx) {
    if (tx.NodeId() != ap.NodeId() &&
        std::find(ids.begin(), ids.end(), tx.NodeId()) == ids.end()) {
      return;
    }
    if (!channel.Contains(mic.channel)) return;
    if (!world.MicAudible(mic.channel, tx.NodeId())) return;
    if (world.sim().Now() <= mic_deadline) return;
    violations.push_back("node " + std::to_string(tx.NodeId()) + " sent " +
                         frame.ToString() + " over the mic at t=" +
                         std::to_string(ToSeconds(world.sim().Now())));
  });

  world.StartAll();
  downlink.Start();
  world.RunFor(18.0);

  // P1: no transmissions over a long-active audible mic.
  EXPECT_TRUE(violations.empty())
      << violations.front() << " (plus " << violations.size() - 1 << " more)";

  // P2: everyone reassembled.
  for (const ClientNode* client : clients) {
    EXPECT_TRUE(client->connected()) << "seed " << seed;
    EXPECT_EQ(client->TunedChannel(), ap.main_channel()) << "seed " << seed;
  }

  // P3: the final channel carries no incumbent any member can sense.
  for (UhfIndex c = ap.main_channel().Low(); c <= ap.main_channel().High();
       ++c) {
    EXPECT_FALSE(map.Occupied(c)) << "seed " << seed;
    EXPECT_FALSE(world.MicAudible(c, ap.NodeId())) << "seed " << seed;
    for (int id : ids) {
      EXPECT_FALSE(world.MicAudible(c, id)) << "seed " << seed;
    }
  }

  // P4: data flowed in the last stretch of the run.
  world.ResetAppBytes();
  world.RunFor(3.0);
  EXPECT_GT(world.AppBytesInSsid(kSsid), 50000u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenario, ::testing::Range(1, 17));

// Pure-function properties over random inputs.

class RandomMaps : public ::testing::TestWithParam<int> {};

TEST_P(RandomMaps, AssignerOutputIsAlwaysLegal) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  AssignmentInputs inputs;
  inputs.ap_map = SpectrumMap::RandomOccupied(rng.UniformInt(0, 29), rng);
  inputs.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    auto& o = inputs.ap_observation[static_cast<std::size_t>(c)];
    o.incumbent = inputs.ap_map.Occupied(c);
    o.airtime = rng.Uniform(0.0, 1.0);
    o.ap_count = rng.UniformInt(0, 3);
  }
  const int clients = rng.UniformInt(0, 4);
  for (int i = 0; i < clients; ++i) {
    inputs.client_maps.push_back(
        inputs.ap_map.RandomlyFlipped(rng.Uniform(0.0, 0.2), rng));
    inputs.client_observations.push_back(inputs.ap_observation);
  }
  SpectrumAssigner assigner;
  const auto decision = assigner.SelectInitial(inputs);
  const SpectrumMap combined = inputs.CombinedMap();
  if (decision.channel.has_value()) {
    // Legal under every member's map...
    EXPECT_TRUE(combined.CanUse(*decision.channel));
    // ...and its metric matches a direct evaluation.
    EXPECT_DOUBLE_EQ(decision.metric,
                     assigner.EvaluateChannel(*decision.channel, inputs));
    // No candidate is strictly better.
    for (const Channel& other : combined.UsableChannels()) {
      EXPECT_LE(assigner.EvaluateChannel(other, inputs),
                decision.metric + 1e-12);
    }
    // A backup, when available, is 5 MHz and legal.
    const auto backup = assigner.SelectBackup(inputs, *decision.channel);
    if (backup.has_value()) {
      EXPECT_EQ(backup->width, ChannelWidth::kW5);
      EXPECT_TRUE(combined.CanUse(*backup));
    }
  } else {
    EXPECT_TRUE(combined.UsableChannels().empty());
  }
}

TEST_P(RandomMaps, DiscoveryAlwaysFindsFindableAps) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const SpectrumMap map = SpectrumMap::RandomOccupied(rng.UniformInt(0, 25), rng);
  const auto usable = map.UsableChannels();
  if (usable.empty()) return;
  const Channel ap = rng.Pick(usable);
  AnalyticScanEnvironment env(ap);
  for (auto* algorithm : {&LSiftDiscover, &JSiftDiscover, &BaselineDiscover}) {
    const auto result = (*algorithm)(env, map, DiscoveryParams{});
    ASSERT_TRUE(result.found) << ap.ToString() << " map " << map.ToString();
    EXPECT_EQ(result.channel, ap);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMaps, ::testing::Range(0, 25));

}  // namespace
}  // namespace whitefi
