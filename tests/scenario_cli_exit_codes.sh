#!/bin/sh
# Exit-code contract of scenario_cli (documented in its header):
#   0  success / replay reproduced / invariants held
#   1  runtime failure / violation found / replay divergence
#   2  configuration error (bad flags, malformed file, --strict unknown key)
# Scripts (and CI) rely on the 1-vs-2 distinction, so it is pinned here.
#
# Usage: scenario_cli_exit_codes.sh <path-to-scenario_cli>
set -u

CLI="$1"
TMP="${TMPDIR:-/tmp}/scenario_cli_exit_codes.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

expect_exit() {
  want="$1"
  desc="$2"
  shift 2
  "$@" >"$TMP/out" 2>"$TMP/err"
  got=$?
  [ "$got" -eq "$want" ] || {
    cat "$TMP/err" >&2
    fail "$desc: expected exit $want, got $got"
  }
}

# A minimal valid scenario: exit 0.
cat >"$TMP/ok.conf" <<EOF
seed = 3
seconds = 1
warmup = 0.2
network.clients = 1
EOF
expect_exit 0 "valid config" "$CLI" --config "$TMP/ok.conf"

# Unknown key: warning (exit 0) by default, fatal (exit 2) under --strict,
# and the strict error must carry the file path and line number.
cat >"$TMP/typo.conf" <<EOF
seed = 3
seconds = 1
netwrk.clients = 1
EOF
expect_exit 0 "unknown key without --strict" \
  "$CLI" --config "$TMP/typo.conf"
grep -q "netwrk.clients" "$TMP/err" || fail "missing unknown-key warning"

expect_exit 2 "unknown key under --strict" \
  "$CLI" --config "$TMP/typo.conf" --strict
grep -q "typo.conf line 3" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "--strict error must name path and line"
}

# Malformed syntax: exit 2, with line attribution.
printf 'seed = 3\nthis is not a key value line\n' >"$TMP/bad.conf"
expect_exit 2 "malformed config" "$CLI" --config "$TMP/bad.conf"
grep -q "line 2" "$TMP/err" || fail "parse error must carry the line"

# Missing file and bad flags are configuration errors too.
expect_exit 2 "missing config file" "$CLI" --config "$TMP/nonexistent.conf"
expect_exit 2 "unknown flag" "$CLI" --no-such-flag
expect_exit 2 "flag missing its value" "$CLI" --config

# Bad numeric flag values: exit 2 with an error naming the flag — even
# when the number is merely out of range (std::out_of_range must not leak
# into the runtime-error class) or carries trailing garbage.
expect_exit 2 "non-numeric flag value" "$CLI" --audit-budget-ms banana
grep -q -- "--audit-budget-ms" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "bad value error must name the flag"
}
expect_exit 2 "out-of-range flag value" \
  "$CLI" --seed 99999999999999999999999999
expect_exit 2 "trailing garbage in flag value" "$CLI" --seconds 3x

# --trace-only takes wire names of trace-event kinds; an unknown name is
# a configuration error naming the offending kind.
expect_exit 2 "unknown trace kind" "$CLI" --trace-only frame_tx,bogus_kind
grep -q "bogus_kind" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "--trace-only error must name the unknown kind"
}
expect_exit 2 "empty trace kind list" "$CLI" --trace-only ,

# [geodb] / [mobility] sections: a valid dynamic geo-db scenario runs to
# completion (exit 0), misspelled geodb keys are caught by --strict
# (exit 2), and a parameter that parses but violates the documented
# relations (queue >= 1, backoff_max >= backoff, ordered venue windows)
# is a RUNTIME error (exit 1): the file is well-formed, the scenario it
# describes is impossible.
cat >"$TMP/geodb.conf" <<EOF
seed = 7
seconds = 2
warmup = 0.5
network.clients = 1
geodb.enabled = true
geodb.venues = 1
geodb.refresh_s = 0.5
mobility.enabled = true
mobility.speed_max_mps = 5.0
EOF
expect_exit 0 "valid geodb+mobility config" \
  "$CLI" --config "$TMP/geodb.conf" --strict

cat >"$TMP/geodb_typo.conf" <<EOF
seed = 7
seconds = 1
geodb.enabled = true
geodb.refrsh_s = 0.5
mobility.speed_max_mps = 5.0
EOF
expect_exit 0 "unknown geodb key without --strict" \
  "$CLI" --config "$TMP/geodb_typo.conf"
expect_exit 2 "unknown geodb key under --strict" \
  "$CLI" --config "$TMP/geodb_typo.conf" --strict
grep -q "geodb.refrsh_s" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "--strict error must name the misspelled geodb key"
}

cat >"$TMP/geodb_bad.conf" <<EOF
seed = 7
seconds = 1
geodb.enabled = true
geodb.queue = 0
EOF
expect_exit 1 "invalid geodb parameter relation" \
  "$CLI" --config "$TMP/geodb_bad.conf"

cat >"$TMP/mobility_bad.conf" <<EOF
seed = 7
seconds = 1
geodb.enabled = true
mobility.enabled = true
mobility.speed_min_mps = 9.0
mobility.speed_max_mps = 1.0
EOF
expect_exit 1 "inverted mobility speed range" \
  "$CLI" --config "$TMP/mobility_bad.conf"

# [city] / [shards] sections: a valid city-scale scenario runs on the
# sharded engine (exit 0, any --shards), misspelled city/shards keys are
# caught by --strict (exit 2), a bad --shards value is a flag error
# naming the flag (exit 2), and a parameter that parses but violates the
# city generator's documented relations (placement name, roams without
# cbr, tile edge below the interference cutoff) is a configuration
# error (exit 2): the scenario it describes cannot be built.
cat >"$TMP/city.conf" <<EOF
seed = 5
seconds = 1
city.aps = 9
city.clients_per_ap = 1
city.width_m = 7000
city.height_m = 7000
EOF
expect_exit 0 "valid city config" "$CLI" --config "$TMP/city.conf" --strict
expect_exit 0 "valid city config, sharded" \
  "$CLI" --config "$TMP/city.conf" --strict --shards 4
expect_exit 0 "valid city config under audit" \
  "$CLI" --config "$TMP/city.conf" --strict --shards 2 --audit
grep -q "shards: 4" "$TMP/out" && fail "shard count must not reach stdout"

cat >"$TMP/city_typo.conf" <<EOF
seed = 5
seconds = 1
city.aps = 4
city.clents_per_ap = 1
shards.trce = true
EOF
expect_exit 0 "unknown city key without --strict" \
  "$CLI" --config "$TMP/city_typo.conf"
grep -q "city.clents_per_ap" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "missing city unknown-key warning"
}
grep -q "shards.trce" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "missing shards unknown-key warning"
}
expect_exit 2 "unknown city key under --strict" \
  "$CLI" --config "$TMP/city_typo.conf" --strict
grep -q "city_typo.conf line 4" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "--strict city error must name path and line"
}

expect_exit 2 "zero shard count" "$CLI" --config "$TMP/city.conf" --shards 0
expect_exit 2 "negative shard count" \
  "$CLI" --config "$TMP/city.conf" --shards -3
expect_exit 2 "non-numeric shard count" \
  "$CLI" --config "$TMP/city.conf" --shards many
grep -q -- "--shards" "$TMP/err" || {
  cat "$TMP/err" >&2
  fail "bad --shards error must name the flag"
}

cat >"$TMP/city_bad_placement.conf" <<EOF
seed = 5
seconds = 1
city.aps = 4
city.placement = hexgrid
EOF
expect_exit 2 "unknown city placement" \
  "$CLI" --config "$TMP/city_bad_placement.conf"

cat >"$TMP/city_bad_roam.conf" <<EOF
seed = 5
seconds = 1
city.aps = 4
city.traffic = saturated
city.roams = 1
EOF
expect_exit 2 "roams without cbr traffic" \
  "$CLI" --config "$TMP/city_bad_roam.conf"

cat >"$TMP/city_bad_tile.conf" <<EOF
seed = 5
seconds = 1
city.aps = 4
city.tile_m = 100
EOF
expect_exit 2 "tile edge below the interference cutoff" \
  "$CLI" --config "$TMP/city_bad_tile.conf"

# Replaying a file with no expect block is a runtime failure (1), not a
# config error: the file parsed fine, the reproduction just cannot hold.
expect_exit 1 "replay of a non-bundle" "$CLI" --replay "$TMP/ok.conf"

# Replay of an unreadable bundle is a config error.
expect_exit 2 "replay of missing bundle" "$CLI" --replay "$TMP/nope.bundle"

echo "PASS"
