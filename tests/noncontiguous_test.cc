// Tests for the non-contiguous OFDM capacity model (paper Section 6).
#include <gtest/gtest.h>

#include "phy/noncontiguous.h"
#include "spectrum/campus.h"
#include "spectrum/locales.h"

namespace whitefi {
namespace {

TEST(NcOfdm, FragmentUsableCapacity) {
  NcOfdmParams ideal;
  ideal.edge_guard_mhz = 0.0;
  ideal.pilot_overhead = 0.0;
  EXPECT_DOUBLE_EQ(FragmentUsableMHz(Fragment{0, 4}, ideal), 24.0);
  NcOfdmParams lossy;
  lossy.edge_guard_mhz = 1.0;
  lossy.pilot_overhead = 0.1;
  EXPECT_DOUBLE_EQ(FragmentUsableMHz(Fragment{0, 4}, lossy), 22.0 * 0.9);
  // A fragment narrower than its guards contributes nothing (never < 0).
  lossy.edge_guard_mhz = 3.5;
  EXPECT_DOUBLE_EQ(FragmentUsableMHz(Fragment{0, 1}, lossy), 0.0);
}

TEST(NcOfdm, ContiguousCapacityMirrorsChannelFitting) {
  EXPECT_DOUBLE_EQ(BestContiguousCapacity(SpectrumMap{}), 4.0);
  EXPECT_DOUBLE_EQ(
      BestContiguousCapacity(SpectrumMap::FromFreeTvChannels({21, 22, 23})),
      2.0);
  EXPECT_DOUBLE_EQ(
      BestContiguousCapacity(SpectrumMap::FromFreeTvChannels({21, 25})), 1.0);
  SpectrumMap none;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) none.SetOccupied(c);
  EXPECT_DOUBLE_EQ(BestContiguousCapacity(none), 0.0);
}

TEST(NcOfdm, IdealAggregationDominatesContiguous) {
  // With perfect filters, aggregating all fragments can never lose to a
  // single contiguous slice of the same spectrum.
  NcOfdmParams ideal;
  ideal.edge_guard_mhz = 0.0;
  ideal.pilot_overhead = 0.0;
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto map = SpectrumMap::RandomOccupied(rng.UniformInt(0, 29), rng);
    EXPECT_GE(NonContiguousCapacity(map, ideal),
              BestContiguousCapacity(map) - 1e-9)
        << map.ToString();
  }
}

TEST(NcOfdm, GuardsEatNarrowFragmentsFirst) {
  // Campus map: fragments 6+4+3+2+1+1.  With growing guards the 1-channel
  // fragments die first, then the 2-channel one, etc.
  const SpectrumMap map = CampusSimulationMap();
  NcOfdmParams params;
  params.pilot_overhead = 0.0;
  params.edge_guard_mhz = 0.0;
  const double ideal = NonContiguousCapacity(map, params);
  EXPECT_DOUBLE_EQ(ideal, 17.0 * 6.0 / 5.0);  // All 102 MHz usable.
  params.edge_guard_mhz = 3.0;  // Kills 6 MHz per fragment: the 1-ch ones.
  const double strained = NonContiguousCapacity(map, params);
  EXPECT_LT(strained, ideal);
  EXPECT_DOUBLE_EQ(strained, (17.0 * 6.0 - 6.0 * 6.0) / 5.0);
}

TEST(NcOfdm, BreakEvenGuardBehavior) {
  // One free UHF channel: aggregation offers 6 MHz vs. the 5 MHz channel;
  // the 1 MHz edge surplus dies once the two guards exceed 0.5 MHz each.
  const SpectrumMap one_channel = SpectrumMap::FromFreeTvChannels({21});
  const MHz breakeven_one = BreakEvenGuardMHz(one_channel);
  EXPECT_GT(breakeven_one, 0.3);
  EXPECT_LT(breakeven_one, 0.7);

  // A heavily fragmented map: aggregation is worth so much that it beats
  // the best contiguous channel for any guard below the search limit.
  const SpectrumMap fragmented = SpectrumMap::FromFreeTvChannels(
      {21, 22, 25, 26, 29, 30, 33, 34, 39, 40, 44, 45, 48, 49});
  EXPECT_DOUBLE_EQ(BreakEvenGuardMHz(fragmented), 3.0);
  EXPECT_GT(BreakEvenGuardMHz(fragmented), breakeven_one);

  // Nothing free: aggregation never wins.
  SpectrumMap none;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) none.SetOccupied(c);
  EXPECT_DOUBLE_EQ(BreakEvenGuardMHz(none), 0.0);
}

TEST(NcOfdm, MonotoneInGuard) {
  Rng rng(11);
  const auto map = SpectrumMap::RandomOccupied(12, rng);
  double prev = 1e9;
  for (MHz guard = 0.0; guard <= 3.0; guard += 0.25) {
    NcOfdmParams params;
    params.edge_guard_mhz = guard;
    const double capacity = NonContiguousCapacity(map, params);
    EXPECT_LE(capacity, prev + 1e-12);
    EXPECT_GE(capacity, 0.0);
    prev = capacity;
  }
}

}  // namespace
}  // namespace whitefi
