// Tests for the radio medium: exact-channel delivery, width dropping,
// cross-width carrier sense, SINR collisions, airtime books, frame taps,
// and half-duplex behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/medium.h"
#include "util/units.h"

namespace whitefi {
namespace {

/// Minimal scriptable radio for medium-level tests.
class FakeRadio : public RadioPort {
 public:
  FakeRadio(int id, Position pos, Channel channel, bool is_ap = false)
      : id_(id), pos_(pos), channel_(channel), is_ap_(is_ap) {}

  int NodeId() const override { return id_; }
  Position Location() const override { return pos_; }
  const Channel& TunedChannel() const override { return channel_; }
  bool RxEnabled() const override { return rx_enabled; }
  bool IsAp() const override { return is_ap_; }
  void DeliverFrame(const Frame& frame, Dbm power) override {
    delivered.push_back(frame);
    powers.push_back(power);
  }
  void MediumChanged() override { ++medium_changes; }

  void Tune(const Channel& c) { channel_ = c; }

  bool rx_enabled = true;
  std::vector<Frame> delivered;
  std::vector<Dbm> powers;
  int medium_changes = 0;

 private:
  int id_;
  Position pos_;
  Channel channel_;
  bool is_ap_;
};

Frame DataFrame(int src, int dst, int bytes = 1028) {
  Frame f;
  f.type = FrameType::kData;
  f.src = src;
  f.dst = dst;
  f.bytes = bytes;
  return f;
}

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(sim_, MediumParams{}) {}

  Simulator sim_;
  Medium medium_;
};

TEST_F(MediumTest, DeliversToSameChannelRadio) {
  const Channel ch{10, ChannelWidth::kW20};
  FakeRadio tx(1, {0, 0}, ch), rx(2, {100, 0}, ch);
  medium_.Register(&tx);
  medium_.Register(&rx);
  bool ended = false;
  medium_.Transmit(&tx, ch, DataFrame(1, 2), 16.0, 200, [&] { ended = true; });
  sim_.Run(1000);
  EXPECT_TRUE(ended);
  ASSERT_EQ(rx.delivered.size(), 1u);
  EXPECT_EQ(rx.delivered[0].src, 1);
  EXPECT_TRUE(tx.delivered.empty());  // Sender does not hear itself.
  // Received power matches propagation at 100 m.
  EXPECT_NEAR(rx.powers[0], 16.0 - (28.0 + 22.0 * 2.0), 1e-6);
}

TEST_F(MediumTest, DropsDifferentWidthSameCenter) {
  // Paper 5.4: "we explicitly drop packets that were sent at a different
  // channel width".
  const Channel tx_ch{10, ChannelWidth::kW20};
  const Channel rx_ch{10, ChannelWidth::kW10};
  FakeRadio tx(1, {0, 0}, tx_ch), rx(2, {50, 0}, rx_ch);
  medium_.Register(&tx);
  medium_.Register(&rx);
  medium_.Transmit(&tx, tx_ch, DataFrame(1, 2), 16.0, 200, nullptr);
  sim_.Run(1000);
  EXPECT_TRUE(rx.delivered.empty());
  // But the overlapping-energy notification did fire (carrier sense).
  EXPECT_GT(rx.medium_changes, 0);
}

TEST_F(MediumTest, DropsDifferentCenterSameWidth) {
  const Channel a{5, ChannelWidth::kW5};
  const Channel b{6, ChannelWidth::kW5};
  FakeRadio tx(1, {0, 0}, a), rx(2, {50, 0}, b);
  medium_.Register(&tx);
  medium_.Register(&rx);
  medium_.Transmit(&tx, a, DataFrame(1, 2), 16.0, 200, nullptr);
  sim_.Run(1000);
  EXPECT_TRUE(rx.delivered.empty());
  EXPECT_EQ(rx.medium_changes, 0);  // No spectral overlap either.
}

TEST_F(MediumTest, NoDeliveryWhileRxDisabled) {
  const Channel ch{10, ChannelWidth::kW5};
  FakeRadio tx(1, {0, 0}, ch), rx(2, {50, 0}, ch);
  rx.rx_enabled = false;  // PLL retuning.
  medium_.Register(&tx);
  medium_.Register(&rx);
  medium_.Transmit(&tx, ch, DataFrame(1, 2), 16.0, 200, nullptr);
  sim_.Run(1000);
  EXPECT_TRUE(rx.delivered.empty());
}

TEST_F(MediumTest, CarrierSenseAcrossOverlappingWidths) {
  // A 20 MHz transmission spanning channels 8..12 must be sensed by a
  // 5 MHz radio on channel 12 but not by one on channel 13 — the paper's
  // carrier-sense modification.
  const Channel wide{10, ChannelWidth::kW20};
  FakeRadio tx(1, {0, 0}, wide);
  FakeRadio on12(2, {50, 0}, Channel{12, ChannelWidth::kW5});
  FakeRadio on13(3, {50, 0}, Channel{13, ChannelWidth::kW5});
  medium_.Register(&tx);
  medium_.Register(&on12);
  medium_.Register(&on13);
  medium_.Transmit(&tx, wide, DataFrame(1, 99), 16.0, 500, nullptr);
  sim_.Run(100);  // Mid-transmission.
  EXPECT_TRUE(medium_.CarrierSensed(on12, on12.TunedChannel()));
  EXPECT_FALSE(medium_.CarrierSensed(on13, on13.TunedChannel()));
  // A node never senses its own transmission as foreign carrier.
  EXPECT_FALSE(medium_.CarrierSensed(tx, wide));
  EXPECT_TRUE(medium_.Transmitting(tx));
  sim_.Run(1000);
  EXPECT_FALSE(medium_.CarrierSensed(on12, on12.TunedChannel()));
  EXPECT_FALSE(medium_.Transmitting(tx));
}

TEST_F(MediumTest, CollisionDestroysBothFrames) {
  const Channel ch{10, ChannelWidth::kW5};
  FakeRadio a(1, {0, 0}, ch), b(2, {10, 0}, ch), rx(3, {5, 5}, ch);
  medium_.Register(&a);
  medium_.Register(&b);
  medium_.Register(&rx);
  medium_.Transmit(&a, ch, DataFrame(1, 3), 16.0, 200, nullptr);
  medium_.Transmit(&b, ch, DataFrame(2, 3), 16.0, 200, nullptr);
  sim_.Run(1000);
  // Comparable powers => SINR ~ 0 dB < 10 dB threshold for both.
  EXPECT_TRUE(rx.delivered.empty());
}

TEST_F(MediumTest, CaptureWhenInterfererIsWeak) {
  const Channel ch{10, ChannelWidth::kW5};
  FakeRadio near_tx(1, {0, 0}, ch);
  FakeRadio far_tx(2, {5000, 0}, ch);  // ~75 dB weaker at the receiver.
  FakeRadio rx(3, {10, 0}, ch);
  medium_.Register(&near_tx);
  medium_.Register(&far_tx);
  medium_.Register(&rx);
  medium_.Transmit(&near_tx, ch, DataFrame(1, 3), 16.0, 200, nullptr);
  medium_.Transmit(&far_tx, ch, DataFrame(2, 3), 16.0, 200, nullptr);
  sim_.Run(1000);
  // The near frame captures; the far one is buried.
  ASSERT_EQ(rx.delivered.size(), 1u);
  EXPECT_EQ(rx.delivered[0].src, 1);
}

TEST_F(MediumTest, HalfDuplexReceiverMissesWhileTransmitting) {
  const Channel ch{10, ChannelWidth::kW5};
  FakeRadio a(1, {0, 0}, ch), b(2, {10, 0}, ch);
  medium_.Register(&a);
  medium_.Register(&b);
  // b transmits during a's frame; b must not receive a's frame.
  medium_.Transmit(&a, ch, DataFrame(1, 2), 16.0, 300, nullptr);
  sim_.Run(50);
  medium_.Transmit(&b, ch, DataFrame(2, 1), 16.0, 100, nullptr);
  sim_.Run(1000);
  EXPECT_TRUE(b.delivered.empty());
}

TEST_F(MediumTest, AirtimeBooksTrackBusyTime) {
  const Channel wide{10, ChannelWidth::kW20};  // Spans 8..12.
  FakeRadio tx(1, {0, 0}, wide, /*is_ap=*/true);
  medium_.Register(&tx);
  const AirtimeBooks before = medium_.SnapshotBooks();
  medium_.Transmit(&tx, wide, DataFrame(1, 99), 16.0, 400, nullptr);
  sim_.Run(1000);
  const AirtimeBooks after = medium_.SnapshotBooks();
  for (UhfIndex c = 8; c <= 12; ++c) {
    const auto i = static_cast<std::size_t>(c);
    EXPECT_DOUBLE_EQ(after[i].busy - before[i].busy, 400.0) << c;
    EXPECT_DOUBLE_EQ(after[i].per_node.at(1), 400.0) << c;
  }
  EXPECT_DOUBLE_EQ(after[7].busy, before[7].busy);
  EXPECT_DOUBLE_EQ(after[13].busy, before[13].busy);
}

TEST_F(MediumTest, OverlappingTransmissionsBusyTimeIsUnion) {
  const Channel ch{5, ChannelWidth::kW5};
  FakeRadio a(1, {0, 0}, ch), b(2, {10, 0}, ch);
  medium_.Register(&a);
  medium_.Register(&b);
  medium_.Transmit(&a, ch, DataFrame(1, 9), 16.0, 300, nullptr);
  sim_.Run(100);
  medium_.Transmit(&b, ch, DataFrame(2, 9), 16.0, 300, nullptr);  // 100..400.
  sim_.Run(1000);
  const AirtimeBooks books = medium_.SnapshotBooks();
  // Union busy time is 400 us, not 600.
  EXPECT_DOUBLE_EQ(books[5].busy, 400.0);
  // Per-node books carry each transmitter's own air time.
  EXPECT_DOUBLE_EQ(books[5].per_node.at(1), 300.0);
  EXPECT_DOUBLE_EQ(books[5].per_node.at(2), 300.0);
}

TEST_F(MediumTest, ActiveApsBetweenSnapshotsAndApIds) {
  const Channel ch{3, ChannelWidth::kW5};
  FakeRadio ap(1, {0, 0}, ch, /*is_ap=*/true);
  FakeRadio client(2, {10, 0}, ch, /*is_ap=*/false);
  medium_.Register(&ap);
  medium_.Register(&client);
  EXPECT_EQ(medium_.ApIds(), (std::vector<int>{1}));
  const AirtimeBooks before = medium_.SnapshotBooks();
  medium_.Transmit(&ap, ch, DataFrame(1, 2), 16.0, 100, nullptr);
  sim_.Run(1000);
  const AirtimeBooks after = medium_.SnapshotBooks();
  EXPECT_EQ(Medium::ActiveApsBetween(before, after, 3, {1, 2}),
            (std::vector<int>{1}));
  EXPECT_TRUE(Medium::ActiveApsBetween(before, after, 4, {1, 2}).empty());
  EXPECT_TRUE(Medium::ActiveApsBetween(after, after, 3, {1, 2}).empty());
}

TEST_F(MediumTest, FrameTapSeesEveryTransmission) {
  const Channel ch{3, ChannelWidth::kW5};
  FakeRadio tx(1, {0, 0}, ch);
  medium_.Register(&tx);
  int taps = 0;
  Channel tapped_channel{0, ChannelWidth::kW5};
  medium_.AddFrameTap([&](const Channel& c, const Frame& f, const RadioPort& r) {
    ++taps;
    tapped_channel = c;
    EXPECT_EQ(f.type, FrameType::kChirp);
    EXPECT_EQ(r.NodeId(), 1);
  });
  Frame chirp;
  chirp.type = FrameType::kChirp;
  chirp.src = 1;
  chirp.bytes = 60;
  medium_.Transmit(&tx, ch, chirp, 16.0, 100, nullptr);
  sim_.Run(1000);
  EXPECT_EQ(taps, 1);
  EXPECT_EQ(tapped_channel, ch);
}

TEST_F(MediumTest, UnregisterStopsDelivery) {
  const Channel ch{3, ChannelWidth::kW5};
  FakeRadio tx(1, {0, 0}, ch), rx(2, {10, 0}, ch);
  medium_.Register(&tx);
  medium_.Register(&rx);
  medium_.Unregister(&rx);
  medium_.Transmit(&tx, ch, DataFrame(1, 2), 16.0, 100, nullptr);
  sim_.Run(1000);
  EXPECT_TRUE(rx.delivered.empty());
}

TEST_F(MediumTest, FarAwayReceiverBelowSnrGetsNothing) {
  MediumParams params;
  params.propagation.exponent = 3.5;  // Harsh environment for this test.
  Medium medium(sim_, params);
  const Channel ch{3, ChannelWidth::kW5};
  FakeRadio tx(1, {0, 0}, ch), rx(2, {20000, 0}, ch);
  medium.Register(&tx);
  medium.Register(&rx);
  medium.Transmit(&tx, ch, DataFrame(1, 2), 16.0, 100, nullptr);
  sim_.Run(1000);
  EXPECT_TRUE(rx.delivered.empty());
}

// ------------------------------------------------- per-channel fast path ---

/// One transmission of a randomized storm, as the test's ground truth.
struct StormRecord {
  SimTime start;
  SimTime end;
  Channel channel;
  int node;
  Dbm power;
};

/// Exhaustive-reference carrier sense: walk EVERY storm transmission
/// active at `now`, applying the same physics as Medium::CarrierSensed.
/// Pins the per-channel index against the full scan it replaced.
bool ReferenceCarrierSense(const std::vector<StormRecord>& records,
                           const std::vector<FakeRadio>& radios, SimTime now,
                           const FakeRadio& listener, const Channel& channel,
                           const MediumParams& params,
                           const PropagationModel& prop) {
  for (const StormRecord& r : records) {
    if (!(r.start <= now && now < r.end)) continue;
    if (!r.channel.Overlaps(channel)) continue;
    if (r.node == listener.NodeId()) continue;
    const Dbm p =
        prop.ReceivedPower(r.power, radios[static_cast<std::size_t>(r.node)]
                                        .Location(),
                           listener.Location());
    if (r.channel == channel) {
      if (p >= params.same_channel_cs_dbm) return true;
    } else {
      const Dbm in_band = p + LinearToDb(InBandPowerFraction(r.channel, channel));
      if (in_band >= params.energy_detect_cs_dbm) return true;
    }
  }
  return false;
}

TEST_F(MediumTest, RandomStormBooksMatchIntervalUnion) {
  // Randomized dense-overlap storm: the per-channel transmission index and
  // lazy per-channel accrual must produce airtime books EXACTLY equal (the
  // sums involve only integer-valued doubles) to the interval unions the
  // test computes from first principles.
  std::vector<FakeRadio> radios;
  radios.reserve(static_cast<std::size_t>(kNumUhfChannels));
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    radios.emplace_back(c, Position{40.0 * c, 0.0},
                        Channel{c, ChannelWidth::kW5});
  }
  for (FakeRadio& r : radios) medium_.Register(&r);

  std::mt19937 rng(98107);
  std::vector<StormRecord> records;
  for (int i = 0; i < 300; ++i) {
    StormRecord rec;
    // Even starts and durations keep probe times (odd) strictly between
    // transition events.
    rec.start = static_cast<SimTime>(rng() % 10000) * 2;
    rec.end = rec.start + 2 * (1 + static_cast<SimTime>(rng() % 200));
    const auto width = static_cast<ChannelWidth>(rng() % 3);
    const int half = SpanChannels(width) / 2;
    rec.node = half + static_cast<int>(rng() % (kNumUhfChannels - 2 * half));
    rec.channel = Channel{rec.node, width};
    ASSERT_TRUE(rec.channel.IsValid());
    rec.power = 16.0;
    records.push_back(rec);
  }
  for (const StormRecord& rec : records) {
    sim_.Schedule(rec.start, [this, &radios, rec] {
      medium_.Transmit(&radios[static_cast<std::size_t>(rec.node)], rec.channel,
                       DataFrame(rec.node, -1), rec.power, rec.end - rec.start,
                       nullptr);
    });
  }

  // Probes at odd times: carrier sense and Transmitting() must match the
  // exhaustive reference scan, mid-flight.
  int probes_sensed = 0;
  for (SimTime t = 1001; t < 20000; t += 2000) {
    sim_.Schedule(t, [this, &radios, &records, t, &probes_sensed] {
      for (UhfIndex c = 0; c < kNumUhfChannels; c += 5) {
        const FakeRadio& listener = radios[static_cast<std::size_t>(c)];
        for (const Channel probe :
             {Channel{c, ChannelWidth::kW5},
              Channel{std::clamp(c, 2, kNumUhfChannels - 3),
                      ChannelWidth::kW20}}) {
          const bool sensed = medium_.CarrierSensed(listener, probe);
          EXPECT_EQ(sensed,
                    ReferenceCarrierSense(records, radios, t, listener, probe,
                                          medium_.params(),
                                          medium_.propagation()))
              << "t=" << t << " listener=" << c;
          probes_sensed += sensed ? 1 : 0;
        }
        bool ref_transmitting = false;
        for (const StormRecord& r : records) {
          ref_transmitting |=
              r.node == c && r.start <= t && t < r.end;
        }
        EXPECT_EQ(medium_.Transmitting(listener), ref_transmitting);
      }
    });
  }

  // Mid-stream snapshot (forces lazy accrual at an arbitrary boundary).
  AirtimeBooks mid{};
  sim_.Schedule(10001, [this, &mid] { mid = medium_.SnapshotBooks(); });
  sim_.RunUntilIdle();
  const AirtimeBooks books = medium_.SnapshotBooks();

  EXPECT_GT(probes_sensed, 0);  // The storm is dense; probes must hit.
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    // Interval union over transmissions spanning channel c.
    std::vector<std::pair<SimTime, SimTime>> spans;
    double per_node_total = 0.0;
    std::map<int, double> per_node;
    for (const StormRecord& r : records) {
      if (r.channel.Low() <= c && c <= r.channel.High()) {
        spans.emplace_back(r.start, r.end);
        per_node[r.node] += ToUs(r.end - r.start);
        per_node_total += ToUs(r.end - r.start);
      }
    }
    std::sort(spans.begin(), spans.end());
    SimTime busy = 0;
    SimTime mid_busy = 0;
    SimTime covered_until = 0;
    for (const auto& [start, end] : spans) {
      const SimTime from = std::max(start, covered_until);
      if (end > from) {
        busy += end - from;
        mid_busy += std::max<SimTime>(0, std::min<SimTime>(end, 10001) - from);
        covered_until = end;
      }
    }
    const auto ci = static_cast<std::size_t>(c);
    EXPECT_EQ(books[ci].busy, ToUs(busy)) << "channel " << c;
    EXPECT_EQ(mid[ci].busy, ToUs(mid_busy)) << "channel " << c;
    double node_sum = 0.0;
    for (const auto& [node, total] : per_node) {
      const auto it = books[ci].per_node.find(node);
      ASSERT_NE(it, books[ci].per_node.end());
      EXPECT_EQ(it->second, total) << "channel " << c << " node " << node;
      node_sum += total;
    }
    EXPECT_EQ(node_sum, per_node_total);
  }
}

}  // namespace
}  // namespace whitefi
