// Integration tests: the full WhiteFi AP/client protocol running in the
// simulator — association, reporting, disconnection handling via the
// backup channel + chirps, voluntary adaptation, and the audio MOS model.
#include <gtest/gtest.h>

#include "audio/mos.h"
#include "core/ap.h"
#include "core/client.h"
#include "sim/traffic.h"
#include "spectrum/campus.h"

namespace whitefi {
namespace {

constexpr int kSsid = 7;

DeviceConfig NodeAt(double x, double y, const SpectrumMap& tv_map) {
  DeviceConfig c;
  c.position = {x, y};
  c.ssid = kSsid;
  c.tv_map = tv_map;
  return c;
}

ScannerParams FastScanner() {
  ScannerParams p;
  p.dwell = 100 * kTicksPerMs;
  p.airtime_noise_stddev = 0.005;
  return p;
}

struct Network {
  ApNode* ap = nullptr;
  std::vector<ClientNode*> clients;
};

Network MakeNetwork(World& world, const SpectrumMap& tv_map, int num_clients,
                    Channel main, Channel backup,
                    ApParams ap_params = ApParams{}) {
  Network net;
  ap_params.scanner = FastScanner();
  net.ap = &world.Create<ApNode>(NodeAt(0, 0, tv_map), ap_params, main, backup);
  ClientParams client_params;
  client_params.scanner = FastScanner();
  for (int i = 0; i < num_clients; ++i) {
    net.clients.push_back(&world.Create<ClientNode>(
        NodeAt(50.0 + 10.0 * i, 40.0, tv_map), client_params, main, backup,
        net.ap->NodeId()));
  }
  return net;
}

TEST(Protocol, ClientsStayAssociatedAndReport) {
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Network net = MakeNetwork(world, map, 2, main, backup);
  world.StartAll();
  world.RunFor(6.0);
  EXPECT_TRUE(net.clients[0]->connected());
  EXPECT_TRUE(net.clients[1]->connected());
  EXPECT_EQ(net.ap->NumKnownClients(), 2);
  EXPECT_EQ(net.ap->num_switches(), 0);  // No reason to move.
  EXPECT_EQ(net.ap->main_channel(), main);
}

TEST(Protocol, DownlinkTrafficFlows) {
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Network net = MakeNetwork(world, map, 2, main, backup);
  std::vector<int> dsts;
  for (auto* c : net.clients) dsts.push_back(c->NodeId());
  SaturatedSource downlink(*net.ap, dsts, 1000);
  world.StartAll();
  downlink.Start();
  world.RunFor(5.0);
  const double mbps =
      8.0 * static_cast<double>(world.AppBytesInSsid(kSsid)) / 5.0 / 1e6;
  EXPECT_GT(mbps, 3.0);  // 20 MHz channel actually saturating.
}

TEST(Protocol, MicOnOperatingChannelTriggersReassembly) {
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Network net = MakeNetwork(world, map, 2, main, backup);
  std::vector<int> dsts;
  for (auto* c : net.clients) dsts.push_back(c->NodeId());
  SaturatedSource downlink(*net.ap, dsts, 1000);
  world.StartAll();
  downlink.Start();
  // A wireless mic appears on TV channel 28 at t = 4 s and stays on.
  world.SetMicSchedule(
      {{IndexOfTvChannel(28), 4.0 * kSecond, 120.0 * kSecond}});
  world.RunFor(12.0);

  // The network vacated: no node's channel covers the mic channel.
  EXPECT_FALSE(net.ap->main_channel().Contains(IndexOfTvChannel(28)));
  EXPECT_GE(net.ap->num_switches(), 1);
  for (auto* client : net.clients) {
    EXPECT_TRUE(client->connected());
    EXPECT_EQ(client->TunedChannel(), net.ap->main_channel());
  }
  // The new channel avoids the whole 26-30 fragment minus... at minimum it
  // is usable under the observed map.
  SpectrumMap observed = map;
  observed.SetOccupied(IndexOfTvChannel(28));
  EXPECT_TRUE(observed.CanUse(net.ap->main_channel()));
}

TEST(Protocol, ThroughputResumesAfterMicWithinSeconds) {
  // Section 5.3: "the system is operational again after a lag of at most
  // 4 seconds" (3 s backup-scan interval + reassignment).
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Network net = MakeNetwork(world, map, 1, main, backup);
  SaturatedSource downlink(*net.ap, net.clients[0]->NodeId(), 1000);
  world.StartAll();
  downlink.Start();
  world.SetMicSchedule(
      {{IndexOfTvChannel(28), 4.0 * kSecond, 300.0 * kSecond}});
  world.RunFor(4.0);
  world.ResetAppBytes();
  world.RunFor(8.0);
  // Despite the outage, data flowed again within the 8 s window.
  EXPECT_GT(world.AppBytesInSsid(kSsid), 200000u);
  ASSERT_EQ(net.clients[0]->disconnect_events(), 1);
  ASSERT_EQ(net.clients[0]->outages().size(), 1u);
  // Reconnection took at most ~6 s (paper: ~4 s with a 3 s scan interval).
  EXPECT_LE(net.clients[0]->outages()[0], 6 * kTicksPerSec);
}

TEST(Protocol, ClientSideMicAlsoMovesTheNetwork) {
  // Only the client detects the mic (spatial variation): it chirps on the
  // backup channel; the AP picks it up with the secondary radio and moves.
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Network net = MakeNetwork(world, map, 1, main, backup);
  // A mic near the client only: the AP cannot sense it (spatial variation).
  world.AddMic({IndexOfTvChannel(28), 3.0 * kSecond, 600.0 * kSecond},
               {net.clients[0]->NodeId()});
  world.StartAll();
  world.RunFor(13.0);
  EXPECT_TRUE(net.clients[0]->connected());
  EXPECT_FALSE(net.ap->main_channel().Contains(IndexOfTvChannel(28)));
  EXPECT_EQ(net.clients[0]->TunedChannel(), net.ap->main_channel());
}

TEST(Protocol, StaticApNeverSwitches) {
  World world;
  const SpectrumMap map = Building5Map();
  ApParams params;
  params.adaptive = false;
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Network net = MakeNetwork(world, map, 1, main, backup, params);
  world.StartAll();
  world.SetMicSchedule(
      {{IndexOfTvChannel(28), 2.0 * kSecond, 60.0 * kSecond}});
  world.RunFor(8.0);
  EXPECT_EQ(net.ap->num_switches(), 0);
  EXPECT_EQ(net.ap->main_channel(), main);
}

TEST(Protocol, VoluntarySwitchAwayFromBackgroundTraffic) {
  World world;
  const SpectrumMap map = Building5Map();
  // Start the network on the 10 MHz fragment (33-35) while the 20 MHz
  // fragment (26-30) is idle: the assigner should voluntarily upgrade.
  const Channel main{IndexOfTvChannel(34), ChannelWidth::kW10};
  const Channel backup{IndexOfTvChannel(48), ChannelWidth::kW5};
  ApParams params;
  params.assignment_interval = 2 * kTicksPerSec;
  params.first_assignment_delay = 4 * kTicksPerSec;
  Network net = MakeNetwork(world, map, 1, main, backup, params);
  world.StartAll();
  world.RunFor(15.0);
  EXPECT_GE(net.ap->num_voluntary_switches(), 1);
  EXPECT_EQ(net.ap->main_channel().width, ChannelWidth::kW20);
  EXPECT_TRUE(net.clients[0]->connected());
  EXPECT_EQ(net.clients[0]->TunedChannel(), net.ap->main_channel());
}

// ---------------------------------------------------------------- audio ---

TEST(MicAudio, PaperAnchorPoint) {
  // 70-byte packets every 100 ms at -30 dBm cost 0.9 MOS (Section 2.3).
  const MicAudioModel model;
  EXPECT_NEAR(PredictMosDrop(model, 10.0, -30.0), 0.9, 1e-9);
  EXPECT_NEAR(PredictMicMos(model, 10.0, -30.0), model.clean_mos - 0.9, 1e-9);
}

TEST(MicAudio, CleanWithoutTraffic) {
  const MicAudioModel model;
  EXPECT_DOUBLE_EQ(PredictMicMos(model, 0.0, -30.0), model.clean_mos);
  EXPECT_DOUBLE_EQ(PredictMosDrop(model, -5.0, -30.0), 0.0);
}

TEST(MicAudio, MonotonicInRateAndPower) {
  const MicAudioModel model;
  EXPECT_LT(PredictMosDrop(model, 1.0, -30.0),
            PredictMosDrop(model, 10.0, -30.0));
  EXPECT_LT(PredictMosDrop(model, 10.0, -50.0),
            PredictMosDrop(model, 10.0, -30.0));
  EXPECT_LT(PredictMosDrop(model, 10.0, -30.0),
            PredictMosDrop(model, 10.0, 16.0));
}

TEST(MicAudio, HarmlessBelowPowerFloorAndSaturatesAtMosFloor) {
  const MicAudioModel model;
  EXPECT_DOUBLE_EQ(PredictMosDrop(model, 100.0, -90.0), 0.0);
  EXPECT_DOUBLE_EQ(PredictMicMos(model, 1e6, 16.0), model.floor_mos);
}

TEST(MicAudio, EvenSinglePacketPerSecondIsAudible) {
  // The paper's motivation: even sparse control packets audibly disturb
  // the mic — a renegotiation protocol on the mic's channel is not viable.
  const MicAudioModel model;
  EXPECT_TRUE(InterferenceAudible(model, 2.0, -30.0));
  EXPECT_FALSE(InterferenceAudible(model, 10.0, -80.0));
}

}  // namespace
}  // namespace whitefi
