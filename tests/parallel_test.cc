// Tests for the deterministic parallel trial runner (util/parallel) and
// its byte-identity contract: any --jobs N produces the same results as
// the serial loop, because Rngs are forked before dispatch and results
// are collected in index order.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "scenario.h"
#include "spectrum/campus.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace whitefi {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 4, 8}) {
    std::vector<std::atomic<int>> hits(257);
    ParallelFor(jobs, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, ZeroTasksIsANoop) {
  int calls = 0;
  ParallelFor(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelMap, ResultsArriveInIndexOrder) {
  for (int jobs : {1, 3, 7}) {
    const auto out = ParallelMap(jobs, std::size_t{100},
                                 [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMap, PreForkedRngsMatchSerialAtAnyJobCount) {
  // The canonical trial-loop shape: fork one Rng per trial serially, then
  // let each trial consume its own stream.  The draws must not depend on
  // the job count.
  auto run = [](int jobs) {
    Rng master(42);
    std::vector<Rng> rngs;
    for (int t = 0; t < 37; ++t) rngs.push_back(master.Fork());
    return ParallelMap(jobs, rngs.size(), [&](std::size_t i) {
      double acc = 0.0;
      for (int d = 0; d < 100; ++d) acc += rngs[i].Uniform(0.0, 1.0);
      return acc;
    });
  };
  const auto serial = run(1);
  for (int jobs : {2, 4, 8}) {
    const auto parallel = run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "trial " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelFor, PropagatesTheFirstException) {
  for (int jobs : {1, 4}) {
    EXPECT_THROW(
        ParallelFor(jobs, 16,
                    [](std::size_t i) {
                      if (i == 7) throw std::runtime_error("trial 7 failed");
                    }),
        std::runtime_error)
        << "jobs " << jobs;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4);
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<std::atomic<int>> hits(64);
    pool.Run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    const int total = std::accumulate(
        hits.begin(), hits.end(), 0,
        [](int acc, const std::atomic<int>& h) { return acc + h.load(); });
    EXPECT_EQ(total, 64);
  }
}

TEST(ParseJobs, ParsesCountsAndRejectsGarbage) {
  EXPECT_EQ(ParseJobs("1"), 1);
  EXPECT_EQ(ParseJobs("12"), 12);
  EXPECT_EQ(ParseJobs("0"), HardwareJobs());
  EXPECT_GE(HardwareJobs(), 1);
  EXPECT_THROW(ParseJobs("abc"), std::invalid_argument);
  EXPECT_THROW(ParseJobs("-3"), std::invalid_argument);
}

// The end-to-end contract at the scenario layer: an OPT candidate sweep —
// the hot loop the bench drivers parallelize — returns bit-equal
// throughput at jobs=4 and jobs=1.
TEST(ScenarioParallel, OptSweepIsJobCountInvariant) {
  bench::ScenarioConfig config;
  config.seed = 7;
  config.base_map = CampusSimulationMap();
  config.num_clients = 2;
  config.warmup_s = 0.5;
  config.measure_s = 1.0;
  const double serial =
      bench::OptStaticThroughput(config, ChannelWidth::kW10, 0.0, 1);
  const double parallel =
      bench::OptStaticThroughput(config, ChannelWidth::kW10, 0.0, 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(serial, 0.0);
}

}  // namespace
}  // namespace whitefi
