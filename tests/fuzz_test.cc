// Tests for the seed-fuzz harness: generator determinism, repro-bundle
// round-trips, replay identity under a weakened safety budget, the
// minimizer, and the named-substream seeding discipline.
#include <gtest/gtest.h>

#include <string>

#include "fuzz.h"
#include "scenario.h"
#include "scenario_file.h"
#include "util/rng.h"

namespace whitefi::bench {
namespace {

TEST(FuzzGenerator, SameSeedAndIndexSameBytes) {
  FuzzOptions options;
  options.root_seed = 11;
  EXPECT_EQ(GenerateFuzzScenario(options, 3), GenerateFuzzScenario(options, 3));
  EXPECT_NE(GenerateFuzzScenario(options, 3), GenerateFuzzScenario(options, 4));
  FuzzOptions other = options;
  other.root_seed = 12;
  EXPECT_NE(GenerateFuzzScenario(options, 3), GenerateFuzzScenario(other, 3));
}

TEST(FuzzGenerator, EveryTrialParsesAndLoads) {
  FuzzOptions options;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::string text = GenerateFuzzScenario(options, i);
    const ConfigFile config = ConfigFile::ParseString(text);
    EXPECT_NO_THROW(LoadScenario(config)) << text;
  }
}

TEST(FuzzBundle, ExpectBlockRoundTrips) {
  Violation v;
  v.at = 123456;
  v.invariant = "incumbent-safety";
  v.node = 2;
  v.channel = 7;
  v.detail = "tx over mic active+audible for 9us (budget 8us)";
  const std::string bundle = MakeReproBundle("seed = 1\nseconds = 2\n", v);
  const auto expect = BundleExpectation(ConfigFile::ParseString(bundle));
  ASSERT_TRUE(expect.has_value());
  EXPECT_EQ(expect->at, v.at);
  EXPECT_EQ(expect->invariant, v.invariant);
  EXPECT_EQ(expect->node, v.node);
  EXPECT_EQ(expect->channel, v.channel);
  EXPECT_EQ(expect->detail, v.detail);
}

TEST(FuzzBundle, RebundlingReplacesExpectBlock) {
  Violation v1;
  v1.invariant = "incumbent-safety";
  v1.detail = "first";
  Violation v2;
  v2.invariant = "chirp-liveness";
  v2.detail = "second";
  const std::string once = MakeReproBundle("seed = 1\n", v1);
  const std::string twice = MakeReproBundle(once, v2);
  // Exactly one expect block, and it is the new one.
  std::size_t count = 0;
  for (std::size_t pos = twice.find("expect.invariant");
       pos != std::string::npos;
       pos = twice.find("expect.invariant", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
  const auto expect = BundleExpectation(ConfigFile::ParseString(twice));
  ASSERT_TRUE(expect.has_value());
  EXPECT_EQ(expect->invariant, "chirp-liveness");
}

TEST(FuzzBundle, ScenarioWithoutExpectBlockIsNotABundle) {
  EXPECT_FALSE(
      BundleExpectation(ConfigFile::ParseString("seed = 1\n")).has_value());
  const ReplayOutcome outcome = ReplayBundleText("seed = 1\nseconds = 1\n");
  EXPECT_FALSE(outcome.reproduced);
}

TEST(FuzzSeeding, ScenarioFaultSeedIsANamedSubstream) {
  // The fault injector must never share the world's root stream: its seed
  // derives through the named substream unless explicitly pinned.
  ScenarioConfig config;
  config.seed = 9;
  EXPECT_EQ(ScenarioFaultSeed(config), DeriveSeed(9, "scenario.faults"));
  EXPECT_NE(ScenarioFaultSeed(config), config.seed);
  config.fault_seed = 0xABCD;
  EXPECT_EQ(ScenarioFaultSeed(config), 0xABCDu);
}

// The end-to-end pipeline under a deliberately weakened budget: some early
// trial must violate, its bundle must replay to the identical violation,
// and the minimized bundle must still reproduce.  This is the self-test
// that the soak's failure path (detect -> bundle -> replay) works at all.
TEST(FuzzPipeline, WeakBudgetViolationBundlesReplaysAndMinimizes) {
  FuzzOptions options;
  options.root_seed = 1;
  options.safety_budget_ms = 1;  // Nothing real vacates within 1 ms.

  std::string failing_text;
  Violation first;
  for (std::uint64_t i = 0; i < 5 && failing_text.empty(); ++i) {
    const std::string text = GenerateFuzzScenario(options, i);
    const AuditedRun run = RunAuditedScenarioText(text);
    // The audit.* knob wired by the generator must reach the auditor.
    EXPECT_EQ(run.safety_budget, 1 * kTicksPerMs);
    if (!run.violations.empty()) {
      failing_text = text;
      first = run.violations.front();
    }
  }
  ASSERT_FALSE(failing_text.empty())
      << "no violation in 5 trials under a 1 ms budget";

  const std::string bundle = MakeReproBundle(failing_text, first);
  const ReplayOutcome outcome = ReplayBundleText(bundle);
  EXPECT_TRUE(outcome.reproduced) << outcome.message;
  ASSERT_TRUE(outcome.got.has_value());
  EXPECT_EQ(outcome.got->at, first.at);
  EXPECT_EQ(outcome.got->node, first.node);
  EXPECT_EQ(outcome.got->channel, first.channel);

  int steps = 0;
  const std::string minimized = MinimizeBundle(bundle, &steps);
  const ReplayOutcome min_outcome = ReplayBundleText(minimized);
  EXPECT_TRUE(min_outcome.reproduced) << min_outcome.message;
  // Whatever the minimizer kept, the bundle must stay self-contained: the
  // expect block was refreshed from the minimized run.
  const auto min_expect =
      BundleExpectation(ConfigFile::ParseString(minimized));
  ASSERT_TRUE(min_expect.has_value());
  EXPECT_EQ(min_expect->invariant, first.invariant);
}

TEST(FuzzPipeline, CleanRunHasNoViolationsAndExactBooks) {
  // One generated trial under the DEFAULT budget must hold every invariant
  // (the 200-seed sweep lives in bench_fuzz_soak; this is the smoke).
  FuzzOptions options;
  options.root_seed = 1;
  const AuditedRun run =
      RunAuditedScenarioText(GenerateFuzzScenario(options, 0));
  EXPECT_TRUE(run.ok()) << run.violations.front().ToString();
  EXPECT_GT(run.result.aggregate_mbps, 0.0);
}

}  // namespace
}  // namespace whitefi::bench
