// Edge cases of the WhiteFi protocol machines: backup-channel loss,
// secondary backups, rescue of lost clients, client expiry, priority
// queueing of control frames, and whole-band outages.
#include <gtest/gtest.h>

#include "core/ap.h"
#include "core/client.h"
#include "sim/traffic.h"
#include "spectrum/campus.h"

namespace whitefi {
namespace {

constexpr int kSsid = 5;

DeviceConfig NodeAt(double x, double y, const SpectrumMap& map) {
  DeviceConfig c;
  c.position = {x, y};
  c.ssid = kSsid;
  c.tv_map = map;
  return c;
}

ScannerParams FastScanner() {
  ScannerParams p;
  p.dwell = 100 * kTicksPerMs;
  p.airtime_noise_stddev = 0.0;
  return p;
}

struct Net {
  ApNode* ap;
  ClientNode* client;
};

Net MakeNet(World& world, const SpectrumMap& map, Channel main,
            Channel backup) {
  ApParams ap_params;
  ap_params.scanner = FastScanner();
  ClientParams client_params;
  client_params.scanner = FastScanner();
  Net net;
  net.ap = &world.Create<ApNode>(NodeAt(0, 0, map), ap_params, main, backup);
  net.client = &world.Create<ClientNode>(NodeAt(120, 60, map), client_params,
                                         main, backup, net.ap->NodeId());
  return net;
}

TEST(Edge, MicOnBackupChannelOnlyPicksFreshBackup) {
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Net net = MakeNet(world, map, main, backup);
  world.StartAll();
  // Mic lands on the backup channel (39) only.
  world.SetMicSchedule({{IndexOfTvChannel(39), 2.0 * kSecond,
                         600.0 * kSecond}});
  world.RunFor(8.0);
  // Operating channel untouched; backup moved off channel 39.
  EXPECT_EQ(net.ap->main_channel(), main);
  EXPECT_FALSE(net.ap->backup_channel().Contains(IndexOfTvChannel(39)));
  EXPECT_TRUE(net.client->connected());
}

TEST(Edge, MicOnMainAndBackupUsesSecondaryBackupAndSweepRescue) {
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Net net = MakeNet(world, map, main, backup);
  world.StartAll();
  world.RunFor(2.0);
  // Mics hit the operating channel AND the backup channel simultaneously,
  // audible only at the client: it must fall back to a secondary backup
  // (the lowest free channel it observes) and rely on the AP's sweeping
  // scanner to find its chirps there.
  const std::vector<int> only_client{net.client->NodeId()};
  world.AddMic({IndexOfTvChannel(28), 3.0 * kSecond, 600.0 * kSecond},
               only_client);
  world.AddMic({IndexOfTvChannel(39), 3.0 * kSecond, 600.0 * kSecond},
               only_client);
  world.RunFor(20.0);
  EXPECT_TRUE(net.client->connected());
  EXPECT_FALSE(net.ap->main_channel().Contains(IndexOfTvChannel(28)));
  EXPECT_EQ(net.client->TunedChannel(), net.ap->main_channel());
  EXPECT_GE(net.client->disconnect_events(), 1);
}

TEST(Edge, ClientExpiresAfterSilence) {
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  ApParams ap_params;
  ap_params.scanner = FastScanner();
  ap_params.client_expiry = 5 * kTicksPerSec;
  ApNode& ap =
      world.Create<ApNode>(NodeAt(0, 0, map), ap_params, main, backup);
  // A "client" that reports once and then powers off entirely (a real
  // ClientNode would keep chirping and be rescued — correct behavior, but
  // not what we want to test here).
  DeviceConfig ghost_config = NodeAt(100, 0, map);
  ghost_config.initial_channel = main;
  Device& ghost = world.Create<Device>(ghost_config);
  world.StartAll();
  Frame report;
  report.type = FrameType::kReport;
  report.dst = ap.NodeId();
  report.bytes = 120;
  report.payload = ReportInfo{map, EmptyBandObservation()};
  ghost.mac().Enqueue(report);
  world.RunFor(2.0);
  EXPECT_EQ(ap.NumKnownClients(), 1);
  ghost.SwitchChannel(Channel{0, ChannelWidth::kW5});  // Gone for good.
  world.RunFor(10.0);
  // BuildInputs prunes on a later assignment evaluation.
  EXPECT_EQ(ap.NumKnownClients(), 0);
}

TEST(Edge, WholeBandMicOutageRecoversWhenMicsLeave) {
  World world;
  // Tiny band: only channels 26-28 free.
  const SpectrumMap map = SpectrumMap::FromFreeTvChannels({26, 27, 28});
  const Channel main{IndexOfTvChannel(27), ChannelWidth::kW10};
  const Channel backup{IndexOfTvChannel(27), ChannelWidth::kW5};
  Net net = MakeNet(world, map, main, backup);
  world.StartAll();
  // Mics cover the entire free band for 6 seconds.
  for (int tv : {26, 27, 28}) {
    world.AddMic({IndexOfTvChannel(tv), 2.0 * kSecond, 8.0 * kSecond});
  }
  world.RunFor(20.0);
  // After the mics leave, the network is back on a usable channel.
  EXPECT_TRUE(map.CanUse(net.ap->main_channel()));
  EXPECT_FALSE(world.MicActiveNow(IndexOfTvChannel(27)));
  EXPECT_TRUE(net.client->connected());
  EXPECT_EQ(net.client->TunedChannel(), net.ap->main_channel());
}

TEST(Edge, StragglerClientRescuedAfterMissedSwitch) {
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Net net = MakeNet(world, map, main, backup);
  world.StartAll();
  world.RunFor(2.0);
  // Force the client to miss an AP move: retune it off-channel while the
  // AP reacts to a mic (audible only to the AP).
  world.AddMic({IndexOfTvChannel(28), 2.5 * kSecond, 600.0 * kSecond},
               {net.ap->NodeId()});
  net.client->SwitchChannel(Channel{IndexOfTvChannel(48), ChannelWidth::kW5});
  world.RunFor(20.0);
  // The client timed out, chirped on the backup channel, and was rescued.
  EXPECT_TRUE(net.client->connected());
  EXPECT_EQ(net.client->TunedChannel(), net.ap->main_channel());
  EXPECT_GE(net.client->disconnect_events(), 1);
}

// ------------------------------------------------------------------ mac ---

TEST(Edge, EnqueueFrontJumpsQueueBehindInFlightFrame) {
  World world;
  const Channel ch{10, ChannelWidth::kW20};
  DeviceConfig config;
  config.initial_channel = ch;
  Device& a = world.Create<Device>(config);
  config.position = {50, 0};
  Device& b = world.Create<Device>(config);

  std::vector<FrameType> received;
  b.AddReceiveHook([&](const Frame& f) { received.push_back(f.type); });

  Frame data;
  data.type = FrameType::kData;
  data.dst = b.NodeId();
  data.bytes = 1028;
  a.mac().Enqueue(data);
  a.mac().Enqueue(data);
  Frame beacon;
  beacon.type = FrameType::kBeacon;
  beacon.dst = kBroadcastId;
  beacon.bytes = kBeaconBytes;
  a.mac().EnqueueFront(beacon);
  EXPECT_EQ(a.mac().CountQueued(FrameType::kBeacon), 1u);
  world.RunFor(0.5);
  ASSERT_EQ(received.size(), 3u);
  // The beacon overtook the second data frame (first data may already have
  // been at the head).
  EXPECT_EQ(received[0], FrameType::kBeacon);
  EXPECT_EQ(received[1], FrameType::kData);
  EXPECT_EQ(received[2], FrameType::kData);
}

TEST(Edge, EnqueueFrontNeverDisplacesFrameInService) {
  World world;
  const Channel ch{10, ChannelWidth::kW5};
  DeviceConfig config;
  config.initial_channel = ch;
  Device& a = world.Create<Device>(config);
  config.position = {50, 0};
  Device& b = world.Create<Device>(config);
  std::vector<FrameType> received;
  b.AddReceiveHook([&](const Frame& f) { received.push_back(f.type); });

  Frame data;
  data.type = FrameType::kData;
  data.dst = b.NodeId();
  data.bytes = 1028;
  a.mac().Enqueue(data);
  // Let the data frame get on air, then push a control frame.
  world.RunFor(0.002);
  Frame announce;
  announce.type = FrameType::kChannelSwitch;
  announce.dst = kBroadcastId;
  announce.bytes = kBeaconBytes;
  a.mac().EnqueueFront(announce);
  world.RunFor(0.5);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], FrameType::kData);  // In-flight head finished first.
  EXPECT_EQ(received[1], FrameType::kChannelSwitch);
}

TEST(Edge, BeaconLoopNeverAccumulatesBacklog) {
  // With the channel jammed by a foreign saturated pair, the AP's beacon
  // loop must not grow its queue unboundedly (one pending beacon max).
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  ApParams ap_params;
  ap_params.scanner = FastScanner();
  ApNode& ap =
      world.Create<ApNode>(NodeAt(0, 0, map), ap_params, main, backup);
  DeviceConfig jam;
  jam.ssid = 99;
  jam.initial_channel = main;
  jam.position = {20, 0};
  Device& jtx = world.Create<Device>(jam);
  jam.position = {25, 0};
  Device& jrx = world.Create<Device>(jam);
  SaturatedSource jammer(jtx, jrx.NodeId(), 1500);
  world.StartAll();
  jammer.Start();
  world.RunFor(5.0);
  EXPECT_LE(ap.mac().CountQueued(FrameType::kBeacon), 1u);
}

TEST(Edge, ParamsAreValidatedAtConstruction) {
  // A bad parameter must fail loudly when the node is built, not corrupt a
  // simulation minutes in.
  World world;
  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};

  ClientParams bad_client;
  bad_client.chirp_jitter = 1.0;  // Must lie in [0, 1).
  EXPECT_THROW(world.Create<ClientNode>(NodeAt(0, 0, map), bad_client, main,
                                        backup, 1),
               std::invalid_argument);
  bad_client = ClientParams{};
  bad_client.chirp_interval_max = bad_client.chirp_interval - 1;
  EXPECT_THROW(world.Create<ClientNode>(NodeAt(0, 0, map), bad_client, main,
                                        backup, 1),
               std::invalid_argument);

  ClientParams bad_scanner;
  bad_scanner.scanner.dwell = 0;
  EXPECT_THROW(world.Create<ClientNode>(NodeAt(0, 0, map), bad_scanner, main,
                                        backup, 1),
               std::invalid_argument);
  ScannerParams outage_retry;
  outage_retry.outage_retry_interval = 0;
  EXPECT_THROW(ValidateScannerParams(outage_retry), std::invalid_argument);

  DeviceConfig bad_mac = NodeAt(0, 0, map);
  bad_mac.mac.cw_max = bad_mac.mac.cw_min - 1;
  EXPECT_THROW(world.Create<Device>(bad_mac), std::invalid_argument);
  bad_mac = NodeAt(0, 0, map);
  bad_mac.mac.retry_limit = 0;
  EXPECT_THROW(world.Create<Device>(bad_mac), std::invalid_argument);

  // The world stays usable after rejected constructions.
  ApNode& ap =
      world.Create<ApNode>(NodeAt(0, 0, map), ApParams{}, main, backup);
  EXPECT_GT(ap.NodeId(), 0);
}

TEST(Edge, SecondaryBackupAlsoJammedFallsThroughToNextFree) {
  // Both rendezvous points die at once: the advertised backup channel AND
  // the deterministic secondary backup (the lowest observed free channel)
  // host incumbents audible only to the client.  SelectSecondaryBackup
  // must fall through to the next free channel rather than parking the
  // client on jammed spectrum, and the AP's sweep must still find it.
  World world;
  const SpectrumMap map = Building5Map();  // Lowest free channel: TV 26.
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};
  Net net = MakeNet(world, map, main, backup);
  world.StartAll();
  world.RunFor(2.0);
  const std::vector<int> only_client{net.client->NodeId()};
  for (int tv : {28, 39, 26}) {
    world.AddMic({IndexOfTvChannel(tv), 3.0 * kSecond, 600.0 * kSecond},
                 only_client);
  }
  world.RunFor(25.0);
  EXPECT_TRUE(net.client->connected());
  EXPECT_GE(net.client->disconnect_events(), 1);
  EXPECT_EQ(net.client->TunedChannel(), net.ap->main_channel());
  // The network settled clear of every jammed channel the client reported.
  for (int tv : {28, 39, 26}) {
    EXPECT_FALSE(net.ap->main_channel().Contains(IndexOfTvChannel(tv)));
  }
}

}  // namespace
}  // namespace whitefi
