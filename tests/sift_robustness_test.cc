// Robustness tests for the SIFT pipeline: noise sweeps, false positives,
// threshold sensitivity, concurrent transmissions, and chirps embedded in
// data traffic.
#include <gtest/gtest.h>

#include "phy/signal.h"
#include "sift/airtime.h"
#include "sift/chirp.h"
#include "sift/detector.h"
#include "sift/matcher.h"

namespace whitefi {
namespace {

// ------------------------------------------------------- false positives --

TEST(SiftRobustness, NoFalsePositivesOnLongNoiseTrace) {
  // One simulated second of pure noise at the default floor: the threshold
  // sits ~4x above the noise mean, so windows must never cross it.
  SignalSynthesizer synth(SignalParams{}, Rng(1));
  SiftDetector detector{SiftParams{}};
  EXPECT_TRUE(detector.Detect(synth.Synthesize({}, 1'000'000.0)).empty());
}

class NoiseFloorSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseFloorSweep, FalsePositiveRateStaysTinyBelowThreshold) {
  SignalParams params;
  params.noise_sigma = GetParam();
  SignalSynthesizer synth(params, Rng(2));
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(synth.Synthesize({}, 300'000.0));
  // Spurious one-window blips may appear as the floor approaches the
  // threshold, but never packet-length artifacts.
  for (const auto& b : bursts) {
    EXPECT_LT(b.Duration(), 40.0) << "noise sigma " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseFloorSweep,
                         ::testing::Values(0.6, 1.2, 1.8, 2.4));

// ------------------------------------------------------ noise resilience --

class NoisyDetection
    : public ::testing::TestWithParam<std::tuple<ChannelWidth, double>> {};

TEST_P(NoisyDetection, DetectionSurvivesElevatedNoiseFloor) {
  const auto [width, noise_sigma] = GetParam();
  SignalParams params;
  params.noise_sigma = noise_sigma;
  params.deep_ramp_probability = 0.0;
  const PhyTiming t = PhyTiming::ForWidth(width);
  SignalSynthesizer synth(params, Rng(3));
  const Us spacing =
      t.FrameDuration(1000) + t.Sifs() + t.AckDuration() + 2500.0;
  const auto schedule = MakeCbrSchedule(t, 20, spacing, 1000, 400.0);
  const auto samples = synth.Synthesize(schedule, 20 * spacing + 2000.0);
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(samples);
  // At bench attenuation the signal dwarfs even a 2x noise floor.  A hot
  // floor may add short spurious blips, but every real burst survives.
  int real_bursts = 0;
  for (const auto& b : bursts) real_bursts += b.Duration() > 40.0 ? 1 : 0;
  EXPECT_EQ(real_bursts, 40);
  const auto inferred = PatternMatcher().DominantWidth(bursts);
  ASSERT_TRUE(inferred.has_value());
  EXPECT_EQ(*inferred, width);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NoisyDetection,
    ::testing::Combine(::testing::ValuesIn(kAllWidths),
                       ::testing::Values(1.2, 2.4)));

// --------------------------------------------------- threshold sensitivity

TEST(SiftRobustness, ThresholdTradesSensitivityForFalsePositives) {
  // At 94 dB attenuation the signal envelope mean is ~7.4: a threshold of
  // 6 detects, a threshold of 12 does not.  (This is the knob behind the
  // Figure 7 cliff position.)
  SignalParams params;
  params.attenuation_db = 94.0;
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW10);
  const auto schedule = MakeCbrSchedule(t, 10, 8000.0, 1000, 500.0);

  SignalSynthesizer synth_low(params, Rng(4));
  SiftParams low;
  low.threshold = 6.0;
  const auto detected_low = SiftDetector(low).Detect(
      synth_low.Synthesize(schedule, 10 * 8000.0 + 2000.0));
  EXPECT_GE(detected_low.size(), 10u);

  SignalSynthesizer synth_high(params, Rng(4));
  SiftParams high;
  high.threshold = 12.0;
  const auto detected_high = SiftDetector(high).Detect(
      synth_high.Synthesize(schedule, 10 * 8000.0 + 2000.0));
  EXPECT_LT(detected_high.size(), detected_low.size() / 2);
}

// ------------------------------------------------ concurrent transmissions

TEST(SiftRobustness, OverlappingTransmittersDegradeGracefully) {
  // Two transmitters whose exchanges overlap in time: SIFT sees merged
  // bursts and may fail to match, but must not *mis*-classify the width
  // when a clean majority of exchanges exists.
  const PhyTiming t20 = PhyTiming::ForWidth(ChannelWidth::kW20);
  const PhyTiming t5 = PhyTiming::ForWidth(ChannelWidth::kW5);
  std::vector<Burst> bursts;
  // 10 clean 20 MHz exchanges...
  auto clean = MakeCbrSchedule(t20, 10, 6000.0, 1000, 500.0);
  bursts.insert(bursts.end(), clean.begin(), clean.end());
  // ...plus one long 5 MHz frame smeared over two of them.
  bursts.push_back(Burst{3000.0, t5.FrameDuration(1000), false, 1.0});
  SignalSynthesizer synth(SignalParams{}, Rng(5));
  const auto samples = synth.Synthesize(bursts, 10 * 6000.0 + 2000.0);
  SiftDetector detector{SiftParams{}};
  const auto inferred =
      PatternMatcher().DominantWidth(detector.Detect(samples));
  ASSERT_TRUE(inferred.has_value());
  EXPECT_EQ(*inferred, ChannelWidth::kW20);
}

TEST(SiftRobustness, BackToBackExchangesFromTwoNodesAllMatch) {
  // Alternating transmitters, no overlap: every exchange matches.
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW10);
  std::vector<Burst> schedule;
  Us at = 300.0;
  for (int i = 0; i < 12; ++i) {
    const auto exchange = MakeDataAckExchange(t, at, 600 + 50 * (i % 3));
    schedule.insert(schedule.end(), exchange.begin(), exchange.end());
    at = schedule.back().start + schedule.back().duration + t.Difs() + 400.0;
  }
  SignalSynthesizer synth(SignalParams{}, Rng(6));
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(synth.Synthesize(schedule, at + 1000.0));
  EXPECT_EQ(PatternMatcher().MatchAll(bursts).size(), 12u);
}

// -------------------------------------------------- chirps inside traffic -

TEST(SiftRobustness, ChirpDecodableAmidForeignTraffic) {
  // A chirp lands between a foreign network's data exchanges on the same
  // band.  Any burst whose length happens to fall on a codec symbol will
  // alias (length coding cannot tell a chirp from a coincidentally-sized
  // data frame — that is why the AP filters on its own SSID code and a
  // foreign alias only costs a wasted main-radio visit, paper 4.3).  The
  // contract: the real chirp decodes to the right id, and no foreign
  // burst aliases to *our* id here.
  const ChirpCodec codec;
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  std::vector<Burst> schedule = MakeCbrSchedule(t, 6, 9000.0, 1000, 200.0);
  const int ssid = 29;
  schedule.push_back(Burst{4500.0, codec.Encode(ssid), false, 1.0});
  SignalSynthesizer synth(SignalParams{}, Rng(7));
  SiftDetector detector{SiftParams{}};
  const auto bursts =
      detector.Detect(synth.Synthesize(schedule, 6 * 9000.0 + 2000.0));
  int ours = 0;
  for (const auto& b : bursts) {
    if (const auto id = codec.Decode(b)) ours += *id == ssid ? 1 : 0;
  }
  EXPECT_EQ(ours, 1);
}

// ------------------------------------------------------- airtime extremes -

TEST(SiftRobustness, AirtimeSaturatesAtFullyBusyChannel) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW5);
  // Back-to-back frames with only SIFS-sized gaps: airtime ~ 1.
  std::vector<Burst> schedule;
  Us at = 100.0;
  for (int i = 0; i < 30; ++i) {
    schedule.push_back(Burst{at, t.FrameDuration(1200), true, 1.0});
    at += t.FrameDuration(1200) + t.Sifs();
  }
  SignalParams params;
  params.deep_ramp_probability = 0.0;
  SignalSynthesizer synth(params, Rng(8));
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(synth.Synthesize(schedule, at + 200.0));
  EXPECT_GT(BusyAirtimeFraction(bursts, 0.0, at + 200.0), 0.93);
}

}  // namespace
}  // namespace whitefi
