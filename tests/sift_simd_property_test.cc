// Property tests for the SIFT kernel byte-identity contract
// (src/sift/kernel.h): for any input trace, any chunking, and any window,
// the scalar kernel, the AVX2 kernel, and the batched scanner produce
// bit-equal DetectedBurst vectors.
//
// The traces deliberately include the kernel's worst corners: samples
// exactly at the threshold (the > compare's edge), denormal and zero
// stretches (FTZ/DAZ would break identity if anything set them), quiet
// noise-floor runs (the SIMD group/deep-quiet skips), and dense bursts.
// Runs under ASan/UBSan in CI like every other test.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "sift/batch.h"
#include "sift/detector.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace whitefi {
namespace {

/// Exact comparison: the contract is byte-identity, not tolerance.
void ExpectIdentical(const std::vector<DetectedBurst>& a,
                     const std::vector<DetectedBurst>& b,
                     const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start) << label << " burst " << i;
    EXPECT_EQ(a[i].end, b[i].end) << label << " burst " << i;
    EXPECT_EQ(a[i].peak_average, b[i].peak_average)
        << label << " burst " << i;
  }
}

/// A randomized trace exercising the kernel's decision edges: quiet
/// stretches, dense bursts, threshold-edge samples, zeros, denormals.
std::vector<double> AdversarialTrace(Rng& rng, std::size_t length,
                                     double threshold) {
  std::vector<double> trace;
  trace.reserve(length);
  while (trace.size() < length) {
    const int mode = rng.UniformInt(0, 5);
    const int span = rng.UniformInt(1, 40);
    for (int i = 0; i < span && trace.size() < length; ++i) {
      switch (mode) {
        case 0:  // Quiet noise floor (exercises the group/deep skips).
          trace.push_back(rng.Uniform(0.0, threshold * 0.5));
          break;
        case 1:  // Strong burst.
          trace.push_back(rng.Uniform(threshold * 2.0, threshold * 50.0));
          break;
        case 2:  // Hovering around the threshold, including exactly at it
                 // (the > compare must break ties identically).
          trace.push_back(rng.Bernoulli(0.3)
                              ? threshold
                              : rng.Uniform(threshold * 0.9, threshold * 1.1));
          break;
        case 3:  // Zeros.
          trace.push_back(0.0);
          break;
        case 4:  // Denormals (identity requires FTZ/DAZ stay off).
          trace.push_back(4.9e-324 * (1 + rng.UniformInt(0, 7)));
          break;
        default:  // Single spike then silence.
          trace.push_back(threshold * 10.0);
          for (int j = 0; j < 8 && trace.size() < length; ++j) {
            trace.push_back(0.0);
          }
          break;
      }
    }
  }
  return trace;
}

/// Runs `trace` through a detector in random chunks.
std::vector<DetectedBurst> DetectChunked(SiftDetector& detector,
                                         const std::vector<double>& trace,
                                         Rng& rng) {
  std::size_t i = 0;
  while (i < trace.size()) {
    const auto n = std::min<std::size_t>(
        static_cast<std::size_t>(rng.UniformInt(1, 3000)), trace.size() - i);
    detector.ProcessBlock({trace.data() + i, n});
    i += n;
  }
  detector.Flush();
  return detector.TakeBursts();
}

/// The vector kernels this host can execute (kSimd resolves to the widest
/// one; forcing each narrower flavor keeps them all covered).
std::vector<SiftKernelChoice> HostVectorKernels() {
  std::vector<SiftKernelChoice> kernels;
  if (CpuSupportsAvx2()) kernels.push_back(SiftKernelChoice::kAvx2);
  if (CpuSupportsAvx512()) kernels.push_back(SiftKernelChoice::kAvx512);
  return kernels;
}

TEST(SiftSimdProperty, ScalarAndSimdAreByteIdentical) {
  const auto kernels = HostVectorKernels();
  if (kernels.empty()) GTEST_SKIP() << "host lacks AVX2";
  Rng rng(20260808);
  for (int round = 0; round < 40; ++round) {
    SiftParams params;
    params.window = rng.UniformInt(2, 9);
    const auto trace = AdversarialTrace(
        rng, static_cast<std::size_t>(rng.UniformInt(100, 20000)),
        params.threshold);

    SiftParams scalar_params = params;
    scalar_params.kernel = SiftKernelChoice::kScalar;
    const Rng chunk_rng_base = rng.Fork();
    for (const SiftKernelChoice kernel : kernels) {
      SiftParams simd_params = params;
      simd_params.kernel = kernel;
      const std::string label = std::string("kernel ") +
                                SiftDetector{simd_params}.kernel_name() +
                                " round " + std::to_string(round);

      // One-shot comparison.
      SiftDetector scalar_one{scalar_params};
      SiftDetector simd_one{simd_params};
      ExpectIdentical(scalar_one.Detect(trace), simd_one.Detect(trace),
                      "one-shot " + label);

      // Random (different) chunkings on each side.
      SiftDetector scalar_chunked{scalar_params};
      SiftDetector simd_chunked{simd_params};
      Rng chunk_rng_a = chunk_rng_base;
      Rng chunk_rng_b = chunk_rng_a.Fork();
      ExpectIdentical(DetectChunked(scalar_chunked, trace, chunk_rng_a),
                      DetectChunked(simd_chunked, trace, chunk_rng_b),
                      "chunked " + label);
    }
  }
}

TEST(SiftSimdProperty, BatchMatchesIndependentDetectors) {
  Rng rng(424242);
  for (int round = 0; round < 10; ++round) {
    SiftParams params;
    params.window = rng.UniformInt(2, 9);
    const auto lanes = static_cast<std::size_t>(rng.UniformInt(1, 6));

    std::vector<std::vector<double>> traces;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      traces.push_back(AdversarialTrace(
          rng, static_cast<std::size_t>(rng.UniformInt(100, 8000)),
          params.threshold));
    }

    // Feed the batch and the independent detectors the same per-lane
    // random chunkings, interleaved across lanes for the batch.
    SiftBatch batch(params, lanes);
    std::vector<SiftDetector> independent;
    independent.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      independent.emplace_back(params);
    }

    std::vector<std::size_t> cursor(lanes, 0);
    Rng chunk_rng = rng.Fork();
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        if (cursor[lane] >= traces[lane].size()) continue;
        const auto n = std::min<std::size_t>(
            static_cast<std::size_t>(chunk_rng.UniformInt(1, 2000)),
            traces[lane].size() - cursor[lane]);
        const std::span<const double> block{
            traces[lane].data() + cursor[lane], n};
        batch.ProcessBlock(lane, block);
        independent[lane].ProcessBlock(block);
        cursor[lane] += n;
        progress = true;
      }
    }
    batch.FlushAll();
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      independent[lane].Flush();
      ExpectIdentical(batch.TakeBursts(lane), independent[lane].TakeBursts(),
                      "round " + std::to_string(round) + " lane " +
                          std::to_string(lane));
    }
  }
}

TEST(SiftSimdProperty, BatchDetectAllMatchesOneShotDetectors) {
  Rng rng(5150);
  SiftParams params;
  const auto lanes = static_cast<std::size_t>(4);
  std::vector<std::vector<double>> traces;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    traces.push_back(AdversarialTrace(rng, 12000, params.threshold));
  }
  std::vector<std::span<const double>> spans(traces.begin(), traces.end());

  SiftBatch batch(params, lanes);
  const auto batched = batch.DetectAll(spans);
  ASSERT_EQ(batched.size(), lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    SiftDetector detector{params};
    ExpectIdentical(batched[lane], detector.Detect(traces[lane]),
                    "lane " + std::to_string(lane));
  }
}

TEST(SiftSimdProperty, ForcedVectorKernelsThrowWhereUnsupported) {
  SiftParams params;
  params.kernel = SiftKernelChoice::kSimd;
  if (CpuSupportsAvx2()) {
    EXPECT_NO_THROW(SiftDetector{params});
  } else {
    EXPECT_THROW(SiftDetector{params}, std::invalid_argument);
  }
  params.kernel = SiftKernelChoice::kAvx2;
  if (CpuSupportsAvx2()) {
    EXPECT_NO_THROW(SiftDetector{params});
  } else {
    EXPECT_THROW(SiftDetector{params}, std::invalid_argument);
  }
  params.kernel = SiftKernelChoice::kAvx512;
  if (CpuSupportsAvx512()) {
    EXPECT_NO_THROW(SiftDetector{params});
  } else {
    EXPECT_THROW(SiftDetector{params}, std::invalid_argument);
  }
}

TEST(SiftSimdProperty, KernelNameReflectsChoice) {
  SiftParams scalar;
  scalar.kernel = SiftKernelChoice::kScalar;
  EXPECT_STREQ(SiftDetector{scalar}.kernel_name(), "scalar");
  if (CpuSupportsAvx2()) {
    // kSimd is the widest vector kernel the host can execute.
    SiftParams simd;
    simd.kernel = SiftKernelChoice::kSimd;
    const char* expected =
        CpuSupportsAvx512() ? "simd-avx512" : "simd-avx2";
    EXPECT_STREQ(SiftDetector{simd}.kernel_name(), expected);
    SiftBatch batch(simd, 2);
    EXPECT_STREQ(batch.kernel_name(), expected);

    SiftParams avx2;
    avx2.kernel = SiftKernelChoice::kAvx2;
    EXPECT_STREQ(SiftDetector{avx2}.kernel_name(), "simd-avx2");
  }
}

}  // namespace
}  // namespace whitefi
