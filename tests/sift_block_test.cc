// Chunking-invariance suite for the SIFT block fast path.
//
// The detector's contract is that burst output is a function of the
// sample STREAM alone: feeding a trace through ProcessBlock in chunks of
// any size — including one sample at a time via Step — must produce
// byte-identical bursts (exact double equality on start/end/peak, not a
// tolerance).  These tests pin that contract across chunk sizes, window
// widths (both the unrolled W=5 kernel and the runtime-window kernel),
// threshold-straddling edge patterns, and Flush boundaries.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "phy/signal.h"
#include "sift/detector.h"
#include "util/rng.h"

namespace whitefi {
namespace {

std::vector<DetectedBurst> DetectChunked(const SiftParams& params,
                                         const std::vector<double>& samples,
                                         std::size_t chunk) {
  SiftDetector detector(params);
  for (std::size_t i = 0; i < samples.size(); i += chunk) {
    const std::size_t n = std::min(chunk, samples.size() - i);
    detector.ProcessBlock({samples.data() + i, n});
  }
  detector.Flush();
  return detector.TakeBursts();
}

std::vector<DetectedBurst> DetectStepwise(const SiftParams& params,
                                          const std::vector<double>& samples) {
  SiftDetector detector(params);
  for (double s : samples) detector.Step(s);
  detector.Flush();
  return detector.TakeBursts();
}

/// Exact equality: the invariance claim is bit-level, so EXPECT_EQ on
/// doubles (not EXPECT_NEAR) is the point.
void ExpectIdentical(const std::vector<DetectedBurst>& a,
                     const std::vector<DetectedBurst>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start) << "burst " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "burst " << i;
    EXPECT_EQ(a[i].peak_average, b[i].peak_average) << "burst " << i;
  }
}

std::vector<double> SynthTrace(std::uint64_t seed, int packets,
                               ChannelWidth width) {
  const PhyTiming t = PhyTiming::ForWidth(width);
  const Us spacing =
      t.FrameDuration(1000) + t.Sifs() + t.AckDuration() + 2000.0;
  const auto bursts = MakeCbrSchedule(t, packets, spacing, 1000, 300.0);
  SignalSynthesizer synth(SignalParams{}, Rng(seed));
  return synth.Synthesize(bursts, packets * spacing + 2000.0);
}

class ChunkInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkInvariance, MatchesFullTraceDetection) {
  const auto samples = SynthTrace(7, 20, ChannelWidth::kW20);
  const SiftParams params;
  SiftDetector whole(params);
  const auto reference = whole.Detect(samples);
  ASSERT_FALSE(reference.empty());
  ExpectIdentical(reference, DetectChunked(params, samples, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkInvariance,
                         ::testing::Values(std::size_t{1}, std::size_t{7},
                                           std::size_t{1024},
                                           std::size_t{1u << 20}));

TEST(SiftBlock, StepShimMatchesBlockPath) {
  const auto samples = SynthTrace(11, 15, ChannelWidth::kW5);
  const SiftParams params;
  SiftDetector whole(params);
  ExpectIdentical(whole.Detect(samples), DetectStepwise(params, samples));
}

TEST(SiftBlock, RandomChunkingMatches) {
  const auto samples = SynthTrace(13, 25, ChannelWidth::kW10);
  const SiftParams params;
  SiftDetector whole(params);
  const auto reference = whole.Detect(samples);
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    SiftDetector detector(params);
    std::size_t i = 0;
    while (i < samples.size()) {
      const auto n = std::min<std::size_t>(
          static_cast<std::size_t>(rng.UniformInt(1, 700)),
          samples.size() - i);
      detector.ProcessBlock({samples.data() + i, n});
      i += n;
    }
    detector.Flush();
    ExpectIdentical(reference, detector.TakeBursts());
  }
}

TEST(SiftBlock, GenericWindowKernelIsChunkInvariant) {
  // Non-default windows take the runtime-window kernel; the contract is
  // identical.
  const auto samples = SynthTrace(17, 15, ChannelWidth::kW20);
  for (int window : {1, 2, 3, 8, 16}) {
    SiftParams params;
    params.window = window;
    SiftDetector whole(params);
    const auto reference = whole.Detect(samples);
    for (std::size_t chunk : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                              std::size_t{4096}}) {
      ExpectIdentical(reference, DetectChunked(params, samples, chunk));
    }
  }
}

TEST(SiftBlock, BurstStraddlingChunkBoundary) {
  // Hand-built edges at many phases: quiet floor with hot runs long enough
  // to open bursts, placed so chunk sizes 1-16 each split an edge at a
  // different offset.
  const SiftParams params;
  std::vector<double> samples(256, 0.1);
  for (int start : {3, 17, 40, 151, 240}) {
    for (int k = 0; k < 9 && start + k < 256; ++k) {
      samples[static_cast<std::size_t>(start + k)] = params.threshold * 2.0;
    }
  }
  SiftDetector whole(params);
  const auto reference = whole.Detect(samples);
  ASSERT_FALSE(reference.empty());
  for (std::size_t chunk = 1; chunk <= 16; ++chunk) {
    ExpectIdentical(reference, DetectChunked(params, samples, chunk));
  }
}

TEST(SiftBlock, StreamContinuesAcrossTakeBursts) {
  // Draining completed bursts mid-stream must not disturb the window
  // state carried between blocks.
  const auto samples = SynthTrace(19, 10, ChannelWidth::kW20);
  const SiftParams params;
  SiftDetector whole(params);
  const auto reference = whole.Detect(samples);

  SiftDetector detector(params);
  std::vector<DetectedBurst> collected;
  for (std::size_t i = 0; i < samples.size(); i += 4096) {
    const std::size_t n = std::min<std::size_t>(4096, samples.size() - i);
    detector.ProcessBlock({samples.data() + i, n});
    for (auto& burst : detector.TakeBursts()) collected.push_back(burst);
  }
  detector.Flush();
  for (auto& burst : detector.TakeBursts()) collected.push_back(burst);
  ExpectIdentical(reference, collected);
}

TEST(SiftBlock, EmptyAndTinyBlocksAreHarmless) {
  const SiftParams params;
  SiftDetector detector(params);
  detector.ProcessBlock({});
  const double hot = params.threshold * 2.0;
  // Open a burst entirely through 1-sample blocks shorter than the window.
  for (int i = 0; i < 12; ++i) detector.Step(hot);
  detector.ProcessBlock({});
  detector.Flush();
  const auto bursts = detector.TakeBursts();
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].start, 0.0);
  EXPECT_EQ(bursts[0].end, 12 * params.sample_period);
}

}  // namespace
}  // namespace whitefi
