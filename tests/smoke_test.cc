// Build smoke test: pulls in the umbrella header and touches each layer.
#include "core/whitefi.h"

#include <gtest/gtest.h>

namespace whitefi {
namespace {

TEST(Smoke, UmbrellaHeaderCompilesAndBasicsWork) {
  EXPECT_EQ(kNumUhfChannels, 30);
  EXPECT_EQ(AllChannels().size(), 84u);
  EXPECT_DOUBLE_EQ(IdleMCham(ChannelWidth::kW20), 4.0);

  World world;
  EXPECT_EQ(world.sim().Now(), 0);
}

}  // namespace
}  // namespace whitefi
