file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_noncontiguous.dir/bench_ext_noncontiguous.cc.o"
  "CMakeFiles/bench_ext_noncontiguous.dir/bench_ext_noncontiguous.cc.o.d"
  "bench_ext_noncontiguous"
  "bench_ext_noncontiguous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_noncontiguous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
