# Empty dependencies file for bench_ext_noncontiguous.
# This may be replaced when dependencies are built.
