# Empty dependencies file for bench_ablation_discovery_miss.
# This may be replaced when dependencies are built.
