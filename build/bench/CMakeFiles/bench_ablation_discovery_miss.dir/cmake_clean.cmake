file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_discovery_miss.dir/bench_ablation_discovery_miss.cc.o"
  "CMakeFiles/bench_ablation_discovery_miss.dir/bench_ablation_discovery_miss.cc.o.d"
  "bench_ablation_discovery_miss"
  "bench_ablation_discovery_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_discovery_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
