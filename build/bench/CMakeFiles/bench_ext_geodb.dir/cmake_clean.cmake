file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_geodb.dir/bench_ext_geodb.cc.o"
  "CMakeFiles/bench_ext_geodb.dir/bench_ext_geodb.cc.o.d"
  "bench_ext_geodb"
  "bench_ext_geodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_geodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
