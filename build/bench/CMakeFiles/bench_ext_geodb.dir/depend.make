# Empty dependencies file for bench_ext_geodb.
# This may be replaced when dependencies are built.
