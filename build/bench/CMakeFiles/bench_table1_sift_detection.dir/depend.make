# Empty dependencies file for bench_table1_sift_detection.
# This may be replaced when dependencies are built.
