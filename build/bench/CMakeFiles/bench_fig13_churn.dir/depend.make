# Empty dependencies file for bench_fig13_churn.
# This may be replaced when dependencies are built.
