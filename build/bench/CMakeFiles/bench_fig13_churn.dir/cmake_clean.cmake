file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_churn.dir/bench_fig13_churn.cc.o"
  "CMakeFiles/bench_fig13_churn.dir/bench_fig13_churn.cc.o.d"
  "bench_fig13_churn"
  "bench_fig13_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
