file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_discovery_contiguous.dir/bench_fig8_discovery_contiguous.cc.o"
  "CMakeFiles/bench_fig8_discovery_contiguous.dir/bench_fig8_discovery_contiguous.cc.o.d"
  "bench_fig8_discovery_contiguous"
  "bench_fig8_discovery_contiguous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_discovery_contiguous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
