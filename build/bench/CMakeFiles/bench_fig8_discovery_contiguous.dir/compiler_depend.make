# Empty compiler generated dependencies file for bench_fig8_discovery_contiguous.
# This may be replaced when dependencies are built.
