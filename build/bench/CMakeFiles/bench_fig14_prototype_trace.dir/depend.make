# Empty dependencies file for bench_fig14_prototype_trace.
# This may be replaced when dependencies are built.
