file(REMOVE_RECURSE
  "CMakeFiles/bench_sec23_mic_mos.dir/bench_sec23_mic_mos.cc.o"
  "CMakeFiles/bench_sec23_mic_mos.dir/bench_sec23_mic_mos.cc.o.d"
  "bench_sec23_mic_mos"
  "bench_sec23_mic_mos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec23_mic_mos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
