# Empty dependencies file for bench_sec23_mic_mos.
# This may be replaced when dependencies are built.
