file(REMOVE_RECURSE
  "CMakeFiles/bench_sec21_spatial_variation.dir/bench_sec21_spatial_variation.cc.o"
  "CMakeFiles/bench_sec21_spatial_variation.dir/bench_sec21_spatial_variation.cc.o.d"
  "bench_sec21_spatial_variation"
  "bench_sec21_spatial_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec21_spatial_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
