# Empty dependencies file for bench_sec21_spatial_variation.
# This may be replaced when dependencies are built.
