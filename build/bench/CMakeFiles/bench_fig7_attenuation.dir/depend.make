# Empty dependencies file for bench_fig7_attenuation.
# This may be replaced when dependencies are built.
