file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_airtime.dir/bench_fig6_airtime.cc.o"
  "CMakeFiles/bench_fig6_airtime.dir/bench_fig6_airtime.cc.o.d"
  "bench_fig6_airtime"
  "bench_fig6_airtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_airtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
