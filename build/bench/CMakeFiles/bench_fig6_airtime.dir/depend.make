# Empty dependencies file for bench_fig6_airtime.
# This may be replaced when dependencies are built.
