file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fragmentation.dir/bench_fig2_fragmentation.cc.o"
  "CMakeFiles/bench_fig2_fragmentation.dir/bench_fig2_fragmentation.cc.o.d"
  "bench_fig2_fragmentation"
  "bench_fig2_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
