# Empty compiler generated dependencies file for bench_fig2_fragmentation.
# This may be replaced when dependencies are built.
