file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mcham_micro.dir/bench_fig10_mcham_micro.cc.o"
  "CMakeFiles/bench_fig10_mcham_micro.dir/bench_fig10_mcham_micro.cc.o.d"
  "bench_fig10_mcham_micro"
  "bench_fig10_mcham_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mcham_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
