# Empty dependencies file for bench_fig10_mcham_micro.
# This may be replaced when dependencies are built.
