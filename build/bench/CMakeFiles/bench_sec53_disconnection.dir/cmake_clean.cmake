file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_disconnection.dir/bench_sec53_disconnection.cc.o"
  "CMakeFiles/bench_sec53_disconnection.dir/bench_sec53_disconnection.cc.o.d"
  "bench_sec53_disconnection"
  "bench_sec53_disconnection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_disconnection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
