# Empty compiler generated dependencies file for bench_ablation_metric.
# This may be replaced when dependencies are built.
