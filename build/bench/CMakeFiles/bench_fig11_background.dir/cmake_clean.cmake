file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_background.dir/bench_fig11_background.cc.o"
  "CMakeFiles/bench_fig11_background.dir/bench_fig11_background.cc.o.d"
  "bench_fig11_background"
  "bench_fig11_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
