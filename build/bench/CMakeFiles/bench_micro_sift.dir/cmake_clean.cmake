file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sift.dir/bench_micro_sift.cc.o"
  "CMakeFiles/bench_micro_sift.dir/bench_micro_sift.cc.o.d"
  "bench_micro_sift"
  "bench_micro_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
