# Empty dependencies file for bench_micro_sift.
# This may be replaced when dependencies are built.
