file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_discovery_locales.dir/bench_fig9_discovery_locales.cc.o"
  "CMakeFiles/bench_fig9_discovery_locales.dir/bench_fig9_discovery_locales.cc.o.d"
  "bench_fig9_discovery_locales"
  "bench_fig9_discovery_locales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_discovery_locales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
