# Empty compiler generated dependencies file for bench_fig9_discovery_locales.
# This may be replaced when dependencies are built.
