# Empty dependencies file for bench_fig12_spatial.
# This may be replaced when dependencies are built.
