file(REMOVE_RECURSE
  "../lib/libwhitefi_bench_common.a"
  "../lib/libwhitefi_bench_common.pdb"
  "CMakeFiles/whitefi_bench_common.dir/scenario.cc.o"
  "CMakeFiles/whitefi_bench_common.dir/scenario.cc.o.d"
  "CMakeFiles/whitefi_bench_common.dir/scenario_file.cc.o"
  "CMakeFiles/whitefi_bench_common.dir/scenario_file.cc.o.d"
  "CMakeFiles/whitefi_bench_common.dir/sift_experiment.cc.o"
  "CMakeFiles/whitefi_bench_common.dir/sift_experiment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
