# Empty dependencies file for whitefi_bench_common.
# This may be replaced when dependencies are built.
