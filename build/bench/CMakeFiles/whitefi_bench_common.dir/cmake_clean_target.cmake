file(REMOVE_RECURSE
  "../lib/libwhitefi_bench_common.a"
)
