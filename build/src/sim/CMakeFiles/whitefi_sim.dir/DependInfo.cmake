
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/events.cc" "src/sim/CMakeFiles/whitefi_sim.dir/events.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/events.cc.o.d"
  "/root/repo/src/sim/mac.cc" "src/sim/CMakeFiles/whitefi_sim.dir/mac.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/mac.cc.o.d"
  "/root/repo/src/sim/medium.cc" "src/sim/CMakeFiles/whitefi_sim.dir/medium.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/medium.cc.o.d"
  "/root/repo/src/sim/node.cc" "src/sim/CMakeFiles/whitefi_sim.dir/node.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/node.cc.o.d"
  "/root/repo/src/sim/propagation.cc" "src/sim/CMakeFiles/whitefi_sim.dir/propagation.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/propagation.cc.o.d"
  "/root/repo/src/sim/scanner.cc" "src/sim/CMakeFiles/whitefi_sim.dir/scanner.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/scanner.cc.o.d"
  "/root/repo/src/sim/signal_scanner.cc" "src/sim/CMakeFiles/whitefi_sim.dir/signal_scanner.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/signal_scanner.cc.o.d"
  "/root/repo/src/sim/tracer.cc" "src/sim/CMakeFiles/whitefi_sim.dir/tracer.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/tracer.cc.o.d"
  "/root/repo/src/sim/traffic.cc" "src/sim/CMakeFiles/whitefi_sim.dir/traffic.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/traffic.cc.o.d"
  "/root/repo/src/sim/world.cc" "src/sim/CMakeFiles/whitefi_sim.dir/world.cc.o" "gcc" "src/sim/CMakeFiles/whitefi_sim.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sift/CMakeFiles/whitefi_sift.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/whitefi_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/whitefi_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whitefi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
