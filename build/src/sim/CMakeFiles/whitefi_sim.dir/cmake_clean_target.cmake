file(REMOVE_RECURSE
  "libwhitefi_sim.a"
)
