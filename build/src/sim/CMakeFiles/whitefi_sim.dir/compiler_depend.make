# Empty compiler generated dependencies file for whitefi_sim.
# This may be replaced when dependencies are built.
