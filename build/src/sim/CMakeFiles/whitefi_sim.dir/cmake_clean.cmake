file(REMOVE_RECURSE
  "CMakeFiles/whitefi_sim.dir/events.cc.o"
  "CMakeFiles/whitefi_sim.dir/events.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/mac.cc.o"
  "CMakeFiles/whitefi_sim.dir/mac.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/medium.cc.o"
  "CMakeFiles/whitefi_sim.dir/medium.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/node.cc.o"
  "CMakeFiles/whitefi_sim.dir/node.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/propagation.cc.o"
  "CMakeFiles/whitefi_sim.dir/propagation.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/scanner.cc.o"
  "CMakeFiles/whitefi_sim.dir/scanner.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/signal_scanner.cc.o"
  "CMakeFiles/whitefi_sim.dir/signal_scanner.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/tracer.cc.o"
  "CMakeFiles/whitefi_sim.dir/tracer.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/traffic.cc.o"
  "CMakeFiles/whitefi_sim.dir/traffic.cc.o.d"
  "CMakeFiles/whitefi_sim.dir/world.cc.o"
  "CMakeFiles/whitefi_sim.dir/world.cc.o.d"
  "libwhitefi_sim.a"
  "libwhitefi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
