file(REMOVE_RECURSE
  "CMakeFiles/whitefi_phy.dir/attenuation.cc.o"
  "CMakeFiles/whitefi_phy.dir/attenuation.cc.o.d"
  "CMakeFiles/whitefi_phy.dir/noncontiguous.cc.o"
  "CMakeFiles/whitefi_phy.dir/noncontiguous.cc.o.d"
  "CMakeFiles/whitefi_phy.dir/signal.cc.o"
  "CMakeFiles/whitefi_phy.dir/signal.cc.o.d"
  "CMakeFiles/whitefi_phy.dir/timing.cc.o"
  "CMakeFiles/whitefi_phy.dir/timing.cc.o.d"
  "libwhitefi_phy.a"
  "libwhitefi_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
