
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/attenuation.cc" "src/phy/CMakeFiles/whitefi_phy.dir/attenuation.cc.o" "gcc" "src/phy/CMakeFiles/whitefi_phy.dir/attenuation.cc.o.d"
  "/root/repo/src/phy/noncontiguous.cc" "src/phy/CMakeFiles/whitefi_phy.dir/noncontiguous.cc.o" "gcc" "src/phy/CMakeFiles/whitefi_phy.dir/noncontiguous.cc.o.d"
  "/root/repo/src/phy/signal.cc" "src/phy/CMakeFiles/whitefi_phy.dir/signal.cc.o" "gcc" "src/phy/CMakeFiles/whitefi_phy.dir/signal.cc.o.d"
  "/root/repo/src/phy/timing.cc" "src/phy/CMakeFiles/whitefi_phy.dir/timing.cc.o" "gcc" "src/phy/CMakeFiles/whitefi_phy.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spectrum/CMakeFiles/whitefi_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whitefi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
