# Empty compiler generated dependencies file for whitefi_phy.
# This may be replaced when dependencies are built.
