file(REMOVE_RECURSE
  "libwhitefi_phy.a"
)
