
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ap.cc" "src/core/CMakeFiles/whitefi_core.dir/ap.cc.o" "gcc" "src/core/CMakeFiles/whitefi_core.dir/ap.cc.o.d"
  "/root/repo/src/core/assignment.cc" "src/core/CMakeFiles/whitefi_core.dir/assignment.cc.o" "gcc" "src/core/CMakeFiles/whitefi_core.dir/assignment.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/whitefi_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/whitefi_core.dir/client.cc.o.d"
  "/root/repo/src/core/discovery.cc" "src/core/CMakeFiles/whitefi_core.dir/discovery.cc.o" "gcc" "src/core/CMakeFiles/whitefi_core.dir/discovery.cc.o.d"
  "/root/repo/src/core/mcham.cc" "src/core/CMakeFiles/whitefi_core.dir/mcham.cc.o" "gcc" "src/core/CMakeFiles/whitefi_core.dir/mcham.cc.o.d"
  "/root/repo/src/core/sim_discovery.cc" "src/core/CMakeFiles/whitefi_core.dir/sim_discovery.cc.o" "gcc" "src/core/CMakeFiles/whitefi_core.dir/sim_discovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/whitefi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sift/CMakeFiles/whitefi_sift.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/whitefi_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/whitefi_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whitefi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
