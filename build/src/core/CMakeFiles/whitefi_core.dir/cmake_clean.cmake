file(REMOVE_RECURSE
  "CMakeFiles/whitefi_core.dir/ap.cc.o"
  "CMakeFiles/whitefi_core.dir/ap.cc.o.d"
  "CMakeFiles/whitefi_core.dir/assignment.cc.o"
  "CMakeFiles/whitefi_core.dir/assignment.cc.o.d"
  "CMakeFiles/whitefi_core.dir/client.cc.o"
  "CMakeFiles/whitefi_core.dir/client.cc.o.d"
  "CMakeFiles/whitefi_core.dir/discovery.cc.o"
  "CMakeFiles/whitefi_core.dir/discovery.cc.o.d"
  "CMakeFiles/whitefi_core.dir/mcham.cc.o"
  "CMakeFiles/whitefi_core.dir/mcham.cc.o.d"
  "CMakeFiles/whitefi_core.dir/sim_discovery.cc.o"
  "CMakeFiles/whitefi_core.dir/sim_discovery.cc.o.d"
  "libwhitefi_core.a"
  "libwhitefi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
