# Empty dependencies file for whitefi_core.
# This may be replaced when dependencies are built.
