file(REMOVE_RECURSE
  "libwhitefi_core.a"
)
