
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spectrum/campus.cc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/campus.cc.o" "gcc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/campus.cc.o.d"
  "/root/repo/src/spectrum/channel.cc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/channel.cc.o" "gcc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/channel.cc.o.d"
  "/root/repo/src/spectrum/geodb.cc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/geodb.cc.o" "gcc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/geodb.cc.o.d"
  "/root/repo/src/spectrum/incumbents.cc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/incumbents.cc.o" "gcc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/incumbents.cc.o.d"
  "/root/repo/src/spectrum/locales.cc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/locales.cc.o" "gcc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/locales.cc.o.d"
  "/root/repo/src/spectrum/spectrum_map.cc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/spectrum_map.cc.o" "gcc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/spectrum_map.cc.o.d"
  "/root/repo/src/spectrum/uhf.cc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/uhf.cc.o" "gcc" "src/spectrum/CMakeFiles/whitefi_spectrum.dir/uhf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/whitefi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
