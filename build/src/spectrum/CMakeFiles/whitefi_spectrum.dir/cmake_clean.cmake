file(REMOVE_RECURSE
  "CMakeFiles/whitefi_spectrum.dir/campus.cc.o"
  "CMakeFiles/whitefi_spectrum.dir/campus.cc.o.d"
  "CMakeFiles/whitefi_spectrum.dir/channel.cc.o"
  "CMakeFiles/whitefi_spectrum.dir/channel.cc.o.d"
  "CMakeFiles/whitefi_spectrum.dir/geodb.cc.o"
  "CMakeFiles/whitefi_spectrum.dir/geodb.cc.o.d"
  "CMakeFiles/whitefi_spectrum.dir/incumbents.cc.o"
  "CMakeFiles/whitefi_spectrum.dir/incumbents.cc.o.d"
  "CMakeFiles/whitefi_spectrum.dir/locales.cc.o"
  "CMakeFiles/whitefi_spectrum.dir/locales.cc.o.d"
  "CMakeFiles/whitefi_spectrum.dir/spectrum_map.cc.o"
  "CMakeFiles/whitefi_spectrum.dir/spectrum_map.cc.o.d"
  "CMakeFiles/whitefi_spectrum.dir/uhf.cc.o"
  "CMakeFiles/whitefi_spectrum.dir/uhf.cc.o.d"
  "libwhitefi_spectrum.a"
  "libwhitefi_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
