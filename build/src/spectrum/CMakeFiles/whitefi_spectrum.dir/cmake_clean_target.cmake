file(REMOVE_RECURSE
  "libwhitefi_spectrum.a"
)
