# Empty compiler generated dependencies file for whitefi_spectrum.
# This may be replaced when dependencies are built.
