file(REMOVE_RECURSE
  "CMakeFiles/whitefi_sift.dir/airtime.cc.o"
  "CMakeFiles/whitefi_sift.dir/airtime.cc.o.d"
  "CMakeFiles/whitefi_sift.dir/chirp.cc.o"
  "CMakeFiles/whitefi_sift.dir/chirp.cc.o.d"
  "CMakeFiles/whitefi_sift.dir/detector.cc.o"
  "CMakeFiles/whitefi_sift.dir/detector.cc.o.d"
  "CMakeFiles/whitefi_sift.dir/matcher.cc.o"
  "CMakeFiles/whitefi_sift.dir/matcher.cc.o.d"
  "libwhitefi_sift.a"
  "libwhitefi_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
