# Empty dependencies file for whitefi_sift.
# This may be replaced when dependencies are built.
