
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sift/airtime.cc" "src/sift/CMakeFiles/whitefi_sift.dir/airtime.cc.o" "gcc" "src/sift/CMakeFiles/whitefi_sift.dir/airtime.cc.o.d"
  "/root/repo/src/sift/chirp.cc" "src/sift/CMakeFiles/whitefi_sift.dir/chirp.cc.o" "gcc" "src/sift/CMakeFiles/whitefi_sift.dir/chirp.cc.o.d"
  "/root/repo/src/sift/detector.cc" "src/sift/CMakeFiles/whitefi_sift.dir/detector.cc.o" "gcc" "src/sift/CMakeFiles/whitefi_sift.dir/detector.cc.o.d"
  "/root/repo/src/sift/matcher.cc" "src/sift/CMakeFiles/whitefi_sift.dir/matcher.cc.o" "gcc" "src/sift/CMakeFiles/whitefi_sift.dir/matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/whitefi_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/whitefi_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whitefi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
