file(REMOVE_RECURSE
  "libwhitefi_sift.a"
)
