file(REMOVE_RECURSE
  "libwhitefi_util.a"
)
