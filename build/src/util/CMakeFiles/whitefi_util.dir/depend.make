# Empty dependencies file for whitefi_util.
# This may be replaced when dependencies are built.
