file(REMOVE_RECURSE
  "CMakeFiles/whitefi_util.dir/config.cc.o"
  "CMakeFiles/whitefi_util.dir/config.cc.o.d"
  "CMakeFiles/whitefi_util.dir/histogram.cc.o"
  "CMakeFiles/whitefi_util.dir/histogram.cc.o.d"
  "CMakeFiles/whitefi_util.dir/log.cc.o"
  "CMakeFiles/whitefi_util.dir/log.cc.o.d"
  "CMakeFiles/whitefi_util.dir/report.cc.o"
  "CMakeFiles/whitefi_util.dir/report.cc.o.d"
  "CMakeFiles/whitefi_util.dir/rng.cc.o"
  "CMakeFiles/whitefi_util.dir/rng.cc.o.d"
  "CMakeFiles/whitefi_util.dir/stats.cc.o"
  "CMakeFiles/whitefi_util.dir/stats.cc.o.d"
  "libwhitefi_util.a"
  "libwhitefi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
