# Empty compiler generated dependencies file for whitefi_audio.
# This may be replaced when dependencies are built.
