file(REMOVE_RECURSE
  "libwhitefi_audio.a"
)
