file(REMOVE_RECURSE
  "CMakeFiles/whitefi_audio.dir/mos.cc.o"
  "CMakeFiles/whitefi_audio.dir/mos.cc.o.d"
  "libwhitefi_audio.a"
  "libwhitefi_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitefi_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
