# Empty compiler generated dependencies file for sift_scope.
# This may be replaced when dependencies are built.
