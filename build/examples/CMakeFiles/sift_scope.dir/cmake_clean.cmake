file(REMOVE_RECURSE
  "CMakeFiles/sift_scope.dir/sift_scope.cpp.o"
  "CMakeFiles/sift_scope.dir/sift_scope.cpp.o.d"
  "sift_scope"
  "sift_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sift_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
