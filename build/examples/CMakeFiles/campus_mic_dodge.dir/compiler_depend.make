# Empty compiler generated dependencies file for campus_mic_dodge.
# This may be replaced when dependencies are built.
