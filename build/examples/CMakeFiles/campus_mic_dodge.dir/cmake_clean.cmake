file(REMOVE_RECURSE
  "CMakeFiles/campus_mic_dodge.dir/campus_mic_dodge.cpp.o"
  "CMakeFiles/campus_mic_dodge.dir/campus_mic_dodge.cpp.o.d"
  "campus_mic_dodge"
  "campus_mic_dodge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_mic_dodge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
