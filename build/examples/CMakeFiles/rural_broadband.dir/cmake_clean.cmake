file(REMOVE_RECURSE
  "CMakeFiles/rural_broadband.dir/rural_broadband.cpp.o"
  "CMakeFiles/rural_broadband.dir/rural_broadband.cpp.o.d"
  "rural_broadband"
  "rural_broadband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rural_broadband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
