# Empty compiler generated dependencies file for rural_broadband.
# This may be replaced when dependencies are built.
