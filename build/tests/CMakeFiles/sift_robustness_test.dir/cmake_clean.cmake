file(REMOVE_RECURSE
  "CMakeFiles/sift_robustness_test.dir/sift_robustness_test.cc.o"
  "CMakeFiles/sift_robustness_test.dir/sift_robustness_test.cc.o.d"
  "sift_robustness_test"
  "sift_robustness_test.pdb"
  "sift_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sift_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
