# Empty dependencies file for sift_robustness_test.
# This may be replaced when dependencies are built.
