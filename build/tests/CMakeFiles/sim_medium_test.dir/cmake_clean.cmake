file(REMOVE_RECURSE
  "CMakeFiles/sim_medium_test.dir/sim_medium_test.cc.o"
  "CMakeFiles/sim_medium_test.dir/sim_medium_test.cc.o.d"
  "sim_medium_test"
  "sim_medium_test.pdb"
  "sim_medium_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_medium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
