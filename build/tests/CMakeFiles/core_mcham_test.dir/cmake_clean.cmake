file(REMOVE_RECURSE
  "CMakeFiles/core_mcham_test.dir/core_mcham_test.cc.o"
  "CMakeFiles/core_mcham_test.dir/core_mcham_test.cc.o.d"
  "core_mcham_test"
  "core_mcham_test.pdb"
  "core_mcham_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mcham_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
