# Empty dependencies file for core_mcham_test.
# This may be replaced when dependencies are built.
