file(REMOVE_RECURSE
  "CMakeFiles/signal_scanner_test.dir/signal_scanner_test.cc.o"
  "CMakeFiles/signal_scanner_test.dir/signal_scanner_test.cc.o.d"
  "signal_scanner_test"
  "signal_scanner_test.pdb"
  "signal_scanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
