# Empty dependencies file for signal_scanner_test.
# This may be replaced when dependencies are built.
