file(REMOVE_RECURSE
  "CMakeFiles/geodb_test.dir/geodb_test.cc.o"
  "CMakeFiles/geodb_test.dir/geodb_test.cc.o.d"
  "geodb_test"
  "geodb_test.pdb"
  "geodb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geodb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
