# Empty dependencies file for core_discovery_test.
# This may be replaced when dependencies are built.
