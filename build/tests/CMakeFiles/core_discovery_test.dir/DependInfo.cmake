
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_discovery_test.cc" "tests/CMakeFiles/core_discovery_test.dir/core_discovery_test.cc.o" "gcc" "tests/CMakeFiles/core_discovery_test.dir/core_discovery_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/whitefi_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/whitefi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/whitefi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sift/CMakeFiles/whitefi_sift.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/whitefi_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/whitefi_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/whitefi_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whitefi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
