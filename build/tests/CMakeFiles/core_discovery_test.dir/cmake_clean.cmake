file(REMOVE_RECURSE
  "CMakeFiles/core_discovery_test.dir/core_discovery_test.cc.o"
  "CMakeFiles/core_discovery_test.dir/core_discovery_test.cc.o.d"
  "core_discovery_test"
  "core_discovery_test.pdb"
  "core_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
