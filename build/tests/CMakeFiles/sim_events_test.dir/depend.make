# Empty dependencies file for sim_events_test.
# This may be replaced when dependencies are built.
