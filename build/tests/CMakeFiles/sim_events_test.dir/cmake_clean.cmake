file(REMOVE_RECURSE
  "CMakeFiles/sim_events_test.dir/sim_events_test.cc.o"
  "CMakeFiles/sim_events_test.dir/sim_events_test.cc.o.d"
  "sim_events_test"
  "sim_events_test.pdb"
  "sim_events_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
