# Empty dependencies file for noncontiguous_test.
# This may be replaced when dependencies are built.
