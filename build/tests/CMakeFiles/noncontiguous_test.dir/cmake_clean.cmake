file(REMOVE_RECURSE
  "CMakeFiles/noncontiguous_test.dir/noncontiguous_test.cc.o"
  "CMakeFiles/noncontiguous_test.dir/noncontiguous_test.cc.o.d"
  "noncontiguous_test"
  "noncontiguous_test.pdb"
  "noncontiguous_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noncontiguous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
