file(REMOVE_RECURSE
  "CMakeFiles/sim_mac_test.dir/sim_mac_test.cc.o"
  "CMakeFiles/sim_mac_test.dir/sim_mac_test.cc.o.d"
  "sim_mac_test"
  "sim_mac_test.pdb"
  "sim_mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
