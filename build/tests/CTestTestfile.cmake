# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/spectrum_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/sift_test[1]_include.cmake")
include("/root/repo/build/tests/sim_events_test[1]_include.cmake")
include("/root/repo/build/tests/sim_medium_test[1]_include.cmake")
include("/root/repo/build/tests/sim_mac_test[1]_include.cmake")
include("/root/repo/build/tests/core_mcham_test[1]_include.cmake")
include("/root/repo/build/tests/core_discovery_test[1]_include.cmake")
include("/root/repo/build/tests/core_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/core_edge_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sift_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/geodb_test[1]_include.cmake")
include("/root/repo/build/tests/noncontiguous_test[1]_include.cmake")
include("/root/repo/build/tests/signal_scanner_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tracer_test[1]_include.cmake")
include("/root/repo/build/tests/gap_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
