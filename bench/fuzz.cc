#include "fuzz.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "scenario_file.h"
#include "spectrum/campus.h"
#include "spectrum/uhf.h"
#include "util/rng.h"

namespace whitefi::bench {
namespace {

/// Fixed-notation double that round-trips through the INI parser without
/// locale or precision surprises.
std::string Num(double v) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << v;
  return os.str();
}

/// Replaces the value of `key` on its own "key = value" line; appends the
/// line when the key is absent.  The generator and minimizer only ever
/// touch flat dotted keys, one per line, so line surgery is exact.
std::string ReplaceKeyLine(const std::string& text, const std::string& key,
                           const std::string& value) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  bool replaced = false;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (!replaced && eq != std::string::npos) {
      std::string name = line.substr(0, eq);
      while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
        name.pop_back();
      }
      if (name == key) {
        out << key << " = " << value << "\n";
        replaced = true;
        continue;
      }
    }
    out << line << "\n";
  }
  if (!replaced) out << key << " = " << value << "\n";
  return out.str();
}

/// Drops every "expect.*" line.
std::string StripExpectBlock(const std::string& text) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view v(line);
    while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
      v.remove_prefix(1);
    }
    if (v.rfind("expect.", 0) == 0) continue;
    if (v.rfind("# --- repro expectation", 0) == 0) continue;
    out << line << "\n";
  }
  return out.str();
}

/// True iff the run still exhibits a violation of `invariant`.
bool StillFires(const std::string& scenario_text,
                const std::string& invariant) {
  const AuditedRun run = RunAuditedScenarioText(scenario_text);
  for (const Violation& v : run.violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

}  // namespace

std::string GenerateFuzzScenario(const FuzzOptions& options,
                                 std::uint64_t index) {
  // Named substream per trial: the generator never reuses the root seed
  // raw, and trial k's scenario is independent of how many trials ran
  // before it.
  Rng rng(DeriveSeed(options.root_seed,
                     "fuzz.trial." + std::to_string(index)));
  std::ostringstream os;
  os << "# fuzz trial " << index << " (root seed " << options.root_seed
     << ")\n";
  os << "seed = " << rng.UniformInt(1, 1 << 30) << "\n";
  const bool building = rng.Bernoulli(0.4);
  const SpectrumMap map = building ? Building5Map() : CampusSimulationMap();
  os << "map.name = " << (building ? "building5" : "campus") << "\n";
  os << "seconds = " << rng.UniformInt(4, 7) << "\n";
  os << "warmup = 1\n";
  os << "network.clients = " << rng.UniformInt(1, 4) << "\n";
  os << "background.pairs = " << rng.UniformInt(0, 4) << "\n";
  os << "background.ipd_ms = " << rng.UniformInt(20, 40) << "\n";

  // A mic over one of the map's free channels most trials: incumbent
  // churn over spectrum the network actually wants is what exercises the
  // vacation discipline.
  if (rng.Bernoulli(0.7)) {
    const auto free = map.FreeIndices();
    const UhfIndex mic = free[rng.Index(free.size())];
    const double on_s = rng.Uniform(1.5, 3.5);
    os << "mic.tv_channel = " << TvChannelNumber(mic) << "\n";
    os << "mic.on_s = " << Num(on_s) << "\n";
    os << "mic.off_s = " << Num(on_s + rng.Uniform(1.0, 3.0)) << "\n";
  }

  // Protocol hardenings, randomly toggled (both halves of each feature
  // matrix must hold the invariants).
  if (rng.Bernoulli(0.5)) {
    os << "client.chirp_backoff = true\n";
    os << "client.chirp_interval_max_ms = " << rng.UniformInt(1000, 3000)
       << "\n";
  }
  if (rng.Bernoulli(0.5)) {
    os << "client.reconnect_escalation = true\n";
    os << "client.reconnect_stage_timeout_ms = " << rng.UniformInt(2000, 5000)
       << "\n";
  }

  // Moderate fault pressure.  Every knob here degrades protocol progress
  // without licensing an invariant breach: the fast incumbent-detection
  // path is not gated by any of them.
  if (rng.Bernoulli(0.5)) {
    os << "fault.beacon_drop_p = " << Num(rng.Uniform(0.05, 0.3)) << "\n";
  }
  if (rng.Bernoulli(0.4)) {
    os << "fault.chirp_drop_p = " << Num(rng.Uniform(0.05, 0.3)) << "\n";
  }
  if (rng.Bernoulli(0.3)) {
    os << "fault.control_corrupt_p = " << Num(rng.Uniform(0.02, 0.1)) << "\n";
  }
  if (rng.Bernoulli(0.3)) {
    os << "fault.ge_p_enter_bad = " << Num(rng.Uniform(0.01, 0.05)) << "\n";
    os << "fault.ge_p_exit_bad = " << Num(rng.Uniform(0.2, 0.5)) << "\n";
    os << "fault.ge_loss_good = 0.000\n";
    os << "fault.ge_loss_bad = " << Num(rng.Uniform(0.3, 0.8)) << "\n";
  }
  if (rng.Bernoulli(0.3)) {
    os << "fault.false_incumbent_p = " << Num(rng.Uniform(0.001, 0.01))
       << "\n";
  }
  if (rng.Bernoulli(0.5)) {
    os << "fault.storm_start_s = " << Num(rng.Uniform(1.0, 3.0)) << "\n";
    os << "fault.storm_duration_s = " << Num(rng.Uniform(2.0, 4.0)) << "\n";
    os << "fault.storm_mics = " << rng.UniformInt(1, 2) << "\n";
    os << "fault.storm_mean_on_s = " << Num(rng.Uniform(1.0, 2.0)) << "\n";
    os << "fault.storm_mean_off_s = " << Num(rng.Uniform(1.0, 3.0)) << "\n";
  }

  if (options.safety_budget_ms > 0) {
    os << "audit.safety_budget_ms = " << options.safety_budget_ms << "\n";
  }
  return os.str();
}

std::string GenerateGeoDbFuzzScenario(const FuzzOptions& options,
                                      std::uint64_t index) {
  Rng rng(DeriveSeed(options.root_seed,
                     "fuzz.geodb.trial." + std::to_string(index)));
  std::ostringstream os;
  os << "# geodb fuzz trial " << index << " (root seed " << options.root_seed
     << ")\n";
  os << "seed = " << rng.UniformInt(1, 1 << 30) << "\n";
  const bool building = rng.Bernoulli(0.3);
  const SpectrumMap map = building ? Building5Map() : CampusSimulationMap();
  os << "map.name = " << (building ? "building5" : "campus") << "\n";
  const long long seconds = rng.UniformInt(5, 8);
  os << "seconds = " << seconds << "\n";
  os << "warmup = 1\n";
  os << "network.clients = " << rng.UniformInt(1, 3) << "\n";
  os << "background.pairs = " << rng.UniformInt(0, 2) << "\n";

  // The geo-db service is always on: this generator's whole point is the
  // recovery protocol under churn, so every trial gets venue activations
  // (often backed by real mics — those arm the audible fast path on top
  // of the geo ground truth) and tight session timings so full
  // degrade -> breaker -> recover cycles fit inside a short run.
  os << "geodb.enabled = true\n";
  os << "geodb.stations = " << rng.UniformInt(10, 24) << "\n";
  os << "geodb.venues = " << rng.UniformInt(1, 3) << "\n";
  os << "geodb.venue_radius_km = " << Num(rng.Uniform(0.5, 2.0)) << "\n";
  os << "geodb.venue_spread_km = " << Num(rng.Uniform(0.2, 1.0)) << "\n";
  const double start_min = rng.Uniform(0.5, 1.5);
  os << "geodb.venue_start_min_s = " << Num(start_min) << "\n";
  os << "geodb.venue_start_max_s = " << Num(start_min + rng.Uniform(1.0, 3.0))
     << "\n";
  const double on_min = rng.Uniform(0.8, 1.5);
  os << "geodb.venue_on_min_s = " << Num(on_min) << "\n";
  os << "geodb.venue_on_max_s = " << Num(on_min + rng.Uniform(0.5, 2.0))
     << "\n";
  os << "geodb.venue_mics = " << (rng.Bernoulli(0.5) ? "true" : "false")
     << "\n";

  // Service behavior: latency, queueing, overload shedding, push fan-out.
  os << "geodb.query_latency_ms = " << rng.UniformInt(20, 80) << "\n";
  os << "geodb.per_pending_ms = " << rng.UniformInt(5, 30) << "\n";
  os << "geodb.latency_jitter = " << Num(rng.Uniform(0.0, 0.4)) << "\n";
  os << "geodb.queue = " << rng.UniformInt(2, 8) << "\n";
  os << "geodb.push_latency_min_ms = 10\n";
  os << "geodb.push_latency_max_ms = " << rng.UniformInt(50, 150) << "\n";

  // Session recovery protocol, tightened to the run length.
  os << "geodb.refresh_s = " << Num(rng.Uniform(0.5, 1.2)) << "\n";
  os << "geodb.refresh_timeout_ms = " << rng.UniformInt(100, 250) << "\n";
  os << "geodb.backoff_ms = " << rng.UniformInt(80, 200) << "\n";
  os << "geodb.backoff_max_ms = " << rng.UniformInt(400, 800) << "\n";
  os << "geodb.breaker_failures = " << rng.UniformInt(2, 3) << "\n";
  os << "geodb.breaker_cooldown_ms = " << rng.UniformInt(300, 800) << "\n";
  os << "geodb.stale_after_s = " << Num(rng.Uniform(4.0, 10.0)) << "\n";

  // Mobility most trials: movement is what makes the position-aware
  // ground-truth check different from the audible-mic one.
  if (rng.Bernoulli(0.7)) {
    os << "mobility.enabled = true\n";
    os << "mobility.range_m = " << Num(rng.Uniform(100.0, 400.0)) << "\n";
    os << "mobility.speed_min_mps = 1.000\n";
    os << "mobility.speed_max_mps = " << Num(rng.Uniform(5.0, 15.0)) << "\n";
    os << "mobility.tick_ms = " << rng.UniformInt(50, 150) << "\n";
  }

  // Geo-db fault pressure.  An outage window mid-run forces the timeout /
  // backoff / breaker path; staleness makes even successful refreshes
  // serve old data; a push storm floods the subscription fan-out with
  // short-lived protected venues.
  if (rng.Bernoulli(0.8)) {
    const double from = rng.Uniform(1.5, 3.0);
    os << "fault.geodb_outages = " << Num(from) << "-"
       << Num(from + rng.Uniform(1.0, 2.5)) << "\n";
  }
  if (rng.Bernoulli(0.3)) {
    os << "fault.geodb_staleness_s = " << Num(rng.Uniform(0.5, 2.0)) << "\n";
  }
  if (rng.Bernoulli(0.4)) {
    os << "fault.push_storm_start_s = " << Num(rng.Uniform(1.5, 3.0)) << "\n";
    os << "fault.push_storm_duration_s = " << Num(rng.Uniform(2.0, 3.0))
       << "\n";
    os << "fault.push_storm_venues = " << rng.UniformInt(2, 4) << "\n";
    os << "fault.push_storm_mean_on_s = " << Num(rng.Uniform(0.5, 1.5))
       << "\n";
    os << "fault.push_storm_mean_off_s = " << Num(rng.Uniform(0.5, 1.5))
       << "\n";
    os << "fault.push_storm_radius_km = " << Num(rng.Uniform(0.8, 1.5))
       << "\n";
    os << "fault.push_storm_spread_km = " << Num(rng.Uniform(1.0, 3.0))
       << "\n";
  }

  // A plain audible mic and light protocol fault pressure some trials:
  // the geo-db path must compose with, not replace, the audio one.
  if (rng.Bernoulli(0.4)) {
    const auto free = map.FreeIndices();
    const UhfIndex mic = free[rng.Index(free.size())];
    const double on_s = rng.Uniform(1.5, 3.0);
    os << "mic.tv_channel = " << TvChannelNumber(mic) << "\n";
    os << "mic.on_s = " << Num(on_s) << "\n";
    os << "mic.off_s = " << Num(on_s + rng.Uniform(1.0, 2.0)) << "\n";
  }
  if (rng.Bernoulli(0.4)) {
    os << "fault.beacon_drop_p = " << Num(rng.Uniform(0.05, 0.2)) << "\n";
  }

  if (options.safety_budget_ms > 0) {
    os << "audit.safety_budget_ms = " << options.safety_budget_ms << "\n";
  }
  if (options.geo_budget_ms > 0) {
    os << "audit.geo_budget_ms = " << options.geo_budget_ms << "\n";
  }
  return os.str();
}

AuditConfig LoadAuditConfig(const ConfigFile& config) {
  AuditConfig audit;
  audit.safety_budget =
      config.GetInt("audit.safety_budget_ms", 0) * kTicksPerMs;
  audit.geo_budget = config.GetInt("audit.geo_budget_ms", 0) * kTicksPerMs;
  if (config.Has("audit.vacate_slack_ms")) {
    audit.safety_vacate_slack =
        config.GetInt("audit.vacate_slack_ms") * kTicksPerMs;
  }
  if (config.Has("audit.sweep_ms")) {
    audit.sweep_interval = config.GetInt("audit.sweep_ms") * kTicksPerMs;
  }
  audit.check_books = config.GetBool("audit.check_books", true);
  return audit;
}

AuditedRun RunAuditedScenarioText(const std::string& text) {
  ConfigFile config = ConfigFile::ParseString(text);
  const AuditConfig audit_config = LoadAuditConfig(config);
  (void)BundleExpectation(config);  // Consume expect.* (bundles re-run).
  ScenarioConfig scenario = LoadScenario(config);
  InvariantAuditor auditor(audit_config);
  scenario.auditor = &auditor;
  AuditedRun run;
  run.result = RunScenario(scenario);
  run.safety_budget = auditor.safety_budget();
  run.violations = auditor.violations();
  run.violation_count = auditor.violation_count();
  return run;
}

std::string MakeReproBundle(const std::string& scenario_text,
                            const Violation& v) {
  std::ostringstream os;
  os << StripExpectBlock(scenario_text);
  os << "# --- repro expectation (first violation of the recorded run) ---\n";
  os << "expect.invariant = " << v.invariant << "\n";
  os << "expect.at_us = " << v.at << "\n";
  os << "expect.node = " << v.node << "\n";
  os << "expect.channel = " << v.channel << "\n";
  os << "expect.detail = " << v.detail << "\n";
  return os.str();
}

std::optional<Violation> BundleExpectation(const ConfigFile& config) {
  if (!config.Has("expect.invariant")) return std::nullopt;
  Violation v;
  v.invariant = config.Get("expect.invariant");
  v.at = config.GetInt("expect.at_us", 0);
  v.node = static_cast<int>(config.GetInt("expect.node", -1));
  v.channel = static_cast<int>(config.GetInt("expect.channel", -1));
  v.detail = config.Get("expect.detail");
  return v;
}

ReplayOutcome ReplayBundleText(const std::string& text) {
  ReplayOutcome outcome;
  const auto expected =
      BundleExpectation(ConfigFile::ParseString(text));
  if (!expected.has_value()) {
    outcome.message = "bundle has no expect block (not a repro bundle?)";
    return outcome;
  }
  outcome.expected = *expected;
  const AuditedRun run = RunAuditedScenarioText(text);
  if (run.violations.empty()) {
    outcome.message = "replay ran clean: expected violation did not fire";
    return outcome;
  }
  const Violation& got = run.violations.front();
  outcome.got = got;
  if (got.invariant == expected->invariant && got.at == expected->at &&
      got.node == expected->node && got.channel == expected->channel &&
      got.detail == expected->detail) {
    outcome.reproduced = true;
    outcome.message = "reproduced: " + got.ToString();
  } else {
    outcome.message = "diverged: expected " + expected->ToString() +
                      " but got " + got.ToString();
  }
  return outcome;
}

std::string MinimizeBundle(const std::string& bundle_text, int* steps) {
  int accepted = 0;
  const ConfigFile original = ConfigFile::ParseString(bundle_text);
  const auto expected = BundleExpectation(original);
  std::string text = StripExpectBlock(bundle_text);
  // Minimize against the invariant CLASS, not the exact violation: every
  // reduction reshuffles node ids and event timing, so the precise record
  // changes while the bug class persists.
  std::string invariant =
      expected.has_value() ? expected->invariant : std::string();
  if (invariant.empty()) {
    const AuditedRun run = RunAuditedScenarioText(text);
    if (run.violations.empty()) return bundle_text;  // Nothing to chase.
    invariant = run.violations.front().invariant;
  }

  // 1. Duration: first try the tightest horizon the recorded violation
  //    suggests, then keep bisecting down.
  long long seconds = original.GetInt("seconds", 10);
  const double warmup = original.GetDouble("warmup", 1.0);
  if (expected.has_value() && expected->at > 0) {
    const long long needed = static_cast<long long>(
        std::ceil(static_cast<double>(expected->at) / kTicksPerSec - warmup)) +
        1;
    if (needed >= 1 && needed < seconds &&
        StillFires(ReplaceKeyLine(text, "seconds", std::to_string(needed)),
                   invariant)) {
      seconds = needed;
      text = ReplaceKeyLine(text, "seconds", std::to_string(seconds));
      ++accepted;
    }
  }
  while (seconds > 1) {
    const long long half = seconds / 2;
    if (!StillFires(ReplaceKeyLine(text, "seconds", std::to_string(half)),
                    invariant)) {
      break;
    }
    seconds = half;
    text = ReplaceKeyLine(text, "seconds", std::to_string(seconds));
    ++accepted;
  }

  // 2. Node count: drop clients, then background pairs, while it fires.
  long long clients = original.GetInt("network.clients", 2);
  while (clients > 1) {
    const std::string candidate = ReplaceKeyLine(
        text, "network.clients", std::to_string(clients - 1));
    if (!StillFires(candidate, invariant)) break;
    --clients;
    text = candidate;
    ++accepted;
  }
  long long pairs = original.GetInt("background.pairs", 0);
  while (pairs > 0) {
    const std::string candidate =
        ReplaceKeyLine(text, "background.pairs", std::to_string(pairs - 1));
    if (!StillFires(candidate, invariant)) break;
    --pairs;
    text = candidate;
    ++accepted;
  }

  if (steps != nullptr) *steps = accepted;
  // Refresh the expectation from the minimized scenario so the bundle
  // replays byte-for-byte as-is.
  const AuditedRun final_run = RunAuditedScenarioText(text);
  if (final_run.violations.empty()) {
    // Should not happen (every accepted step still fired) — fall back to
    // the original bundle rather than emit a non-reproducing one.
    return bundle_text;
  }
  return MakeReproBundle(text, final_run.violations.front());
}

}  // namespace whitefi::bench
