// Reproduces Figure 8: discovery time of L-SIFT and J-SIFT as a fraction
// of the non-SIFT baseline, as the single available white-space fragment
// grows from 1 to 30 UHF channels.
//
// Expected shape (paper Section 5.2): all equal at 1 channel; both SIFT
// algorithms drop quickly below the baseline; L-SIFT is better for narrow
// fragments (no center-resolution endgame), J-SIFT overtakes beyond ~10
// channels (60 MHz) exactly as the expected-scan analysis predicts; on
// wide white spaces J-SIFT saves >75% vs. the baseline.
#include <iostream>

#include "core/discovery.h"
#include "flags.h"
#include "util/parallel.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kPlacements = 400;

struct Point {
  double l_fraction = 0.0;
  double j_fraction = 0.0;
  double baseline_s = 0.0;
};

Point MeasureFragment(int width_channels, std::uint64_t seed) {
  // One free fragment of `width_channels`, rest incumbent-occupied.
  SpectrumMap map;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    if (c >= width_channels) map.SetOccupied(c);
  }
  const auto candidates = map.UsableChannels();
  Rng rng(seed);
  RunningStats l_time, j_time, base_time;
  const DiscoveryParams params;
  for (int i = 0; i < kPlacements; ++i) {
    // AP beacons on a random usable channel and width (paper methodology).
    const Channel ap = rng.Pick(candidates);
    AnalyticScanEnvironment env(ap);
    l_time.Add(LSiftDiscover(env, map, params).elapsed);
    j_time.Add(JSiftDiscover(env, map, params).elapsed);
    base_time.Add(BaselineDiscover(env, map, params).elapsed);
  }
  return Point{l_time.Mean() / base_time.Mean(),
               j_time.Mean() / base_time.Mean(),
               base_time.Mean() / kSecond};
}

int Main(int jobs) {
  std::cout << "Figure 8: L-SIFT / J-SIFT discovery time as a fraction of "
               "the non-SIFT baseline\n"
            << "(" << kPlacements
            << " random AP placements per fragment width; 100 ms per scan)\n\n";
  Table table({"fragment(ch)", "baseline(s)", "L-SIFT/base", "J-SIFT/base",
               "winner"});
  // Each fragment width is a pure function of its own seed, so the sweep
  // parallelizes trivially; rows are added serially in width order.
  constexpr std::uint64_t kSeedBase = 800;
  const std::vector<Point> points =
      ParallelMap(jobs, static_cast<std::size_t>(kNumUhfChannels),
                  [](std::size_t i) {
                    return MeasureFragment(static_cast<int>(i) + 1,
                                           kSeedBase + i);
                  });
  for (int n = 1; n <= kNumUhfChannels; ++n) {
    const Point& p = points[static_cast<std::size_t>(n - 1)];
    table.AddRow({std::to_string(n), FormatDouble(p.baseline_s, 2),
                  FormatDouble(p.l_fraction, 3), FormatDouble(p.j_fraction, 3),
                  p.l_fraction <= p.j_fraction ? "L-SIFT" : "J-SIFT"});
  }
  table.Print(std::cout);
  std::cout << "\nexpected-scan analysis: L = NC/2, J = (NC + 2^(NW-1) + "
               "(NW-1)/2)/NW; crossover ~10 channels\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(whitefi::bench::JobsFromArgs(argc, argv));
}
