// Extension: quantifying the Section 6 discussion — contiguous WhiteFi
// channels vs. hypothetical non-contiguous OFDM fragment aggregation.
//
// For each locale class (Figure 2's urban/suburban/rural maps) this prints
// the capacity of WhiteFi's best contiguous channel, the aggregation
// capacity under ideal and realistic filter guards, and the average guard
// bandwidth at which aggregation stops paying.  The paper's engineering
// judgment — contiguous channels until sharp bandpass filters and an
// OFDMA uplink exist — falls out of the numbers: in rural spectrum the
// contiguous 20 MHz channel already captures most of the benefit, while
// urban fragmentation is exactly where aggregation would help most but
// leakage guards hurt the narrow fragments most.
#include <iostream>

#include "phy/noncontiguous.h"
#include "spectrum/locales.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

int Main() {
  std::cout << "Extension (paper Section 6): contiguous channel vs. "
               "non-contiguous OFDM aggregation\n"
            << "(capacities in empty-5MHz-channel units, 20 locales per "
               "class)\n\n";
  Rng rng(6100);
  Table table({"class", "contiguous", "aggregate(ideal)",
               "aggregate(0.5MHz guards)", "aggregate(1.5MHz guards)",
               "break-even guard"});
  for (LocaleClass locale : kAllLocaleClasses) {
    RunningStats contiguous, ideal, realistic, strained, breakeven;
    for (int i = 0; i < 20; ++i) {
      const SpectrumMap map = GenerateLocaleMap(locale, rng);
      contiguous.Add(BestContiguousCapacity(map));
      NcOfdmParams params;
      params.edge_guard_mhz = 0.0;
      ideal.Add(NonContiguousCapacity(map, params));
      params.edge_guard_mhz = 0.5;
      realistic.Add(NonContiguousCapacity(map, params));
      params.edge_guard_mhz = 1.5;
      strained.Add(NonContiguousCapacity(map, params));
      breakeven.Add(BreakEvenGuardMHz(map));
    }
    table.AddRow({LocaleClassName(locale), FormatDouble(contiguous.Mean(), 2),
                  FormatDouble(ideal.Mean(), 2),
                  FormatDouble(realistic.Mean(), 2),
                  FormatDouble(strained.Mean(), 2),
                  FormatDouble(breakeven.Mean(), 2) + " MHz"});
  }
  table.Print(std::cout);
  std::cout << "\naggregation's theoretical upside is largest exactly where "
               "its leakage guards cost the most (urban, narrow fragments); "
               "WhiteFi's contiguous choice gives up little in rural "
               "spectrum — the 2009 judgment quantified\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
