// Reproduces Figure 14: the prototype-testbed trace.
//
// Setup (paper Section 5.4.2): the Building-5 spectrum map (free TV
// channels 26-30, 33-35, 39, 48) gives a 20 MHz fragment, a 10 MHz
// fragment, and two isolated 5 MHz channels.  One WhiteFi AP + client run
// a backlogged flow while background traffic is scripted:
//
//   t= 50 s: background appears on channels 26-29  (kills the 20 MHz pick)
//   t=100 s: background appears on channels 33-34  (kills the 10 MHz pick)
//   t=150 s: background on 33-34 removed
//   t=200 s: background on 26-29 removed
//
// The bench prints, per 5 s window: the MCham value of the best channel in
// each fragment (top of the paper's figure), WhiteFi's throughput and
// operating channel, and OPT (per-window max over the static 20 MHz,
// 10 MHz and 5 MHz runs under the same script).
#include <iostream>

#include "core/ap.h"
#include "core/client.h"
#include "core/mcham.h"
#include "scenario.h"
#include "sim/traffic.h"
#include "spectrum/campus.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

constexpr double kDuration = 250.0;
constexpr double kWindow = 5.0;
constexpr int kWindows = static_cast<int>(kDuration / kWindow);

std::vector<BackgroundSpec> Script() {
  std::vector<BackgroundSpec> background;
  for (int tv : {26, 27, 28, 29}) {
    BackgroundSpec spec;
    spec.channel = IndexOfTvChannel(tv);
    spec.cbr_interval = 12 * kTicksPerMs;
    spec.on_at = 50 * kTicksPerSec;
    spec.off_at = 200 * kTicksPerSec;
    background.push_back(spec);
  }
  for (int tv : {33, 34}) {
    BackgroundSpec spec;
    spec.channel = IndexOfTvChannel(tv);
    spec.cbr_interval = 12 * kTicksPerMs;
    spec.on_at = 100 * kTicksPerSec;
    spec.off_at = 150 * kTicksPerSec;
    background.push_back(spec);
  }
  return background;
}

ScenarioConfig BaseConfig(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.base_map = Building5Map();
  config.num_clients = 1;
  config.warmup_s = 0.0;
  config.measure_s = kDuration;
  config.background = Script();
  ApParams ap;
  ap.assignment_interval = 3 * kTicksPerSec;
  ap.first_assignment_delay = 2 * kTicksPerSec;
  ap.scanner.dwell = 250 * kTicksPerMs;  // ~1 s/channel spirit, faster sweep.
  config.ap_params = ap;
  return config;
}

/// Per-window delivered Mbps extracted from cumulative samples.
std::vector<double> WindowRates(const std::vector<std::uint64_t>& cumulative) {
  std::vector<double> rates;
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    rates.push_back(8.0 * static_cast<double>(cumulative[i] - cumulative[i - 1]) /
                    kWindow / 1e6);
  }
  return rates;
}

std::vector<double> RunStaticTrace(const Channel& channel,
                                   std::uint64_t seed) {
  ScenarioConfig config = BaseConfig(seed);
  config.static_channel = channel;
  auto samples = std::make_shared<std::vector<std::uint64_t>>();
  config.customize = [samples](World& world) {
    samples->push_back(0);
    for (int w = 1; w <= kWindows; ++w) {
      world.sim().Schedule(static_cast<SimTime>(w * kWindow) * kTicksPerSec,
                           [samples, &world] {
                             samples->push_back(world.AppBytesInSsid(1));
                           });
    }
  };
  RunScenario(config);
  return WindowRates(*samples);
}

int Main() {
  std::cout << "Figure 14: prototype trace — MCham per fragment and "
               "throughput over time\n\n";
  // Static baselines under the same script.
  const Channel w20{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel w10{IndexOfTvChannel(34), ChannelWidth::kW10};
  const Channel w5{IndexOfTvChannel(39), ChannelWidth::kW5};
  const auto t20 = RunStaticTrace(w20, 1501);
  const auto t10 = RunStaticTrace(w10, 1502);
  const auto t5 = RunStaticTrace(w5, 1503);

  // The adaptive WhiteFi run, assembled directly so we can sample the AP's
  // live MCham view of each fragment.
  ScenarioConfig config = BaseConfig(1500);
  struct WindowSample {
    double mcham20, mcham10, mcham5, mbps;
    std::string channel;
  };
  auto rows = std::make_shared<std::vector<WindowSample>>();
  auto cumulative = std::make_shared<std::vector<std::uint64_t>>();
  // RunScenario owns the world; we reach the AP through the device list.
  config.customize = [&, rows, cumulative](World& world) {
    cumulative->push_back(0);
    for (int w = 1; w <= kWindows; ++w) {
      world.sim().Schedule(
          static_cast<SimTime>(w * kWindow) * kTicksPerSec,
          [rows, cumulative, &world, w20, w10, w5] {
            ApNode* ap = nullptr;
            for (const auto& device : world.devices()) {
              if ((ap = dynamic_cast<ApNode*>(device.get())) != nullptr) break;
            }
            const auto& obs = ap->scanner().Observation();
            cumulative->push_back(world.AppBytesInSsid(1));
            const double mbps =
                8.0 * static_cast<double>(cumulative->back() -
                                          (*cumulative)[cumulative->size() - 2]) /
                kWindow / 1e6;
            rows->push_back(WindowSample{MCham(w20, obs), MCham(w10, obs),
                                         MCham(w5, obs), mbps,
                                         ap->main_channel().ToString()});
          });
    }
  };
  RunScenario(config);

  Table table({"t(s)", "MCham20", "MCham10", "MCham5", "WhiteFi(Mbps)",
               "channel", "OPT(Mbps)"});
  for (std::size_t w = 0; w < rows->size(); ++w) {
    const double opt = std::max({t20.size() > w ? t20[w] : 0.0,
                                 t10.size() > w ? t10[w] : 0.0,
                                 t5.size() > w ? t5[w] : 0.0});
    const WindowSample& s = (*rows)[w];
    table.AddRow({FormatDouble((w + 1) * kWindow, 0), FormatDouble(s.mcham20, 2),
                  FormatDouble(s.mcham10, 2), FormatDouble(s.mcham5, 2),
                  FormatDouble(s.mbps, 2), s.channel, FormatDouble(opt, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected: 20 MHz until t=50, 10 MHz until t=100, 5 MHz "
               "until t=150, back to 10 MHz, then 20 MHz after t=200 — "
               "tracking the fragment with the best MCham\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
