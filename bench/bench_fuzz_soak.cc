// Seed-fuzz soak: randomized scenarios under the invariant auditor.
//
// Each trial generates a scenario (maps, clients, background pairs, mic
// schedules, protocol hardenings, fault plans) from a named substream of
// the root seed and runs it with every cross-layer invariant armed:
// incumbent safety, chirp liveness, view convergence, medium book
// conservation, clock monotonicity, MAC timing.  A clean soak exits 0.
//
// On a violation the soak fails CLOSED with an artifact, not a log line:
// the lowest-index violating trial's scenario text plus its first
// violation become a repro bundle (minimized by default), written to
// --out, and `scenario_cli --replay <bundle>` reproduces the identical
// violation byte-for-byte.
//
// Flags:
//   --seeds N              trials to run (default 20)
//   --jobs N               parallel trials; byte-identical to --jobs 1
//   --root-seed S          substream root (default 1)
//   --safety-budget-ms M   override the incumbent-safety budget — a
//                          deliberately weakened budget (e.g. 1) is the
//                          self-test that the pipeline detects, bundles,
//                          and replays a violation
//   --out PATH             bundle path (default fuzz_repro.bundle)
//   --no-minimize          write the raw failing bundle unminimized
//
// Exit status: 0 all trials clean, 1 violation found (bundle written),
// 2 bad flags.
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz.h"
#include "util/parallel.h"

namespace whitefi::bench {
namespace {

struct TrialOutcome {
  std::string scenario;       ///< Generated text (kept only on failure).
  std::uint64_t violations = 0;
  Violation first;            ///< Valid iff violations > 0.
  double mbps = 0.0;
  std::uint64_t faults = 0;
};

int Main(int argc, char** argv) {
  int seeds = 20;
  int jobs = 1;
  std::uint64_t root_seed = 1;
  long long safety_budget_ms = 0;
  std::string out_path = "fuzz_repro.bundle";
  bool minimize = true;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument(flag + " needs a value");
        }
        return argv[++i];
      };
      if (flag == "--seeds") seeds = std::stoi(next());
      else if (flag == "--jobs") jobs = ParseJobs(next());
      else if (flag == "--root-seed") root_seed = std::stoull(next());
      else if (flag == "--safety-budget-ms") {
        safety_budget_ms = std::stoll(next());
      } else if (flag == "--out") out_path = next();
      else if (flag == "--no-minimize") minimize = false;
      else {
        std::cerr << "usage: bench_fuzz_soak [--seeds N] [--jobs N] "
                     "[--root-seed S] [--safety-budget-ms M] [--out PATH] "
                     "[--no-minimize]\n";
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }

  FuzzOptions options;
  options.root_seed = root_seed;
  options.safety_budget_ms = safety_budget_ms;

  std::cout << "Fuzz soak: " << seeds << " randomized scenarios under the "
            << "invariant auditor (root seed " << root_seed;
  if (safety_budget_ms > 0) {
    std::cout << ", safety budget " << safety_budget_ms << " ms";
  }
  std::cout << ")\n";

  // Scenario text is generated inside each trial but depends only on
  // (root seed, index) — never on scheduling — so any --jobs N collects
  // the same outcomes in the same index order.
  const std::vector<TrialOutcome> outcomes = ParallelMap(
      jobs, static_cast<std::size_t>(seeds), [&](std::size_t t) {
        TrialOutcome outcome;
        const std::string scenario =
            GenerateFuzzScenario(options, static_cast<std::uint64_t>(t));
        const AuditedRun run = RunAuditedScenarioText(scenario);
        outcome.violations = run.violation_count;
        if (!run.violations.empty()) {
          outcome.first = run.violations.front();
          outcome.scenario = scenario;
        }
        outcome.mbps = run.result.aggregate_mbps;
        outcome.faults = run.result.faults_injected;
        return outcome;
      });

  std::uint64_t total_faults = 0;
  double total_mbps = 0.0;
  int failing = -1;
  for (int t = 0; t < seeds; ++t) {
    const TrialOutcome& outcome = outcomes[static_cast<std::size_t>(t)];
    total_faults += outcome.faults;
    total_mbps += outcome.mbps;
    if (outcome.violations > 0 && failing < 0) failing = t;
  }
  std::cout << "ran " << seeds << " trials, " << total_faults
            << " faults injected, mean "
            << (seeds > 0 ? total_mbps / seeds : 0.0)
            << " Mbps aggregate\n";

  if (failing < 0) {
    std::cout << "all invariants held\n";
    return 0;
  }

  const TrialOutcome& bad = outcomes[static_cast<std::size_t>(failing)];
  std::cout << "VIOLATION in trial " << failing << " (" << bad.violations
            << " total): " << bad.first.ToString() << "\n";
  std::string bundle = MakeReproBundle(bad.scenario, bad.first);
  if (minimize) {
    int steps = 0;
    bundle = MinimizeBundle(bundle, &steps);
    std::cout << "minimizer accepted " << steps << " reductions\n";
  }
  std::ofstream os(out_path);
  os << bundle;
  os.close();
  std::cout << "repro bundle: " << out_path << "\n"
            << "replay with: scenario_cli --replay " << out_path << "\n";
  return 1;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(argc, argv);
}
