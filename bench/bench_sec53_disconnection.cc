// Reproduces the Section 5.3 disconnection experiment.
//
// Setup: an AP-client pair with an active transfer; a wireless microphone
// switches on inside the operating channel.  The client vacates and chirps
// on the backup channel; the AP's secondary radio visits the backup
// channel every 3 s, picks up the chirp, reassigns spectrum, announces,
// and the network resumes.
//
// Paper result: the chirp is picked up within at most 3 s and "the system
// is operational again after a lag of at most 4 seconds".
#include <iostream>

#include "scenario.h"
#include "spectrum/campus.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kTrials = 20;

int Main() {
  std::cout << "Section 5.3: reconnection time after a mic appears on the "
               "operating channel (" << kTrials << " trials)\n\n";
  std::vector<double> outages;
  int failures = 0;
  Rng rng(530);
  for (int trial = 0; trial < kTrials; ++trial) {
    ScenarioConfig config;
    config.seed = 5300 + static_cast<std::uint64_t>(trial);
    config.base_map = Building5Map();
    config.num_clients = 1;
    config.warmup_s = 2.0;
    config.measure_s = 14.0;
    config.ap_params.scanner.dwell = 150 * kTicksPerMs;
    // A mic appears somewhere in the 26-30 fragment (where the initial
    // assignment put the 20 MHz channel) at a random time, audible only to
    // the client ("we switched on a wireless microphone near the client"):
    // the AP must learn of it through the chirp protocol.
    MicActivation mic;
    mic.channel = IndexOfTvChannel(rng.UniformInt(26, 30));
    mic.on_time = rng.Uniform(3.0, 5.0) * kSecond;
    mic.off_time = 600.0 * kSecond;
    config.customize = [mic](World& world) {
      std::vector<int> client_ids;
      for (const auto& device : world.devices()) {
        if (device->ssid() == 1 && !device->IsAp()) {
          client_ids.push_back(device->NodeId());
        }
      }
      world.AddMic(mic, client_ids);
    };
    const RunResult run = RunScenario(config);
    if (run.disconnects >= 1 && run.max_outage_s > 0.0) {
      outages.push_back(run.max_outage_s);
    } else if (run.final_channel.Contains(mic.channel)) {
      ++failures;  // Never vacated — should not happen.
    } else {
      // The AP detected the mic itself and moved the network before the
      // client ever timed out: a zero-outage recovery.
      outages.push_back(0.0);
    }
  }

  Table table({"statistic", "value"});
  table.AddRow({"trials", std::to_string(kTrials)});
  table.AddRow({"recoveries", std::to_string(static_cast<int>(outages.size()))});
  table.AddRow({"failures (never vacated)", std::to_string(failures)});
  table.AddRow({"mean outage (s)", FormatDouble(Mean(outages), 2)});
  table.AddRow({"median outage (s)", FormatDouble(Median(outages), 2)});
  table.AddRow({"max outage (s)",
                FormatDouble(*std::max_element(outages.begin(), outages.end()),
                             2)});
  table.Print(std::cout);
  std::cout << "\npaper: chirp picked up within <= 3 s; operational again "
               "within <= 4 s\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
