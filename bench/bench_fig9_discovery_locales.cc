// Reproduces Figure 9: time to discover one AP in metropolitan, suburban
// and rural spectrum maps (post-DTV), comparing the non-SIFT baseline,
// L-SIFT, and J-SIFT.
//
// Paper: in metro areas J-SIFT is ~34% faster than the baseline; in rural
// areas (more contiguous channels) it discovers APs in less than a third
// of the baseline's time.
#include <iostream>

#include "core/discovery.h"
#include "flags.h"
#include "spectrum/locales.h"
#include "util/parallel.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kLocalesPerClass = 10;
constexpr int kRunsPerLocale = 10;

/// One locale realization, fully determined before any trial runs: the
/// map and a private Rng forked from the master stream in locale order.
/// Pre-forking serially is what makes `--jobs N` byte-identical to
/// `--jobs 1` — the random stream of a locale never depends on which
/// thread runs it or which locales finished first.
struct LocaleInstance {
  LocaleClass locale;
  SpectrumMap map;
  Rng rng;
};

/// Per-locale discovery-time samples, in run order.
struct LocaleSamples {
  std::vector<double> base_s;
  std::vector<double> l_s;
  std::vector<double> j_s;
};

LocaleSamples MeasureLocale(LocaleInstance& instance,
                            const DiscoveryParams& params) {
  LocaleSamples samples;
  const auto candidates = instance.map.UsableChannels();
  if (candidates.empty()) return samples;
  for (int run = 0; run < kRunsPerLocale; ++run) {
    const Channel ap = instance.rng.Pick(candidates);
    AnalyticScanEnvironment env(ap);
    samples.base_s.push_back(
        BaselineDiscover(env, instance.map, params).elapsed / kSecond);
    samples.l_s.push_back(
        LSiftDiscover(env, instance.map, params).elapsed / kSecond);
    samples.j_s.push_back(
        JSiftDiscover(env, instance.map, params).elapsed / kSecond);
  }
  return samples;
}

int Main(int jobs) {
  std::cout << "Figure 9: time to discover one AP per locale class\n"
            << "(" << kLocalesPerClass << " locales x " << kRunsPerLocale
            << " random AP placements, 100 ms per scan)\n\n";
  // Under spatial variation the client cannot prune candidates whose span
  // overlaps channels only *it* sees as occupied, so the realistic
  // non-SIFT baseline tries every width at each free center (the paper's
  // ~NC*NW/2 cost model).
  DiscoveryParams params;
  params.baseline_skips_blocked_spans = false;

  // Serial prologue: realize every locale and fork its Rng in a fixed
  // order from the master stream.
  Rng rng(900);
  std::vector<LocaleInstance> instances;
  for (LocaleClass locale : kAllLocaleClasses) {
    for (int loc = 0; loc < kLocalesPerClass; ++loc) {
      instances.push_back(
          LocaleInstance{locale, GenerateLocaleMap(locale, rng), rng.Fork()});
    }
  }

  // Parallel trials; results land at their locale index.
  const std::vector<LocaleSamples> results =
      ParallelMap(jobs, instances.size(), [&](std::size_t i) {
        return MeasureLocale(instances[i], params);
      });

  // Serial epilogue: aggregate per class in locale order and print.
  Table table({"locale", "baseline(s)", "L-SIFT(s)", "J-SIFT(s)",
               "J-SIFT saving"});
  std::size_t next = 0;
  for (LocaleClass locale : kAllLocaleClasses) {
    RunningStats base_s, l_s, j_s;
    for (int loc = 0; loc < kLocalesPerClass; ++loc, ++next) {
      const LocaleSamples& samples = results[next];
      for (double v : samples.base_s) base_s.Add(v);
      for (double v : samples.l_s) l_s.Add(v);
      for (double v : samples.j_s) j_s.Add(v);
    }
    table.AddRow({LocaleClassName(locale), FormatDouble(base_s.Mean(), 2),
                  FormatDouble(l_s.Mean(), 2), FormatDouble(j_s.Mean(), 2),
                  FormatPercent(1.0 - j_s.Mean() / base_s.Mean())});
  }
  table.Print(std::cout);
  std::cout << "\npaper: metro saving ~34%; rural discovery in < 1/3 of the "
               "baseline time\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(whitefi::bench::JobsFromArgs(argc, argv));
}
