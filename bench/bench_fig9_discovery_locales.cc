// Reproduces Figure 9: time to discover one AP in metropolitan, suburban
// and rural spectrum maps (post-DTV), comparing the non-SIFT baseline,
// L-SIFT, and J-SIFT.
//
// Paper: in metro areas J-SIFT is ~34% faster than the baseline; in rural
// areas (more contiguous channels) it discovers APs in less than a third
// of the baseline's time.
#include <iostream>

#include "core/discovery.h"
#include "spectrum/locales.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kLocalesPerClass = 10;
constexpr int kRunsPerLocale = 10;

int Main() {
  std::cout << "Figure 9: time to discover one AP per locale class\n"
            << "(" << kLocalesPerClass << " locales x " << kRunsPerLocale
            << " random AP placements, 100 ms per scan)\n\n";
  Rng rng(900);
  // Under spatial variation the client cannot prune candidates whose span
  // overlaps channels only *it* sees as occupied, so the realistic
  // non-SIFT baseline tries every width at each free center (the paper's
  // ~NC*NW/2 cost model).
  DiscoveryParams params;
  params.baseline_skips_blocked_spans = false;
  Table table({"locale", "baseline(s)", "L-SIFT(s)", "J-SIFT(s)",
               "J-SIFT saving"});
  for (LocaleClass locale : kAllLocaleClasses) {
    RunningStats base_s, l_s, j_s;
    for (int loc = 0; loc < kLocalesPerClass; ++loc) {
      const SpectrumMap map = GenerateLocaleMap(locale, rng);
      const auto candidates = map.UsableChannels();
      if (candidates.empty()) continue;
      for (int run = 0; run < kRunsPerLocale; ++run) {
        const Channel ap = rng.Pick(candidates);
        AnalyticScanEnvironment env(ap);
        base_s.Add(BaselineDiscover(env, map, params).elapsed / kSecond);
        l_s.Add(LSiftDiscover(env, map, params).elapsed / kSecond);
        j_s.Add(JSiftDiscover(env, map, params).elapsed / kSecond);
      }
    }
    table.AddRow({LocaleClassName(locale), FormatDouble(base_s.Mean(), 2),
                  FormatDouble(l_s.Mean(), 2), FormatDouble(j_s.Mean(), 2),
                  FormatPercent(1.0 - j_s.Mean() / base_s.Mean())});
  }
  table.Print(std::cout);
  std::cout << "\npaper: metro saving ~34%; rural discovery in < 1/3 of the "
               "baseline time\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
