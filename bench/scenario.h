// Shared scenario runner for the paper's simulation experiments
// (Figures 10-14 and Section 5.3).
//
// Builds the paper's canonical setup: one WhiteFi AP with N associated
// clients (all backlogged, up- and downstream), plus background AP/client
// pairs transmitting CBR (or Markov-modulated CBR) on 5 MHz channels.
// The WhiteFi network either adapts (the real spectrum-assignment
// algorithm) or is pinned to a static channel (the OPT-w baselines: the
// paper's omniscient static algorithms, realized by exhaustively
// simulating every candidate channel and keeping the best).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "core/ap.h"
#include "core/client.h"
#include "fault/fault.h"
#include "geodb/runtime.h"
#include "sim/traffic.h"
#include "spectrum/spectrum_map.h"

namespace whitefi::bench {

/// Background-pair placement and traffic.
struct BackgroundSpec {
  UhfIndex channel = 0;            ///< 5 MHz home channel.
  SimTime cbr_interval = 30 * kTicksPerMs;
  int payload_bytes = 1000;
  /// When set, the pair is Markov on/off modulated (Figure 13).
  std::optional<MarkovOnOffSource::Params> markov;
  /// Activate at this time (and the deactivation below) — used by the
  /// Figure 14 script.  Defaults: always on.
  SimTime on_at = 0;
  SimTime off_at = -1;  ///< -1 = never.
};

/// One full scenario.
struct ScenarioConfig {
  std::uint64_t seed = 1;
  SpectrumMap base_map;          ///< TV incumbents (campus map etc.).
  int num_clients = 4;
  double client_map_flip_p = 0.0;  ///< Spatial variation (Figure 12).
  std::vector<BackgroundSpec> background;
  std::vector<MicActivation> mics;
  double warmup_s = 2.0;
  double measure_s = 5.0;
  int payload_bytes = 1000;
  /// nullopt = adaptive WhiteFi; otherwise a pinned static channel.
  std::optional<Channel> static_channel;
  ApParams ap_params;
  ClientParams client_params;
  /// Invoked after StartAll with access to the world (scripted events).
  std::function<void(World&)> customize;
  /// Optional observability sinks, copied into the WorldConfig (non-owning;
  /// must outlive the run).  Leave null for zero instrumentation cost.
  Observability obs;
  /// Fault schedule (see src/fault).  An Empty() plan — the default —
  /// creates no injector at all, so the run is byte-identical to one
  /// predating the fault subsystem.
  FaultPlan faults;
  /// Seed for the injector's own random stream.  Deliberately separate
  /// from `seed`: the injector must never perturb the simulation's fork
  /// sequence.  0 = derive from `seed` via the named "scenario.faults"
  /// substream (see DeriveSeed in util/rng.h).
  std::uint64_t fault_seed = 0;
  /// Optional runtime invariant auditor (non-owning; must outlive the
  /// run).  RunScenario threads it through the Observability bundle,
  /// attaches it to the world, and registers the AP and every client.
  /// Null — the default — costs nothing and keeps the run byte-identical.
  InvariantAuditor* auditor = nullptr;
  /// Dynamic geo-db service + per-device resilient sessions + client
  /// mobility (see src/geodb).  Disabled — the default — creates nothing
  /// and keeps the run byte-identical to a geodb-free build: every geodb
  /// random stream is a named substream of `seed`, never a world fork.
  /// When enabled and `auditor` is set, RunScenario also arms the
  /// position-aware incumbent-safety check against the runtime's ground
  /// truth.
  GeoDbRuntimeParams geodb;
};

/// The seed the fault injector will actually run with: `fault_seed` when
/// pinned, otherwise the named substream derived from `seed`.  Exposed so
/// tests can assert the substream discipline (never the raw root seed).
std::uint64_t ScenarioFaultSeed(const ScenarioConfig& config);

/// Result of one run.
struct RunResult {
  double per_client_mbps = 0.0;  ///< Aggregate / clients / measure window.
  double aggregate_mbps = 0.0;
  int switches = 0;
  int disconnects = 0;
  double max_outage_s = 0.0;
  /// Every completed outage across all clients, in seconds.
  std::vector<double> outages_s;
  /// Faults injected during the run (0 without a fault plan).
  std::uint64_t faults_injected = 0;
  Channel final_channel{0, ChannelWidth::kW5};
  // Geo-db session statistics (all zero when config.geodb is disabled).
  int geodb_degraded = 0;        ///< fresh -> degraded/blackout edges.
  int geodb_recovered = 0;       ///< -> fresh recovery edges.
  std::uint64_t geodb_queries = 0;
  std::uint64_t geodb_shed = 0;  ///< Overload rejections served.
  std::uint64_t geodb_pushes = 0;
};

/// Runs one scenario.
RunResult RunScenario(const ScenarioConfig& config);

/// Best static channel of width `w` (exhaustive over channels usable under
/// the base map), as per-client throughput.  Returns 0 when no candidate
/// exists.  `reduced_measure_s` trims the per-candidate simulation time.
/// `jobs` spreads the independent per-candidate simulations over a thread
/// pool; every candidate run is self-seeded from the config, so the result
/// is byte-identical at any job count (jobs <= 1 = the serial loop).
double OptStaticThroughput(const ScenarioConfig& config, ChannelWidth w,
                           double reduced_measure_s = 0.0, int jobs = 1);

/// Convenience: OPT over all three widths.
double OptThroughput(const ScenarioConfig& config,
                     double reduced_measure_s = 0.0, int jobs = 1);

/// Channels usable under the map AND free at every client map realization
/// implied by the config (used to restrict OPT candidates under spatial
/// variation; with flip_p == 0 this is just the base map's usable set).
std::vector<Channel> StaticCandidates(const ScenarioConfig& config,
                                      ChannelWidth w);

}  // namespace whitefi::bench
