// Ablation: AP discovery under SIFT false negatives (paper Section 4.2.1:
// "in extremely noisy environments ... SIFT might have false negatives ...
// this will add delay ... but the discovery algorithm will continue to
// work as long as we can detect even a single packet").
//
// Sweeps the per-scan miss probability and reports, for L-SIFT and J-SIFT
// with the retry-round policy, the success rate and mean discovery time —
// quantifying exactly how much delay the noise adds and where the retry
// budget stops being enough.
#include <iostream>

#include "core/discovery.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kTrials = 300;

struct Outcome {
  double success = 0.0;
  double mean_time_s = 0.0;
};

template <typename Algorithm>
Outcome Measure(Algorithm&& algorithm, double miss, int max_rounds,
                Rng& rng) {
  const SpectrumMap map;  // Full band.
  const auto usable = map.UsableChannels();
  DiscoveryParams params;
  params.max_rounds = max_rounds;
  int found = 0;
  RunningStats time_s;
  for (int t = 0; t < kTrials; ++t) {
    const Channel ap = rng.Pick(usable);
    AnalyticScanEnvironment env(ap, miss, &rng);
    const DiscoveryResult result = algorithm(env, map, params);
    if (result.found) {
      ++found;
      time_s.Add(result.elapsed / kSecond);
    }
  }
  return Outcome{static_cast<double>(found) / kTrials, time_s.Mean()};
}

int Main() {
  std::cout << "Ablation: discovery under SIFT false negatives\n"
            << "(" << kTrials << " random AP placements per cell, full band; "
            << "time counts all retry rounds)\n\n";
  Rng rng(9300);
  Table table({"miss prob", "rounds", "L-SIFT ok", "L-SIFT time(s)",
               "J-SIFT ok", "J-SIFT time(s)"});
  for (double miss : {0.0, 0.2, 0.4, 0.6}) {
    for (int rounds : {1, 3}) {
      const Outcome l = Measure(
          [](ScanEnvironment& e, const SpectrumMap& m,
             const DiscoveryParams& p) { return LSiftDiscover(e, m, p); },
          miss, rounds, rng);
      const Outcome j = Measure(
          [](ScanEnvironment& e, const SpectrumMap& m,
             const DiscoveryParams& p) { return JSiftDiscover(e, m, p); },
          miss, rounds, rng);
      table.AddRow({FormatDouble(miss, 1), std::to_string(rounds),
                    FormatPercent(l.success), FormatDouble(l.mean_time_s, 2),
                    FormatPercent(j.success), FormatDouble(j.mean_time_s, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nretry rounds convert misses into delay instead of failure; "
               "a wide AP overlaps several scan positions, so L-SIFT "
               "tolerates heavy noise even in one round\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
