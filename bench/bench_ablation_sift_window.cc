// Ablation: SIFT's sliding-window length (paper Section 4.2.1).
//
// The window must be (a) long enough to ride over mid-packet OFDM
// amplitude dips and (b) strictly shorter than the smallest SIFS it must
// preserve — 10 samples for 20 MHz.  The paper picks 5.  This bench sweeps
// the window length and reports, per width, the Table-1-style detection
// rate and the width-classification accuracy: small windows fragment
// packets at the dips; windows >= 10 bridge the 20 MHz SIFS and destroy
// the data/ACK pattern entirely.
#include <iostream>

#include "sift_experiment.h"
#include "sift/detector.h"
#include "sift/matcher.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

struct Cell {
  double detection = 0.0;
  bool width_ok = false;
};

Cell Evaluate(ChannelWidth width, int window, std::uint64_t seed) {
  SignalParams params;
  params.deep_ramp_probability = 0.0;
  const PhyTiming t = PhyTiming::ForWidth(width);
  const Us interval =
      t.FrameDuration(1000) + t.Sifs() + t.AckDuration() + 3000.0;
  const SignalRun run =
      MakeIperfRun(width, 120, interval, 1000, params, Rng(seed));
  SiftParams sift;
  sift.window = window;
  SiftDetector detector(sift);
  const auto bursts = detector.Detect(run.samples);
  Cell cell;
  cell.detection =
      static_cast<double>(CountDetected(run.packets, bursts,
                                        /*require_duration_match=*/true)) /
      static_cast<double>(run.packets.size());
  const auto inferred = PatternMatcher().DominantWidth(bursts);
  cell.width_ok = inferred.has_value() && *inferred == width;
  return cell;
}

int Main() {
  std::cout << "Ablation: SIFT sliding-window length (paper uses 5; the "
               "minimum SIFS is 10 samples at 20 MHz)\n\n";
  Table table({"window", "det 5MHz", "det 10MHz", "det 20MHz", "width 5MHz",
               "width 10MHz", "width 20MHz"});
  std::uint64_t seed = 7300;
  for (int window : {1, 2, 3, 5, 8, 10, 12, 16}) {
    std::vector<std::string> row{std::to_string(window)};
    std::vector<std::string> width_cols;
    for (ChannelWidth width : kAllWidths) {
      const Cell cell = Evaluate(width, window, seed++);
      row.push_back(FormatDouble(cell.detection, 2));
      width_cols.push_back(cell.width_ok ? "ok" : "WRONG");
    }
    row.insert(row.end(), width_cols.begin(), width_cols.end());
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nexpected: tiny windows fragment packets on envelope dips; "
               "windows >= 10 bridge the 20 MHz SIFS and lose its "
               "data/ACK pattern; 5 is the sweet spot\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
