// Reproduces Table 1: SIFT's packet detection rate across channel widths
// (5/10/20 MHz) and traffic intensities (0.125-1 Mbps).
//
// Methodology (paper Section 5.1): per cell, 10 runs of 110 packets of
// 1000 bytes each; a packet counts as detected when SIFT recovers a burst
// overlapping it whose measured length matches the transmitted one; the
// cell reports the median ratio over the runs.  The paper's values are
// 0.97-1.00 everywhere, with 5 MHz slightly lower because of the
// low-amplitude ramp its hardware puts at the start of 5 MHz packets.
#include <iostream>

#include "flags.h"
#include "sift_experiment.h"
#include "sift/detector.h"
#include "util/parallel.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kPacketsPerRun = 110;
constexpr int kRuns = 10;
constexpr int kPayloadBytes = 1000;

double MedianDetectionRate(ChannelWidth width, double rate_mbps,
                           std::uint64_t seed) {
  // 1000-byte packets at `rate_mbps`: inter-packet interval in us.
  const Us interval = 8.0 * kPayloadBytes / rate_mbps;
  Rng rng(seed);
  // The cell's runs ride the batched scanner: one SiftBatch pass per
  // flush-group of runs, byte-identical to the old detector-per-run loop.
  const std::vector<int> detected = BatchedDetectionCounts(
      width, kRuns, kPacketsPerRun, interval, kPayloadBytes, SignalParams{},
      rng, /*require_duration_match=*/true);
  std::vector<double> rates;
  rates.reserve(detected.size());
  for (const int count : detected) {
    rates.push_back(static_cast<double>(count) / kPacketsPerRun);
  }
  return Median(std::move(rates));
}

int Main(int jobs) {
  std::cout << "Table 1: SIFT packet detection rate (median of " << kRuns
            << " runs, " << kPacketsPerRun << " x " << kPayloadBytes
            << "B packets per run)\n"
            << "Paper: 0.97-1.00 everywhere; 5 MHz slightly lower due to the "
               "ramp artifact.\n\n";
  const std::vector<double> rates{0.125, 0.25, 0.5, 0.75, 1.0};
  Table table({"width", "0.125M", "0.25M", "0.5M", "0.75M", "1M"});
  // Every cell is seeded by its grid index alone, so the grid is a pure
  // index -> rate map and parallelizes without changing a digit.
  constexpr std::uint64_t kSeedBase = 1000;
  const std::vector<double> cells = ParallelMap(
      jobs, kAllWidths.size() * rates.size(), [&](std::size_t i) {
        const ChannelWidth width = kAllWidths[i / rates.size()];
        const double rate = rates[i % rates.size()];
        return MedianDetectionRate(width, rate, kSeedBase + i);
      });
  std::size_t cell = 0;
  for (ChannelWidth width : kAllWidths) {
    std::vector<std::string> row{WidthLabel(width)};
    for (std::size_t r = 0; r < rates.size(); ++r, ++cell) {
      row.push_back(FormatDouble(cells[cell], 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(whitefi::bench::JobsFromArgs(argc, argv));
}
