// Seed-fuzz harness: randomized scenario generation under the invariant
// auditor, with deterministic repro bundles.
//
// The generator emits scenario CONFIG TEXT (the LoadScenario key set, flat
// dotted keys) rather than a ScenarioConfig struct: a repro bundle is that
// exact text plus an [expect] block describing the violation, and replay
// re-parses the identical bytes through the identical loader — so a
// reproduction is byte-identical by construction, not by a serializer
// staying faithful.
//
// Bundle format (INI, parseable by ConfigFile):
//   <generated scenario keys>        seed/map/network/background/mic/
//                                    client/fault — see LoadScenario
//   audit.safety_budget_ms = ...     auditor knobs (optional)
//   expect.invariant = ...           first violation of the recorded run
//   expect.at_us / node / channel / detail
//
// `whitefi --replay bundle` (examples/scenario_cli) and the soak driver
// (bench/bench_fuzz_soak.cc) both go through RunAuditedScenarioText /
// ReplayBundleText below.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "audit/audit.h"
#include "scenario.h"
#include "util/config.h"

namespace whitefi::bench {

/// Generator knobs shared by the soak driver and tests.
struct FuzzOptions {
  std::uint64_t root_seed = 1;
  /// Incumbent-safety budget override in ms (0 = auditor default).  Wired
  /// into the generated text so a repro bundle carries it.
  long long safety_budget_ms = 0;
  /// Geometric-safety budget override in ms (0 = the budget the geodb
  /// runtime derives from its own timing).  A deliberately weakened value
  /// is the geodb soak's fail-closed self-test.
  long long geo_budget_ms = 0;
};

/// Deterministically generates the scenario text for fuzz trial `index`.
/// All randomness derives from the root seed via the named
/// "fuzz.trial.<index>" substream; same (options, index) = same bytes.
std::string GenerateFuzzScenario(const FuzzOptions& options,
                                 std::uint64_t index);

/// Geo-db flavored trial: every scenario enables the simulated geo-db
/// service with randomized service latency / queue / staleness, tight
/// session (refresh / backoff / breaker) timings, venue churn (often
/// backed by real mics), client mobility, and geodb fault pressure (DB
/// outage windows, served-data staleness, push-update storms).  Runs are
/// audited with the position-aware incumbent-safety check armed via the
/// runtime's ground truth.  Substream: "fuzz.geodb.trial.<index>".
std::string GenerateGeoDbFuzzScenario(const FuzzOptions& options,
                                      std::uint64_t index);

/// One audited run.
struct AuditedRun {
  RunResult result;
  std::vector<Violation> violations;   ///< Retained (capped) violations.
  std::uint64_t violation_count = 0;   ///< Exact count.
  SimTime safety_budget = 0;           ///< Budget the auditor resolved.

  bool ok() const { return violation_count == 0; }
};

/// Reads the auditor knobs (audit.*) from a parsed config.  Exposed so
/// the CLI's --audit path shares the key set with replay.
AuditConfig LoadAuditConfig(const ConfigFile& config);

/// Parses scenario text (audit.* keys honored, expect.* ignored) and runs
/// it under a fresh InvariantAuditor.
AuditedRun RunAuditedScenarioText(const std::string& text);

/// Appends the [expect] block for `v` to scenario text, producing a repro
/// bundle.  Any previous expect block is dropped first.
std::string MakeReproBundle(const std::string& scenario_text,
                            const Violation& v);

/// The expect block of a bundle; nullopt when absent.
std::optional<Violation> BundleExpectation(const ConfigFile& config);

/// Replay outcome: did the re-run produce the identical first violation?
struct ReplayOutcome {
  bool reproduced = false;
  Violation expected;
  std::optional<Violation> got;  ///< First violation of the re-run, if any.
  std::string message;           ///< Human-readable verdict.
};

/// Re-runs a bundle and compares its first violation field-for-field
/// (invariant, sim-time, node, channel, detail) against the expect block.
ReplayOutcome ReplayBundleText(const std::string& text);

/// Bisecting minimizer: shrinks the run duration and drops clients /
/// background pairs while a violation of the same invariant still fires,
/// then refreshes the expect block from the minimized run.  Returns the
/// minimized bundle (the input itself when nothing could be removed).
/// `steps`, when non-null, receives the number of accepted reductions.
std::string MinimizeBundle(const std::string& bundle_text,
                           int* steps = nullptr);

}  // namespace whitefi::bench
