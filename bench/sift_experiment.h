// Shared helpers for the SIFT signal-level experiments
// (Table 1, Figures 5-7): iperf-style packet schedules, synthesis, and
// per-packet detection matching.
#pragma once

#include <vector>

#include "phy/signal.h"
#include "sift/detector.h"

namespace whitefi::bench {

/// One transmitted data packet's ground truth.
struct SentPacket {
  Us start = 0.0;
  Us duration = 0.0;
};

/// Ground truth + samples for one experiment run.
struct SignalRun {
  std::vector<SentPacket> packets;
  std::vector<double> samples;
  Us total_duration = 0.0;
};

/// Builds the paper's Section 5.1 methodology: `count` data-ACK exchanges
/// of `payload_bytes`-byte frames at the given width, spaced `interval_us`
/// apart, synthesized with `params`.
SignalRun MakeIperfRun(ChannelWidth width, int count, Us interval_us,
                       int payload_bytes, const SignalParams& params,
                       Rng rng);

/// Scratch-reusing variant: rebuilds `run` in place, reusing its existing
/// packet/sample capacity.  Trial loops that synthesize many multi-
/// megasample traces (Table 1's grid, the micro benches) call this to
/// avoid reallocating the trace every run.  Draw-for-draw identical to
/// MakeIperfRun with the same Rng.
void MakeIperfRunInto(ChannelWidth width, int count, Us interval_us,
                      int payload_bytes, const SignalParams& params, Rng rng,
                      SignalRun& run);

/// Counts how many sent packets SIFT detected.  A packet counts as
/// detected when a burst overlaps its air interval; when
/// `require_duration_match` is set the burst's measured length must also
/// be within `duration_tolerance_us` of the truth (the stricter criterion
/// behind Table 1, which the 5 MHz ramp artifact occasionally fails).
int CountDetected(const std::vector<SentPacket>& packets,
                  const std::vector<DetectedBurst>& bursts,
                  bool require_duration_match,
                  Us duration_tolerance_us = 100.0);

/// Coverage-based detection (the Figure 7 criterion): a packet counts as
/// detected when the detected bursts cover at least `min_coverage` of its
/// true air interval.  Near the sensitivity limit the envelope hovers
/// around SIFT's threshold and bursts fragment; requiring real coverage —
/// rather than any overlapping blip — is what produces the sharp cliff
/// once the mean envelope crosses the threshold.
int CountDetectedByCoverage(const std::vector<SentPacket>& packets,
                            const std::vector<DetectedBurst>& bursts,
                            double min_coverage = 0.3);

/// One experiment cell through the batched scanner: synthesizes `runs`
/// iperf runs (forking `rng` once per run, in run order — draw-for-draw
/// identical to the serial synthesize/detect loop) and classifies them
/// through `SiftBatch` lanes, flushing whenever the pending traces exceed
/// `sample_budget` samples so a low-rate cell's multi-megasample runs
/// don't all sit in memory at once.  Returns each run's CountDetected
/// result, in run order.  Byte-identical to the serial loop by the batch
/// kernel's identity contract.
std::vector<int> BatchedDetectionCounts(ChannelWidth width, int runs,
                                        int count, Us interval_us,
                                        int payload_bytes,
                                        const SignalParams& params, Rng& rng,
                                        bool require_duration_match,
                                        Us duration_tolerance_us = 100.0,
                                        std::size_t sample_budget = 32000000);

}  // namespace whitefi::bench
