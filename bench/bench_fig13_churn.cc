// Reproduces Figure 13: impact of churn in the background traffic.
//
// Setup (paper Section 5.4.1): 34 background pairs — two per free UHF
// channel of the campus map — whose sources follow a two-state Markov
// chain (Active: 25 ms CBR of 500-byte frames; Passive: silent).  The x-axis sweeps the
// chain's stationary active probability and mean state duration, from
// "all passive" to "all active".
//
// Expected shape: WhiteFi near-optimal everywhere; for high churn the
// static widest choice (OPT-20) becomes the worst; WhiteFi — which can
// re-adapt as the background moves — can even beat the best *static*
// choice, exactly as the paper observes.
#include <fstream>
#include <iostream>

#include "flags.h"
#include "obs/event_trace.h"
#include "scenario.h"
#include "spectrum/campus.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kReps = 2;

struct ChurnPoint {
  std::string label;
  double p_active;
  double mean_state_s;  ///< Average state holding time.
};

ScenarioConfig MakeConfig(const ChurnPoint& point, std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.base_map = CampusSimulationMap();
  config.num_clients = 4;
  config.warmup_s = 3.0;
  config.measure_s = 20.0;
  ApParams ap;
  ap.assignment_interval = 3 * kTicksPerSec;
  ap.first_assignment_delay = 1 * kTicksPerSec;
  ap.scanner.dwell = 100 * kTicksPerMs;
  config.ap_params = ap;

  MarkovOnOffSource::Params markov;
  markov.initial_active_probability = point.p_active;
  if (point.p_active <= 0.0) {
    markov.mean_active = 0;
    markov.mean_passive = 365LL * 24 * 3600 * kTicksPerSec;
  } else if (point.p_active >= 1.0) {
    markov.mean_active = 365LL * 24 * 3600 * kTicksPerSec;
    markov.mean_passive = 0;
  } else {
    // Stationary probability p with average holding time D:
    // mean_active = 2Dp, mean_passive = 2D(1-p).
    markov.mean_active = static_cast<SimTime>(
        2.0 * point.mean_state_s * point.p_active * kTicksPerSec);
    markov.mean_passive = static_cast<SimTime>(
        2.0 * point.mean_state_s * (1.0 - point.p_active) * kTicksPerSec);
  }

  for (UhfIndex c : config.base_map.FreeIndices()) {
    for (int k = 0; k < 2; ++k) {  // Two pairs per free channel = 34.
      BackgroundSpec spec;
      spec.channel = c;
      spec.cbr_interval = 25 * kTicksPerMs;
      spec.payload_bytes = 500;
      spec.markov = markov;
      config.background.push_back(spec);
    }
  }
  return config;
}

/// A flight-recorder trace restricted to the protocol-level kinds
/// trace_lens analyses; per-frame kinds stay out so 14 adaptive runs fit
/// comfortably in one capture (exact per-kind counts are still kept).
EventTrace MakeProtocolTrace() {
  EventTraceOptions options;
  options.only = {
      TraceEventKind::kSpanBegin,   TraceEventKind::kSpanEnd,
      TraceEventKind::kStateEnter,  TraceEventKind::kChirp,
      TraceEventKind::kChannelSwitch, TraceEventKind::kIncumbentOn,
      TraceEventKind::kIncumbentOff, TraceEventKind::kNote,
  };
  return EventTrace(options);
}

int Main(int jobs, const std::string& trace_jsonl) {
  std::cout << "Figure 13: per-client throughput vs. background churn\n"
            << "(34 Markov on/off pairs, 25 ms CBR when active; "
            << kReps << " reps per point)\n\n";
  const std::vector<ChurnPoint> points{
      {"all passive", 0.0, 0.0},       {"p=1/4 d=30s", 0.25, 30.0},
      {"p=1/3 d=45s", 1.0 / 3.0, 45.0}, {"p=1/2 d=30s", 0.5, 30.0},
      {"p=2/3 d=45s", 2.0 / 3.0, 45.0}, {"p=3/4 d=30s", 0.75, 30.0},
      {"all active", 1.0, 0.0},
  };
  Table table({"churn", "WhiteFi", "OPT5", "OPT10", "OPT20", "OPT",
               "switches"});
  // Aggregate protocol metrics across every adaptive WhiteFi run (the OPT
  // baseline sweeps run unobserved).  Attaching the registry does not
  // perturb the simulation, so the table matches an uninstrumented build.
  MetricsRegistry metrics;
  // Optional flight recorder over the same adaptive runs (protocol-level
  // kinds only).  The OPT sweeps run unobserved either way, so the trace
  // content is identical for any --jobs value, and a detached recorder
  // leaves the printed table byte-identical.
  EventTrace trace = MakeProtocolTrace();
  std::uint64_t seed = 1400;
  for (const ChurnPoint& point : points) {
    RunningStats whitefi, opt5, opt10, opt20, opt, switches;
    for (int rep = 0; rep < kReps; ++rep) {
      ScenarioConfig config = MakeConfig(point, seed++);
      config.obs.metrics = &metrics;
      if (!trace_jsonl.empty()) config.obs.trace = &trace;
      // The adaptive run stays on this thread (it feeds the shared
      // metrics registry); only the OPT candidate sweeps fan out.
      const RunResult run = RunScenario(config);
      config.obs = {};
      whitefi.Add(run.per_client_mbps);
      switches.Add(run.switches);
      const double o5 =
          OptStaticThroughput(config, ChannelWidth::kW5, 6.0, jobs);
      const double o10 =
          OptStaticThroughput(config, ChannelWidth::kW10, 6.0, jobs);
      const double o20 =
          OptStaticThroughput(config, ChannelWidth::kW20, 6.0, jobs);
      opt5.Add(o5);
      opt10.Add(o10);
      opt20.Add(o20);
      opt.Add(std::max({o5, o10, o20}));
    }
    table.AddRow({point.label, FormatDouble(whitefi.Mean(), 2),
                  FormatDouble(opt5.Mean(), 2), FormatDouble(opt10.Mean(), 2),
                  FormatDouble(opt20.Mean(), 2), FormatDouble(opt.Mean(), 2),
                  FormatDouble(switches.Mean(), 1)});
  }
  table.Print(std::cout);
  std::cout << "\npaper: for high churn the static widest pick is worst and "
               "adaptive WhiteFi can beat every static choice\n";
  std::cout << "\nmetrics across all adaptive WhiteFi runs:\n"
            << metrics.Snapshot().ToText();
  if (!trace_jsonl.empty()) {
    std::ofstream out(trace_jsonl);
    trace.WriteJsonl(out);
    if (!out.good()) {
      std::cerr << "error: cannot write " << trace_jsonl << "\n";
      return 1;
    }
    // stderr, so stdout stays byte-identical to an untraced run (the CI
    // byte-identity leg diffs them directly).
    std::cerr << "event trace (" << trace.events().size()
              << " events) written to " << trace_jsonl << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(
      whitefi::bench::JobsFromArgs(argc, argv),
      whitefi::bench::StringFromArgs(argc, argv, "--trace-jsonl"));
}
