// Reproduces Figure 7: packets detected by SIFT vs. decoded by the Wi-Fi
// packet sniffer as the RF attenuation between two KNOWS devices grows.
//
// Expected shape (paper Section 5.1): both near 100% at low attenuation;
// SIFT detects even corrupted packets so it stays above the sniffer until
// ~96 dB, where its amplitude threshold produces a sharp cliff; the
// sniffer's capture ratio falls smoothly and crosses SIFT beyond ~98 dB —
// but by then it is down around 35%, useless to TCP.  SIFT's curve here is
// produced by running the real detector over attenuated synthesized
// signals; the sniffer follows the calibrated capture model.
#include <iostream>

#include "phy/attenuation.h"
#include "sift_experiment.h"
#include "sift/detector.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

constexpr int kPackets = 200;
constexpr int kPayloadBytes = 1000;

double SiftDetectionRate(double attenuation_db, std::uint64_t seed) {
  SignalParams params;
  params.attenuation_db = attenuation_db;
  const SignalRun run =
      MakeIperfRun(ChannelWidth::kW10, kPackets, 5000.0, kPayloadBytes,
                   params, Rng(seed));
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(run.samples);
  // Figure 7 counts detection (no length matching), but a detection must
  // actually cover the packet — see CountDetectedByCoverage.
  return static_cast<double>(CountDetectedByCoverage(run.packets, bursts)) /
         kPackets;
}

double SnifferRate(double attenuation_db, Rng& rng) {
  const SnifferModel model;
  int captured = 0;
  for (int i = 0; i < kPackets; ++i) {
    captured += SnifferCaptures(model, attenuation_db, rng) ? 1 : 0;
  }
  return static_cast<double>(captured) / kPackets;
}

int Main() {
  std::cout << "Figure 7: detection vs. attenuation (" << kPackets
            << " packets per point)\n"
            << "Paper shape: SIFT ~100% with a cliff at ~96 dB; sniffer "
               "falls smoothly, ~35% at 98 dB.\n\n";
  Table table({"attenuation(dB)", "SIFT", "sniffer"});
  Rng rng(3000);
  std::uint64_t seed = 3100;
  for (double att = 60.0; att <= 104.0; att += 2.0) {
    table.AddRow({FormatDouble(att, 0),
                  FormatPercent(SiftDetectionRate(att, seed++)),
                  FormatPercent(SnifferRate(att, rng))});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
