// Scenario description files — the QualNet-style workflow where "every
// node reads its initial spectrum map from a configuration file".
//
// Example:
//
//   seed = 7
//   seconds = 20
//   [map]
//   name = campus            # campus | building5 | rural|urban|suburban
//   extra_occupied = 27, 31  # TV channels occupied on top of the base map
//   [network]
//   clients = 4
//   static_width = 0         # 0 = adaptive, else 5|10|20
//   [background]
//   pairs = 10
//   ipd_ms = 30
//   payload = 1000
//   [mic]
//   tv_channel = 28          # omit section for no mic
//   on_s = 5
//   off_s = 600
#pragma once

#include "scenario.h"
#include "util/config.h"

namespace whitefi::bench {

/// Builds a ScenarioConfig from a parsed description.  Throws
/// std::runtime_error on unknown map names or invalid values.
ScenarioConfig LoadScenario(const ConfigFile& config);

/// Convenience: parse a file then load.
ScenarioConfig LoadScenarioFile(const std::string& path);

}  // namespace whitefi::bench
