// Scenario description files — the QualNet-style workflow where "every
// node reads its initial spectrum map from a configuration file".
//
// Example:
//
//   seed = 7
//   seconds = 20
//   [map]
//   name = campus            # campus | building5 | rural|urban|suburban
//   extra_occupied = 27, 31  # TV channels occupied on top of the base map
//   [network]
//   clients = 4
//   static_width = 0         # 0 = adaptive, else 5|10|20
//   [background]
//   pairs = 10
//   ipd_ms = 30
//   payload = 1000
//   [mic]
//   tv_channel = 28          # omit section for no mic
//   on_s = 5
//   off_s = 600
//   [client]                 # hardening knobs (defaults = baseline)
//   chirp_jitter = 0.2
//   chirp_backoff = true
//   reconnect_escalation = true
//   [fault]                  # fault injection (see src/fault/fault.h)
//   scanner_outages = 3-8    # windows in seconds
//   beacon_drop_p = 0.1
//   storm_start_s = 5        # churn storm
//   storm_mics = 3
#pragma once

#include "scenario.h"
#include "util/config.h"

namespace whitefi::bench {

/// Builds a ScenarioConfig from a parsed description.  Throws
/// std::runtime_error on unknown map names or invalid values.
ScenarioConfig LoadScenario(const ConfigFile& config);

/// Convenience: parse a file then load.
ScenarioConfig LoadScenarioFile(const std::string& path);

/// Keys in `config` that LoadScenario did not consume — typos and stale
/// options.  Call after LoadScenario on the same ConfigFile instance.
std::vector<std::string> UnknownScenarioKeys(const ConfigFile& config);

}  // namespace whitefi::bench
