// Scenario description files — the QualNet-style workflow where "every
// node reads its initial spectrum map from a configuration file".
//
// Example:
//
//   seed = 7
//   seconds = 20
//   [map]
//   name = campus            # campus | building5 | rural|urban|suburban
//   extra_occupied = 27, 31  # TV channels occupied on top of the base map
//   [network]
//   clients = 4
//   static_width = 0         # 0 = adaptive, else 5|10|20
//   [background]
//   pairs = 10
//   ipd_ms = 30
//   payload = 1000
//   [mic]
//   tv_channel = 28          # omit section for no mic
//   on_s = 5
//   off_s = 600
//   [client]                 # hardening knobs (defaults = baseline)
//   chirp_jitter = 0.2
//   chirp_backoff = true
//   reconnect_escalation = true
//   [fault]                  # fault injection (see src/fault/fault.h)
//   scanner_outages = 3-8    # windows in seconds
//   beacon_drop_p = 0.1
//   storm_start_s = 5        # churn storm
//   storm_mics = 3
#pragma once

#include "scenario.h"
#include "shard/city.h"
#include "shard/engine.h"
#include "util/config.h"

namespace whitefi::bench {

/// Builds a ScenarioConfig from a parsed description.  Throws
/// std::runtime_error on unknown map names or invalid values.
ScenarioConfig LoadScenario(const ConfigFile& config);

/// True iff the description declares a [city] section — a city-scale
/// sharded scenario run through shard::ShardEngine instead of the
/// single-world RunScenario path.
bool IsCityScenario(const ConfigFile& config);

/// A parsed city-scale description.  `engine.shards` stays at its
/// default (1); the shard count is an execution knob supplied by the
/// caller (scenario_cli --shards), never by the file — the science must
/// not depend on it.
struct CityScenario {
  shard::CityParams city;
  shard::ShardEngineConfig engine;
  double seconds = 5.0;
};

/// Builds a CityScenario from a description with a [city] section
/// (optionally a [shards] section for horizon/trace overrides).  Throws
/// std::invalid_argument on out-of-range values.
CityScenario LoadCityScenario(const ConfigFile& config);

/// Convenience: parse a file then load.
ScenarioConfig LoadScenarioFile(const std::string& path);

/// Keys in `config` that LoadScenario did not consume — typos and stale
/// options.  Call after LoadScenario on the same ConfigFile instance.
std::vector<std::string> UnknownScenarioKeys(const ConfigFile& config);

}  // namespace whitefi::bench
