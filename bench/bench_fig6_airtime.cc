// Reproduces Figure 6: accuracy of airtime-utilization measurement using
// SIFT.
//
// The paper's observation: sending the same number of equal-size packets,
// the total measured air time (i) stays constant as the injection rate
// changes, and (ii) doubles each time the channel width halves — because
// halving the width halves the effective transmission rate.  SIFT's
// airtime books must recover exactly that.
#include <iostream>

#include "sift_experiment.h"
#include "sift/airtime.h"
#include "sift/detector.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kPacketsPerRun = 110;
constexpr int kRuns = 5;
constexpr int kPayloadBytes = 1000;

struct Cell {
  double measured_ms = 0.0;
  double expected_ms = 0.0;
};

Cell MeasureAirtime(ChannelWidth width, double rate_mbps,
                    std::uint64_t seed) {
  const PhyTiming timing = PhyTiming::ForWidth(width);
  const Us interval = 8.0 * kPayloadBytes / rate_mbps;
  Rng rng(seed);
  RunningStats measured;
  for (int run = 0; run < kRuns; ++run) {
    const SignalRun signal = MakeIperfRun(width, kPacketsPerRun, interval,
                                          kPayloadBytes, SignalParams{},
                                          rng.Fork());
    SiftDetector detector{SiftParams{}};
    measured.Add(TotalBurstAirtime(detector.Detect(signal.samples)));
  }
  Cell cell;
  cell.measured_ms = measured.Mean() / 1000.0;
  cell.expected_ms = kPacketsPerRun *
                     (timing.FrameDuration(kPayloadBytes) + timing.AckDuration()) /
                     1000.0;
  return cell;
}

int Main() {
  std::cout << "Figure 6: airtime measured by SIFT vs. ground truth\n"
            << "(constant across rates; doubles when the width halves)\n\n";
  const std::vector<double> rates{0.125, 0.25, 0.5, 0.75, 1.0};
  Table table({"width", "rate", "measured(ms)", "expected(ms)", "error"});
  std::uint64_t seed = 2000;
  for (ChannelWidth width : kAllWidths) {
    for (double rate : rates) {
      const Cell cell = MeasureAirtime(width, rate, seed++);
      table.AddRow({WidthLabel(width), FormatDouble(rate, 3) + "M",
                    FormatDouble(cell.measured_ms, 1),
                    FormatDouble(cell.expected_ms, 1),
                    FormatPercent(std::abs(cell.measured_ms - cell.expected_ms) /
                                  cell.expected_ms)});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
