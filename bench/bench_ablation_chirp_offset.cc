// Ablation: chirp start-detection accuracy — OOK edge detection versus
// correlation.
//
// The paper's backup-channel chirps are detected by SIFT's OOK path: the
// chirp is "the burst", and its start is wherever the moving average
// crossed the threshold.  This harness measures how accurately each
// method recovers the chirp's *position*, across SNR levels:
//
//   offset = detected start - actual start   (in samples)
//
// Per trial a single duration-coded chirp is synthesized at a random
// position in a quiet dwell; each method then estimates the start from
// the same trace, so the comparison is paired.  Methods:
//
//   ook  SiftDetector burst edge (the detected burst overlapping the
//        chirp; its start sample is the estimate)
//   ncc  normalized cross-correlation against the on/off template
//   dot  dot-product (guard-penalized on-region sum) correlation
//
// SNR is swept through the signal-path attenuation; the SIFT detection
// cliff sits near 96 dB (Figure 7), so the sweep's top level probes the
// regime where the envelope hovers around the threshold.
//
// Output: per (attenuation, method): detect rate and the p50 / p95 / max
// of |offset| in samples.  Deterministic: every trial is seeded by its
// grid index alone, so --jobs N is byte-identical to the serial run.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <optional>
#include <vector>

#include "flags.h"
#include "phy/signal.h"
#include "sift/chirp.h"
#include "sift/correlate.h"
#include "sift/detector.h"
#include "util/parallel.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kTrialsPerLevel = 60;
constexpr Us kDwell = 20000.0;
constexpr std::uint64_t kSeedBase = 7000;

const std::vector<double> kAttenuationsDb{80.0, 90.0, 94.0};

struct TrialResult {
  // One entry per method (ook, ncc, dot): the signed offset in samples,
  // or nullopt when the method failed to detect the chirp at all.
  std::optional<double> offset[3];
};

/// The OOK estimate: the detected burst overlapping the true chirp
/// interval the most; its start sample is the estimate.
std::optional<double> OokStartSample(const std::vector<DetectedBurst>& bursts,
                                     Us actual_start, Us duration,
                                     Us sample_period) {
  const Us lo = actual_start;
  const Us hi = actual_start + duration;
  std::optional<double> best;
  Us best_overlap = 0.0;
  for (const DetectedBurst& burst : bursts) {
    const Us overlap =
        std::min(hi, burst.end) - std::max(lo, burst.start);
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = burst.start / sample_period;
    }
  }
  return best;
}

TrialResult RunTrial(double attenuation_db, std::uint64_t seed) {
  Rng rng(seed);
  const ChirpCodec codec;
  const int id = rng.UniformInt(0, codec.params().max_id);
  const Us duration = codec.Encode(id);

  SignalParams signal;
  signal.attenuation_db = attenuation_db;
  // Random chirp position away from the trace edges.
  const Us actual_start = rng.Uniform(2000.0, kDwell - duration - 2000.0);
  const auto actual_sample = actual_start / signal.sample_period;

  SignalSynthesizer synth(signal, rng.Fork());
  const Burst chirp{actual_start, duration, false, 1.0};
  const auto samples = synth.Synthesize({&chirp, 1}, kDwell);

  TrialResult result;

  // ook: SIFT edge detection.
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(samples);
  if (const auto start = OokStartSample(bursts, actual_start, duration,
                                        signal.sample_period)) {
    result.offset[0] = *start - actual_sample;
  }

  // ncc / dot: matched-template correlation (the receiver knows the chirp
  // alphabet; the template length is the transmitted duration's).
  ChirpCorrelatorParams corr_params;
  corr_params.chirp_samples =
      static_cast<std::size_t>(duration / signal.sample_period);
  const ChirpCorrelator correlator(corr_params);
  if (const auto ncc = correlator.DetectNcc(samples)) {
    result.offset[1] = static_cast<double>(ncc->position) - actual_sample;
  }
  if (const auto dot = correlator.DetectDot(samples)) {
    result.offset[2] = static_cast<double>(dot->position) - actual_sample;
  }
  return result;
}

int Main(int jobs) {
  std::cout << "Ablation: chirp start-detection offset, OOK vs correlation ("
            << kTrialsPerLevel << " trials per attenuation level)\n"
            << "offset = detected start - actual start, in samples; "
               "percentiles over |offset| of detected trials\n\n";

  const std::size_t levels = kAttenuationsDb.size();
  const std::vector<TrialResult> trials = ParallelMap(
      jobs, levels * static_cast<std::size_t>(kTrialsPerLevel),
      [&](std::size_t i) {
        const double attenuation = kAttenuationsDb[i / kTrialsPerLevel];
        return RunTrial(attenuation, kSeedBase + i);
      });

  Table table({"atten(dB)", "method", "rate", "p50", "p95", "max"});
  static constexpr const char* kMethods[3] = {"ook", "ncc", "dot"};
  for (std::size_t level = 0; level < levels; ++level) {
    for (std::size_t m = 0; m < 3; ++m) {
      std::vector<double> magnitudes;
      int detected = 0;
      for (int t = 0; t < kTrialsPerLevel; ++t) {
        const TrialResult& trial =
            trials[level * kTrialsPerLevel + static_cast<std::size_t>(t)];
        if (!trial.offset[m]) continue;
        ++detected;
        magnitudes.push_back(std::abs(*trial.offset[m]));
      }
      const double rate =
          static_cast<double>(detected) / kTrialsPerLevel;
      std::vector<std::string> row{FormatDouble(kAttenuationsDb[level], 0),
                                   kMethods[m], FormatDouble(rate, 2)};
      if (magnitudes.empty()) {
        row.insert(row.end(), {"-", "-", "-"});
      } else {
        const double max = Percentile(magnitudes, 100.0);
        row.push_back(FormatDouble(Percentile(magnitudes, 50.0), 1));
        row.push_back(FormatDouble(Percentile(magnitudes, 95.0), 1));
        row.push_back(FormatDouble(max, 1));
      }
      table.AddRow(row);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(whitefi::bench::JobsFromArgs(argc, argv));
}
