// Reproduces the Section 2.3 anechoic-chamber experiment: the PESQ Mean
// Opinion Score of wireless-mic audio while a white-space device transmits
// on the same UHF channel.
//
// Paper anchor: 70-byte packets every 100 ms at -30 dBm degrade the MOS by
// 0.9 — nine times the 0.1 drop a human ear notices — which is why WhiteFi
// must vacate a mic's channel rather than negotiate on it.
#include <iostream>

#include "audio/mos.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

int Main() {
  std::cout << "Section 2.3: mic audio quality under co-channel data "
               "transmissions\n\n";
  const MicAudioModel model;
  std::cout << "clean MOS: " << FormatDouble(model.clean_mos, 2)
            << "; audible threshold: drop >= "
            << FormatDouble(kNoticeableMosDrop, 1) << "\n\n";

  Table table({"pkts/s", "power(dBm)", "MOS", "drop", "audible?"});
  const std::vector<std::pair<double, double>> cases{
      {10.0, -30.0},  // The paper's exact experiment (70 B / 100 ms).
      {1.0, -30.0},   // Sparse control traffic.
      {10.0, -50.0},  // Farther transmitter.
      {10.0, -70.0},
      {10.0, 16.0},   // Full FCC-permitted power.
      {100.0, -30.0},
  };
  for (const auto& [rate, power] : cases) {
    const double drop = PredictMosDrop(model, rate, power);
    table.AddRow({FormatDouble(rate, 0), FormatDouble(power, 0),
                  FormatDouble(PredictMicMos(model, rate, power), 2),
                  FormatDouble(drop, 2),
                  InterferenceAudible(model, rate, power) ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::cout << "\npaper's measured point: 10 pkts/s at -30 dBm -> drop 0.9\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
