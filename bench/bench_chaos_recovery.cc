// Chaos soak: reconnect-time percentiles under injected faults, with and
// without each graceful-degradation hardening.
//
// The paper's Section 4.3 claim — WhiteFi reassembles quickly after an
// incumbent forces a channel vacation — is measured here under adversarial
// conditions rather than the happy path: every trial drops a wireless mic
// onto the operating channel audible ONLY to the clients (a simultaneous
// multi-client disconnect storm the AP cannot sense), while the fault
// injector supplies SIFT chirp-detection misses, beacon loss, and a
// scanner outage right when the chirp watch is needed most.
//
// Arms (cumulative hardenings):
//   fixed        chirps at a fixed interval, no jitter (outage retry off)
//   +jitter      the default randomized chirp period
//   +backoff     jittered exponential backoff (de-synchronizes chirpers)
//   +escalation  backup -> secondary backup -> full-sweep state machine
//   +scan-retry  AP probes through scanner outages at a short cadence
//
// Acceptance (ISSUE 2): with >= 3 clients disconnected simultaneously,
// hardened chirp backoff strictly improves p95 reconnect time over
// fixed-interval chirping, reproducibly from the pinned default seed.
//
// Flags: --trials N (default 10), --seed S (default 1), --clients N
// (default 4), --trace PREFIX (dump trial 0 of each arm as JSONL),
// --jobs N (parallel trials per arm; any N is byte-identical to 1) — CI
// runs a reduced soak under sanitizers.  Exit status 0 iff the hardened
// backoff arm's p95 beats fixed-interval chirping.
//
// --geodb additionally runs every trial with the simulated geo-db
// service, mobile clients, and a DB outage spanning the disconnect storm:
// the sessions lose their refresh path exactly when the mic strands the
// clients, so recovery has to ride the breaker -> conservative-map path.
// --json PATH writes a google-benchmark-compatible report whose
// "throughputs" are deterministic simulation outputs (1/p95 reconnect,
// rescued fraction, geo-db recovery ratio) — the committed baseline
// (BENCH_chaos_geodb.json) is gated by bench/compare_bench.py, turning a
// recovery-latency regression into a red build.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "flags.h"
#include "obs/event_trace.h"
#include "scenario.h"
#include "spectrum/campus.h"
#include "util/histogram.h"
#include "util/parallel.h"
#include "util/report.h"
#include "util/rng.h"

namespace whitefi::bench {
namespace {

constexpr int kWhiteFiSsid = 1;
constexpr double kRunEndS = 40.0;  ///< warmup + measure; outage censor cap.

struct Arm {
  std::string label;
  double chirp_jitter = 0.0;
  bool chirp_backoff = false;
  bool reconnect_escalation = false;
  bool outage_retry = false;
};

struct ArmResult {
  ExpHistogram outages;
  int disconnects = 0;
  int unrecovered = 0;  ///< Clients still down when the run ended.
  std::uint64_t faults = 0;
  // Geo-db session statistics (zero without --geodb).
  long long geodb_degraded = 0;
  long long geodb_recovered = 0;
  std::uint64_t geodb_queries = 0;
  std::uint64_t geodb_pushes = 0;
};

ScenarioConfig MakeConfig(const Arm& arm, std::uint64_t seed, int clients,
                          double storm_at_s, bool geodb) {
  ScenarioConfig config;
  config.seed = seed;
  config.base_map = CampusSimulationMap();
  config.num_clients = clients;
  config.warmup_s = 3.0;
  config.measure_s = kRunEndS - config.warmup_s;

  ApParams ap;
  ap.assignment_interval = 3 * kTicksPerSec;
  ap.first_assignment_delay = 1 * kTicksPerSec;
  ap.scanner.dwell = 100 * kTicksPerMs;
  // Chirp watch: 400 ms on the backup channel out of every 2 s.  The
  // watch is a comb filter — a chirper is heard only if a chirp lands
  // inside a dwell — so its duty cycle and period, against the clients'
  // chirp period, decide who gets caught and who phase-locks out.
  ap.scanner.chirp_scan_interval = 2 * kTicksPerSec;
  ap.scanner.chirp_scan_dwell = 400 * kTicksPerMs;
  ap.scanner.outage_retry = arm.outage_retry;
  // The escalation state machine is a two-ended hardening: clients fall
  // back to the deterministic secondary backup, and the AP alternates its
  // chirp watch onto that same channel.
  ap.watch_secondary_backup = arm.reconnect_escalation;
  config.ap_params = ap;

  ClientParams client;
  // A battery-conscious chirp cadence (1 s rather than the prototype's
  // 150 ms firehose).  The period now exceeds the AP's 300 ms chirp-watch
  // dwell and divides its 3 s visit interval — precisely the regime where
  // a deterministic chirp cycle can phase-lock against the scanner and
  // systematically miss every rescue window.  The storm disconnects all
  // clients on the same tick, so without jitter their phases are also
  // mutually locked: the whole herd misses together.
  client.chirp_interval = 1 * kTicksPerSec;
  client.chirp_jitter = arm.chirp_jitter;
  client.chirp_backoff = arm.chirp_backoff;
  // Bounded backoff: the cap is the designed worst-case rescue latency —
  // backing off further than 1.5x the dwell period would starve the
  // AP's comb of chirps entirely.
  client.chirp_interval_max = 1500 * kTicksPerMs;
  client.reconnect_escalation = arm.reconnect_escalation;
  // Long enough that escalation is a last resort for truly stuck clients,
  // not a premature hop away from the channel the AP is about to rescue.
  client.reconnect_stage_timeout = 8 * kTicksPerSec;
  client.scanner.outage_retry = arm.outage_retry;
  config.client_params = client;

  // The fault storm.  Chirps are heard through the scanner tap, so chirp
  // loss at the AP is a SIFT detection miss, not a medium drop; the
  // scanner outage opens exactly when the disconnected clients start
  // chirping, deafening an unhardened chirp watch for two visits.
  config.faults.miss_chirp_p = 0.25;
  config.faults.beacon_drop_p = 0.05;
  FaultWindow outage;
  outage.from = static_cast<SimTime>((storm_at_s + 0.2) * kTicksPerSec);
  outage.until = static_cast<SimTime>((storm_at_s + 4.2) * kTicksPerSec);
  config.faults.scanner_outages.push_back(outage);

  // --geodb: mobile clients under the dynamic geo-db service, with the
  // DB itself down for the whole rescue window — the sessions' scheduled
  // refresh times out exactly when the mic strands the clients, so the
  // breaker must trip to the conservative map while the reconnect
  // machinery does its job.  Tight session timings fit full
  // degrade -> recover cycles inside the run.
  if (geodb) {
    config.geodb.enabled = true;
    config.geodb.venues = 2;
    config.geodb.mobility = true;
    config.geodb.session.refresh_interval = 1 * kTicksPerSec;
    config.geodb.session.refresh_timeout = 200 * kTicksPerMs;
    config.geodb.session.backoff_base = 200 * kTicksPerMs;
    config.geodb.session.backoff_max = 800 * kTicksPerMs;
    config.geodb.session.breaker_failures = 2;
    config.geodb.session.breaker_cooldown = 500 * kTicksPerMs;
    FaultWindow db_outage;
    db_outage.from = static_cast<SimTime>(storm_at_s * kTicksPerSec);
    db_outage.until =
        static_cast<SimTime>((storm_at_s + 6.0) * kTicksPerSec);
    config.faults.geodb_outages.push_back(db_outage);
  }

  // Storm: one wireless mic keys up in the middle of the operating
  // channel, audible only to the clients — they all vacate at once while
  // the AP (out of the mic's range) keeps transmitting, unaware.
  config.customize = [storm_at_s](World& world) {
    const auto storm_tick =
        static_cast<SimTime>(storm_at_s * kTicksPerSec);
    World* wp = &world;
    world.sim().Schedule(storm_tick, [wp] {
      Device* ap = wp->FindDevice(1);
      if (ap == nullptr) return;
      std::vector<int> client_ids;
      for (int id : wp->NodesInSsid(kWhiteFiSsid)) {
        if (id != ap->NodeId()) client_ids.push_back(id);
      }
      MicActivation mic;
      mic.channel = ap->TunedChannel().center;
      mic.on_time = ToUs(wp->sim().Now() + kTicksPerMs);
      mic.off_time = ToUs(wp->sim().Now() + 60 * kTicksPerSec);
      wp->AddMic(mic, client_ids);
    });
  };
  return config;
}

/// One trial's raw outcome, collected by index and folded serially.
struct TrialOutcome {
  RunResult run;
  double storm_at_s = 0.0;
  std::shared_ptr<EventTrace> trace;  ///< Trial 0 only, when tracing.
};

ArmResult RunArm(const Arm& arm, std::uint64_t seed0, int trials,
                 int clients, const std::string& trace_prefix, int jobs,
                 bool geodb) {
  ArmResult out;
  // The storm's arrival phase relative to the chirp/scan cycles decides
  // whether a deterministic chirper is caught or stranded, so it must be
  // swept, not pinned: real incumbents key up at arbitrary phase.  Same
  // seed -> same per-trial onsets for every arm (paired comparison).
  // Onsets are drawn serially BEFORE dispatch so the storm schedule never
  // depends on the job count.
  Rng storm_rng(seed0 ^ 0x57A2B0ULL);
  std::vector<double> storm_onsets;
  storm_onsets.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    storm_onsets.push_back(storm_rng.Uniform(5.0, 6.0));
  }

  const std::vector<TrialOutcome> outcomes = ParallelMap(
      jobs, static_cast<std::size_t>(trials), [&](std::size_t t) {
        TrialOutcome outcome;
        outcome.storm_at_s = storm_onsets[t];
        ScenarioConfig config =
            MakeConfig(arm, seed0 + static_cast<std::uint64_t>(t), clients,
                       outcome.storm_at_s, geodb);
        // --trace: dump trial 0's protocol-level story (chirps, switches,
        // faults) as JSONL for post-mortem of a pathological arm.
        if (!trace_prefix.empty() && t == 0) {
          EventTraceOptions trace_options;
          trace_options.only = {
              TraceEventKind::kChirp,        TraceEventKind::kChannelSwitch,
              TraceEventKind::kIncumbentOn,  TraceEventKind::kIncumbentOff,
              TraceEventKind::kFaultInjected, TraceEventKind::kFaultCleared,
              TraceEventKind::kNote};
          outcome.trace = std::make_shared<EventTrace>(trace_options);
          config.obs.trace = outcome.trace.get();
        }
        outcome.run = RunScenario(config);
        return outcome;
      });

  // Serial fold in trial order: histogram insertion order is part of the
  // byte-identity contract.
  for (const TrialOutcome& outcome : outcomes) {
    if (outcome.trace != nullptr) {
      const std::string path = trace_prefix + arm.label + ".jsonl";
      std::ofstream os(path);
      outcome.trace->WriteJsonl(os);
      std::cerr << "trace: " << path << " ("
                << outcome.trace->events().size() << " events)\n";
    }
    const RunResult& run = outcome.run;
    for (double outage_s : run.outages_s) out.outages.Add(outage_s);
    out.disconnects += run.disconnects;
    // Clients still disconnected at run end are censored, not invisible:
    // they enter the histogram at their observed lower bound (run end
    // minus storm onset), otherwise an arm that strands clients would
    // show BETTER percentiles than one that rescues them slowly.
    const int stuck = run.disconnects - static_cast<int>(run.outages_s.size());
    for (int s = 0; s < stuck; ++s) {
      out.outages.Add(kRunEndS - outcome.storm_at_s);
    }
    out.unrecovered += stuck;
    out.faults += run.faults_injected;
    out.geodb_degraded += run.geodb_degraded;
    out.geodb_recovered += run.geodb_recovered;
    out.geodb_queries += run.geodb_queries;
    out.geodb_pushes += run.geodb_pushes;
  }
  return out;
}

/// Google-benchmark-compatible JSON report.  Every "throughput" here is a
/// deterministic function of the simulation (same seed = same bytes), so
/// bench/compare_bench.py can gate it against a committed baseline with a
/// tight threshold: a drop in 1/p95 IS a recovery-latency regression, not
/// machine noise.
void WriteJsonReport(std::ostream& os, const std::vector<Arm>& arms,
                     const std::vector<ArmResult>& results, int trials,
                     int clients, std::uint64_t seed, bool geodb) {
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "{\n \"context\": {\n"
     << "  \"executable\": \"bench_chaos_recovery\",\n"
     << "  \"whitefi_trials\": " << trials << ",\n"
     << "  \"whitefi_clients\": " << clients << ",\n"
     << "  \"whitefi_seed\": " << seed << ",\n"
     << "  \"whitefi_geodb\": " << (geodb ? "true" : "false") << "\n"
     << " },\n \"benchmarks\": [\n";
  bool first = true;
  auto entry = [&](const std::string& name, double rate) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\n   \"name\": \"" << name << "\",\n"
       << "   \"run_name\": \"" << name << "\",\n"
       << "   \"run_type\": \"iteration\",\n"
       << "   \"iterations\": 1,\n"
       << "   \"real_time\": " << (rate > 0.0 ? 1.0 / rate : 0.0) << ",\n"
       << "   \"cpu_time\": " << (rate > 0.0 ? 1.0 / rate : 0.0) << ",\n"
       << "   \"time_unit\": \"s\",\n"
       << "   \"items_per_second\": " << rate << "\n  }";
  };
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const ArmResult& r = results[a];
    const std::string prefix = "chaos/" + arms[a].label + "/";
    const double p95 = r.outages.Percentile(95);
    entry(prefix + "recovery_p95_inv", p95 > 0.0 ? 1.0 / p95 : 0.0);
    const double samples = static_cast<double>(r.outages.Count());
    entry(prefix + "rescued_frac",
          samples > 0.0 ? (samples - r.unrecovered) / samples : 0.0);
    if (geodb) {
      entry(prefix + "geodb_recovered_per_degraded",
            r.geodb_degraded > 0
                ? static_cast<double>(r.geodb_recovered) /
                      static_cast<double>(r.geodb_degraded)
                : 0.0);
    }
  }
  os << "\n ]\n}\n";
}

int Main(int argc, char** argv) {
  int trials = 10;
  int clients = 4;
  int jobs = 1;
  std::uint64_t seed = 1;
  std::string trace_prefix;
  std::string json_path;
  bool geodb = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument(flag + " needs a value");
        }
        return argv[++i];
      };
      if (flag == "--trials") trials = std::stoi(next());
      else if (flag == "--seed") seed = std::stoull(next());
      else if (flag == "--clients") clients = std::stoi(next());
      else if (flag == "--trace") trace_prefix = next();
      else if (flag == "--jobs") jobs = ParseJobs(next());
      else if (flag == "--geodb") geodb = true;
      else if (flag == "--json") json_path = next();
      else {
        std::cerr << "usage: bench_chaos_recovery [--trials N] [--seed S] "
                     "[--clients N] [--trace PREFIX] [--jobs N] [--geodb] "
                     "[--json PATH]\n";
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }

  std::cout << "Chaos soak: reconnect time under a " << clients
            << "-client disconnect storm + fault injection\n"
            << "(" << trials << " trials per arm, seed " << seed
            << "; mic audible to clients only, 25% chirp-detection miss,\n"
            << " 5% beacon loss, 4 s scanner outage at storm onset;\n"
            << " clients still down at run end are censored at the cap)\n";
  if (geodb) {
    std::cout << "geo-db arm: mobile clients, dynamic geo-db sessions, "
                 "6 s DB outage at storm onset\n";
  }
  std::cout << "\n";

  const std::vector<Arm> arms{
      {"fixed", 0.0, false, false, false},
      {"+jitter", 0.2, false, false, false},
      {"+backoff", 0.2, true, false, false},
      {"+escalation", 0.2, true, true, false},
      {"+scan-retry", 0.2, true, true, true},
  };

  Table table({"arm", "samples", "p50 s", "p90 s", "p95 s", "max s",
               "stuck", "faults"});
  std::vector<ArmResult> results;
  for (const Arm& arm : arms) {
    results.push_back(
        RunArm(arm, seed, trials, clients, trace_prefix, jobs, geodb));
    const ArmResult& r = results.back();
    table.AddRow({arm.label, std::to_string(r.outages.Count()),
                  FormatDouble(r.outages.Percentile(50), 2),
                  FormatDouble(r.outages.Percentile(90), 2),
                  FormatDouble(r.outages.Percentile(95), 2),
                  FormatDouble(r.outages.Max(), 2),
                  std::to_string(r.unrecovered),
                  std::to_string(r.faults)});
  }
  table.Print(std::cout);

  const double fixed_p95 = results[0].outages.Percentile(95);
  const double backoff_p95 = results[2].outages.Percentile(95);
  std::cout << "\nchirp backoff p95: " << FormatDouble(backoff_p95, 2)
            << " s vs fixed-interval " << FormatDouble(fixed_p95, 2)
            << " s  ->  "
            << (backoff_p95 < fixed_p95 ? "IMPROVED" : "NOT IMPROVED")
            << "\n";
  // Stuck clients are unbounded outages: an arm that strands fewer
  // clients wins even before comparing percentiles.
  std::cout << "stranded clients: fixed " << results[0].unrecovered
            << ", fully hardened " << results.back().unrecovered << "\n";
  long long degraded = 0, recovered = 0;
  if (geodb) {
    std::uint64_t queries = 0, pushes = 0;
    for (const ArmResult& r : results) {
      degraded += r.geodb_degraded;
      recovered += r.geodb_recovered;
      queries += r.geodb_queries;
      pushes += r.geodb_pushes;
    }
    std::cout << "geodb: " << queries << " queries, " << pushes
              << " pushes, " << degraded << " degraded / " << recovered
              << " recovered transitions\n";
  }
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    WriteJsonReport(os, arms, results, trials, clients, seed, geodb);
    std::cout << "json report: " << json_path << "\n";
  }
  // Acceptance.  Default: the backoff hardening beats fixed-interval
  // chirping on p95 reconnect.  --geodb: the outage churn, not chirp
  // phasing, dominates the percentiles, so the criterion is the recovery
  // protocol's own — every session that degraded came back fresh (the
  // per-arm latency profile is gated separately via --json +
  // compare_bench.py against the committed baseline).
  if (geodb) {
    const bool healthy = degraded > 0 && recovered == degraded;
    std::cout << "geodb recovery: "
              << (healthy ? "ALL SESSIONS RECOVERED" : "INCOMPLETE") << "\n";
    return healthy ? 0 : 1;
  }
  return backoff_p95 < fixed_p95 ? 0 : 1;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(argc, argv);
}
