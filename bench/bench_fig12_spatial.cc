// Reproduces Figure 12: impact of spatial variation on per-client
// throughput.
//
// Setup (paper Section 5.4.1): 10 clients, one background pair per free
// UHF channel at 30 ms CBR, and per-node spectrum maps derived from the
// campus map by flipping each channel's entry independently with
// probability P in [0, 0.14].
//
// Expected shape: with P = 0 the widest channel wins; as P grows, the AP
// must find spectrum free at ALL clients, so wide channels disappear first
// (OPT-20, then OPT-10 collapse) and throughput converges to a single
// 5 MHz channel's; WhiteFi tracks the best feasible width throughout.
#include <iostream>

#include "scenario.h"
#include "spectrum/campus.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kReps = 3;

ScenarioConfig MakeConfig(double flip_p, std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.base_map = CampusSimulationMap();
  config.num_clients = 10;
  config.client_map_flip_p = flip_p;
  config.warmup_s = 2.0;
  config.measure_s = 5.0;
  ApParams ap;
  ap.assignment_interval = 2 * kTicksPerSec;
  ap.first_assignment_delay = 1 * kTicksPerSec;
  ap.scanner.dwell = 100 * kTicksPerMs;
  config.ap_params = ap;
  Rng rng(DeriveSeed(seed, "fig12.background"));
  for (UhfIndex c : config.base_map.FreeIndices()) {
    BackgroundSpec spec;
    spec.channel = c;
    spec.cbr_interval = 30 * kTicksPerMs;
    spec.payload_bytes = 500;
    config.background.push_back(spec);
    (void)rng;
  }
  return config;
}

int Main() {
  std::cout << "Figure 12: per-client throughput vs. spatial variation "
               "(map-flip probability P)\n"
            << "(campus map, 10 clients, 1 background pair per free "
               "channel at 30 ms CBR)\n\n";
  Table table({"P", "WhiteFi", "OPT5", "OPT10", "OPT20", "OPT"});
  std::uint64_t seed = 1300;
  for (double p : {0.0, 0.01, 0.03, 0.05, 0.08, 0.10, 0.14}) {
    RunningStats whitefi, opt5, opt10, opt20, opt;
    for (int rep = 0; rep < kReps; ++rep) {
      const ScenarioConfig config = MakeConfig(p, seed++);
      whitefi.Add(RunScenario(config).per_client_mbps);
      const double o5 = OptStaticThroughput(config, ChannelWidth::kW5, 3.0);
      const double o10 = OptStaticThroughput(config, ChannelWidth::kW10, 3.0);
      const double o20 = OptStaticThroughput(config, ChannelWidth::kW20, 3.0);
      opt5.Add(o5);
      opt10.Add(o10);
      opt20.Add(o20);
      opt.Add(std::max({o5, o10, o20}));
    }
    table.AddRow({FormatDouble(p, 2), FormatDouble(whitefi.Mean(), 3),
                  FormatDouble(opt5.Mean(), 3), FormatDouble(opt10.Mean(), 3),
                  FormatDouble(opt20.Mean(), 3), FormatDouble(opt.Mean(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\npaper: wide widths become infeasible as P grows (none "
               "contiguous for P > 0.1); no static width is near-optimal "
               "everywhere, WhiteFi is\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
