// google-benchmark micro-benchmarks for the SIFT signal pipeline: how many
// samples per second the detector sustains (the USRP delivers 1 MS/s, so
// anything above ~10 MS/s leaves ample headroom), and the matcher /
// chirp-codec costs.
#include <benchmark/benchmark.h>

#include "flags.h"
#include "phy/signal.h"
#include "sift/batch.h"
#include "sift/chirp.h"
#include "sift/correlate.h"
#include "sift/detector.h"
#include "sift/matcher.h"

namespace whitefi {
namespace {

std::vector<double> MakeTrace(ChannelWidth width, int packets) {
  const PhyTiming t = PhyTiming::ForWidth(width);
  SignalSynthesizer synth(SignalParams{}, Rng(1));
  const Us spacing = t.FrameDuration(1000) + t.Sifs() + t.AckDuration() + 2000.0;
  const auto bursts = MakeCbrSchedule(t, packets, spacing, 1000, 300.0);
  return synth.Synthesize(bursts, packets * spacing + 2000.0);
}

void BM_SiftDetector(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 50);
  for (auto _ : state) {
    SiftDetector detector{SiftParams{}};
    benchmark::DoNotOptimize(detector.Detect(samples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftDetector);

/// The portable scalar kernel, forced regardless of host and flags: the
/// denominator of the CI speedup gate (compare_bench.py --speedup
/// BM_SiftDetectorScalar:BM_SiftDetector:MINRATIO).
void BM_SiftDetectorScalar(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 50);
  SiftParams params;
  params.kernel = SiftKernelChoice::kScalar;
  for (auto _ : state) {
    SiftDetector detector{params};
    benchmark::DoNotOptimize(detector.Detect(samples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftDetectorScalar);

void BM_SiftStreamingBlocks(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW10, 50);
  for (auto _ : state) {
    SiftDetector detector{SiftParams{}};
    for (std::size_t i = 0; i < samples.size(); i += 2048) {
      const std::size_t n = std::min<std::size_t>(2048, samples.size() - i);
      detector.ProcessBlock({samples.data() + i, n});
    }
    detector.Flush();
    benchmark::DoNotOptimize(detector.TakeBursts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftStreamingBlocks);

/// The block path across chunk granularities — from USRP-recv-buffer-sized
/// chunks down to the degenerate per-sample stream (the old Step loop).
/// Detection results are byte-identical at every chunking; only the
/// per-block warmup/tail overhead varies.
void BM_SiftDetectorChunked(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 50);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SiftDetector detector{SiftParams{}};
    for (std::size_t i = 0; i < samples.size(); i += chunk) {
      const std::size_t n = std::min(chunk, samples.size() - i);
      detector.ProcessBlock({samples.data() + i, n});
    }
    detector.Flush();
    benchmark::DoNotOptimize(detector.TakeBursts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftDetectorChunked)->Arg(1)->Arg(64)->Arg(4096)->Arg(65536);

/// Non-default window width: exercises the runtime-window kernel instead
/// of the unrolled W=5 fast path.
void BM_SiftDetectorGenericWindow(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 50);
  SiftParams params;
  params.window = 8;
  for (auto _ : state) {
    SiftDetector detector{params};
    benchmark::DoNotOptimize(detector.Detect(samples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftDetectorGenericWindow);

/// N channels through one SiftBatch pass (the multi-channel dwell shape).
/// Compare against BM_SiftIndependentLanes at the same lane count: the
/// delta is the batching win (shared dispatch/scratch, hot constants).
void BM_SiftBatchDetect(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> traces;
  traces.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    traces.push_back(MakeTrace(ChannelWidth::kW20, 10));
  }
  std::vector<std::span<const double>> spans(traces.begin(), traces.end());
  std::int64_t samples = 0;
  for (const auto& t : traces) samples += static_cast<std::int64_t>(t.size());
  for (auto _ : state) {
    SiftBatch batch(SiftParams{}, lanes);
    benchmark::DoNotOptimize(batch.DetectAll(spans));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          samples);
}
BENCHMARK(BM_SiftBatchDetect)->Arg(4)->Arg(16);

/// The unbatched reference: the same N traces through N independent
/// detectors.
void BM_SiftIndependentLanes(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> traces;
  traces.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    traces.push_back(MakeTrace(ChannelWidth::kW20, 10));
  }
  std::int64_t samples = 0;
  for (const auto& t : traces) samples += static_cast<std::int64_t>(t.size());
  for (auto _ : state) {
    for (const auto& t : traces) {
      SiftDetector detector{SiftParams{}};
      benchmark::DoNotOptimize(detector.Detect(t));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          samples);
}
BENCHMARK(BM_SiftIndependentLanes)->Arg(4)->Arg(16);

void BM_PatternMatcher(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 100);
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(samples);
  PatternMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.MatchAll(bursts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bursts.size()));
}
BENCHMARK(BM_PatternMatcher);

void BM_SignalSynthesis(benchmark::State& state) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto bursts = MakeCbrSchedule(t, 20, 5000.0, 1000, 300.0);
  Rng rng(2);
  for (auto _ : state) {
    SignalSynthesizer synth(SignalParams{}, rng.Fork());
    benchmark::DoNotOptimize(synth.Synthesize(bursts, 110000.0));
  }
}
BENCHMARK(BM_SignalSynthesis);

/// The dwell-loop shape: one scratch buffer reused across syntheses, as
/// the signal scanner and Table 1 grid now do.  The delta vs
/// BM_SignalSynthesis is pure allocation traffic.
void BM_SignalSynthesisInto(benchmark::State& state) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto bursts = MakeCbrSchedule(t, 20, 5000.0, 1000, 300.0);
  Rng rng(2);
  std::vector<double> scratch;
  for (auto _ : state) {
    SignalSynthesizer synth(SignalParams{}, rng.Fork());
    synth.SynthesizeInto(bursts, 110000.0, scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SignalSynthesisInto);

void BM_ChirpCodecDecode(benchmark::State& state) {
  const ChirpCodec codec;
  Rng rng(3);
  std::vector<Us> durations;
  for (int i = 0; i < 1024; ++i) {
    durations.push_back(codec.Encode(rng.UniformInt(0, 63)) +
                        rng.Uniform(-20.0, 20.0));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decode(durations[i++ % durations.size()]));
  }
}
BENCHMARK(BM_ChirpCodecDecode);

/// One synthesized chirp in a dwell-length trace, for the correlation
/// detectors (bench_ablation_chirp_offset measures their accuracy; this
/// measures their cost).
std::vector<double> MakeChirpTrace(Us chirp_duration, Us total) {
  SignalSynthesizer synth(SignalParams{}, Rng(7));
  const Burst chirp{5000.0, chirp_duration, false, 1.0};
  return synth.Synthesize({&chirp, 1}, total);
}

ChirpCorrelator MakeCorrelator(Us chirp_duration) {
  ChirpCorrelatorParams params;
  params.chirp_samples = static_cast<std::size_t>(
      chirp_duration / SignalParams{}.sample_period);
  return ChirpCorrelator(params);
}

void BM_ChirpCorrelateNcc(benchmark::State& state) {
  const Us duration = ChirpCodec().Encode(21);
  const auto samples = MakeChirpTrace(duration, 20000.0);
  const ChirpCorrelator corr = MakeCorrelator(duration);
  for (auto _ : state) {
    benchmark::DoNotOptimize(corr.DetectNcc(samples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_ChirpCorrelateNcc);

void BM_ChirpCorrelateDot(benchmark::State& state) {
  const Us duration = ChirpCodec().Encode(21);
  const auto samples = MakeChirpTrace(duration, 20000.0);
  const ChirpCorrelator corr = MakeCorrelator(duration);
  for (auto _ : state) {
    benchmark::DoNotOptimize(corr.DetectDot(samples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_ChirpCorrelateDot);

}  // namespace
}  // namespace whitefi

// Custom main (vs BENCHMARK_MAIN) so JSON reports carry the pipeline
// configuration; bench/compare_bench.py keys its regression gate on the
// items_per_second counters in that report and refuses debug-build
// baselines via the whitefi_build_type context.
int main(int argc, char** argv) {
  // Parse and install --detector, then strip it so google-benchmark's
  // unrecognized-argument check doesn't trip over it.
  whitefi::bench::DetectorFromArgs(argc, argv);
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--detector") {
      ++i;  // Skip the value too.
      continue;
    }
    if (arg.rfind("--detector=", 0) == 0) continue;
    kept.push_back(argv[i]);
  }
  argc = static_cast<int>(kept.size());
  argv = kept.data();

  benchmark::AddCustomContext("whitefi_detector_path", "block");
  benchmark::AddCustomContext("whitefi_sift_window",
                              std::to_string(whitefi::SiftParams{}.window));
  benchmark::AddCustomContext(
      "whitefi_sift_kernel",
      whitefi::SiftDetector{whitefi::SiftParams{}}.kernel_name());
#ifdef WHITEFI_BUILD_TYPE
  benchmark::AddCustomContext("whitefi_build_type", WHITEFI_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
