// google-benchmark micro-benchmarks for the SIFT signal pipeline: how many
// samples per second the detector sustains (the USRP delivers 1 MS/s, so
// anything above ~10 MS/s leaves ample headroom), and the matcher /
// chirp-codec costs.
#include <benchmark/benchmark.h>

#include "phy/signal.h"
#include "sift/chirp.h"
#include "sift/detector.h"
#include "sift/matcher.h"

namespace whitefi {
namespace {

std::vector<double> MakeTrace(ChannelWidth width, int packets) {
  const PhyTiming t = PhyTiming::ForWidth(width);
  SignalSynthesizer synth(SignalParams{}, Rng(1));
  const Us spacing = t.FrameDuration(1000) + t.Sifs() + t.AckDuration() + 2000.0;
  const auto bursts = MakeCbrSchedule(t, packets, spacing, 1000, 300.0);
  return synth.Synthesize(bursts, packets * spacing + 2000.0);
}

void BM_SiftDetector(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 50);
  for (auto _ : state) {
    SiftDetector detector{SiftParams{}};
    benchmark::DoNotOptimize(detector.Detect(samples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftDetector);

void BM_SiftStreamingBlocks(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW10, 50);
  for (auto _ : state) {
    SiftDetector detector{SiftParams{}};
    for (std::size_t i = 0; i < samples.size(); i += 2048) {
      const std::size_t n = std::min<std::size_t>(2048, samples.size() - i);
      detector.ProcessBlock({samples.data() + i, n});
    }
    detector.Flush();
    benchmark::DoNotOptimize(detector.TakeBursts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftStreamingBlocks);

/// The block path across chunk granularities — from USRP-recv-buffer-sized
/// chunks down to the degenerate per-sample stream (the old Step loop).
/// Detection results are byte-identical at every chunking; only the
/// per-block warmup/tail overhead varies.
void BM_SiftDetectorChunked(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 50);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SiftDetector detector{SiftParams{}};
    for (std::size_t i = 0; i < samples.size(); i += chunk) {
      const std::size_t n = std::min(chunk, samples.size() - i);
      detector.ProcessBlock({samples.data() + i, n});
    }
    detector.Flush();
    benchmark::DoNotOptimize(detector.TakeBursts());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftDetectorChunked)->Arg(1)->Arg(64)->Arg(4096)->Arg(65536);

/// Non-default window width: exercises the runtime-window kernel instead
/// of the unrolled W=5 fast path.
void BM_SiftDetectorGenericWindow(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 50);
  SiftParams params;
  params.window = 8;
  for (auto _ : state) {
    SiftDetector detector{params};
    benchmark::DoNotOptimize(detector.Detect(samples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_SiftDetectorGenericWindow);

void BM_PatternMatcher(benchmark::State& state) {
  const auto samples = MakeTrace(ChannelWidth::kW20, 100);
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(samples);
  PatternMatcher matcher;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.MatchAll(bursts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bursts.size()));
}
BENCHMARK(BM_PatternMatcher);

void BM_SignalSynthesis(benchmark::State& state) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto bursts = MakeCbrSchedule(t, 20, 5000.0, 1000, 300.0);
  Rng rng(2);
  for (auto _ : state) {
    SignalSynthesizer synth(SignalParams{}, rng.Fork());
    benchmark::DoNotOptimize(synth.Synthesize(bursts, 110000.0));
  }
}
BENCHMARK(BM_SignalSynthesis);

/// The dwell-loop shape: one scratch buffer reused across syntheses, as
/// the signal scanner and Table 1 grid now do.  The delta vs
/// BM_SignalSynthesis is pure allocation traffic.
void BM_SignalSynthesisInto(benchmark::State& state) {
  const PhyTiming t = PhyTiming::ForWidth(ChannelWidth::kW20);
  const auto bursts = MakeCbrSchedule(t, 20, 5000.0, 1000, 300.0);
  Rng rng(2);
  std::vector<double> scratch;
  for (auto _ : state) {
    SignalSynthesizer synth(SignalParams{}, rng.Fork());
    synth.SynthesizeInto(bursts, 110000.0, scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SignalSynthesisInto);

void BM_ChirpCodecDecode(benchmark::State& state) {
  const ChirpCodec codec;
  Rng rng(3);
  std::vector<Us> durations;
  for (int i = 0; i < 1024; ++i) {
    durations.push_back(codec.Encode(rng.UniformInt(0, 63)) +
                        rng.Uniform(-20.0, 20.0));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decode(durations[i++ % durations.size()]));
  }
}
BENCHMARK(BM_ChirpCodecDecode);

}  // namespace
}  // namespace whitefi

// Custom main (vs BENCHMARK_MAIN) so JSON reports carry the pipeline
// configuration; bench/compare_bench.py keys its regression gate on the
// items_per_second counters in that report.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("whitefi_detector_path", "block");
  benchmark::AddCustomContext("whitefi_sift_window",
                              std::to_string(whitefi::SiftParams{}.window));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
