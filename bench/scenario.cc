#include "scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/parallel.h"
#include "util/rng.h"

namespace whitefi::bench {
namespace {

constexpr int kWhiteFiSsid = 1;

/// Deterministic per-node map realization shared by RunScenario and
/// StaticCandidates: index 0 is the AP, 1..N the clients.
std::vector<SpectrumMap> NodeMaps(const ScenarioConfig& config) {
  std::vector<SpectrumMap> maps;
  Rng rng(DeriveSeed(config.seed, "scenario.maps"));
  for (int i = 0; i <= config.num_clients; ++i) {
    maps.push_back(config.client_map_flip_p > 0.0
                       ? config.base_map.RandomlyFlipped(
                             config.client_map_flip_p, rng)
                       : config.base_map);
  }
  return maps;
}

SpectrumMap UnionOfMaps(const std::vector<SpectrumMap>& maps) {
  SpectrumMap u;
  for (const auto& m : maps) u = u.UnionWith(m);
  return u;
}

}  // namespace

std::uint64_t ScenarioFaultSeed(const ScenarioConfig& config) {
  return config.fault_seed != 0 ? config.fault_seed
                                : DeriveSeed(config.seed, "scenario.faults");
}

std::vector<Channel> StaticCandidates(const ScenarioConfig& config,
                                      ChannelWidth w) {
  const SpectrumMap everywhere_free = UnionOfMaps(NodeMaps(config));
  std::vector<Channel> candidates;
  for (const Channel& c : ChannelsOfWidth(w)) {
    if (everywhere_free.CanUse(c)) candidates.push_back(c);
  }
  return candidates;
}

RunResult RunScenario(const ScenarioConfig& config) {
  WorldConfig world_config;
  world_config.seed = config.seed;
  world_config.obs = config.obs;
  // The auditor rides the Observability bundle and must be in place
  // before the World exists: the medium captures the bundle in the World
  // constructor.
  world_config.obs.auditor = config.auditor;
  // The injector (when any fault is configured) is declared before the
  // World so it outlives every device, and is seeded from its own stream:
  // enabling faults must not shift the World's RNG fork sequence.
  std::unique_ptr<FaultInjector> injector;
  if (!config.faults.Empty()) {
    injector =
        std::make_unique<FaultInjector>(config.faults, ScenarioFaultSeed(config));
    world_config.faults = injector.get();
  }
  World world(world_config);
  if (config.auditor != nullptr) config.auditor->Attach(world);
  // The geo-db runtime (when enabled) is likewise seeded purely from named
  // substreams of config.seed, so a disabled run stays byte-identical.
  std::unique_ptr<GeoDbRuntime> geodb;
  if (config.geodb.enabled) {
    geodb = std::make_unique<GeoDbRuntime>(world, config.geodb, config.seed,
                                           injector.get());
  }
  Rng rng = world.NewRng();

  const std::vector<SpectrumMap> maps = NodeMaps(config);
  const SpectrumMap union_map = UnionOfMaps(maps);

  // Pick the initial channel: the pinned static one, or the assigner's
  // choice under the OR'd maps (association is assumed complete at t=0).
  // With a geo-db the boot decision also respects the guarded bootstrap
  // map at the cell origin, so the network does not start on a
  // geo-protected channel only to vacate at t=0.
  SpectrumMap boot_view = union_map;
  if (geodb != nullptr) {
    boot_view = boot_view.UnionWith(geodb->BootstrapMapAt(Position{0.0, 0.0}));
  }
  AssignmentInputs boot;
  boot.ap_map = boot_view;
  boot.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    boot.ap_observation[static_cast<std::size_t>(c)].incumbent =
        boot_view.Occupied(c);
  }
  SpectrumAssigner boot_assigner(config.ap_params.assignment);
  Channel initial{0, ChannelWidth::kW5};
  if (config.static_channel.has_value()) {
    initial = *config.static_channel;
  } else {
    const auto decision = boot_assigner.SelectInitial(boot);
    if (!decision.channel.has_value()) return RunResult{};
    initial = *decision.channel;
  }
  const Channel backup =
      boot_assigner.SelectBackup(boot, initial).value_or(initial);

  // WhiteFi network.
  ApParams ap_params = config.ap_params;
  ap_params.adaptive = !config.static_channel.has_value();
  DeviceConfig ap_device;
  ap_device.position = {0.0, 0.0};
  ap_device.ssid = kWhiteFiSsid;
  ap_device.tv_map = maps[0];
  ApNode& ap = world.Create<ApNode>(ap_device, ap_params, initial, backup);
  if (config.auditor != nullptr) config.auditor->RegisterAp(ap.NodeId());

  std::vector<ClientNode*> clients;
  std::vector<int> client_ids;
  for (int i = 0; i < config.num_clients; ++i) {
    DeviceConfig device;
    // Clients spread over the cell (UHF range is km-scale; paper Figure 1's
    // campus spans ~800 m).
    const double client_r = rng.Uniform(200.0, 400.0);
    const double client_theta = rng.Uniform(0.0, 2.0 * M_PI);
    device.position = {client_r * std::cos(client_theta),
                       client_r * std::sin(client_theta)};
    device.ssid = kWhiteFiSsid;
    device.tv_map = maps[static_cast<std::size_t>(i) + 1];
    ClientParams params = config.client_params;
    clients.push_back(&world.Create<ClientNode>(device, params, initial,
                                                backup, ap.NodeId()));
    client_ids.push_back(clients.back()->NodeId());
    if (config.auditor != nullptr) {
      config.auditor->RegisterClient(clients.back()->NodeId(), params);
    }
  }
  if (geodb != nullptr) {
    geodb->AddNode(ap, /*mobile=*/false);
    for (ClientNode* client : clients) geodb->AddNode(*client, /*mobile=*/true);
  }

  // Backlogged flows both ways.
  SaturatedSource downlink(ap, client_ids, config.payload_bytes);
  std::vector<std::unique_ptr<SaturatedSource>> uplinks;
  for (ClientNode* client : clients) {
    uplinks.push_back(std::make_unique<SaturatedSource>(
        *client, ap.NodeId(), config.payload_bytes));
  }

  // Background pairs.
  std::vector<std::unique_ptr<CbrSource>> cbr_sources;
  std::vector<std::unique_ptr<MarkovOnOffSource>> markov_sources;
  int next_ssid = 100;
  for (const BackgroundSpec& spec : config.background) {
    const Channel home{spec.channel, ChannelWidth::kW5};
    DeviceConfig tx_config;
    // Background pairs are neighboring networks "within transmission
    // range" of the AP — hundreds of meters out.  At that range a narrow
    // radio's energy detector cannot sense a wide transmission (only a
    // slice of its power lands in-band), so background traffic punches
    // holes in wide channels — the physics behind MCham's product form.
    const double bg_r = rng.Uniform(150.0, 500.0);
    const double bg_theta = rng.Uniform(0.0, 2.0 * M_PI);
    tx_config.position = {bg_r * std::cos(bg_theta),
                          bg_r * std::sin(bg_theta)};
    tx_config.ssid = next_ssid;
    tx_config.is_ap = true;
    tx_config.initial_channel = home;
    tx_config.tv_map = config.base_map;
    Device& tx = world.Create<Device>(tx_config);
    DeviceConfig rx_config = tx_config;
    rx_config.is_ap = false;
    rx_config.position = {tx_config.position.x + rng.Uniform(-40.0, 40.0),
                          tx_config.position.y + rng.Uniform(-40.0, 40.0)};
    Device& rx = world.Create<Device>(rx_config);
    ++next_ssid;

    if (spec.markov.has_value()) {
      markov_sources.push_back(std::make_unique<MarkovOnOffSource>(
          tx, rx.NodeId(), spec.payload_bytes, spec.cbr_interval,
          *spec.markov));
      markov_sources.back()->Start();
    } else {
      cbr_sources.push_back(std::make_unique<CbrSource>(
          tx, rx.NodeId(), spec.payload_bytes, spec.cbr_interval));
      CbrSource* source = cbr_sources.back().get();
      if (spec.on_at <= 0) {
        source->Start();
      } else {
        source->Start();
        source->SetActive(false);
        world.sim().Schedule(spec.on_at,
                             [source] { source->SetActive(true); });
      }
      if (spec.off_at >= 0) {
        world.sim().Schedule(spec.off_at,
                             [source] { source->SetActive(false); });
      }
    }
  }

  world.SetMicSchedule(config.mics);
  // Churn storms from the fault plan become extra mic activations over the
  // channels every node agrees are free (so a storm always threatens the
  // channels the network actually wants to use).
  if (injector != nullptr && !config.faults.storms.empty()) {
    std::vector<UhfIndex> storm_channels;
    for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
      if (union_map.Free(c)) storm_channels.push_back(c);
    }
    for (const MicActivation& mic : injector->ExpandStorms(storm_channels)) {
      world.AddMic(mic);
    }
  }
  if (geodb != nullptr) {
    // After SetMicSchedule (venue mics append to the installed schedule),
    // before StartAll (bootstrap maps must be in place when the AP's
    // first assignment and the clients' first scans run).
    geodb->Start();
    if (config.auditor != nullptr) {
      // The runtime's suggestion covers the notification path; add the
      // detection latency and a vacate allowance mirroring the mic-path
      // budget's slack (the AP may legally defer past announce re-checks).
      config.auditor->SetGeoTruth(
          geodb.get(), geodb->SuggestedGeoBudget() +
                           world.config().incumbent_detect_latency +
                           700 * kTicksPerMs);
    }
  }
  world.StartAll();
  downlink.Start();
  for (auto& uplink : uplinks) uplink->Start();
  if (config.customize) config.customize(world);

  world.RunFor(config.warmup_s);
  world.ResetAppBytes();
  world.RunFor(config.measure_s);

  RunResult result;
  const double bits =
      8.0 * static_cast<double>(world.AppBytesInSsid(kWhiteFiSsid));
  result.aggregate_mbps = bits / config.measure_s / 1e6;
  result.per_client_mbps =
      config.num_clients > 0 ? result.aggregate_mbps / config.num_clients
                             : result.aggregate_mbps;
  result.switches = ap.num_switches();
  result.final_channel = ap.main_channel();
  for (ClientNode* client : clients) {
    result.disconnects += client->disconnect_events();
    for (SimTime outage : client->outages()) {
      result.outages_s.push_back(ToSeconds(outage));
      result.max_outage_s = std::max(result.max_outage_s, ToSeconds(outage));
    }
  }
  if (injector != nullptr) result.faults_injected = injector->InjectedCount();
  if (geodb != nullptr) {
    result.geodb_degraded = geodb->degraded_transitions();
    result.geodb_recovered = geodb->recovered_transitions();
    result.geodb_queries = geodb->service().queries();
    result.geodb_shed = geodb->service().shed();
    result.geodb_pushes = geodb->service().pushes_sent();
    // The oracle dies with this scope; a reused auditor must not keep a
    // dangling ground-truth pointer.
    if (config.auditor != nullptr) config.auditor->SetGeoTruth(nullptr, 0);
  }
  return result;
}

double OptStaticThroughput(const ScenarioConfig& config, ChannelWidth w,
                           double reduced_measure_s, int jobs) {
  const std::vector<Channel> candidates = StaticCandidates(config, w);
  // Every candidate run derives all of its randomness from the trial
  // config (the world is seeded from config.seed), so the sweep is a pure
  // index -> throughput map; results are reduced serially in index order.
  const std::vector<double> throughputs =
      ParallelMap(jobs, candidates.size(), [&](std::size_t i) {
        ScenarioConfig trial = config;
        trial.static_channel = candidates[i];
        trial.obs = {};  // Baseline sweeps must not pollute caller metrics.
        if (reduced_measure_s > 0.0) trial.measure_s = reduced_measure_s;
        return RunScenario(trial).per_client_mbps;
      });
  double best = 0.0;
  for (double mbps : throughputs) best = std::max(best, mbps);
  return best;
}

double OptThroughput(const ScenarioConfig& config, double reduced_measure_s,
                     int jobs) {
  double best = 0.0;
  for (ChannelWidth w : kAllWidths) {
    best = std::max(best, OptStaticThroughput(config, w, reduced_measure_s,
                                              jobs));
  }
  return best;
}

}  // namespace whitefi::bench
