// Reproduces Figure 5: the time-domain view (amplitude envelope
// sqrt(I^2+Q^2) per 1.024 us sample) of a 132-byte 6 Mbps Data-ACK
// exchange at 20, 10, and 5 MHz channel widths.
//
// For each width this prints an ASCII rendering of the envelope (peak
// amplitude per time bin) plus the SIFT-detected burst boundaries — the
// data frame, the width-scaled SIFS gap, and the ACK.  Note the 5 MHz
// trace's low-amplitude leading ramp, the hardware artifact the paper
// blames for Table 1's slightly lower 5 MHz detection rate.
#include <algorithm>
#include <iostream>
#include <string>

#include "phy/signal.h"
#include "sift/detector.h"
#include "sift/matcher.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

void RenderWidth(ChannelWidth width, std::uint64_t seed) {
  const PhyTiming timing = PhyTiming::ForWidth(width);
  SignalParams params;
  params.deep_ramp_probability = 0.0;  // Show the visible (shallow) ramp.
  SignalSynthesizer synth(params, Rng(seed));

  const Us start = 60.0;
  const auto bursts = MakeDataAckExchange(timing, start, 132);
  const Us total = bursts.back().start + bursts.back().duration + 80.0;
  const auto samples = synth.Synthesize(bursts, total);

  std::cout << "--- " << WidthLabel(width)
            << " 132-byte 6 Mbps-mode data-ack exchange ("
            << FormatDouble(total, 0) << " us window) ---\n";
  std::cout << "data " << FormatDouble(bursts[0].duration, 0) << " us | SIFS "
            << FormatDouble(timing.Sifs(), 0) << " us | ack "
            << FormatDouble(bursts[1].duration, 0) << " us\n";

  // Peak-per-bin envelope, 72 bins wide, 12 amplitude levels.
  constexpr int kBins = 72;
  constexpr int kLevels = 12;
  std::vector<double> peak(kBins, 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const int bin = static_cast<int>(i * kBins / samples.size());
    peak[static_cast<std::size_t>(bin)] =
        std::max(peak[static_cast<std::size_t>(bin)], samples[i]);
  }
  const double max_amp = *std::max_element(peak.begin(), peak.end());
  for (int level = kLevels; level >= 1; --level) {
    std::string line;
    for (int b = 0; b < kBins; ++b) {
      const double norm = peak[static_cast<std::size_t>(b)] / max_amp;
      line.push_back(norm >= static_cast<double>(level) / kLevels ? '#' : ' ');
    }
    std::cout << line << "\n";
  }
  std::cout << std::string(kBins, '-') << "\n0" << std::string(kBins - 12, ' ')
            << FormatDouble(total, 0) << " us\n";

  // What SIFT sees.
  SiftDetector detector{SiftParams{}};
  const auto detected = detector.Detect(samples);
  std::cout << "SIFT: " << detected.size() << " bursts:";
  for (const auto& d : detected) {
    std::cout << " [" << FormatDouble(d.start, 0) << ".."
              << FormatDouble(d.end, 0) << "]us";
  }
  const auto inferred = PatternMatcher().DominantWidth(detected);
  std::cout << " -> width "
            << (inferred.has_value() ? WidthLabel(*inferred) : "?") << "\n\n";
}

int Main() {
  std::cout << "Figure 5: time-domain view of Data-ACK frames at different "
               "channel widths\n\n";
  RenderWidth(ChannelWidth::kW20, 51);
  RenderWidth(ChannelWidth::kW10, 52);
  RenderWidth(ChannelWidth::kW5, 53);
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
