// Geo-db chaos soak: randomized geo-db scenarios under the invariant
// auditor with the position-aware incumbent-safety check armed.
//
// Every trial enables the simulated geo-db service (load-dependent query
// latency, bounded queue, push fan-out), tight session recovery timings
// (refresh timeout, capped backoff, circuit breaker), venue activations
// (often backed by real mics), client mobility, and geo-db fault pressure:
// DB outage windows, served-data staleness, and push-update storms.  The
// auditor checks every transmission against the geometric ground truth at
// the node's CURRENT position — a session that keeps transmitting on a
// protected channel past the derived reaction budget fails the soak.
//
// On a violation the soak fails CLOSED exactly like bench_fuzz_soak: the
// lowest-index violating trial becomes a minimized repro bundle replayable
// with `scenario_cli --replay`.
//
// Flags:
//   --seeds N          trials (default 20; ISSUE 7 acceptance runs 200)
//   --jobs N           parallel trials; byte-identical to --jobs 1
//   --root-seed S      substream root (default 1)
//   --geo-budget-ms M  override the geometric-safety budget — a weakened
//                      budget (e.g. 1) is the self-test that the geo path
//                      detects, bundles, and replays a violation
//   --out PATH         bundle path (default geodb_repro.bundle)
//   --no-minimize      write the raw failing bundle unminimized
//
// Exit status: 0 all trials clean, 1 violation found (bundle written),
// 2 bad flags.
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz.h"
#include "util/parallel.h"

namespace whitefi::bench {
namespace {

struct TrialOutcome {
  std::string scenario;       ///< Generated text (kept only on failure).
  std::uint64_t violations = 0;
  Violation first;            ///< Valid iff violations > 0.
  double mbps = 0.0;
  std::uint64_t faults = 0;
  int degraded = 0;
  int recovered = 0;
  std::uint64_t queries = 0;
  std::uint64_t shed = 0;
  std::uint64_t pushes = 0;
};

int Main(int argc, char** argv) {
  int seeds = 20;
  int jobs = 1;
  std::uint64_t root_seed = 1;
  long long geo_budget_ms = 0;
  std::string out_path = "geodb_repro.bundle";
  bool minimize = true;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument(flag + " needs a value");
        }
        return argv[++i];
      };
      if (flag == "--seeds") seeds = std::stoi(next());
      else if (flag == "--jobs") jobs = ParseJobs(next());
      else if (flag == "--root-seed") root_seed = std::stoull(next());
      else if (flag == "--geo-budget-ms") geo_budget_ms = std::stoll(next());
      else if (flag == "--out") out_path = next();
      else if (flag == "--no-minimize") minimize = false;
      else {
        std::cerr << "usage: bench_geodb_soak [--seeds N] [--jobs N] "
                     "[--root-seed S] [--geo-budget-ms M] [--out PATH] "
                     "[--no-minimize]\n";
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }

  FuzzOptions options;
  options.root_seed = root_seed;
  options.geo_budget_ms = geo_budget_ms;

  std::cout << "Geo-db chaos soak: " << seeds
            << " randomized geo-db scenarios, position-aware incumbent "
            << "safety armed (root seed " << root_seed;
  if (geo_budget_ms > 0) {
    std::cout << ", geo budget " << geo_budget_ms << " ms";
  }
  std::cout << ")\n";

  // Scenario text depends only on (root seed, index) — never on
  // scheduling — so any --jobs N collects the same outcomes in the same
  // index order.
  const std::vector<TrialOutcome> outcomes = ParallelMap(
      jobs, static_cast<std::size_t>(seeds), [&](std::size_t t) {
        TrialOutcome outcome;
        const std::string scenario =
            GenerateGeoDbFuzzScenario(options, static_cast<std::uint64_t>(t));
        const AuditedRun run = RunAuditedScenarioText(scenario);
        outcome.violations = run.violation_count;
        if (!run.violations.empty()) {
          outcome.first = run.violations.front();
          outcome.scenario = scenario;
        }
        outcome.mbps = run.result.aggregate_mbps;
        outcome.faults = run.result.faults_injected;
        outcome.degraded = run.result.geodb_degraded;
        outcome.recovered = run.result.geodb_recovered;
        outcome.queries = run.result.geodb_queries;
        outcome.shed = run.result.geodb_shed;
        outcome.pushes = run.result.geodb_pushes;
        return outcome;
      });

  std::uint64_t total_faults = 0, queries = 0, shed = 0, pushes = 0;
  long long degraded = 0, recovered = 0;
  double total_mbps = 0.0;
  int failing = -1;
  for (int t = 0; t < seeds; ++t) {
    const TrialOutcome& outcome = outcomes[static_cast<std::size_t>(t)];
    total_faults += outcome.faults;
    total_mbps += outcome.mbps;
    queries += outcome.queries;
    shed += outcome.shed;
    pushes += outcome.pushes;
    degraded += outcome.degraded;
    recovered += outcome.recovered;
    if (outcome.violations > 0 && failing < 0) failing = t;
  }
  std::cout << "ran " << seeds << " trials, " << total_faults
            << " faults injected, mean "
            << (seeds > 0 ? total_mbps / seeds : 0.0) << " Mbps aggregate\n"
            << "geodb: " << queries << " queries (" << shed << " shed), "
            << pushes << " pushes, " << degraded << " degraded / "
            << recovered << " recovered transitions\n";

  // A soak where no session ever degraded did not exercise the recovery
  // protocol at all — that is a generator bug, not a clean pass.
  if (failing < 0 && degraded == 0 && seeds > 0) {
    std::cout << "NO DEGRADED TRANSITIONS: the soak never stressed the "
                 "recovery path\n";
    return 1;
  }

  if (failing < 0) {
    std::cout << "all invariants held\n";
    return 0;
  }

  const TrialOutcome& bad = outcomes[static_cast<std::size_t>(failing)];
  std::cout << "VIOLATION in trial " << failing << " (" << bad.violations
            << " total): " << bad.first.ToString() << "\n";
  std::string bundle = MakeReproBundle(bad.scenario, bad.first);
  if (minimize) {
    int steps = 0;
    bundle = MinimizeBundle(bundle, &steps);
    std::cout << "minimizer accepted " << steps << " reductions\n";
  }
  std::ofstream os(out_path);
  os << bundle;
  os.close();
  std::cout << "repro bundle: " << out_path << "\n"
            << "replay with: scenario_cli --replay " << out_path << "\n";
  return 1;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) {
  return whitefi::bench::Main(argc, argv);
}
