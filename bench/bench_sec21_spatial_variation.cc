// Reproduces the Section 2.1 spatial-variation measurement: UHF spectrum
// maps observed in 9 campus buildings, and the pairwise Hamming distance
// (channels available at one location but not another).
//
// Paper: "the median number of channels available at one point but
// unavailable at another is close to 7."
#include <iostream>

#include "spectrum/campus.h"
#include "util/histogram.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

int Main() {
  std::cout << "Section 2.1: spatial variation across 9 campus buildings\n\n";
  Rng rng(210);
  const SpectrumMap base = CampusSimulationMap();
  const auto maps = GenerateBuildingMaps(base, CampusVariationParams{}, rng);

  std::cout << "building maps ('.'=free, 'X'=incumbent), TV ch 21..51:\n";
  for (std::size_t b = 0; b < maps.size(); ++b) {
    std::cout << "  building " << b + 1 << "  " << maps[b].ToString()
              << "  (" << maps[b].NumFree() << " free)\n";
  }

  const auto distances = PairwiseHammingDistances(maps);
  IntHistogram hist(kNumUhfChannels);
  for (double d : distances) hist.Add(static_cast<int>(d));
  std::cout << "\npairwise Hamming distance distribution (" << distances.size()
            << " pairs):\n"
            << hist.ToString("distance") << "\n";

  // One 9-building draw is noisy; also report the expectation over many
  // campus realizations (the paper had a single measured campus).
  RunningStats medians;
  Rng expectation_rng(211);
  for (int trial = 0; trial < 50; ++trial) {
    const auto trial_maps = GenerateBuildingMaps(base, CampusVariationParams{},
                                                 expectation_rng);
    medians.Add(Median(PairwiseHammingDistances(trial_maps)));
  }

  Table summary({"statistic", "value", "paper"});
  summary.AddRow({"median pairwise Hamming (this draw)",
                  FormatDouble(Median(distances), 1), "~7"});
  summary.AddRow({"mean pairwise Hamming (this draw)",
                  FormatDouble(Mean(distances), 1), "-"});
  summary.AddRow({"median, averaged over 50 campuses",
                  FormatDouble(medians.Mean(), 1), "~7"});
  summary.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
