// Extension: the geo-location incumbent database (paper Section 3 notes
// the FCC was "looking at the use of a geo-location database to regulate
// and inform clients about the presence of primary users" — the mechanism
// that later shipped in the white-space rules and 802.11af).
//
// This bench derives Figure 2's urban-to-rural gradient from transmitter
// geometry instead of the parametric occupancy model: spectrum maps are
// queried along a radial from a synthetic metro core, and the free-channel
// count, widest fragment, and the capacity of the best WhiteFi channel all
// grow with distance.  It also shows a protected venue (theater mics)
// appearing in downtown queries only during its scheduled window.
#include <iostream>

#include "core/mcham.h"
#include "spectrum/geodb.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

int Main() {
  std::cout << "Extension: geo-location database — spectrum along a radial "
               "from the metro core\n(averaged over 20 synthetic metros)\n\n";
  Rng rng(8200);
  constexpr int kPoints = 9;
  constexpr double kMaxKm = 200.0;
  std::vector<RunningStats> free_channels(kPoints), widest(kPoints),
      capacity(kPoints);
  for (int metro = 0; metro < 20; ++metro) {
    const GeoDatabase db = SynthesizeMetro(MetroModel{}, rng);
    const auto maps = MapsAlongRadial(db, kMaxKm, kPoints);
    for (int i = 0; i < kPoints; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      free_channels[idx].Add(maps[idx].NumFree());
      widest[idx].Add(maps[idx].WidestFragment());
      // Capacity of the best fitting WhiteFi channel, in 5 MHz units.
      double best = 0.0;
      for (const Channel& c : maps[idx].UsableChannels()) {
        best = std::max(best, IdleMCham(c.width));
      }
      capacity[idx].Add(best);
    }
  }
  Table table({"distance(km)", "free channels", "widest fragment(ch)",
               "best channel (5MHz units)"});
  for (int i = 0; i < kPoints; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    table.AddRow({FormatDouble(kMaxKm * i / (kPoints - 1), 0),
                  FormatDouble(free_channels[idx].Mean(), 1),
                  FormatDouble(widest[idx].Mean(), 1),
                  FormatDouble(capacity[idx].Mean(), 1)});
  }
  table.Print(std::cout);

  // Protected venue demo: a theater's mics only constrain queries inside
  // the venue radius and inside the scheduled window.
  GeoDatabase db;
  db.RegisterVenue(ProtectedVenue{"theater", 12, {0.5, 0.5}, 1.0,
                                  1800.0 * kSecond, 9000.0 * kSecond});
  std::cout << "\nprotected-venue demo (channel TV"
            << TvChannelNumber(12) << " inside 1 km of the theater):\n";
  Table venue({"query", "t=0 (before show)", "t=1h (during)",
               "t=3h (after)"});
  auto occupied = [&](const GeoPoint& p, double t_s) {
    return db.QueryAt(p, t_s * kSecond).Occupied(12) ? "protected" : "free";
  };
  venue.AddRow({"inside venue", occupied({0.5, 0.5}, 0),
                occupied({0.5, 0.5}, 3600), occupied({0.5, 0.5}, 10800)});
  venue.AddRow({"across town", occupied({5, 5}, 0), occupied({5, 5}, 3600),
                occupied({5, 5}, 10800)});
  venue.Print(std::cout);
  std::cout << "\ngeometry alone reproduces the urban-to-rural gradient of "
               "Figure 2 and the scheduled-mic protection WhiteFi's chirps "
               "complement\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
