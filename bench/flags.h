// Tiny shared flag parsing for the bench drivers.
//
// Every trial-loop driver takes `--jobs N` (or `--jobs=N`): the size of
// the deterministic thread pool used for its independent trials.  0 means
// all hardware threads; the default of 1 is the serial reference path, so
// a driver's default output is byte-identical to the pre-parallel code.
#pragma once

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sift/detector.h"
#include "util/parallel.h"

namespace whitefi::bench {

/// Extracts a `--name VALUE` / `--name=VALUE` string flag from argv;
/// empty string when absent.  Same forgiving contract as JobsFromArgs:
/// unrelated arguments are ignored.
inline std::string StringFromArgs(int argc, char** argv,
                                  std::string_view name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == name && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return std::string(arg.substr(prefix.size()));
  }
  return {};
}

/// Extracts `--jobs N` / `--jobs=N` from argv (default 1).  Unknown
/// arguments are ignored so drivers stay forgiving about extra flags; a
/// malformed jobs value is a clean `error:` exit (2), not a terminate.
inline int JobsFromArgs(int argc, char** argv) {
  int jobs = 1;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--jobs" && i + 1 < argc) {
        jobs = ParseJobs(argv[++i]);
      } else if (arg.rfind("--jobs=", 0) == 0) {
        jobs = ParseJobs(arg.data() + 7);
      }
    }
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    std::exit(2);
  }
  return jobs;
}

/// Extracts `--detector block|simd|scalar` (or `--detector=...`) and
/// installs it as the process-wide SIFT kernel override ("block" is the
/// automatic dispatch, i.e. kAuto; "avx2"/"avx512" force one specific
/// vector flavor for debugging dispatch differences).  Returns the parsed
/// choice.  An unknown value — or forcing a vector kernel on a host that
/// cannot run it — is a clean `error:` exit (2).
inline SiftKernelChoice DetectorFromArgs(int argc, char** argv) {
  const std::string value = StringFromArgs(argc, argv, "--detector");
  SiftKernelChoice choice = SiftKernelChoice::kAuto;
  if (value.empty() || value == "block") {
    choice = SiftKernelChoice::kAuto;
  } else if (value == "simd") {
    choice = SiftKernelChoice::kSimd;
  } else if (value == "scalar") {
    choice = SiftKernelChoice::kScalar;
  } else if (value == "avx2") {
    choice = SiftKernelChoice::kAvx2;
  } else if (value == "avx512") {
    choice = SiftKernelChoice::kAvx512;
  } else {
    std::cerr << "error: unknown --detector value '" << value
              << "' (expected block, simd, scalar, avx2, or avx512)\n";
    std::exit(2);
  }
  try {
    SetSiftKernelOverride(choice);
    // Resolve eagerly so a forced-simd request on a host without AVX2
    // fails here, not deep inside the first trial.
    SiftDetector probe{SiftParams{}};
    (void)probe;
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    std::exit(2);
  }
  return choice;
}

}  // namespace whitefi::bench
