// bench_city_scale — the sharded-federation throughput driver.
//
// Runs one generated city (shard/city.h) through shard::ShardEngine at
// one or more shard counts and reports simulation throughput.  Output is
// split by determinism:
//
//   stdout  the engine's deterministic run summary — integers only,
//           byte-identical for every shard count (CI diffs shards 1
//           against shards 8 directly) — plus the json-report path.
//   stderr  wall-clock timing and the scaling table (events/s, speedup
//           vs the first count) — machine-dependent, never diffed.
//
// Flags: --shards N (single count), --sweep 1,2,4,8 (several counts in
// one process; the driver additionally asserts the summaries match
// byte-for-byte), --aps N, --clients-per-ap N, --seconds S, --seed S,
// --roams N, --mics N, --audit, --json PATH.
//
// --json PATH writes a google-benchmark-compatible report with two kinds
// of entries:
//   city/<metric>           deterministic simulation outputs (events,
//                           app_bytes, ghosts, messages per simulated
//                           second) — gated against the committed
//                           BENCH_city_scale.json at --threshold 0.01,
//                           so a behavior change in the sharded engine
//                           is a red build, not a silent drift.
//   city/shards_N/wall      wall-clock events/s at each swept count —
//                           machine-dependent, absent from the committed
//                           baseline (compare_bench reports them as new
//                           and does not gate them); CI instead pins the
//                           scaling floor intra-report via --speedup
//                           city/shards_1/wall:city/shards_4/wall:R,
//                           which cancels runner speed out.
#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/engine.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

struct SweepPoint {
  int shards = 1;
  double wall_s = 0.0;
  std::uint64_t events = 0;
};

struct RunOutput {
  std::string summary;
  SweepPoint point;
  bool audit_ok = true;
  std::uint64_t app_bytes = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t ghosts = 0;
  std::uint64_t messages = 0;
  std::uint64_t roams = 0;
};

RunOutput RunOnce(const shard::CityParams& city, int shards, bool audit,
                  double seconds) {
  shard::ShardEngineConfig config;
  config.shards = shards;
  config.audit = audit;
  shard::ShardEngine engine(city, config);
  const auto t0 = std::chrono::steady_clock::now();
  engine.Run(seconds);
  const auto t1 = std::chrono::steady_clock::now();
  RunOutput out;
  out.summary = engine.SummaryText();
  out.point.shards = shards;
  out.point.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.point.events = engine.EventsProcessed();
  out.audit_ok = !audit || engine.audit_ok();
  out.app_bytes = engine.AppBytesTotal();
  out.transmissions = engine.Transmissions();
  out.ghosts = engine.ghosts_injected();
  out.messages = engine.messages_shipped();
  out.roams = engine.roams_applied();
  return out;
}

/// Google-benchmark-compatible report.  The city/<metric> entries are
/// deterministic per-simulated-second rates (same scenario = same bytes);
/// the city/shards_N/wall entries carry real wall-clock throughput.
void WriteJsonReport(std::ostream& os, const shard::CityParams& city,
                     double seconds, const RunOutput& base,
                     const std::vector<SweepPoint>& sweep) {
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "{\n \"context\": {\n"
     << "  \"executable\": \"bench_city_scale\",\n"
#ifdef WHITEFI_BUILD_TYPE
     << "  \"whitefi_build_type\": \"" << WHITEFI_BUILD_TYPE << "\",\n"
#endif
     << "  \"whitefi_aps\": " << city.num_aps << ",\n"
     << "  \"whitefi_clients_per_ap\": " << city.clients_per_ap << ",\n"
     << "  \"whitefi_roams\": " << city.num_roams << ",\n"
     << "  \"whitefi_mics\": " << city.num_mics << ",\n"
     << "  \"whitefi_seconds\": " << seconds << ",\n"
     << "  \"whitefi_seed\": " << city.seed << "\n"
     << " },\n \"benchmarks\": [\n";
  bool first = true;
  auto entry = [&](const std::string& name, double rate) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\n   \"name\": \"" << name << "\",\n"
       << "   \"run_name\": \"" << name << "\",\n"
       << "   \"run_type\": \"iteration\",\n"
       << "   \"iterations\": 1,\n"
       << "   \"real_time\": " << (rate > 0.0 ? 1.0 / rate : 0.0) << ",\n"
       << "   \"cpu_time\": " << (rate > 0.0 ? 1.0 / rate : 0.0) << ",\n"
       << "   \"time_unit\": \"s\",\n"
       << "   \"items_per_second\": " << rate << "\n  }";
  };
  // Deterministic per-simulated-second rates: the committed baseline.
  entry("city/events", static_cast<double>(base.point.events) / seconds);
  entry("city/app_bytes", static_cast<double>(base.app_bytes) / seconds);
  entry("city/transmissions",
        static_cast<double>(base.transmissions) / seconds);
  entry("city/ghosts", static_cast<double>(base.ghosts) / seconds);
  entry("city/messages", static_cast<double>(base.messages) / seconds);
  // Machine-dependent wall-clock throughput per swept shard count: never
  // committed, gated only intra-report (--speedup) so runner speed
  // cancels out.
  for (const SweepPoint& p : sweep) {
    // Underscore, not a colon: the name must survive compare_bench's
    // colon-separated --speedup BASE:VARIANT:MINRATIO specs.
    entry("city/shards_" + std::to_string(p.shards) + "/wall",
          p.wall_s > 0.0 ? static_cast<double>(p.events) / p.wall_s : 0.0);
  }
  os << "\n ]\n}\n";
}

int Main(int argc, char** argv) {
  shard::CityParams city;
  city.seed = 1;
  double seconds = 3.0;
  bool audit = false;
  std::string json_path;
  std::vector<int> counts;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument(flag + " needs a value");
        }
        return argv[++i];
      };
      if (flag == "--shards") counts.assign(1, std::stoi(next()));
      else if (flag == "--sweep") {
        counts.clear();
        const std::string list = next();
        std::size_t start = 0;
        while (start < list.size()) {
          const std::size_t comma = list.find(',', start);
          counts.push_back(std::stoi(list.substr(start, comma - start)));
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        if (counts.empty()) throw std::invalid_argument("--sweep: empty list");
      }
      else if (flag == "--aps") city.num_aps = std::stoi(next());
      else if (flag == "--clients-per-ap") {
        city.clients_per_ap = std::stoi(next());
      }
      else if (flag == "--roams") city.num_roams = std::stoi(next());
      else if (flag == "--mics") city.num_mics = std::stoi(next());
      else if (flag == "--seconds") seconds = std::stod(next());
      else if (flag == "--seed") city.seed = std::stoull(next());
      else if (flag == "--audit") audit = true;
      else if (flag == "--json") json_path = next();
      else {
        std::cerr << "usage: bench_city_scale [--shards N | --sweep 1,2,4,8] "
                     "[--aps N] [--clients-per-ap N] [--roams N] [--mics N] "
                     "[--seconds S] [--seed S] [--audit] [--json PATH]\n";
        return 2;
      }
    }
    if (counts.empty()) counts.push_back(1);
    for (int c : counts) {
      if (c < 1) throw std::invalid_argument("shard count must be >= 1");
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }

  std::cerr << "city: " << city.num_aps << " APs x " << city.clients_per_ap
            << " clients, " << seconds << " s simulated, seed " << city.seed
            << (audit ? ", audited" : "") << "\n";

  std::vector<RunOutput> runs;
  for (int c : counts) {
    runs.push_back(RunOnce(city, c, audit, seconds));
    const RunOutput& r = runs.back();
    std::cerr << "shards " << c << ": wall "
              << FormatDouble(r.point.wall_s, 3) << " s, "
              << FormatDouble(
                     static_cast<double>(r.point.events) / r.point.wall_s, 0)
              << " events/s\n";
  }

  // Every count must produce the same science, byte for byte — the core
  // determinism claim of the sharded engine, asserted here on every run,
  // not only in CI.
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].summary != runs[0].summary) {
      std::cerr << "FAIL: summary at shards " << counts[i]
                << " differs from shards " << counts[0] << "\n";
      return 1;
    }
  }
  if (audit) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (!runs[i].audit_ok) {
        std::cerr << "FAIL: invariant violation at shards " << counts[i]
                  << "\n";
        return 1;
      }
    }
  }

  std::cout << runs[0].summary;

  if (runs.size() > 1) {
    const double base_wall = runs[0].point.wall_s;
    std::cerr << "\nscaling (vs shards " << counts[0] << "):\n";
    for (const RunOutput& r : runs) {
      std::cerr << "  shards " << r.point.shards << ": speedup "
                << FormatDouble(base_wall / r.point.wall_s, 2) << "x\n";
    }
  }

  if (!json_path.empty()) {
    std::vector<SweepPoint> sweep;
    for (const RunOutput& r : runs) sweep.push_back(r.point);
    std::ofstream os(json_path);
    WriteJsonReport(os, city, seconds, runs[0], sweep);
    std::cout << "json report: " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main(int argc, char** argv) { return whitefi::bench::Main(argc, argv); }
