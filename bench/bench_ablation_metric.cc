// Ablation: why MCham multiplies per-channel shares (paper Section 4.1).
//
// The paper argues that "simply taking the minimum or the maximum across
// all channels, instead of the product, will be an underestimate since the
// traffic on a narrower channel contends with traffic on an overlapping
// wider channel".  This bench compares four channel-selection rules on the
// Figure 10 microbenchmark setup, scoring each rule by the throughput its
// chosen channel actually achieves (as a fraction of the best choice):
//
//   product   MCham as specified (W/5 * prod rho)
//   minimum   W/5 * min rho          (optimistic for wide channels)
//   maximum   W/5 * max rho          (wildly optimistic)
//   widest    always pick the widest fitting channel
#include <iostream>
#include <map>

#include "core/mcham.h"
#include "scenario.h"
#include "sim/scanner.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

double RuleScore(const Channel& channel, const BandObservation& obs,
                 const std::string& rule) {
  if (rule == "product") return MCham(channel, obs);
  double best_rho = rule == "minimum" ? 1.0 : 0.0;
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    const auto& o = obs[static_cast<std::size_t>(c)];
    if (o.incumbent) return 0.0;
    const double rho = Rho(o);
    best_rho = rule == "minimum" ? std::min(best_rho, rho)
                                 : std::max(best_rho, rho);
  }
  return (WidthMHz(channel.width) / 5.0) * best_rho;
}

int Main() {
  std::cout << "Ablation: MCham's product form vs. min / max / widest-first\n"
            << "(Figure 10 setup; per rule: throughput of the chosen channel "
               "as a fraction of the per-point best)\n\n";

  const SpectrumMap map = SpectrumMap::FromFreeTvChannels({26, 27, 28, 29, 30});
  const UhfIndex center = IndexOfTvChannel(28);
  const std::array<Channel, 3> channels{Channel{center, ChannelWidth::kW5},
                                        Channel{center, ChannelWidth::kW10},
                                        Channel{center, ChannelWidth::kW20}};
  const std::vector<std::string> rules{"product", "minimum", "maximum",
                                       "widest"};
  std::map<std::string, RunningStats> score;

  std::uint64_t seed = 7100;
  for (SimTime ipd_ms : {3, 6, 10, 16, 24, 36, 50}) {
    // Measure the observation once (passive) and the three throughputs.
    ScenarioConfig config;
    config.seed = seed++;
    config.base_map = map;
    config.num_clients = 1;
    config.warmup_s = 1.0;
    config.measure_s = 3.0;
    for (int tv = 26; tv <= 30; ++tv) {
      BackgroundSpec spec;
      spec.channel = IndexOfTvChannel(tv);
      spec.cbr_interval = ipd_ms * kTicksPerMs;
      config.background.push_back(spec);
    }
    std::array<double, 3> tput{};
    for (int i = 0; i < 3; ++i) {
      ScenarioConfig trial = config;
      trial.static_channel = channels[static_cast<std::size_t>(i)];
      tput[static_cast<std::size_t>(i)] = RunScenario(trial).per_client_mbps;
    }
    const double best = *std::max_element(tput.begin(), tput.end());
    if (best <= 0.0) continue;

    // A simple analytic observation consistent with the offered load (the
    // metric comparison, not the scanner, is the subject here).
    BandObservation obs = EmptyBandObservation();
    const PhyTiming t5 = PhyTiming::ForWidth(ChannelWidth::kW5);
    const double duty = std::min(
        1.0, (t5.FrameDuration(1028) + t5.AckDuration()) /
                 (static_cast<double>(ipd_ms) * 1000.0));
    for (int tv = 26; tv <= 30; ++tv) {
      auto& o = obs[static_cast<std::size_t>(IndexOfTvChannel(tv))];
      o.airtime = duty;
      o.ap_count = 1;
    }

    for (const std::string& rule : rules) {
      int pick = 2;  // widest
      if (rule != "widest") {
        double best_metric = -1.0;
        for (int i = 0; i < 3; ++i) {
          const double m =
              RuleScore(channels[static_cast<std::size_t>(i)], obs, rule);
          if (m > best_metric) {
            best_metric = m;
            pick = i;
          }
        }
      }
      score[rule].Add(tput[static_cast<std::size_t>(pick)] / best);
    }
  }

  Table table({"rule", "avg fraction of best throughput"});
  for (const std::string& rule : rules) {
    table.AddRow({rule, FormatPercent(score[rule].Mean())});
  }
  table.Print(std::cout);
  std::cout << "\nmin/max overrate wide channels under load; the product "
               "tracks the contention coupling across sub-channels\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
