// Reproduces Figure 2: the expected UHF spectrum fragmentation after the
// June 2009 US DTV transition, in urban / suburban / rural locales.
//
// The paper derived this from the TV Fool station database over 10 locales
// per class; this build substitutes a calibrated parametric occupancy
// model (see DESIGN.md).  Expected shape: all classes expose at least one
// 4-channel (24 MHz) fragment; rural locales reach fragments of ~16
// channels, urban locales stay narrow.
#include <iostream>

#include "spectrum/locales.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

int Main() {
  std::cout << "Figure 2: contiguous free-fragment widths per locale class\n"
            << "(10 locales per class, counts of maximal free runs)\n\n";
  Rng rng(220);
  Table summary({"class", "locales", "fragments", "max width(ch)",
                 "max width(MHz)", ">=4ch fragments"});
  for (LocaleClass locale : kAllLocaleClasses) {
    const auto maps = GenerateLocales(locale, 10, rng);
    const IntHistogram hist = FragmentWidthHistogram(maps);
    std::cout << LocaleClassName(locale) << ":\n"
              << hist.ToString("width") << "\n";
    std::size_t wide = 0;
    for (int w = 4; w <= hist.MaxValue(); ++w) wide += hist.CountOf(w);
    summary.AddRow({LocaleClassName(locale), "10",
                    std::to_string(hist.Total()),
                    std::to_string(hist.MaxObserved()),
                    FormatDouble(hist.MaxObserved() * 6.0, 0),
                    std::to_string(wide)});
  }
  summary.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
