// Reproduces Figure 11: impact of background traffic on per-client
// throughput.
//
// Setup (paper Section 5.4.1): the measured 17-free-channel campus
// spectrum map; X background AP/client pairs, each randomly assigned to a
// free UHF channel, sending CBR with 30 ms inter-packet delay; WhiteFi AP
// with backlogged clients.  Baselines: OPT-5/10/20 (best static channel of
// that width, found by exhaustive simulation) and OPT (their max).
//
// Expected shape: with little background, WhiteFi matches OPT-20 (widest
// wins); as pairs multiply, OPT-20 degrades and narrower widths take over,
// while WhiteFi stays near OPT throughout (paper: within 14%).
#include <iostream>

#include "scenario.h"
#include "spectrum/campus.h"
#include "util/report.h"
#include "util/stats.h"

namespace whitefi::bench {
namespace {

constexpr int kReps = 3;

ScenarioConfig MakeConfig(int pairs, std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.base_map = CampusSimulationMap();
  config.num_clients = 4;
  config.warmup_s = 2.0;
  config.measure_s = 5.0;
  ApParams ap;
  ap.assignment_interval = 2 * kTicksPerSec;
  ap.first_assignment_delay = 1 * kTicksPerSec;
  ap.scanner.dwell = 100 * kTicksPerMs;
  config.ap_params = ap;
  Rng rng(DeriveSeed(seed, "fig11.background"));
  const auto free = config.base_map.FreeIndices();
  for (int i = 0; i < pairs; ++i) {
    BackgroundSpec spec;
    spec.channel = rng.Pick(free);
    spec.cbr_interval = 30 * kTicksPerMs;
    spec.payload_bytes = 500;
    config.background.push_back(spec);
  }
  return config;
}

int Main() {
  std::cout << "Figure 11: per-client throughput vs. number of background "
               "AP/client pairs\n"
            << "(campus map, 17 free channels; 30 ms CBR background; "
            << kReps << " random placements per point)\n\n";
  Table table({"pairs", "WhiteFi", "OPT5", "OPT10", "OPT20", "OPT",
               "WhiteFi/OPT"});
  std::uint64_t seed = 1200;
  for (int pairs : {0, 5, 10, 15, 20, 25, 30}) {
    RunningStats whitefi, opt5, opt10, opt20, opt;
    for (int rep = 0; rep < kReps; ++rep) {
      const ScenarioConfig config = MakeConfig(pairs, seed++);
      whitefi.Add(RunScenario(config).per_client_mbps);
      const double o5 = OptStaticThroughput(config, ChannelWidth::kW5, 3.0);
      const double o10 = OptStaticThroughput(config, ChannelWidth::kW10, 3.0);
      const double o20 = OptStaticThroughput(config, ChannelWidth::kW20, 3.0);
      opt5.Add(o5);
      opt10.Add(o10);
      opt20.Add(o20);
      opt.Add(std::max({o5, o10, o20}));
    }
    table.AddRow({std::to_string(pairs), FormatDouble(whitefi.Mean(), 2),
                  FormatDouble(opt5.Mean(), 2), FormatDouble(opt10.Mean(), 2),
                  FormatDouble(opt20.Mean(), 2), FormatDouble(opt.Mean(), 2),
                  FormatPercent(whitefi.Mean() / opt.Mean())});
  }
  table.Print(std::cout);
  std::cout << "\npaper: WhiteFi always within 14% of OPT; OPT-20 degrades "
               "with load, OPT-10 overtakes around 10 pairs\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
