#include "sift_experiment.h"

#include <cmath>
#include <span>
#include <utility>

#include "sift/batch.h"

namespace whitefi::bench {

SignalRun MakeIperfRun(ChannelWidth width, int count, Us interval_us,
                       int payload_bytes, const SignalParams& params,
                       Rng rng) {
  SignalRun run;
  MakeIperfRunInto(width, count, interval_us, payload_bytes, params,
                   std::move(rng), run);
  return run;
}

void MakeIperfRunInto(ChannelWidth width, int count, Us interval_us,
                      int payload_bytes, const SignalParams& params, Rng rng,
                      SignalRun& run) {
  const PhyTiming timing = PhyTiming::ForWidth(width);
  run.packets.clear();
  std::vector<Burst> bursts;
  bursts.reserve(static_cast<std::size_t>(count) * 2);
  for (int i = 0; i < count; ++i) {
    const Us start = 500.0 + static_cast<double>(i) * interval_us;
    const auto exchange = MakeDataAckExchange(timing, start, payload_bytes);
    run.packets.push_back(SentPacket{start, exchange[0].duration});
    bursts.insert(bursts.end(), exchange.begin(), exchange.end());
  }
  run.total_duration = bursts.back().start + bursts.back().duration + 1000.0;
  SignalSynthesizer synth(params, std::move(rng));
  synth.SynthesizeInto(bursts, run.total_duration, run.samples);
}

int CountDetected(const std::vector<SentPacket>& packets,
                  const std::vector<DetectedBurst>& bursts,
                  bool require_duration_match, Us duration_tolerance_us) {
  int detected = 0;
  std::size_t cursor = 0;
  for (const SentPacket& packet : packets) {
    const Us lo = packet.start;
    const Us hi = packet.start + packet.duration;
    bool found = false;
    // Bursts are time ordered; advance the cursor past bursts that end
    // before this packet starts.
    while (cursor < bursts.size() && bursts[cursor].end < lo) ++cursor;
    for (std::size_t i = cursor; i < bursts.size() && bursts[i].start < hi;
         ++i) {
      if (!require_duration_match) {
        found = true;
        break;
      }
      if (std::abs(bursts[i].Duration() - packet.duration) <=
          duration_tolerance_us) {
        found = true;
        break;
      }
    }
    detected += found ? 1 : 0;
  }
  return detected;
}

int CountDetectedByCoverage(const std::vector<SentPacket>& packets,
                            const std::vector<DetectedBurst>& bursts,
                            double min_coverage) {
  int detected = 0;
  std::size_t cursor = 0;
  for (const SentPacket& packet : packets) {
    const Us lo = packet.start;
    const Us hi = packet.start + packet.duration;
    while (cursor < bursts.size() && bursts[cursor].end < lo) ++cursor;
    Us covered = 0.0;
    for (std::size_t i = cursor; i < bursts.size() && bursts[i].start < hi;
         ++i) {
      covered += std::max(0.0, std::min(hi, bursts[i].end) -
                                   std::max(lo, bursts[i].start));
    }
    detected += covered >= min_coverage * packet.duration ? 1 : 0;
  }
  return detected;
}

std::vector<int> BatchedDetectionCounts(ChannelWidth width, int runs,
                                        int count, Us interval_us,
                                        int payload_bytes,
                                        const SignalParams& params, Rng& rng,
                                        bool require_duration_match,
                                        Us duration_tolerance_us,
                                        std::size_t sample_budget) {
  std::vector<int> counts;
  counts.reserve(static_cast<std::size_t>(runs));
  std::vector<SignalRun> pending;
  std::size_t pending_samples = 0;

  const auto flush = [&] {
    if (pending.empty()) return;
    SiftBatch batch(SiftParams{}, pending.size());
    std::vector<std::span<const double>> spans;
    spans.reserve(pending.size());
    for (const SignalRun& run : pending) spans.emplace_back(run.samples);
    const auto bursts = batch.DetectAll(spans);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      counts.push_back(CountDetected(pending[i].packets, bursts[i],
                                     require_duration_match,
                                     duration_tolerance_us));
    }
    pending.clear();
    pending_samples = 0;
  };

  for (int run = 0; run < runs; ++run) {
    // Fork in run order regardless of flush boundaries, so the synthesized
    // traces match the serial loop's draws exactly.
    SignalRun signal;
    MakeIperfRunInto(width, count, interval_us, payload_bytes, params,
                     rng.Fork(), signal);
    pending_samples += signal.samples.size();
    pending.push_back(std::move(signal));
    if (pending_samples >= sample_budget) flush();
  }
  flush();
  return counts;
}

}  // namespace whitefi::bench
