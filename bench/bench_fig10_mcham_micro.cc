// Reproduces Figure 10: the MCham microbenchmark.
//
// Setup (paper Section 5.4.1): a fragment of 5 adjacent UHF channels
// (TV 26-30), one background AP/client pair per channel, and one WhiteFi
// AP+client pair with a link-saturating UDP flow.  Sweeping the background
// CBR intensity (inter-packet delay), we measure (a) the MCham value of
// the 5, 10, and 20 MHz channels centered at TV channel 28, from a real
// scanner's airtime observation, and (b) the throughput actually achieved
// when pinning the WhiteFi pair to each channel.
//
// Expected shape: with heavy background (small delay) the narrow channel
// wins and MCham ranks it first; as background thins, 10 MHz and then
// 20 MHz take over, with MCham's predicted winner tracking the measured
// winner across the sweep.
#include <iostream>

#include "core/mcham.h"
#include "scenario.h"
#include "sim/scanner.h"
#include "util/report.h"

namespace whitefi::bench {
namespace {

const SpectrumMap Fragment() {
  return SpectrumMap::FromFreeTvChannels({26, 27, 28, 29, 30});
}

ScenarioConfig BaseConfig(SimTime ipd, std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.base_map = Fragment();
  config.num_clients = 1;
  config.warmup_s = 1.0;
  config.measure_s = 4.0;
  for (int tv = 26; tv <= 30; ++tv) {
    BackgroundSpec spec;
    spec.channel = IndexOfTvChannel(tv);
    spec.cbr_interval = ipd;
    config.background.push_back(spec);
  }
  return config;
}

/// Measures MCham of the three widths centered at TV 28 with a passive
/// observer (scanner only, no WhiteFi traffic).
std::array<double, 3> MeasureMCham(SimTime ipd, std::uint64_t seed) {
  ScenarioConfig config = BaseConfig(ipd, seed);
  WorldConfig wc;
  wc.seed = seed;
  World world(wc);
  Rng rng = world.NewRng();
  int next_ssid = 100;
  std::vector<std::unique_ptr<CbrSource>> sources;
  for (const BackgroundSpec& spec : config.background) {
    DeviceConfig tx_config;
    // Same annulus the scenario runner uses for background pairs.
    const double r = rng.Uniform(150.0, 500.0);
    const double theta = rng.Uniform(0.0, 2.0 * M_PI);
    tx_config.position = {r * std::cos(theta), r * std::sin(theta)};
    tx_config.ssid = next_ssid++;
    tx_config.is_ap = true;
    tx_config.initial_channel = Channel{spec.channel, ChannelWidth::kW5};
    tx_config.tv_map = config.base_map;
    Device& tx = world.Create<Device>(tx_config);
    DeviceConfig rx_config = tx_config;
    rx_config.is_ap = false;
    rx_config.position.x += 20.0;
    Device& rx = world.Create<Device>(rx_config);
    sources.push_back(std::make_unique<CbrSource>(tx, rx.NodeId(), 1000,
                                                  spec.cbr_interval));
    sources.back()->Start();
  }
  DeviceConfig observer_config;
  observer_config.position = {0, 0};
  observer_config.ssid = 1;
  observer_config.tv_map = config.base_map;
  observer_config.initial_channel = Channel{IndexOfTvChannel(48),
                                            ChannelWidth::kW5};
  Device& observer = world.Create<Device>(observer_config);
  ScannerParams sp;
  sp.dwell = 400 * kTicksPerMs;
  Scanner scanner(observer, sp);
  scanner.StartSweep();
  world.RunFor(6.0);

  const UhfIndex center = IndexOfTvChannel(28);
  return {MCham(Channel{center, ChannelWidth::kW5}, scanner.Observation()),
          MCham(Channel{center, ChannelWidth::kW10}, scanner.Observation()),
          MCham(Channel{center, ChannelWidth::kW20}, scanner.Observation())};
}

int Main() {
  std::cout << "Figure 10: MCham vs. measured throughput of the 5/10/20 MHz "
               "channels at TV ch28\n"
            << "(5-channel fragment, one background pair per channel, "
               "intensity = CBR inter-packet delay)\n\n";
  Table table({"ipd(ms)", "MCham5", "MCham10", "MCham20", "tput5(Mbps)",
               "tput10(Mbps)", "tput20(Mbps)", "MCham pick", "tput pick"});
  const UhfIndex center = IndexOfTvChannel(28);
  const std::array<Channel, 3> channels{Channel{center, ChannelWidth::kW5},
                                        Channel{center, ChannelWidth::kW10},
                                        Channel{center, ChannelWidth::kW20}};
  std::uint64_t seed = 1100;
  for (SimTime ipd_ms : {2, 6, 10, 14, 18, 24, 30, 40, 50}) {
    const SimTime ipd = ipd_ms * kTicksPerMs;
    const auto mcham = MeasureMCham(ipd, seed++);
    std::array<double, 3> tput{};
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t rep_seed = seed++;
      for (int i = 0; i < 3; ++i) {
        ScenarioConfig config = BaseConfig(ipd, rep_seed);
        config.static_channel = channels[static_cast<std::size_t>(i)];
        tput[static_cast<std::size_t>(i)] +=
            RunScenario(config).per_client_mbps / kReps;
      }
    }
    const auto pick = [](const std::array<double, 3>& v) {
      const int best = static_cast<int>(
          std::max_element(v.begin(), v.end()) - v.begin());
      return WidthLabel(kAllWidths[static_cast<std::size_t>(best)]);
    };
    table.AddRow({std::to_string(ipd_ms), FormatDouble(mcham[0], 2),
                  FormatDouble(mcham[1], 2), FormatDouble(mcham[2], 2),
                  FormatDouble(tput[0], 2), FormatDouble(tput[1], 2),
                  FormatDouble(tput[2], 2), pick(mcham), pick(tput)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected: the MCham pick tracks the throughput pick, "
               "crossing 20 -> 10 -> 5 MHz as background intensifies\n";
  return 0;
}

}  // namespace
}  // namespace whitefi::bench

int main() { return whitefi::bench::Main(); }
