// google-benchmark micro-benchmarks for the simulator substrate: event
// queue throughput (schedule/fire and schedule/cancel churn), the medium
// fast path under a dense-overlap transmit storm, a saturated CSMA/CA
// cell, a fig13-style mixed multi-cell load, and the spectrum-assignment
// evaluation cost (84 candidate channels per decision).
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "audit/audit.h"
#include "core/assignment.h"
#include "core/discovery.h"
#include "obs/event_trace.h"
#include "obs/state_timeline.h"
#include "sim/traffic.h"
#include "sim/world.h"
#include "spectrum/campus.h"
#include "util/parallel.h"

namespace whitefi {
namespace {

/// Bulk schedule-then-run: 10k timers spread (in shuffled order) over a
/// 100 ms horizon, then drained.  The simulator is reused across
/// iterations — real scenarios construct one engine per run and push
/// millions of events through it, so the per-event cycle, not the
/// constructor, is what this measures.
void BM_EventQueueScheduleRun(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    const SimTime base = sim.Now();
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(base + (i * 7919) % 100000, [] {});
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.NumProcessed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_EventQueueScheduleRun);

/// Steady-state schedule/fire cycle: one simulator reused across the whole
/// run, so slab/heap growth amortizes away and the measured cost is the
/// pure per-event cycle (the regime long soaks live in).
void BM_EventQueueSteadyState(benchmark::State& state) {
  Simulator sim;
  constexpr int kBatch = 4096;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sim.ScheduleAfter((i * 7919) % 1000 + 1, [] {});
    }
    sim.RunUntilIdle();
  }
  benchmark::DoNotOptimize(sim.NumProcessed());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_EventQueueSteadyState);

/// Timer-heavy protocol pattern: every scheduled timeout is cancelled and
/// re-armed several times before it finally fires (ACK timers, contention
/// timers, chirp watchdogs all behave this way).  Also cancels ids that
/// have already fired — the unbounded-tombstone case of the seed engine.
void BM_EventScheduleCancelChurn(benchmark::State& state) {
  constexpr int kTimers = 2048;
  constexpr int kRearms = 4;
  Simulator sim;
  std::vector<EventId> timers(kTimers, kInvalidEventId);
  for (auto _ : state) {
    for (int rearm = 0; rearm < kRearms; ++rearm) {
      for (int i = 0; i < kTimers; ++i) {
        sim.Cancel(timers[static_cast<std::size_t>(i)]);
        timers[static_cast<std::size_t>(i)] =
            sim.ScheduleAfter((i * 31) % 500 + 1, [] {});
      }
    }
    sim.RunUntilIdle();
    // Cancelling fired ids must be a cheap miss, not a tombstone insert.
    for (const EventId id : timers) sim.Cancel(id);
  }
  benchmark::DoNotOptimize(sim.NumProcessed());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTimers * kRearms);
}
BENCHMARK(BM_EventScheduleCancelChurn);

/// Medium-level stub: a radio parked on one channel that swallows
/// deliveries, so the measured cost is the medium's own bookkeeping.
class StormRadio : public RadioPort {
 public:
  StormRadio(int id, Position pos, Channel channel)
      : id_(id), pos_(pos), channel_(channel) {}

  int NodeId() const override { return id_; }
  Position Location() const override { return pos_; }
  const Channel& TunedChannel() const override { return channel_; }
  bool RxEnabled() const override { return true; }
  bool IsAp() const override { return false; }
  void DeliverFrame(const Frame&, Dbm) override { ++delivered_; }
  void MediumChanged() override { ++changes_; }

 private:
  int id_;
  Position pos_;
  Channel channel_;
  std::uint64_t delivered_ = 0;
  std::uint64_t changes_ = 0;
};

/// Dense-overlap transmit storm: 30 transmitters (one per UHF channel)
/// plus periodic 20 MHz wideband frames, with frame durations far longer
/// than the inter-start spacing so hundreds of transmissions are on the
/// air at once — the regime where scanning every active transmission per
/// Transmit() goes quadratic in offered load.
void BM_MediumTransmitStorm(benchmark::State& state) {
  constexpr int kTransmissions = 3000;
  constexpr SimTime kSpacing = 10;     // One new frame every 10 us.
  constexpr SimTime kDuration = 3000;  // ~300 concurrently active.
  for (auto _ : state) {
    Simulator sim;
    Medium medium(sim, MediumParams{});
    std::vector<StormRadio> radios;
    radios.reserve(kNumUhfChannels);
    for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
      radios.emplace_back(c, Position{static_cast<double>(40 * c), 0.0},
                          Channel{c, ChannelWidth::kW5});
    }
    for (StormRadio& radio : radios) medium.Register(&radio);
    Frame frame;
    frame.type = FrameType::kData;
    frame.bytes = 500;
    for (int i = 0; i < kTransmissions; ++i) {
      const UhfIndex c = i % kNumUhfChannels;
      // Every 7th frame is a 20 MHz wideband burst (clamped to a valid
      // center) so the storm also exercises cross-width overlap.
      const Channel channel =
          i % 7 == 0 ? Channel{std::clamp(c, 2, kNumUhfChannels - 3),
                               ChannelWidth::kW20}
                     : Channel{c, ChannelWidth::kW5};
      StormRadio* tx = &radios[static_cast<std::size_t>(c)];
      Frame f = frame;
      f.src = c;
      sim.Schedule(i * kSpacing, [&medium, tx, channel, f] {
        medium.Transmit(tx, channel, f, 16.0, kDuration, nullptr);
      });
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(medium.NumTransmissions());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTransmissions);
}
BENCHMARK(BM_MediumTransmitStorm);

void BM_SaturatedCellSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    World world;
    DeviceConfig config;
    config.initial_channel = Channel{10, ChannelWidth::kW20};
    config.position = {0, 0};
    Device& a = world.Create<Device>(config);
    config.position = {50, 0};
    Device& b = world.Create<Device>(config);
    SaturatedSource source(a, b.NodeId(), 1000);
    source.Start();
    world.RunFor(1.0);  // One simulated second of saturated traffic.
    benchmark::DoNotOptimize(world.AppBytes(b.NodeId()));
  }
}
BENCHMARK(BM_SaturatedCellSimSecond);

/// The same saturated second with the invariant auditor attached: every
/// transmit feeds the interval-union reference and the periodic sweep
/// cross-checks the medium books.  The acceptance bar is <10% overhead
/// over BM_SaturatedCellSimSecond — the auditor must stay cheap enough to
/// leave on in every soak.
void BM_SaturatedCellSimSecondAudited(benchmark::State& state) {
  for (auto _ : state) {
    InvariantAuditor auditor;
    WorldConfig world_config;
    world_config.obs.auditor = &auditor;
    World world(world_config);
    auditor.Attach(world);
    DeviceConfig config;
    config.initial_channel = Channel{10, ChannelWidth::kW20};
    config.position = {0, 0};
    Device& a = world.Create<Device>(config);
    config.position = {50, 0};
    Device& b = world.Create<Device>(config);
    SaturatedSource source(a, b.NodeId(), 1000);
    source.Start();
    world.RunFor(1.0);
    benchmark::DoNotOptimize(world.AppBytes(b.NodeId()));
    benchmark::DoNotOptimize(auditor.violation_count());
  }
}
BENCHMARK(BM_SaturatedCellSimSecondAudited);

/// The audited saturated second with the flight recorder attached on top:
/// a kind-filtered event trace (protocol-level kinds only, the trace_lens
/// capture profile) plus the state timeline.  Per-frame hot sites take
/// the Wants()-rejected path (exact counting, no record built) on
/// every tx/rx/backoff, which is precisely the cost the ≤5% overhead
/// gate in compare_bench.py --overhead pins against
/// BM_SaturatedCellSimSecondAudited.
void BM_SaturatedCellSimSecondAuditedTraced(benchmark::State& state) {
  for (auto _ : state) {
    InvariantAuditor auditor;
    EventTraceOptions trace_options;
    trace_options.only = {
        TraceEventKind::kSpanBegin,  TraceEventKind::kSpanEnd,
        TraceEventKind::kStateEnter, TraceEventKind::kChirp,
        TraceEventKind::kChannelSwitch, TraceEventKind::kIncumbentOn,
        TraceEventKind::kIncumbentOff,
    };
    EventTrace trace(trace_options);
    StateTimeline timeline;
    WorldConfig world_config;
    world_config.obs.auditor = &auditor;
    world_config.obs.trace = &trace;
    world_config.obs.timeline = &timeline;
    World world(world_config);
    auditor.Attach(world);
    DeviceConfig config;
    config.initial_channel = Channel{10, ChannelWidth::kW20};
    config.position = {0, 0};
    Device& a = world.Create<Device>(config);
    config.position = {50, 0};
    Device& b = world.Create<Device>(config);
    SaturatedSource source(a, b.NodeId(), 1000);
    source.Start();
    world.RunFor(1.0);
    benchmark::DoNotOptimize(world.AppBytes(b.NodeId()));
    benchmark::DoNotOptimize(trace.TotalSeen());
  }
}
BENCHMARK(BM_SaturatedCellSimSecondAuditedTraced);

/// Fig13-style mixed load: one saturated 20 MHz cell plus Markov on/off
/// CBR background pairs spread over the band — the event/medium mix
/// (timers, collisions, cross-channel books) every network-level
/// experiment in the suite is built from.
void BM_MixedLoadSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    World world;
    DeviceConfig cell;
    cell.initial_channel = Channel{10, ChannelWidth::kW20};
    cell.position = {0, 0};
    Device& ap = world.Create<Device>(cell);
    cell.position = {50, 0};
    Device& client = world.Create<Device>(cell);
    SaturatedSource downlink(ap, client.NodeId(), 1000);

    std::vector<std::unique_ptr<MarkovOnOffSource>> backgrounds;
    DeviceConfig bg;
    for (int pair = 0; pair < 10; ++pair) {
      const UhfIndex c = (pair * 3) % kNumUhfChannels;
      bg.initial_channel = Channel{c, ChannelWidth::kW5};
      bg.position = {200.0 + 10.0 * pair, 200.0};
      Device& src = world.Create<Device>(bg);
      bg.position = {200.0 + 10.0 * pair, 250.0};
      Device& dst = world.Create<Device>(bg);
      MarkovOnOffSource::Params markov;
      markov.mean_active = kTicksPerSec / 4;
      markov.mean_passive = kTicksPerSec / 4;
      backgrounds.push_back(std::make_unique<MarkovOnOffSource>(
          src, dst.NodeId(), 500, 25 * kTicksPerMs, markov));
    }
    downlink.Start();
    for (auto& background : backgrounds) background->Start();
    world.RunFor(1.0);
    benchmark::DoNotOptimize(world.AppBytes(client.NodeId()));
  }
}
BENCHMARK(BM_MixedLoadSimSecond);

void BM_AssignmentEvaluation(benchmark::State& state) {
  AssignmentInputs inputs;
  inputs.ap_map = CampusSimulationMap();
  inputs.ap_observation = EmptyBandObservation();
  for (int i = 0; i < 10; ++i) {
    inputs.client_maps.push_back(inputs.ap_map);
    inputs.client_observations.push_back(inputs.ap_observation);
  }
  SpectrumAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.SelectInitial(inputs));
  }
}
BENCHMARK(BM_AssignmentEvaluation);

void BM_JSiftDiscovery(benchmark::State& state) {
  const SpectrumMap map = CampusSimulationMap();
  const auto usable = map.UsableChannels();
  Rng rng(4);
  for (auto _ : state) {
    AnalyticScanEnvironment env(usable[rng.Index(usable.size())]);
    benchmark::DoNotOptimize(JSiftDiscover(env, map));
  }
}
BENCHMARK(BM_JSiftDiscovery);

/// Dispatch cost of the deterministic trial runner: 64 discovery trials
/// per batch, swept over job counts.  On a single-core host every job
/// count degenerates to the serial loop; the jobs=1 row is the pure
/// function-call overhead either way.
void BM_ParallelDiscoveryTrials(benchmark::State& state) {
  const SpectrumMap map = CampusSimulationMap();
  const auto usable = map.UsableChannels();
  const int jobs = static_cast<int>(state.range(0));
  constexpr std::size_t kTrials = 64;
  for (auto _ : state) {
    const auto elapsed =
        ParallelMap(jobs, kTrials, [&](std::size_t i) {
          AnalyticScanEnvironment env(usable[i % usable.size()]);
          return JSiftDiscover(env, map).elapsed;
        });
    benchmark::DoNotOptimize(elapsed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_ParallelDiscoveryTrials)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace whitefi

// Custom main so JSON reports carry context for bench/compare_bench.py.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("whitefi_trial_runner", "parallel");
  benchmark::AddCustomContext("whitefi_hardware_jobs",
                              std::to_string(whitefi::HardwareJobs()));
#ifdef WHITEFI_BUILD_TYPE
  benchmark::AddCustomContext("whitefi_build_type", WHITEFI_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
