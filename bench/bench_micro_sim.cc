// google-benchmark micro-benchmarks for the simulator substrate: event
// queue throughput, a saturated CSMA/CA cell, and the spectrum-assignment
// evaluation cost (84 candidate channels per decision).
#include <benchmark/benchmark.h>

#include "core/assignment.h"
#include "core/discovery.h"
#include "sim/traffic.h"
#include "sim/world.h"
#include "spectrum/campus.h"
#include "util/parallel.h"

namespace whitefi {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule((i * 7919) % 100000, [] {});
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.NumProcessed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SaturatedCellSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    World world;
    DeviceConfig config;
    config.initial_channel = Channel{10, ChannelWidth::kW20};
    config.position = {0, 0};
    Device& a = world.Create<Device>(config);
    config.position = {50, 0};
    Device& b = world.Create<Device>(config);
    SaturatedSource source(a, b.NodeId(), 1000);
    source.Start();
    world.RunFor(1.0);  // One simulated second of saturated traffic.
    benchmark::DoNotOptimize(world.AppBytes(b.NodeId()));
  }
}
BENCHMARK(BM_SaturatedCellSimSecond);

void BM_AssignmentEvaluation(benchmark::State& state) {
  AssignmentInputs inputs;
  inputs.ap_map = CampusSimulationMap();
  inputs.ap_observation = EmptyBandObservation();
  for (int i = 0; i < 10; ++i) {
    inputs.client_maps.push_back(inputs.ap_map);
    inputs.client_observations.push_back(inputs.ap_observation);
  }
  SpectrumAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.SelectInitial(inputs));
  }
}
BENCHMARK(BM_AssignmentEvaluation);

void BM_JSiftDiscovery(benchmark::State& state) {
  const SpectrumMap map = CampusSimulationMap();
  const auto usable = map.UsableChannels();
  Rng rng(4);
  for (auto _ : state) {
    AnalyticScanEnvironment env(usable[rng.Index(usable.size())]);
    benchmark::DoNotOptimize(JSiftDiscover(env, map));
  }
}
BENCHMARK(BM_JSiftDiscovery);

/// Dispatch cost of the deterministic trial runner: 64 discovery trials
/// per batch, swept over job counts.  On a single-core host every job
/// count degenerates to the serial loop; the jobs=1 row is the pure
/// function-call overhead either way.
void BM_ParallelDiscoveryTrials(benchmark::State& state) {
  const SpectrumMap map = CampusSimulationMap();
  const auto usable = map.UsableChannels();
  const int jobs = static_cast<int>(state.range(0));
  constexpr std::size_t kTrials = 64;
  for (auto _ : state) {
    const auto elapsed =
        ParallelMap(jobs, kTrials, [&](std::size_t i) {
          AnalyticScanEnvironment env(usable[i % usable.size()]);
          return JSiftDiscover(env, map).elapsed;
        });
    benchmark::DoNotOptimize(elapsed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTrials));
}
BENCHMARK(BM_ParallelDiscoveryTrials)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace whitefi

// Custom main so JSON reports carry context for bench/compare_bench.py.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("whitefi_trial_runner", "parallel");
  benchmark::AddCustomContext("whitefi_hardware_jobs",
                              std::to_string(whitefi::HardwareJobs()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
