// google-benchmark micro-benchmarks for the simulator substrate: event
// queue throughput, a saturated CSMA/CA cell, and the spectrum-assignment
// evaluation cost (84 candidate channels per decision).
#include <benchmark/benchmark.h>

#include "core/assignment.h"
#include "core/discovery.h"
#include "sim/traffic.h"
#include "sim/world.h"
#include "spectrum/campus.h"

namespace whitefi {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule((i * 7919) % 100000, [] {});
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.NumProcessed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SaturatedCellSimSecond(benchmark::State& state) {
  for (auto _ : state) {
    World world;
    DeviceConfig config;
    config.initial_channel = Channel{10, ChannelWidth::kW20};
    config.position = {0, 0};
    Device& a = world.Create<Device>(config);
    config.position = {50, 0};
    Device& b = world.Create<Device>(config);
    SaturatedSource source(a, b.NodeId(), 1000);
    source.Start();
    world.RunFor(1.0);  // One simulated second of saturated traffic.
    benchmark::DoNotOptimize(world.AppBytes(b.NodeId()));
  }
}
BENCHMARK(BM_SaturatedCellSimSecond);

void BM_AssignmentEvaluation(benchmark::State& state) {
  AssignmentInputs inputs;
  inputs.ap_map = CampusSimulationMap();
  inputs.ap_observation = EmptyBandObservation();
  for (int i = 0; i < 10; ++i) {
    inputs.client_maps.push_back(inputs.ap_map);
    inputs.client_observations.push_back(inputs.ap_observation);
  }
  SpectrumAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.SelectInitial(inputs));
  }
}
BENCHMARK(BM_AssignmentEvaluation);

void BM_JSiftDiscovery(benchmark::State& state) {
  const SpectrumMap map = CampusSimulationMap();
  const auto usable = map.UsableChannels();
  Rng rng(4);
  for (auto _ : state) {
    AnalyticScanEnvironment env(usable[rng.Index(usable.size())]);
    benchmark::DoNotOptimize(JSiftDiscover(env, map));
  }
}
BENCHMARK(BM_JSiftDiscovery);

}  // namespace
}  // namespace whitefi

BENCHMARK_MAIN();
