#include "scenario_file.h"

#include <stdexcept>

#include "spectrum/campus.h"
#include "spectrum/locales.h"

namespace whitefi::bench {

ScenarioConfig LoadScenario(const ConfigFile& config) {
  ScenarioConfig scenario;
  scenario.seed = static_cast<std::uint64_t>(config.GetInt("seed", 1));
  scenario.measure_s = config.GetDouble("seconds", 10.0);
  scenario.warmup_s = config.GetDouble("warmup", 1.0);

  // Map.
  const std::string map_name = config.Get("map.name", "campus");
  Rng map_rng(DeriveSeed(scenario.seed, "scenario_file.map"));
  if (map_name == "campus") {
    scenario.base_map = CampusSimulationMap();
  } else if (map_name == "building5") {
    scenario.base_map = Building5Map();
  } else if (map_name == "urban") {
    scenario.base_map = GenerateLocaleMap(LocaleClass::kUrban, map_rng);
  } else if (map_name == "suburban") {
    scenario.base_map = GenerateLocaleMap(LocaleClass::kSuburban, map_rng);
  } else if (map_name == "rural") {
    scenario.base_map = GenerateLocaleMap(LocaleClass::kRural, map_rng);
  } else if (map_name == "empty") {
    scenario.base_map = SpectrumMap{};
  } else {
    throw std::runtime_error("unknown map.name: " + map_name);
  }
  for (long long tv : config.GetIntList("map.extra_occupied")) {
    scenario.base_map.SetOccupied(IndexOfTvChannel(static_cast<int>(tv)));
  }

  // Network.
  scenario.num_clients = static_cast<int>(config.GetInt("network.clients", 2));
  scenario.client_map_flip_p = config.GetDouble("network.flip_p", 0.0);
  const int static_width =
      static_cast<int>(config.GetInt("network.static_width", 0));
  if (static_width != 0) {
    for (const Channel& c : scenario.base_map.UsableChannels()) {
      if (static_cast<int>(WidthMHz(c.width)) == static_width) {
        scenario.static_channel = c;
        break;
      }
    }
    if (!scenario.static_channel.has_value()) {
      throw std::runtime_error("no usable channel of static_width " +
                               std::to_string(static_width));
    }
  }

  // Background.
  const int pairs = static_cast<int>(config.GetInt("background.pairs", 0));
  const SimTime ipd =
      config.GetInt("background.ipd_ms", 30) * kTicksPerMs;
  const int payload =
      static_cast<int>(config.GetInt("background.payload", 1000));
  Rng bg_rng(DeriveSeed(scenario.seed, "scenario_file.background"));
  const auto free = scenario.base_map.FreeIndices();
  if (pairs > 0 && free.empty()) {
    throw std::runtime_error("background pairs requested but no free channels");
  }
  for (int i = 0; i < pairs; ++i) {
    BackgroundSpec spec;
    spec.channel = bg_rng.Pick(free);
    spec.cbr_interval = ipd;
    spec.payload_bytes = payload;
    scenario.background.push_back(spec);
  }

  // Mic.
  if (config.Has("mic.tv_channel")) {
    MicActivation mic;
    mic.channel = IndexOfTvChannel(
        static_cast<int>(config.GetInt("mic.tv_channel")));
    mic.on_time = config.GetDouble("mic.on_s", 5.0) * kSecond;
    mic.off_time = config.GetDouble("mic.off_s", 600.0) * kSecond;
    scenario.mics.push_back(mic);
  }

  // Client hardening knobs (defaults reproduce the baseline protocol).
  scenario.client_params.chirp_jitter =
      config.GetDouble("client.chirp_jitter",
                       scenario.client_params.chirp_jitter);
  scenario.client_params.chirp_backoff = config.GetBool(
      "client.chirp_backoff", scenario.client_params.chirp_backoff);
  scenario.client_params.chirp_backoff_factor =
      config.GetDouble("client.chirp_backoff_factor",
                       scenario.client_params.chirp_backoff_factor);
  if (config.Has("client.chirp_interval_max_ms")) {
    scenario.client_params.chirp_interval_max =
        config.GetInt("client.chirp_interval_max_ms") * kTicksPerMs;
  }
  scenario.client_params.reconnect_escalation =
      config.GetBool("client.reconnect_escalation",
                     scenario.client_params.reconnect_escalation);
  if (config.Has("client.reconnect_stage_timeout_ms")) {
    scenario.client_params.reconnect_stage_timeout =
        config.GetInt("client.reconnect_stage_timeout_ms") * kTicksPerMs;
  }

  // Fault schedule ([fault] section; absent = no injector).
  scenario.faults = ParseFaultPlan(config);
  scenario.fault_seed =
      static_cast<std::uint64_t>(config.GetInt("fault.seed", 0));
  return scenario;
}

ScenarioConfig LoadScenarioFile(const std::string& path) {
  return LoadScenario(ConfigFile::Load(path));
}

std::vector<std::string> UnknownScenarioKeys(const ConfigFile& config) {
  return config.UnconsumedKeys();
}

}  // namespace whitefi::bench
