#include "scenario_file.h"

#include <stdexcept>

#include "spectrum/campus.h"
#include "spectrum/locales.h"

namespace whitefi::bench {

ScenarioConfig LoadScenario(const ConfigFile& config) {
  ScenarioConfig scenario;
  scenario.seed = static_cast<std::uint64_t>(config.GetInt("seed", 1));
  scenario.measure_s = config.GetDouble("seconds", 10.0);
  scenario.warmup_s = config.GetDouble("warmup", 1.0);

  // Map.
  const std::string map_name = config.Get("map.name", "campus");
  Rng map_rng(DeriveSeed(scenario.seed, "scenario_file.map"));
  if (map_name == "campus") {
    scenario.base_map = CampusSimulationMap();
  } else if (map_name == "building5") {
    scenario.base_map = Building5Map();
  } else if (map_name == "urban") {
    scenario.base_map = GenerateLocaleMap(LocaleClass::kUrban, map_rng);
  } else if (map_name == "suburban") {
    scenario.base_map = GenerateLocaleMap(LocaleClass::kSuburban, map_rng);
  } else if (map_name == "rural") {
    scenario.base_map = GenerateLocaleMap(LocaleClass::kRural, map_rng);
  } else if (map_name == "empty") {
    scenario.base_map = SpectrumMap{};
  } else {
    throw std::runtime_error("unknown map.name: " + map_name);
  }
  for (long long tv : config.GetIntList("map.extra_occupied")) {
    scenario.base_map.SetOccupied(IndexOfTvChannel(static_cast<int>(tv)));
  }

  // Network.
  scenario.num_clients = static_cast<int>(config.GetInt("network.clients", 2));
  scenario.client_map_flip_p = config.GetDouble("network.flip_p", 0.0);
  const int static_width =
      static_cast<int>(config.GetInt("network.static_width", 0));
  if (static_width != 0) {
    for (const Channel& c : scenario.base_map.UsableChannels()) {
      if (static_cast<int>(WidthMHz(c.width)) == static_width) {
        scenario.static_channel = c;
        break;
      }
    }
    if (!scenario.static_channel.has_value()) {
      throw std::runtime_error("no usable channel of static_width " +
                               std::to_string(static_width));
    }
  }

  // Background.
  const int pairs = static_cast<int>(config.GetInt("background.pairs", 0));
  const SimTime ipd =
      config.GetInt("background.ipd_ms", 30) * kTicksPerMs;
  const int payload =
      static_cast<int>(config.GetInt("background.payload", 1000));
  Rng bg_rng(DeriveSeed(scenario.seed, "scenario_file.background"));
  const auto free = scenario.base_map.FreeIndices();
  if (pairs > 0 && free.empty()) {
    throw std::runtime_error("background pairs requested but no free channels");
  }
  for (int i = 0; i < pairs; ++i) {
    BackgroundSpec spec;
    spec.channel = bg_rng.Pick(free);
    spec.cbr_interval = ipd;
    spec.payload_bytes = payload;
    scenario.background.push_back(spec);
  }

  // Mic.
  if (config.Has("mic.tv_channel")) {
    MicActivation mic;
    mic.channel = IndexOfTvChannel(
        static_cast<int>(config.GetInt("mic.tv_channel")));
    mic.on_time = config.GetDouble("mic.on_s", 5.0) * kSecond;
    mic.off_time = config.GetDouble("mic.off_s", 600.0) * kSecond;
    scenario.mics.push_back(mic);
  }

  // Client hardening knobs (defaults reproduce the baseline protocol).
  scenario.client_params.chirp_jitter =
      config.GetDouble("client.chirp_jitter",
                       scenario.client_params.chirp_jitter);
  scenario.client_params.chirp_backoff = config.GetBool(
      "client.chirp_backoff", scenario.client_params.chirp_backoff);
  scenario.client_params.chirp_backoff_factor =
      config.GetDouble("client.chirp_backoff_factor",
                       scenario.client_params.chirp_backoff_factor);
  if (config.Has("client.chirp_interval_max_ms")) {
    scenario.client_params.chirp_interval_max =
        config.GetInt("client.chirp_interval_max_ms") * kTicksPerMs;
  }
  scenario.client_params.reconnect_escalation =
      config.GetBool("client.reconnect_escalation",
                     scenario.client_params.reconnect_escalation);
  if (config.Has("client.reconnect_stage_timeout_ms")) {
    scenario.client_params.reconnect_stage_timeout =
        config.GetInt("client.reconnect_stage_timeout_ms") * kTicksPerMs;
  }

  // Geo-db service + resilient sessions ([geodb] section; absent or
  // enabled=false leaves the subsystem off and the run byte-identical).
  GeoDbRuntimeParams& geo = scenario.geodb;
  geo.enabled = config.GetBool("geodb.enabled", false);
  geo.origin_km.x_km = config.GetDouble("geodb.origin_x_km", geo.origin_km.x_km);
  geo.origin_km.y_km = config.GetDouble("geodb.origin_y_km", geo.origin_km.y_km);
  geo.stations = static_cast<int>(config.GetInt("geodb.stations", geo.stations));
  geo.core_radius_km =
      config.GetDouble("geodb.core_radius_km", geo.core_radius_km);
  geo.venues = static_cast<int>(config.GetInt("geodb.venues", geo.venues));
  geo.venue_radius_km =
      config.GetDouble("geodb.venue_radius_km", geo.venue_radius_km);
  geo.venue_spread_km =
      config.GetDouble("geodb.venue_spread_km", geo.venue_spread_km);
  geo.venue_start_min =
      config.GetDouble("geodb.venue_start_min_s", 1.0) * kSecond;
  geo.venue_start_max =
      config.GetDouble("geodb.venue_start_max_s", 6.0) * kSecond;
  geo.venue_on_min = config.GetDouble("geodb.venue_on_min_s", 1.0) * kSecond;
  geo.venue_on_max = config.GetDouble("geodb.venue_on_max_s", 4.0) * kSecond;
  geo.venue_mics = config.GetBool("geodb.venue_mics", geo.venue_mics);
  if (geo.stations < 0 || geo.venues < 0) {
    throw std::runtime_error("geodb.stations / geodb.venues must be >= 0");
  }
  if (geo.venue_start_max < geo.venue_start_min ||
      geo.venue_on_max < geo.venue_on_min || geo.venue_on_min <= 0.0) {
    throw std::runtime_error("geodb venue windows must be ordered and positive");
  }
  // Service knobs.
  geo.service.base_latency =
      config.GetInt("geodb.query_latency_ms", 50) * kTicksPerMs;
  geo.service.per_pending_latency =
      config.GetInt("geodb.per_pending_ms", 20) * kTicksPerMs;
  geo.service.latency_jitter =
      config.GetDouble("geodb.latency_jitter", geo.service.latency_jitter);
  geo.service.max_queue =
      static_cast<int>(config.GetInt("geodb.queue", geo.service.max_queue));
  geo.service.staleness = config.GetDouble("geodb.staleness_s", 0.0) * kSecond;
  geo.service.push_enabled = config.GetBool("geodb.push", true);
  geo.service.push_latency_min =
      config.GetInt("geodb.push_latency_min_ms", 20) * kTicksPerMs;
  geo.service.push_latency_max =
      config.GetInt("geodb.push_latency_max_ms", 200) * kTicksPerMs;
  if (geo.service.max_queue < 1 || geo.service.base_latency < 0 ||
      geo.service.push_latency_max < geo.service.push_latency_min) {
    throw std::runtime_error("invalid geodb service parameters");
  }
  // Session (recovery protocol) knobs.
  geo.session.refresh_interval =
      static_cast<SimTime>(config.GetDouble("geodb.refresh_s", 2.0) * kSecond);
  geo.session.refresh_jitter =
      config.GetDouble("geodb.refresh_jitter", geo.session.refresh_jitter);
  geo.session.refresh_timeout =
      config.GetInt("geodb.refresh_timeout_ms", 400) * kTicksPerMs;
  geo.session.backoff_base = config.GetInt("geodb.backoff_ms", 200) * kTicksPerMs;
  geo.session.backoff_factor =
      config.GetDouble("geodb.backoff_factor", geo.session.backoff_factor);
  geo.session.backoff_max =
      config.GetInt("geodb.backoff_max_ms", 1600) * kTicksPerMs;
  geo.session.backoff_jitter =
      config.GetDouble("geodb.backoff_jitter", geo.session.backoff_jitter);
  geo.session.breaker_failures = static_cast<int>(
      config.GetInt("geodb.breaker_failures", geo.session.breaker_failures));
  geo.session.breaker_cooldown =
      config.GetInt("geodb.breaker_cooldown_ms", 1000) * kTicksPerMs;
  geo.session.stale_after = config.GetDouble("geodb.stale_after_s", 20.0) * kSecond;
  geo.session.guard_km = config.GetDouble("geodb.guard_km", geo.session.guard_km);
  geo.session.requery_km =
      config.GetDouble("geodb.requery_km", geo.session.requery_km);
  geo.session.subscribe_push = config.GetBool("geodb.subscribe_push", true);
  geo.session.enforce_interval =
      config.GetInt("geodb.enforce_ms", 200) * kTicksPerMs;
  if (geo.session.refresh_interval <= 0 || geo.session.refresh_timeout <= 0 ||
      geo.session.backoff_base <= 0 || geo.session.backoff_factor < 1.0 ||
      geo.session.backoff_max < geo.session.backoff_base ||
      geo.session.breaker_failures < 1 || geo.session.breaker_cooldown <= 0 ||
      geo.session.stale_after <= 0.0 || geo.session.guard_km < 0.0 ||
      geo.session.requery_km < 0.0 || geo.session.enforce_interval <= 0) {
    throw std::runtime_error("invalid geodb session parameters");
  }

  // Client mobility ([mobility] section; requires geodb.enabled to move
  // anything — positions feed the geo sessions).
  geo.mobility = config.GetBool("mobility.enabled", false);
  geo.waypoint.range_m = config.GetDouble("mobility.range_m", geo.waypoint.range_m);
  geo.waypoint.speed_min_mps =
      config.GetDouble("mobility.speed_min_mps", geo.waypoint.speed_min_mps);
  geo.waypoint.speed_max_mps =
      config.GetDouble("mobility.speed_max_mps", geo.waypoint.speed_max_mps);
  geo.waypoint.pause_min = static_cast<SimTime>(
      config.GetDouble("mobility.pause_min_s", 0.0) * kSecond);
  geo.waypoint.pause_max = static_cast<SimTime>(
      config.GetDouble("mobility.pause_max_s", 2.0) * kSecond);
  geo.waypoint.tick = config.GetInt("mobility.tick_ms", 100) * kTicksPerMs;
  if (geo.waypoint.range_m < 0.0 || geo.waypoint.speed_min_mps <= 0.0 ||
      geo.waypoint.speed_max_mps < geo.waypoint.speed_min_mps ||
      geo.waypoint.pause_max < geo.waypoint.pause_min ||
      geo.waypoint.tick <= 0) {
    throw std::runtime_error("invalid mobility parameters");
  }

  // Fault schedule ([fault] section; absent = no injector).
  scenario.faults = ParseFaultPlan(config);
  scenario.fault_seed =
      static_cast<std::uint64_t>(config.GetInt("fault.seed", 0));
  return scenario;
}

ScenarioConfig LoadScenarioFile(const std::string& path) {
  return LoadScenario(ConfigFile::Load(path));
}

bool IsCityScenario(const ConfigFile& config) {
  // Any [city] key marks the file; city.aps alone is enough to ask for
  // the default city.  Has() does not consume, so a false answer leaves
  // the unknown-key report untouched.
  for (const std::string& key : config.Keys()) {
    if (key.rfind("city.", 0) == 0) return true;
  }
  return false;
}

CityScenario LoadCityScenario(const ConfigFile& config) {
  CityScenario scenario;
  shard::CityParams& city = scenario.city;
  city.seed = static_cast<std::uint64_t>(config.GetInt("seed", 1));
  scenario.seconds = config.GetDouble("seconds", 5.0);
  if (scenario.seconds <= 0.0) {
    throw std::invalid_argument("seconds must be positive");
  }

  // [city] — the generator parameters (see shard/city.h for semantics).
  city.width_m = config.GetDouble("city.width_m", city.width_m);
  city.height_m = config.GetDouble("city.height_m", city.height_m);
  city.tile_m = config.GetDouble("city.tile_m", city.tile_m);
  const std::string placement = config.Get("city.placement", "grid");
  if (placement == "grid") {
    city.placement = shard::ApPlacement::kGrid;
  } else if (placement == "poisson") {
    city.placement = shard::ApPlacement::kPoisson;
  } else {
    throw std::invalid_argument("unknown city.placement: " + placement +
                                " (expected grid or poisson)");
  }
  city.num_aps = static_cast<int>(config.GetInt("city.aps", city.num_aps));
  city.clients_per_ap = static_cast<int>(
      config.GetInt("city.clients_per_ap", city.clients_per_ap));
  city.cell_radius_m =
      config.GetDouble("city.cell_radius_m", city.cell_radius_m);
  city.tx_power_dbm = config.GetDouble("city.tx_power_dbm", city.tx_power_dbm);
  city.traffic = config.Get("city.traffic", city.traffic);
  city.payload_bytes =
      static_cast<int>(config.GetInt("city.payload", city.payload_bytes));
  city.cbr_interval = config.GetInt("city.cbr_interval_ms",
                                    city.cbr_interval / kTicksPerMs) *
                      kTicksPerMs;
  city.num_mics = static_cast<int>(config.GetInt("city.mics", city.num_mics));
  city.mic_start_s = config.GetDouble("city.mic_start_s", city.mic_start_s);
  city.mic_period_s = config.GetDouble("city.mic_period_s", city.mic_period_s);
  city.mic_duration_s =
      config.GetDouble("city.mic_duration_s", city.mic_duration_s);
  city.num_roams = static_cast<int>(config.GetInt("city.roams", city.num_roams));
  city.roam_start_s = config.GetDouble("city.roam_start_s", city.roam_start_s);
  city.roam_period_s =
      config.GetDouble("city.roam_period_s", city.roam_period_s);
  shard::ValidateCityParams(city);

  // [shards] — federation knobs.  Deliberately no shard *count* key: the
  // count maps tiles onto threads, so it lives on the command line with
  // the other execution knobs (--jobs style), never in the science.
  scenario.engine.horizon = config.GetInt("shards.horizon_us", 0);
  if (scenario.engine.horizon < 0) {
    throw std::invalid_argument("shards.horizon_us must be >= 0");
  }
  scenario.engine.trace = config.GetBool("shards.trace", false);
  scenario.engine.audit = config.GetBool("shards.audit", false);
  return scenario;
}

std::vector<std::string> UnknownScenarioKeys(const ConfigFile& config) {
  return config.UnconsumedKeys();
}

}  // namespace whitefi::bench
