// Quickstart: bring up a WhiteFi network in the simulator.
//
// Creates an access point and two clients on the paper's Building-5
// spectrum map, attaches a backlogged downlink, runs for ten simulated
// seconds, and prints what the network did: the chosen channel, the
// clients' association state, and the delivered throughput.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <iostream>

#include "core/whitefi.h"

using namespace whitefi;

int main() {
  std::cout << "WhiteFi quickstart\n==================\n\n";

  // 1. The spectrum environment: which UHF channels have incumbents.
  //    Building 5 of the paper's campus has free TV channels 26-30,
  //    33-35, 39 and 48.
  const SpectrumMap map = Building5Map();
  std::cout << "spectrum map (TV ch 21..51): " << map.ToString() << "\n";
  std::cout << "usable WhiteFi channels: " << map.UsableChannels().size()
            << " of " << AllChannels().size() << "\n\n";

  // 2. Pick the initial channel with the MCham-based assigner (no traffic
  //    measured yet, so the widest fitting channel wins).
  AssignmentInputs boot;
  boot.ap_map = map;
  boot.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    boot.ap_observation[static_cast<std::size_t>(c)].incumbent =
        map.Occupied(c);
  }
  SpectrumAssigner assigner;
  const Channel main = *assigner.SelectInitial(boot).channel;
  const Channel backup = *assigner.SelectBackup(boot, main);
  std::cout << "initial assignment: main " << main.ToString() << ", backup "
            << backup.ToString() << "\n\n";

  // 3. Build the world: one AP, two clients, a saturated downlink.
  World world;
  DeviceConfig ap_config;
  ap_config.ssid = 1;
  ap_config.tv_map = map;
  ApNode& ap = world.Create<ApNode>(ap_config, ApParams{}, main, backup);

  DeviceConfig client_config = ap_config;
  client_config.position = {120.0, 40.0};
  ClientNode& alice = world.Create<ClientNode>(client_config, ClientParams{},
                                               main, backup, ap.NodeId());
  client_config.position = {-80.0, 90.0};
  ClientNode& bob = world.Create<ClientNode>(client_config, ClientParams{},
                                             main, backup, ap.NodeId());

  SaturatedSource downlink(ap, {alice.NodeId(), bob.NodeId()},
                           /*payload_bytes=*/1000);

  // 4. Run.
  world.StartAll();
  downlink.Start();
  world.RunFor(10.0);

  // 5. Report.
  std::cout << "after 10 simulated seconds:\n";
  std::cout << "  AP on " << ap.main_channel().ToString() << " (backup "
            << ap.backup_channel().ToString() << "), "
            << ap.NumKnownClients() << " clients reporting\n";
  for (const ClientNode* c : {&alice, &bob}) {
    std::cout << "  client " << c->NodeId() << ": "
              << (c->connected() ? "connected" : "DISCONNECTED") << ", "
              << FormatDouble(8.0 * world.AppBytes(c->NodeId()) / 10.0 / 1e6, 2)
              << " Mbps received\n";
  }
  const double total = 8.0 * world.AppBytesInSsid(1) / 10.0 / 1e6;
  std::cout << "  aggregate: " << FormatDouble(total, 2) << " Mbps on a "
            << WidthLabel(ap.main_channel().width) << " channel\n";
  return 0;
}
