// Campus scenario: dodging a wireless microphone.
//
// The motivating story of the paper's Section 2.3: a lecture-hall
// microphone switches on in the middle of the WhiteFi network's operating
// channel.  Watch the full disconnection protocol run: the client senses
// the mic, vacates to the backup channel and chirps; the AP's secondary
// radio picks the chirp up within its 3-second backup scan, collects
// availability, reassigns spectrum with MCham, announces, and the network
// reassembles on a clean channel — all without a single data packet being
// sent over the microphone.
//
// Run: ./build/examples/campus_mic_dodge
#include <iostream>

#include "core/whitefi.h"

using namespace whitefi;

namespace {

void PrintPhase(World& world, const std::string& what) {
  std::cout << "[t=" << FormatDouble(ToSeconds(world.sim().Now()), 1) << "s] "
            << what << "\n";
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);  // Show the protocol trace.
  std::cout << "WhiteFi mic-dodging demo (protocol trace below)\n"
            << "------------------------------------------------\n";

  const SpectrumMap map = Building5Map();
  const Channel main{IndexOfTvChannel(28), ChannelWidth::kW20};
  const Channel backup{IndexOfTvChannel(39), ChannelWidth::kW5};

  World world;
  DeviceConfig node;
  node.ssid = 1;
  node.tv_map = map;
  ApNode& ap = world.Create<ApNode>(node, ApParams{}, main, backup);
  node.position = {150.0, 60.0};
  ClientNode& client = world.Create<ClientNode>(node, ClientParams{}, main,
                                                backup, ap.NodeId());
  SaturatedSource downlink(ap, client.NodeId(), 1000);

  // The lecture microphone: on at t=5 s, on TV channel 28, audible only at
  // the client's end of the building (spatial variation!).
  world.AddMic(MicActivation{IndexOfTvChannel(28), 5.0 * kSecond,
                             600.0 * kSecond},
               {client.NodeId()});

  world.StartAll();
  downlink.Start();

  PrintPhase(world, "network up on " + ap.main_channel().ToString() +
                        ", backup " + ap.backup_channel().ToString());
  world.RunFor(5.0);
  world.ResetAppBytes();
  PrintPhase(world, "MIC SWITCHES ON inside " + main.ToString() +
                        " (client side only)");

  // Step through the recovery in 0.5 s slices so the printed trace lines
  // land in order.
  double down_window_mbps = 0.0;
  for (int step = 0; step < 20; ++step) {
    const std::uint64_t before = world.AppBytesInSsid(1);
    world.RunFor(0.5);
    const double mbps =
        8.0 * static_cast<double>(world.AppBytesInSsid(1) - before) / 0.5 / 1e6;
    if (step == 0) down_window_mbps = mbps;
    if (!client.connected() && mbps == 0.0) {
      PrintPhase(world, "outage: client chirping on " +
                            client.TunedChannel().ToString());
    }
  }

  std::cout << "\nresult\n------\n";
  std::cout << "AP moved " << main.ToString() << " -> "
            << ap.main_channel().ToString() << " ("
            << ap.num_switches() << " switch)\n";
  std::cout << "client connected: " << (client.connected() ? "yes" : "no")
            << ", outages: " << client.outages().size() << "\n";
  for (SimTime outage : client.outages()) {
    std::cout << "  reconnected after " << FormatDouble(ToSeconds(outage), 2)
              << " s (paper: at most ~4 s)\n";
  }
  std::cout << "throughput in the first 0.5 s after the mic: "
            << FormatDouble(down_window_mbps, 2) << " Mbps\n";
  const double after = 8.0 * world.AppBytesInSsid(1) / 10.0 / 1e6;
  std::cout << "average over the 10 s around the event: "
            << FormatDouble(after, 2) << " Mbps\n";
  std::cout << "the channel was vacated within the 100 ms sensing latency "
               "and data resumed only on the new channel\n";
  return 0;
}
