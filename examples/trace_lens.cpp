// trace_lens — root-cause analyzer for WhiteFi flight-recorder traces.
//
// Reads a JSONL event trace (scenario_cli --trace-jsonl, or the
// bench_fig13_churn --trace-jsonl leg), rebuilds the causal spans the
// instrumentation emitted, and answers the question the raw trace can't:
// *why was this recovery slow?*
//
// Usage:
//   trace_lens TRACE.jsonl [--html OUT.html] [--cause-window-ms N]
//
// Output (stdout):
//   * per-node protocol-state summary (total time in each state);
//   * one row per client recovery: when it started, how long it took,
//     the per-phase breakdown (chirp on backup / secondary backup /
//     full sweep), and the root cause — joined by causal flow id when
//     the trigger was an incumbent, by a temporal window otherwise;
//   * aggregate recovery latency and per-phase p50/p95/p99;
//   * the attribution rate (fraction of recoveries with a known cause).
//
// A capture shared by several simulation runs (bench sweeps append every
// adaptive run into one trace) is split at the points where simulated
// time restarts and each run is analyzed on its own, so phase breakdowns
// never mix state intervals from different worlds.
//
// With --html it also writes a self-contained report (inline CSS + SVG,
// no external assets): a state timeline per run with incumbent on/off
// markers, plus the recovery table.
//
// Exit codes: 0 success, 1 runtime failure (unreadable trace), 2 bad
// flags — same contract as scenario_cli.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/event_trace.h"
#include "obs/span.h"
#include "obs/state_timeline.h"

using namespace whitefi;

namespace {

struct Options {
  std::string trace_path;
  std::string html_path;
  std::int64_t cause_window_ms = 3000;
};

bool ParseOptions(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--html") {
      options.html_path = next();
    } else if (flag == "--cause-window-ms") {
      const std::string value = next();
      try {
        std::size_t used = 0;
        options.cause_window_ms = std::stoll(value, &used);
        if (used != value.size() || options.cause_window_ms < 0) {
          throw std::invalid_argument(value);
        }
      } catch (const std::exception&) {
        throw std::invalid_argument(
            "--cause-window-ms: expected a non-negative number, got '" +
            value + "'");
      }
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else if (!flag.empty() && flag[0] == '-') {
      throw std::invalid_argument("unknown flag: " + flag);
    } else if (options.trace_path.empty()) {
      options.trace_path = flag;
    } else {
      throw std::invalid_argument("unexpected extra operand: " + flag);
    }
  }
  if (options.trace_path.empty()) {
    throw std::invalid_argument("missing TRACE.jsonl operand");
  }
  return true;
}

std::string FormatSeconds(std::int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(us) / 1e6);
  return buf;
}

std::string FormatMs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us / 1e3);
  return buf;
}

/// One run segment of the capture, fully analyzed.
struct RunView {
  std::vector<TraceEvent> events;
  TraceAnalysis analysis;
  StateTimeline timeline;
};

/// Rebuilds the per-node state timeline from the kStateEnter events the
/// instrumentation mirrors into the trace (identical, by construction,
/// to what a live StateTimeline sink would have recorded).
StateTimeline RebuildTimeline(const std::vector<TraceEvent>& events) {
  StateTimeline timeline;
  std::int64_t last = 0;
  for (const TraceEvent& e : events) {
    last = std::max(last, e.at_us);
    if (e.kind == TraceEventKind::kStateEnter) {
      timeline.Enter(e.at_us, e.node, e.detail);
    }
  }
  timeline.Close(last);
  return timeline;
}

void PrintStateSummary(const std::vector<RunView>& runs) {
  // Merged across runs: per (node, state) total time and visit count.
  std::set<int> nodes;
  std::set<int> aps;
  std::map<int, std::vector<std::string>> order;
  std::map<int, std::map<std::string, std::int64_t>> totals;
  std::map<int, std::map<std::string, int>> visits;
  for (const RunView& run : runs) {
    aps.insert(run.analysis.ap_nodes.begin(), run.analysis.ap_nodes.end());
    for (const StateInterval& iv : run.timeline.intervals()) {
      nodes.insert(iv.node);
      if (totals[iv.node].emplace(iv.state, 0).second) {
        order[iv.node].push_back(iv.state);
      }
      totals[iv.node][iv.state] += iv.DurationUs();
      ++visits[iv.node][iv.state];
    }
  }
  std::cout << "state summary (per node";
  if (runs.size() > 1) std::cout << ", summed over " << runs.size() << " runs";
  std::cout << "):\n";
  for (int node : nodes) {
    std::cout << "  node " << node << (aps.count(node) ? " (ap)" : "") << ":";
    for (const std::string& state : order[node]) {
      std::cout << "  " << state << "=" << FormatSeconds(totals[node][state])
                << "s x" << visits[node][state];
    }
    std::cout << "\n";
  }
}

void PrintRecoveries(const std::vector<RunView>& runs) {
  std::size_t total = 0;
  for (const RunView& run : runs) total += run.analysis.recoveries.size();
  std::cout << "\nrecoveries: " << total << "\n";
  for (std::size_t k = 0; k < runs.size(); ++k) {
    for (const Recovery& r : runs[k].analysis.recoveries) {
      std::cout << "  ";
      if (runs.size() > 1) std::cout << "run " << k << " ";
      std::cout << "node " << r.span.node << " at "
                << FormatSeconds(r.span.begin_us) << "s";
      if (r.span.Closed()) {
        std::cout << " took "
                  << FormatMs(static_cast<double>(r.span.DurationUs()))
                  << "ms";
      } else {
        std::cout << " (never reconnected before trace end)";
      }
      std::cout << " declared=" << r.declared_cause
                << " cause=" << r.cause_kind;
      if (r.cause_at_us >= 0) {
        std::cout << "@" << FormatSeconds(r.cause_at_us) << "s";
      }
      if (!r.cause_detail.empty()) std::cout << " [" << r.cause_detail << "]";
      std::cout << "\n";
      for (const RecoveryPhase& phase : r.phases) {
        std::cout << "    " << phase.state << ": "
                  << FormatMs(static_cast<double>(phase.duration_us))
                  << "ms\n";
      }
    }
  }
}

void PrintAggregates(const std::vector<RunView>& runs) {
  std::vector<double> totals;
  std::map<std::string, std::vector<double>> per_state;
  std::vector<std::string> state_order;
  for (const RunView& run : runs) {
    for (const Recovery& r : run.analysis.recoveries) {
      if (!r.span.Closed()) continue;
      totals.push_back(static_cast<double>(r.span.DurationUs()));
      for (const RecoveryPhase& phase : r.phases) {
        if (per_state.emplace(phase.state, std::vector<double>{}).second) {
          state_order.push_back(phase.state);
        }
        per_state[phase.state].push_back(
            static_cast<double>(phase.duration_us));
      }
    }
  }
  std::cout << "\nrecovery latency (closed recoveries: " << totals.size()
            << "):\n";
  auto row = [](const std::string& label, const std::vector<double>& v) {
    std::cout << "  " << label << ": p50=" << FormatMs(ExactPercentile(v, 50))
              << "ms p95=" << FormatMs(ExactPercentile(v, 95))
              << "ms p99=" << FormatMs(ExactPercentile(v, 99)) << "ms (n="
              << v.size() << ")\n";
  };
  if (!totals.empty()) row("total", totals);
  for (const std::string& state : state_order) {
    row("phase " + state, per_state[state]);
  }
}

void PrintAttribution(const std::vector<RunView>& runs) {
  std::map<std::string, int> by_kind;
  int attributed = 0;
  std::size_t total = 0;
  for (const RunView& run : runs) {
    for (const Recovery& r : run.analysis.recoveries) {
      ++total;
      ++by_kind[r.cause_kind];
      if (r.cause_kind != "unknown") ++attributed;
    }
  }
  std::cout << "\nroot causes:";
  for (const auto& [kind, count] : by_kind) {
    std::cout << "  " << kind << "=" << count;
  }
  std::cout << "\n";
  if (total > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f",
                  100.0 * attributed / static_cast<double>(total));
    std::cout << "attributed: " << attributed << "/" << total << " (" << buf
              << "%)\n";
  }
}

// ---------------------------------------------------------------------------
// HTML report: inline CSS + hand-built SVG, no external assets.

std::string EscapeHtml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

const char* StateColor(const std::string& state) {
  if (state == "connected") return "#4caf50";
  if (state == "chirping") return "#f44336";
  if (state == "scanning") return "#ff9800";
  if (state == "operating") return "#2196f3";
  if (state == "collecting") return "#9c27b0";
  if (state == "announcing") return "#00bcd4";
  if (state == "rescuing") return "#e91e63";
  return "#9e9e9e";
}

void WriteRunSvg(std::ostream& os, const RunView& run) {
  std::int64_t t0 = 0, t1 = 1;
  if (!run.events.empty()) {
    t0 = run.events.front().at_us;
    t1 = t0 + 1;
    for (const TraceEvent& e : run.events) {
      t0 = std::min(t0, e.at_us);
      t1 = std::max(t1, e.at_us);
    }
    for (const StateInterval& iv : run.timeline.intervals()) {
      if (iv.end_us != StateInterval::kOpen) t1 = std::max(t1, iv.end_us);
    }
    if (t1 <= t0) t1 = t0 + 1;
  }
  const double kWidth = 1000.0;
  const int kRowH = 26;
  const int kLeft = 70;
  auto x_of = [&](std::int64_t us) {
    return kLeft + kWidth * static_cast<double>(us - t0) /
                       static_cast<double>(t1 - t0);
  };

  const std::vector<int> nodes = run.timeline.Nodes();
  std::map<int, int> row_of;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    row_of[nodes[i]] = static_cast<int>(i);
  }
  const int height = kRowH * static_cast<int>(nodes.size()) + 40;

  os << "<svg width=\"" << kLeft + kWidth + 10 << "\" height=\"" << height
     << "\" style=\"background:#fff;border:1px solid #ddd\">\n";
  for (int node : nodes) {
    const int y = 20 + row_of[node] * kRowH;
    os << "<text x=\"4\" y=\"" << y + 16 << "\" font-size=\"12\">node "
       << node << "</text>\n";
    for (const StateInterval& iv : run.timeline.intervals()) {
      if (iv.node != node) continue;
      const std::int64_t end =
          iv.end_us == StateInterval::kOpen ? t1 : iv.end_us;
      const double x = x_of(iv.begin_us);
      const double w = std::max(0.5, x_of(end) - x);
      os << "<rect x=\"" << x << "\" y=\"" << y + 4 << "\" width=\"" << w
         << "\" height=\"" << kRowH - 8 << "\" fill=\""
         << StateColor(iv.state) << "\"><title>node " << node << " "
         << EscapeHtml(iv.state) << " " << FormatSeconds(iv.begin_us) << "s-"
         << FormatSeconds(end) << "s</title></rect>\n";
    }
  }
  // Incumbent on/off markers span the whole chart.
  for (const TraceEvent& e : run.events) {
    if (e.kind != TraceEventKind::kIncumbentOn &&
        e.kind != TraceEventKind::kIncumbentOff) {
      continue;
    }
    const double x = x_of(e.at_us);
    const bool on = e.kind == TraceEventKind::kIncumbentOn;
    os << "<line x1=\"" << x << "\" y1=\"10\" x2=\"" << x << "\" y2=\""
       << height - 10 << "\" stroke=\"#000\" stroke-width=\"1\""
       << (on ? "" : " stroke-dasharray=\"3,3\"") << "><title>"
       << (on ? "incumbent on" : "incumbent off") << " @"
       << FormatSeconds(e.at_us) << "s " << EscapeHtml(e.detail)
       << "</title></line>\n";
  }
  os << "</svg>\n";
}

void WriteHtmlReport(std::ostream& os, std::size_t num_events,
                     const std::vector<RunView>& runs) {
  std::size_t num_spans = 0, num_recoveries = 0;
  for (const RunView& run : runs) {
    num_spans += run.analysis.spans.size();
    num_recoveries += run.analysis.recoveries.size();
  }
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
     << "<title>WhiteFi flight recorder</title>\n<style>\n"
     << "body{font-family:sans-serif;margin:20px;background:#fafafa}\n"
     << "h1{font-size:20px}h2{font-size:16px}\n"
     << "table{border-collapse:collapse;font-size:13px}\n"
     << "td,th{border:1px solid #ccc;padding:3px 8px;text-align:left}\n"
     << "th{background:#eee}\n"
     << ".legend span{display:inline-block;margin-right:12px;"
        "font-size:12px}\n"
     << ".legend i{display:inline-block;width:10px;height:10px;"
        "margin-right:4px}\n"
     << "</style></head><body>\n"
     << "<h1>WhiteFi flight recorder</h1>\n"
     << "<p>" << num_events << " events, " << runs.size() << " run"
     << (runs.size() == 1 ? "" : "s") << ", " << num_spans << " spans, "
     << num_recoveries << " client recoveries.</p>\n";

  // Legend over the states that actually appear.
  std::vector<std::string> states_seen;
  for (const RunView& run : runs) {
    for (const StateInterval& iv : run.timeline.intervals()) {
      if (std::find(states_seen.begin(), states_seen.end(), iv.state) ==
          states_seen.end()) {
        states_seen.push_back(iv.state);
      }
    }
  }
  os << "<div class=\"legend\">";
  for (const std::string& state : states_seen) {
    os << "<span><i style=\"background:" << StateColor(state) << "\"></i>"
       << EscapeHtml(state) << "</span>";
  }
  os << "<span><i style=\"background:#000\"></i>incumbent on/off</span>"
     << "</div>\n";

  for (std::size_t k = 0; k < runs.size(); ++k) {
    os << "<h2>State timeline";
    if (runs.size() > 1) os << " — run " << k;
    os << "</h2>\n";
    WriteRunSvg(os, runs[k]);
  }

  os << "<h2>Client recoveries</h2>\n<table>\n<tr>";
  if (runs.size() > 1) os << "<th>run</th>";
  os << "<th>node</th><th>start (s)</th><th>duration (ms)</th>"
     << "<th>declared</th><th>root cause</th><th>cause time (s)</th>"
     << "<th>phases</th></tr>\n";
  for (std::size_t k = 0; k < runs.size(); ++k) {
    for (const Recovery& r : runs[k].analysis.recoveries) {
      os << "<tr>";
      if (runs.size() > 1) os << "<td>" << k << "</td>";
      os << "<td>" << r.span.node << "</td><td>"
         << FormatSeconds(r.span.begin_us) << "</td><td>"
         << (r.span.Closed()
                 ? FormatMs(static_cast<double>(r.span.DurationUs()))
                 : std::string("open"))
         << "</td><td>" << EscapeHtml(r.declared_cause) << "</td><td>"
         << EscapeHtml(r.cause_kind)
         << (r.cause_detail.empty()
                 ? std::string()
                 : " (" + EscapeHtml(r.cause_detail) + ")")
         << "</td><td>"
         << (r.cause_at_us >= 0 ? FormatSeconds(r.cause_at_us)
                                : std::string("-"))
         << "</td><td>";
      for (std::size_t i = 0; i < r.phases.size(); ++i) {
        if (i) os << "; ";
        os << EscapeHtml(r.phases[i].state) << " "
           << FormatMs(static_cast<double>(r.phases[i].duration_us)) << "ms";
      }
      os << "</td></tr>\n";
    }
  }
  os << "</table>\n</body></html>\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!ParseOptions(argc, argv, options)) {
      std::cout << "usage: trace_lens TRACE.jsonl [--html OUT.html] "
                   "[--cause-window-ms N]\n"
                   "exit codes: 0 success, 1 runtime failure, "
                   "2 bad flags\n";
      return 0;
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 2;
  }

  try {
    std::ifstream in(options.trace_path);
    if (!in) {
      std::cerr << "error: cannot open " << options.trace_path << "\n";
      return 1;
    }
    const std::vector<TraceEvent> events = EventTrace::ReadJsonl(in);

    AnalyzeOptions analyze_options;
    analyze_options.cause_window_us = options.cause_window_ms * 1000;
    std::vector<RunView> runs;
    for (std::vector<TraceEvent>& segment : SplitRuns(events)) {
      RunView run;
      run.events = std::move(segment);
      run.analysis = AnalyzeTrace(run.events, analyze_options);
      run.timeline = RebuildTimeline(run.events);
      runs.push_back(std::move(run));
    }

    std::cout << "trace: " << options.trace_path << " (" << events.size()
              << " events, " << runs.size() << " run"
              << (runs.size() == 1 ? "" : "s") << ")\n";
    PrintStateSummary(runs);
    PrintRecoveries(runs);
    PrintAggregates(runs);
    PrintAttribution(runs);

    if (!options.html_path.empty()) {
      std::ofstream out(options.html_path);
      WriteHtmlReport(out, events.size(), runs);
      if (out.good()) {
        std::cout << "\nhtml report written to " << options.html_path << "\n";
      } else {
        std::cerr << "error: cannot write " << options.html_path << "\n";
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
