// Rural broadband: wide channels and fast discovery.
//
// Rural locales have the widest post-DTV white spaces (Figure 2), which is
// where WhiteFi shines: 20 MHz channels for backhaul-class throughput, and
// J-SIFT discovery that finds an AP in a fraction of the naive scan time
// (Figure 9).  This example generates a rural spectrum map, compares the
// three discovery algorithms on it, then brings up the network and
// measures throughput at each channel width.
//
// Run: ./build/examples/rural_broadband
#include <iostream>

#include "core/whitefi.h"

using namespace whitefi;

int main() {
  std::cout << "WhiteFi in a rural locale\n=========================\n\n";
  Rng rng(2026);
  const SpectrumMap map = GenerateLocaleMap(LocaleClass::kRural, rng);
  std::cout << "spectrum map: " << map.ToString() << "  (" << map.NumFree()
            << " free channels, widest fragment " << map.WidestFragment()
            << " channels = " << map.WidestFragment() * 6 << " MHz)\n\n";

  // --- AP discovery -------------------------------------------------------
  const auto usable = map.UsableChannels();
  const Channel ap_channel = rng.Pick(usable);
  std::cout << "an AP hides on " << ap_channel.ToString()
            << "; a client searches:\n";
  Table table({"algorithm", "scans", "listens", "time(s)"});
  DiscoveryParams params;
  params.baseline_skips_blocked_spans = false;
  AnalyticScanEnvironment env(ap_channel);
  const auto base = BaselineDiscover(env, map, params);
  const auto lsift = LSiftDiscover(env, map, params);
  const auto jsift = JSiftDiscover(env, map, params);
  table.AddRow({"non-SIFT baseline", std::to_string(base.sift_scans),
                std::to_string(base.beacon_listens),
                FormatDouble(base.elapsed / kSecond, 2)});
  table.AddRow({"L-SIFT", std::to_string(lsift.sift_scans),
                std::to_string(lsift.beacon_listens),
                FormatDouble(lsift.elapsed / kSecond, 2)});
  table.AddRow({"J-SIFT", std::to_string(jsift.sift_scans),
                std::to_string(jsift.beacon_listens),
                FormatDouble(jsift.elapsed / kSecond, 2)});
  table.Print(std::cout);
  std::cout << "\n";

  // --- Throughput by width -------------------------------------------------
  std::cout << "bring the network up at each width (1 AP, 3 clients, "
               "backlogged downlink, 5 s):\n";
  Table tput({"width", "channel", "aggregate Mbps"});
  for (ChannelWidth w : kAllWidths) {
    // Use the first usable channel of this width.
    const Channel channel = [&] {
      for (const Channel& c : usable) {
        if (c.width == w) return c;
      }
      return Channel{map.FreeIndices().front(), ChannelWidth::kW5};
    }();
    World world;
    DeviceConfig node;
    node.ssid = 1;
    node.tv_map = map;
    ApParams ap_params;
    ap_params.adaptive = false;  // Pin the width for the comparison.
    ApNode& ap = world.Create<ApNode>(node, ap_params, channel, channel);
    std::vector<int> dsts;
    for (int i = 0; i < 3; ++i) {
      node.position = {100.0 + 150.0 * i, 80.0};
      dsts.push_back(world
                         .Create<ClientNode>(node, ClientParams{}, channel,
                                             channel, ap.NodeId())
                         .NodeId());
    }
    SaturatedSource downlink(ap, dsts, 1000);
    world.StartAll();
    downlink.Start();
    world.RunFor(5.0);
    tput.AddRow({WidthLabel(w), channel.ToString(),
                 FormatDouble(8.0 * world.AppBytesInSsid(1) / 5.0 / 1e6, 2)});
  }
  tput.Print(std::cout);
  std::cout << "\nwider channels carry proportionally more — rural white "
               "space makes 20 MHz routinely available\n";
  return 0;
}
