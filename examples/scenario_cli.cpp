// scenario_cli — a small research tool: run one WhiteFi scenario from the
// command line and print what happened.
//
// Usage:
//   scenario_cli [--seed N] [--clients N] [--background N] [--ipd MS]
//                [--mic TVCHANNEL] [--mic-at SECONDS] [--static W]
//                [--map campus|building5|rural|urban|suburban]
//                [--seconds S] [--verbose]
//                [--metrics] [--metrics-csv FILE] [--metrics-json FILE]
//                [--trace-json FILE] [--trace-jsonl FILE] [--profile]
//   scenario_cli --config FILE.conf   (QualNet-style scenario file; see
//                                      examples/configs/)
//   scenario_cli --config CITY.conf --shards N
//                                     (city-scale [city] scenario on the
//                                      sharded engine; N worker threads.
//                                      Output is byte-identical for every
//                                      N — the count is an execution knob,
//                                      never part of the science)
//   scenario_cli --config FILE.conf --audit [--audit-budget-ms M]
//                                     (run under the invariant auditor)
//   scenario_cli --replay BUNDLE      (re-run a fuzz repro bundle and check
//                                      the violation reproduces exactly)
//   scenario_cli --replay BUNDLE --minimize OUT
//                                     (shrink the bundle first, write the
//                                      minimized bundle to OUT, replay that)
//
// Exit codes: 0 success (for --replay: the violation reproduced exactly;
// for --audit: no invariant violated), 1 runtime failure / violation found
// / replay divergence, 2 configuration error (bad flags, malformed or
// unknown-key scenario file under --strict).  Scripts rely on the 1-vs-2
// distinction to tell a broken scenario file from a simulation that failed.
//
// Observability flags (work in both modes):
//   --metrics           print the metrics snapshot (counters + histograms)
//   --metrics-csv FILE  write the snapshot as CSV
//   --metrics-json FILE write the snapshot as JSON
//   --trace-json FILE   write a Chrome trace-event file (chrome://tracing)
//   --trace-jsonl FILE  write raw structured events, one JSON per line
//   --trace-only K,K    record only the named event kinds (e.g.
//                       span_begin,span_end,state_enter); unknown names
//                       are a configuration error (exit 2)
//   --timeline-csv FILE write per-node protocol-state intervals as CSV
//   --profile           print wall-clock cost per simulation phase
//
// Examples:
//   scenario_cli --map building5 --clients 3 --mic 28 --mic-at 5
//   scenario_cli --map campus --background 12 --ipd 30 --static 20
//   scenario_cli --config ../examples/configs/busy_campus.conf --metrics \
//                --trace-json out.json
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "core/whitefi.h"
#include "fuzz.h"
#include "scenario_file.h"

using namespace whitefi;

namespace {

struct Options {
  std::uint64_t seed = 1;
  int clients = 2;
  int background = 0;
  int ipd_ms = 30;
  int mic_tv = 0;       // 0 = no mic.
  double mic_at = 5.0;  // Seconds.
  int static_width = 0; // 0 = adaptive.
  std::string map_name = "campus";
  double seconds = 15.0;
  bool verbose = false;
  bool trace = false;  ///< Print every control frame as it airs.
  std::string config_file;  ///< Non-empty: config-file mode.
  /// Config-file mode: unknown keys (typos) reject the file instead of
  /// only printing a warning.
  bool strict = false;
  /// Config-file mode: run under the invariant auditor.
  bool audit = false;
  /// Incumbent-safety budget override in ms (0 = auditor default).
  long long audit_budget_ms = 0;
  /// City-scale config-file mode: worker threads for the shard engine.
  /// Purely an execution knob — results are byte-identical for any value.
  int shards = 1;
  std::string replay_bundle;  ///< Non-empty: replay mode.
  std::string minimize_out;   ///< Replay mode: minimize first, write here.

  // Observability outputs.
  bool metrics = false;
  std::string metrics_csv;
  std::string metrics_json;
  std::string trace_json;   ///< Chrome trace-event format.
  std::string trace_jsonl;  ///< Raw JSONL records.
  /// Kind filter for the event trace (--trace-only a,b,c); empty = all.
  std::vector<TraceEventKind> trace_only;
  std::string timeline_csv;  ///< Protocol-state intervals as CSV.
  bool profile = false;
};

/// Owns the observability sinks for one CLI run and renders the outputs.
struct ObsSession {
  MetricsRegistry registry;
  EventTrace events;
  PhaseProfiler profiler;
  StateTimeline timeline;
  const Options& options;

  static EventTraceOptions TraceOptions(const Options& opts) {
    EventTraceOptions trace_options;
    trace_options.only = opts.trace_only;
    return trace_options;
  }

  explicit ObsSession(const Options& opts)
      : events(TraceOptions(opts)), options(opts) {
    // Pre-register the cold-path metrics so every snapshot contains them
    // (a quiet run shows zeros instead of missing rows).  Hot-path metrics
    // (per-frame-type tx/rx/drop, MAC retries) register at wiring time.
    registry.GetCounter("whitefi.node.channel_switches");
    registry.GetCounter("whitefi.discovery.probes");
    registry.GetCounter("whitefi.scanner.dwells");
    registry.GetCounter("whitefi.sift.detections");
    registry.GetHistogram("whitefi.sift.detect_latency_us");
    registry.GetCounter("whitefi.client.disconnects");
    registry.GetCounter("whitefi.client.chirps");
    registry.GetCounter("whitefi.ap.chirps_heard");
    registry.GetCounter("whitefi.ap.switches");
    registry.GetCounter("whitefi.ap.voluntary_switches");
    registry.GetCounter("whitefi.ap.reverts");
  }

  bool Wanted() const {
    return options.metrics || !options.metrics_csv.empty() ||
           !options.metrics_json.empty() || !options.trace_json.empty() ||
           !options.trace_jsonl.empty() || !options.timeline_csv.empty() ||
           options.profile;
  }

  Observability Sinks() {
    Observability obs;
    obs.metrics = &registry;
    if (!options.trace_json.empty() || !options.trace_jsonl.empty()) {
      obs.trace = &events;
    }
    if (!options.timeline_csv.empty()) obs.timeline = &timeline;
    if (options.profile) obs.profiler = &profiler;
    return obs;
  }

  static void ReportFile(const std::ofstream& out, const std::string& what,
                         const std::string& path) {
    if (out.good()) {
      std::cout << what << " written to " << path << "\n";
    } else {
      std::cerr << "error: cannot write " << what << " to " << path << "\n";
    }
  }

  void WriteOutputs(double sim_seconds) {
    if (options.metrics) {
      std::cout << "\nmetrics:\n" << registry.Snapshot().ToText();
    }
    if (!options.metrics_csv.empty()) {
      std::ofstream out(options.metrics_csv);
      out << registry.Snapshot().ToCsv();
      ReportFile(out, "metrics csv", options.metrics_csv);
    }
    if (!options.metrics_json.empty()) {
      std::ofstream out(options.metrics_json);
      out << registry.Snapshot().ToJson() << "\n";
      ReportFile(out, "metrics json", options.metrics_json);
    }
    if (!options.trace_json.empty()) {
      std::ofstream out(options.trace_json);
      events.WriteChromeTrace(out);
      ReportFile(out,
                 "chrome trace (" + std::to_string(events.events().size()) +
                     " events)",
                 options.trace_json);
    }
    if (!options.trace_jsonl.empty()) {
      std::ofstream out(options.trace_jsonl);
      events.WriteJsonl(out);
      ReportFile(out,
                 "event trace (" + std::to_string(events.events().size()) +
                     " events)",
                 options.trace_jsonl);
    }
    if (!options.timeline_csv.empty()) {
      timeline.Close(static_cast<std::int64_t>(sim_seconds * kTicksPerSec));
      std::ofstream out(options.timeline_csv);
      out << "node,state,begin_us,end_us,duration_us\n";
      for (const StateInterval& iv : timeline.intervals()) {
        out << iv.node << "," << iv.state << "," << iv.begin_us << ","
            << iv.end_us << "," << iv.DurationUs() << "\n";
      }
      ReportFile(out,
                 "state timeline (" +
                     std::to_string(timeline.intervals().size()) +
                     " intervals)",
                 options.timeline_csv);
    }
    if (options.profile) {
      std::cout << "\nphase profile:\n" << profiler.ToString(sim_seconds);
    }
  }
};

SpectrumMap ResolveMap(const std::string& name, Rng& rng) {
  if (name == "campus") return CampusSimulationMap();
  if (name == "building5") return Building5Map();
  if (name == "rural") return GenerateLocaleMap(LocaleClass::kRural, rng);
  if (name == "urban") return GenerateLocaleMap(LocaleClass::kUrban, rng);
  if (name == "suburban") {
    return GenerateLocaleMap(LocaleClass::kSuburban, rng);
  }
  throw std::invalid_argument("unknown map: " + name);
}

bool ParseOptions(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument(flag + " needs a value");
      return argv[++i];
    };
    // stoll/stod raise bare "stoll"-style messages, and out-of-range
    // values raise std::out_of_range, which the top-level handler would
    // misfile as a runtime error (exit 1).  Rewrap both so every bad flag
    // value is a configuration error naming the flag, and reject trailing
    // garbage ("3x") that the bare conversions silently accept.
    auto as_ll = [&]() -> long long {
      const std::string value = next();
      try {
        std::size_t used = 0;
        const long long parsed = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        throw std::invalid_argument(flag + ": expected a number, got '" +
                                    value + "'");
      }
    };
    auto as_d = [&]() -> double {
      const std::string value = next();
      try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        throw std::invalid_argument(flag + ": expected a number, got '" +
                                    value + "'");
      }
    };
    if (flag == "--seed") {
      options.seed = static_cast<std::uint64_t>(as_ll());
    }
    else if (flag == "--clients") options.clients = static_cast<int>(as_ll());
    else if (flag == "--background") {
      options.background = static_cast<int>(as_ll());
    }
    else if (flag == "--ipd") options.ipd_ms = static_cast<int>(as_ll());
    else if (flag == "--mic") options.mic_tv = static_cast<int>(as_ll());
    else if (flag == "--mic-at") options.mic_at = as_d();
    else if (flag == "--static") {
      options.static_width = static_cast<int>(as_ll());
    }
    else if (flag == "--map") options.map_name = next();
    else if (flag == "--seconds") options.seconds = as_d();
    else if (flag == "--verbose") options.verbose = true;
    else if (flag == "--trace") options.trace = true;
    else if (flag == "--config") options.config_file = next();
    else if (flag == "--strict") options.strict = true;
    else if (flag == "--audit") options.audit = true;
    else if (flag == "--audit-budget-ms") options.audit_budget_ms = as_ll();
    else if (flag == "--shards") {
      const long long shards = as_ll();
      if (shards < 1) {
        throw std::invalid_argument("--shards: expected a count >= 1, got " +
                                    std::to_string(shards));
      }
      options.shards = static_cast<int>(shards);
    }
    else if (flag == "--replay") options.replay_bundle = next();
    else if (flag == "--minimize") options.minimize_out = next();
    else if (flag == "--metrics") options.metrics = true;
    else if (flag == "--metrics-csv") options.metrics_csv = next();
    else if (flag == "--metrics-json") options.metrics_json = next();
    else if (flag == "--trace-json") options.trace_json = next();
    else if (flag == "--trace-jsonl") options.trace_jsonl = next();
    else if (flag == "--trace-only") {
      const std::string list = next();
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!name.empty()) {
          const auto kind = ParseTraceEventKind(name);
          if (!kind) {
            throw std::invalid_argument("--trace-only: unknown event kind '" +
                                        name + "'");
          }
          options.trace_only.push_back(*kind);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (options.trace_only.empty()) {
        throw std::invalid_argument("--trace-only: empty kind list");
      }
    }
    else if (flag == "--timeline-csv") options.timeline_csv = next();
    else if (flag == "--detector") {
      // SIFT kernel selection for every detector the scenario constructs
      // ("block" = automatic dispatch).  Forcing simd on a host without
      // AVX2 throws here, i.e. exits 2 like any other bad flag value.
      const std::string value = next();
      if (value == "block") SetSiftKernelOverride(SiftKernelChoice::kAuto);
      else if (value == "simd") SetSiftKernelOverride(SiftKernelChoice::kSimd);
      else if (value == "scalar") {
        SetSiftKernelOverride(SiftKernelChoice::kScalar);
      }
      else if (value == "avx2") SetSiftKernelOverride(SiftKernelChoice::kAvx2);
      else if (value == "avx512") {
        SetSiftKernelOverride(SiftKernelChoice::kAvx512);
      }
      else {
        throw std::invalid_argument(
            "--detector: unknown value '" + value +
            "' (expected block, simd, scalar, avx2, or avx512)");
      }
      SiftDetector probe{SiftParams{}};
      (void)probe;
    }
    else if (flag == "--profile") options.profile = true;
    else if (flag == "--help" || flag == "-h") return false;
    else throw std::invalid_argument("unknown flag: " + flag);
  }
  return true;
}

/// Shared unknown-key policy for both config-file paths: typos warn by
/// default and reject the file under --strict.
void ReportUnknownKeys(const Options& options, const ConfigFile& config) {
  const std::vector<std::string> unknown = bench::UnknownScenarioKeys(config);
  if (unknown.empty()) return;
  if (options.strict) {
    throw ConfigError("unknown key '" + unknown.front() + "'",
                      config.source(), config.LineOf(unknown.front()));
  }
  for (const std::string& key : unknown) {
    std::cerr << "warning: " << options.config_file << " line "
              << config.LineOf(key) << ": unknown key '" << key
              << "' (ignored)\n";
  }
}

/// City-scale config-file mode ([city] section): run the sharded
/// federation and print its deterministic summary.  The summary is
/// byte-identical for every --shards value — CI diffs it across counts.
int RunCityFromConfigFile(const Options& options, const ConfigFile& config) {
  bench::CityScenario scenario = bench::LoadCityScenario(config);
  scenario.engine.shards = options.shards;
  if (options.audit) scenario.engine.audit = true;
  // audit.* is scenario vocabulary here too, consumed whether or not the
  // auditor is on.
  scenario.engine.audit_config = bench::LoadAuditConfig(config);
  if (options.audit_budget_ms > 0) {
    scenario.engine.audit_config.safety_budget =
        options.audit_budget_ms * kTicksPerMs;
  }
  ReportUnknownKeys(options, config);
  shard::ShardEngine engine(scenario.city, scenario.engine);
  // Shard count goes to stderr: stdout must be byte-identical across
  // --shards values so scripts can diff it directly.
  std::cout << "city scenario " << options.config_file << ": "
            << engine.NumTiles() << " tiles, "
            << engine.layout().cells.size() << " cells\n";
  std::cerr << "shards: " << options.shards << " worker thread(s)\n";
  engine.Run(scenario.seconds);
  std::cout << engine.SummaryText();
  if (scenario.engine.audit) {
    if (engine.audit_ok()) {
      std::cout << "audit: all invariants held\n";
    } else {
      std::cout << "audit: " << engine.audit_violations()
                << " violation(s)\n";
      return 1;
    }
  }
  return 0;
}

int RunFromConfigFile(const Options& options) {
  if (options.verbose) SetLogLevel(LogLevel::kInfo);
  const ConfigFile config = ConfigFile::Load(options.config_file);
  if (bench::IsCityScenario(config)) {
    return RunCityFromConfigFile(options, config);
  }
  bench::ScenarioConfig scenario = bench::LoadScenario(config);
  // The auditor knobs are part of the scenario vocabulary whether or not
  // --audit is on (a repro bundle run under plain --config must not warn
  // about its own audit.* keys).
  AuditConfig audit_config = bench::LoadAuditConfig(config);
  if (options.audit_budget_ms > 0) {
    audit_config.safety_budget = options.audit_budget_ms * kTicksPerMs;
  }
  (void)bench::BundleExpectation(config);  // expect.* is vocabulary too.
  // Surface keys no loader consumed: silently-ignored typos waste whole
  // experiment runs.  A warning by default; fatal under --strict.
  ReportUnknownKeys(options, config);
  std::cout << "scenario " << options.config_file << ": map "
            << scenario.base_map.ToString() << ", " << scenario.num_clients
            << " clients, " << scenario.background.size()
            << " background pairs, " << scenario.mics.size() << " mic(s)\n";
  ObsSession obs(options);
  if (obs.Wanted()) scenario.obs = obs.Sinks();
  InvariantAuditor auditor(audit_config);
  if (options.audit) scenario.auditor = &auditor;
  const bench::RunResult result = bench::RunScenario(scenario);
  std::cout << "per-client throughput: "
            << FormatDouble(result.per_client_mbps, 2) << " Mbps\n"
            << "switches: " << result.switches
            << ", disconnect events: " << result.disconnects;
  if (result.max_outage_s > 0.0) {
    std::cout << ", worst outage " << FormatDouble(result.max_outage_s, 2)
              << " s";
  }
  if (result.faults_injected > 0) {
    std::cout << ", faults injected " << result.faults_injected;
  }
  std::cout << "\nfinal channel: " << result.final_channel.ToString() << "\n";
  if (scenario.geodb.enabled) {
    std::cout << "geodb: " << result.geodb_queries << " queries ("
              << result.geodb_shed << " shed), " << result.geodb_pushes
              << " pushes, " << result.geodb_degraded << " degraded / "
              << result.geodb_recovered << " recovered transitions\n";
  }
  if (obs.Wanted()) {
    obs.WriteOutputs(scenario.warmup_s + scenario.measure_s);
  }
  if (options.audit) {
    if (auditor.ok()) {
      std::cout << "audit: all invariants held (safety budget "
                << auditor.safety_budget() / kTicksPerMs << " ms)\n";
    } else {
      std::cout << "audit: " << auditor.violation_count()
                << " violation(s); first: "
                << auditor.first_violation()->ToString() << "\n";
      return 1;
    }
  }
  return 0;
}

/// --replay: re-run a repro bundle and verify the recorded violation
/// reproduces field-for-field.  With --minimize, shrink the bundle first
/// and replay the minimized version.
int RunReplay(const Options& options) {
  if (options.verbose) SetLogLevel(LogLevel::kInfo);
  std::ifstream in(options.replay_bundle);
  if (!in.good()) {
    throw ConfigError("cannot read bundle", options.replay_bundle, 0);
  }
  std::string bundle((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (!options.minimize_out.empty()) {
    int steps = 0;
    bundle = bench::MinimizeBundle(bundle, &steps);
    std::ofstream out(options.minimize_out);
    out << bundle;
    std::cout << "minimized bundle (" << steps << " reductions accepted) -> "
              << options.minimize_out << "\n";
  }
  const bench::ReplayOutcome outcome = bench::ReplayBundleText(bundle);
  std::cout << "replay " << options.replay_bundle << ": " << outcome.message
            << "\n";
  return outcome.reproduced ? 0 : 1;
}

}  // namespace

// Exit codes: 0 success, 1 runtime failure, 2 configuration error (bad
// config file or bad flags) — so scripts can tell a broken scenario file
// from a simulation that failed.
constexpr int kExitRuntimeError = 1;
constexpr int kExitConfigError = 2;

int main(int argc, char** argv) {
  Options options;
  try {
    if (!ParseOptions(argc, argv, options)) {
      std::cout << "usage: scenario_cli [--seed N] [--clients N] "
                   "[--background N] [--ipd MS] [--mic TV] [--mic-at S] "
                   "[--static 5|10|20] [--map NAME] [--seconds S] "
                   "[--verbose] [--metrics] [--metrics-csv FILE] "
                   "[--metrics-json FILE] [--trace-json FILE] "
                   "[--trace-jsonl FILE] [--trace-only K,K,...] "
                   "[--timeline-csv FILE] [--profile] "
                   "[--detector block|simd|scalar|avx2|avx512] [--config FILE] "
                   "[--strict] [--audit] [--audit-budget-ms M] "
                   "[--shards N] [--replay BUNDLE [--minimize OUT]]\n"
                   "exit codes: 0 success / reproduced / invariants held, "
                   "1 runtime failure / violation / divergence, "
                   "2 configuration error\n";
      return 0;
    }
    if (!options.replay_bundle.empty()) return RunReplay(options);
    if (!options.config_file.empty()) return RunFromConfigFile(options);
  } catch (const ConfigError& e) {
    // Carries file and line, e.g. "scenario.conf line 12: unknown key".
    std::cerr << "config error: " << e.what() << "\n";
    return kExitConfigError;
  } catch (const std::invalid_argument& e) {
    // Flag-parsing problems are configuration errors too.
    std::cerr << "config error: " << e.what() << "\n";
    return kExitConfigError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitRuntimeError;
  }
  if (options.verbose) SetLogLevel(LogLevel::kInfo);

  Rng map_rng(DeriveSeed(options.seed, "cli.map"));
  const SpectrumMap map = ResolveMap(options.map_name, map_rng);
  std::cout << "map " << options.map_name << ": " << map.ToString() << " ("
            << map.NumFree() << " free)\n";

  // Boot assignment.
  AssignmentInputs boot;
  boot.ap_map = map;
  boot.ap_observation = EmptyBandObservation();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    boot.ap_observation[static_cast<std::size_t>(c)].incumbent =
        map.Occupied(c);
  }
  SpectrumAssigner assigner;
  auto initial = assigner.SelectInitial(boot).channel;
  if (options.static_width != 0) {
    initial.reset();
    for (const Channel& c : map.UsableChannels()) {
      if (static_cast<int>(WidthMHz(c.width)) == options.static_width) {
        initial = c;
        break;
      }
    }
  }
  if (!initial.has_value()) {
    std::cerr << "no usable channel for this configuration\n";
    return 1;
  }
  const Channel backup = assigner.SelectBackup(boot, *initial).value_or(*initial);
  std::cout << "start: main " << initial->ToString() << ", backup "
            << backup.ToString()
            << (options.static_width != 0 ? " (static)" : " (adaptive)")
            << "\n";

  ObsSession obs(options);
  WorldConfig world_config;
  world_config.seed = options.seed;
  if (obs.Wanted()) world_config.obs = obs.Sinks();
  World world(world_config);
  Rng rng = world.NewRng();

  DeviceConfig node;
  node.ssid = 1;
  node.tv_map = map;
  ApParams ap_params;
  ap_params.adaptive = options.static_width == 0;
  ApNode& ap = world.Create<ApNode>(node, ap_params, *initial, backup);
  std::vector<int> ids;
  std::vector<ClientNode*> clients;
  for (int i = 0; i < options.clients; ++i) {
    node.position = {rng.Uniform(-250.0, 250.0), rng.Uniform(-250.0, 250.0)};
    clients.push_back(&world.Create<ClientNode>(node, ClientParams{}, *initial,
                                                backup, ap.NodeId()));
    ids.push_back(clients.back()->NodeId());
  }
  SaturatedSource downlink(ap, ids, 1000);

  std::vector<std::unique_ptr<CbrSource>> background;
  for (int i = 0; i < options.background; ++i) {
    DeviceConfig bg;
    bg.ssid = 100 + i;
    bg.is_ap = true;
    bg.tv_map = map;
    bg.initial_channel = Channel{rng.Pick(map.FreeIndices()), ChannelWidth::kW5};
    const double r = rng.Uniform(150.0, 500.0);
    const double theta = rng.Uniform(0.0, 2.0 * M_PI);
    bg.position = {r * std::cos(theta), r * std::sin(theta)};
    Device& tx = world.Create<Device>(bg);
    bg.is_ap = false;
    bg.position.x += 25.0;
    Device& rx = world.Create<Device>(bg);
    background.push_back(std::make_unique<CbrSource>(
        tx, rx.NodeId(), 1000, options.ipd_ms * kTicksPerMs));
    background.back()->Start();
  }

  if (options.mic_tv != 0) {
    world.AddMic(MicActivation{IndexOfTvChannel(options.mic_tv),
                               options.mic_at * kSecond, 3600.0 * kSecond});
    std::cout << "mic on TV ch" << options.mic_tv << " at t="
              << FormatDouble(options.mic_at, 1) << " s\n";
  }

  // Optional live control-plane trace (beacons excluded: too chatty).
  std::unique_ptr<Tracer> tracer;
  if (options.trace) {
    TracerOptions trace_options;
    trace_options.only = {FrameType::kChannelSwitch, FrameType::kChirp,
                          FrameType::kReport};
    trace_options.live = &std::cout;
    tracer = std::make_unique<Tracer>(world, trace_options);
  }

  world.StartAll();
  downlink.Start();
  world.RunFor(options.seconds);

  std::cout << "\nafter " << FormatDouble(options.seconds, 1) << " s:\n";
  std::cout << "  AP on " << ap.main_channel().ToString() << " (backup "
            << ap.backup_channel().ToString() << "), switches "
            << ap.num_switches() << "\n";
  int connected = 0;
  double worst_outage = 0.0;
  for (const ClientNode* c : clients) {
    connected += c->connected() ? 1 : 0;
    for (SimTime o : c->outages()) {
      worst_outage = std::max(worst_outage, ToSeconds(o));
    }
  }
  std::cout << "  clients connected: " << connected << "/" << options.clients;
  if (worst_outage > 0.0) {
    std::cout << " (worst outage " << FormatDouble(worst_outage, 2) << " s)";
  }
  std::cout << "\n  aggregate throughput: "
            << FormatDouble(
                   8.0 * world.AppBytesInSsid(1) / options.seconds / 1e6, 2)
            << " Mbps\n";
  if (obs.Wanted()) obs.WriteOutputs(options.seconds);
  return 0;
}
