// SIFT "oscilloscope": watch the signal-level pipeline work.
//
// Synthesizes the raw amplitude trace a USRP scanner would capture while a
// hidden WhiteFi transmitter exchanges Data-ACK frames at an unknown
// width, then runs SIFT over it: packet-edge detection with the 5-sample
// moving average, Data->SIFS->ACK pattern matching, width inference, and
// airtime estimation.  Also demonstrates the chirp length-decoder used by
// the disconnection protocol.
//
// Run: ./build/examples/sift_scope
#include <iostream>

#include "core/whitefi.h"

using namespace whitefi;

int main() {
  std::cout << "SIFT scope\n==========\n\n";
  Rng rng(7);

  // A transmitter picks a width we pretend not to know.
  const ChannelWidth secret = rng.Pick(
      std::vector<ChannelWidth>(kAllWidths.begin(), kAllWidths.end()));
  const PhyTiming timing = PhyTiming::ForWidth(secret);

  // It sends 12 data-ACK exchanges of 700-byte frames.
  const Us spacing =
      timing.FrameDuration(700) + timing.Sifs() + timing.AckDuration() + 2500.0;
  const auto schedule = MakeCbrSchedule(timing, 12, spacing, 700, 800.0);
  SignalSynthesizer synth(SignalParams{}, rng.Fork());
  const Us window = 12 * spacing + 2000.0;
  const auto samples = synth.Synthesize(schedule, window);
  std::cout << "captured " << samples.size() << " amplitude samples ("
            << FormatDouble(window / 1000.0, 1) << " ms at 1 MS/s)\n\n";

  // SIFT step 1: edge detection in the time domain.
  SiftDetector detector{SiftParams{}};
  const auto bursts = detector.Detect(samples);
  std::cout << "detected " << bursts.size() << " bursts; first four:\n";
  for (std::size_t i = 0; i < bursts.size() && i < 4; ++i) {
    std::cout << "  [" << FormatDouble(bursts[i].start, 0) << " .. "
              << FormatDouble(bursts[i].end, 0) << "] us  ("
              << FormatDouble(bursts[i].Duration(), 0) << " us)\n";
  }

  // SIFT step 2: width inference from the Data->SIFS->ACK pattern.
  PatternMatcher matcher;
  const auto matches = matcher.MatchAll(bursts);
  const auto width = matcher.DominantWidth(bursts);
  std::cout << "\nmatched " << matches.size() << " data-ACK exchanges\n";
  std::cout << "inferred width: "
            << (width.has_value() ? WidthLabel(*width) : std::string("?"))
            << "   (actual: " << WidthLabel(secret) << ")  "
            << (width == secret ? "CORRECT" : "WRONG") << "\n";

  // SIFT step 3: airtime estimation for the MCham metric.
  const double airtime = BusyAirtimeFraction(bursts, 0.0, window);
  const double truth =
      12.0 * (timing.FrameDuration(700) + timing.AckDuration()) / window;
  std::cout << "airtime: measured " << FormatPercent(airtime) << ", truth "
            << FormatPercent(truth) << "\n\n";

  // Bonus: the chirp OOK decoder (Section 4.3's SSID length-code).
  const ChirpCodec codec;
  const int ssid = 42;
  const Burst chirp{1000.0, codec.Encode(ssid), false, 1.0};
  SignalSynthesizer chirp_synth(SignalParams{}, rng.Fork());
  SiftDetector chirp_detector{SiftParams{}};
  const auto chirp_bursts =
      chirp_detector.Detect(chirp_synth.Synthesize({{chirp}}, 12000.0));
  std::cout << "chirp demo: encoded SSID " << ssid << " as a "
            << FormatDouble(chirp.duration, 0) << " us chirp; decoded "
            << (chirp_bursts.size() == 1 && codec.Decode(chirp_bursts[0])
                    ? std::to_string(*codec.Decode(chirp_bursts[0]))
                    : std::string("nothing"))
            << "\n";
  return 0;
}
