#include "sim/propagation.h"

namespace whitefi {

Dbm NoiseFloorDbm(MHz width_mhz) {
  return -101.0 + 10.0 * std::log10(width_mhz / 20.0);
}

}  // namespace whitefi
