// Frame tracer: a tcpdump for the simulated medium.
//
// Attaches to the medium's frame tap and records (or prints) one line per
// completed transmission — time, transmitter, destination, type, size and
// channel — plus protocol milestones (channel switches, disconnections)
// that callers append explicitly.  Drives debugging and the `--trace`
// mode of the scenario CLI.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/medium.h"

namespace whitefi {

class World;

/// One trace record.
struct TraceRecord {
  SimTime at = 0;
  std::string line;
};

/// Options controlling what is captured.
struct TracerOptions {
  /// Frame types to capture; empty = all.
  std::vector<FrameType> only;
  /// Also stream each line to this stream as it happens (nullptr = none).
  std::ostream* live = nullptr;
  /// Stop recording beyond this many records (live streaming continues).
  std::size_t max_records = 100000;
};

/// Medium-attached frame tracer.
class Tracer {
 public:
  /// Attaches to the world's medium.  The tracer must outlive the world's
  /// remaining transmissions (typically: same scope as the World).
  Tracer(World& world, const TracerOptions& options = {});

  /// Appends a protocol milestone (e.g. "AP switched to (ch34, 10MHz)").
  void Note(const std::string& text);

  /// Records captured so far.
  const std::vector<TraceRecord>& Records() const { return records_; }

  /// Number of frames seen per type (including ones beyond max_records).
  std::size_t CountOf(FrameType type) const;

  /// Renders all records, one line each.
  std::string ToString() const;

 private:
  void OnFrame(const Channel& channel, const Frame& frame,
               const RadioPort& tx);

  World& world_;
  TracerOptions options_;
  std::vector<TraceRecord> records_;
  std::vector<std::size_t> counts_;
};

}  // namespace whitefi
