// Frame tracer: a tcpdump for the simulated medium.
//
// Attaches to the medium's frame tap and records (or prints) one line per
// completed transmission — time, transmitter, destination, type, size and
// channel — plus protocol milestones (channel switches, disconnections)
// that callers append explicitly.  Drives debugging and the `--trace`
// mode of the scenario CLI.
#pragma once

#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/medium.h"

namespace whitefi {

class World;

/// One trace record.
struct TraceRecord {
  SimTime at = 0;
  std::string line;
};

/// Options controlling what is captured.
struct TracerOptions {
  /// Frame types to capture; empty = all.
  std::vector<FrameType> only;
  /// Also stream each line to this stream as it happens (nullptr = none).
  std::ostream* live = nullptr;
  /// Stop recording beyond this many records (live streaming continues,
  /// and CountOf stays exact).
  std::size_t max_records = 100000;
  /// When true, max_records acts as a ring buffer: the oldest records are
  /// evicted so the trace always holds the most recent activity.
  bool keep_last = false;
};

/// Medium-attached frame tracer.
class Tracer {
 public:
  /// Attaches to the world's medium.  The tracer must outlive the world's
  /// remaining transmissions (typically: same scope as the World).
  Tracer(World& world, const TracerOptions& options = {});

  /// Appends a protocol milestone (e.g. "AP switched to (ch34, 10MHz)").
  void Note(const std::string& text);

  /// Records captured so far.
  const std::deque<TraceRecord>& Records() const { return records_; }

  /// Number of frames seen per type (exact: includes frames beyond
  /// max_records and frames excluded by the `only` filter).
  std::size_t CountOf(FrameType type) const;

  /// Renders all records, one line each.
  std::string ToString() const;

 private:
  void OnFrame(const Channel& channel, const Frame& frame,
               const RadioPort& tx);

  void Record(std::string line);

  World& world_;
  TracerOptions options_;
  std::deque<TraceRecord> records_;
  std::vector<std::size_t> counts_;
};

}  // namespace whitefi
