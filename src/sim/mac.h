// CSMA/CA (802.11 DCF-style) medium access with width-scaled parameters.
//
// WhiteFi deliberately keeps the Wi-Fi MAC (paper Section 6: Listen Before
// Transmit coexists well with other unlicensed devices), so this MAC is a
// textbook DCF: DIFS deference, slotted binary-exponential backoff with a
// freeze on carrier, SIFS-spaced ACKs with retransmission, and broadcast
// frames sent without ACK.  All interframe timings come from `PhyTiming`
// and therefore scale with the channel width.
//
// Re-entrancy rule: the MAC never calls Medium::Transmit synchronously
// from a Medium callback (delivery or medium-changed); ACKs and new
// attempts are always scheduled through the simulator.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <optional>

#include "phy/timing.h"
#include "sim/medium.h"
#include "util/rng.h"

namespace whitefi {

/// DCF configuration.
struct MacParams {
  int cw_min = kCwMin;
  int cw_max = kCwMax;
  int retry_limit = kMaxTxAttempts;
  std::size_t max_queue = 64;
};

/// Throws std::invalid_argument when any MacParams field is out of range
/// (cw_min < 1, cw_max < cw_min, retry_limit < 1, empty queue).
void ValidateMacParams(const MacParams& params);

/// Upcalls from the MAC to its owning device.
class MacCallbacks {
 public:
  virtual ~MacCallbacks() = default;

  /// A (non-duplicate) frame addressed to this node or broadcast arrived.
  virtual void MacReceived(const Frame& frame, Dbm rx_power) = 0;

  /// A queued frame finished: delivered-and-ACKed (or broadcast sent), or
  /// dropped after the retry limit.
  virtual void MacSendComplete(const Frame& frame, bool success) = 0;
};

/// One CSMA/CA MAC instance bound to one radio.
class Mac {
 public:
  Mac(Simulator& sim, Medium& medium, RadioPort& radio,
      MacCallbacks& callbacks, Dbm tx_power, const MacParams& params, Rng rng);

  /// Updates interframe timings (call when the radio's width changes).
  void SetTiming(const PhyTiming& timing);

  /// Attaches metrics/trace sinks (pointers may be null).  Counter handles
  /// are resolved once here; the per-event cost is a null check.
  void SetObservability(const Observability& obs);

  /// Current timing.
  const PhyTiming& timing() const { return timing_; }

  /// Enqueues a frame for transmission; assigns its sequence number.
  /// Returns false (and drops it) when the queue is full.
  bool Enqueue(Frame frame);

  /// Enqueues a time-critical frame ahead of queued traffic (behind the
  /// frame currently in service, if any).  Used for beacons and channel-
  /// switch announcements, which must not rot behind a data backlog.
  bool EnqueueFront(Frame frame);

  /// Number of queued frames of the given type (in-flight included).
  std::size_t CountQueued(FrameType type) const;

  /// Aborts the current attempt and timers, and drops all queued frames.
  /// Use when the radio retunes: queued frames were for the old channel.
  void Reset();

  /// Frames waiting (including the one in flight).
  std::size_t QueueDepth() const { return queue_.size(); }

  /// True iff nothing is queued or in flight.
  bool Idle() const { return queue_.empty() && state_ == State::kIdle; }

  /// Frames that exhausted their retries.
  std::uint64_t Drops() const { return drops_; }

  // -- Wiring from the device's RadioPort --------------------------------

  /// Frame delivery from the medium.
  void OnDeliver(const Frame& frame, Dbm rx_power);

  /// Carrier state may have changed.
  void OnMediumChanged();

 private:
  enum class State {
    kIdle,
    kWaitIdle,   ///< Carrier busy; waiting for it to clear.
    kDifs,       ///< DIFS timer running.
    kBackoff,    ///< Slot timer running, counting down backoff slots.
    kTransmitting,
    kWaitAck,
  };

  bool Carrier() const;
  void KickIfIdle();
  void TryStart();
  void EnterContention();
  void DifsExpired();
  void SlotExpired();
  void TransmitHead();
  void TxDone(std::uint64_t epoch);
  void AckTimeout(std::uint64_t epoch);
  void CompleteHead(bool success);
  void CancelTimer();

  Simulator& sim_;
  Medium& medium_;
  RadioPort& radio_;
  MacCallbacks& callbacks_;
  Dbm tx_power_;
  MacParams params_;
  Rng rng_;
  PhyTiming timing_ = PhyTiming::ForWidth(ChannelWidth::kW5);

  State state_ = State::kIdle;
  std::deque<Frame> queue_;
  int attempts_ = 0;
  int cw_ = kCwMin;
  int backoff_slots_ = -1;  ///< -1: not drawn yet for this attempt.
  EventId timer_ = kInvalidEventId;
  std::uint64_t epoch_ = 0;  ///< Bumped by Reset to invalidate callbacks.
  std::uint64_t next_seq_ = 1;
  std::uint64_t drops_ = 0;
  std::map<int, std::uint64_t> last_seq_from_;  ///< Duplicate filter.

  // Observability (optional): whitefi.mac.retries, whitefi.mac.drop.<Type>.
  EventTrace* trace_ = nullptr;
  AuditHooks* auditor_ = nullptr;
  Counter* retries_counter_ = nullptr;
  std::array<Counter*, kNumFrameTypes> drop_counters_{};
};

}  // namespace whitefi
