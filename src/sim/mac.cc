#include "sim/mac.h"

#include <algorithm>
#include <stdexcept>

#include "sim/audit_hooks.h"
#include "util/log.h"

namespace whitefi {

void ValidateMacParams(const MacParams& params) {
  if (params.cw_min < 1) {
    throw std::invalid_argument("mac cw_min must be at least 1");
  }
  if (params.cw_max < params.cw_min) {
    throw std::invalid_argument("mac cw_max must be >= cw_min");
  }
  if (params.retry_limit < 1) {
    throw std::invalid_argument("mac retry_limit must be at least 1");
  }
  if (params.max_queue < 1) {
    throw std::invalid_argument("mac max_queue must be at least 1");
  }
}

Mac::Mac(Simulator& sim, Medium& medium, RadioPort& radio,
         MacCallbacks& callbacks, Dbm tx_power, const MacParams& params,
         Rng rng)
    : sim_(sim),
      medium_(medium),
      radio_(radio),
      callbacks_(callbacks),
      tx_power_(tx_power),
      params_(params),
      rng_(std::move(rng)),
      cw_(params.cw_min) {
  ValidateMacParams(params_);
}

void Mac::SetTiming(const PhyTiming& timing) {
  timing_ = timing;
  // Audit seam: every timing reprogram is checked against the width the
  // radio is tuned to (the device retunes, then reprograms us).
  if (auditor_ != nullptr) auditor_->OnMacTiming(radio_, timing);
}

void Mac::SetObservability(const Observability& obs) {
  trace_ = obs.trace;
  auditor_ = obs.auditor;
  if (obs.metrics == nullptr) {
    retries_counter_ = nullptr;
    drop_counters_.fill(nullptr);
    return;
  }
  retries_counter_ = &obs.metrics->GetCounter("whitefi.mac.retries");
  for (int i = 0; i < kNumFrameTypes; ++i) {
    drop_counters_[i] = &obs.metrics->GetCounter(
        std::string("whitefi.mac.drop.") +
        FrameTypeName(static_cast<FrameType>(i)));
  }
}

bool Mac::Enqueue(Frame frame) {
  if (queue_.size() >= params_.max_queue) return false;
  frame.src = radio_.NodeId();
  frame.seq = next_seq_++;
  queue_.push_back(std::move(frame));
  KickIfIdle();
  return true;
}

bool Mac::EnqueueFront(Frame frame) {
  if (queue_.size() >= params_.max_queue) return false;
  frame.src = radio_.NodeId();
  frame.seq = next_seq_++;
  // Never displace the head while it is in service (in flight or awaiting
  // its ACK); slot in right behind it.
  const bool head_in_service =
      !queue_.empty() &&
      (state_ == State::kTransmitting || state_ == State::kWaitAck);
  queue_.insert(queue_.begin() + (head_in_service ? 1 : 0), std::move(frame));
  KickIfIdle();
  return true;
}

std::size_t Mac::CountQueued(FrameType type) const {
  std::size_t count = 0;
  for (const Frame& f : queue_) count += f.type == type ? 1 : 0;
  return count;
}

void Mac::KickIfIdle() {
  if (state_ != State::kIdle) return;
  // Defer through the simulator: Enqueue may be called from a medium
  // callback, and contention entry probes the medium.
  const std::uint64_t epoch = epoch_;
  sim_.ScheduleAfter(0, [this, epoch] {
    if (epoch == epoch_ && state_ == State::kIdle) TryStart();
  });
}

void Mac::Reset() {
  ++epoch_;
  CancelTimer();
  queue_.clear();
  state_ = State::kIdle;
  attempts_ = 0;
  cw_ = params_.cw_min;
  backoff_slots_ = -1;
}

bool Mac::Carrier() const {
  return medium_.CarrierSensed(radio_, radio_.TunedChannel());
}

void Mac::CancelTimer() {
  sim_.Cancel(timer_);
  timer_ = kInvalidEventId;
}

void Mac::TryStart() {
  if (queue_.empty() || state_ != State::kIdle) return;
  EnterContention();
}

void Mac::EnterContention() {
  if (queue_.empty()) {
    state_ = State::kIdle;
    return;
  }
  if (Carrier()) {
    state_ = State::kWaitIdle;
    return;  // Resumed by OnMediumChanged.
  }
  state_ = State::kDifs;
  const std::uint64_t epoch = epoch_;
  timer_ = sim_.ScheduleAfter(ToTicks(timing_.ContentionDifs()), [this, epoch] {
    if (epoch != epoch_) return;
    timer_ = kInvalidEventId;
    DifsExpired();
  });
}

void Mac::DifsExpired() {
  if (state_ != State::kDifs) return;
  if (Carrier()) {  // Busy slipped in right at expiry.
    state_ = State::kWaitIdle;
    return;
  }
  if (backoff_slots_ < 0) {
    backoff_slots_ = rng_.UniformInt(0, cw_);
    if (trace_ != nullptr && !queue_.empty()) {
      if (trace_->Wants(TraceEventKind::kMacBackoff)) {
        TraceEvent event;
        event.at_us = sim_.Now();
        event.kind = TraceEventKind::kMacBackoff;
        event.node = radio_.NodeId();
        event.bytes = backoff_slots_;  // Magnitude: slots drawn.
        event.frame_type = FrameTypeName(queue_.front().type);
        event.detail = "cw=" + std::to_string(cw_);
        trace_->Append(std::move(event));
      } else {
        trace_->CountSkipped(TraceEventKind::kMacBackoff);
      }
    }
  }
  state_ = State::kBackoff;
  if (backoff_slots_ == 0) {
    TransmitHead();
    return;
  }
  const std::uint64_t epoch = epoch_;
  timer_ = sim_.ScheduleAfter(ToTicks(timing_.ContentionSlot()), [this, epoch] {
    if (epoch != epoch_) return;
    timer_ = kInvalidEventId;
    SlotExpired();
  });
}

void Mac::SlotExpired() {
  if (state_ != State::kBackoff) return;
  if (Carrier()) {
    // Freeze the counter; wait for idle then DIFS again.
    state_ = State::kWaitIdle;
    return;
  }
  --backoff_slots_;
  if (backoff_slots_ <= 0) {
    backoff_slots_ = -1;
    TransmitHead();
    return;
  }
  const std::uint64_t epoch = epoch_;
  timer_ = sim_.ScheduleAfter(ToTicks(timing_.ContentionSlot()), [this, epoch] {
    if (epoch != epoch_) return;
    timer_ = kInvalidEventId;
    SlotExpired();
  });
}

void Mac::TransmitHead() {
  if (queue_.empty()) {
    state_ = State::kIdle;
    return;
  }
  state_ = State::kTransmitting;
  backoff_slots_ = -1;
  const Frame& frame = queue_.front();
  const SimTime duration = ToTicks(timing_.FrameDuration(frame.bytes));
  const std::uint64_t epoch = epoch_;
  medium_.Transmit(&radio_, radio_.TunedChannel(), frame, tx_power_, duration,
                   [this, epoch] { TxDone(epoch); });
}

void Mac::TxDone(std::uint64_t epoch) {
  if (epoch != epoch_) return;
  if (state_ != State::kTransmitting || queue_.empty()) return;
  const Frame& frame = queue_.front();
  if (frame.IsBroadcast()) {
    if (frame.type == FrameType::kBeacon) {
      // The paper requires APs to send a CTS-to-self one SIFS after every
      // beacon so SIFT observers can recognize the beacon pattern without
      // decoding it (Section 4.2.1).
      Frame cts;
      cts.type = FrameType::kCts;
      cts.src = radio_.NodeId();
      cts.dst = radio_.NodeId();  // To self: never ACKed, never delivered.
      cts.bytes = kCtsBytes;
      const SimTime cts_duration = ToTicks(timing_.CtsDuration());
      sim_.ScheduleAfter(ToTicks(timing_.Sifs()),
                         [this, epoch, cts, cts_duration] {
                           if (epoch != epoch_) return;
                           medium_.Transmit(&radio_, radio_.TunedChannel(),
                                            cts, tx_power_, cts_duration,
                                            nullptr);
                         });
    }
    CompleteHead(true);
    return;
  }
  // Unicast: await the ACK.
  state_ = State::kWaitAck;
  const SimTime timeout = ToTicks(timing_.Sifs() + timing_.AckDuration() +
                                  3.0 * timing_.ContentionSlot());
  timer_ = sim_.ScheduleAfter(timeout, [this, epoch] {
    if (epoch != epoch_) return;
    timer_ = kInvalidEventId;
    AckTimeout(epoch);
  });
}

void Mac::AckTimeout(std::uint64_t epoch) {
  if (epoch != epoch_ || state_ != State::kWaitAck) return;
  ++attempts_;
  if (attempts_ > params_.retry_limit) {
    ++drops_;
    const Frame& frame = queue_.front();
    WHITEFI_METRIC_COUNT(
        drop_counters_[static_cast<std::size_t>(frame.type)], 1);
    if (trace_ != nullptr) {
      if (trace_->Wants(TraceEventKind::kFrameDrop)) {
        TraceEvent event;
        event.at_us = sim_.Now();
        event.kind = TraceEventKind::kFrameDrop;
        event.node = radio_.NodeId();
        event.src = frame.src;
        event.dst = frame.dst;
        event.bytes = frame.bytes;
        event.frame_type = FrameTypeName(frame.type);
        event.detail = "retry_limit";
        trace_->Append(std::move(event));
      } else {
        trace_->CountSkipped(TraceEventKind::kFrameDrop);
      }
    }
    CompleteHead(false);
    return;
  }
  WHITEFI_METRIC_COUNT(retries_counter_, 1);
  if (trace_ != nullptr) {
    if (trace_->Wants(TraceEventKind::kMacRetry)) {
      const Frame& frame = queue_.front();
      TraceEvent event;
      event.at_us = sim_.Now();
      event.kind = TraceEventKind::kMacRetry;
      event.node = radio_.NodeId();
      event.src = frame.src;
      event.dst = frame.dst;
      event.bytes = frame.bytes;
      event.frame_type = FrameTypeName(frame.type);
      event.detail = "attempt=" + std::to_string(attempts_);
      trace_->Append(std::move(event));
    } else {
      trace_->CountSkipped(TraceEventKind::kMacRetry);
    }
  }
  cw_ = std::min(cw_ * 2 + 1, params_.cw_max);
  state_ = State::kIdle;
  TryStart();
}

void Mac::CompleteHead(bool success) {
  Frame done = std::move(queue_.front());
  queue_.pop_front();
  attempts_ = 0;
  cw_ = params_.cw_min;
  backoff_slots_ = -1;
  state_ = State::kIdle;
  callbacks_.MacSendComplete(done, success);
  TryStart();
}

void Mac::OnDeliver(const Frame& frame, Dbm rx_power) {
  const int me = radio_.NodeId();
  if (frame.type == FrameType::kAck) {
    if (frame.dst == me && state_ == State::kWaitAck && !queue_.empty() &&
        frame.seq == queue_.front().seq) {
      CancelTimer();
      CompleteHead(true);
    }
    return;
  }

  if (frame.dst == me) {
    // Schedule the ACK one SIFS after the frame end (never synchronously:
    // we are inside a medium callback).
    Frame ack;
    ack.type = FrameType::kAck;
    ack.src = me;
    ack.dst = frame.src;
    ack.bytes = kAckBytes;
    ack.seq = frame.seq;  // Echo so the sender can match it.
    const SimTime ack_duration = ToTicks(timing_.AckDuration());
    const std::uint64_t epoch = epoch_;
    sim_.ScheduleAfter(ToTicks(timing_.Sifs()), [this, epoch, ack,
                                                 ack_duration] {
      if (epoch != epoch_) return;  // Radio retuned meanwhile.
      // SIFS access beats everyone; no carrier sense for ACKs.
      medium_.Transmit(&radio_, radio_.TunedChannel(), ack, tx_power_,
                       ack_duration, nullptr);
    });
    // Duplicate filter: retransmissions are ACKed but not re-delivered.
    auto [it, inserted] = last_seq_from_.try_emplace(frame.src, frame.seq);
    if (!inserted) {
      if (frame.seq <= it->second) return;
      it->second = frame.seq;
    }
    callbacks_.MacReceived(frame, rx_power);
    return;
  }

  if (frame.IsBroadcast()) {
    callbacks_.MacReceived(frame, rx_power);
  }
}

void Mac::OnMediumChanged() {
  if (state_ == State::kWaitIdle && !Carrier()) {
    state_ = State::kIdle;
    EnterContention();
  } else if (state_ == State::kDifs && Carrier()) {
    CancelTimer();
    state_ = State::kWaitIdle;
  } else if (state_ == State::kBackoff && Carrier()) {
    CancelTimer();
    state_ = State::kWaitIdle;  // Counter stays frozen in backoff_slots_.
  }
}

}  // namespace whitefi
