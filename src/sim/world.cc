#include "sim/world.h"

#include <algorithm>
#include <string>

#include "util/log.h"

namespace whitefi {

World::World(const WorldConfig& config)
    : config_(config),
      rng_(config.seed),
      medium_(sim_, config.medium),
      next_id_(config.first_node_id) {
  medium_.SetObservability(config_.obs);
  medium_.SetFaultInjector(config_.faults);
  if (config_.faults != nullptr) {
    config_.faults->SetObservability(config_.obs);
  }
  // Stamp log lines with this world's simulated time.  The owner token
  // keeps a dying world from clearing a newer world's source.
  SetLogTimeSource(this, [this] { return ToSeconds(sim_.Now()); });
}

World::~World() { ClearLogTimeSource(this); }

Device* World::FindDevice(int id) {
  for (const auto& device : devices_) {
    if (device->NodeId() == id) return device.get();
  }
  return nullptr;
}

std::vector<int> World::NodesInSsid(int ssid) const {
  std::vector<int> ids;
  for (const auto& device : devices_) {
    if (device->ssid() == ssid) ids.push_back(device->NodeId());
  }
  return ids;
}

void World::StartAll() {
  for (const auto& device : devices_) device->Start();
  // Bracket every windowed fault with trace records so a JSONL export
  // shows exactly when each degradation began and ended.
  if (config_.faults != nullptr && config_.obs.trace != nullptr) {
    for (const FaultInjector::WindowEvent& w : config_.faults->WindowEvents()) {
      sim_.Schedule(w.at, [this, w] {
        TraceEvent event;
        event.kind = w.inject ? TraceEventKind::kFaultInjected
                              : TraceEventKind::kFaultCleared;
        event.detail = w.what;
        TraceEventNow(std::move(event));
      });
    }
  }
}

void World::SetMicSchedule(std::vector<MicActivation> mics) {
  for (const MicActivation& mic : mics) AddMic(mic);
}

void World::AddMic(const MicActivation& mic, std::vector<int> audible_to) {
  WorldMic entry{mic, std::move(audible_to), ToTicks(mic.on_time),
                 ToTicks(mic.off_time), NextTraceId()};
  mics_.push_back(entry);
  // Copy by value: mics_ may reallocate before the events fire.
  sim_.Schedule(entry.on_ticks,
                [this, entry] { ApplyMicTransition(entry, true); });
  sim_.Schedule(entry.off_ticks,
                [this, entry] { ApplyMicTransition(entry, false); });
}

void World::TraceEventNow(TraceEvent event) {
  if (config_.obs.trace == nullptr) return;
  event.at_us = sim_.Now();
  config_.obs.trace->Append(std::move(event));
}

void World::RecordState(int node, std::string_view state) {
  if (StateTimeline* timeline = config_.obs.timeline; timeline != nullptr) {
    timeline->Enter(sim_.Now(), node, state);
  }
  if (config_.obs.trace != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kStateEnter;
    event.node = node;
    event.detail = std::string(state);
    TraceEventNow(std::move(event));
  }
}

void World::TraceSpanBegin(int node, std::int64_t id, std::int64_t parent,
                           std::int64_t flow, std::string_view name) {
  if (config_.obs.trace == nullptr) return;
  TraceEvent event;
  event.kind = TraceEventKind::kSpanBegin;
  event.node = node;
  event.span_id = id;
  event.parent_span = parent;
  event.flow_id = flow;
  event.detail = std::string(name);
  TraceEventNow(std::move(event));
}

void World::TraceSpanEnd(int node, std::int64_t id, std::int64_t flow,
                         std::string_view name) {
  if (config_.obs.trace == nullptr) return;
  TraceEvent event;
  event.kind = TraceEventKind::kSpanEnd;
  event.node = node;
  event.span_id = id;
  event.flow_id = flow;
  event.detail = std::string(name);
  TraceEventNow(std::move(event));
}

std::int64_t World::MicFlowId(UhfIndex c, int node_id) const {
  const SimTime now = sim_.Now();
  std::int64_t flow = 0;
  SimTime latest = 0;
  for (const WorldMic& m : mics_) {
    if (m.mic.channel != c || !m.ActiveAtTick(now)) continue;
    if (!m.audible_to.empty() &&
        std::find(m.audible_to.begin(), m.audible_to.end(), node_id) ==
            m.audible_to.end()) {
      continue;
    }
    if (flow == 0 || m.on_ticks > latest) {
      flow = m.flow;
      latest = m.on_ticks;
    }
  }
  return flow;
}

std::optional<SimTime> World::MicOnSince(UhfIndex c) const {
  const SimTime now = sim_.Now();
  std::optional<SimTime> latest;
  for (const WorldMic& m : mics_) {
    if (m.mic.channel != c || !m.ActiveAtTick(now)) continue;
    if (!latest.has_value() || m.on_ticks > *latest) latest = m.on_ticks;
  }
  if (!latest.has_value()) return std::nullopt;
  return now - *latest;
}

void World::ApplyMicTransition(const WorldMic& mic, bool on) {
  {
    TraceEvent event;
    event.kind = on ? TraceEventKind::kIncumbentOn : TraceEventKind::kIncumbentOff;
    event.detail = "mic ch" + std::to_string(mic.mic.channel);
    event.flow_id = mic.flow;
    TraceEventNow(std::move(event));
  }
  if (!on) return;
  // Fast sensing path: nodes whose operating channel covers the mic (and
  // who can hear it) detect it after the configured latency.  Audibility
  // is re-checked at fire time, not here: the mic is active from this
  // instant by construction.
  for (const auto& device : devices_) {
    if (!device->TunedChannel().Contains(mic.mic.channel)) continue;
    Device* dev = device.get();
    if (!mic.audible_to.empty() &&
        std::find(mic.audible_to.begin(), mic.audible_to.end(),
                  dev->NodeId()) == mic.audible_to.end()) {
      continue;
    }
    const UhfIndex channel = mic.mic.channel;
    sim_.ScheduleAfter(config_.incumbent_detect_latency, [this, dev, channel] {
      if (MicAudible(channel, dev->NodeId()) &&
          dev->TunedChannel().Contains(channel)) {
        dev->OnIncumbentDetected(channel);
      }
    });
  }
}

bool World::MicActiveNow(UhfIndex c) const {
  const SimTime now = sim_.Now();
  for (const WorldMic& m : mics_) {
    if (m.mic.channel == c && m.ActiveAtTick(now)) return true;
  }
  return false;
}

bool World::MicAudible(UhfIndex c, int node_id) const {
  const SimTime now = sim_.Now();
  for (const WorldMic& m : mics_) {
    if (m.mic.channel != c || !m.ActiveAtTick(now)) continue;
    if (m.audible_to.empty()) return true;
    if (std::find(m.audible_to.begin(), m.audible_to.end(), node_id) !=
        m.audible_to.end()) {
      return true;
    }
  }
  return false;
}

std::optional<SimTime> World::MicAudibleOnSince(UhfIndex c,
                                                int node_id) const {
  const SimTime now = sim_.Now();
  std::optional<SimTime> latest;
  for (const WorldMic& m : mics_) {
    if (m.mic.channel != c || !m.ActiveAtTick(now)) continue;
    if (!m.audible_to.empty() &&
        std::find(m.audible_to.begin(), m.audible_to.end(), node_id) ==
            m.audible_to.end()) {
      continue;
    }
    if (!latest.has_value() || m.on_ticks > *latest) latest = m.on_ticks;
  }
  if (!latest.has_value()) return std::nullopt;
  return now - *latest;
}

void World::RecordAppBytes(int dst, int bytes) {
  if (bytes > 0) app_bytes_[dst] += static_cast<std::uint64_t>(bytes);
}

void World::ResetAppBytes() { app_bytes_.clear(); }

std::uint64_t World::AppBytes(int dst) const {
  const auto it = app_bytes_.find(dst);
  return it == app_bytes_.end() ? 0 : it->second;
}

std::uint64_t World::AppBytesInSsid(int ssid) const {
  std::uint64_t total = 0;
  for (int id : NodesInSsid(ssid)) total += AppBytes(id);
  return total;
}

void World::RunFor(double seconds) {
  sim_.Run(sim_.Now() + static_cast<SimTime>(seconds * kTicksPerSec));
}

}  // namespace whitefi
