// Simulation time: integer microsecond ticks.
//
// The PHY layer computes durations as double microseconds (`Us`); the
// discrete-event core uses integer ticks to guarantee total event ordering
// and exact time comparison.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/units.h"

namespace whitefi {

/// Simulation timestamp / duration in integer microseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kTicksPerMs = 1000;
inline constexpr SimTime kTicksPerSec = 1'000'000;

/// Rounds a double-microsecond duration to ticks (at least 1 tick for any
/// strictly positive duration, so zero-length transmissions cannot occur).
inline SimTime ToTicks(Us us) {
  const auto t = static_cast<SimTime>(std::llround(us));
  return us > 0.0 && t == 0 ? SimTime{1} : t;
}

/// Converts ticks back to double microseconds.
inline Us ToUs(SimTime t) { return static_cast<Us>(t); }

/// Converts ticks to seconds.
inline double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

}  // namespace whitefi
