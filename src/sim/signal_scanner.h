// Signal-level scanner: the faithful KNOWS measurement path inside the
// simulator.
//
// The regular `Scanner` reads the medium's airtime books directly — fast,
// but an abstraction.  This scanner does what the hardware does: during
// each dwell it reconstructs the raw amplitude trace of the transmissions
// that actually crossed the dwelt UHF channel, synthesizes USRP-style
// samples, and runs the real SIFT pipeline over them — edge detection,
// Data->SIFS->ACK matching, airtime estimation — plus a faithful B_c
// estimator: counting beacon-pattern matches against the 100 ms beacon
// interval.  It exists to validate the fast scanner (see
// signal_scanner_test.cc: both produce the same observations) and to let
// experiments run end-to-end through the signal domain when desired.
#pragma once

#include <vector>

#include "phy/signal.h"
#include "sift/airtime.h"
#include "sift/batch.h"
#include "sift/detector.h"
#include "sift/matcher.h"
#include "sim/node.h"

namespace whitefi {

/// Configuration of the signal-level scanner.
struct SignalScannerParams {
  SimTime dwell = 250 * kTicksPerMs;
  SiftParams sift;
  SignalParams signal;
  MatcherParams matcher;
  /// Beacon interval assumed when estimating the number of APs from the
  /// rate of beacon-pattern matches.
  SimTime beacon_interval = 100 * kTicksPerMs;
};

/// The secondary radio, measured through the signal domain.
class SignalLevelScanner {
 public:
  SignalLevelScanner(Device& device, const SignalScannerParams& params);

  /// Starts the round-robin band sweep.
  void StartSweep();

  /// Latest per-channel observations.
  const BandObservation& Observation() const { return observation_; }

  /// Completed full sweeps.
  int SweepsCompleted() const { return sweeps_; }

 private:
  struct Heard {
    Us start;        ///< Relative to dwell start.
    Us duration;
    bool own_ssid;   ///< Our own network's transmission (filtered out).
    bool ramp;       ///< 5 MHz ramp artifact applies.
    int frame_bytes;
    ChannelWidth width;
    FrameType type;
  };

  void BeginDwell();
  void EndDwell();
  void OnTap(const Channel& channel, const Frame& frame, const RadioPort& tx);

  Device& device_;
  SignalScannerParams params_;
  /// Persistent multi-lane SIFT classifier — one lane per UHF channel.
  /// Each dwell resets only its channel's lane and streams the synthesized
  /// trace through the shared batch kernel, so the kernel dispatch, the
  /// threshold constants, and the tail buffers stay hot across the sweep
  /// instead of paying a fresh SiftDetector (allocation + dispatch
  /// resolution) per dwell.  Bit-equal to the per-dwell detector by the
  /// batch semantics contract (sift_simd_property_test).
  SiftBatch batch_;
  Rng rng_;
  BandObservation observation_;
  UhfIndex cursor_ = 0;
  int sweeps_ = 0;
  bool sweeping_ = false;
  bool dwelling_ = false;
  SimTime dwell_started_ = 0;
  std::vector<Heard> heard_;
  /// Dwell-loop scratch, reused every EndDwell: the synthesized trace is
  /// dwell-length (hundreds of kilosamples at the USRP rate), so
  /// reallocating it per dwell would dominate the sweep's heap traffic.
  std::vector<double> trace_scratch_;
  std::vector<Burst> burst_scratch_;
};

}  // namespace whitefi
