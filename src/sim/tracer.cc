#include "sim/tracer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "sim/world.h"
#include "util/report.h"

namespace whitefi {

Tracer::Tracer(World& world, const TracerOptions& options)
    : world_(world),
      options_(options),
      counts_(static_cast<std::size_t>(kNumFrameTypes), 0) {
  world_.medium().AddFrameTap(
      [this](const Channel& channel, const Frame& frame, const RadioPort& tx) {
        OnFrame(channel, frame, tx);
      });
}

void Tracer::Record(std::string line) {
  if (options_.live != nullptr) *options_.live << line << "\n";
  if (records_.size() >= options_.max_records) {
    if (!options_.keep_last) return;
    records_.pop_front();
  }
  records_.push_back(TraceRecord{world_.sim().Now(), std::move(line)});
}

void Tracer::OnFrame(const Channel& channel, const Frame& frame,
                     const RadioPort& tx) {
  const auto type_index = static_cast<std::size_t>(frame.type);
  if (type_index < counts_.size()) ++counts_[type_index];
  if (!options_.only.empty() &&
      std::find(options_.only.begin(), options_.only.end(), frame.type) ==
          options_.only.end()) {
    return;
  }
  std::ostringstream os;
  os << "t=" << FormatDouble(ToSeconds(world_.sim().Now()), 6) << "  node "
     << tx.NodeId() << "  " << frame.ToString() << "  on "
     << channel.ToString();
  Record(os.str());
}

void Tracer::Note(const std::string& text) {
  std::ostringstream os;
  os << "t=" << FormatDouble(ToSeconds(world_.sim().Now()), 6) << "  * "
     << text;
  Record(os.str());
}

std::size_t Tracer::CountOf(FrameType type) const {
  const auto index = static_cast<std::size_t>(type);
  return index < counts_.size() ? counts_[index] : 0;
}

std::string Tracer::ToString() const {
  std::ostringstream os;
  for (const TraceRecord& record : records_) os << record.line << "\n";
  return os.str();
}

}  // namespace whitefi
