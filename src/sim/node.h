// Simulated radio devices.
//
// `Device` is one node: a position, one main transceiver (tunable to any
// WhiteFi channel, with a PLL retune delay during which it is deaf) and a
// CSMA/CA MAC.  Protocol roles (WhiteFi AP, WhiteFi client, background
// traffic node) subclass it; traffic generators attach through hooks.
//
// Each device carries its own local incumbent observation: a static TV map
// (per-node, to model spatial variation) plus the set of wireless mics its
// scanner has detected so far.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "sim/mac.h"
#include "sim/medium.h"
#include "spectrum/spectrum_map.h"

namespace whitefi {

class World;

/// Static configuration of a device.
struct DeviceConfig {
  Position position;
  Dbm tx_power = 16.0;  ///< FCC-permitted 40 mW.
  bool is_ap = false;
  int ssid = 0;
  Channel initial_channel{0, ChannelWidth::kW5};
  SpectrumMap tv_map;  ///< Locally observed static incumbents.
  SimTime tune_delay = 5 * kTicksPerMs;  ///< PLL retune time.
  MacParams mac;
};

/// One simulated node.
class Device : public RadioPort, public MacCallbacks {
 public:
  Device(World& world, int id, const DeviceConfig& config);
  ~Device() override;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // -- RadioPort ----------------------------------------------------------
  int NodeId() const override { return id_; }
  Position Location() const override { return config_.position; }
  const Channel& TunedChannel() const override { return channel_; }
  bool RxEnabled() const override;
  bool IsAp() const override { return config_.is_ap; }
  void DeliverFrame(const Frame& frame, Dbm rx_power) override;
  void MediumChanged() override;

  // -- MacCallbacks --------------------------------------------------------
  void MacReceived(const Frame& frame, Dbm rx_power) override;
  void MacSendComplete(const Frame& frame, bool success) override;

  /// Retunes the main radio: aborts the MAC, drops its queue, and disables
  /// reception for the configured tune delay.
  void SwitchChannel(const Channel& channel);

  /// Called once after construction to start protocol behavior.
  virtual void Start() {}

  /// Fast-path incumbent notification: the scanner detected an incumbent
  /// on `channel`, which lies within the device's operating channel.
  virtual void OnIncumbentDetected(UhfIndex channel);

  /// Records a scanner observation of mic presence/absence on a channel.
  void NoteMicObservation(UhfIndex channel, bool present);

  /// The device's current incumbent view: static TV map plus detected mics.
  SpectrumMap ObservedMap() const;

  /// Replaces the device's static TV map (scenario setup and the geo-db
  /// session, whose respected map rides the tv_map slot).
  void SetTvMap(const SpectrumMap& map) { config_.tv_map = map; }

  /// Moves the device (mobility models).  Subsequent propagation reads
  /// the new position; frames already in flight keep the geometry they
  /// were launched with.
  void SetPosition(const Position& position) { config_.position = position; }

  Mac& mac() { return mac_; }
  const Mac& mac() const { return mac_; }
  World& world() { return world_; }
  int ssid() const { return config_.ssid; }
  Dbm tx_power() const { return config_.tx_power; }
  const DeviceConfig& config() const { return config_; }

  /// Registers a hook invoked on every completed send (after OnSendComplete).
  void AddSendCompleteHook(std::function<void(const Frame&, bool)> hook);

  /// Registers a hook invoked on every received frame (after OnFrameReceived).
  void AddReceiveHook(std::function<void(const Frame&)> hook);

 protected:
  /// A frame addressed to this node (or broadcast) arrived.
  virtual void OnFrameReceived(const Frame& frame, Dbm rx_power);

  /// A queued frame finished (delivered or dropped).
  virtual void OnSendComplete(const Frame& frame, bool success);

  /// The radio finished retuning to a new channel.
  virtual void OnChannelSwitched(const Channel& channel);

  World& world_;

 private:
  int id_;
  DeviceConfig config_;
  Channel channel_;
  SimTime rx_enabled_at_ = 0;  ///< Radio deaf until this time (retuning).
  Mac mac_;
  std::set<UhfIndex> detected_mics_;
  std::vector<std::function<void(const Frame&, bool)>> send_hooks_;
  std::vector<std::function<void(const Frame&)>> receive_hooks_;
};

}  // namespace whitefi
