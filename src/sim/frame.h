// MAC frames exchanged in the simulator.
//
// Control payloads (channel-switch announcements, client reports, chirps)
// are carried as typed variants; the `bytes` field is what determines air
// time, so payload sizes are accounted for explicitly.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "sift/airtime.h"
#include "spectrum/channel.h"
#include "spectrum/spectrum_map.h"

namespace whitefi {

/// Broadcast destination address.
inline constexpr int kBroadcastId = -1;

/// Frame types.
enum class FrameType {
  kData = 0,
  kAck,
  kBeacon,         ///< AP beacon (followed by CTS-to-self for SIFT).
  kCts,            ///< CTS-to-self.
  kChirp,          ///< Disconnection chirp on the backup channel.
  kChannelSwitch,  ///< AP's switch announcement.
  kReport,         ///< Client's spectrum map + airtime report.
};

/// Number of FrameType values (for per-type count arrays).
inline constexpr int kNumFrameTypes = 7;

/// Human-readable frame-type name.
const char* FrameTypeName(FrameType type);

/// Beacon payload: the AP's operating and backup channels.
struct BeaconInfo {
  Channel main;
  Channel backup;
  int ssid = 0;
};

/// Channel-switch announcement payload.
struct ChannelSwitchInfo {
  Channel new_channel;
  Channel new_backup;
};

/// Client report payload: observed incumbent map and airtime observations.
struct ReportInfo {
  SpectrumMap map;
  BandObservation observation;
};

/// Chirp payload: the chirping node's white-space availability.  The SSID
/// id is also length-coded into the chirp's air time so an AP can filter
/// foreign chirps with SIFT alone (paper Section 4.3).
struct ChirpInfo {
  SpectrumMap map;
  BandObservation observation;
  int ssid = 0;
  int sender = -1;
  /// Causal flow id of the sender's recovery (flight recorder); 0 when
  /// no trace is attached.  Carried in-band so the AP's rescue continues
  /// the same flow and chrome://tracing draws the client -> AP arrow.
  std::int64_t trace_flow = 0;
};

/// One MAC frame.
struct Frame {
  FrameType type = FrameType::kData;
  int src = -1;
  int dst = kBroadcastId;
  int bytes = 0;           ///< Total MAC frame size driving air time.
  std::uint64_t seq = 0;   ///< Per-source sequence number.
  std::variant<std::monostate, BeaconInfo, ChannelSwitchInfo, ReportInfo,
               ChirpInfo>
      payload;

  /// True iff the frame is broadcast (never ACKed).
  bool IsBroadcast() const { return dst == kBroadcastId; }

  /// Debug label like "Data(3->7, 1028B)".
  std::string ToString() const;
};

}  // namespace whitefi
