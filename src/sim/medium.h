// The shared radio medium.
//
// Implements the paper's QualNet modifications faithfully:
//  * variable-width channels: a frame is decodable only by radios tuned to
//    exactly the same (F, W) — "at every node, we explicitly drop packets
//    that were sent at a different channel width";
//  * energy-based carrier sense across overlapping channels of different
//    widths: a node spanning multiple UHF channels senses busy if ANY of
//    its spanned UHF channels carries energy above threshold;
//  * SINR-based reception with cumulative interference from time-
//    overlapping transmissions and width-scaled noise floors;
//  * half-duplex radios.
//
// The medium also keeps per-UHF-channel airtime books (union busy time and
// cumulative per-transmitter air time) that the scanner model reads to
// produce the A_c / B_c observations feeding the MCham metric.
//
// Fast path (DESIGN.md §10): active transmissions are indexed per UHF
// channel, so Transmit/CarrierSensed only examine transmissions whose
// spectrum actually overlaps the frame at hand instead of scanning every
// transmission on the air, and the airtime books accrue lazily per channel
// (one timestamp each) instead of walking all 30 channels on every
// transmit/end.  Sim time is integer microseconds and `ToUs` is exact, so
// the lazily-partitioned busy sums are bit-equal to the eager walk.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "obs/obs.h"
#include "sim/events.h"
#include "sim/frame.h"
#include "sim/propagation.h"
#include "spectrum/channel.h"
#include "spectrum/uhf.h"
#include "util/units.h"

namespace whitefi {

/// Radio/medium configuration.
struct MediumParams {
  PropagationParams propagation;
  /// Carrier sense against a transmission on exactly our (F, W): preamble
  /// detection works, so the threshold is low (long range).
  Dbm same_channel_cs_dbm = -85.0;
  /// Carrier sense against an overlapping transmission of a different
  /// width or center: the radio cannot synchronize to it and falls back to
  /// energy detection (802.11-style ~-62 dBm), applied to the fraction of
  /// the foreign signal's power that lands in our band.  This asymmetry is
  /// what makes wide channels fragile over busy narrow channels: distant
  /// narrow transmitters are deaf to the wide signal and collide with it.
  Dbm energy_detect_cs_dbm = -62.0;
  /// Minimum SINR to decode.  Set well above the AWGN requirement: a frame
  /// overlapped by an unsynchronized foreign transmission (the cross-width
  /// collision case) needs a large margin to survive, which is what makes
  /// wide channels degrade over busy narrow channels as in the paper.
  double decode_snr_db = 16.0;
};

/// Fraction of a transmission's power (linear, <= 1) that falls within the
/// listener's band: spanned-UHF-channel overlap over the transmitter span.
double InBandPowerFraction(const Channel& tx, const Channel& listener);

/// Medium-facing view of one radio.  Registered by devices.
class RadioPort {
 public:
  virtual ~RadioPort() = default;

  /// Stable node id.
  virtual int NodeId() const = 0;

  /// Physical location (static).
  virtual Position Location() const = 0;

  /// Channel the main radio is tuned to.
  virtual const Channel& TunedChannel() const = 0;

  /// False while the PLL is retuning or the node is down; no carrier
  /// sense callbacks and no delivery happen in that state.
  virtual bool RxEnabled() const = 0;

  /// True iff the registered node is an access point (used for the B_c
  /// "interfering APs" books).
  virtual bool IsAp() const = 0;

  /// Called when a frame ends and passes the decode checks at this radio.
  virtual void DeliverFrame(const Frame& frame, Dbm rx_power) = 0;

  /// Called whenever a transmission starts or ends anywhere on spectrum
  /// overlapping this radio's channel (MACs re-evaluate carrier here).
  virtual void MediumChanged() = 0;
};

/// Cumulative airtime books for one UHF channel.
struct ChannelBooks {
  Us busy = 0.0;  ///< Union busy air time since simulation start.
  std::map<int, Us> per_node;  ///< Cumulative air time by transmitter id.
};

/// Snapshot of all 30 channels' books.
using AirtimeBooks = std::array<ChannelBooks, static_cast<std::size_t>(kNumUhfChannels)>;

/// The shared medium.
class Medium {
 public:
  Medium(Simulator& sim, const MediumParams& params);

  /// Registers a radio; it must outlive the medium or be unregistered.
  void Register(RadioPort* radio);

  /// Unregisters a radio.
  void Unregister(RadioPort* radio);

  /// Starts a transmission of `frame` on `channel` lasting `duration`.
  /// Delivery and notifications are handled internally; the caller gets
  /// `on_end` invoked when the air time elapses.
  void Transmit(RadioPort* tx, const Channel& channel, const Frame& frame,
                Dbm tx_power, SimTime duration, std::function<void()> on_end);

  /// Injects cross-shard "ghost" energy: a transmission by `node_id`, a
  /// node that lives in another shard, radiating from `position` at
  /// `tx_power` for `duration` starting now.  The ghost participates in
  /// carrier sense, SINR interference, the airtime books, and the frame
  /// taps exactly like a local transmission — so scanners measure it and
  /// chirp watches hear it — but it is never delivered to any radio (its
  /// frames terminate in the owning shard) and it never re-fires the
  /// energy taps (a ghost must not be re-exported across a boundary).
  /// See src/shard for the boundary that feeds this.
  void InjectForeignEnergy(int node_id, bool is_ap, const Position& position,
                           const Channel& channel, const Frame& frame,
                           Dbm tx_power, SimTime duration);

  /// True iff energy above the CS threshold from a foreign transmission is
  /// present on any UHF channel spanned by `channel`, as seen at `radio`.
  bool CarrierSensed(const RadioPort& radio, const Channel& channel) const;

  /// True iff `radio` itself is currently transmitting.
  bool Transmitting(const RadioPort& radio) const;

  /// Brings the airtime books current and returns a copy.
  AirtimeBooks SnapshotBooks();

  /// Brings one channel's books current and returns a reference — the
  /// no-copy path for per-dwell B_c estimation, bit-equal to
  /// `SnapshotBooks()[c]`.  The reference stays valid until the medium is
  /// destroyed but its contents advance with simulated time; copy the
  /// single ChannelBooks (not all 30) to freeze a "before" point.
  const ChannelBooks& ChannelBooksAt(UhfIndex c);

  /// Set of AP node ids with non-zero air time on UHF channel `c` between
  /// two snapshots (helper for B_c estimation).
  static std::vector<int> ActiveApsBetween(const AirtimeBooks& before,
                                           const AirtimeBooks& after,
                                           UhfIndex c,
                                           const std::vector<int>& ap_ids);

  /// Single-channel overload over per-channel snapshots (see
  /// ChannelBooksAt); identical results to the all-channel form.
  static std::vector<int> ActiveApsBetween(const ChannelBooks& before,
                                           const ChannelBooks& after,
                                           const std::vector<int>& ap_ids);

  /// Number of transmissions started since construction.
  std::uint64_t NumTransmissions() const { return next_tx_id_ - 1; }

  /// Ids of registered radios flagged as APs.
  std::vector<int> ApIds() const;

  /// A tap invoked after every completed transmission, regardless of any
  /// receiver's tuning — this is how SIFT-style observers (scanners) see
  /// energy they cannot decode.  Taps must not call Transmit synchronously.
  using FrameTap =
      std::function<void(const Channel&, const Frame&, const RadioPort& tx)>;

  /// Registers a tap (never removed; keep captured objects alive).
  void AddFrameTap(FrameTap tap);

  /// Everything a shard boundary needs to re-emit a transmission remotely.
  /// References are valid only for the duration of the tap call.
  struct EnergyTapInfo {
    const Channel& channel;
    const Frame& frame;
    const RadioPort& tx;
    Dbm power;
    SimTime start;
    SimTime end;
  };

  /// A tap invoked after every completed LOCAL transmission with the full
  /// energy description (power, interval, transmitter position via `tx`).
  /// Ghost transmissions injected with InjectForeignEnergy never fire it,
  /// so a sharded federation cannot echo energy back and forth.  Like
  /// frame taps, energy taps must not call Transmit synchronously.
  using EnergyTap = std::function<void(const EnergyTapInfo&)>;

  /// Registers an energy tap (never removed).
  void AddEnergyTap(EnergyTap tap);

  /// Attaches metrics/trace/profiler sinks (any pointer may be null).
  /// Counter handles are resolved here, once, so the per-frame cost is a
  /// null check.  Called by World; must precede traffic.
  void SetObservability(const Observability& obs);

  /// Attaches the fault injector (may be null = no faults).  Consulted
  /// after the SINR decode check for every otherwise-deliverable frame.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  const MediumParams& params() const { return params_; }
  const PropagationModel& propagation() const { return prop_; }

 private:
  struct ActiveTx {
    std::uint64_t id;
    RadioPort* tx;
    Channel channel;
    Frame frame;
    Dbm power;
    SimTime start;
    SimTime end;
    /// Transmissions that overlapped this one in time AND spectrum.
    std::vector<std::uint64_t> interferers;
    /// Cross-shard ghost energy: sensed and booked, never delivered.
    bool foreign = false;
  };

  /// Medium-side stand-in for a transmitter that lives in another shard:
  /// it radiates (ghost transmissions reference it for position/id) but
  /// never receives, so it is kept out of `radios_`.
  struct ForeignSource final : RadioPort {
    int id = 0;
    bool ap = false;
    Position pos;
    Channel tuned{0, ChannelWidth::kW5};

    int NodeId() const override { return id; }
    Position Location() const override { return pos; }
    const Channel& TunedChannel() const override { return tuned; }
    bool RxEnabled() const override { return false; }
    bool IsAp() const override { return ap; }
    void DeliverFrame(const Frame&, Dbm) override {}
    void MediumChanged() override {}
  };

  void StartTransmission(RadioPort* tx, const Channel& channel,
                         const Frame& frame, Dbm tx_power, SimTime duration,
                         bool foreign, std::function<void()> on_end);
  void EndTransmission(std::uint64_t tx_id, std::function<void()> on_end);
  void ResolveReceptions(const ActiveTx& tx);
  void NotifyOverlapping(const Channel& channel);
  /// Brings one UHF channel's busy book current (lazy accrual).
  void AccrueChannel(std::size_t c);
  double InterferencePowerMw(const ActiveTx& tx, const RadioPort& rx) const;
  const ActiveTx* FindTx(std::uint64_t id) const;

  Simulator& sim_;
  MediumParams params_;
  PropagationModel prop_;
  std::vector<RadioPort*> radios_;
  /// Cross-shard transmitters by node id (ordered so ApIds is stable).
  std::map<int, std::unique_ptr<ForeignSource>> foreign_sources_;
  std::vector<FrameTap> taps_;
  std::vector<EnergyTap> energy_taps_;
  std::unordered_map<std::uint64_t, ActiveTx> active_;
  /// Finished transmissions kept until no active transmission references
  /// them as interferers.
  std::map<std::uint64_t, ActiveTx> recently_ended_;
  /// Ids of recently_ended_ entries in insertion order.  Insertion happens
  /// at each transmission's end time, so this is end-time order and GC only
  /// ever has to examine the expired prefix instead of the whole map.
  std::deque<std::uint64_t> ended_order_;
  std::uint64_t next_tx_id_ = 1;

  /// Per-UHF-channel index of active transmissions: a transmission spanning
  /// [Low, High] appears in every spanned channel's list.  Queries over a
  /// channel span visit each transmission exactly once by only processing
  /// it at the first spanned channel inside the query range.  Pointees are
  /// unordered_map nodes, so they are stable until erased.
  std::array<std::vector<ActiveTx*>, static_cast<std::size_t>(kNumUhfChannels)>
      channel_txs_;
  /// Number of active transmissions per transmitting radio (O(1)
  /// Transmitting checks; erased when the count returns to zero).
  std::unordered_map<const RadioPort*, int> radio_tx_count_;

  // Airtime accounting.
  AirtimeBooks books_;
  std::array<int, static_cast<std::size_t>(kNumUhfChannels)> active_count_{};
  /// Per-channel lazy-accrual timestamp: books_[c].busy is current up to
  /// channel_accrued_at_[c].
  std::array<SimTime, static_cast<std::size_t>(kNumUhfChannels)>
      channel_accrued_at_{};

  // Observability (all optional).  Per-frame-type counter handles are
  // pre-resolved: whitefi.medium.{tx,rx,drop}.<Type>.
  Observability obs_;
  FaultInjector* faults_ = nullptr;
  /// Ghost transmissions injected (kept out of the per-type tx counters so
  /// aggregate medium stats never double-count a cross-shard frame).
  Counter* foreign_counter_ = nullptr;
  std::array<Counter*, kNumFrameTypes> tx_counters_{};
  std::array<Counter*, kNumFrameTypes> rx_counters_{};
  std::array<Counter*, kNumFrameTypes> drop_counters_{};
};

}  // namespace whitefi
