// World: one simulation scenario.
//
// Owns the simulator, the medium, the devices, the microphone schedule and
// the application-level delivery counters that benches read as throughput.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "obs/obs.h"
#include "sim/events.h"
#include "sim/medium.h"
#include "sim/node.h"
#include "spectrum/incumbents.h"
#include "util/rng.h"

namespace whitefi {

/// Scenario-wide configuration.
struct WorldConfig {
  std::uint64_t seed = 1;
  MediumParams medium;
  /// Latency between a mic switching on within a node's operating channel
  /// and the node's scanner flagging it (fast sensing path).
  SimTime incumbent_detect_latency = 100 * kTicksPerMs;
  /// Optional metrics / event-trace / profiler sinks (non-owning; they
  /// must outlive the World).  All null by default: instrumentation off.
  Observability obs;
  /// Optional fault injector (non-owning; must outlive the World).  Null
  /// by default: every injection point is a dead branch and the
  /// simulation is bit-identical to a world without the fault subsystem.
  FaultInjector* faults = nullptr;
  /// First node id handed out by Create<T>().  Sharded runs give each
  /// tile's world a disjoint id range so node ids stay globally unique
  /// across tiles (cross-shard ghost energy is booked under the sender's
  /// real id).
  int first_node_id = 1;
};

/// One simulation scenario.
class World {
 public:
  explicit World(const WorldConfig& config = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  Simulator& sim() { return sim_; }
  Medium& medium() { return medium_; }
  const WorldConfig& config() const { return config_; }

  /// Observability sinks shared by every component in this world.  The
  /// pointers inside may be null.
  const Observability& obs() const { return config_.obs; }
  MetricsRegistry* metrics() const { return config_.obs.metrics; }
  EventTrace* trace() const { return config_.obs.trace; }
  PhaseProfiler* profiler() const { return config_.obs.profiler; }

  /// The fault injector, or null when no faults are configured.
  FaultInjector* faults() const { return config_.faults; }

  /// Appends a structured trace event stamped with the current simulated
  /// time; no-op when no trace is attached.
  void TraceEventNow(TraceEvent event);

  /// Fresh span/flow identifier for the causal flight recorder.  The
  /// counter always advances (attached or not) so ids are stable across
  /// observability configurations; they only surface inside traces.
  std::int64_t NextTraceId() { return ++next_trace_id_; }

  /// Records that `node` entered protocol state `state` (e.g. a client
  /// moving connected -> chirping).  Feeds both the StateTimeline and a
  /// kStateEnter trace event at the same tick, which is what keeps
  /// trace-derived phase breakdowns exactly equal to the timeline.
  /// No-op when neither sink is attached.
  void RecordState(int node, std::string_view state);

  /// Flow id of the most recent active mic on `c` audible to `node_id`;
  /// 0 when none.  Lets a node continue the causal flow the incumbent
  /// event opened (mic-on -> detect -> vacate -> ... -> reconnect).
  std::int64_t MicFlowId(UhfIndex c, int node_id) const;

  /// Emits a kSpanBegin / kSpanEnd record (no-op when no trace is
  /// attached).  `name` goes in detail and must match between the pair;
  /// pass the end's `flow` to terminate a flow arrow at the span close.
  void TraceSpanBegin(int node, std::int64_t id, std::int64_t parent,
                      std::int64_t flow, std::string_view name);
  void TraceSpanEnd(int node, std::int64_t id, std::int64_t flow,
                    std::string_view name);

  /// Ticks since the most recent active mic on channel `c` switched on;
  /// nullopt when none is active.  Feeds the incumbent reaction-latency
  /// histogram.
  std::optional<SimTime> MicOnSince(UhfIndex c) const;

  /// Independent RNG stream for a component.
  Rng NewRng() { return rng_.Fork(); }

  /// Constructs and owns a device of type T (Device-derived); T's
  /// constructor must be (World&, int id, args...).
  template <typename T, typename... Args>
  T& Create(Args&&... args) {
    auto device = std::make_unique<T>(*this, next_id_++,
                                      std::forward<Args>(args)...);
    T& ref = *device;
    devices_.push_back(std::move(device));
    return ref;
  }

  /// All devices.
  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Device by node id; nullptr if unknown.
  Device* FindDevice(int id);

  /// Node ids in the given SSID.
  std::vector<int> NodesInSsid(int ssid) const;

  /// Calls Start() on every device (construction order).
  void StartAll();

  /// Installs the mic schedule: each activation flips occupancy at its
  /// on/off times and triggers fast-path incumbent detection at devices
  /// whose operating channel covers the mic channel.
  void SetMicSchedule(std::vector<MicActivation> mics);

  /// Adds one mic audible only to the given node ids (empty = everyone).
  /// A mic with limited audibility models spatial variation: e.g. a mic
  /// next to one client that the AP cannot sense.
  void AddMic(const MicActivation& mic, std::vector<int> audible_to = {});

  /// True iff a scheduled mic is transmitting on `c` right now (regardless
  /// of who can hear it).
  bool MicActiveNow(UhfIndex c) const;

  /// True iff node `node_id` can currently sense a mic on channel `c`.
  bool MicAudible(UhfIndex c, int node_id) const;

  /// Ticks since the most recent active mic on `c` audible to `node_id`
  /// switched on; nullopt when none.  The audibility-filtered MicOnSince,
  /// used by the incumbent-safety audit: a mic a node physically cannot
  /// sense (spatial variation) must not count against that node.
  std::optional<SimTime> MicAudibleOnSince(UhfIndex c, int node_id) const;

  // -- Application throughput accounting ----------------------------------

  /// Records application payload delivery to node `dst`.
  void RecordAppBytes(int dst, int bytes);

  /// Clears all delivery counters (e.g. after warm-up).
  void ResetAppBytes();

  /// Payload bytes delivered to `dst` since the last reset.
  std::uint64_t AppBytes(int dst) const;

  /// Sum of payload bytes delivered to every node in `ssid`.
  std::uint64_t AppBytesInSsid(int ssid) const;

  /// Convenience: runs the simulation for `seconds`.
  void RunFor(double seconds);

 private:
  struct WorldMic {
    MicActivation mic;
    std::vector<int> audible_to;  ///< Empty = audible to every node.
    // Tick-resolution activity window (avoids double/tick boundary skew).
    SimTime on_ticks = 0;
    SimTime off_ticks = 0;
    /// Causal flow id shared by this mic's on/off trace events and every
    /// protocol reaction they trigger.
    std::int64_t flow = 0;

    bool ActiveAtTick(SimTime t) const { return t >= on_ticks && t < off_ticks; }
  };

  void ApplyMicTransition(const WorldMic& mic, bool on);

  WorldConfig config_;
  Rng rng_;
  Simulator sim_;
  Medium medium_;
  int next_id_;
  std::int64_t next_trace_id_ = 0;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<WorldMic> mics_;
  std::map<int, std::uint64_t> app_bytes_;
};

}  // namespace whitefi
