#include "sim/events.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace whitefi {

namespace {

/// Highest byte index in which two times differ (0 when equal): the wheel
/// level an event at `time` occupies relative to cursor `cur`.
inline int LevelOf(std::uint64_t time, std::uint64_t cur) {
  const std::uint64_t diff = time ^ cur;
  if (diff == 0) return 0;
  return (63 - std::countl_zero(diff)) >> 3;
}

}  // namespace

Simulator::Simulator() : buckets_(kNumBuckets) {}

std::uint32_t Simulator::AllocSlot() {
  if (free_slots_.empty()) GrowArena();
  const std::uint32_t index = free_slots_.back();
  free_slots_.pop_back();
  return index;
}

void Simulator::GrowArena() {
  const auto base = static_cast<std::uint32_t>(chunks_.size()) * kChunkSize;
  assert(base + kChunkSize - 1 <= kSlotMask);
  chunks_.push_back(std::make_unique<Chunk>());
  generation_.resize(base + kChunkSize, 1);
  loc_.resize(base + kChunkSize, Location{kNoIndex, 0});
  // Lowest index on top of the free stack.
  for (std::uint32_t i = kChunkSize; i-- > 0;) free_slots_.push_back(base + i);
}

void Simulator::ReleaseSlot(std::uint32_t index) {
  if (++generation_[index] == 0) generation_[index] = 1;  // Skip sentinel 0.
  loc_[index].bucket = kNoIndex;
  free_slots_.push_back(index);
}

EventId Simulator::PushScheduled(SimTime at, std::uint32_t index) {
  PlaceEntry(Entry{std::max(at, now_), (next_seq_++ << kSlotBits) | index});
  ++pending_;
  return (static_cast<EventId>(generation_[index]) << 32) | index;
}

void Simulator::PlaceEntry(const Entry& entry) {
  const int level = LevelOf(static_cast<std::uint64_t>(entry.time),
                            static_cast<std::uint64_t>(cur_));
  const auto index = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(entry.time) >> (kLevelBits * level)) &
      kByteMask);
  const std::uint32_t bucket = level * kBucketsPerLevel + index;
  std::vector<Entry>& b = buckets_[bucket];
  loc_[entry.key & kSlotMask] =
      Location{bucket, static_cast<std::uint32_t>(b.size())};
  b.push_back(entry);
  SetOcc(level, index);
}

int Simulator::NextOccupied(int level, std::uint32_t from) const {
  if (from >= kBucketsPerLevel) return -1;
  std::uint32_t word = from >> 6;
  std::uint64_t bits = occ_[level][word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>(word * 64 +
                              static_cast<std::uint32_t>(std::countr_zero(bits)));
    }
    if (++word == kBucketsPerLevel / 64) return -1;
    bits = occ_[level][word];
  }
}

void Simulator::Cascade(int level, std::uint32_t index, SimTime window_start) {
  // Advancing the cursor first is what makes every entry land strictly
  // lower: their byte `level` now matches the cursor's.
  cur_ = window_start;
  std::vector<Entry>& b = buckets_[level * kBucketsPerLevel + index];
  for (const Entry& entry : b) PlaceEntry(entry);
  b.clear();
  ClearOcc(level, index);
}

void Simulator::EnterDrain(std::uint32_t bucket, SimTime tick) {
  std::vector<Entry>& b = buckets_[bucket];
  if (b.size() > 1) {
    // Keys are (seq << kSlotBits | slot), so this is schedule order — the
    // determinism contract.  Bucket order is arbitrary here (cascades and
    // swap-remove cancellations shuffle it); the sort happens exactly once
    // per tick, and same-tick events scheduled during the drain append in
    // seq order so they stay sorted.
    std::sort(b.begin(), b.end(),
              [](const Entry& x, const Entry& y) { return x.key < y.key; });
    for (std::uint32_t pos = 0; pos < b.size(); ++pos) {
      loc_[b[pos].key & kSlotMask].pos = pos;
    }
  }
  draining_ = bucket;
  draining_tick_ = tick;
  drain_pos_ = 0;
}

bool Simulator::PrepareNext(SimTime until) {
  for (;;) {
    if (draining_ != kNoIndex) {
      std::vector<Entry>& b = buckets_[draining_];
      while (drain_pos_ < b.size() && b[drain_pos_].key == kDeadKey) {
        ++drain_pos_;
      }
      if (drain_pos_ < b.size()) return draining_tick_ <= until;
      b.clear();
      ClearOcc(0, draining_);
      draining_ = kNoIndex;
      drain_pos_ = 0;
    }
    if (pending_ == 0) return false;
    const auto cur = static_cast<std::uint64_t>(cur_);
    // A level-0 hit in the current 256-tick window is always the global
    // minimum: any higher-level window starts past this window's end.
    const int tick_bit =
        NextOccupied(0, static_cast<std::uint32_t>(cur & kByteMask));
    if (tick_bit >= 0) {
      const auto tick = static_cast<SimTime>((cur & ~std::uint64_t{kByteMask}) |
                                             static_cast<std::uint64_t>(tick_bit));
      if (tick > until) return false;
      EnterDrain(static_cast<std::uint32_t>(tick_bit), tick);
      continue;
    }
    // Cascade the lowest occupied level's next bucket: for L < L', window
    // W_L < W_{L'} (W_L keeps the cursor's byte L' while W_{L'} exceeds
    // it), so the lowest level always holds the earliest work.
    for (int level = 1; level < kNumLevels; ++level) {
      const auto byte = static_cast<std::uint32_t>(
          (cur >> (kLevelBits * level)) & kByteMask);
      const int bit = NextOccupied(level, byte + 1);
      if (bit < 0) continue;
      const std::uint64_t window_mask =
          level + 1 == kNumLevels
              ? ~std::uint64_t{0}
              : (std::uint64_t{1} << (kLevelBits * (level + 1))) - 1;
      const auto window_start = static_cast<SimTime>(
          (cur & ~window_mask) |
          (static_cast<std::uint64_t>(bit) << (kLevelBits * level)));
      if (window_start > until) return false;
      Cascade(level, static_cast<std::uint32_t>(bit), window_start);
      break;
    }
    // pending_ > 0 guarantees some level matched; loop to re-scan level 0.
  }
}

bool Simulator::Cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (generation == 0) return false;  // kInvalidEventId or malformed.
  if (static_cast<std::size_t>(index) >= generation_.size()) {
    return false;  // Never-issued slot.
  }
  if (generation_[index] != generation) {
    return false;  // Already fired or cancelled; nothing retained.
  }
  const Location loc = loc_[index];
  assert(loc.bucket != kNoIndex);
  std::vector<Entry>& b = buckets_[loc.bucket];
  if (loc.bucket == draining_) {
    // The sorted drain order must survive, so dead-mark in place; the
    // entry is reclaimed when the tick finishes draining.
    b[loc.pos].key = kDeadKey;
  } else {
    // Swap-remove: O(1), and order within a bucket is irrelevant until
    // its drain-time sort.
    b[loc.pos] = b.back();
    b.pop_back();
    if (loc.pos < b.size()) loc_[b[loc.pos].key & kSlotMask].pos = loc.pos;
    if (b.empty()) {
      ClearOcc(static_cast<int>(loc.bucket / kBucketsPerLevel),
               loc.bucket % kBucketsPerLevel);
    }
  }
  CbAt(index).Reset();  // Destroy the callback eagerly.
  ReleaseSlot(index);
  --pending_;
  return true;
}

void Simulator::FireLoop(SimTime until) {
  stopped_ = false;
  while (!stopped_ && PrepareNext(until)) {
    const Entry entry = buckets_[draining_][drain_pos_++];
    const auto index = static_cast<std::uint32_t>(entry.key & kSlotMask);
    now_ = entry.time;
    cur_ = entry.time;
    EventCallback cb = std::move(CbAt(index));
    // Release before invoking: the callback may reschedule into this slot,
    // and Cancel of the now-fired id must miss (generation already bumped).
    ReleaseSlot(index);
    --pending_;
    ++processed_;
    cb();
  }
}

void Simulator::Run(SimTime until) {
  FireLoop(until);
  if (!stopped_) now_ = std::max(now_, until);
}

void Simulator::RunUntilIdle() {
  FireLoop(std::numeric_limits<SimTime>::max());
}

}  // namespace whitefi
