#include "sim/events.h"

#include <algorithm>

namespace whitefi {

EventId Simulator::Schedule(SimTime at, Callback cb) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(at, now_), id, std::move(cb)});
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  if (id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

void Simulator::Run(SimTime until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Event& top = queue_.top();
    if (top.time > until) break;
    Event event{top.time, top.id, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    if (cancelled_.erase(event.id) > 0) continue;
    now_ = event.time;
    ++processed_;
    event.cb();
  }
  if (!stopped_) now_ = std::max(now_, until);
}

void Simulator::RunUntilIdle() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event event{queue_.top().time, queue_.top().id,
                std::move(const_cast<Event&>(queue_.top()).cb)};
    queue_.pop();
    if (cancelled_.erase(event.id) > 0) continue;
    now_ = event.time;
    ++processed_;
    event.cb();
  }
}

}  // namespace whitefi
