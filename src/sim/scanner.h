// The secondary scanning radio.
//
// Every KNOWS device carries, besides its transceiver, a scanner (USRP)
// that sweeps the UHF band to (a) detect incumbents and (b) measure, per
// UHF channel, the busy airtime A_c and the number of foreign APs B_c —
// the inputs to the MCham metric.  The paper's prototype dwells 1 s per
// channel; the dwell is configurable here.
//
// The scanner also provides the background chirp watch of Section 4.3: it
// visits the AP's backup channel every `chirp_scan_interval` and reports
// any chirp frames that end during the dwell, identified by their SIFT
// length-code, without touching the main radio.
#pragma once

#include <functional>
#include <optional>

#include "sift/airtime.h"
#include "sim/node.h"

namespace whitefi {

/// Scanner configuration.
struct ScannerParams {
  /// Dwell per UHF channel during the sweep.  The paper's prototype uses
  /// 1 s; simulations use a shorter dwell so the metric converges faster.
  SimTime dwell = 250 * kTicksPerMs;
  /// Gaussian noise added to airtime measurements.
  double airtime_noise_stddev = 0.01;
  /// How often the chirp watch visits the backup channel (paper: 3 s).
  SimTime chirp_scan_interval = 3 * kTicksPerSec;
  /// How long the chirp watch stays on the backup channel per visit.
  SimTime chirp_scan_dwell = 300 * kTicksPerMs;
  /// Hardening: when a chirp-watch visit falls inside a scanner outage,
  /// probe again every `outage_retry_interval` until the hardware is back
  /// (then dwell immediately) instead of leaving chirpers unheard until
  /// the next regular visit.  Only ever active when a fault injector is
  /// attached, so the default costs nothing in clean runs.
  bool outage_retry = true;
  SimTime outage_retry_interval = 500 * kTicksPerMs;
};

/// Throws std::invalid_argument when any ScannerParams field is out of
/// range (non-positive dwell/intervals, negative noise).
void ValidateScannerParams(const ScannerParams& params);

/// The secondary radio of one device.
class Scanner {
 public:
  Scanner(Device& device, const ScannerParams& params);

  /// Starts the round-robin band sweep.
  void StartSweep();

  /// Latest per-channel observations (airtime, AP count, incumbent flag).
  const BandObservation& Observation() const { return observation_; }

  /// Number of completed full sweeps of the band.
  int SweepsCompleted() const { return sweeps_; }

  // -- Chirp watch ---------------------------------------------------------

  /// Callback for heard chirps: payload plus the channel it was heard on.
  using ChirpCallback = std::function<void(const ChirpInfo&, const Channel&)>;

  /// Begins watching `backup` for chirps of SSID `ssid`; `on_chirp` fires
  /// with the chirp payload and the channel it arrived on.  Chirps are
  /// also picked up opportunistically whenever the regular band sweep is
  /// dwelling on the chirp's channel — this implements the paper's
  /// "periodically scans all channels in an attempt to reconnect with
  /// 'lost' nodes" (a client chirping on a stale or secondary backup).
  void StartChirpWatch(Channel backup, int ssid, ChirpCallback on_chirp);

  /// Changes the watched backup channel.
  void SetChirpChannel(Channel backup) { chirp_channel_ = backup; }

  /// Hardening: also watch a secondary rendezvous channel (the
  /// deterministic secondary backup escalated chirpers fall back to).
  /// When set, chirp-watch visits alternate between the primary backup
  /// and this channel; nullopt (the default) restores the plain
  /// single-channel watch.
  void SetSecondaryChirpChannel(std::optional<Channel> secondary) {
    secondary_chirp_channel_ = secondary;
  }

  /// Stops the chirp watch.
  void StopChirpWatch();

  /// Medium-side hook: the world's chirp tap calls this for every chirp
  /// frame transmitted anywhere; the scanner filters by channel/ssid and
  /// by whether it is currently dwelling on the backup channel.
  void OfferChirp(const Channel& channel, const ChirpInfo& info);

 private:
  void BeginDwell();
  void EndDwell();
  void ChirpVisit();
  void ChirpRetryVisit();

  Device& device_;
  ScannerParams params_;
  Rng rng_;
  BandObservation observation_;
  UhfIndex cursor_ = 0;
  int sweeps_ = 0;
  bool sweeping_ = false;
  /// Books of the dwelt channel at dwell start — a dwell only ever reads
  /// the channel it sits on, so freezing one ChannelBooks (instead of a
  /// full 30-channel SnapshotBooks copy) is the whole "before" state.
  ChannelBooks dwell_start_books_;

  bool chirp_watch_ = false;
  bool chirp_dwelling_ = false;
  bool retry_pending_ = false;
  Channel chirp_channel_{0, ChannelWidth::kW5};
  std::optional<Channel> secondary_chirp_channel_;
  /// True while the current dwell is on the secondary rendezvous channel
  /// (snapshotted in secondary_watch_); primary dwells keep following
  /// chirp_channel_ live, exactly as before the secondary watch existed.
  bool secondary_dwell_ = false;
  bool next_visit_secondary_ = false;
  Channel secondary_watch_{0, ChannelWidth::kW5};
  int chirp_ssid_ = 0;
  ChirpCallback on_chirp_;
};

}  // namespace whitefi
