#include "sim/scanner.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "sim/world.h"

namespace whitefi {

void ValidateScannerParams(const ScannerParams& params) {
  if (params.dwell <= 0) {
    throw std::invalid_argument("scanner dwell must be positive");
  }
  if (params.airtime_noise_stddev < 0.0) {
    throw std::invalid_argument(
        "scanner airtime noise stddev must be non-negative");
  }
  if (params.chirp_scan_interval <= 0 || params.chirp_scan_dwell <= 0) {
    throw std::invalid_argument(
        "scanner chirp scan interval and dwell must be positive");
  }
  if (params.outage_retry_interval <= 0) {
    throw std::invalid_argument(
        "scanner outage retry interval must be positive");
  }
}

Scanner::Scanner(Device& device, const ScannerParams& params)
    : device_(device),
      params_(params),
      rng_(device.world().NewRng()),
      observation_(EmptyBandObservation()) {
  ValidateScannerParams(params_);
}

void Scanner::StartSweep() {
  if (sweeping_) return;
  sweeping_ = true;
  cursor_ = 0;
  BeginDwell();
}

void Scanner::BeginDwell() {
  World& world = device_.world();
  FaultInjector* const faults = world.faults();
  if (faults != nullptr && faults->ScannerDown(world.sim().Now())) {
    // Scanner hardware outage: nothing can be measured; idle one dwell
    // and retry (the sweep neither advances nor serves data).
    MetricsRegistry::Count(world.metrics(), "whitefi.scanner.outage_dwells");
    world.sim().ScheduleAfter(params_.dwell, [this] { BeginDwell(); });
    return;
  }
  // Incumbent-occupied channels are flagged immediately (feature detection
  // is fast); airtime dwell is only spent on channels worth measuring.
  for (int hops = 0; hops <= kNumUhfChannels; ++hops) {
    if (hops == kNumUhfChannels) {
      // Entire band incumbent-occupied: idle one dwell and retry.
      world.sim().ScheduleAfter(params_.dwell, [this] { BeginDwell(); });
      return;
    }
    const auto idx = static_cast<std::size_t>(cursor_);
    const bool tv = device_.config().tv_map.Occupied(cursor_);
    bool mic = world.MicAudible(cursor_, device_.NodeId());
    // SIFT missed detection: the feature detector overlooks a real mic,
    // so the channel proceeds to a normal airtime dwell instead.
    if (mic && faults != nullptr && faults->MissIncumbent(world.sim().Now())) {
      mic = false;
    }
    if (tv || mic) {
      observation_[idx].incumbent = true;
      observation_[idx].airtime = 0.0;
      observation_[idx].ap_count = 0;
      if (!tv) device_.NoteMicObservation(cursor_, true);
      cursor_ = (cursor_ + 1) % kNumUhfChannels;
      if (cursor_ == 0) ++sweeps_;
      continue;
    }
    break;
  }
  MetricsRegistry::Count(world.metrics(), "whitefi.scanner.dwells");
  dwell_start_books_ = world.medium().ChannelBooksAt(cursor_);
  world.sim().ScheduleAfter(params_.dwell, [this] { EndDwell(); });
}

void Scanner::EndDwell() {
  World& world = device_.world();
  FaultInjector* const faults = world.faults();
  if (faults != nullptr) {
    if (faults->ScannerDown(world.sim().Now())) {
      // The hardware died mid-dwell: the measurement is void.  Do not
      // advance; BeginDwell idles through the outage and retries here.
      BeginDwell();
      return;
    }
    if (faults->StaleScan(world.sim().Now())) {
      // The dwell silently served stale data: keep the previous
      // observation for this channel and move on.
      MetricsRegistry::Count(world.metrics(), "whitefi.scanner.stale_dwells");
      cursor_ = (cursor_ + 1) % kNumUhfChannels;
      if (cursor_ == 0) ++sweeps_;
      BeginDwell();
      return;
    }
  }
  const auto idx = static_cast<std::size_t>(cursor_);
  const ChannelBooks& before = dwell_start_books_;
  const ChannelBooks& after = world.medium().ChannelBooksAt(cursor_);

  // Busy fraction of *foreign* traffic (SIFT can filter the network's own
  // transmissions by width/pattern).  Summing foreign transmitters' own
  // air time — rather than subtracting our air time from the union busy
  // time — stays accurate even when our transmissions overlap foreign
  // ones in time (we may be mutually deaf across widths): the union would
  // hide exactly the foreign traffic we need to measure.
  const std::vector<int> own = world.NodesInSsid(device_.ssid());
  Us busy_delta = 0.0;
  for (const auto& [node, total] : after.per_node) {
    if (std::find(own.begin(), own.end(), node) != own.end()) continue;
    const auto b = before.per_node.find(node);
    const Us bt = b == before.per_node.end() ? 0.0 : b->second;
    busy_delta += total - bt;
  }
  const Us dwell_us = ToUs(params_.dwell);
  double airtime = busy_delta / dwell_us;
  if (params_.airtime_noise_stddev > 0.0) {
    airtime += rng_.Normal(0.0, params_.airtime_noise_stddev);
  }
  observation_[idx].airtime = std::clamp(airtime, 0.0, 1.0);

  // Foreign APs with energy on this channel during the dwell.
  std::vector<int> ap_ids = world.medium().ApIds();
  ap_ids.erase(std::remove_if(ap_ids.begin(), ap_ids.end(),
                              [&](int id) {
                                return std::find(own.begin(), own.end(), id) !=
                                       own.end();
                              }),
               ap_ids.end());
  observation_[idx].ap_count =
      static_cast<int>(Medium::ActiveApsBetween(before, after, ap_ids).size());

  // Incumbents may have appeared or vanished during the dwell.
  bool mic = world.MicAudible(cursor_, device_.NodeId());
  if (faults != nullptr) {
    // SIFT detection faults: overlook a real mic or flag a phantom one.
    if (mic && faults->MissIncumbent(world.sim().Now())) {
      mic = false;
    } else if (!mic && faults->FalseIncumbent(world.sim().Now())) {
      mic = true;
    }
  }
  observation_[idx].incumbent =
      device_.config().tv_map.Occupied(cursor_) || mic;
  device_.NoteMicObservation(cursor_, mic);

  // Flight recorder: one probe record per measured dwell — the "scan"
  // leg of the MCham chain.  Guarded by Wants so a filtered trace never
  // pays for the detail string.
  if (EventTrace* trace = world.trace(); trace != nullptr) {
    if (trace->Wants(TraceEventKind::kDiscoveryProbe)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "dwell ch%d airtime=%.3f aps=%d%s",
                    cursor_, observation_[idx].airtime,
                    observation_[idx].ap_count,
                    observation_[idx].incumbent ? " incumbent" : "");
      TraceEvent event;
      event.kind = TraceEventKind::kDiscoveryProbe;
      event.node = device_.NodeId();
      event.detail = buf;
      world.TraceEventNow(std::move(event));
    } else {
      trace->CountSkipped(TraceEventKind::kDiscoveryProbe);
    }
  }

  cursor_ = (cursor_ + 1) % kNumUhfChannels;
  if (cursor_ == 0) ++sweeps_;
  BeginDwell();
}

void Scanner::StartChirpWatch(Channel backup, int ssid,
                              ChirpCallback on_chirp) {
  chirp_channel_ = backup;
  chirp_ssid_ = ssid;
  on_chirp_ = std::move(on_chirp);
  if (!chirp_watch_) {
    chirp_watch_ = true;
    device_.world().medium().AddFrameTap(
        [this](const Channel& channel, const Frame& frame, const RadioPort&) {
          if (frame.type != FrameType::kChirp) return;
          const auto* info = std::get_if<ChirpInfo>(&frame.payload);
          if (info != nullptr) OfferChirp(channel, *info);
        });
    ChirpVisit();
  }
}

void Scanner::StopChirpWatch() { on_chirp_ = nullptr; }

void Scanner::ChirpVisit() {
  chirp_dwelling_ = true;
  // With a secondary rendezvous channel set, visits alternate between the
  // primary backup and the secondary; without one every visit watches the
  // primary (the pre-hardening behavior, bit for bit).
  secondary_dwell_ = secondary_chirp_channel_.has_value() &&
                     next_visit_secondary_;
  if (secondary_dwell_) secondary_watch_ = *secondary_chirp_channel_;
  next_visit_secondary_ = !next_visit_secondary_;
  World& world = device_.world();
  world.sim().ScheduleAfter(params_.chirp_scan_dwell, [this] {
    chirp_dwelling_ = false;
    secondary_dwell_ = false;
  });
  // Hardening: a visit that falls inside a scanner outage hears nothing.
  // Instead of leaving chirpers unheard until the next regular visit,
  // probe at a short cadence and dwell as soon as the hardware is back.
  FaultInjector* const faults = world.faults();
  if (faults != nullptr && params_.outage_retry && !retry_pending_ &&
      faults->ScannerDown(world.sim().Now()) &&
      params_.outage_retry_interval < params_.chirp_scan_interval) {
    retry_pending_ = true;
    MetricsRegistry::Count(world.metrics(),
                           "whitefi.scanner.chirp_outage_retries");
    world.sim().ScheduleAfter(params_.outage_retry_interval,
                              [this] { ChirpRetryVisit(); });
  }
  world.sim().ScheduleAfter(params_.chirp_scan_interval,
                            [this] { ChirpVisit(); });
}

void Scanner::ChirpRetryVisit() {
  World& world = device_.world();
  FaultInjector* const faults = world.faults();
  if (faults != nullptr && faults->ScannerDown(world.sim().Now())) {
    world.sim().ScheduleAfter(params_.outage_retry_interval,
                              [this] { ChirpRetryVisit(); });
    return;
  }
  retry_pending_ = false;
  chirp_dwelling_ = true;
  secondary_dwell_ = false;  // Outage retries always probe the primary.
  world.sim().ScheduleAfter(params_.chirp_scan_dwell, [this] {
    chirp_dwelling_ = false;
    secondary_dwell_ = false;
  });
}

void Scanner::OfferChirp(const Channel& channel, const ChirpInfo& info) {
  if (!on_chirp_) return;
  if (info.ssid != chirp_ssid_) return;  // SIFT length-code filter.
  const bool on_watched_backup =
      chirp_dwelling_ &&
      channel.Overlaps(secondary_dwell_ ? secondary_watch_ : chirp_channel_);
  // The band sweep doubles as the paper's all-channel rescue scan: a chirp
  // transmitted on whatever channel the sweep currently dwells on is heard.
  const bool on_swept_channel = sweeping_ && channel.Contains(cursor_);
  if (!on_watched_backup && !on_swept_channel) return;
  FaultInjector* const faults = device_.world().faults();
  if (faults != nullptr) {
    const SimTime now = device_.world().sim().Now();
    if (faults->ScannerDown(now)) return;  // Deaf hardware.
    if (faults->MissChirp(now)) return;    // SIFT detection miss.
  }
  on_chirp_(info, channel);
}

}  // namespace whitefi
