#include "sim/scanner.h"

#include <algorithm>

#include "sim/world.h"

namespace whitefi {

Scanner::Scanner(Device& device, const ScannerParams& params)
    : device_(device),
      params_(params),
      rng_(device.world().NewRng()),
      observation_(EmptyBandObservation()) {}

void Scanner::StartSweep() {
  if (sweeping_) return;
  sweeping_ = true;
  cursor_ = 0;
  BeginDwell();
}

void Scanner::BeginDwell() {
  World& world = device_.world();
  // Incumbent-occupied channels are flagged immediately (feature detection
  // is fast); airtime dwell is only spent on channels worth measuring.
  for (int hops = 0; hops <= kNumUhfChannels; ++hops) {
    if (hops == kNumUhfChannels) {
      // Entire band incumbent-occupied: idle one dwell and retry.
      world.sim().ScheduleAfter(params_.dwell, [this] { BeginDwell(); });
      return;
    }
    const auto idx = static_cast<std::size_t>(cursor_);
    const bool tv = device_.config().tv_map.Occupied(cursor_);
    const bool mic = world.MicAudible(cursor_, device_.NodeId());
    if (tv || mic) {
      observation_[idx].incumbent = true;
      observation_[idx].airtime = 0.0;
      observation_[idx].ap_count = 0;
      if (!tv) device_.NoteMicObservation(cursor_, true);
      cursor_ = (cursor_ + 1) % kNumUhfChannels;
      if (cursor_ == 0) ++sweeps_;
      continue;
    }
    break;
  }
  MetricsRegistry::Count(world.metrics(), "whitefi.scanner.dwells");
  dwell_start_books_ = world.medium().SnapshotBooks();
  world.sim().ScheduleAfter(params_.dwell, [this] { EndDwell(); });
}

void Scanner::EndDwell() {
  World& world = device_.world();
  const auto idx = static_cast<std::size_t>(cursor_);
  const AirtimeBooks books = world.medium().SnapshotBooks();
  const auto& before = dwell_start_books_[idx];
  const auto& after = books[idx];

  // Busy fraction of *foreign* traffic (SIFT can filter the network's own
  // transmissions by width/pattern).  Summing foreign transmitters' own
  // air time — rather than subtracting our air time from the union busy
  // time — stays accurate even when our transmissions overlap foreign
  // ones in time (we may be mutually deaf across widths): the union would
  // hide exactly the foreign traffic we need to measure.
  const std::vector<int> own = world.NodesInSsid(device_.ssid());
  Us busy_delta = 0.0;
  for (const auto& [node, total] : after.per_node) {
    if (std::find(own.begin(), own.end(), node) != own.end()) continue;
    const auto b = before.per_node.find(node);
    const Us bt = b == before.per_node.end() ? 0.0 : b->second;
    busy_delta += total - bt;
  }
  const Us dwell_us = ToUs(params_.dwell);
  double airtime = busy_delta / dwell_us;
  if (params_.airtime_noise_stddev > 0.0) {
    airtime += rng_.Normal(0.0, params_.airtime_noise_stddev);
  }
  observation_[idx].airtime = std::clamp(airtime, 0.0, 1.0);

  // Foreign APs with energy on this channel during the dwell.
  std::vector<int> ap_ids = world.medium().ApIds();
  ap_ids.erase(std::remove_if(ap_ids.begin(), ap_ids.end(),
                              [&](int id) {
                                return std::find(own.begin(), own.end(), id) !=
                                       own.end();
                              }),
               ap_ids.end());
  observation_[idx].ap_count = static_cast<int>(
      Medium::ActiveApsBetween(dwell_start_books_, books, cursor_, ap_ids)
          .size());

  // Incumbents may have appeared or vanished during the dwell.
  const bool mic = world.MicAudible(cursor_, device_.NodeId());
  observation_[idx].incumbent =
      device_.config().tv_map.Occupied(cursor_) || mic;
  device_.NoteMicObservation(cursor_, mic);

  cursor_ = (cursor_ + 1) % kNumUhfChannels;
  if (cursor_ == 0) ++sweeps_;
  BeginDwell();
}

void Scanner::StartChirpWatch(Channel backup, int ssid,
                              ChirpCallback on_chirp) {
  chirp_channel_ = backup;
  chirp_ssid_ = ssid;
  on_chirp_ = std::move(on_chirp);
  if (!chirp_watch_) {
    chirp_watch_ = true;
    device_.world().medium().AddFrameTap(
        [this](const Channel& channel, const Frame& frame, const RadioPort&) {
          if (frame.type != FrameType::kChirp) return;
          const auto* info = std::get_if<ChirpInfo>(&frame.payload);
          if (info != nullptr) OfferChirp(channel, *info);
        });
    ChirpVisit();
  }
}

void Scanner::StopChirpWatch() { on_chirp_ = nullptr; }

void Scanner::ChirpVisit() {
  chirp_dwelling_ = true;
  World& world = device_.world();
  world.sim().ScheduleAfter(params_.chirp_scan_dwell, [this] {
    chirp_dwelling_ = false;
  });
  world.sim().ScheduleAfter(params_.chirp_scan_interval,
                            [this] { ChirpVisit(); });
}

void Scanner::OfferChirp(const Channel& channel, const ChirpInfo& info) {
  if (!on_chirp_) return;
  if (info.ssid != chirp_ssid_) return;  // SIFT length-code filter.
  const bool on_watched_backup =
      chirp_dwelling_ && channel.Overlaps(chirp_channel_);
  // The band sweep doubles as the paper's all-channel rescue scan: a chirp
  // transmitted on whatever channel the sweep currently dwells on is heard.
  const bool on_swept_channel = sweeping_ && channel.Contains(cursor_);
  if (!on_watched_backup && !on_swept_channel) return;
  on_chirp_(info, channel);
}

}  // namespace whitefi
