#include "sim/node.h"

#include "sim/audit_hooks.h"
#include "sim/world.h"

namespace whitefi {

Device::Device(World& world, int id, const DeviceConfig& config)
    : world_(world),
      id_(id),
      config_(config),
      channel_(config.initial_channel),
      mac_(world.sim(), world.medium(), *this, *this, config.tx_power,
           config.mac, world.NewRng()) {
  // Observability first: the initial SetTiming below must already be
  // visible to an attached auditor.
  mac_.SetObservability(world.obs());
  mac_.SetTiming(PhyTiming::ForWidth(channel_.width));
  world_.medium().Register(this);
  if (AuditHooks* auditor = world.obs().auditor; auditor != nullptr) {
    auditor->OnNodeTuned(world.sim().Now(), id_, channel_);
  }
}

Device::~Device() { world_.medium().Unregister(this); }

bool Device::RxEnabled() const {
  return world_.sim().Now() >= rx_enabled_at_;
}

void Device::DeliverFrame(const Frame& frame, Dbm rx_power) {
  mac_.OnDeliver(frame, rx_power);
}

void Device::MediumChanged() { mac_.OnMediumChanged(); }

void Device::MacReceived(const Frame& frame, Dbm rx_power) {
  if (frame.type == FrameType::kData && frame.dst == id_) {
    world_.RecordAppBytes(id_, frame.bytes - kMacOverheadBytes);
  }
  OnFrameReceived(frame, rx_power);
  for (const auto& hook : receive_hooks_) hook(frame);
}

void Device::MacSendComplete(const Frame& frame, bool success) {
  OnSendComplete(frame, success);
  for (const auto& hook : send_hooks_) hook(frame, success);
}

void Device::SwitchChannel(const Channel& channel) {
  if (channel == channel_ && RxEnabled()) return;
  MetricsRegistry::Count(world_.metrics(), "whitefi.node.channel_switches");
  {
    TraceEvent event;
    event.kind = TraceEventKind::kChannelSwitch;
    event.node = id_;
    event.detail = channel_.ToString() + " -> " + channel.ToString();
    world_.TraceEventNow(std::move(event));
  }
  mac_.Reset();
  channel_ = channel;
  mac_.SetTiming(PhyTiming::ForWidth(channel.width));
  if (AuditHooks* auditor = world_.obs().auditor; auditor != nullptr) {
    auditor->OnNodeTuned(world_.sim().Now(), id_, channel_);
  }
  rx_enabled_at_ = world_.sim().Now() + config_.tune_delay;
  const SimTime generation = rx_enabled_at_;
  world_.sim().Schedule(rx_enabled_at_, [this, generation, channel] {
    // Only fire if no further switch superseded this one.
    if (rx_enabled_at_ == generation && channel_ == channel) {
      OnChannelSwitched(channel_);
    }
  });
}

void Device::OnIncumbentDetected(UhfIndex channel) {
  if (detected_mics_.find(channel) == detected_mics_.end()) {
    // Fresh detection: record how long the incumbent had been on air
    // before this node reacted (microsecond ticks).
    MetricsRegistry::Count(world_.metrics(), "whitefi.sift.detections");
    if (const auto since = world_.MicOnSince(channel); since.has_value()) {
      MetricsRegistry::Observe(world_.metrics(),
                               "whitefi.sift.detect_latency_us",
                               static_cast<double>(*since));
    }
    TraceEvent event;
    event.kind = TraceEventKind::kNote;
    event.node = id_;
    event.detail = "incumbent detected ch" + std::to_string(channel);
    world_.TraceEventNow(std::move(event));
  }
  NoteMicObservation(channel, true);
}

void Device::NoteMicObservation(UhfIndex channel, bool present) {
  if (present) {
    detected_mics_.insert(channel);
  } else {
    detected_mics_.erase(channel);
  }
}

SpectrumMap Device::ObservedMap() const {
  SpectrumMap map = config_.tv_map;
  for (UhfIndex c : detected_mics_) map.SetOccupied(c);
  return map;
}

void Device::AddSendCompleteHook(
    std::function<void(const Frame&, bool)> hook) {
  send_hooks_.push_back(std::move(hook));
}

void Device::AddReceiveHook(std::function<void(const Frame&)> hook) {
  receive_hooks_.push_back(std::move(hook));
}

void Device::OnFrameReceived(const Frame&, Dbm) {}
void Device::OnSendComplete(const Frame&, bool) {}
void Device::OnChannelSwitched(const Channel&) {}

}  // namespace whitefi
