#include "sim/traffic.h"

#include "sim/world.h"

namespace whitefi {

namespace {

Frame MakeDataFrame(int dst, int payload_bytes) {
  Frame frame;
  frame.type = FrameType::kData;
  frame.dst = dst;
  frame.bytes = payload_bytes + kMacOverheadBytes;
  return frame;
}

}  // namespace

CbrSource::CbrSource(Device& device, int dst, int payload_bytes,
                     SimTime interval)
    : device_(device),
      dst_(dst),
      payload_bytes_(payload_bytes),
      interval_(interval) {}

void CbrSource::Start() {
  if (started_) return;
  started_ = true;
  active_ = true;
  timer_ = device_.world().sim().ScheduleAfter(interval_, [this] { Tick(); });
}

void CbrSource::SetActive(bool active) {
  if (active == active_) return;
  active_ = active;
  if (!started_) return;
  if (active_) {
    timer_ = device_.world().sim().ScheduleAfter(interval_, [this] { Tick(); });
  } else {
    device_.world().sim().Cancel(timer_);
    timer_ = kInvalidEventId;
  }
}

void CbrSource::Tick() {
  if (!active_) return;
  device_.mac().Enqueue(MakeDataFrame(dst_, payload_bytes_));
  ++generated_;
  timer_ = device_.world().sim().ScheduleAfter(interval_, [this] { Tick(); });
}

SaturatedSource::SaturatedSource(Device& device, std::vector<int> dsts,
                                 int payload_bytes)
    : device_(device), dsts_(std::move(dsts)), payload_bytes_(payload_bytes) {}

void SaturatedSource::Start() {
  if (started_ || dsts_.empty()) return;
  started_ = true;
  device_.AddSendCompleteHook([this](const Frame&, bool) { Refill(); });
  Refill();
  Watchdog();
}

void SaturatedSource::SetDsts(std::vector<int> dsts) {
  dsts_ = std::move(dsts);
  next_dst_ = 0;
}

void SaturatedSource::Refill() {
  if (dsts_.empty()) return;
  // Keep two frames queued: one in flight, one ready, so the MAC never
  // idles for lack of data.
  while (device_.mac().QueueDepth() < 2) {
    const int dst = dsts_[next_dst_ % dsts_.size()];
    if (!device_.mac().Enqueue(MakeDataFrame(dst, payload_bytes_))) break;
    ++next_dst_;
    ++generated_;
  }
}

void SaturatedSource::Watchdog() {
  // Channel switches clear the MAC queue; with no completions pending the
  // send-complete hook would never fire again, so re-prime periodically.
  Refill();
  device_.world().sim().ScheduleAfter(100 * kTicksPerMs,
                                      [this] { Watchdog(); });
}

MarkovOnOffSource::MarkovOnOffSource(Device& device, int dst,
                                     int payload_bytes, SimTime interval,
                                     const Params& params)
    : cbr_(device, dst, payload_bytes, interval),
      params_(params),
      sim_(device.world().sim()),
      rng_(device.world().NewRng()) {}

void MarkovOnOffSource::Start() {
  cbr_.Start();
  EnterState(rng_.Bernoulli(params_.initial_active_probability));
}

double MarkovOnOffSource::StationaryActive() const {
  const double a = static_cast<double>(params_.mean_active);
  const double p = static_cast<double>(params_.mean_passive);
  return a / (a + p);
}

void MarkovOnOffSource::EnterState(bool active) {
  cbr_.SetActive(active);
  const SimTime mean = active ? params_.mean_active : params_.mean_passive;
  if (mean <= 0) return;  // Degenerate chain: stay in the other state.
  const auto hold =
      static_cast<SimTime>(rng_.Exponential(static_cast<double>(mean)));
  sim_.ScheduleAfter(std::max<SimTime>(hold, 1),
                     [this, active] { EnterState(!active); });
}

}  // namespace whitefi
