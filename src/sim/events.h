// The discrete-event simulation core.
//
// A binary-heap event queue with stable FIFO ordering for simultaneous
// events and O(1) logical cancellation.  All higher layers (medium, MAC,
// protocol state machines) are driven exclusively through this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace whitefi {

/// Handle for a scheduled event; usable with Simulator::Cancel.
using EventId = std::uint64_t;

/// Sentinel for "no event scheduled".
inline constexpr EventId kInvalidEventId = 0;

/// Discrete-event simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `at` (>= Now(), else clamped to Now()).
  /// Returns an id usable with Cancel.
  EventId Schedule(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` ticks.
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return Schedule(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event; returns true iff it had not yet fired or been
  /// cancelled.  Cancelling kInvalidEventId is a harmless no-op.
  bool Cancel(EventId id);

  /// Runs all events with time <= `until`; Now() becomes `until`.
  void Run(SimTime until);

  /// Runs until the queue drains or Stop() is called.
  void RunUntilIdle();

  /// Stops Run/RunUntilIdle after the current event returns.
  void Stop() { stopped_ = true; }

  /// Number of events executed so far.
  std::size_t NumProcessed() const { return processed_; }

  /// Number of events currently pending (including cancelled tombstones).
  std::size_t NumPending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    EventId id;  // Also the FIFO tiebreaker: ids increase monotonically.
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace whitefi
