// The discrete-event simulation core.
//
// A slab-allocated event arena driving a hierarchical 256-way timer wheel
// (a radix queue over integer microsecond ticks).  All higher layers
// (medium, MAC, protocol state machines) are driven exclusively through
// this queue.
//
// Design (DESIGN.md §10):
//  * Callbacks live in `EventCallback`, a move-only small-buffer callable:
//    callables up to kInlineBytes are stored inline in the arena slot, so
//    the steady-state schedule->fire cycle performs zero heap allocations.
//    Trivially-copyable callables relocate with a memcpy and skip the
//    destructor call entirely.
//  * Event state lives in fixed-size chunks on a free list; slots are
//    addressed by index and never move, and an `EventId` encodes
//    (generation << 32 | slot), so Cancel is an O(1) liveness check plus
//    an O(1) removal from the event's wheel bucket — no tombstone set, no
//    unbounded cancellation state.
//  * The wheel has 8 levels of 256 buckets; an event's level is the
//    highest byte in which its time differs from the wheel cursor, so
//    schedule is O(1) and each event cascades down at most 7 times before
//    firing.  Occupancy bitmaps (256 bits per level) let the cursor jump
//    over empty regions in O(levels) instead of tick by tick.
//  * Determinism: events fire in (time, seq) order, where seq increases
//    monotonically per Schedule call.  A level-0 bucket holds exactly one
//    tick's events; it is sorted by seq once when the cursor reaches it
//    (appends during the drain carry larger seqs and stay in order), so
//    simultaneous events fire in schedule order, in both Run and
//    RunUntilIdle.  This FIFO contract is what makes every scenario's
//    output deterministic.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace whitefi {

/// Handle for a scheduled event; usable with Simulator::Cancel.  Encodes
/// the arena slot and its generation; stale handles (fired or cancelled
/// events, never-issued ids) are recognized and rejected in O(1).
using EventId = std::uint64_t;

/// Sentinel for "no event scheduled".
inline constexpr EventId kInvalidEventId = 0;

/// Move-only type-erased `void()` callable with inline small-buffer
/// storage.  Callables that fit (and are nothrow-move-constructible) are
/// stored in place; larger ones fall back to a single heap allocation.
class EventCallback {
 public:
  /// Inline storage, sized to fit every callback the MAC/protocol layers
  /// schedule (the largest is the SIFS-delayed ACK transmit, which
  /// captures a whole Frame).
  static constexpr std::size_t kInlineBytes = 104;

  EventCallback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(fn));
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(ops_, storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        Relocate(ops_, storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  /// Destroys the held callable (if any); *this becomes empty.
  void Reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage_);
    ops_ = nullptr;
  }

  /// Constructs a callable in place.  Precondition: *this is empty (the
  /// arena only emplaces into released slots).
  template <typename F>
  void Emplace(F&& fn) {
    assert(ops_ == nullptr);
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the callable into `dst` and destroys the `src`
    /// copy ("relocate").  nullptr means memcpy(size) suffices.
    void (*relocate)(void* dst, void* src);
    /// nullptr for trivially destructible callables: destruction is a
    /// no-op and the fire path skips the indirect call.
    void (*destroy)(void* storage);
    std::uint32_t size;
  };

  static void Relocate(const Ops* ops, void* dst, void* src) noexcept {
    if (ops->relocate != nullptr) {
      ops->relocate(dst, src);
    } else {
      std::memcpy(dst, src, ops->size);
    }
  }

  template <typename Fn>
  static Fn* As(void* storage) noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*As<Fn>(s))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) {
              ::new (dst) Fn(std::move(*As<Fn>(src)));
              As<Fn>(src)->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* s) { As<Fn>(s)->~Fn(); },
      static_cast<std::uint32_t>(sizeof(Fn)),
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**As<Fn*>(s))(); },
      nullptr,  // The owning pointer relocates by memcpy.
      [](void* s) { delete *As<Fn*>(s); },
      static_cast<std::uint32_t>(sizeof(Fn*)),
  };

  // Storage first so it gets the struct's max_align_t alignment without
  // interior padding; ops_ doubles as the engaged flag.
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Discrete-event simulator.
class Simulator {
 public:
  using Callback = EventCallback;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= Now(), else clamped to
  /// Now()).  Returns an id usable with Cancel.  The callable is
  /// constructed directly into its arena slot.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventId Schedule(SimTime at, F&& fn) {
    const std::uint32_t index = AllocSlot();
    CbAt(index).Emplace(std::forward<F>(fn));
    return PushScheduled(at, index);
  }

  /// Overload for a pre-built EventCallback.
  EventId Schedule(SimTime at, Callback cb) {
    const std::uint32_t index = AllocSlot();
    CbAt(index) = std::move(cb);
    return PushScheduled(at, index);
  }

  /// Schedules `fn` after `delay` ticks.
  template <typename F>
  EventId ScheduleAfter(SimTime delay, F&& fn) {
    return Schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event; returns true iff it had not yet fired or
  /// been cancelled.  Stale ids (fired, cancelled, or never issued) and
  /// kInvalidEventId are harmless no-ops: no state is retained for them.
  bool Cancel(EventId id);

  /// Runs all events with time <= `until`; Now() becomes `until`.
  void Run(SimTime until);

  /// Runs until the queue drains or Stop() is called.
  void RunUntilIdle();

  /// Stops Run/RunUntilIdle after the current event returns.
  void Stop() { stopped_ = true; }

  /// Number of events executed so far.
  std::size_t NumProcessed() const { return processed_; }

  /// Number of events currently pending.  Exact: cancelled events leave
  /// the pending count immediately.
  std::size_t NumPending() const { return pending_; }

  /// Number of arena slots allocated so far.  Bounded by the peak number
  /// of simultaneously pending events (rounded up to a chunk), never by
  /// the total number of schedules or cancellations — pinned by test.
  std::size_t ArenaSlots() const { return chunks_.size() * kChunkSize; }

 private:
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;
  /// Wheel geometry: 8 levels x 256 buckets covers the full 64-bit tick
  /// range (level = highest byte in which an event's time differs from
  /// the wheel cursor).
  static constexpr int kLevelBits = 8;
  static constexpr int kNumLevels = 8;
  static constexpr std::uint32_t kBucketsPerLevel = 1u << kLevelBits;
  static constexpr std::uint32_t kByteMask = kBucketsPerLevel - 1;
  static constexpr std::uint32_t kNumBuckets = kNumLevels * kBucketsPerLevel;
  /// Bucket entries pack (seq << kSlotBits | slot) into one key: sorting a
  /// tick bucket by key is sorting by schedule order, and 24 slot bits
  /// bound the arena at 16M concurrently pending events.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;
  /// Cancelled-in-draining-bucket sentinel: live keys have seq >= 1.
  static constexpr std::uint64_t kDeadKey = 0;

  /// Callback storage only: the per-event metadata the wheel touches
  /// (generation, bucket location, free list) lives in dense parallel
  /// vectors instead, so wheel maintenance never pulls 112-byte callback
  /// slots through the cache.
  struct Chunk {
    EventCallback cbs[kChunkSize];
  };
  /// 16-byte bucket entry carrying the full (time, seq, slot) identity.
  struct Entry {
    SimTime time;
    std::uint64_t key;  ///< seq << kSlotBits | slot.
  };
  /// Where a pending event's entry currently lives (for O(1) Cancel).
  struct Location {
    std::uint32_t bucket;  ///< level * 256 + index.
    std::uint32_t pos;     ///< Position within the bucket vector.
  };

  EventCallback& CbAt(std::uint32_t index) {
    return chunks_[index >> kChunkShift]->cbs[index & (kChunkSize - 1)];
  }

  std::uint32_t AllocSlot();
  void GrowArena();
  void ReleaseSlot(std::uint32_t index);
  EventId PushScheduled(SimTime at, std::uint32_t index);
  /// Files `entry` into the bucket its time selects relative to `cur_`,
  /// updating its slot's location and the occupancy bitmap.
  void PlaceEntry(const Entry& entry);
  /// Redistributes bucket (level, index) after advancing the cursor to
  /// `window_start`; every entry lands at a strictly lower level.
  void Cascade(int level, std::uint32_t index, SimTime window_start);
  /// Sorts tick bucket `bucket` by seq and makes it the draining bucket.
  void EnterDrain(std::uint32_t bucket, SimTime tick);
  /// Positions the drain cursor on the next live event with time <=
  /// `until`; returns false when there is none (state untouched past
  /// `until` so a later Run can pick up exactly where this one stopped).
  bool PrepareNext(SimTime until);
  void SetOcc(int level, std::uint32_t index) {
    occ_[level][index >> 6] |= std::uint64_t{1} << (index & 63);
  }
  void ClearOcc(int level, std::uint32_t index) {
    occ_[level][index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  }
  /// Lowest set bit >= `from` in a level's 256-bit occupancy map, or -1.
  int NextOccupied(int level, std::uint32_t from) const;
  void FireLoop(SimTime until);

  SimTime now_ = 0;
  /// Wheel cursor: the reference time bucket levels are computed against.
  /// Invariants: cur_ <= now_ <= every pending event's time, and every
  /// occupied bucket's window lies ahead of cur_ at its level.
  SimTime cur_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t pending_ = 0;
  bool stopped_ = false;

  std::vector<std::vector<Entry>> buckets_;  ///< kNumBuckets vectors.
  std::uint64_t occ_[kNumLevels][kBucketsPerLevel / 64] = {};
  /// Tick bucket currently being drained (kNoIndex when none); its entries
  /// up to drain_pos_ have fired, and cancellations inside it dead-mark in
  /// place (reclaimed when the bucket finishes draining) so the sorted
  /// fire order survives.
  std::uint32_t draining_ = kNoIndex;
  std::uint32_t drain_pos_ = 0;
  SimTime draining_tick_ = 0;

  std::vector<std::unique_ptr<Chunk>> chunks_;
  /// Parallel per-slot metadata (dense; hot during placement and Cancel).
  std::vector<std::uint32_t> generation_;  ///< Bumped on release; never 0.
  std::vector<Location> loc_;              ///< Valid while pending.
  std::vector<std::uint32_t> free_slots_;  ///< LIFO stack of free indices.
};

}  // namespace whitefi
