#include "sim/signal_scanner.h"

#include <algorithm>
#include <cmath>

#include "sim/world.h"

namespace whitefi {

SignalLevelScanner::SignalLevelScanner(Device& device,
                                       const SignalScannerParams& params)
    : device_(device),
      params_(params),
      batch_(params.sift, static_cast<std::size_t>(kNumUhfChannels)),
      rng_(device.world().NewRng()),
      observation_(EmptyBandObservation()) {
  batch_.SetObservability(device_.world().obs());
  device_.world().medium().AddFrameTap(
      [this](const Channel& channel, const Frame& frame, const RadioPort& tx) {
        OnTap(channel, frame, tx);
      });
}

void SignalLevelScanner::StartSweep() {
  if (sweeping_) return;
  sweeping_ = true;
  cursor_ = 0;
  BeginDwell();
}

void SignalLevelScanner::OnTap(const Channel& channel, const Frame& frame,
                               const RadioPort& tx) {
  if (!dwelling_) return;
  if (!channel.Contains(cursor_)) return;
  const PhyTiming timing = PhyTiming::ForWidth(channel.width);
  const Us duration = timing.FrameDuration(frame.bytes);
  const Us end = ToUs(device_.world().sim().Now() - dwell_started_);
  Heard heard;
  heard.start = end - duration;
  heard.duration = duration;
  const Device* sender = device_.world().FindDevice(tx.NodeId());
  heard.own_ssid = sender != nullptr && sender->ssid() == device_.ssid();
  heard.ramp = channel.width == ChannelWidth::kW5;
  heard.frame_bytes = frame.bytes;
  heard.width = channel.width;
  heard.type = frame.type;
  heard_.push_back(heard);
}

void SignalLevelScanner::BeginDwell() {
  World& world = device_.world();
  // Incumbent channels are flagged without a dwell, as the fast scanner
  // does (feature detection precedes airtime measurement).
  for (int hops = 0; hops <= kNumUhfChannels; ++hops) {
    if (hops == kNumUhfChannels) {
      world.sim().ScheduleAfter(params_.dwell, [this] { BeginDwell(); });
      return;
    }
    const auto idx = static_cast<std::size_t>(cursor_);
    const bool tv = device_.config().tv_map.Occupied(cursor_);
    const bool mic = world.MicAudible(cursor_, device_.NodeId());
    if (tv || mic) {
      observation_[idx].incumbent = true;
      observation_[idx].airtime = 0.0;
      observation_[idx].ap_count = 0;
      if (!tv) device_.NoteMicObservation(cursor_, true);
      cursor_ = (cursor_ + 1) % kNumUhfChannels;
      if (cursor_ == 0) ++sweeps_;
      continue;
    }
    break;
  }
  heard_.clear();
  dwelling_ = true;
  dwell_started_ = world.sim().Now();
  world.sim().ScheduleAfter(params_.dwell, [this] { EndDwell(); });
}

void SignalLevelScanner::EndDwell() {
  World& world = device_.world();
  dwelling_ = false;
  const auto idx = static_cast<std::size_t>(cursor_);
  const Us window = ToUs(params_.dwell);

  // Reconstruct the amplitude trace of the foreign transmissions that
  // crossed this channel during the dwell (SIFT filters our own network's
  // transmissions by their known pattern).
  std::vector<Burst>& bursts = burst_scratch_;
  bursts.clear();
  for (const Heard& heard : heard_) {
    if (heard.own_ssid) continue;
    Burst burst;
    burst.start = std::max(0.0, heard.start);
    burst.duration = std::min(heard.duration, window - burst.start);
    burst.ramp_artifact = heard.ramp;
    if (burst.duration > 0.0) bursts.push_back(burst);
  }
  std::sort(bursts.begin(), bursts.end(),
            [](const Burst& a, const Burst& b) { return a.start < b.start; });

  // The synthesizer is still forked per dwell (the observation stream must
  // not depend on how many dwells preceded it), but the dwell-length trace
  // lands in a reused scratch buffer instead of a fresh allocation.
  SignalSynthesizer synth(params_.signal, rng_.Fork());
  synth.SetProfiler(world.obs().profiler);
  synth.SynthesizeInto(bursts, window, trace_scratch_);
  // One persistent lane per channel: restart this channel's stream, run
  // the shared batch kernel over the dwell trace, and collect its bursts.
  const auto lane = static_cast<std::size_t>(cursor_);
  batch_.ResetLane(lane);
  batch_.ProcessBlock(lane, trace_scratch_);
  batch_.Flush(lane);
  const auto detected = batch_.TakeBursts(lane);

  observation_[idx].airtime = BusyAirtimeFraction(detected, 0.0, window);

  // B_c: beacon-pattern matches per beacon interval.  A beacon+CTS pair
  // matches like a data exchange whose first burst has beacon length.
  int beacon_matches = 0;
  PatternMatcher matcher(params_.matcher);
  for (const ExchangeMatch& match : matcher.MatchAll(detected)) {
    const PhyTiming timing = PhyTiming::ForWidth(match.width);
    const Us beacon = timing.BeaconDuration();
    if (std::abs(match.data_duration - beacon) <= 0.25 * beacon) {
      ++beacon_matches;
    }
  }
  const double intervals = ToUs(params_.dwell) / ToUs(params_.beacon_interval);
  observation_[idx].ap_count = static_cast<int>(
      std::lround(static_cast<double>(beacon_matches) / intervals));

  const bool mic = world.MicAudible(cursor_, device_.NodeId());
  observation_[idx].incumbent =
      device_.config().tv_map.Occupied(cursor_) || mic;
  device_.NoteMicObservation(cursor_, mic);

  cursor_ = (cursor_ + 1) % kNumUhfChannels;
  if (cursor_ == 0) ++sweeps_;
  BeginDwell();
}

}  // namespace whitefi
