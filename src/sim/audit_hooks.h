// AuditHooks — the seams the runtime invariant auditor listens on.
//
// The concrete auditor (src/audit) sits ABOVE the simulation layers in the
// link order, so the medium/MAC/device/client hook sites cannot name it
// directly.  They instead call through this abstract interface, carried as
// a null-by-default pointer in the Observability bundle (obs/obs.h): with
// no auditor attached every hook site is a dead branch, and a run is
// byte-identical to one predating the audit subsystem.
//
// Hooks fire synchronously at the seam, in simulated-time order, and must
// not mutate simulation state (no Transmit, no Schedule of protocol
// events) — an auditor observes and records.
#pragma once

#include "phy/timing.h"
#include "spectrum/channel.h"
#include "util/units.h"

namespace whitefi {

class RadioPort;

/// Runtime invariant-checking seams (see src/audit for the implementation).
class AuditHooks {
 public:
  virtual ~AuditHooks() = default;

  /// A transmission is being committed to the medium: `tx` starts radiating
  /// on `channel` at `now` for `duration` ticks.
  virtual void OnTransmitStart(SimTime now, const RadioPort& tx,
                               const Channel& channel, SimTime duration) = 0;

  /// A MAC's interframe timings were (re)configured — at device
  /// construction and on every retune.
  virtual void OnMacTiming(const RadioPort& radio, const PhyTiming& timing) = 0;

  /// A device's main radio is now tuned to `channel` (initial tune and
  /// every SwitchChannel).
  virtual void OnNodeTuned(SimTime now, int node, const Channel& channel) = 0;

  /// A WhiteFi client declared disconnection and is vacating.
  virtual void OnClientDisconnected(SimTime now, int node) = 0;

  /// A WhiteFi client re-established contact with its AP.
  virtual void OnClientReconnected(SimTime now, int node) = 0;

  /// A disconnected client sent (queued) a chirp.
  virtual void OnChirp(SimTime now, int node) = 0;
};

}  // namespace whitefi
