// Traffic generators.
//
// The paper's evaluation uses three source types: link-saturating UDP
// flows for the WhiteFi AP/clients, constant-bit-rate (CBR) background
// traffic parameterized by inter-packet delay (Figures 10-12, 14), and a
// two-state (Active/Passive) Markov background for the churn experiment
// (Figure 13).
#pragma once

#include <functional>

#include "sim/node.h"

namespace whitefi {

/// Constant-bit-rate source: one data frame of `payload_bytes` every
/// `interval`, addressed to `dst`.
class CbrSource {
 public:
  CbrSource(Device& device, int dst, int payload_bytes, SimTime interval);

  /// Begins sending (first frame after one interval).
  void Start();

  /// Pauses/resumes.  While inactive no frames are generated.
  void SetActive(bool active);

  /// True iff currently generating.
  bool Active() const { return active_; }

  /// Frames generated so far.
  std::uint64_t Generated() const { return generated_; }

  /// Changes the inter-packet interval (takes effect next tick).
  void SetInterval(SimTime interval) { interval_ = interval; }

 private:
  void Tick();

  Device& device_;
  int dst_;
  int payload_bytes_;
  SimTime interval_;
  bool started_ = false;
  bool active_ = false;
  EventId timer_ = kInvalidEventId;
  std::uint64_t generated_ = 0;
};

/// Link-saturating source: keeps the device's MAC queue topped up so the
/// MAC always has a frame to contend with (backlogged UDP flow).  With
/// several destinations (an AP's downlink to all its clients) frames
/// round-robin across them.  A watchdog re-primes the queue after channel
/// switches (which clear the MAC queue).
class SaturatedSource {
 public:
  SaturatedSource(Device& device, std::vector<int> dsts, int payload_bytes);

  /// Single-destination convenience.
  SaturatedSource(Device& device, int dst, int payload_bytes)
      : SaturatedSource(device, std::vector<int>{dst}, payload_bytes) {}

  /// Begins sending.
  void Start();

  /// Replaces the destination set (takes effect on the next refill).
  void SetDsts(std::vector<int> dsts);

  /// Frames generated so far.
  std::uint64_t Generated() const { return generated_; }

 private:
  void Refill();
  void Watchdog();

  Device& device_;
  std::vector<int> dsts_;
  std::size_t next_dst_ = 0;
  int payload_bytes_;
  bool started_ = false;
  std::uint64_t generated_ = 0;
};

/// Two-state Markov on/off modulation of a CBR source (Figure 13).  In the
/// Active state the wrapped source runs; in Passive it is silent.  State
/// holding times are exponential.
class MarkovOnOffSource {
 public:
  struct Params {
    SimTime mean_active = 30 * kTicksPerSec;
    SimTime mean_passive = 30 * kTicksPerSec;
    /// Probability the source starts in the Active state.
    double initial_active_probability = 0.5;
  };

  MarkovOnOffSource(Device& device, int dst, int payload_bytes,
                    SimTime interval, const Params& params);

  /// Starts the chain (draws the initial state).
  void Start();

  /// Stationary probability of the Active state.
  double StationaryActive() const;

  /// The wrapped CBR source.
  CbrSource& cbr() { return cbr_; }

 private:
  void EnterState(bool active);

  CbrSource cbr_;
  Params params_;
  Simulator& sim_;
  Rng rng_;
};

}  // namespace whitefi
