// Radio propagation: log-distance path loss over the UHF band.
//
// UHF signals propagate far better than 2.4 GHz — the paper expects a
// single AP to cover >1 km.  The default parameters give decode range of a
// few km and carrier-sense range beyond that, so every node in the paper's
// scenarios (placed "within transmission range") hears every other.
#pragma once

#include <cmath>

#include "util/units.h"

namespace whitefi {

/// A point in the 2D deployment plane (meters).
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance in meters.
inline double Distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Log-distance path-loss model.
struct PropagationParams {
  double reference_loss_db = 28.0;  ///< Loss at 1 m.
  double exponent = 2.2;            ///< UHF path-loss exponent.
  double min_distance = 1.0;        ///< Near-field clamp (m).
};

/// Path-loss / received-power computations.
class PropagationModel {
 public:
  explicit PropagationModel(const PropagationParams& params = {})
      : params_(params) {}

  /// Path loss in dB over `meters`.
  double PathLossDb(double meters) const {
    const double d = std::max(meters, params_.min_distance);
    return params_.reference_loss_db + 10.0 * params_.exponent * std::log10(d);
  }

  /// Received power for a transmitter at `tx_power` dBm at range `meters`.
  Dbm ReceivedPower(Dbm tx_power, double meters) const {
    return tx_power - PathLossDb(meters);
  }

  /// Received power between two positions.
  Dbm ReceivedPower(Dbm tx_power, const Position& from,
                    const Position& to) const {
    return ReceivedPower(tx_power, Distance(from, to));
  }

  const PropagationParams& params() const { return params_; }

 private:
  PropagationParams params_;
};

/// Thermal-plus-implementation noise floor for a receiver of the given
/// bandwidth: -101 dBm for 20 MHz, 3 dB lower per width halving (the
/// paper's QualNet modification "adjusted the channel noise levels based
/// on the channel width").
Dbm NoiseFloorDbm(MHz width_mhz);

}  // namespace whitefi
