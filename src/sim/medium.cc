#include "sim/medium.h"

#include <algorithm>
#include <sstream>

namespace whitefi {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kData: return "Data";
    case FrameType::kAck: return "Ack";
    case FrameType::kBeacon: return "Beacon";
    case FrameType::kCts: return "Cts";
    case FrameType::kChirp: return "Chirp";
    case FrameType::kChannelSwitch: return "ChannelSwitch";
    case FrameType::kReport: return "Report";
  }
  return "?";
}

std::string Frame::ToString() const {
  std::ostringstream os;
  os << FrameTypeName(type) << "(" << src << "->";
  if (IsBroadcast()) {
    os << "*";
  } else {
    os << dst;
  }
  os << ", " << bytes << "B)";
  return os.str();
}

Medium::Medium(Simulator& sim, const MediumParams& params)
    : sim_(sim), params_(params), prop_(params.propagation) {}

void Medium::Register(RadioPort* radio) { radios_.push_back(radio); }

void Medium::Unregister(RadioPort* radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), radio),
                radios_.end());
}

void Medium::AccrueBooks() {
  const SimTime now = sim_.Now();
  if (now == books_accrued_at_) return;
  const Us elapsed = ToUs(now - books_accrued_at_);
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    if (active_count_[static_cast<std::size_t>(c)] > 0) {
      books_[static_cast<std::size_t>(c)].busy += elapsed;
    }
  }
  books_accrued_at_ = now;
}

void Medium::Transmit(RadioPort* tx, const Channel& channel,
                      const Frame& frame, Dbm tx_power, SimTime duration,
                      std::function<void()> on_end) {
  AccrueBooks();
  const std::uint64_t id = next_tx_id_++;
  const auto type_index = static_cast<std::size_t>(frame.type);
  WHITEFI_METRIC_COUNT(tx_counters_[type_index], 1);
  if (obs_.trace != nullptr) {
    TraceEvent event;
    event.at_us = sim_.Now();
    event.kind = TraceEventKind::kFrameTx;
    event.node = tx->NodeId();
    event.src = frame.src;
    event.dst = frame.dst;
    event.bytes = frame.bytes;
    event.frame_type = FrameTypeName(frame.type);
    event.detail = channel.ToString();
    obs_.trace->Append(std::move(event));
  }
  ActiveTx record{id,      tx,  channel, frame,
                  tx_power, sim_.Now(), sim_.Now() + duration,
                  {}};
  // Record mutual interference with every time-overlapping transmission on
  // overlapping spectrum.
  for (auto& [other_id, other] : active_) {
    if (other.channel.Overlaps(channel)) {
      other.interferers.push_back(id);
      record.interferers.push_back(other_id);
    }
  }
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    ++active_count_[static_cast<std::size_t>(c)];
    books_[static_cast<std::size_t>(c)].per_node[tx->NodeId()] += ToUs(duration);
  }
  active_.emplace(id, std::move(record));
  sim_.Schedule(sim_.Now() + duration,
                [this, id, cb = std::move(on_end)]() mutable {
                  EndTransmission(id, std::move(cb));
                });
  NotifyOverlapping(channel);
}

void Medium::EndTransmission(std::uint64_t tx_id,
                             std::function<void()> on_end) {
  auto it = active_.find(tx_id);
  if (it == active_.end()) return;
  AccrueBooks();
  ActiveTx tx = std::move(it->second);
  active_.erase(it);
  for (UhfIndex c = tx.channel.Low(); c <= tx.channel.High(); ++c) {
    --active_count_[static_cast<std::size_t>(c)];
  }
  const Channel channel = tx.channel;
  const Frame frame = tx.frame;
  RadioPort* const tx_radio = tx.tx;
  recently_ended_.emplace(tx_id, std::move(tx));
  ResolveReceptions(recently_ended_.at(tx_id));
  if (active_.empty()) {
    recently_ended_.clear();
  } else {
    // Bounded GC for continuously-busy workloads: an entry can only be
    // referenced by an active transmission that overlapped it in time, and
    // no frame lasts anywhere near a second, so older entries are dead.
    const SimTime horizon = sim_.Now() - kTicksPerSec;
    for (auto it = recently_ended_.begin(); it != recently_ended_.end();) {
      it = it->second.end < horizon ? recently_ended_.erase(it) : std::next(it);
    }
  }
  if (on_end) on_end();
  NotifyOverlapping(channel);
  for (const FrameTap& tap : taps_) tap(channel, frame, *tx_radio);
}

void Medium::AddFrameTap(FrameTap tap) { taps_.push_back(std::move(tap)); }

void Medium::SetObservability(const Observability& obs) {
  obs_ = obs;
  if (obs_.metrics == nullptr) {
    tx_counters_.fill(nullptr);
    rx_counters_.fill(nullptr);
    drop_counters_.fill(nullptr);
    return;
  }
  for (int i = 0; i < kNumFrameTypes; ++i) {
    const std::string type = FrameTypeName(static_cast<FrameType>(i));
    tx_counters_[i] = &obs_.metrics->GetCounter("whitefi.medium.tx." + type);
    rx_counters_[i] = &obs_.metrics->GetCounter("whitefi.medium.rx." + type);
    drop_counters_[i] =
        &obs_.metrics->GetCounter("whitefi.medium.drop." + type);
  }
}

double Medium::InterferencePowerMw(const ActiveTx& tx,
                                   const RadioPort& rx) const {
  double total_mw = 0.0;
  for (std::uint64_t interferer_id : tx.interferers) {
    const ActiveTx* interferer = nullptr;
    if (auto it = active_.find(interferer_id); it != active_.end()) {
      interferer = &it->second;
    } else if (auto jt = recently_ended_.find(interferer_id);
               jt != recently_ended_.end()) {
      interferer = &jt->second;
    }
    if (interferer == nullptr) continue;
    const Dbm p = prop_.ReceivedPower(interferer->power,
                                      interferer->tx->Location(),
                                      rx.Location());
    // Only the interferer's in-band power corrupts our symbols.
    const double fraction =
        InBandPowerFraction(interferer->channel, rx.TunedChannel());
    if (fraction <= 0.0) continue;
    total_mw += DbmToMilliwatt(p) * fraction;
  }
  return total_mw;
}

void Medium::ResolveReceptions(const ActiveTx& tx) {
  ScopedPhaseTimer timer(obs_.profiler, "medium.deliver");
  // Half-duplex: a radio that transmitted during this frame cannot have
  // received it.  Any such transmission on the same channel is recorded in
  // the interferer list, so collect those node ids.
  std::vector<int> talked_during;
  for (std::uint64_t interferer_id : tx.interferers) {
    const ActiveTx* interferer = nullptr;
    if (auto it = active_.find(interferer_id); it != active_.end()) {
      interferer = &it->second;
    } else if (auto jt = recently_ended_.find(interferer_id);
               jt != recently_ended_.end()) {
      interferer = &jt->second;
    }
    if (interferer != nullptr) {
      talked_during.push_back(interferer->tx->NodeId());
    }
  }

  const double noise_mw =
      DbmToMilliwatt(NoiseFloorDbm(WidthMHz(tx.channel.width)));
  const double min_sinr = DbToLinear(params_.decode_snr_db);

  for (RadioPort* rx : radios_) {
    if (rx == tx.tx) continue;
    if (!rx->RxEnabled()) continue;
    // Exact (F, W) match required: packets at other widths or centers are
    // dropped (paper Section 5.4).
    if (!(rx->TunedChannel() == tx.channel)) continue;
    if (std::find(talked_during.begin(), talked_during.end(), rx->NodeId()) !=
        talked_during.end()) {
      continue;
    }
    const Dbm rx_power =
        prop_.ReceivedPower(tx.power, tx.tx->Location(), rx->Location());
    const double signal_mw = DbmToMilliwatt(rx_power);
    const double interference_mw = InterferencePowerMw(tx, *rx);
    const auto type_index = static_cast<std::size_t>(tx.frame.type);
    if (signal_mw / (noise_mw + interference_mw) < min_sinr) {
      WHITEFI_METRIC_COUNT(drop_counters_[type_index], 1);
      if (obs_.trace != nullptr) {
        TraceEvent event;
        event.at_us = sim_.Now();
        event.kind = TraceEventKind::kFrameDrop;
        event.node = rx->NodeId();
        event.src = tx.frame.src;
        event.dst = tx.frame.dst;
        event.bytes = tx.frame.bytes;
        event.frame_type = FrameTypeName(tx.frame.type);
        event.detail = "sinr";
        obs_.trace->Append(std::move(event));
      }
      continue;
    }
    // Fault injection: frames that survive physics can still be lost to
    // burst channels or targeted control-plane faults (see src/fault).
    if (faults_ != nullptr) {
      const char* reason =
          faults_->FrameFault(sim_.Now(), tx.frame.type, rx->NodeId());
      if (reason != nullptr) {
        WHITEFI_METRIC_COUNT(drop_counters_[type_index], 1);
        if (obs_.trace != nullptr) {
          TraceEvent event;
          event.at_us = sim_.Now();
          event.kind = TraceEventKind::kFrameDrop;
          event.node = rx->NodeId();
          event.src = tx.frame.src;
          event.dst = tx.frame.dst;
          event.bytes = tx.frame.bytes;
          event.frame_type = FrameTypeName(tx.frame.type);
          event.detail = reason;
          obs_.trace->Append(std::move(event));
        }
        continue;
      }
    }
    WHITEFI_METRIC_COUNT(rx_counters_[type_index], 1);
    if (obs_.trace != nullptr) {
      TraceEvent event;
      event.at_us = sim_.Now();
      event.kind = TraceEventKind::kFrameRx;
      event.node = rx->NodeId();
      event.src = tx.frame.src;
      event.dst = tx.frame.dst;
      event.bytes = tx.frame.bytes;
      event.frame_type = FrameTypeName(tx.frame.type);
      obs_.trace->Append(std::move(event));
    }
    rx->DeliverFrame(tx.frame, rx_power);
  }
}

void Medium::NotifyOverlapping(const Channel& channel) {
  for (RadioPort* radio : radios_) {
    if (!radio->RxEnabled()) continue;
    if (radio->TunedChannel().Overlaps(channel)) radio->MediumChanged();
  }
}

double InBandPowerFraction(const Channel& tx, const Channel& listener) {
  const UhfIndex lo = std::max(tx.Low(), listener.Low());
  const UhfIndex hi = std::min(tx.High(), listener.High());
  if (hi < lo) return 0.0;
  return static_cast<double>(hi - lo + 1) /
         static_cast<double>(SpanChannels(tx.width));
}

bool Medium::CarrierSensed(const RadioPort& radio,
                           const Channel& channel) const {
  for (const auto& [id, tx] : active_) {
    if (tx.tx == &radio) continue;
    if (!tx.channel.Overlaps(channel)) continue;
    const Dbm p =
        prop_.ReceivedPower(tx.power, tx.tx->Location(), radio.Location());
    if (tx.channel == channel) {
      if (p >= params_.same_channel_cs_dbm) return true;
    } else {
      const Dbm in_band =
          p + LinearToDb(InBandPowerFraction(tx.channel, channel));
      if (in_band >= params_.energy_detect_cs_dbm) return true;
    }
  }
  return false;
}

bool Medium::Transmitting(const RadioPort& radio) const {
  for (const auto& [id, tx] : active_) {
    if (tx.tx == &radio) return true;
  }
  return false;
}

AirtimeBooks Medium::SnapshotBooks() {
  AccrueBooks();
  return books_;
}

std::vector<int> Medium::ActiveApsBetween(const AirtimeBooks& before,
                                          const AirtimeBooks& after,
                                          UhfIndex c,
                                          const std::vector<int>& ap_ids) {
  std::vector<int> active;
  const auto& b = before[static_cast<std::size_t>(c)].per_node;
  const auto& a = after[static_cast<std::size_t>(c)].per_node;
  for (int id : ap_ids) {
    const auto bt = b.find(id);
    const auto at = a.find(id);
    const Us before_time = bt == b.end() ? 0.0 : bt->second;
    const Us after_time = at == a.end() ? 0.0 : at->second;
    if (after_time > before_time) active.push_back(id);
  }
  return active;
}

std::vector<int> Medium::ApIds() const {
  std::vector<int> ids;
  for (const RadioPort* radio : radios_) {
    if (radio->IsAp()) ids.push_back(radio->NodeId());
  }
  return ids;
}

}  // namespace whitefi
