#include "sim/medium.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "sim/audit_hooks.h"

namespace whitefi {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kData: return "Data";
    case FrameType::kAck: return "Ack";
    case FrameType::kBeacon: return "Beacon";
    case FrameType::kCts: return "Cts";
    case FrameType::kChirp: return "Chirp";
    case FrameType::kChannelSwitch: return "ChannelSwitch";
    case FrameType::kReport: return "Report";
  }
  return "?";
}

std::string Frame::ToString() const {
  std::ostringstream os;
  os << FrameTypeName(type) << "(" << src << "->";
  if (IsBroadcast()) {
    os << "*";
  } else {
    os << dst;
  }
  os << ", " << bytes << "B)";
  return os.str();
}

Medium::Medium(Simulator& sim, const MediumParams& params)
    : sim_(sim), params_(params), prop_(params.propagation) {}

void Medium::Register(RadioPort* radio) { radios_.push_back(radio); }

void Medium::Unregister(RadioPort* radio) {
  radios_.erase(std::remove(radios_.begin(), radios_.end(), radio),
                radios_.end());
}

void Medium::AccrueChannel(std::size_t c) {
  const SimTime now = sim_.Now();
  if (now == channel_accrued_at_[c]) return;
  // `ToUs` is an exact int64 -> double conversion and busy is a sum of
  // integer-valued doubles, so accruing per channel in fewer, larger steps
  // is bit-equal to the eager all-channel walk it replaces.
  if (active_count_[c] > 0) books_[c].busy += ToUs(now - channel_accrued_at_[c]);
  channel_accrued_at_[c] = now;
}

void Medium::Transmit(RadioPort* tx, const Channel& channel,
                      const Frame& frame, Dbm tx_power, SimTime duration,
                      std::function<void()> on_end) {
  StartTransmission(tx, channel, frame, tx_power, duration, /*foreign=*/false,
                    std::move(on_end));
}

void Medium::InjectForeignEnergy(int node_id, bool is_ap,
                                 const Position& position,
                                 const Channel& channel, const Frame& frame,
                                 Dbm tx_power, SimTime duration) {
  auto& source = foreign_sources_[node_id];
  if (source == nullptr) source = std::make_unique<ForeignSource>();
  source->id = node_id;
  source->ap = is_ap;
  source->pos = position;
  StartTransmission(source.get(), channel, frame, tx_power, duration,
                    /*foreign=*/true, {});
}

void Medium::StartTransmission(RadioPort* tx, const Channel& channel,
                               const Frame& frame, Dbm tx_power,
                               SimTime duration, bool foreign,
                               std::function<void()> on_end) {
  const std::uint64_t id = next_tx_id_++;
  const auto type_index = static_cast<std::size_t>(frame.type);
  if (foreign) {
    WHITEFI_METRIC_COUNT(foreign_counter_, 1);
  } else {
    WHITEFI_METRIC_COUNT(tx_counters_[type_index], 1);
  }
  if (!foreign && obs_.trace != nullptr) {
    if (obs_.trace->Wants(TraceEventKind::kFrameTx)) {
      TraceEvent event;
      event.at_us = sim_.Now();
      event.kind = TraceEventKind::kFrameTx;
      event.node = tx->NodeId();
      event.src = frame.src;
      event.dst = frame.dst;
      event.bytes = frame.bytes;
      event.frame_type = FrameTypeName(frame.type);
      event.detail = channel.ToString();
      obs_.trace->Append(std::move(event));
    } else {
      obs_.trace->CountSkipped(TraceEventKind::kFrameTx);
    }
  }
  ActiveTx record{id,      tx,  channel, frame,
                  tx_power, sim_.Now(), sim_.Now() + duration,
                  {}, foreign};
  // Record mutual interference with every time-overlapping transmission on
  // overlapping spectrum: only transmissions indexed on the channels this
  // frame spans can overlap it.  Each is visited once (at the first spanned
  // channel inside our range); the collected ids are sorted so the
  // interference sums accumulate in the same ascending-id order as the
  // full-scan implementation this replaces.
  const auto lo = static_cast<std::size_t>(channel.Low());
  const auto hi = static_cast<std::size_t>(channel.High());
  for (std::size_t c = lo; c <= hi; ++c) {
    for (ActiveTx* other : channel_txs_[c]) {
      const auto other_lo = static_cast<std::size_t>(other->channel.Low());
      if (std::max(other_lo, lo) != c) continue;  // Seen at an earlier c.
      other->interferers.push_back(id);
      record.interferers.push_back(other->id);
    }
  }
  std::sort(record.interferers.begin(), record.interferers.end());
  for (std::size_t c = lo; c <= hi; ++c) {
    AccrueChannel(c);
    ++active_count_[c];
    books_[c].per_node[tx->NodeId()] += ToUs(duration);
  }
  ActiveTx& stored = active_.emplace(id, std::move(record)).first->second;
  for (std::size_t c = lo; c <= hi; ++c) channel_txs_[c].push_back(&stored);
  ++radio_tx_count_[tx];
  // Audit seam: the transmission is committed (indexed + booked) from this
  // instant; the auditor sees exactly what the airtime books will accrue.
  if (obs_.auditor != nullptr) {
    obs_.auditor->OnTransmitStart(sim_.Now(), *tx, channel, duration);
  }
  sim_.Schedule(sim_.Now() + duration,
                [this, id, cb = std::move(on_end)]() mutable {
                  EndTransmission(id, std::move(cb));
                });
  NotifyOverlapping(channel);
}

void Medium::EndTransmission(std::uint64_t tx_id,
                             std::function<void()> on_end) {
  auto it = active_.find(tx_id);
  if (it == active_.end()) return;
  ActiveTx* const stored = &it->second;
  for (auto c = static_cast<std::size_t>(stored->channel.Low());
       c <= static_cast<std::size_t>(stored->channel.High()); ++c) {
    AccrueChannel(c);
    --active_count_[c];
    auto& list = channel_txs_[c];
    auto pos = std::find(list.begin(), list.end(), stored);
    assert(pos != list.end());
    *pos = list.back();
    list.pop_back();
  }
  if (auto rt = radio_tx_count_.find(stored->tx); --rt->second == 0) {
    radio_tx_count_.erase(rt);
  }
  ActiveTx tx = std::move(it->second);
  active_.erase(it);
  const Channel channel = tx.channel;
  const Frame frame = tx.frame;
  RadioPort* const tx_radio = tx.tx;
  const Dbm tx_power = tx.power;
  const SimTime tx_start = tx.start;
  const SimTime tx_end = tx.end;
  const bool foreign = tx.foreign;
  recently_ended_.emplace(tx_id, std::move(tx));
  ended_order_.push_back(tx_id);
  ResolveReceptions(recently_ended_.at(tx_id));
  if (active_.empty()) {
    recently_ended_.clear();
    ended_order_.clear();
  } else {
    // Bounded GC for continuously-busy workloads: an entry can only be
    // referenced by an active transmission that overlapped it in time, and
    // no frame lasts anywhere near a second, so older entries are dead.
    // ended_order_ is end-time-ordered, so only the expired prefix is
    // examined — one comparison when nothing is old enough.
    const SimTime horizon = sim_.Now() - kTicksPerSec;
    while (!ended_order_.empty()) {
      const auto it = recently_ended_.find(ended_order_.front());
      if (it == recently_ended_.end()) {  // Dropped by a bulk clear.
        ended_order_.pop_front();
        continue;
      }
      if (it->second.end >= horizon) break;
      recently_ended_.erase(it);
      ended_order_.pop_front();
    }
  }
  if (on_end) on_end();
  NotifyOverlapping(channel);
  for (const FrameTap& tap : taps_) tap(channel, frame, *tx_radio);
  if (!foreign) {
    const EnergyTapInfo info{channel, frame, *tx_radio, tx_power, tx_start,
                             tx_end};
    for (const EnergyTap& tap : energy_taps_) tap(info);
  }
}

void Medium::AddFrameTap(FrameTap tap) { taps_.push_back(std::move(tap)); }

void Medium::AddEnergyTap(EnergyTap tap) {
  energy_taps_.push_back(std::move(tap));
}

void Medium::SetObservability(const Observability& obs) {
  obs_ = obs;
  if (obs_.metrics == nullptr) {
    foreign_counter_ = nullptr;
    tx_counters_.fill(nullptr);
    rx_counters_.fill(nullptr);
    drop_counters_.fill(nullptr);
    return;
  }
  foreign_counter_ =
      &obs_.metrics->GetCounter("whitefi.medium.foreign_energy");
  for (int i = 0; i < kNumFrameTypes; ++i) {
    const std::string type = FrameTypeName(static_cast<FrameType>(i));
    tx_counters_[i] = &obs_.metrics->GetCounter("whitefi.medium.tx." + type);
    rx_counters_[i] = &obs_.metrics->GetCounter("whitefi.medium.rx." + type);
    drop_counters_[i] =
        &obs_.metrics->GetCounter("whitefi.medium.drop." + type);
  }
}

const Medium::ActiveTx* Medium::FindTx(std::uint64_t id) const {
  if (auto it = active_.find(id); it != active_.end()) return &it->second;
  if (auto jt = recently_ended_.find(id); jt != recently_ended_.end()) {
    return &jt->second;
  }
  return nullptr;
}

double Medium::InterferencePowerMw(const ActiveTx& tx,
                                   const RadioPort& rx) const {
  double total_mw = 0.0;
  for (std::uint64_t interferer_id : tx.interferers) {
    const ActiveTx* interferer = FindTx(interferer_id);
    if (interferer == nullptr) continue;
    const Dbm p = prop_.ReceivedPower(interferer->power,
                                      interferer->tx->Location(),
                                      rx.Location());
    // Only the interferer's in-band power corrupts our symbols.
    const double fraction =
        InBandPowerFraction(interferer->channel, rx.TunedChannel());
    if (fraction <= 0.0) continue;
    total_mw += DbmToMilliwatt(p) * fraction;
  }
  return total_mw;
}

void Medium::ResolveReceptions(const ActiveTx& tx) {
  // Ghost energy is sensed, booked, and tapped but never decodable here:
  // its frames are delivered (or dropped) in the shard that owns the
  // transmitter.  Skipping before the radio walk keeps rx/drop counters
  // clean of cross-shard duplicates.
  if (tx.foreign) return;
  ScopedPhaseTimer timer(obs_.profiler, "medium.deliver");
  // Half-duplex: a radio that transmitted during this frame cannot have
  // received it.  Any such transmission on the same channel is recorded in
  // the interferer list, so collect those node ids — lazily, on the first
  // radio that is actually tuned to receive this frame, so dense storms
  // with no matching listener skip the interferer walk entirely.
  std::vector<int> talked_during;
  bool talked_during_built = false;
  const auto BuildTalkedDuring = [&] {
    if (talked_during_built) return;
    talked_during_built = true;
    for (std::uint64_t interferer_id : tx.interferers) {
      if (const ActiveTx* interferer = FindTx(interferer_id)) {
        talked_during.push_back(interferer->tx->NodeId());
      }
    }
  };

  const double noise_mw =
      DbmToMilliwatt(NoiseFloorDbm(WidthMHz(tx.channel.width)));
  const double min_sinr = DbToLinear(params_.decode_snr_db);

  for (RadioPort* rx : radios_) {
    if (rx == tx.tx) continue;
    if (!rx->RxEnabled()) continue;
    // Exact (F, W) match required: packets at other widths or centers are
    // dropped (paper Section 5.4).
    if (!(rx->TunedChannel() == tx.channel)) continue;
    BuildTalkedDuring();
    if (std::find(talked_during.begin(), talked_during.end(), rx->NodeId()) !=
        talked_during.end()) {
      continue;
    }
    const Dbm rx_power =
        prop_.ReceivedPower(tx.power, tx.tx->Location(), rx->Location());
    const double signal_mw = DbmToMilliwatt(rx_power);
    const double interference_mw = InterferencePowerMw(tx, *rx);
    const auto type_index = static_cast<std::size_t>(tx.frame.type);
    if (signal_mw / (noise_mw + interference_mw) < min_sinr) {
      WHITEFI_METRIC_COUNT(drop_counters_[type_index], 1);
      if (obs_.trace != nullptr) {
        if (obs_.trace->Wants(TraceEventKind::kFrameDrop)) {
          TraceEvent event;
          event.at_us = sim_.Now();
          event.kind = TraceEventKind::kFrameDrop;
          event.node = rx->NodeId();
          event.src = tx.frame.src;
          event.dst = tx.frame.dst;
          event.bytes = tx.frame.bytes;
          event.frame_type = FrameTypeName(tx.frame.type);
          event.detail = "sinr";
          obs_.trace->Append(std::move(event));
        } else {
          obs_.trace->CountSkipped(TraceEventKind::kFrameDrop);
        }
      }
      continue;
    }
    // Fault injection: frames that survive physics can still be lost to
    // burst channels or targeted control-plane faults (see src/fault).
    if (faults_ != nullptr) {
      const char* reason =
          faults_->FrameFault(sim_.Now(), tx.frame.type, rx->NodeId());
      if (reason != nullptr) {
        WHITEFI_METRIC_COUNT(drop_counters_[type_index], 1);
        if (obs_.trace != nullptr) {
          if (obs_.trace->Wants(TraceEventKind::kFrameDrop)) {
            TraceEvent event;
            event.at_us = sim_.Now();
            event.kind = TraceEventKind::kFrameDrop;
            event.node = rx->NodeId();
            event.src = tx.frame.src;
            event.dst = tx.frame.dst;
            event.bytes = tx.frame.bytes;
            event.frame_type = FrameTypeName(tx.frame.type);
            event.detail = reason;
            obs_.trace->Append(std::move(event));
          } else {
            obs_.trace->CountSkipped(TraceEventKind::kFrameDrop);
          }
        }
        continue;
      }
    }
    WHITEFI_METRIC_COUNT(rx_counters_[type_index], 1);
    if (obs_.trace != nullptr) {
      if (obs_.trace->Wants(TraceEventKind::kFrameRx)) {
        TraceEvent event;
        event.at_us = sim_.Now();
        event.kind = TraceEventKind::kFrameRx;
        event.node = rx->NodeId();
        event.src = tx.frame.src;
        event.dst = tx.frame.dst;
        event.bytes = tx.frame.bytes;
        event.frame_type = FrameTypeName(tx.frame.type);
        obs_.trace->Append(std::move(event));
      } else {
        obs_.trace->CountSkipped(TraceEventKind::kFrameRx);
      }
    }
    rx->DeliverFrame(tx.frame, rx_power);
  }
}

void Medium::NotifyOverlapping(const Channel& channel) {
  for (RadioPort* radio : radios_) {
    if (!radio->RxEnabled()) continue;
    if (radio->TunedChannel().Overlaps(channel)) radio->MediumChanged();
  }
}

double InBandPowerFraction(const Channel& tx, const Channel& listener) {
  const UhfIndex lo = std::max(tx.Low(), listener.Low());
  const UhfIndex hi = std::min(tx.High(), listener.High());
  if (hi < lo) return 0.0;
  return static_cast<double>(hi - lo + 1) /
         static_cast<double>(SpanChannels(tx.width));
}

bool Medium::CarrierSensed(const RadioPort& radio,
                           const Channel& channel) const {
  // Only transmissions indexed on a spanned channel can overlap `channel`;
  // each is examined once (at the first spanned channel in range).
  const auto lo = static_cast<std::size_t>(channel.Low());
  const auto hi = static_cast<std::size_t>(channel.High());
  for (std::size_t c = lo; c <= hi; ++c) {
    for (const ActiveTx* tx : channel_txs_[c]) {
      if (std::max(static_cast<std::size_t>(tx->channel.Low()), lo) != c) {
        continue;  // Seen at an earlier c.
      }
      if (tx->tx == &radio) continue;
      const Dbm p =
          prop_.ReceivedPower(tx->power, tx->tx->Location(), radio.Location());
      if (tx->channel == channel) {
        if (p >= params_.same_channel_cs_dbm) return true;
      } else {
        const Dbm in_band =
            p + LinearToDb(InBandPowerFraction(tx->channel, channel));
        if (in_band >= params_.energy_detect_cs_dbm) return true;
      }
    }
  }
  return false;
}

bool Medium::Transmitting(const RadioPort& radio) const {
  return radio_tx_count_.count(&radio) > 0;
}

AirtimeBooks Medium::SnapshotBooks() {
  for (std::size_t c = 0; c < static_cast<std::size_t>(kNumUhfChannels); ++c) {
    AccrueChannel(c);
  }
  return books_;
}

const ChannelBooks& Medium::ChannelBooksAt(UhfIndex c) {
  const auto index = static_cast<std::size_t>(c);
  AccrueChannel(index);
  return books_[index];
}

std::vector<int> Medium::ActiveApsBetween(const AirtimeBooks& before,
                                          const AirtimeBooks& after,
                                          UhfIndex c,
                                          const std::vector<int>& ap_ids) {
  return ActiveApsBetween(before[static_cast<std::size_t>(c)],
                          after[static_cast<std::size_t>(c)], ap_ids);
}

std::vector<int> Medium::ActiveApsBetween(const ChannelBooks& before,
                                          const ChannelBooks& after,
                                          const std::vector<int>& ap_ids) {
  std::vector<int> active;
  const auto& b = before.per_node;
  const auto& a = after.per_node;
  for (int id : ap_ids) {
    const auto bt = b.find(id);
    const auto at = a.find(id);
    const Us before_time = bt == b.end() ? 0.0 : bt->second;
    const Us after_time = at == a.end() ? 0.0 : at->second;
    if (after_time > before_time) active.push_back(id);
  }
  return active;
}

std::vector<int> Medium::ApIds() const {
  std::vector<int> ids;
  for (const RadioPort* radio : radios_) {
    if (radio->IsAp()) ids.push_back(radio->NodeId());
  }
  // Cross-shard APs whose ghost energy lands here count as interfering
  // APs too: a scanner's B_c must see a foreign AP across a shard seam
  // exactly as it would in a flat world.
  for (const auto& [id, source] : foreign_sources_) {
    if (source->ap) ids.push_back(id);
  }
  return ids;
}

}  // namespace whitefi
