// Wireless-microphone audio quality under co-channel data transmissions.
//
// Section 2.3 of the paper measures, in an anechoic chamber, the PESQ Mean
// Opinion Score of speech carried over a wireless mic while a white-space
// device transmits 70-byte packets every 100 ms at -30 dBm on the same UHF
// channel: the MOS drops by 0.9, an order of magnitude above the 0.1
// threshold noticeable to the human ear.  This model substitutes for that
// measurement: a dose-response curve in interference duty and power,
// anchored to the paper's data point, used to justify why WhiteFi must
// vacate (not negotiate on) a channel when a mic appears.
#pragma once

namespace whitefi {

/// Parameters of the MOS degradation model.
struct MicAudioModel {
  double clean_mos = 4.2;  ///< PESQ MOS without interference.
  double floor_mos = 1.0;  ///< PESQ scale floor.
  /// Interference power (dBm at the mic receiver) below which packets do
  /// not measurably disturb the audio.
  double harmless_power_dbm = -75.0;
  /// dB of interference power over the harmless level that doubles the
  /// per-packet audio damage (saturating).
  double power_doubling_db = 10.0;
  /// MOS damage per interfering packet-event per second at the paper's
  /// reference power (-30 dBm).  Calibrated so 10 packets/s at -30 dBm
  /// (70 B every 100 ms) costs 0.9 MOS.
  double reference_damage_per_event_rate = 0.09;
  double reference_power_dbm = -30.0;
};

/// The one-ear-noticeable MOS drop from the literature the paper cites.
inline constexpr double kNoticeableMosDrop = 0.1;

/// Predicts the PESQ MOS of mic audio while a co-channel transmitter sends
/// `packets_per_second` packets at `tx_power_dbm` (as seen at the mic
/// receiver).  Zero rate returns the clean MOS; degradation saturates at
/// the PESQ floor.
double PredictMicMos(const MicAudioModel& model, double packets_per_second,
                     double tx_power_dbm);

/// MOS drop relative to clean audio for the same scenario.
double PredictMosDrop(const MicAudioModel& model, double packets_per_second,
                      double tx_power_dbm);

/// True iff the interference would be noticeable to a human ear
/// (drop >= 0.1 MOS).
bool InterferenceAudible(const MicAudioModel& model, double packets_per_second,
                         double tx_power_dbm);

}  // namespace whitefi
