#include "audio/mos.h"

#include <algorithm>
#include <cmath>

namespace whitefi {

namespace {

// Saturating power weight: 0 at/below the harmless level, 1 at the
// reference power, approaching an asymptote above it.
double PowerWeight(const MicAudioModel& model, double tx_power_dbm) {
  if (tx_power_dbm <= model.harmless_power_dbm) return 0.0;
  const double over = (tx_power_dbm - model.harmless_power_dbm) /
                      model.power_doubling_db;
  const double reference_over =
      (model.reference_power_dbm - model.harmless_power_dbm) /
      model.power_doubling_db;
  // log2-style saturation normalized to 1 at the reference power.
  return std::log2(1.0 + over) / std::log2(1.0 + reference_over);
}

}  // namespace

double PredictMicMos(const MicAudioModel& model, double packets_per_second,
                     double tx_power_dbm) {
  const double drop = PredictMosDrop(model, packets_per_second, tx_power_dbm);
  return std::max(model.floor_mos, model.clean_mos - drop);
}

double PredictMosDrop(const MicAudioModel& model, double packets_per_second,
                      double tx_power_dbm) {
  if (packets_per_second <= 0.0) return 0.0;
  const double raw = model.reference_damage_per_event_rate *
                     packets_per_second * PowerWeight(model, tx_power_dbm);
  return std::min(raw, model.clean_mos - model.floor_mos);
}

bool InterferenceAudible(const MicAudioModel& model, double packets_per_second,
                         double tx_power_dbm) {
  return PredictMosDrop(model, packets_per_second, tx_power_dbm) >=
         kNoticeableMosDrop;
}

}  // namespace whitefi
