#include "audit/audit.h"

#include <algorithm>
#include <sstream>

#include "sim/medium.h"
#include "util/log.h"

namespace whitefi {

std::string Violation::ToString() const {
  std::ostringstream os;
  os << "[" << at << "us] " << invariant << " node=" << node
     << " ch=" << channel << ": " << detail;
  return os.str();
}

InvariantAuditor::InvariantAuditor(const AuditConfig& config)
    : config_(config) {}

void InvariantAuditor::Attach(World& world) {
  world_ = &world;
  safety_budget_ = config_.safety_budget != 0
                       ? config_.safety_budget
                       : world.config().incumbent_detect_latency +
                             config_.safety_vacate_slack;
  world.sim().ScheduleAfter(config_.sweep_interval, [this] { Sweep(); });
}

void InvariantAuditor::RegisterAp(int node) { ap_node_ = node; }

void InvariantAuditor::SetGeoTruth(const GeoTruth* truth,
                                   SimTime suggested_budget) {
  geo_truth_ = truth;
  geo_since_.clear();
  if (truth == nullptr) {
    geo_budget_ = 0;
    return;
  }
  geo_budget_ =
      config_.geo_budget != 0 ? config_.geo_budget : suggested_budget;
}

void InvariantAuditor::RegisterClient(int node, const ClientParams& params) {
  ClientState state;
  // The widest legal chirp gap: the (possibly backed-off) period at its
  // maximum, stretched by the jitter's upper edge, plus slack.  Chirp()
  // always reschedules itself while disconnected, so the gap between
  // successive chirp *queueings* is bounded by this regardless of MAC
  // contention.
  const SimTime period =
      params.chirp_backoff ? params.chirp_interval_max : params.chirp_interval;
  state.chirp_bound =
      static_cast<SimTime>(static_cast<double>(period) *
                           (1.0 + params.chirp_jitter)) +
      config_.liveness_slack;
  // A connected client that misses every beacon still declares
  // disconnection within contact_timeout (+ one check interval), so its
  // channel view cannot lag the AP's longer than that while "connected".
  state.convergence_budget =
      config_.convergence_budget != 0
          ? config_.convergence_budget
          : params.contact_timeout + 2 * params.contact_check_interval +
                1 * kTicksPerSec;
  clients_[node] = state;
}

void InvariantAuditor::Report(SimTime at, const char* invariant, int node,
                              int channel, std::string detail) {
  ++violation_count_;
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back(Violation{at, invariant, node, channel, detail});
  }
  WHITEFI_LOG_TAGGED(LogLevel::kError, "audit")
      << invariant << " node=" << node << " ch=" << channel << ": " << detail;
  if (world_ != nullptr) {
    if (EventTrace* trace = world_->trace(); trace != nullptr) {
      TraceEvent event;
      event.at_us = at;
      event.kind = TraceEventKind::kInvariantViolation;
      event.node = node;
      event.bytes = channel;
      event.detail = std::string(invariant) + ": " + detail;
      trace->Append(std::move(event));
    }
    if (config_.stop_on_violation) world_->sim().Stop();
  }
}

void InvariantAuditor::CheckMonotonic(SimTime now, const char* where) {
  if (now < last_hook_time_) {
    std::ostringstream os;
    os << where << " at " << now << " after " << last_hook_time_;
    Report(now, "monotonicity", -1, -1, os.str());
  }
  last_hook_time_ = std::max(last_hook_time_, now);
}

void InvariantAuditor::ChannelUnion::Add(SimTime start, SimTime end) {
  if (!open) {
    seg_start = start;
    seg_end = end;
    open = true;
    return;
  }
  if (start > seg_end) {
    closed += seg_end - seg_start;
    seg_start = start;
    seg_end = end;
    return;
  }
  seg_end = std::max(seg_end, end);
}

SimTime InvariantAuditor::ChannelUnion::BusyAt(SimTime now) const {
  if (!open) return closed;
  return closed + std::max<SimTime>(0, std::min(now, seg_end) - seg_start);
}

void InvariantAuditor::OnTransmitStart(SimTime now, const RadioPort& tx,
                                       const Channel& channel,
                                       SimTime duration) {
  CheckMonotonic(now, "transmit");
  const int node = tx.NodeId();
  const bool audited =
      node == ap_node_ || clients_.find(node) != clients_.end();
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    unions_[static_cast<std::size_t>(c)].Add(now, now + duration);
    if (!audited || world_ == nullptr) continue;
    const auto since = world_->MicAudibleOnSince(c, node);
    if (!since.has_value()) continue;
    // The clock starts at the later of mic-on and the node's arrival on
    // this channel: a node landing on a channel whose mic predates it
    // still gets a full detection window.
    SimTime exposed = *since;
    if (const auto it = tuned_at_.find(node); it != tuned_at_.end()) {
      exposed = std::min(exposed, now - it->second);
    }
    if (exposed > safety_budget_) {
      std::ostringstream os;
      os << "tx over mic active+audible for " << exposed
         << "us (budget " << safety_budget_ << "us)";
      Report(now, "incumbent-safety", node, c, os.str());
    }
  }
  // The geometric check runs off its own clock set: ground truth at the
  // node's current position, independent of any scheduled world mic.
  if (geo_truth_ == nullptr) return;
  for (UhfIndex c = channel.Low(); c <= channel.High(); ++c) {
    const int node = tx.NodeId();
    if (node != ap_node_ && clients_.find(node) == clients_.end()) continue;
    const SimTime exposed = GeoExposure(now, node, c);
    if (exposed > geo_budget_) {
      std::ostringstream os;
      os << "tx on geo-protected channel for " << exposed
         << "us at current position (geo budget " << geo_budget_ << "us)";
      Report(now, "incumbent-safety", node, c, os.str());
      // Re-arm: one violation per budget of continued exposure.
      geo_since_[{node, static_cast<int>(c)}] = now;
    }
  }
}

SimTime InvariantAuditor::GeoExposure(SimTime now, int node, UhfIndex channel) {
  const std::pair<int, int> key{node, static_cast<int>(channel)};
  if (!geo_truth_->ProtectedAt(node, channel, now)) {
    geo_since_.erase(key);
    return 0;
  }
  const auto [it, inserted] = geo_since_.emplace(key, now);
  SimTime exposed = now - it->second;
  // Like the mic check, the clock starts no earlier than the node's
  // arrival on the channel: a node that just retuned gets a full window.
  if (const auto tuned = tuned_at_.find(node); tuned != tuned_at_.end()) {
    exposed = std::min(exposed, now - tuned->second);
  }
  return exposed;
}

void InvariantAuditor::SweepGeoClocks(SimTime now) {
  auto sweep_node = [&](int node) {
    const auto it = tuned_.find(node);
    if (it == tuned_.end()) return;
    for (UhfIndex c = it->second.Low(); c <= it->second.High(); ++c) {
      GeoExposure(now, node, c);  // Maintains the clocks; no report here.
    }
  };
  if (ap_node_ >= 0) sweep_node(ap_node_);
  for (const auto& [node, state] : clients_) sweep_node(node);
}

void InvariantAuditor::OnMacTiming(const RadioPort& radio,
                                   const PhyTiming& timing) {
  // Internal consistency at any width...
  const Us difs = timing.Sifs() + 2.0 * timing.Slot();
  if (timing.Difs() != difs) {
    std::ostringstream os;
    os << "DIFS " << timing.Difs() << " != SIFS+2*slot " << difs;
    Report(last_hook_time_, "mac-timing", radio.NodeId(), -1, os.str());
  }
  // ...and agreement with the width the radio is actually tuned to.  The
  // device updates its channel before reprogramming the MAC, so a mismatch
  // means a stale-timing bug (a MAC contending with wrong-width DIFS).
  const ChannelWidth tuned = radio.TunedChannel().width;
  if (timing.width() != tuned) {
    std::ostringstream os;
    os << "timing width " << WidthMHz(timing.width()) << "MHz but tuned "
       << WidthMHz(tuned) << "MHz";
    Report(last_hook_time_, "mac-timing", radio.NodeId(),
           radio.TunedChannel().Low(), os.str());
  }
}

void InvariantAuditor::OnNodeTuned(SimTime now, int node,
                                   const Channel& channel) {
  CheckMonotonic(now, "tune");
  tuned_[node] = channel;
  tuned_at_[node] = now;
}

void InvariantAuditor::OnClientDisconnected(SimTime now, int node) {
  CheckMonotonic(now, "disconnect");
  const auto it = clients_.find(node);
  if (it == clients_.end()) return;
  it->second.connected = false;
  it->second.disconnected_at = now;
  it->second.last_chirp = now;
  it->second.mismatch_since = -1;
}

void InvariantAuditor::OnClientReconnected(SimTime now, int node) {
  CheckMonotonic(now, "reconnect");
  const auto it = clients_.find(node);
  if (it == clients_.end()) return;
  it->second.connected = true;
  it->second.mismatch_since = -1;
}

void InvariantAuditor::OnChirp(SimTime now, int node) {
  CheckMonotonic(now, "chirp");
  const auto it = clients_.find(node);
  if (it == clients_.end()) return;
  it->second.last_chirp = now;
}

void InvariantAuditor::Sweep() {
  const SimTime now = world_->sim().Now();
  CheckMonotonic(now, "sweep");
  CheckLiveness(now);
  CheckConvergence(now);
  if (geo_truth_ != nullptr) SweepGeoClocks(now);
  if (config_.check_books) CheckBooks(now);
  world_->sim().ScheduleAfter(config_.sweep_interval, [this] { Sweep(); });
}

void InvariantAuditor::CheckLiveness(SimTime now) {
  for (auto& [node, state] : clients_) {
    if (state.connected) continue;
    const SimTime gap = now - std::max(state.disconnected_at, state.last_chirp);
    if (gap > state.chirp_bound) {
      std::ostringstream os;
      os << "disconnected and silent for " << gap << "us (chirp bound "
         << state.chirp_bound << "us)";
      Report(now, "chirp-liveness", node, -1, os.str());
      // Re-arm so a stuck client produces one violation per bound, not
      // one per sweep.
      state.last_chirp = now;
    }
  }
}

void InvariantAuditor::CheckConvergence(SimTime now) {
  if (ap_node_ < 0) return;
  const auto ap_it = tuned_.find(ap_node_);
  if (ap_it == tuned_.end()) return;
  for (auto& [node, state] : clients_) {
    if (!state.connected) {
      state.mismatch_since = -1;
      continue;
    }
    const auto it = tuned_.find(node);
    if (it == tuned_.end()) continue;
    if (it->second == ap_it->second) {
      state.mismatch_since = -1;
      continue;
    }
    if (state.mismatch_since < 0) {
      state.mismatch_since = now;
      continue;
    }
    if (now - state.mismatch_since > state.convergence_budget) {
      std::ostringstream os;
      os << "connected on " << it->second.ToString() << " but AP on "
         << ap_it->second.ToString() << " for " << now - state.mismatch_since
         << "us";
      Report(now, "convergence", node, it->second.Low(), os.str());
      state.mismatch_since = now;  // Re-arm (one violation per budget).
    }
  }
}

void InvariantAuditor::CheckBooks(SimTime now) {
  const AirtimeBooks books = world_->medium().SnapshotBooks();
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    const auto index = static_cast<std::size_t>(c);
    // ToUs is exact for integer ticks and the medium's busy sum is a sum
    // of integer-valued doubles, so the comparison is exact, not epsilon.
    const Us expected = ToUs(unions_[index].BusyAt(now));
    if (books[index].busy != expected) {
      std::ostringstream os;
      os << "medium busy book " << books[index].busy
         << "us != interval-union reference " << expected << "us";
      Report(now, "book-conservation", -1, c, os.str());
    }
  }
}

}  // namespace whitefi
