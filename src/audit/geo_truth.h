// GeoTruth — the auditor's window into geometric incumbent ground truth.
//
// The incumbent-safety invariant classically checks transmissions against
// the World's scheduled wireless mics.  With the geo-location database
// promoted to a live service (src/geodb), there is a second, geometric
// notion of "protected": the channel set the ground-truth database would
// return for the node's *current position* right now — independent of
// what the node's possibly stale, possibly outage-degraded cache believes.
// This interface lets the auditor ask that question without depending on
// the geodb subsystem (the GeoDbRuntime implements it; the auditor only
// sees the abstract query).
#pragma once

#include "sim/time.h"
#include "spectrum/uhf.h"

namespace whitefi {

/// Ground-truth oracle for the position-aware incumbent-safety check.
/// Implementations must be pure queries: called during the run, they may
/// never mutate simulation state or draw random numbers.
class GeoTruth {
 public:
  virtual ~GeoTruth() = default;

  /// True iff the geometric ground truth protects `channel` at node
  /// `node`'s current position at simulated time `now`.
  virtual bool ProtectedAt(int node, UhfIndex channel, SimTime now) const = 0;
};

}  // namespace whitefi
