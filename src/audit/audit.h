// InvariantAuditor — runtime cross-layer invariant checking.
//
// WhiteFi's promise is *safe* Wi-Fi-like operation: never transmit over an
// active incumbent beyond the detection+vacation budget, and always chirp
// back to a connected state after a vacation (paper §4.3, §5.3).  The
// auditor enforces that promise — plus engine-level sanity — while a
// scenario runs, by listening on the AuditHooks seams (sim/audit_hooks.h)
// threaded through the Observability bundle:
//
//   incumbent-safety   No audited node's transmission overlaps an active
//                      audible mic for longer than the safety budget
//                      (detect latency + vacation slack), measured from
//                      the later of mic-on and the node's arrival on the
//                      channel.  Exactly AT the budget passes; one tick
//                      past it trips.  When a GeoTruth oracle is armed
//                      (SetGeoTruth), the same invariant also checks every
//                      transmission against the geometric ground truth at
//                      the node's current position, under its own budget
//                      covering the geo-db notification path.
//   chirp-liveness     A disconnected audited client keeps chirping: the
//                      gap since its last chirp (or the disconnect) never
//                      exceeds the chirp/backoff bound derived from its
//                      ClientParams.
//   convergence        A *connected* audited client's tuned channel
//                      matches its AP's within the convergence budget
//                      after every switch.
//   book-conservation  The medium's per-channel union busy books equal an
//                      independently maintained interval-union reference
//                      (exact, in integer microsecond ticks).
//   monotonicity       Hook timestamps and the simulator clock never run
//                      backwards.
//   mac-timing         Every MAC timing update is internally consistent
//                      (DIFS = SIFS + 2 slots) and matches the width the
//                      radio is actually tuned to.
//
// The auditor is OFF by default (a null Observability::auditor pointer);
// attaching one adds only its own sweep events, which read but never
// mutate simulation state, so an auditor-free run is byte-identical to a
// run predating the subsystem.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "audit/geo_truth.h"
#include "core/client.h"
#include "sim/audit_hooks.h"
#include "sim/world.h"

namespace whitefi {

/// Auditor tuning.  Durations are simulated-time ticks (microseconds).
struct AuditConfig {
  /// Incumbent-safety budget: how long an audited node may keep
  /// transmitting over an audible active mic.  0 = derive at Attach() as
  /// the world's incumbent_detect_latency + safety_vacate_slack.
  SimTime safety_budget = 0;
  /// Vacation slack added to the detect latency when deriving the budget:
  /// time for the detecting node to abort its MAC and retune.  The default
  /// covers the AP's legitimate worst case — detection while an announce
  /// is pending defers the vacate by a 200 ms re-check (core/ap.cc), which
  /// can chain once more under churn — with margin; a vacation that never
  /// happens still blows through it within a second.
  SimTime safety_vacate_slack = 500 * kTicksPerMs;
  /// Chirp-liveness slack added to the per-client chirp/backoff bound.
  SimTime liveness_slack = 100 * kTicksPerMs;
  /// AP/client channel-view convergence budget.  0 = derive per client as
  /// contact_timeout + 2 * contact_check_interval + 1 s.
  SimTime convergence_budget = 0;
  /// Periodic sweep interval (liveness / convergence / books checks).
  SimTime sweep_interval = 250 * kTicksPerMs;
  /// Verify medium book conservation during sweeps.
  bool check_books = true;
  /// Budget for the position-aware (geometric) incumbent-safety check:
  /// how long an audited node may keep transmitting on a channel the
  /// ground-truth geo database protects at its current position.  Must
  /// cover the full notification path — push fan-out latency, or (during
  /// an outage) the scheduled-refresh interval plus the circuit-breaker
  /// trip to the conservative map — plus the vacate itself.  0 = use the
  /// budget suggested by the caller of SetGeoTruth (the geodb runtime
  /// derives it from its own timing parameters).
  SimTime geo_budget = 0;
  /// Halt the simulator on the first violation (the repro itself is
  /// post-run either way; stopping just shortens doomed runs).
  bool stop_on_violation = false;
  /// Violations retained verbatim (the count is always exact).
  std::size_t max_recorded = 64;
};

/// One invariant violation.
struct Violation {
  SimTime at = 0;          ///< Simulated time the check tripped.
  std::string invariant;   ///< "incumbent-safety", "chirp-liveness", ...
  int node = -1;           ///< Offending node id (-1: the world/engine).
  int channel = -1;        ///< UHF channel index involved (-1: none).
  std::string detail;      ///< Human-readable context.

  std::string ToString() const;
};

/// The runtime auditor.  Attach to a World through the Observability
/// bundle BEFORE constructing the World (the medium captures the bundle in
/// the World constructor), then call Attach() and register the WhiteFi
/// nodes to audit.  Unregistered nodes (background traffic) are exempt
/// from the protocol invariants but still feed the engine-sanity checks.
class InvariantAuditor : public AuditHooks {
 public:
  explicit InvariantAuditor(const AuditConfig& config = {});

  /// Binds the auditor to a world: resolves the safety budget and starts
  /// the periodic sweep.  Call once, after World construction and before
  /// the run.  The auditor must outlive the world's run.
  void Attach(World& world);

  /// Marks `node` as the audited WhiteFi AP (convergence reference).
  void RegisterAp(int node);

  /// Marks `node` as an audited WhiteFi client; the chirp-liveness and
  /// convergence bounds derive from its params.
  void RegisterClient(int node, const ClientParams& params);

  /// Resolved incumbent-safety budget (valid after Attach).
  SimTime safety_budget() const { return safety_budget_; }

  /// Arms the position-aware incumbent-safety check against a geometric
  /// ground-truth oracle.  `suggested_budget` is the reaction allowance
  /// derived by the caller (typically GeoDbRuntime::SuggestedGeoBudget);
  /// a non-zero AuditConfig::geo_budget overrides it.  The oracle must
  /// outlive the run.  Pass nullptr to disarm.
  void SetGeoTruth(const GeoTruth* truth, SimTime suggested_budget);

  /// Resolved geometric-safety budget (0 until SetGeoTruth).
  SimTime geo_budget() const { return geo_budget_; }

  /// All retained violations, in detection order (capped at
  /// config.max_recorded; `violation_count()` is exact regardless).
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t violation_count() const { return violation_count_; }
  bool ok() const { return violation_count_ == 0; }

  /// The first violation, or nullptr when clean.
  const Violation* first_violation() const {
    return violations_.empty() ? nullptr : &violations_.front();
  }

  // -- AuditHooks ---------------------------------------------------------
  void OnTransmitStart(SimTime now, const RadioPort& tx,
                       const Channel& channel, SimTime duration) override;
  void OnMacTiming(const RadioPort& radio, const PhyTiming& timing) override;
  void OnNodeTuned(SimTime now, int node, const Channel& channel) override;
  void OnClientDisconnected(SimTime now, int node) override;
  void OnClientReconnected(SimTime now, int node) override;
  void OnChirp(SimTime now, int node) override;

 private:
  /// Running interval union of transmissions per UHF channel.  Starts
  /// arrive in nondecreasing time order (sim time is monotone), so the
  /// union is a closed prefix plus one open segment — O(1) per transmit.
  struct ChannelUnion {
    SimTime closed = 0;     ///< Ticks of busy time before the open segment.
    SimTime seg_start = 0;
    SimTime seg_end = 0;
    bool open = false;

    void Add(SimTime start, SimTime end);
    SimTime BusyAt(SimTime now) const;
  };

  struct ClientState {
    bool connected = true;
    SimTime disconnected_at = 0;
    SimTime last_chirp = 0;
    SimTime chirp_bound = 0;        ///< Max legal gap between chirps.
    SimTime convergence_budget = 0;
    SimTime mismatch_since = -1;    ///< -1: views currently agree.
  };

  void Report(SimTime at, const char* invariant, int node, int channel,
              std::string detail);
  void CheckMonotonic(SimTime now, const char* where);
  void Sweep();
  void CheckLiveness(SimTime now);
  void CheckConvergence(SimTime now);
  void CheckBooks(SimTime now);
  /// Updates the per-(node, channel) geometric-protection clock for one
  /// audited node on one channel and returns the exposure so far (0 when
  /// the channel is not geo-protected at the node's position).
  SimTime GeoExposure(SimTime now, int node, UhfIndex channel);
  /// Sweeps the geo clocks over every audited node's tuned channel, so a
  /// protection contour arriving between transmissions (mobility, venue
  /// activation) starts its clock with sweep granularity at worst.
  void SweepGeoClocks(SimTime now);

  AuditConfig config_;
  World* world_ = nullptr;
  SimTime safety_budget_ = 0;
  SimTime last_hook_time_ = 0;

  int ap_node_ = -1;
  std::map<int, ClientState> clients_;
  std::map<int, Channel> tuned_;       ///< Last OnNodeTuned per node.
  std::map<int, SimTime> tuned_at_;    ///< When that tune happened.

  std::array<ChannelUnion, static_cast<std::size_t>(kNumUhfChannels)> unions_;

  /// Geometric ground truth (null = check disarmed).
  const GeoTruth* geo_truth_ = nullptr;
  SimTime geo_budget_ = 0;
  /// When the ground truth was first observed protecting (node, channel);
  /// erased when observed unprotected again, reset on report so one long
  /// exposure trips once per budget.  Keyed (node, uhf index).
  std::map<std::pair<int, int>, SimTime> geo_since_;

  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
};

}  // namespace whitefi
