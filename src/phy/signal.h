// Raw-signal synthesis: the KNOWS/USRP scanner substitute.
//
// The paper's scanner is a USRP that samples 1 MHz of spectrum at
// 1 MSample/s and hands (I,Q) pairs to the PC; SIFT consumes only the
// amplitude envelope sqrt(I^2 + Q^2) (Figure 5).  This module synthesizes
// exactly that envelope:
//
//  * in-burst samples are Rayleigh distributed (the magnitude of a complex
//    Gaussian — the statistics of an OFDM signal envelope), which also
//    reproduces the deep mid-packet amplitude dips visible in Figure 5
//    that motivate SIFT's moving-average window;
//  * the noise floor is Rayleigh as well (complex Gaussian noise);
//  * 5 MHz packets optionally begin with a low-amplitude ramp — the
//    hardware artifact the paper blames for SIFT's slightly lower
//    detection rate at 5 MHz (Table 1 discussion);
//  * attenuation scales the signal (not the noise) amplitude.
#pragma once

#include <span>
#include <vector>

#include "obs/phase_timer.h"
#include "phy/timing.h"
#include "util/rng.h"
#include "util/units.h"

namespace whitefi {

/// Synthesis parameters; the defaults are calibrated so that the SIFT
/// detection cliff lands near 96 dB attenuation as in Figure 7.
struct SignalParams {
  /// USRP sample period (1 MSample/s => 1.024 us per paper Section 4.2.1).
  Us sample_period = 1.024;

  /// Rayleigh scale of the noise floor (ADC-like units).
  double noise_sigma = 1.2;

  /// Rayleigh scale of the signal envelope before attenuation.  With the
  /// default 50 dB reference attenuation this puts envelopes near the
  /// ~600-1000 unit amplitudes of Figure 5.
  double signal_sigma = 300000.0;

  /// Attenuation (dB) applied to the signal path (cable + RF attenuator).
  double attenuation_db = 50.0;

  /// 5 MHz ramp artifact: probability that a packet's initial portion is
  /// transmitted so low that it falls below SIFT's threshold.
  double deep_ramp_probability = 0.05;

  /// 5 MHz ramp artifact: ramp duration bounds (us).
  Us ramp_min_duration = 40.0;
  Us ramp_max_duration = 180.0;

  /// Amplitude factor of a "shallow" ramp (still detectable).
  double shallow_ramp_factor = 0.4;

  /// Amplitude factor of a "deep" ramp (below SIFT's threshold).
  double deep_ramp_factor = 0.004;
};

/// One on-air burst to synthesize.
struct Burst {
  Us start = 0.0;     ///< Burst start time (us).
  Us duration = 0.0;  ///< Burst length (us).
  /// When true the burst begins with the 5 MHz low-amplitude ramp artifact.
  bool ramp_artifact = false;
  /// Extra amplitude scale for this burst (1.0 = nominal).
  double amplitude_scale = 1.0;
};

/// Lane-packed multi-channel amplitude trace: `lanes` equal-length traces
/// stored back to back in one flat buffer, ready to stream through a
/// `SiftBatch` without per-lane allocations.
struct BatchTrace {
  std::vector<double> samples;        ///< Flat lanes x samples_per_lane.
  std::size_t lanes = 0;
  std::size_t samples_per_lane = 0;

  std::span<double> Lane(std::size_t lane) {
    return {samples.data() + lane * samples_per_lane, samples_per_lane};
  }
  std::span<const double> Lane(std::size_t lane) const {
    return {samples.data() + lane * samples_per_lane, samples_per_lane};
  }

  /// Per-lane const views (the shape SiftBatch::DetectAll consumes).
  std::vector<std::span<const double>> LaneSpans() const {
    std::vector<std::span<const double>> spans;
    spans.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) spans.push_back(Lane(i));
    return spans;
  }
};

/// Synthesizes amplitude-sample traces from burst schedules.
class SignalSynthesizer {
 public:
  SignalSynthesizer(const SignalParams& params, Rng rng);

  /// Produces `ceil(total_duration / sample_period)` amplitude samples for
  /// the given bursts (bursts may overlap; powers add approximately by
  /// taking the max envelope).
  std::vector<double> Synthesize(std::span<const Burst> bursts,
                                 Us total_duration);

  /// Like Synthesize, but writes into `samples` (resized to fit) so dwell
  /// and trial loops can reuse one scratch buffer instead of reallocating a
  /// multi-megasample trace per call.  Draw-for-draw identical to
  /// Synthesize: the same synthesizer state produces the same trace
  /// through either entry point.
  void SynthesizeInto(std::span<const Burst> bursts, Us total_duration,
                      std::vector<double>& samples);

  /// Synthesizes one trace per lane into a flat batch buffer (resized to
  /// lane_bursts.size() x ceil(total_duration / sample_period)): the
  /// multi-channel dwell path, feeding `SiftBatch` in one call.  Each lane
  /// draws from its own stream forked off this synthesizer in lane order,
  /// so lane i's trace is exactly what a dedicated synthesizer seeded with
  /// the i-th fork would produce — deterministic and independent of how
  /// the other lanes' schedules look.
  void SynthesizeBatchInto(std::span<const std::span<const Burst>> lane_bursts,
                           Us total_duration, BatchTrace& out);

  /// The configured parameters.
  const SignalParams& params() const { return params_; }

  /// Effective in-burst Rayleigh scale after attenuation.
  double AttenuatedSignalSigma() const;

  /// Attaches a profiler (may be null): synthesis runs under the
  /// "phy.synthesize" phase so dwell-loop cost shows up in --profile.
  void SetProfiler(PhaseProfiler* profiler) { profiler_ = profiler; }

 private:
  /// Per-lane synthesis body shared by SynthesizeInto and
  /// SynthesizeBatchInto: fills `samples` with noise, then merges the
  /// bursts, drawing everything from `rng`.
  void SynthesizeLane(Rng& rng, std::span<const Burst> bursts,
                      std::span<double> samples);

  SignalParams params_;
  Rng rng_;
  PhaseProfiler* profiler_ = nullptr;
};

/// Builds the data-burst + SIFS-gap + ACK-burst pair for one unicast
/// exchange of `frame_bytes` at the given width, starting at `start`.
/// The 5 MHz ramp artifact is applied to the data burst when applicable.
std::vector<Burst> MakeDataAckExchange(const PhyTiming& timing, Us start,
                                       int frame_bytes);

/// Builds the beacon + SIFS + CTS-to-self pair the paper requires APs to
/// transmit so that SIFT can recognize them (Section 4.2.1).
std::vector<Burst> MakeBeaconCtsExchange(const PhyTiming& timing, Us start);

/// Builds a schedule of `count` data-ACK exchanges spaced `interval` apart
/// (e.g. iperf-style CBR traffic for the Table 1 experiments).
std::vector<Burst> MakeCbrSchedule(const PhyTiming& timing, int count,
                                   Us interval, int frame_bytes,
                                   Us first_start = 0.0);

}  // namespace whitefi
