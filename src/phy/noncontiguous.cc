#include "phy/noncontiguous.h"

#include <algorithm>

namespace whitefi {

MHz FragmentUsableMHz(const Fragment& fragment, const NcOfdmParams& params) {
  const MHz raw = fragment.WidthMHz() - 2.0 * params.edge_guard_mhz;
  if (raw <= 0.0) return 0.0;
  return raw * (1.0 - params.pilot_overhead);
}

double NonContiguousCapacity(const SpectrumMap& map,
                             const NcOfdmParams& params) {
  double total_mhz = 0.0;
  for (const Fragment& fragment : map.FreeFragments()) {
    total_mhz += FragmentUsableMHz(fragment, params);
  }
  return total_mhz / 5.0;
}

double BestContiguousCapacity(const SpectrumMap& map) {
  int widest = 0;
  for (const Fragment& fragment : map.FreeFragments()) {
    widest = std::max(widest, fragment.length);
  }
  if (widest >= 5) return 4.0;  // A 20 MHz channel fits.
  if (widest >= 3) return 2.0;  // 10 MHz.
  if (widest >= 1) return 1.0;  // 5 MHz.
  return 0.0;
}

MHz BreakEvenGuardMHz(const SpectrumMap& map, MHz limit) {
  const double contiguous = BestContiguousCapacity(map);
  NcOfdmParams probe;
  probe.edge_guard_mhz = 0.0;
  if (NonContiguousCapacity(map, probe) <= contiguous) return 0.0;
  probe.edge_guard_mhz = limit;
  if (NonContiguousCapacity(map, probe) > contiguous) return limit;
  MHz lo = 0.0;
  MHz hi = limit;
  for (int i = 0; i < 40; ++i) {
    probe.edge_guard_mhz = (lo + hi) / 2.0;
    if (NonContiguousCapacity(map, probe) > contiguous) {
      lo = probe.edge_guard_mhz;
    } else {
      hi = probe.edge_guard_mhz;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace whitefi
