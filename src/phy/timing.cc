#include "phy/timing.h"

#include <cmath>

namespace whitefi {

PhyTiming::PhyTiming(ChannelWidth width)
    : width_(width), scale_(20.0 / WidthMHz(width)) {}

PhyTiming PhyTiming::ForWidth(ChannelWidth width) { return PhyTiming(width); }

Us PhyTiming::FrameDuration(int frame_bytes) const {
  // 16 service bits + 6 tail bits + the MAC frame body.
  const int bits = 16 + 6 + 8 * frame_bytes;
  const int symbols = (bits + kBitsPerSymbol - 1) / kBitsPerSymbol;
  return Preamble() + symbols * Symbol();
}

}  // namespace whitefi
