#include "phy/attenuation.h"

#include <cmath>

namespace whitefi {

double SnifferCaptureProbability(const SnifferModel& model,
                                 double attenuation_db) {
  const double logit =
      (attenuation_db - model.half_capture_attenuation_db) / model.softness_db;
  return model.max_capture / (1.0 + std::exp(logit));
}

bool SnifferCaptures(const SnifferModel& model, double attenuation_db,
                     Rng& rng) {
  return rng.Bernoulli(SnifferCaptureProbability(model, attenuation_db));
}

}  // namespace whitefi
