// Non-contiguous OFDM: the alternative PHY of the paper's Section 6.
//
// WhiteFi deliberately uses one contiguous variable-width channel (the
// SampleWidth technique).  The discussed alternative would aggregate ALL
// free fragments at once by nulling the subcarriers over incumbents.  The
// paper rejects it for two practical reasons: adjacent-subcarrier leakage
// into the primary user (requiring sharp bandpass filters that did not
// exist) and the unsolved uplink problem (no system could decode
// simultaneous clients on disjoint subcarrier sets).
//
// This model quantifies that trade: the theoretical capacity of fragment
// aggregation as a function of the guard bandwidth each fragment edge must
// sacrifice to protect the incumbents, versus WhiteFi's best single
// contiguous channel.  With ideal filters (zero guard) aggregation wins
// wherever the spectrum is fragmented; as the required guard grows, narrow
// fragments stop paying for themselves and the contiguous choice catches
// up — exactly the engineering judgment the paper made in 2009.
#pragma once

#include "spectrum/spectrum_map.h"

namespace whitefi {

/// Non-contiguous OFDM cost model.
struct NcOfdmParams {
  /// Spectrum sacrificed at EACH edge of every fragment (guard subcarriers
  /// plus realizable filter skirt), in MHz.
  MHz edge_guard_mhz = 0.5;
  /// Fraction of the remaining subcarriers lost to per-fragment pilot /
  /// synchronization overhead.
  double pilot_overhead = 0.05;
};

/// Usable capacity of one free fragment under the model, in MHz (>= 0).
MHz FragmentUsableMHz(const Fragment& fragment, const NcOfdmParams& params);

/// Capacity of aggregating every free fragment, in 5 MHz-channel units
/// (the same scale as MCham: an ideal empty 20 MHz channel = 4.0).
double NonContiguousCapacity(const SpectrumMap& map,
                             const NcOfdmParams& params = {});

/// Capacity of the best single contiguous WhiteFi channel on the map, in
/// the same units (4 / 2 / 1 for a fitting 20 / 10 / 5 MHz channel, 0 when
/// nothing fits).
double BestContiguousCapacity(const SpectrumMap& map);

/// The edge guard (MHz) at which aggregation stops beating the contiguous
/// choice on this map (binary search; returns 0 when it never wins and
/// `limit` when it always wins below that guard).
MHz BreakEvenGuardMHz(const SpectrumMap& map, MHz limit = 3.0);

}  // namespace whitefi
