// Receiver models under attenuation — the tunable-RF-attenuator substitute
// for the Figure 7 experiment.
//
// Two receive paths exist in the KNOWS platform:
//  * the Wi-Fi card ("packet sniffer"), which must decode the whole frame —
//    its capture ratio degrades smoothly with SNR;
//  * SIFT on the scanner, which only thresholds the amplitude envelope —
//    it detects even corrupted packets, holding near 100% until the
//    envelope approaches the threshold, then collapsing sharply.
//
// The sniffer model here is an SNR-driven sigmoid calibrated to the paper's
// anchors: it trails SIFT at moderate attenuation, crosses SIFT beyond the
// ~96 dB SIFT cliff, and sits near a 35% capture ratio at 98 dB.  SIFT's
// own curve is *not* modeled — it emerges from running the real detector
// over synthesized attenuated signals (see bench_fig7_attenuation).
#pragma once

#include "util/rng.h"

namespace whitefi {

/// Parameters of the sniffer (Wi-Fi card) capture model.
struct SnifferModel {
  /// Attenuation at which the capture probability is 50%.
  double half_capture_attenuation_db = 97.0;
  /// Sigmoid steepness (dB per logit unit); larger = smoother falloff.
  double softness_db = 1.6;
  /// Capture ceiling at low attenuation (real cards lose a little).
  double max_capture = 0.995;
};

/// Probability the sniffer successfully decodes a frame at the given
/// attenuation.
double SnifferCaptureProbability(const SnifferModel& model,
                                 double attenuation_db);

/// Samples whether one frame is captured by the sniffer.
bool SnifferCaptures(const SnifferModel& model, double attenuation_db,
                     Rng& rng);

}  // namespace whitefi
