// Variable-channel-width 802.11 timing.
//
// WhiteFi reuses an 802.11a-style OFDM PHY whose sampling clock is scaled
// to fit 5, 10, or 20 MHz of spectrum (the SampleWidth technique of
// Chandra et al., SIGCOMM 2008, which the paper builds on).  Halving the
// channel width doubles every time-domain quantity — OFDM symbol period,
// preamble, SIFS, slot — and halves the data rate.  The reference values
// follow the paper: at 20 MHz the SIFS is 10 us (the "lowest SIFS value in
// our system"), and the base rate is 6 Mbps.
//
// These scaled durations are what SIFT keys on: both a packet's duration
// and the SIFS gap between a data frame and its ACK are inversely
// proportional to channel width, which lets a time-domain observer infer
// the width without decoding anything.
#pragma once

#include "spectrum/channel.h"
#include "util/units.h"

namespace whitefi {

/// MAC frame sizes (bytes) used throughout the system.
inline constexpr int kAckBytes = 14;   ///< Smallest MAC frame (paper 4.2.1).
inline constexpr int kCtsBytes = 14;   ///< CTS-to-self after beacons.
inline constexpr int kBeaconBytes = 80;
inline constexpr int kMacOverheadBytes = 28;  ///< Data header + FCS.

/// Timing parameters for one channel width.
class PhyTiming {
 public:
  /// Timing for the given width.  All durations scale by 20 MHz / width.
  static PhyTiming ForWidth(ChannelWidth width);

  /// The channel width these timings describe.
  ChannelWidth width() const { return width_; }

  /// Time-dilation factor relative to 20 MHz (1, 2, or 4).
  double Scale() const { return scale_; }

  /// OFDM symbol period (4 us at 20 MHz).
  Us Symbol() const { return 4.0 * scale_; }

  /// PLCP preamble + header (20 us at 20 MHz).
  Us Preamble() const { return 20.0 * scale_; }

  /// Short interframe space (10 us at 20 MHz, per the paper).
  Us Sifs() const { return 10.0 * scale_; }

  /// Slot time (9 us at 20 MHz).
  Us Slot() const { return 9.0 * scale_; }

  /// DIFS = SIFS + 2 slots.
  Us Difs() const { return Sifs() + 2.0 * Slot(); }

  /// Backoff slot used by the MAC's contention engine, width-independent.
  ///
  /// If the backoff slot scaled with width like the PHY timings do, a
  /// 20 MHz node would structurally starve any 5 MHz contender (its
  /// DIFS+backoff is ~4x shorter, so it always wins the gap) — but the
  /// paper's evaluation (Figs. 10-14) clearly has narrow background
  /// traffic contending effectively with wide channels, and its carrier-
  /// sense modification makes nodes of different widths defer to each
  /// other symmetrically.  Keeping the contention slot at the 20 MHz value
  /// for every width gives that symmetric contention while leaving all
  /// SIFT-relevant timings (SIFS, symbol, frame durations) width-scaled.
  Us ContentionSlot() const { return 9.0; }

  /// DIFS used by the contention engine: still SIFS(W) + 2 slots, so ACKs
  /// (sent one width-scaled SIFS after data) always beat new contenders.
  Us ContentionDifs() const { return Sifs() + 2.0 * ContentionSlot(); }

  /// Effective base data rate in Mbps (6 Mbps at 20 MHz).
  double RateMbps() const { return 6.0 / scale_; }

  /// Air time of a MAC frame of `frame_bytes` total bytes: preamble plus
  /// OFDM data symbols carrying 16 service bits + 6 tail bits + payload.
  Us FrameDuration(int frame_bytes) const;

  /// Duration of an ACK frame (44 us at 20 MHz, 176 us at 5 MHz).
  Us AckDuration() const { return FrameDuration(kAckBytes); }

  /// Duration of a CTS(-to-self) frame.
  Us CtsDuration() const { return FrameDuration(kCtsBytes); }

  /// Duration of a beacon frame.
  Us BeaconDuration() const { return FrameDuration(kBeaconBytes); }

 private:
  explicit PhyTiming(ChannelWidth width);

  ChannelWidth width_;
  double scale_;
};

/// Contention window bounds (slots), 802.11 DCF defaults.
inline constexpr int kCwMin = 15;
inline constexpr int kCwMax = 1023;

/// Maximum (re)transmission attempts before a frame is dropped.
inline constexpr int kMaxTxAttempts = 7;

/// Data bits carried per OFDM symbol at the 6 Mbps base mode.
inline constexpr int kBitsPerSymbol = 24;

}  // namespace whitefi
