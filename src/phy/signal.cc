#include "phy/signal.h"

#include <algorithm>
#include <cmath>

namespace whitefi {

SignalSynthesizer::SignalSynthesizer(const SignalParams& params, Rng rng)
    : params_(params), rng_(std::move(rng)) {}

double SignalSynthesizer::AttenuatedSignalSigma() const {
  return params_.signal_sigma *
         AttenuationToAmplitudeScale(params_.attenuation_db);
}

std::vector<double> SignalSynthesizer::Synthesize(std::span<const Burst> bursts,
                                                  Us total_duration) {
  const auto num_samples = static_cast<std::size_t>(
      std::ceil(total_duration / params_.sample_period));
  // Start from the noise floor everywhere.
  std::vector<double> samples(num_samples);
  for (double& s : samples) s = rng_.Rayleigh(params_.noise_sigma);

  const double sigma = AttenuatedSignalSigma();
  for (const Burst& burst : bursts) {
    // Draw the ramp realization once per burst.
    Us ramp_duration = 0.0;
    double ramp_factor = 1.0;
    if (burst.ramp_artifact) {
      ramp_duration =
          rng_.Uniform(params_.ramp_min_duration, params_.ramp_max_duration);
      ramp_factor = rng_.Bernoulli(params_.deep_ramp_probability)
                        ? params_.deep_ramp_factor
                        : params_.shallow_ramp_factor;
    }
    const auto first = static_cast<std::size_t>(
        std::max(0.0, std::ceil(burst.start / params_.sample_period)));
    const auto last = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(num_samples),
        std::ceil((burst.start + burst.duration) / params_.sample_period)));
    for (std::size_t i = first; i < last; ++i) {
      const Us t = static_cast<double>(i) * params_.sample_period - burst.start;
      const double factor = t < ramp_duration ? ramp_factor : 1.0;
      const double amp =
          rng_.Rayleigh(sigma * burst.amplitude_scale * factor);
      samples[i] = std::max(samples[i], amp);
    }
  }
  return samples;
}

std::vector<Burst> MakeDataAckExchange(const PhyTiming& timing, Us start,
                                       int frame_bytes) {
  const bool ramp = timing.width() == ChannelWidth::kW5;
  const Us data_duration = timing.FrameDuration(frame_bytes);
  Burst data{start, data_duration, ramp, 1.0};
  Burst ack{start + data_duration + timing.Sifs(), timing.AckDuration(), ramp,
            1.0};
  return {data, ack};
}

std::vector<Burst> MakeBeaconCtsExchange(const PhyTiming& timing, Us start) {
  const bool ramp = timing.width() == ChannelWidth::kW5;
  const Us beacon_duration = timing.BeaconDuration();
  Burst beacon{start, beacon_duration, ramp, 1.0};
  Burst cts{start + beacon_duration + timing.Sifs(), timing.CtsDuration(), ramp,
            1.0};
  return {beacon, cts};
}

std::vector<Burst> MakeCbrSchedule(const PhyTiming& timing, int count,
                                   Us interval, int frame_bytes,
                                   Us first_start) {
  std::vector<Burst> bursts;
  bursts.reserve(static_cast<std::size_t>(count) * 2);
  for (int i = 0; i < count; ++i) {
    const Us start = first_start + static_cast<double>(i) * interval;
    auto exchange = MakeDataAckExchange(timing, start, frame_bytes);
    bursts.insert(bursts.end(), exchange.begin(), exchange.end());
  }
  return bursts;
}

}  // namespace whitefi
