#include "phy/signal.h"

#include <algorithm>
#include <cmath>

namespace whitefi {

SignalSynthesizer::SignalSynthesizer(const SignalParams& params, Rng rng)
    : params_(params), rng_(std::move(rng)) {}

double SignalSynthesizer::AttenuatedSignalSigma() const {
  return params_.signal_sigma *
         AttenuationToAmplitudeScale(params_.attenuation_db);
}

std::vector<double> SignalSynthesizer::Synthesize(std::span<const Burst> bursts,
                                                  Us total_duration) {
  std::vector<double> samples;
  SynthesizeInto(bursts, total_duration, samples);
  return samples;
}

void SignalSynthesizer::SynthesizeInto(std::span<const Burst> bursts,
                                       Us total_duration,
                                       std::vector<double>& samples) {
  ScopedPhaseTimer timer(profiler_, "phy.synthesize");
  const auto num_samples = static_cast<std::size_t>(
      std::ceil(total_duration / params_.sample_period));
  // The reused buffer keeps its capacity across calls.
  samples.resize(num_samples);
  SynthesizeLane(rng_, bursts, samples);
}

void SignalSynthesizer::SynthesizeBatchInto(
    std::span<const std::span<const Burst>> lane_bursts, Us total_duration,
    BatchTrace& out) {
  ScopedPhaseTimer timer(profiler_, "phy.synthesize");
  const auto num_samples = static_cast<std::size_t>(
      std::ceil(total_duration / params_.sample_period));
  out.lanes = lane_bursts.size();
  out.samples_per_lane = num_samples;
  out.samples.resize(out.lanes * num_samples);
  for (std::size_t lane = 0; lane < out.lanes; ++lane) {
    // One fork per lane, in lane order, so lane traces are reproducible
    // from the synthesizer's stream position alone.
    Rng lane_rng = rng_.Fork();
    SynthesizeLane(lane_rng, lane_bursts[lane], out.Lane(lane));
  }
}

void SignalSynthesizer::SynthesizeLane(Rng& rng, std::span<const Burst> bursts,
                                       std::span<double> samples) {
  const std::size_t num_samples = samples.size();
  // Start from the noise floor everywhere (one batched pass).
  rng.FillRayleigh(params_.noise_sigma, samples);

  const double sigma = AttenuatedSignalSigma();
  for (const Burst& burst : bursts) {
    // Draw the ramp realization once per burst.
    Us ramp_duration = 0.0;
    double ramp_factor = 1.0;
    if (burst.ramp_artifact) {
      ramp_duration =
          rng.Uniform(params_.ramp_min_duration, params_.ramp_max_duration);
      ramp_factor = rng.Bernoulli(params_.deep_ramp_probability)
                        ? params_.deep_ramp_factor
                        : params_.shallow_ramp_factor;
    }
    const auto first = static_cast<std::size_t>(
        std::max(0.0, std::ceil(burst.start / params_.sample_period)));
    const auto last = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(num_samples),
        std::ceil((burst.start + burst.duration) / params_.sample_period)));
    // The in-burst Rayleigh scale is loop-invariant on each side of the
    // ramp boundary, so hoist it and split the loop there: the ramp prefix
    // keeps the per-sample time comparison (bit-equal to evaluating it
    // every sample), the body skips it entirely.
    const double burst_sigma = sigma * burst.amplitude_scale;
    std::size_t i = first;
    if (burst.ramp_artifact) {
      const double ramp_sigma = burst_sigma * ramp_factor;
      for (; i < last; ++i) {
        const Us t =
            static_cast<double>(i) * params_.sample_period - burst.start;
        if (!(t < ramp_duration)) break;
        const double amp = rng.Rayleigh(ramp_sigma);
        samples[i] = std::max(samples[i], amp);
      }
    }
    for (; i < last; ++i) {
      const double amp = rng.Rayleigh(burst_sigma);
      samples[i] = std::max(samples[i], amp);
    }
  }
}

std::vector<Burst> MakeDataAckExchange(const PhyTiming& timing, Us start,
                                       int frame_bytes) {
  const bool ramp = timing.width() == ChannelWidth::kW5;
  const Us data_duration = timing.FrameDuration(frame_bytes);
  Burst data{start, data_duration, ramp, 1.0};
  Burst ack{start + data_duration + timing.Sifs(), timing.AckDuration(), ramp,
            1.0};
  return {data, ack};
}

std::vector<Burst> MakeBeaconCtsExchange(const PhyTiming& timing, Us start) {
  const bool ramp = timing.width() == ChannelWidth::kW5;
  const Us beacon_duration = timing.BeaconDuration();
  Burst beacon{start, beacon_duration, ramp, 1.0};
  Burst cts{start + beacon_duration + timing.Sifs(), timing.CtsDuration(), ramp,
            1.0};
  return {beacon, cts};
}

std::vector<Burst> MakeCbrSchedule(const PhyTiming& timing, int count,
                                   Us interval, int frame_bytes,
                                   Us first_start) {
  // Appends the data/ACK pair directly: no temporary two-element vector
  // per exchange, and the per-exchange timing constants are hoisted.
  const bool ramp = timing.width() == ChannelWidth::kW5;
  const Us data_duration = timing.FrameDuration(frame_bytes);
  const Us sifs = timing.Sifs();
  const Us ack_duration = timing.AckDuration();
  std::vector<Burst> bursts;
  bursts.reserve(static_cast<std::size_t>(count) * 2);
  for (int i = 0; i < count; ++i) {
    const Us start = first_start + static_cast<double>(i) * interval;
    bursts.push_back(Burst{start, data_duration, ramp, 1.0});
    bursts.push_back(
        Burst{start + data_duration + sifs, ack_duration, ramp, 1.0});
  }
  return bursts;
}

}  // namespace whitefi
