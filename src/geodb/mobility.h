// Random-waypoint mobility over the geo plane.
//
// The classic evaluation model: a node picks a uniform waypoint in a box,
// walks there in a straight line at a uniformly drawn speed, pauses, and
// repeats.  Legs are generated lazily from a seeded Rng as time advances,
// so the trajectory is a pure function of (start, params, seed) — the
// determinism contract every other stochastic component in this repo
// follows.  Positions are device-frame meters (sim/propagation.h); the
// geodb runtime converts to the kilometer geo plane when querying.
#pragma once

#include <cstdint>

#include "sim/propagation.h"
#include "sim/time.h"
#include "util/rng.h"

namespace whitefi {

/// Waypoint model tuning.
struct MobilityParams {
  /// Waypoints are drawn uniformly from start + [-range_m, range_m]^2.
  double range_m = 300.0;
  double speed_min_mps = 0.5;
  double speed_max_mps = 10.0;
  SimTime pause_min = 0;
  SimTime pause_max = 2 * kTicksPerSec;
  /// How often the runtime samples positions into the devices.
  SimTime tick = 100 * kTicksPerMs;
};

/// One node's trajectory.  `At` must be called with nondecreasing times
/// (the runtime's periodic tick guarantees it).
class RandomWaypoint {
 public:
  RandomWaypoint(const Position& start, const MobilityParams& params,
                 std::uint64_t seed);

  /// Position at simulated time `now` (>= the previous call's `now`).
  Position At(SimTime now);

 private:
  void NextLeg(SimTime depart);

  Position anchor_;  ///< Box center (the node's starting position).
  MobilityParams params_;
  Rng rng_;

  Position from_;
  Position to_;
  SimTime depart_ = 0;  ///< When motion on the current leg starts.
  SimTime arrive_ = 0;  ///< When the leg's waypoint is reached.
  SimTime rest_until_ = 0;  ///< Pause end after arrival (next leg departs).
};

}  // namespace whitefi
