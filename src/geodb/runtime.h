// GeoDbRuntime — wires the geo-db subsystem into one scenario.
//
// Owns the ground-truth GeoDatabase (synthesized metro stations plus
// scheduled venues, plus any push-storm venues the fault plan expands),
// the GeoDbService that serves it, one GeoDbSession per registered
// device, and the mobility trajectories that move devices across the geo
// plane.  It is also the auditor's GeoTruth oracle: ProtectedAt answers
// from the same database the service serves, evaluated at the node's
// *current* position — so a device whose degraded-mode handling is wrong
// shows up as an incumbent-safety violation, not a silent anomaly.
//
// Determinism: every random stream in here derives from named substreams
// of the scenario seed (never from World::NewRng), so enabling the
// subsystem leaves a disabled run byte-identical, and two runs with the
// same seed are byte-identical to each other.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/geo_truth.h"
#include "geodb/mobility.h"
#include "geodb/service.h"
#include "geodb/session.h"
#include "sim/world.h"

namespace whitefi {

/// Scenario-level geo-db configuration ([geodb] / [mobility] sections).
struct GeoDbRuntimeParams {
  bool enabled = false;
  /// Geo-plane position of the cell's metric origin; the synthesized
  /// metro core sits at (0,0), so the default places the cell in the
  /// suburbs where some — not all — channels are protected.
  GeoPoint origin_km{25.0, 0.0};
  // Ground-truth synthesis (stations reuse MetroModel's power model).
  int stations = 18;
  double core_radius_km = 15.0;
  double min_erp_kw = 10.0;
  double max_erp_kw = 1000.0;
  /// Scheduled venues near the cell: each activates once inside the run
  /// horizon, forcing a mid-run protection change the devices must honor.
  int venues = 2;
  double venue_radius_km = 1.0;
  /// Venue distance from the cell origin (<= radius keeps the cell inside
  /// the protection, so activations actually bite).
  double venue_spread_km = 0.5;
  Us venue_start_min = 1.0 * kSecond;
  Us venue_start_max = 6.0 * kSecond;
  Us venue_on_min = 1.0 * kSecond;
  Us venue_on_max = 4.0 * kSecond;
  /// Mirror each venue as a physical world mic audible to the nodes its
  /// radius covers (at their starting positions): the scanner then backs
  /// up the database, which is how a cell survives "DB outage during a
  /// mic event".
  bool venue_mics = false;
  GeoDbServiceParams service;
  GeoDbSessionParams session;
  /// Client mobility (random waypoint); the AP never moves.
  bool mobility = false;
  MobilityParams waypoint;
};

class GeoDbRuntime : public GeoTruth {
 public:
  /// Builds the ground truth (stations, venues, expanded push storms from
  /// `faults`, which may be null) and the service.  `seed` is the
  /// scenario root seed; all streams are derived substreams.
  GeoDbRuntime(World& world, const GeoDbRuntimeParams& params,
               std::uint64_t seed, FaultInjector* faults);

  /// Registers a device: creates its session (base map = the device's
  /// current tv_map) and, when `mobile` and mobility is on, a waypoint
  /// trajectory.  Call in node-creation order for determinism.
  void AddNode(Device& device, bool mobile);

  /// The guarded map a device at metric position `at` would bootstrap
  /// with — fold into the boot channel decision so the cell does not
  /// start on a geo-protected channel and immediately vacate.
  SpectrumMap BootstrapMapAt(const Position& at) const;

  /// Starts the service timeline, bootstraps every session, registers
  /// venue mics, and schedules the mobility tick.  Call after every
  /// AddNode and before the run.
  void Start();

  /// Worst-case notification delay from a ground-truth protection change
  /// to the device respecting it: the later of the push path and the
  /// refresh-then-breaker-trip path, plus the enforcement re-assert.
  /// Callers add their vacate allowance (detect latency + retune slack)
  /// to form the auditor's geo budget.
  SimTime SuggestedGeoBudget() const;

  // -- GeoTruth ------------------------------------------------------------
  bool ProtectedAt(int node, UhfIndex channel, SimTime now) const override;

  const GeoDatabase& db() const { return db_; }
  GeoDbService& service() { return service_; }
  const std::vector<std::unique_ptr<GeoDbSession>>& sessions() const {
    return sessions_;
  }

  /// Aggregated mode-transition counts across every session.
  int degraded_transitions() const;
  int recovered_transitions() const;

 private:
  GeoPoint GeoAt(const Position& position) const;
  void MobilityTick();

  World& world_;
  GeoDbRuntimeParams params_;
  std::uint64_t seed_;
  GeoDatabase db_;
  GeoDbService service_;
  struct Entry {
    Device* device = nullptr;
    std::unique_ptr<RandomWaypoint> waypoint;  ///< Null: static node.
  };
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<GeoDbSession>> sessions_;
};

}  // namespace whitefi
