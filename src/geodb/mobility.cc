#include "geodb/mobility.h"

#include <algorithm>
#include <cmath>

namespace whitefi {

RandomWaypoint::RandomWaypoint(const Position& start,
                               const MobilityParams& params,
                               std::uint64_t seed)
    : anchor_(start), params_(params), rng_(seed), from_(start), to_(start) {
  // The node starts at rest; the first leg departs immediately.
  NextLeg(0);
}

void RandomWaypoint::NextLeg(SimTime depart) {
  from_ = to_;
  to_ = Position{anchor_.x + rng_.Uniform(-params_.range_m, params_.range_m),
                 anchor_.y + rng_.Uniform(-params_.range_m, params_.range_m)};
  const double speed =
      std::max(0.01, rng_.Uniform(params_.speed_min_mps, params_.speed_max_mps));
  const double meters = Distance(from_, to_);
  depart_ = depart;
  arrive_ = depart + std::max<SimTime>(
                         1, static_cast<SimTime>(meters / speed * kSecond));
  rest_until_ =
      arrive_ + static_cast<SimTime>(
                    rng_.Uniform(static_cast<double>(params_.pause_min),
                                 static_cast<double>(params_.pause_max)));
}

Position RandomWaypoint::At(SimTime now) {
  while (now >= rest_until_) NextLeg(rest_until_);
  if (now <= depart_) return from_;
  if (now >= arrive_) return to_;
  const double f = static_cast<double>(now - depart_) /
                   static_cast<double>(arrive_ - depart_);
  return Position{from_.x + (to_.x - from_.x) * f,
                  from_.y + (to_.y - from_.y) * f};
}

}  // namespace whitefi
