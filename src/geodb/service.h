// GeoDbService — the geo-location database as a simulated stateful
// service.
//
// The paper's Section 3 treats the FCC geo-location database as an
// oracle; "Towards Dynamic Real-Time Geo-location Databases for TV White
// Spaces" (PAPERS.md) argues it is a live service: queries cost latency
// that grows with load, the request queue is bounded and sheds under
// overload, served data can lag reality, outages happen, and incumbent
// changes are *pushed* to subscribed devices rather than polled.  This
// class models exactly that, scheduled on the simulator's timer wheel:
//
//   * query latency = base + per-pending * queue depth, with seeded
//     jitter — a loaded database answers slower;
//   * a bounded request queue: past `max_queue` pending queries the
//     service sheds, answering immediately with a rejection (the client
//     treats it as a failure and backs off);
//   * outage windows (FaultInjector::GeoDbAvailable): requests and
//     in-flight responses vanish silently — the client's only signal is
//     its own timeout;
//   * staleness: served contour data is timestamped `staleness` behind
//     the serve time (compounded with the fault plan's geodb_staleness);
//   * push updates: every registered venue's activation and deactivation
//     fans out to each subscriber with a per-subscriber latency draw.
//
// Determinism: the service owns a seeded Rng (a named substream of the
// scenario seed); fan-out draws happen in subscription order, so runs are
// byte-identical at any thread count and unchanged by observability.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault.h"
#include "obs/obs.h"
#include "sim/events.h"
#include "sim/time.h"
#include "spectrum/geodb.h"
#include "util/rng.h"

namespace whitefi {

/// Service tuning.
struct GeoDbServiceParams {
  /// Unloaded query service time.
  SimTime base_latency = 50 * kTicksPerMs;
  /// Additional latency per already-pending request (load dependence).
  SimTime per_pending_latency = 20 * kTicksPerMs;
  /// Fractional +/- jitter applied to each query latency draw.
  double latency_jitter = 0.3;
  /// Pending requests beyond this are shed (rejected immediately).
  int max_queue = 16;
  /// Turnaround of a shed rejection (fast-fail, not a timeout).
  SimTime shed_latency = 10 * kTicksPerMs;
  /// Age of served contour data behind the serve time.
  Us staleness = 0.0;
  /// Enable venue activation/deactivation push notifications.
  bool push_enabled = true;
  /// Per-subscriber push fan-out latency range.
  SimTime push_latency_min = 20 * kTicksPerMs;
  SimTime push_latency_max = 200 * kTicksPerMs;
};

/// One entry of the venue directory a query returns: static geometry plus
/// the activity flag evaluated at serve time.  Venue *schedules* are
/// forward-looking DB content, so activity is always current even when
/// contour data is served stale — this is what lets a recovering client
/// resync venue state it missed during an outage.
struct GeoVenueInfo {
  int index = -1;  ///< Stable venue id (registration order in the DB).
  UhfIndex channel = 0;
  GeoPoint location;
  double radius_km = 1.0;
  bool active = false;
};

/// A query response.
struct GeoQueryResult {
  bool ok = false;  ///< false = shed (overload rejection).
  /// Timestamp the contour data was computed at (staleness accounting).
  Us data_time = 0.0;
  /// Guarded TV-station contours at the query position.
  SpectrumMap stations;
  /// Conservative map at the query position (degraded-mode fallback).
  SpectrumMap conservative;
  /// Full venue directory with serve-time activity flags.
  std::vector<GeoVenueInfo> venues;
};

/// One push notification: a venue protection window opened or closed.
struct GeoPushUpdate {
  int venue = -1;
  UhfIndex channel = 0;
  GeoPoint location;
  double radius_km = 1.0;
  bool active = false;
};

/// The service node.  Not a Device: the database lives outside the cell
/// (reached over the backhaul), so it schedules plain simulator events.
class GeoDbService {
 public:
  /// `db` is the ground-truth database (must outlive the service);
  /// `faults` may be null (no outages / extra staleness).
  GeoDbService(Simulator& sim, const GeoDatabase& db,
               const GeoDbServiceParams& params, std::uint64_t seed,
               FaultInjector* faults, const Observability& obs);

  /// Schedules the venue push timeline (call once, before the run).
  void Start();

  /// Issues an asynchronous query for the map at `where` with contours
  /// inflated by `guard_km`.  `done` fires after the (load-dependent)
  /// latency — or never, when an outage swallows the request or response.
  void Query(int node, const GeoPoint& where, double guard_km,
             std::function<void(const GeoQueryResult&)> done);

  /// Registers a push subscriber.  Fan-out iterates in subscription
  /// order; subscribe nodes in a deterministic order.
  void Subscribe(int node, std::function<void(const GeoPushUpdate&)> on_push);

  /// The association-time provisioning query: synchronous and always
  /// served (a device contacts the database over its wired bootstrap
  /// path before it may transmit at all).  data_time = 0.
  GeoQueryResult Bootstrap(const GeoPoint& where, double guard_km) const;

  const GeoDatabase& db() const { return db_; }
  int pending() const { return pending_; }
  std::uint64_t queries() const { return queries_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t lost_to_outage() const { return lost_; }
  std::uint64_t pushes_sent() const { return pushes_; }

 private:
  struct Subscriber {
    int node = -1;
    std::function<void(const GeoPushUpdate&)> on_push;
  };

  bool Reachable(SimTime now) const;
  Us ServedTime(Us now) const;
  GeoQueryResult Compute(const GeoPoint& where, double guard_km, Us data_time,
                         Us active_at) const;
  void EmitVenueEvent(int venue_index, bool active);

  Simulator& sim_;
  const GeoDatabase& db_;
  GeoDbServiceParams params_;
  Rng rng_;
  FaultInjector* faults_;
  Observability obs_;
  std::vector<Subscriber> subscribers_;
  int pending_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t pushes_ = 0;
};

}  // namespace whitefi
