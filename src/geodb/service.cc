#include "geodb/service.h"

#include <algorithm>
#include <utility>

namespace whitefi {

GeoDbService::GeoDbService(Simulator& sim, const GeoDatabase& db,
                           const GeoDbServiceParams& params,
                           std::uint64_t seed, FaultInjector* faults,
                           const Observability& obs)
    : sim_(sim), db_(db), params_(params), rng_(seed), faults_(faults),
      obs_(obs) {}

bool GeoDbService::Reachable(SimTime now) const {
  return faults_ == nullptr || faults_->GeoDbAvailable(ToUs(now));
}

Us GeoDbService::ServedTime(Us now) const {
  Us served = now - params_.staleness;
  if (faults_ != nullptr) served = std::min(served, faults_->GeoDbServedTime(now));
  return std::max(0.0, served);
}

GeoQueryResult GeoDbService::Compute(const GeoPoint& where, double guard_km,
                                     Us data_time, Us active_at) const {
  GeoQueryResult result;
  result.ok = true;
  result.data_time = data_time;
  // Station contours only: venue occupancy travels as the directory below
  // so the client can track activations/deactivations against its own
  // (possibly moved) position.
  for (const TvStation& station : db_.stations()) {
    if (GeoDistanceKm(where, station.location) <=
        ProtectedRadiusKm(station) + guard_km) {
      result.stations.SetOccupied(station.channel, true);
    }
  }
  result.conservative = db_.QueryConservativeAt(where, guard_km);
  const auto& venues = db_.venues();
  result.venues.reserve(venues.size());
  for (std::size_t i = 0; i < venues.size(); ++i) {
    const ProtectedVenue& v = venues[i];
    GeoVenueInfo info;
    info.index = static_cast<int>(i);
    info.channel = v.channel;
    info.location = v.location;
    info.radius_km = v.radius_km;
    // Activity is evaluated at *serve* time, not data_time: venue windows
    // are scheduled DB content, current even when contour data lags.
    info.active = v.ActiveAt(active_at);
    result.venues.push_back(info);
  }
  return result;
}

GeoQueryResult GeoDbService::Bootstrap(const GeoPoint& where,
                                       double guard_km) const {
  return Compute(where, guard_km, 0.0, 0.0);
}

void GeoDbService::Query(int /*node*/, const GeoPoint& where, double guard_km,
                         std::function<void(const GeoQueryResult&)> done) {
  ++queries_;
  MetricsRegistry::Count(obs_.metrics, "whitefi.geodb.queries");
  const SimTime now = sim_.Now();
  if (!Reachable(now)) {
    // Outage swallows the request; the client discovers it by timeout.
    ++lost_;
    MetricsRegistry::Count(obs_.metrics, "whitefi.geodb.lost");
    return;
  }
  if (pending_ >= params_.max_queue) {
    // Overload shed: a fast rejection, distinct from a timeout.
    ++shed_;
    MetricsRegistry::Count(obs_.metrics, "whitefi.geodb.shed");
    sim_.ScheduleAfter(params_.shed_latency,
                       [done = std::move(done)] { done(GeoQueryResult{}); });
    return;
  }
  // Load dependence counts the requests ALREADY pending: an unloaded
  // query costs exactly base_latency (modulo jitter).
  const double jitter =
      1.0 + params_.latency_jitter * (2.0 * rng_.Uniform01() - 1.0);
  const SimTime latency = std::max<SimTime>(
      1, static_cast<SimTime>(
             static_cast<double>(params_.base_latency +
                                 params_.per_pending_latency * pending_) *
             jitter));
  ++pending_;
  sim_.ScheduleAfter(latency, [this, where, guard_km,
                               done = std::move(done)] {
    --pending_;
    const SimTime at = sim_.Now();
    if (!Reachable(at)) {
      // The response was in flight when the outage hit: lost.
      ++lost_;
      MetricsRegistry::Count(obs_.metrics, "whitefi.geodb.lost");
      return;
    }
    const Us now_us = ToUs(at);
    done(Compute(where, guard_km, ServedTime(now_us), now_us));
  });
}

void GeoDbService::Subscribe(int node,
                             std::function<void(const GeoPushUpdate&)> on_push) {
  subscribers_.push_back(Subscriber{node, std::move(on_push)});
}

void GeoDbService::Start() {
  // Schedule the venue timeline: one push fan-out per activation edge.
  // Windows opening at t=0 still fire (Schedule clamps to Now()).
  const auto& venues = db_.venues();
  for (std::size_t i = 0; i < venues.size(); ++i) {
    const ProtectedVenue& v = venues[i];
    const int index = static_cast<int>(i);
    sim_.Schedule(ToTicks(v.from), [this, index] { EmitVenueEvent(index, true); });
    sim_.Schedule(ToTicks(v.until),
                  [this, index] { EmitVenueEvent(index, false); });
  }
}

void GeoDbService::EmitVenueEvent(int venue_index, bool active) {
  if (!params_.push_enabled) return;
  const ProtectedVenue& v = db_.venues()[static_cast<std::size_t>(venue_index)];
  GeoPushUpdate update;
  update.venue = venue_index;
  update.channel = v.channel;
  update.location = v.location;
  update.radius_km = v.radius_km;
  update.active = active;
  // Per-subscriber latency draws in subscription order (deterministic),
  // then the delivery itself checks reachability: a push launched into an
  // outage is lost, exactly like a query response.
  for (const Subscriber& sub : subscribers_) {
    const SimTime latency = static_cast<SimTime>(
        rng_.Uniform(static_cast<double>(params_.push_latency_min),
                     static_cast<double>(params_.push_latency_max)));
    sim_.ScheduleAfter(latency, [this, update, on_push = sub.on_push] {
      if (!Reachable(sim_.Now())) {
        ++lost_;
        MetricsRegistry::Count(obs_.metrics, "whitefi.geodb.lost");
        return;
      }
      ++pushes_;
      MetricsRegistry::Count(obs_.metrics, "whitefi.geodb.pushes");
      on_push(update);
    });
  }
}

}  // namespace whitefi
