#include "geodb/session.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace whitefi {

GeoDbSession::GeoDbSession(World& world, Device& device, GeoDbService& service,
                           GeoPoint origin_km, SpectrumMap base_map,
                           const GeoDbSessionParams& params,
                           std::uint64_t seed)
    : world_(world), device_(device), service_(service),
      origin_km_(origin_km), base_map_(base_map), params_(params),
      rng_(seed) {}

GeoPoint GeoDbSession::CurrentGeoPoint() const {
  const Position p = device_.Location();
  return GeoPoint{origin_km_.x_km + p.x / 1000.0,
                  origin_km_.y_km + p.y / 1000.0};
}

void GeoDbSession::Start() {
  // Provisioning query: synchronous, always served (wired bootstrap path).
  const GeoPoint here = CurrentGeoPoint();
  const GeoQueryResult boot = service_.Bootstrap(here, params_.guard_km);
  last_query_point_ = here;
  stations_ = boot.stations;
  conservative_ = boot.conservative;
  directory_ = boot.venues;
  data_time_ = boot.data_time;
  world_.RecordState(device_.NodeId(), "geodb-fresh");
  RecomputeRespected();
  ApplyToDevice();
  if (params_.subscribe_push) {
    service_.Subscribe(device_.NodeId(),
                       [this](const GeoPushUpdate& update) { OnPush(update); });
  }
  // Staleness watchdog for the bootstrap data (data_time = 0: an outage
  // that outlives stale_after degrades even if no refresh ever failed
  // visibly — though the timeout path will normally get there first).
  const std::uint64_t sg = ++stale_gen_;
  world_.sim().Schedule(
      ToTicks(data_time_ + params_.stale_after) + 1, [this, sg] {
        if (sg != stale_gen_) return;
        SetMode(GeoDbMode::kDegraded, "stale");
      });
  const SimTime first = static_cast<SimTime>(
      static_cast<double>(params_.refresh_interval) *
      (1.0 + params_.refresh_jitter * rng_.Uniform01()));
  ScheduleRefreshIn(first);
  world_.sim().ScheduleAfter(params_.enforce_interval,
                             [this] { EnforceTick(); });
}

void GeoDbSession::ScheduleRefreshIn(SimTime delay) {
  const std::uint64_t g = ++refresh_gen_;
  world_.sim().ScheduleAfter(std::max<SimTime>(1, delay), [this, g] {
    if (g != refresh_gen_) return;
    StartRefresh();
  });
}

void GeoDbSession::StartRefresh() {
  if (query_pending_) return;
  // A refresh attempted while the breaker is open is the half-open probe.
  if (breaker_ == GeoDbBreaker::kOpen) breaker_ = GeoDbBreaker::kHalfOpen;
  query_pending_ = true;
  const std::uint64_t g = ++query_gen_;
  const GeoPoint here = CurrentGeoPoint();
  service_.Query(device_.NodeId(), here, params_.guard_km,
                 [this, g, here](const GeoQueryResult& result) {
                   OnQueryResult(g, here, result);
                 });
  world_.sim().ScheduleAfter(params_.refresh_timeout,
                             [this, g] { OnQueryTimeout(g); });
}

void GeoDbSession::OnQueryResult(std::uint64_t generation, const GeoPoint& at,
                                 const GeoQueryResult& result) {
  if (generation != query_gen_ || !query_pending_) return;  // Timed out.
  query_pending_ = false;
  ++query_gen_;  // Invalidate the pending timeout.
  if (!result.ok) {
    Failure("shed");
    return;
  }
  Success(at, result);
}

void GeoDbSession::OnQueryTimeout(std::uint64_t generation) {
  if (generation != query_gen_ || !query_pending_) return;  // Answered.
  query_pending_ = false;
  ++query_gen_;  // A response arriving later is stale; drop it.
  Failure("timeout");
}

void GeoDbSession::Success(const GeoPoint& at, const GeoQueryResult& result) {
  failures_ = 0;
  breaker_ = GeoDbBreaker::kClosed;
  ++refreshes_;
  last_query_point_ = at;
  stations_ = result.stations;
  conservative_ = result.conservative;
  directory_ = result.venues;
  data_time_ = result.data_time;

  const SimTime now = world_.sim().Now();
  // Strict staleness boundary (mirrors GeoDbClient::Stale): age exactly at
  // stale_after is trusted, one tick past it is not.
  const SimTime stale_at = ToTicks(data_time_ + params_.stale_after) + 1;
  if (stale_at <= now) {
    // The service itself served data past the horizon: degraded even
    // though the query "succeeded".
    SetMode(GeoDbMode::kDegraded, "served-stale");
  } else {
    // Fresh data at a known position clears degraded AND blackout.
    SetMode(GeoDbMode::kFresh, "refresh");
    const std::uint64_t sg = ++stale_gen_;
    world_.sim().Schedule(stale_at, [this, sg] {
      if (sg != stale_gen_) return;
      SetMode(GeoDbMode::kDegraded, "stale");
    });
  }
  RecomputeRespected();
  ApplyToDevice();
  const SimTime next = static_cast<SimTime>(
      static_cast<double>(params_.refresh_interval) *
      (1.0 + params_.refresh_jitter * rng_.Uniform01()));
  ScheduleRefreshIn(next);
}

SimTime GeoDbSession::Backoff() {
  double delay = static_cast<double>(params_.backoff_base) *
                 std::pow(params_.backoff_factor,
                          std::max(0, failures_ - 1));
  delay = std::min(delay, static_cast<double>(params_.backoff_max));
  delay *= 1.0 + params_.backoff_jitter * (2.0 * rng_.Uniform01() - 1.0);
  last_backoff_ = std::max<SimTime>(1, static_cast<SimTime>(delay));
  return last_backoff_;
}

void GeoDbSession::Failure(const char* reason) {
  ++failures_;
  MetricsRegistry::Count(world_.metrics(), "whitefi.geodb.refresh_failures");
  if (breaker_ == GeoDbBreaker::kHalfOpen) {
    // The probe failed: back to open, next probe after another cooldown.
    breaker_ = GeoDbBreaker::kOpen;
    ScheduleRefreshIn(params_.breaker_cooldown);
    return;
  }
  if (failures_ >= params_.breaker_failures) {
    // Trip: stop hammering the service and stop trusting the cached map's
    // currency — fall back to the conservative set *now*, well before the
    // stale_after horizon would force it.
    breaker_ = GeoDbBreaker::kOpen;
    SetMode(GeoDbMode::kDegraded,
            (std::string("breaker-open:") + reason).c_str());
    ScheduleRefreshIn(params_.breaker_cooldown);
    return;
  }
  ScheduleRefreshIn(Backoff());
}

void GeoDbSession::OnPush(const GeoPushUpdate& update) {
  if (update.venue < 0) return;
  const auto index = static_cast<std::size_t>(update.venue);
  if (index >= directory_.size()) {
    // A venue registered after our last refresh: adopt it from the push
    // (pushes carry full geometry precisely so late subscribers converge).
    directory_.resize(index + 1);
  }
  GeoVenueInfo& info = directory_[index];
  info.index = update.venue;
  info.channel = update.channel;
  info.location = update.location;
  info.radius_km = update.radius_km;
  info.active = update.active;
  MetricsRegistry::Count(world_.metrics(), "whitefi.geodb.push_applied");
  RecomputeRespected();
  ApplyToDevice();
}

void GeoDbSession::OnMoved() {
  const double drift = GeoDistanceKm(CurrentGeoPoint(), last_query_point_);
  if (drift > params_.guard_km) {
    // The guarded map's validity proof is broken: nothing cached can be
    // trusted at this position.  Respect everything until a query lands.
    if (mode_ != GeoDbMode::kBlackout) {
      SetMode(GeoDbMode::kBlackout, "guard-exceeded");
    }
    if (!query_pending_ && breaker_ != GeoDbBreaker::kOpen) StartRefresh();
    return;
  }
  if (drift > params_.requery_km && !query_pending_ &&
      breaker_ == GeoDbBreaker::kClosed) {
    StartRefresh();
  }
}

void GeoDbSession::SetMode(GeoDbMode mode, const char* reason) {
  if (mode == mode_) return;
  const bool was_fresh = mode_ == GeoDbMode::kFresh;
  const bool now_fresh = mode == GeoDbMode::kFresh;
  mode_ = mode;
  const int node = device_.NodeId();
  const char* state = now_fresh ? "geodb-fresh"
                      : mode == GeoDbMode::kBlackout ? "geodb-blackout"
                                                     : "geodb-degraded";
  world_.RecordState(node, state);
  if (was_fresh && !now_fresh) {
    ++degraded_count_;
    MetricsRegistry::Count(world_.metrics(), "whitefi.geodb.degraded");
    episode_span_ = world_.NextTraceId();
    world_.TraceSpanBegin(node, episode_span_, 0, 0, "geodb.degraded");
    TraceEvent event;
    event.kind = TraceEventKind::kGeoDbDegraded;
    event.node = node;
    event.span_id = episode_span_;
    event.detail = reason;
    world_.TraceEventNow(std::move(event));
  } else if (!was_fresh && now_fresh) {
    ++recovered_count_;
    MetricsRegistry::Count(world_.metrics(), "whitefi.geodb.recovered");
    TraceEvent event;
    event.kind = TraceEventKind::kGeoDbRecovered;
    event.node = node;
    event.span_id = episode_span_;
    event.detail = reason;
    world_.TraceEventNow(std::move(event));
    world_.TraceSpanEnd(node, episode_span_, 0, "geodb.degraded");
    episode_span_ = 0;
  } else {
    // Deepening / easing within the non-fresh episode (degraded <->
    // blackout): annotate the open span, keep the counters quiet.
    TraceEvent event;
    event.kind = TraceEventKind::kGeoDbDegraded;
    event.node = node;
    event.span_id = episode_span_;
    event.detail = reason;
    world_.TraceEventNow(std::move(event));
  }
  // Every mode change alters what the device must respect.
  RecomputeRespected();
  ApplyToDevice();
}

void GeoDbSession::RecomputeRespected() {
  SpectrumMap next;
  switch (mode_) {
    case GeoDbMode::kBlackout:
      for (UhfIndex c = 0; c < kNumUhfChannels; ++c) next.SetOccupied(c, true);
      break;
    case GeoDbMode::kFresh:
    case GeoDbMode::kDegraded: {
      // Degraded widens the station base to the conservative map (which
      // also bakes in every venue near the *query* point); the directory
      // overlay below handles venues that came into range via movement or
      // activated via push, in both modes.
      next = mode_ == GeoDbMode::kFresh ? stations_ : conservative_;
      const GeoPoint here = CurrentGeoPoint();
      for (const GeoVenueInfo& v : directory_) {
        const bool respect =
            mode_ == GeoDbMode::kDegraded ? true : v.active;
        if (respect && GeoDistanceKm(here, v.location) <=
                           v.radius_km + params_.guard_km) {
          next.SetOccupied(v.channel, true);
        }
      }
      break;
    }
  }
  respected_ = next;
}

void GeoDbSession::ApplyToDevice() {
  const SpectrumMap previous = device_.config().tv_map;
  const SpectrumMap combined = base_map_.UnionWith(respected_);
  if (combined == previous) return;
  device_.SetTvMap(combined);
  const Channel& tuned = device_.TunedChannel();
  for (UhfIndex c = tuned.Low(); c <= tuned.High(); ++c) {
    if (combined.Occupied(c) && !previous.Occupied(c)) {
      device_.OnIncumbentDetected(c);
    }
  }
}

void GeoDbSession::EnforceTick() {
  // The vacate re-checks in core/ consult World::MicAudible, which a
  // geo-only protection never satisfies, so a single OnIncumbentDetected
  // can legitimately be swallowed (e.g. the AP defers past an announce and
  // then re-checks the mic).  Re-assert until the device actually moves
  // off the respected channel.
  const Channel& tuned = device_.TunedChannel();
  for (UhfIndex c = tuned.Low(); c <= tuned.High(); ++c) {
    if (respected_.Occupied(c)) {
      device_.OnIncumbentDetected(c);
      break;
    }
  }
  world_.sim().ScheduleAfter(params_.enforce_interval,
                             [this] { EnforceTick(); });
}

}  // namespace whitefi
