// GeoDbSession — a device's resilient connection to the geo-db service.
//
// The spectrum-layer GeoDbClient (spectrum/geodb.h) is a passive cache:
// something else must call Refresh and reason about failures.  This class
// is that something, grown into a full recovery protocol running on the
// simulator:
//
//   * scheduled refresh with jitter, and a timeout on every query (an
//     outage swallows requests silently — the timeout is the only signal);
//   * capped exponential backoff with seeded jitter between retries;
//   * a circuit breaker: after `breaker_failures` consecutive failures the
//     session stops hammering the service, trips to the conservative map
//     *before* the data's stale_after horizon expires, and probes
//     half-open once per cooldown;
//   * a staleness watchdog pinned to the served data_time: data older
//     than `stale_after` degrades the session even when every refresh
//     "succeeded" (the service can serve lagging data).  The boundary is
//     strict, matching GeoDbClient::Stale — age exactly at the horizon is
//     still trusted; one tick past it is not;
//   * push overlay: venue activation/deactivation notifications update the
//     locally held venue directory immediately, without a round trip;
//   * mobility: OnMoved re-queries after drifting `requery_km` from the
//     last query point; past `guard_km` the guarded map's validity proof
//     breaks and the session blacks out (all channels respected) until a
//     query at the new position lands.
//
// Mode transitions are observable: every fresh->degraded edge emits a
// kGeoDbDegraded trace event, bumps whitefi.geodb.degraded, opens a
// "geodb.degraded" span, and records a timeline state; the recovery edge
// mirrors it (kGeoDbRecovered / whitefi.geodb.recovered / span end).
//
// The respected map rides the device's tv_map slot (base scenario map
// union the respected set) and newly protected in-channel indices trigger
// OnIncumbentDetected.  Because the AP's busy-path vacate re-check and
// the client's switch re-check consult World::MicAudible — false for
// geo-only protections — a one-shot trigger can be legitimately dropped;
// the session therefore re-asserts every `enforce_interval` while a
// respected channel overlaps the tuned channel.
#pragma once

#include <cstdint>
#include <vector>

#include "geodb/service.h"
#include "sim/node.h"
#include "sim/world.h"

namespace whitefi {

/// Session tuning.
struct GeoDbSessionParams {
  /// Steady-state refresh period (jittered per schedule).
  SimTime refresh_interval = 2 * kTicksPerSec;
  double refresh_jitter = 0.1;
  /// Query timeout — the only way to notice an outage.
  SimTime refresh_timeout = 400 * kTicksPerMs;
  /// Retry backoff: base * factor^(failures-1), capped, jittered.
  SimTime backoff_base = 200 * kTicksPerMs;
  double backoff_factor = 2.0;
  SimTime backoff_max = 1600 * kTicksPerMs;
  double backoff_jitter = 0.2;
  /// Consecutive failures that trip the circuit breaker.
  int breaker_failures = 3;
  /// Half-open probe period while the breaker is tripped.
  SimTime breaker_cooldown = 1 * kTicksPerSec;
  /// Data older than this is stale (strict boundary; see header comment).
  Us stale_after = 20.0 * kSecond;
  /// Contour guard for queries and the conservative fallback.
  double guard_km = 5.0;
  /// Movement that prompts a re-query at the new position.
  double requery_km = 1.0;
  /// Receive venue push notifications.
  bool subscribe_push = true;
  /// Period of the respected-channel re-assert tick.
  SimTime enforce_interval = 200 * kTicksPerMs;
};

/// Where the session's incumbent knowledge currently comes from.
enum class GeoDbMode {
  kFresh,     ///< Guarded query data, within stale_after, drift <= guard.
  kDegraded,  ///< Conservative map (breaker open / stale / shed).
  kBlackout,  ///< Moved beyond guard_km with no new data: respect all.
};

/// Breaker state (exposed for tests).
enum class GeoDbBreaker { kClosed, kOpen, kHalfOpen };

class GeoDbSession {
 public:
  /// `base_map` is the device's scenario tv_map without geo content; the
  /// session owns the tv_map slot from here on (base union respected).
  /// `origin_km` maps the device's metric position onto the geo plane:
  /// geo = origin + position / 1000.
  GeoDbSession(World& world, Device& device, GeoDbService& service,
               GeoPoint origin_km, SpectrumMap base_map,
               const GeoDbSessionParams& params, std::uint64_t seed);

  /// Bootstrap (synchronous provisioning query), push subscription, first
  /// scheduled refresh, enforcement tick.  Call before the run starts.
  void Start();

  /// Notify the session that the device moved (mobility tick).
  void OnMoved();

  GeoDbMode mode() const { return mode_; }
  GeoDbBreaker breaker() const { return breaker_; }
  int consecutive_failures() const { return failures_; }
  const SpectrumMap& respected() const { return respected_; }
  Us data_time() const { return data_time_; }
  int refreshes() const { return refreshes_; }
  int degraded_transitions() const { return degraded_count_; }
  int recovered_transitions() const { return recovered_count_; }
  /// Delay chosen by the most recent backoff draw (0 before any failure);
  /// the backoff-determinism test compares these across identical seeds.
  SimTime last_backoff() const { return last_backoff_; }

 private:
  GeoPoint CurrentGeoPoint() const;
  void StartRefresh();
  void OnQueryResult(std::uint64_t generation, const GeoPoint& at,
                     const GeoQueryResult& result);
  void OnQueryTimeout(std::uint64_t generation);
  void Success(const GeoPoint& at, const GeoQueryResult& result);
  void Failure(const char* reason);
  SimTime Backoff();
  void ScheduleRefreshIn(SimTime delay);
  void OnPush(const GeoPushUpdate& update);
  void SetMode(GeoDbMode mode, const char* reason);
  void RecomputeRespected();
  void ApplyToDevice();
  void EnforceTick();

  World& world_;
  Device& device_;
  GeoDbService& service_;
  GeoPoint origin_km_;
  SpectrumMap base_map_;
  GeoDbSessionParams params_;
  Rng rng_;

  GeoDbMode mode_ = GeoDbMode::kFresh;
  GeoDbBreaker breaker_ = GeoDbBreaker::kClosed;
  int failures_ = 0;
  SimTime last_backoff_ = 0;

  bool query_pending_ = false;
  std::uint64_t query_gen_ = 0;    ///< Invalidates stale result/timeout.
  std::uint64_t refresh_gen_ = 0;  ///< Latest scheduled refresh wins.
  std::uint64_t stale_gen_ = 0;    ///< Invalidates superseded watchdogs.

  // Last successful query: contours, fallback, venue directory.
  SpectrumMap stations_;
  SpectrumMap conservative_;
  std::vector<GeoVenueInfo> directory_;
  Us data_time_ = 0.0;
  GeoPoint last_query_point_;

  SpectrumMap respected_;
  std::int64_t episode_span_ = 0;  ///< Open "geodb.degraded" span id.
  int refreshes_ = 0;
  int degraded_count_ = 0;
  int recovered_count_ = 0;
};

}  // namespace whitefi
