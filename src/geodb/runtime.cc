#include "geodb/runtime.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace whitefi {

namespace {

GeoDatabase BuildGroundTruth(const GeoDbRuntimeParams& params,
                             std::uint64_t seed, FaultInjector* faults) {
  Rng rng(DeriveSeed(seed, "geodb.db"));
  MetroModel model;
  model.stations = params.stations;
  model.core_radius_km = params.core_radius_km;
  model.min_erp_kw = params.min_erp_kw;
  model.max_erp_kw = params.max_erp_kw;
  model.venues = 0;  // Venues are scheduled below, inside the run horizon.
  GeoDatabase db = SynthesizeMetro(model, rng);

  // Channels free of stations at the cell origin: venue protections on
  // these are the interesting ones (the cell might be using them).
  const SpectrumMap at_origin = db.QueryAt(params.origin_km);
  std::vector<UhfIndex> candidates = at_origin.FreeIndices();
  if (candidates.empty()) {
    for (UhfIndex c = 0; c < kNumUhfChannels; ++c) candidates.push_back(c);
  }
  for (int i = 0; i < params.venues; ++i) {
    ProtectedVenue venue;
    venue.name = "venue-" + std::to_string(i);
    venue.channel = rng.Pick(candidates);
    const double r = params.venue_spread_km * std::sqrt(rng.Uniform01());
    const double theta = rng.Uniform(0.0, 2.0 * M_PI);
    venue.location = GeoPoint{params.origin_km.x_km + r * std::cos(theta),
                              params.origin_km.y_km + r * std::sin(theta)};
    venue.radius_km = params.venue_radius_km;
    venue.from = rng.Uniform(params.venue_start_min, params.venue_start_max);
    venue.until = venue.from + rng.Uniform(params.venue_on_min,
                                           params.venue_on_max);
    db.RegisterVenue(venue);
  }
  // Push-storm venues come from the fault plan: registering them in the
  // same database keeps ground truth, pushes, and the auditor's oracle
  // telling one story.
  if (faults != nullptr) {
    int n = 0;
    for (const StormVenue& sv : faults->ExpandPushStorms(candidates)) {
      ProtectedVenue venue;
      venue.name = "storm-" + std::to_string(n++);
      venue.channel = sv.channel;
      venue.location = GeoPoint{params.origin_km.x_km + sv.x_km,
                                params.origin_km.y_km + sv.y_km};
      venue.radius_km = sv.radius_km;
      venue.from = sv.from;
      venue.until = sv.until;
      db.RegisterVenue(venue);
    }
  }
  return db;
}

}  // namespace

GeoDbRuntime::GeoDbRuntime(World& world, const GeoDbRuntimeParams& params,
                           std::uint64_t seed, FaultInjector* faults)
    : world_(world), params_(params), seed_(seed),
      db_(BuildGroundTruth(params, seed, faults)),
      service_(world.sim(), db_, params.service,
               DeriveSeed(seed, "geodb.service"), faults, world.obs()) {}

GeoPoint GeoDbRuntime::GeoAt(const Position& position) const {
  return GeoPoint{params_.origin_km.x_km + position.x / 1000.0,
                  params_.origin_km.y_km + position.y / 1000.0};
}

SpectrumMap GeoDbRuntime::BootstrapMapAt(const Position& at) const {
  return db_.QueryGuardedAt(GeoAt(at), 0.0, params_.session.guard_km);
}

void GeoDbRuntime::AddNode(Device& device, bool mobile) {
  Entry entry;
  entry.device = &device;
  if (mobile && params_.mobility) {
    entry.waypoint = std::make_unique<RandomWaypoint>(
        device.Location(), params_.waypoint,
        DeriveSeed(seed_, "geodb.waypoint." +
                              std::to_string(device.NodeId())));
  }
  entries_.push_back(std::move(entry));
  sessions_.push_back(std::make_unique<GeoDbSession>(
      world_, device, service_, params_.origin_km, device.config().tv_map,
      params_.session,
      DeriveSeed(seed_, "geodb.session." +
                            std::to_string(device.NodeId()))));
}

void GeoDbRuntime::Start() {
  service_.Start();
  if (params_.venue_mics) {
    // Mirror every venue as a physical mic audible to the nodes inside
    // its radius (evaluated at starting positions — an approximation for
    // mobile nodes, which the scanner's own detections then correct).
    for (const ProtectedVenue& venue : db_.venues()) {
      std::vector<int> audible;
      for (const Entry& entry : entries_) {
        if (GeoDistanceKm(GeoAt(entry.device->Location()), venue.location) <=
            venue.radius_km) {
          audible.push_back(entry.device->NodeId());
        }
      }
      MicActivation mic;
      mic.channel = venue.channel;
      mic.on_time = venue.from;
      mic.off_time = venue.until;
      world_.AddMic(mic, std::move(audible));
    }
  }
  for (const auto& session : sessions_) session->Start();
  bool any_mobile = false;
  for (const Entry& entry : entries_) {
    any_mobile = any_mobile || entry.waypoint != nullptr;
  }
  if (!any_mobile) return;
  // One shared tick moves every mobile node, in registration order.
  world_.sim().ScheduleAfter(params_.waypoint.tick, [this] { MobilityTick(); });
}

void GeoDbRuntime::MobilityTick() {
  const SimTime now = world_.sim().Now();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    if (entry.waypoint == nullptr) continue;
    entry.device->SetPosition(entry.waypoint->At(now));
    sessions_[i]->OnMoved();
  }
  world_.sim().ScheduleAfter(params_.waypoint.tick, [this] { MobilityTick(); });
}

bool GeoDbRuntime::ProtectedAt(int node, UhfIndex channel,
                               SimTime now) const {
  for (const Entry& entry : entries_) {
    if (entry.device->NodeId() != node) continue;
    return db_.ProtectedAt(GeoAt(entry.device->Location()), channel,
                           ToUs(now));
  }
  return false;  // Unregistered (background) nodes are not geo-governed.
}

SimTime GeoDbRuntime::SuggestedGeoBudget() const {
  const GeoDbSessionParams& s = params_.session;
  // Push path: worst fan-out latency.
  const SimTime push = params_.service.push_latency_max;
  // Refresh path: the change lands just after a successful refresh; the
  // next scheduled attempt (jittered interval) must then either succeed
  // (query round trip <= timeout) or start the failure ladder, which
  // reaches the conservative map after breaker_failures timeouts with
  // capped, jittered backoff between them.
  const auto jittered = [](SimTime t, double j) {
    return static_cast<SimTime>(static_cast<double>(t) * (1.0 + j));
  };
  const SimTime trip =
      jittered(s.refresh_interval, s.refresh_jitter) +
      static_cast<SimTime>(s.breaker_failures) *
          (s.refresh_timeout + jittered(s.backoff_max, s.backoff_jitter));
  return std::max(push, trip) + s.enforce_interval;
}

int GeoDbRuntime::degraded_transitions() const {
  int n = 0;
  for (const auto& session : sessions_) n += session->degraded_transitions();
  return n;
}

int GeoDbRuntime::recovered_transitions() const {
  int n = 0;
  for (const auto& session : sessions_) n += session->recovered_transitions();
  return n;
}

}  // namespace whitefi
