#include "spectrum/locales.h"

#include <stdexcept>

namespace whitefi {

std::string LocaleClassName(LocaleClass locale) {
  switch (locale) {
    case LocaleClass::kUrban: return "urban";
    case LocaleClass::kSuburban: return "suburban";
    case LocaleClass::kRural: return "rural";
  }
  throw std::logic_error("bad locale class");
}

LocaleModel DefaultLocaleModel(LocaleClass locale) {
  // Calibrated against the qualitative shape of Figure 2 (post-DTV):
  //  * urban locales keep most channels occupied — small fragments only,
  //    but at least one locale still exposes a 24 MHz (4-channel) fragment;
  //  * suburban locales sit in between;
  //  * rural locales are mostly empty — fragments up to ~16 channels.
  switch (locale) {
    case LocaleClass::kUrban: return {17, 23};
    case LocaleClass::kSuburban: return {11, 17};
    case LocaleClass::kRural: return {3, 10};
  }
  throw std::logic_error("bad locale class");
}

SpectrumMap GenerateLocaleMap(LocaleClass locale, Rng& rng) {
  const LocaleModel model = DefaultLocaleModel(locale);
  const int occupied = rng.UniformInt(model.min_occupied, model.max_occupied);
  return SpectrumMap::RandomOccupied(occupied, rng);
}

std::vector<SpectrumMap> GenerateLocales(LocaleClass locale, int count,
                                         Rng& rng) {
  std::vector<SpectrumMap> maps;
  maps.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) maps.push_back(GenerateLocaleMap(locale, rng));
  return maps;
}

IntHistogram FragmentWidthHistogram(const std::vector<SpectrumMap>& locales) {
  IntHistogram hist(kNumUhfChannels);
  for (const SpectrumMap& map : locales) {
    for (const Fragment& f : map.FreeFragments()) hist.Add(f.length);
  }
  return hist;
}

}  // namespace whitefi
