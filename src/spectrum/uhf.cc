#include "spectrum/uhf.h"

#include <sstream>
#include <stdexcept>

namespace whitefi {

namespace {
// Dense index of the last channel below the channel-37 gap (TV channel 36).
constexpr UhfIndex kGapLowerIndex = 15;
}  // namespace

bool IsValidUhfIndex(UhfIndex index) {
  return index >= 0 && index < kNumUhfChannels;
}

int TvChannelNumber(UhfIndex index) {
  if (!IsValidUhfIndex(index)) {
    throw std::out_of_range("UHF index out of range");
  }
  // Indices 0..15 map to TV channels 21..36; 16..29 map to 38..51.
  return index <= kGapLowerIndex ? 21 + index : 38 + (index - 16);
}

UhfIndex IndexOfTvChannel(int tv_channel) {
  if (tv_channel < 21 || tv_channel > 51 || tv_channel == 37) {
    throw std::out_of_range("not a white-space TV channel");
  }
  return tv_channel <= 36 ? tv_channel - 21 : 16 + (tv_channel - 38);
}

MHz LowEdgeMHz(UhfIndex index) {
  // TV channel n (21..51) occupies [512 + (n-21)*6, 512 + (n-20)*6) MHz.
  const int tv = TvChannelNumber(index);
  return 512.0 + (tv - 21) * kUhfChannelWidthMHz;
}

MHz CenterFrequencyMHz(UhfIndex index) {
  return LowEdgeMHz(index) + kUhfChannelWidthMHz / 2.0;
}

bool FrequencyContiguous(UhfIndex lower, UhfIndex upper) {
  if (!IsValidUhfIndex(lower) || !IsValidUhfIndex(upper)) return false;
  if (upper != lower + 1) return false;
  return lower != kGapLowerIndex;  // ch36 and ch38 are not contiguous.
}

std::string UhfChannelLabel(UhfIndex index) {
  std::ostringstream os;
  os << "ch" << TvChannelNumber(index) << "("
     << static_cast<int>(CenterFrequencyMHz(index)) << "MHz)";
  return os.str();
}

}  // namespace whitefi
