// WhiteFi channels: a (center frequency, width) tuple.
//
// A WhiteFi channel is a contiguous slice of UHF spectrum the network
// communicates on.  Following the paper's hardware, a channel is always
// centered on a UHF channel's center frequency and is 5, 10, or 20 MHz
// wide; a 5 MHz channel fits inside one 6 MHz UHF channel, a 10 MHz channel
// spans 3 UHF channels, and a 20 MHz channel spans 5.  This yields the
// paper's 30 + 28 + 26 = 84 possible channels.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "spectrum/uhf.h"

namespace whitefi {

/// Supported WhiteFi channel widths.
enum class ChannelWidth { kW5 = 0, kW10 = 1, kW20 = 2 };

/// All widths, narrowest first.
inline constexpr std::array<ChannelWidth, 3> kAllWidths = {
    ChannelWidth::kW5, ChannelWidth::kW10, ChannelWidth::kW20};

/// Number of supported widths (the paper's N_W).
inline constexpr int kNumWidths = 3;

/// Width in MHz (5, 10, or 20).
MHz WidthMHz(ChannelWidth w);

/// Number of UHF channels the width spans on each side of the center
/// (0 for 5 MHz, 1 for 10 MHz, 2 for 20 MHz).
int HalfSpan(ChannelWidth w);

/// Number of UHF channels spanned in total (1, 3, or 5).
int SpanChannels(ChannelWidth w);

/// The width one step narrower; throws for 5 MHz.
ChannelWidth NarrowerWidth(ChannelWidth w);

/// Human-readable label like "10MHz".
std::string WidthLabel(ChannelWidth w);

/// A WhiteFi channel: center UHF channel index + width.
struct Channel {
  UhfIndex center = 0;
  ChannelWidth width = ChannelWidth::kW5;

  friend bool operator==(const Channel&, const Channel&) = default;

  /// Lowest spanned UHF index.
  UhfIndex Low() const { return center - HalfSpan(width); }

  /// Highest spanned UHF index.
  UhfIndex High() const { return center + HalfSpan(width); }

  /// True iff all spanned UHF indices are in range (does not check the
  /// channel-37 frequency gap; see IsPhysicallyContiguous).
  bool IsValid() const;

  /// True iff the spanned UHF channels are contiguous in actual frequency,
  /// i.e. the span does not straddle the 608-614 MHz channel-37 gap.
  bool IsPhysicallyContiguous() const;

  /// True iff UHF channel `uhf` lies within this channel's span.
  bool Contains(UhfIndex uhf) const;

  /// True iff the two channels share at least one UHF channel.
  bool Overlaps(const Channel& other) const;

  /// Center frequency in MHz.
  MHz CenterFrequency() const { return CenterFrequencyMHz(center); }

  /// Label like "(ch28, 20MHz)".
  std::string ToString() const;
};

/// Options controlling channel enumeration.
struct ChannelEnumerationOptions {
  /// When true, channels straddling the channel-37 frequency gap are
  /// excluded.  The paper's counts (30/28/26) treat the band as logically
  /// contiguous, so the default is false.
  bool respect_channel37_gap = false;
};

/// All valid channels of the given width, lowest center first.
std::vector<Channel> ChannelsOfWidth(
    ChannelWidth w, const ChannelEnumerationOptions& options = {});

/// All 84 valid channels (30 + 28 + 26 with default options), grouped by
/// width narrowest-first, each group lowest center first.
std::vector<Channel> AllChannels(const ChannelEnumerationOptions& options = {});

}  // namespace whitefi
