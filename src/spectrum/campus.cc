#include "spectrum/campus.h"

namespace whitefi {

SpectrumMap CampusSimulationMap() {
  // 17 free channels; widest contiguous run is 6 channels (36 MHz):
  //   21-26 (6), 28-31 (4), 33-35 (3), 39-40 (2), 44 (1), 48 (1).
  return SpectrumMap::FromFreeTvChannels(
      {21, 22, 23, 24, 25, 26, 28, 29, 30, 31, 33, 34, 35, 39, 40, 44, 48});
}

SpectrumMap Building5Map() {
  return SpectrumMap::FromFreeTvChannels({26, 27, 28, 29, 30, 33, 34, 35, 39, 48});
}

std::vector<SpectrumMap> GenerateBuildingMaps(const SpectrumMap& base,
                                              const CampusVariationParams& params,
                                              Rng& rng) {
  std::vector<SpectrumMap> maps;
  maps.reserve(static_cast<std::size_t>(params.num_buildings));
  for (int b = 0; b < params.num_buildings; ++b) {
    maps.push_back(base.RandomlyFlipped(params.flip_probability, rng));
  }
  return maps;
}

std::vector<double> PairwiseHammingDistances(
    const std::vector<SpectrumMap>& maps) {
  std::vector<double> distances;
  for (std::size_t i = 0; i < maps.size(); ++i) {
    for (std::size_t j = i + 1; j < maps.size(); ++j) {
      distances.push_back(
          static_cast<double>(SpectrumMap::HammingDistance(maps[i], maps[j])));
    }
  }
  return distances;
}

}  // namespace whitefi
