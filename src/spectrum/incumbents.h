// Incumbent users of the UHF band: TV broadcasts and wireless microphones.
//
// TV stations are static occupants.  Wireless microphones are the source of
// *temporal variation* (paper Section 2.3): they can switch on at any time,
// anywhere in the band, for unpredictable durations.  `IncumbentField`
// combines both into a time-varying occupancy that drives the simulator's
// scanners and the disconnection protocol.
#pragma once

#include <vector>

#include "spectrum/spectrum_map.h"
#include "util/rng.h"
#include "util/units.h"

namespace whitefi {

/// A single microphone on/off interval on one UHF channel.
struct MicActivation {
  UhfIndex channel = 0;
  Us on_time = 0.0;   ///< When the mic switches on (microseconds).
  Us off_time = 0.0;  ///< When the mic switches off; must be > on_time.

  /// True iff the mic is transmitting at time `t`.
  bool ActiveAt(Us t) const { return t >= on_time && t < off_time; }
};

/// Parameters for generating a random microphone schedule.
struct MicScheduleParams {
  double activations_per_hour_per_channel = 0.5;  ///< Poisson event rate.
  Us mean_duration = 20.0 * 60.0 * kSecond;       ///< Mean on-duration (20 min).
  Us horizon = 3600.0 * kSecond;                  ///< Schedule length (1 h).
};

/// Generates a random mic schedule over the channels free in `tv_map`
/// (mics are not placed on top of TV stations).
std::vector<MicActivation> GenerateMicSchedule(const SpectrumMap& tv_map,
                                               const MicScheduleParams& params,
                                               Rng& rng);

/// Time-varying incumbent occupancy: static TV stations plus scheduled
/// microphone activations.
class IncumbentField {
 public:
  /// Constructs from the static TV occupancy and a mic schedule.
  IncumbentField(SpectrumMap tv_map, std::vector<MicActivation> mics);

  /// The static TV-only map.
  const SpectrumMap& TvMap() const { return tv_map_; }

  /// The mic schedule.
  const std::vector<MicActivation>& Mics() const { return mics_; }

  /// Adds one mic activation.
  void AddMic(const MicActivation& mic);

  /// Occupancy snapshot at time `t` (TV plus any active mics).
  SpectrumMap OccupancyAt(Us t) const;

  /// True iff UHF channel `c` is incumbent-occupied at time `t`.
  bool OccupiedAt(UhfIndex c, Us t) const;

  /// The earliest mic on/off transition strictly after `t`, or a negative
  /// value if there is none.  Used by the simulator to schedule
  /// incumbent-change events.
  Us NextTransitionAfter(Us t) const;

 private:
  SpectrumMap tv_map_;
  std::vector<MicActivation> mics_;
};

}  // namespace whitefi
