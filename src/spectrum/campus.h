// The paper's measured campus environment (Sections 2.1 and 5.4).
//
// Two fixed maps from the paper are reproduced exactly:
//  * `CampusSimulationMap()` — the map used for the large-scale QualNet
//    simulations: "17 free UHF channels, and the widest contiguous white
//    space is 36 MHz".
//  * `Building5Map()` — the prototype testbed map: "free UHF channels:
//    26 to 30, 33 to 35, 39 and 48".
//
// The 9-building spatial-variation measurement (Figure 1 / Section 2.1) is
// modeled as per-building perturbations of a base map, calibrated so that
// the median pairwise Hamming distance is close to the paper's ~7.
#pragma once

#include <vector>

#include "spectrum/spectrum_map.h"
#include "util/rng.h"

namespace whitefi {

/// The 17-free-channel campus map used in the paper's simulations
/// (widest contiguous fragment = 6 channels = 36 MHz).
SpectrumMap CampusSimulationMap();

/// The Building-5 prototype map (free TV channels 26-30, 33-35, 39, 48).
SpectrumMap Building5Map();

/// Parameters of the 9-building spatial-variation model.
struct CampusVariationParams {
  int num_buildings = 9;
  /// Probability that a building's observation of one channel differs from
  /// the campus base map (obstructions, construction material, local mics).
  /// Calibrated so that median pairwise Hamming distance is ~7: for two
  /// independent buildings, E[Hamming] = 30 * 2p(1-p).
  double flip_probability = 0.14;
};

/// Generates per-building spectrum maps around `base`.
std::vector<SpectrumMap> GenerateBuildingMaps(const SpectrumMap& base,
                                              const CampusVariationParams& params,
                                              Rng& rng);

/// All pairwise Hamming distances among `maps` (n*(n-1)/2 values).
std::vector<double> PairwiseHammingDistances(const std::vector<SpectrumMap>& maps);

}  // namespace whitefi
