// Locale spectrum generator: the TV Fool substitute.
//
// The paper estimated post-DTV spectrum fragmentation from the TV Fool
// station database for three locale classes: urban (top-10 cities),
// suburban (10 fast-growing suburbs), and rural (10 towns < 6000 people)
// — Figure 2.  Without that proprietary dataset we use a parametric model:
// each locale draws a number of occupied channels from a class-specific
// range (denser classes occupy more channels) and places them at random.
// The defaults are calibrated so the fragment histograms match Figure 2's
// shape: all classes produce at least one 4-channel (24 MHz) fragment
// across 10 locales, and rural locales reach fragments of ~16 channels.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "spectrum/spectrum_map.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace whitefi {

/// Population-density classes from the paper's Figure 2 methodology.
enum class LocaleClass { kUrban = 0, kSuburban = 1, kRural = 2 };

/// All locale classes.
inline constexpr std::array<LocaleClass, 3> kAllLocaleClasses = {
    LocaleClass::kUrban, LocaleClass::kSuburban, LocaleClass::kRural};

/// Display name ("urban", ...).
std::string LocaleClassName(LocaleClass locale);

/// Occupied-channel range for a locale class.
struct LocaleModel {
  int min_occupied = 0;
  int max_occupied = 0;
};

/// Default calibration (see file comment).
LocaleModel DefaultLocaleModel(LocaleClass locale);

/// Generates the spectrum map of one random locale of the given class.
SpectrumMap GenerateLocaleMap(LocaleClass locale, Rng& rng);

/// Generates `count` locale maps of the given class.
std::vector<SpectrumMap> GenerateLocales(LocaleClass locale, int count,
                                         Rng& rng);

/// Histogram of contiguous free-fragment widths (in UHF channels) over a
/// set of locale maps — the quantity plotted in Figure 2.
IntHistogram FragmentWidthHistogram(const std::vector<SpectrumMap>& locales);

}  // namespace whitefi
