#include "spectrum/channel.h"

#include <sstream>
#include <stdexcept>

namespace whitefi {

MHz WidthMHz(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::kW5: return 5.0;
    case ChannelWidth::kW10: return 10.0;
    case ChannelWidth::kW20: return 20.0;
  }
  throw std::logic_error("bad width");
}

int HalfSpan(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::kW5: return 0;
    case ChannelWidth::kW10: return 1;
    case ChannelWidth::kW20: return 2;
  }
  throw std::logic_error("bad width");
}

int SpanChannels(ChannelWidth w) { return 2 * HalfSpan(w) + 1; }

ChannelWidth NarrowerWidth(ChannelWidth w) {
  switch (w) {
    case ChannelWidth::kW20: return ChannelWidth::kW10;
    case ChannelWidth::kW10: return ChannelWidth::kW5;
    case ChannelWidth::kW5: break;
  }
  throw std::invalid_argument("no width narrower than 5 MHz");
}

std::string WidthLabel(ChannelWidth w) {
  std::ostringstream os;
  os << static_cast<int>(WidthMHz(w)) << "MHz";
  return os.str();
}

bool Channel::IsValid() const {
  return IsValidUhfIndex(Low()) && IsValidUhfIndex(High());
}

bool Channel::IsPhysicallyContiguous() const {
  if (!IsValid()) return false;
  for (UhfIndex i = Low(); i < High(); ++i) {
    if (!FrequencyContiguous(i, i + 1)) return false;
  }
  return true;
}

bool Channel::Contains(UhfIndex uhf) const {
  return uhf >= Low() && uhf <= High();
}

bool Channel::Overlaps(const Channel& other) const {
  return Low() <= other.High() && other.Low() <= High();
}

std::string Channel::ToString() const {
  std::ostringstream os;
  os << "(ch" << TvChannelNumber(center) << ", " << WidthLabel(width) << ")";
  return os.str();
}

std::vector<Channel> ChannelsOfWidth(ChannelWidth w,
                                     const ChannelEnumerationOptions& options) {
  std::vector<Channel> out;
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    const Channel channel{c, w};
    if (!channel.IsValid()) continue;
    if (options.respect_channel37_gap && !channel.IsPhysicallyContiguous()) {
      continue;
    }
    out.push_back(channel);
  }
  return out;
}

std::vector<Channel> AllChannels(const ChannelEnumerationOptions& options) {
  std::vector<Channel> out;
  for (ChannelWidth w : kAllWidths) {
    auto group = ChannelsOfWidth(w, options);
    out.insert(out.end(), group.begin(), group.end());
  }
  return out;
}

}  // namespace whitefi
