#include "spectrum/incumbents.h"

#include <stdexcept>

namespace whitefi {

std::vector<MicActivation> GenerateMicSchedule(const SpectrumMap& tv_map,
                                               const MicScheduleParams& params,
                                               Rng& rng) {
  std::vector<MicActivation> mics;
  const double rate_per_us =
      params.activations_per_hour_per_channel / (3600.0 * kSecond);
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    if (tv_map.Occupied(c)) continue;
    Us t = 0.0;
    while (true) {
      t += rng.Exponential(1.0 / rate_per_us);
      if (t >= params.horizon) break;
      MicActivation mic;
      mic.channel = c;
      mic.on_time = t;
      mic.off_time = t + rng.Exponential(params.mean_duration);
      mics.push_back(mic);
      t = mic.off_time;
    }
  }
  return mics;
}

IncumbentField::IncumbentField(SpectrumMap tv_map,
                               std::vector<MicActivation> mics)
    : tv_map_(tv_map), mics_(std::move(mics)) {
  for (const MicActivation& mic : mics_) {
    if (!IsValidUhfIndex(mic.channel)) {
      throw std::out_of_range("mic channel out of range");
    }
    if (mic.off_time <= mic.on_time) {
      throw std::invalid_argument("mic off_time must exceed on_time");
    }
  }
}

void IncumbentField::AddMic(const MicActivation& mic) {
  if (mic.off_time <= mic.on_time) {
    throw std::invalid_argument("mic off_time must exceed on_time");
  }
  mics_.push_back(mic);
}

SpectrumMap IncumbentField::OccupancyAt(Us t) const {
  SpectrumMap map = tv_map_;
  for (const MicActivation& mic : mics_) {
    if (mic.ActiveAt(t)) map.SetOccupied(mic.channel);
  }
  return map;
}

bool IncumbentField::OccupiedAt(UhfIndex c, Us t) const {
  if (tv_map_.Occupied(c)) return true;
  for (const MicActivation& mic : mics_) {
    if (mic.channel == c && mic.ActiveAt(t)) return true;
  }
  return false;
}

Us IncumbentField::NextTransitionAfter(Us t) const {
  Us next = -1.0;
  auto consider = [&](Us candidate) {
    if (candidate > t && (next < 0.0 || candidate < next)) next = candidate;
  };
  for (const MicActivation& mic : mics_) {
    consider(mic.on_time);
    consider(mic.off_time);
  }
  return next;
}

}  // namespace whitefi
