#include "spectrum/geodb.h"

#include <cmath>
#include <stdexcept>

namespace whitefi {

double GeoDistanceKm(const GeoPoint& a, const GeoPoint& b) {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

double ProtectedRadiusKm(const TvStation& station) {
  // Anchored: 100 kW -> 60 km; field strength ~ sqrt(ERP)/d, so the
  // contour radius scales with sqrt(ERP).
  return 60.0 * std::sqrt(station.erp_kw / 100.0);
}

void GeoDatabase::RegisterStation(const TvStation& station) {
  if (!IsValidUhfIndex(station.channel)) {
    throw std::out_of_range("station channel out of range");
  }
  stations_.push_back(station);
}

void GeoDatabase::RegisterVenue(const ProtectedVenue& venue) {
  if (!IsValidUhfIndex(venue.channel)) {
    throw std::out_of_range("venue channel out of range");
  }
  if (venue.until <= venue.from) {
    throw std::invalid_argument("venue window must be non-empty");
  }
  venues_.push_back(venue);
}

SpectrumMap GeoDatabase::QueryAt(const GeoPoint& where, Us t) const {
  SpectrumMap map;
  for (const TvStation& station : stations_) {
    if (GeoDistanceKm(where, station.location) <= ProtectedRadiusKm(station)) {
      map.SetOccupied(station.channel);
    }
  }
  for (const ProtectedVenue& venue : venues_) {
    if (venue.ActiveAt(t) &&
        GeoDistanceKm(where, venue.location) <= venue.radius_km) {
      map.SetOccupied(venue.channel);
    }
  }
  return map;
}

SpectrumMap GeoDatabase::QueryGuardedAt(const GeoPoint& where, Us t,
                                        double guard_km) const {
  SpectrumMap map;
  for (const TvStation& station : stations_) {
    if (GeoDistanceKm(where, station.location) <=
        ProtectedRadiusKm(station) + guard_km) {
      map.SetOccupied(station.channel);
    }
  }
  for (const ProtectedVenue& venue : venues_) {
    if (venue.ActiveAt(t) &&
        GeoDistanceKm(where, venue.location) <= venue.radius_km + guard_km) {
      map.SetOccupied(venue.channel);
    }
  }
  return map;
}

SpectrumMap GeoDatabase::QueryConservativeAt(const GeoPoint& where,
                                             double guard_km) const {
  SpectrumMap map;
  for (const TvStation& station : stations_) {
    if (GeoDistanceKm(where, station.location) <=
        ProtectedRadiusKm(station) + guard_km) {
      map.SetOccupied(station.channel);
    }
  }
  for (const ProtectedVenue& venue : venues_) {
    // Schedules may have changed since the data was fetched; assume the
    // protection is live.
    if (GeoDistanceKm(where, venue.location) <= venue.radius_km + guard_km) {
      map.SetOccupied(venue.channel);
    }
  }
  return map;
}

bool GeoDatabase::ProtectedAt(const GeoPoint& where, UhfIndex channel,
                              Us t) const {
  for (const TvStation& station : stations_) {
    if (station.channel == channel &&
        GeoDistanceKm(where, station.location) <= ProtectedRadiusKm(station)) {
      return true;
    }
  }
  for (const ProtectedVenue& venue : venues_) {
    if (venue.channel == channel && venue.ActiveAt(t) &&
        GeoDistanceKm(where, venue.location) <= venue.radius_km) {
      return true;
    }
  }
  return false;
}

std::vector<TvStation> GeoDatabase::StationsCovering(
    const GeoPoint& where) const {
  std::vector<TvStation> covering;
  for (const TvStation& station : stations_) {
    if (GeoDistanceKm(where, station.location) <= ProtectedRadiusKm(station)) {
      covering.push_back(station);
    }
  }
  return covering;
}

GeoDbClient::GeoDbClient(const GeoDatabase& db, GeoPoint where,
                         GeoDbClientParams params)
    : db_(db), where_(where), params_(params) {
  if (params_.stale_after <= 0.0) {
    throw std::invalid_argument("geo-db stale_after must be positive");
  }
  if (params_.guard_km < 0.0) {
    throw std::invalid_argument("geo-db guard_km must be non-negative");
  }
  Refresh(0.0);
}

bool GeoDbClient::Refresh(Us now, bool reachable, Us served_time) {
  if (!reachable) return false;
  const Us data_time = served_time < 0.0 ? now : served_time;
  fresh_ = db_.QueryAt(where_, data_time);
  conservative_ = db_.QueryConservativeAt(where_, params_.guard_km);
  // The cache's age is that of the data, not of the fetch: a database
  // serving day-old data leaves the client in the same epistemic state as
  // a day-old successful fetch.
  fetched_at_ = data_time;
  ++refreshes_;
  return true;
}

GeoDatabase SynthesizeMetro(const MetroModel& model, Rng& rng) {
  GeoDatabase db;
  std::vector<UhfIndex> channels(kNumUhfChannels);
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    channels[static_cast<std::size_t>(c)] = c;
  }
  rng.Shuffle(channels);
  const int stations = std::min(model.stations, kNumUhfChannels);
  for (int i = 0; i < stations; ++i) {
    TvStation station;
    station.call_sign = "W" + std::to_string(10 + i) + "XX";
    station.channel = channels[static_cast<std::size_t>(i)];
    const double r = model.core_radius_km * std::sqrt(rng.Uniform01());
    const double theta = rng.Uniform(0.0, 2.0 * M_PI);
    station.location = {r * std::cos(theta), r * std::sin(theta)};
    // Log-uniform power: a few blowtorches, many low-power stations.
    station.erp_kw = model.min_erp_kw *
                     std::pow(model.max_erp_kw / model.min_erp_kw,
                              rng.Uniform01());
    db.RegisterStation(station);
  }
  for (int i = 0; i < model.venues; ++i) {
    ProtectedVenue venue;
    venue.name = "venue-" + std::to_string(i);
    venue.channel = channels[static_cast<std::size_t>(
        (stations + i) % kNumUhfChannels)];
    venue.location = {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
    venue.radius_km = rng.Uniform(0.3, 1.5);
    venue.from = rng.Uniform(0.0, 3600.0) * kSecond;
    venue.until = venue.from + rng.Uniform(1800.0, 7200.0) * kSecond;
    db.RegisterVenue(venue);
  }
  return db;
}

std::vector<SpectrumMap> MapsAlongRadial(const GeoDatabase& db,
                                         double max_distance_km, int points,
                                         Us t) {
  std::vector<SpectrumMap> maps;
  for (int i = 0; i < points; ++i) {
    const double d = points > 1
                         ? max_distance_km * static_cast<double>(i) /
                               static_cast<double>(points - 1)
                         : 0.0;
    maps.push_back(db.QueryAt(GeoPoint{d, 0.0}, t));
  }
  return maps;
}

}  // namespace whitefi
