// The US UHF white-space band: TV channels 21..51 except channel 37.
//
// The FCC's November 2008 ruling opened these 30 six-MHz channels
// (512-698 MHz, minus the 608-614 MHz radio-astronomy channel 37) to
// unlicensed devices.  Throughout the library a UHF channel is referred to
// by a dense index 0..29; helpers here convert to/from TV channel numbers
// and center frequencies.
#pragma once

#include <string>

#include "util/units.h"

namespace whitefi {

/// Number of UHF white-space channels available to portable devices in the
/// US (TV channels 21..51 minus channel 37).
inline constexpr int kNumUhfChannels = 30;

/// Width of one UHF TV channel.
inline constexpr MHz kUhfChannelWidthMHz = 6.0;

/// Dense index of a UHF channel, 0..29.
using UhfIndex = int;

/// Returns true iff `index` is a valid dense UHF index.
bool IsValidUhfIndex(UhfIndex index);

/// Maps a dense index (0..29) to the US TV channel number (21..51, skipping
/// 37).  Throws std::out_of_range on invalid input.
int TvChannelNumber(UhfIndex index);

/// Maps a TV channel number (21..51, not 37) to the dense index.
/// Throws std::out_of_range on invalid input.
UhfIndex IndexOfTvChannel(int tv_channel);

/// Low edge frequency of the channel, e.g. TV channel 21 starts at 512 MHz.
MHz LowEdgeMHz(UhfIndex index);

/// Center frequency of the channel (low edge + 3 MHz).
MHz CenterFrequencyMHz(UhfIndex index);

/// True iff the two *adjacent dense indices* are also adjacent in frequency.
/// The only break is between TV channels 36 and 38 (channel 37 sits between
/// them), i.e. between dense indices 15 and 16.
bool FrequencyContiguous(UhfIndex lower, UhfIndex upper);

/// Human-readable label like "ch38(617MHz)".
std::string UhfChannelLabel(UhfIndex index);

}  // namespace whitefi
