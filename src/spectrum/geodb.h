// Geo-location incumbent database.
//
// The paper (Section 3) notes the FCC's plan to "use a geo-location
// database to regulate and inform clients about the presence of primary
// users" — the mechanism that ultimately shipped in the TV-white-space
// rules and IEEE 802.11af.  This module implements that service: a
// registry of TV stations (protected contours derived from their
// transmit power) and schedulable protected wireless-mic venues, queryable
// by position and time to produce the SpectrumMap a device at that
// location must respect.
//
// It also provides a geometric alternative to the hand-calibrated campus
// model: spatial variation (Section 2.1) emerges naturally when nearby
// query points straddle protection contours.
#pragma once

#include <string>
#include <vector>

#include "spectrum/spectrum_map.h"
#include "util/rng.h"
#include "util/units.h"

namespace whitefi {

/// A point on the map, in kilometers.
struct GeoPoint {
  double x_km = 0.0;
  double y_km = 0.0;
};

/// Distance in kilometers.
double GeoDistanceKm(const GeoPoint& a, const GeoPoint& b);

/// A licensed TV transmitter.
struct TvStation {
  std::string call_sign;
  UhfIndex channel = 0;
  GeoPoint location;
  /// Effective radiated power in kW; sets the protected contour.
  double erp_kw = 100.0;
};

/// Radius (km) of a station's protected contour: the noise-limited service
/// area grows with the square root of radiated power (free-space field
/// strength falls off as 1/d), anchored at ~60 km for a full-power 100 kW
/// UHF station.
double ProtectedRadiusKm(const TvStation& station);

/// A registered wireless-mic venue: a channel protected within a small
/// radius during scheduled windows (e.g. a theater's performances).
struct ProtectedVenue {
  std::string name;
  UhfIndex channel = 0;
  GeoPoint location;
  double radius_km = 1.0;
  Us from = 0.0;
  Us until = 0.0;

  /// True iff the protection window covers time `t`.
  bool ActiveAt(Us t) const { return t >= from && t < until; }
};

/// The queryable database.
class GeoDatabase {
 public:
  GeoDatabase() = default;

  /// Registers a TV station.  Throws std::out_of_range for bad channels.
  void RegisterStation(const TvStation& station);

  /// Registers a protected mic venue.
  void RegisterVenue(const ProtectedVenue& venue);

  /// Channels a device at `where` must treat as incumbent-occupied at time
  /// `t` (TV contours plus active venue protections).
  SpectrumMap QueryAt(const GeoPoint& where, Us t = 0.0) const;

  /// Movement-tolerant variant of QueryAt: both TV contours and the venues
  /// active at `t` are inflated by `guard_km`.  A mobile device that
  /// re-queries whenever it has moved more than `guard_km` from its last
  /// query point can treat this map as valid at its *current* position:
  /// any channel the exact query would protect there is already marked.
  SpectrumMap QueryGuardedAt(const GeoPoint& where, Us t,
                             double guard_km) const;

  /// Conservative variant for degraded operation on stale data: TV
  /// contours are inflated by `guard_km` and every registered venue is
  /// treated as active regardless of its schedule.  A device that cannot
  /// refresh must widen, not narrow, the set of channels it avoids.
  SpectrumMap QueryConservativeAt(const GeoPoint& where,
                                  double guard_km = 10.0) const;

  /// Point query: true iff `channel` is protected at `where` at time `t`
  /// (a station contour covers it, or an active venue does).  Equivalent
  /// to QueryAt(where, t).Occupied(channel) without building the map —
  /// the auditor's per-transmission ground-truth check calls this.
  bool ProtectedAt(const GeoPoint& where, UhfIndex channel, Us t) const;

  /// Stations whose protected contour covers `where`.
  std::vector<TvStation> StationsCovering(const GeoPoint& where) const;

  std::size_t NumStations() const { return stations_.size(); }
  std::size_t NumVenues() const { return venues_.size(); }

  /// Registered venues, in registration order (the index is the venue's
  /// stable identifier for push notifications).
  const std::vector<ProtectedVenue>& venues() const { return venues_; }

  /// Registered stations, in registration order.
  const std::vector<TvStation>& stations() const { return stations_; }

 private:
  std::vector<TvStation> stations_;
  std::vector<ProtectedVenue> venues_;
};

/// GeoDbClient configuration.
struct GeoDbClientParams {
  /// Cached data older than this is considered stale (FCC rules require a
  /// daily re-check; simulations use shorter horizons).
  Us stale_after = 24.0 * 3600.0 * kSecond;
  /// Contour inflation applied by the conservative (degraded-mode) map.
  double guard_km = 10.0;
};

/// Device-side view of the geo-location database: caches the most recent
/// successful query and degrades gracefully when the database becomes
/// unreachable or serves stale data.
///
/// While the cache is current, `Map()` returns the exact query result.
/// Once the cache outlives `stale_after` — because refreshes failed
/// (outage) or because the database served old data — `Map()` switches to
/// the conservative channel set (inflated contours, venues always-on):
/// with uncertain knowledge the client must avoid more channels, never
/// fewer.  Fault injection drives the `reachable` / `served_time`
/// arguments of `Refresh` (see FaultInjector::GeoDbAvailable and
/// GeoDbServedTime); the class itself has no fault dependency.
class GeoDbClient {
 public:
  GeoDbClient(const GeoDatabase& db, GeoPoint where,
              GeoDbClientParams params = {});

  /// Attempts a refresh at `now`.  `reachable` = false models a database
  /// outage: the cache is kept and the call returns false.  `served_time`
  /// is the data timestamp the database serves (pass a value behind `now`
  /// to model staleness; negative = current).  Returns true on success.
  bool Refresh(Us now, bool reachable = true, Us served_time = -1.0);

  /// Age of the cached data at `now`.
  Us Age(Us now) const { return now - fetched_at_; }

  /// True once the cache has outlived `stale_after`.  The boundary is
  /// strict: data whose age is exactly `stale_after` is still trusted —
  /// the FCC-style re-check deadline is "re-query within T", so the cache
  /// is valid through the whole horizon and flips only one tick past it.
  bool Stale(Us now) const { return Age(now) > params_.stale_after; }

  /// The occupancy map a device must respect at `now`: the cached query
  /// while fresh, the conservative map once stale (degraded mode).
  const SpectrumMap& Map(Us now) const {
    return Stale(now) ? conservative_ : fresh_;
  }

  const SpectrumMap& FreshMap() const { return fresh_; }
  const SpectrumMap& ConservativeMap() const { return conservative_; }

  /// Successful refreshes (including the constructor's initial fetch).
  int RefreshCount() const { return refreshes_; }

 private:
  const GeoDatabase& db_;
  GeoPoint where_;
  GeoDbClientParams params_;
  SpectrumMap fresh_;
  SpectrumMap conservative_;
  Us fetched_at_ = 0.0;
  int refreshes_ = 0;
};

/// Parameters for synthesizing a metropolitan-area database.
struct MetroModel {
  int stations = 18;            ///< Transmitters in the metro core.
  double core_radius_km = 15.0; ///< Stations cluster near the core.
  double min_erp_kw = 10.0;
  double max_erp_kw = 1000.0;
  int venues = 3;               ///< Protected mic venues downtown.
};

/// Builds a synthetic metro database: stations on distinct channels around
/// the core, a few protected venues downtown.
GeoDatabase SynthesizeMetro(const MetroModel& model, Rng& rng);

/// Spectrum maps seen at increasing distances from the metro core — the
/// urban-to-rural gradient of Figure 2, derived from geometry.
std::vector<SpectrumMap> MapsAlongRadial(const GeoDatabase& db,
                                         double max_distance_km, int points,
                                         Us t = 0.0);

}  // namespace whitefi
