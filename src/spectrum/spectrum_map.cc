#include "spectrum/spectrum_map.h"

#include <algorithm>
#include <stdexcept>

namespace whitefi {

namespace {
void CheckIndex(UhfIndex i) {
  if (!IsValidUhfIndex(i)) throw std::out_of_range("UHF index out of range");
}
}  // namespace

SpectrumMap SpectrumMap::FromOccupiedIndices(
    std::initializer_list<UhfIndex> occupied) {
  SpectrumMap map;
  for (UhfIndex i : occupied) map.SetOccupied(i);
  return map;
}

SpectrumMap SpectrumMap::FromOccupiedTvChannels(
    std::initializer_list<int> occupied) {
  SpectrumMap map;
  for (int tv : occupied) map.SetOccupied(IndexOfTvChannel(tv));
  return map;
}

SpectrumMap SpectrumMap::FromFreeTvChannels(std::initializer_list<int> free) {
  SpectrumMap map;
  for (UhfIndex i = 0; i < kNumUhfChannels; ++i) map.SetOccupied(i);
  for (int tv : free) map.SetOccupied(IndexOfTvChannel(tv), false);
  return map;
}

SpectrumMap SpectrumMap::RandomOccupied(int num_occupied, Rng& rng) {
  if (num_occupied < 0 || num_occupied > kNumUhfChannels) {
    throw std::invalid_argument("num_occupied out of range");
  }
  std::vector<UhfIndex> indices(kNumUhfChannels);
  for (UhfIndex i = 0; i < kNumUhfChannels; ++i) indices[static_cast<std::size_t>(i)] = i;
  rng.Shuffle(indices);
  SpectrumMap map;
  for (int k = 0; k < num_occupied; ++k) {
    map.SetOccupied(indices[static_cast<std::size_t>(k)]);
  }
  return map;
}

bool SpectrumMap::Occupied(UhfIndex i) const {
  CheckIndex(i);
  return occupied_.test(static_cast<std::size_t>(i));
}

void SpectrumMap::SetOccupied(UhfIndex i, bool occupied) {
  CheckIndex(i);
  occupied_.set(static_cast<std::size_t>(i), occupied);
}

void SpectrumMap::Flip(UhfIndex i) {
  CheckIndex(i);
  occupied_.flip(static_cast<std::size_t>(i));
}

int SpectrumMap::NumFree() const {
  return kNumUhfChannels - static_cast<int>(occupied_.count());
}

SpectrumMap SpectrumMap::UnionWith(const SpectrumMap& other) const {
  SpectrumMap out = *this;
  out.occupied_ |= other.occupied_;
  return out;
}

bool SpectrumMap::CanUse(const Channel& channel, bool respect_gap) const {
  if (!channel.IsValid()) return false;
  if (respect_gap && !channel.IsPhysicallyContiguous()) return false;
  for (UhfIndex i = channel.Low(); i <= channel.High(); ++i) {
    if (Occupied(i)) return false;
  }
  return true;
}

std::vector<Fragment> SpectrumMap::FreeFragments(bool respect_gap) const {
  std::vector<Fragment> fragments;
  int run_start = -1;
  auto close_run = [&](UhfIndex end_exclusive) {
    if (run_start >= 0) {
      fragments.push_back(Fragment{run_start, end_exclusive - run_start});
      run_start = -1;
    }
  };
  for (UhfIndex i = 0; i < kNumUhfChannels; ++i) {
    const bool splits_here =
        respect_gap && i > 0 && !FrequencyContiguous(i - 1, i);
    if (splits_here) close_run(i);
    if (Free(i)) {
      if (run_start < 0) run_start = i;
    } else {
      close_run(i);
    }
  }
  close_run(kNumUhfChannels);
  return fragments;
}

int SpectrumMap::WidestFragment(bool respect_gap) const {
  int widest = 0;
  for (const Fragment& f : FreeFragments(respect_gap)) {
    widest = std::max(widest, f.length);
  }
  return widest;
}

std::vector<Channel> SpectrumMap::UsableChannels(
    const ChannelEnumerationOptions& options) const {
  std::vector<Channel> out;
  for (const Channel& c : AllChannels(options)) {
    if (CanUse(c, options.respect_channel37_gap)) out.push_back(c);
  }
  return out;
}

std::vector<UhfIndex> SpectrumMap::FreeIndices() const {
  std::vector<UhfIndex> out;
  for (UhfIndex i = 0; i < kNumUhfChannels; ++i) {
    if (Free(i)) out.push_back(i);
  }
  return out;
}

int SpectrumMap::HammingDistance(const SpectrumMap& a, const SpectrumMap& b) {
  return static_cast<int>((a.occupied_ ^ b.occupied_).count());
}

SpectrumMap SpectrumMap::RandomlyFlipped(double p, Rng& rng) const {
  SpectrumMap out = *this;
  for (UhfIndex i = 0; i < kNumUhfChannels; ++i) {
    if (rng.Bernoulli(p)) out.Flip(i);
  }
  return out;
}

std::string SpectrumMap::ToString() const {
  std::string s;
  s.reserve(kNumUhfChannels);
  for (UhfIndex i = 0; i < kNumUhfChannels; ++i) {
    s.push_back(Occupied(i) ? 'X' : '.');
  }
  return s;
}

std::optional<Channel> LowestFreeChannel(const SpectrumMap& map) {
  for (UhfIndex c = 0; c < kNumUhfChannels; ++c) {
    if (map.Free(c)) return Channel{c, ChannelWidth::kW5};
  }
  return std::nullopt;
}

}  // namespace whitefi
