// The spectrum map: which UHF channels are occupied by incumbents.
//
// Every WhiteFi node (AP and client) maintains a spectrum map — the bit
// vector {u_0, ..., u_29} of the paper, where u_i = 1 iff UHF channel i is
// in use by an incumbent (TV broadcast or wireless microphone) as observed
// at that node.
#pragma once

#include <bitset>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "spectrum/channel.h"
#include "util/rng.h"

namespace whitefi {

/// A contiguous run of incumbent-free UHF channels.
struct Fragment {
  UhfIndex start = 0;  ///< First free UHF index in the run.
  int length = 0;      ///< Number of free UHF channels in the run.

  friend bool operator==(const Fragment&, const Fragment&) = default;

  /// Width of the fragment in MHz (length * 6 MHz).
  MHz WidthMHz() const { return length * kUhfChannelWidthMHz; }
};

/// Per-node incumbent occupancy over the 30 UHF channels.
class SpectrumMap {
 public:
  /// All channels free.
  SpectrumMap() = default;

  /// Marks the given dense indices occupied.
  static SpectrumMap FromOccupiedIndices(std::initializer_list<UhfIndex> occupied);

  /// Marks the given *TV channel numbers* (21..51, not 37) occupied.
  static SpectrumMap FromOccupiedTvChannels(std::initializer_list<int> occupied);

  /// Marks the given *TV channel numbers* free and everything else occupied.
  static SpectrumMap FromFreeTvChannels(std::initializer_list<int> free);

  /// A map with exactly `num_occupied` uniformly random occupied channels.
  static SpectrumMap RandomOccupied(int num_occupied, Rng& rng);

  /// True iff UHF channel `i` is occupied by an incumbent.
  bool Occupied(UhfIndex i) const;

  /// True iff UHF channel `i` is free.
  bool Free(UhfIndex i) const { return !Occupied(i); }

  /// Sets the occupancy of channel `i`.
  void SetOccupied(UhfIndex i, bool occupied = true);

  /// Flips the occupancy of channel `i`.
  void Flip(UhfIndex i);

  /// Number of free channels.
  int NumFree() const;

  /// Number of occupied channels.
  int NumOccupied() const { return kNumUhfChannels - NumFree(); }

  /// Union of incumbents: a channel is occupied in the result if occupied
  /// in either input.  (The paper's "bitwise OR" of client and AP maps.)
  SpectrumMap UnionWith(const SpectrumMap& other) const;

  /// True iff every UHF channel spanned by `channel` is free.  When
  /// `respect_gap` is set, the span must also be physically contiguous.
  bool CanUse(const Channel& channel, bool respect_gap = false) const;

  /// All maximal runs of free channels, in increasing start order.
  /// When `respect_gap` is set, a run is split at the channel-37 gap.
  std::vector<Fragment> FreeFragments(bool respect_gap = false) const;

  /// Length (in UHF channels) of the widest free fragment; 0 if none free.
  int WidestFragment(bool respect_gap = false) const;

  /// All valid channels whose span is entirely free.
  std::vector<Channel> UsableChannels(
      const ChannelEnumerationOptions& options = {}) const;

  /// Free UHF indices in increasing order.
  std::vector<UhfIndex> FreeIndices() const;

  /// Number of channels whose occupancy differs between the two maps
  /// (the paper's spatial-variation statistic from Section 2.1).
  static int HammingDistance(const SpectrumMap& a, const SpectrumMap& b);

  /// Returns a copy where each channel's occupancy was flipped
  /// independently with probability `p` (the Figure 12 spatial model).
  SpectrumMap RandomlyFlipped(double p, Rng& rng) const;

  /// String of '.' (free) and 'X' (occupied), lowest channel first.
  std::string ToString() const;

  friend bool operator==(const SpectrumMap&, const SpectrumMap&) = default;

 private:
  std::bitset<kNumUhfChannels> occupied_;
};

/// The deterministic secondary-backup rule (paper 4.3: "an arbitrary
/// available channel is selected as a secondary backup"): the lowest
/// free UHF channel, as a 5 MHz channel.  Both ends of a disconnected
/// link evaluate this over their own maps, so when the maps agree the
/// chirper and the AP's chirp watch rendezvous without coordination.
/// nullopt when the whole band is occupied.
std::optional<Channel> LowestFreeChannel(const SpectrumMap& map);

}  // namespace whitefi
