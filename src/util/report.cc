#include "util/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace whitefi {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs headers");
}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header width");
  }
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      os << (c + 1 < cells.size() ? "  " : "\n");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << (c + 1 < cells.size() ? "," : "\n");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(std::ostream& os) const { os << ToString(); }

std::string FormatDouble(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string FormatPercent(double fraction) {
  return FormatDouble(fraction * 100.0, 1) + "%";
}

}  // namespace whitefi
