// Units and conversions used throughout WhiteFi.
//
// Conventions:
//   * Time is kept in double microseconds (`Us`) in the PHY/SIFT layers,
//     and in integer microsecond ticks (`SimTime`, see sim/time.h) inside
//     the discrete-event simulator.
//   * Frequency is kept in double MHz.
//   * Power is kept in dBm; amplitude is linear (arbitrary ADC-like units).
#pragma once

#include <cmath>
#include <cstdint>

namespace whitefi {

/// Time in microseconds.
using Us = double;

/// Frequency in MHz.
using MHz = double;

/// Power in dBm.
using Dbm = double;

/// One millisecond expressed in microseconds.
inline constexpr Us kMillisecond = 1000.0;

/// One second expressed in microseconds.
inline constexpr Us kSecond = 1'000'000.0;

/// Converts a power ratio expressed in dB to a linear power ratio.
inline double DbToLinear(double db) { return std::pow(10.0, db / 10.0); }

/// Converts a linear power ratio to dB.
inline double LinearToDb(double linear) { return 10.0 * std::log10(linear); }

/// Converts an attenuation in dB to the multiplicative *amplitude* scale
/// factor (amplitude scales with the square root of power).
inline double AttenuationToAmplitudeScale(double attenuation_db) {
  return std::pow(10.0, -attenuation_db / 20.0);
}

/// Converts dBm to milliwatts.
inline double DbmToMilliwatt(Dbm dbm) { return std::pow(10.0, dbm / 10.0); }

/// Converts milliwatts to dBm.
inline Dbm MilliwattToDbm(double mw) { return 10.0 * std::log10(mw); }

}  // namespace whitefi
