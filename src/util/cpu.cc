#include "util/cpu.h"

#include <cstdlib>
#include <string>

namespace whitefi {

bool CpuSupportsAvx2() {
#if defined(__AVX2__)
  // Compiled with -mavx2: the whole binary assumes AVX2 anyway.
  return true;
#elif defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if defined(__AVX512F__)
  return true;
#elif defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("avx512f");
  return supported;
#else
  return false;
#endif
}

int SiftKernelEnvOverride() {
  static const int parsed = [] {
    const char* env = std::getenv("WHITEFI_SIFT_KERNEL");
    if (env == nullptr) return 0;
    const std::string value(env);
    if (value == "simd") return 1;
    if (value == "scalar") return 2;
    if (value == "avx2") return 3;
    if (value == "avx512") return 4;
    return 0;  // "auto" and anything unrecognized fall back to dispatch.
  }();
  return parsed;
}

}  // namespace whitefi
