#include "util/log.h"

#include <iomanip>
#include <iostream>

namespace whitefi {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

// The installed simulated-time source and its owner token.  Single global:
// scenario code runs worlds sequentially, and the owner check keeps a
// dying world from clearing a newer world's source.
const void* g_time_owner = nullptr;
std::function<double()> g_time_source;

}  // namespace

void SetLogLevel(LogLevel level) {
  internal::g_log_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      internal::g_log_level.load(std::memory_order_relaxed));
}

void SetLogTimeSource(const void* owner, std::function<double()> now_seconds) {
  g_time_owner = owner;
  g_time_source = std::move(now_seconds);
}

void ClearLogTimeSource(const void* owner) {
  if (g_time_owner != owner) return;
  g_time_owner = nullptr;
  g_time_source = nullptr;
}

void LogLine(LogLevel level, const std::string& tag,
             const std::string& message) {
  if (!LogEnabled(level)) return;
  std::cerr << "[" << LevelName(level);
  if (g_time_source) {
    std::cerr << " " << std::fixed << std::setprecision(6) << g_time_source()
              << "s" << std::defaultfloat;
  }
  if (!tag.empty()) std::cerr << " " << tag;
  std::cerr << "] " << message << "\n";
}

}  // namespace whitefi
