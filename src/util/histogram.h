// Histograms for fragment-width distributions (Figure 2) and
// general-purpose bucketed measurements.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace whitefi {

/// Histogram over small non-negative integers (e.g. contiguous fragment
/// widths in UHF channels, 0..30).
class IntHistogram {
 public:
  /// Creates a histogram covering values 0..max_value inclusive.
  explicit IntHistogram(int max_value);

  /// Adds one observation; values outside [0, max_value] are clamped.
  void Add(int value);

  /// Adds `count` observations of `value`.
  void AddN(int value, std::size_t count);

  /// Count in the bin for `value`.
  std::size_t CountOf(int value) const;

  /// Total number of observations.
  std::size_t Total() const { return total_; }

  /// Fraction of observations equal to `value`; 0 when empty.
  double Fraction(int value) const;

  /// Largest value with a non-zero count; -1 when empty.
  int MaxObserved() const;

  /// Inclusive upper bound of the value range.
  int MaxValue() const { return static_cast<int>(bins_.size()) - 1; }

  /// Merges another histogram (must have the same range).
  void Merge(const IntHistogram& other);

  /// Renders an ASCII bar chart, one row per non-empty bin.
  std::string ToString(const std::string& value_label = "value") const;

 private:
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

/// Fixed-width histogram over doubles in [lo, hi).
class DoubleHistogram {
 public:
  /// Creates `num_bins` equal-width bins over [lo, hi).
  DoubleHistogram(double lo, double hi, std::size_t num_bins);

  /// Adds one observation; out-of-range values go to the edge bins.
  void Add(double value);

  /// Count in bin `i`.
  std::size_t CountOf(std::size_t i) const { return bins_[i]; }

  /// Center of bin `i`.
  double BinCenter(std::size_t i) const;

  /// Number of bins.
  std::size_t NumBins() const { return bins_.size(); }

  /// Total observations.
  std::size_t Total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

/// Geometric (power-of-two bucketed) histogram for measurements of unknown
/// dynamic range — latencies, sizes, durations.  Bucket 0 covers [0, 1);
/// bucket i >= 1 covers [2^(i-1), 2^i).  Adds are O(1) with no allocation,
/// so the metrics layer can use it on hot paths; quantiles are estimated
/// from bucket boundaries and clamped to the exact observed min/max.
class ExpHistogram {
 public:
  /// Adds one observation (negatives clamp to 0).
  void Add(double value);

  /// Number of observations.
  std::size_t Count() const { return count_; }

  /// Sum of all observations.
  double Sum() const { return sum_; }

  /// Mean of all observations; 0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  /// Smallest / largest observation; 0 when empty.
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  /// Estimated value at percentile `p` in [0, 100]; 0 when empty.
  double Percentile(double p) const;

  /// One non-empty power-of-two bucket: [lo, hi) holding `count`
  /// observations.
  struct BucketCount {
    double lo = 0.0;
    double hi = 0.0;
    std::size_t count = 0;
  };

  /// The non-empty buckets in ascending order (exact raw counts, for
  /// JSON export and offline re-bucketing).
  std::vector<BucketCount> NonEmptyBuckets() const;

  /// Merges another histogram into this one.
  void Merge(const ExpHistogram& other);

  /// Resets to the empty state.
  void Reset() { *this = ExpHistogram{}; }

  /// One-line summary like "count=12 mean=3.4 p50=2.9 p99=8.1 max=9.0".
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  static std::size_t BucketOf(double value);

  std::array<std::size_t, kBuckets> bins_{};
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace whitefi
