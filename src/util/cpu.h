// CPU feature probing for runtime kernel dispatch.
//
// The SIFT signal kernels ship in two flavors — a portable scalar build
// and an AVX2 build compiled with a per-function target attribute — and
// pick between them at runtime.  This probe answers "may the AVX2 flavor
// execute on this machine?" once, at first use, so hot loops never pay
// for cpuid.
//
// Two layers of control:
//  * compile time: a binary built with -mavx2 (or on a non-x86 target)
//    resolves the answer as a constant;
//  * runtime: on a plain x86 build the first call asks the CPU, and the
//    WHITEFI_SIFT_KERNEL environment variable ("scalar" | "simd" |
//    "auto") can force the dispatch for any binary — the CI dispatch
//    matrix uses it to diff forced-scalar runs against AVX2 runs without
//    rebuilding.
#pragma once

namespace whitefi {

/// True when AVX2 instructions may be executed on this host.  Constant
/// true under -mavx2 builds, constant false on non-x86 targets, a cached
/// cpuid probe otherwise.
bool CpuSupportsAvx2();

/// True when AVX-512F instructions may be executed on this host (the
/// 512-bit SIFT kernel needs only the foundation subset).  Same layering
/// as CpuSupportsAvx2.
bool CpuSupportsAvx512();

/// The WHITEFI_SIFT_KERNEL environment override, parsed once at first
/// call: 0 = auto (unset/"auto"/unrecognized), 1 = force simd (best
/// vector kernel), 2 = force scalar, 3 = force the AVX2 kernel
/// specifically, 4 = force the AVX-512 kernel specifically.
int SiftKernelEnvOverride();

}  // namespace whitefi
