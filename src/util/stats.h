// Summary statistics used by the benchmark harnesses and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace whitefi {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  std::size_t Count() const { return n_; }

  /// Sample mean; 0 when empty.
  double Mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Minimum observation; +inf when empty.
  double Min() const { return min_; }

  /// Maximum observation; -inf when empty.
  double Max() const { return max_; }

  /// Sum of all observations.
  double Sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
  double sum_ = 0.0;
};

/// Arithmetic mean of `v`; 0 when empty.
double Mean(const std::vector<double>& v);

/// Sample standard deviation of `v`; 0 with fewer than two elements.
double StdDev(const std::vector<double>& v);

/// Median (average of the two middle elements for even sizes); 0 when empty.
double Median(std::vector<double> v);

/// Linear-interpolated percentile, `p` in [0, 100]; 0 when empty.
double Percentile(std::vector<double> v, double p);

/// Half-width of a ~95% confidence interval for the mean (normal
/// approximation, 1.96 standard errors); 0 with fewer than two elements.
double ConfidenceInterval95(const std::vector<double>& v);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2).  1 when all shares are
/// equal, 1/n when one member takes everything; 0 for an empty input.
double JainFairnessIndex(const std::vector<double>& v);

}  // namespace whitefi
