#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace whitefi {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double m2 = 0.0;
  for (double x : v) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(v.size() - 1));
}

double Median(std::vector<double> v) { return Percentile(std::move(v), 50.0); }

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double ConfidenceInterval95(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  return 1.96 * StdDev(v) / std::sqrt(static_cast<double>(v.size()));
}

double JainFairnessIndex(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : v) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // All zero: degenerate but equal.
  return sum * sum / (static_cast<double>(v.size()) * sum_sq);
}

}  // namespace whitefi
