#include "util/parallel.h"

#include <stdexcept>
#include <string>

namespace whitefi {

ThreadPool::ThreadPool(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  batch_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ <= 1) {
    // Serial reference path: inline, index order, no synchronization.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    batch_size_ = n;
    next_index_ = 0;
    in_flight_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  batch_ready_.notify_all();
  // The caller works too, then waits for stragglers.
  DrainBatch();
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [this] {
    return next_index_ >= batch_size_ && in_flight_ == 0;
  });
  task_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::DrainBatch() {
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (task_ == nullptr || next_index_ >= batch_size_) return;
      index = next_index_++;
      ++in_flight_;
    }
    try {
      (*task_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      last = next_index_ >= batch_size_ && in_flight_ == 0;
    }
    if (last) batch_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      batch_ready_.wait(lock, [&] {
        return stopping_ || (task_ != nullptr && generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    DrainBatch();
  }
}

void ParallelFor(int jobs, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(jobs);
  pool.Run(n, fn);
}

int HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ParseJobs(const char* value) {
  std::size_t consumed = 0;
  int jobs = 0;
  try {
    jobs = std::stoi(std::string(value), &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("--jobs: not a number: ") + value);
  }
  if (consumed != std::string(value).size() || jobs < 0) {
    throw std::invalid_argument(std::string("--jobs: expected a positive "
                                            "integer or 0 (= all cores), "
                                            "got: ") +
                                value);
  }
  return jobs == 0 ? HardwareJobs() : jobs;
}

}  // namespace whitefi
