#include "util/rng.h"

#include <cmath>

namespace whitefi {
namespace {

// SplitMix64: used to decorrelate fork seeds derived from a parent seed.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t DeriveSeed(std::uint64_t root, std::string_view label) {
  // FNV-1a over the label bytes, then two SplitMix64 rounds over the
  // (root, label-hash) pair.  Two rounds so that roots differing in one
  // bit do not produce substream seeds differing in a recognizable
  // pattern even for short labels.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return SplitMix64(SplitMix64(root ^ h) + h);
}

Rng::Rng(std::uint64_t seed) : engine_(SplitMix64(seed)), seed_(seed) {}

Rng Rng::Fork() {
  ++fork_counter_;
  return Rng(SplitMix64(seed_ ^ SplitMix64(fork_counter_ * 0xA24BAED4963EE407ULL)));
}

double Rng::Uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int Rng::UniformInt(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::Rayleigh(double sigma) {
  // Inverse-CDF sampling: F(x) = 1 - exp(-x^2 / (2 sigma^2)).
  double u = Uniform01();
  // Guard the log against u == 1 (cannot happen with [0,1) but be safe).
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return sigma * std::sqrt(-2.0 * std::log(1.0 - u));
}

void Rng::FillRayleigh(double sigma, std::span<double> out) {
  // One distribution object for the whole span; the draw itself is the
  // same inverse-CDF computation as Rayleigh(), value for value.
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (double& v : out) {
    double u = uniform(engine_);
    if (u >= 1.0) u = std::nextafter(1.0, 0.0);
    v = sigma * std::sqrt(-2.0 * std::log(1.0 - u));
  }
}

double Rng::Exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::size_t Rng::Index(std::size_t size) {
  return std::uniform_int_distribution<std::size_t>(0, size - 1)(engine_);
}

}  // namespace whitefi
